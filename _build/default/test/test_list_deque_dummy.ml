(* Tests for the Figure 10 dummy-node variant (experiment E11's
   correctness side): identical observable behaviour to the deleted-bit
   representation, plus its own invariant and allocator semantics. *)

let impl_of (module L : Deque.List_deque_dummy.ALGORITHM) : Test_support.impl =
  {
    impl_name = L.name;
    bounded = false;
    fresh =
      (fun ~capacity:_ ->
        let d = L.make () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> L.push_right d v)
          ~push_left:(fun v -> L.push_left d v)
          ~pop_right:(fun () -> L.pop_right d)
          ~pop_left:(fun () -> L.pop_left d)
          ~to_list:(Some (fun () -> L.unsafe_to_list d))
          ~invariant:(Some (fun () -> L.check_invariant d)));
  }

let algorithms : (module Deque.List_deque_dummy.ALGORITHM) list =
  [
    (module Deque.List_deque_dummy.Lockfree);
    (module Deque.List_deque_dummy.Locked);
    (module Deque.List_deque_dummy.Striped);
    (module Deque.List_deque_dummy.Sequential);
  ]

module D = Deque.List_deque_dummy.Sequential
module B = Deque.List_deque.Sequential

let check_inv d =
  match D.check_invariant d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e

(* Figure 10's encoding goes through the same empty configurations as
   Figure 9. *)
let test_empty_states () =
  let d = D.make () in
  Alcotest.(check bool) "empty" true (D.pop_right d = `Empty);
  ignore (D.push_right d 1);
  Alcotest.(check bool) "pop 1" true (D.pop_right d = `Value 1);
  check_inv d;
  Alcotest.(check bool) "empty with right dummy pending" true
    (D.pop_right d = `Empty);
  Alcotest.(check bool) "empty from left" true (D.pop_left d = `Empty);
  ignore (D.push_right d 2);
  ignore (D.push_right d 3);
  Alcotest.(check bool) "pop r" true (D.pop_right d = `Value 3);
  Alcotest.(check bool) "pop l" true (D.pop_left d = `Value 2);
  check_inv d;
  Alcotest.(check bool) "push through two pending" true (D.push_left d 4 = `Okay);
  Alcotest.(check bool) "push right too" true (D.push_right d 5 = `Okay);
  check_inv d;
  Alcotest.(check (list int)) "contents" [ 4; 5 ] (D.unsafe_to_list d)

(* Behavioural equivalence with the deleted-bit representation on a
   long random single-threaded run (the E11 claim). *)
let test_equivalent_to_deleted_bit () =
  let d1 = D.make () in
  let d2 = B.make () in
  let rng = Harness.Splitmix.create ~seed:21 in
  for i = 1 to 3000 do
    let check_eq a b = if a <> b then Alcotest.failf "divergence at op %d" i in
    match Harness.Splitmix.int rng ~bound:4 with
    | 0 -> check_eq (D.push_right d1 i = `Okay) (B.push_right d2 i = `Okay)
    | 1 -> check_eq (D.push_left d1 i = `Okay) (B.push_left d2 i = `Okay)
    | 2 -> check_eq (D.pop_right d1) (B.pop_right d2)
    | _ -> check_eq (D.pop_left d1) (B.pop_left d2)
  done;
  Alcotest.(check (list int))
    "same final contents" (B.unsafe_to_list d2) (D.unsafe_to_list d1)

(* Allocator: dummies are free (per-processor preallocated in the
   paper); only list nodes consume budget. *)
let test_allocator () =
  let alloc = Deque.Alloc.bounded 1 in
  let d = D.make ~alloc () in
  Alcotest.(check bool) "push" true (D.push_right d 1 = `Okay);
  Alcotest.(check bool) "budget exhausted" true (D.push_right d 2 = `Full);
  (* popping marks via a dummy even with zero budget *)
  Alcotest.(check bool) "pop works at zero budget" true
    (D.pop_right d = `Value 1);
  D.delete_right d;
  Alcotest.(check bool) "push after reclaim" true (D.push_left d 3 = `Okay);
  check_inv d

let test_deletes_idempotent () =
  let d = D.make () in
  D.delete_right d;
  D.delete_left d;
  ignore (D.push_right d 1);
  ignore (D.pop_left d);
  D.delete_left d;
  D.delete_left d;
  check_inv d;
  Alcotest.(check bool) "empty" true (D.pop_right d = `Empty)

let qcheck_tests =
  List.map
    (fun (module M : Deque.List_deque_dummy.ALGORITHM) ->
      QCheck_alcotest.to_alcotest
        (Test_support.qcheck_sequential (impl_of (module M))))
    algorithms

let () =
  Alcotest.run "list_deque_dummy"
    [
      ( "figure 10 variant (E11)",
        [
          Alcotest.test_case "empty states" `Quick test_empty_states;
          Alcotest.test_case "equivalent to deleted-bit" `Quick
            test_equivalent_to_deleted_bit;
          Alcotest.test_case "allocator semantics" `Quick test_allocator;
          Alcotest.test_case "deletes idempotent" `Quick test_deletes_idempotent;
        ] );
      ("oracle equivalence", qcheck_tests);
    ]

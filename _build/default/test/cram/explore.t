The model-checker CLI explores scripted scenarios exhaustively and
deterministically, so its output is stable.

Figure 6 on the array deque: two pops race for one element.

  $ ../../bin/explore.exe --algo array --prefill 42 --thread qr --thread ql
  ok (70 schedules, exhaustive)

Figure 16 on the list deque: contending physical deletions.

  $ ../../bin/explore.exe --algo list --prefill 1,2 --setup qr,ql --thread pr:3 --thread pl:4
  ok (55768 schedules, exhaustive)

The 3CAS extension handles the same contention.

  $ ../../bin/explore.exe --algo 3cas --prefill 1,2 --thread qr --thread ql
  ok (70 schedules, exhaustive)

Greenwald v2's documented flaw is found automatically (exit code 1).

  $ ../../bin/explore.exe --algo greenwald2 --length 2 --prefill 7 --thread pr:9 --thread ql,pr:8 > /dev/null 2>&1
  [1]

Lock-freedom: thread 0 frozen at every reachable step count.

  $ ../../bin/explore.exe --algo list --prefill 1,2 --thread qr,pr:3 --thread ql --victim 0
  non-blocking: all other threads completed at every one of the victim's 12 stall points

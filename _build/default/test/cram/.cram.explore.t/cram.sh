  $ ../../bin/explore.exe --algo array --prefill 42 --thread qr --thread ql
  $ ../../bin/explore.exe --algo list --prefill 1,2 --setup qr,ql --thread pr:3 --thread pl:4
  $ ../../bin/explore.exe --algo 3cas --prefill 1,2 --thread qr --thread ql
  $ ../../bin/explore.exe --algo greenwald2 --length 2 --prefill 7 --thread pr:9 --thread ql,pr:8 > /dev/null 2>&1
  $ ../../bin/explore.exe --algo list --prefill 1,2 --thread qr,pr:3 --thread ql --victim 0

(* Tests for the Wing&Gong linearizability checker itself (it is a
   trust anchor for every other concurrent test, so it gets its own
   adversarial suite), followed by experiment E13's history leg: real
   multi-domain histories recorded against the lock-free deques are
   linearizable. *)

open Spec

let entry thread op result inv ret : Linearizability.deque_entry =
  { History.thread; op; result; inv; ret }

let check ?capacity ?initial h =
  match Linearizability.check_deque ?capacity ?initial (Array.of_list h) with
  | Ok _ -> true
  | Error () -> false

(* --- Positive cases --- *)

let test_empty_history () =
  Alcotest.(check bool) "empty history" true (check [])

let test_sequential_history () =
  Alcotest.(check bool) "trivial sequence" true
    (check
       [
         entry 0 (Op.Push_right 1) Op.Okay 0 1;
         entry 0 (Op.Push_left 2) Op.Okay 2 3;
         entry 0 Op.Pop_right (Op.Got 1) 4 5;
         entry 0 Op.Pop_right (Op.Got 2) 6 7;
         entry 0 Op.Pop_right Op.Empty 8 9;
       ])

(* Two overlapping pops of a single element: either may win; the
   history where the "later" one wins is still linearizable. *)
let test_overlap_reorder () =
  Alcotest.(check bool) "overlapping ops reorderable" true
    (check ~initial:[ 42 ]
       [
         entry 0 Op.Pop_right (Op.Got 42) 0 3;
         entry 1 Op.Pop_left Op.Empty 1 2;
       ])

(* A pop overlapping a push may or may not see its value. *)
let test_pop_sees_concurrent_push () =
  Alcotest.(check bool) "pop sees overlapping push" true
    (check
       [
         entry 0 (Op.Push_right 5) Op.Okay 0 3;
         entry 1 Op.Pop_left (Op.Got 5) 1 2;
       ]);
  Alcotest.(check bool) "pop misses overlapping push" true
    (check
       [
         entry 0 (Op.Push_right 5) Op.Okay 0 3;
         entry 1 Op.Pop_left Op.Empty 1 2;
       ])

let test_capacity_full () =
  Alcotest.(check bool) "full at capacity is legal" true
    (check ~capacity:1 ~initial:[ 9 ]
       [ entry 0 (Op.Push_right 1) Op.Full 0 1 ])

(* --- Negative cases: the checker must reject these --- *)

let test_value_from_nowhere () =
  Alcotest.(check bool) "pop of never-pushed value" false
    (check [ entry 0 Op.Pop_right (Op.Got 7) 0 1 ])

let test_double_pop () =
  Alcotest.(check bool) "one element popped twice" false
    (check ~initial:[ 3 ]
       [
         entry 0 Op.Pop_right (Op.Got 3) 0 1;
         entry 1 Op.Pop_left (Op.Got 3) 2 3;
       ])

let test_false_empty () =
  (* a pop strictly after a completed push cannot be empty *)
  Alcotest.(check bool) "false empty" false
    (check
       [
         entry 0 (Op.Push_right 5) Op.Okay 0 1;
         entry 1 Op.Pop_right Op.Empty 2 3;
       ])

let test_false_full () =
  (* capacity 2, one element: full is impossible *)
  Alcotest.(check bool) "false full" false
    (check ~capacity:2 ~initial:[ 1 ]
       [ entry 0 (Op.Push_right 5) Op.Full 0 1 ])

let test_wrong_order () =
  (* deque order: pushRight a then b, popLeft must return a first when
     the pops don't overlap *)
  Alcotest.(check bool) "fifo order violated" false
    (check
       [
         entry 0 (Op.Push_right 1) Op.Okay 0 1;
         entry 0 (Op.Push_right 2) Op.Okay 2 3;
         entry 1 Op.Pop_left (Op.Got 2) 4 5;
         entry 1 Op.Pop_left (Op.Got 1) 6 7;
       ]);
  Alcotest.(check bool) "lifo order respected" true
    (check
       [
         entry 0 (Op.Push_right 1) Op.Okay 0 1;
         entry 0 (Op.Push_right 2) Op.Okay 2 3;
         entry 1 Op.Pop_right (Op.Got 2) 4 5;
         entry 1 Op.Pop_right (Op.Got 1) 6 7;
       ])

let test_real_time_order_respected () =
  (* the two pops do NOT overlap, so their real-time order binds: the
     first to respond must get the right end's element *)
  Alcotest.(check bool) "non-overlapping order binds" false
    (check ~initial:[ 1; 2 ]
       [
         entry 0 Op.Pop_right (Op.Got 1) 0 1;
         entry 1 Op.Pop_right (Op.Got 2) 2 3;
       ]);
  Alcotest.(check bool) "correct assignment accepted" true
    (check ~initial:[ 1; 2 ]
       [
         entry 0 Op.Pop_right (Op.Got 2) 0 1;
         entry 1 Op.Pop_right (Op.Got 1) 2 3;
       ])

(* A larger mechanically-built linearizable history to exercise the
   memoized search: k concurrent pushers then k concurrent poppers. *)
let test_wide_history () =
  let k = 8 in
  let pushes =
    List.init k (fun i -> entry i (Op.Push_right i) Op.Okay 0 (i + 1))
  in
  (* all pops overlap each other, each getting a distinct value *)
  let pops =
    List.init k (fun i -> entry i Op.Pop_left (Op.Got i) 100 (200 + i))
  in
  Alcotest.(check bool) "wide concurrent history" true (check (pushes @ pops))

(* qcheck: any valid sequential history remains linearizable after its
   operation windows are widened to overlap arbitrarily (the sequential
   witness still exists).  This is the checker's soundness half; the
   rejection tests above pin the completeness half on known
   counterexamples. *)
let widened_sequential_accepted =
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (2 -- 20)
           (frequency
              [
                (3, map (fun v -> Op.Push_right v) (int_bound 9));
                (3, map (fun v -> Op.Push_left v) (int_bound 9));
                (2, return Op.Pop_right);
                (2, return Op.Pop_left);
              ]))
        (list_size (return 20) (int_bound 5)))
  in
  QCheck2.Test.make ~name:"widened sequential histories accepted" ~count:200
    ~print:(fun (ops, _) ->
      ops
      |> List.map (fun op ->
             Format.asprintf "%a" (Op.pp_op Format.pp_print_int) op)
      |> String.concat "; ")
    gen
    (fun (ops, widenings) ->
      (* run the ops through the oracle to get true results *)
      let d = ref (Seq_deque.make ~capacity:4 ()) in
      let entries =
        List.mapi
          (fun i op ->
            let d', res = Seq_deque.apply !d op in
            d := d';
            (* sequential placement: [4i, 4i+1]; widen the response by
               the i-th widening factor so neighbors overlap *)
            let widen =
              match List.nth_opt widenings (i mod 20) with
              | Some w -> w * 3
              | None -> 0
            in
            {
              History.thread = i mod 3;
              op;
              result = res;
              inv = 4 * i;
              ret = (4 * i) + 1 + widen;
            })
          ops
      in
      match
        Linearizability.check_deque ~capacity:4 (Array.of_list entries)
      with
      | Ok _ -> true
      | Error () -> false)

(* --- E13: real concurrent histories --- *)

let lin_rounds name impl threads =
  Alcotest.test_case
    (Printf.sprintf "%s: %d-thread histories linearizable" name threads)
    `Slow
    (fun () ->
      Test_support.check_linearizable_rounds impl ~threads ~ops_per_thread:8
        ~capacity:4 ~rounds:60)

let array_impl =
  let module A = Deque.Array_deque.Lockfree in
  Test_support.of_module
    (module struct
      include A

      let name = A.name
    end)
    ~bounded:true

let list_impl =
  let module L = Deque.List_deque.Lockfree in
  Test_support.of_module
    (module struct
      include L

      let name = L.name
    end)
    ~bounded:false

let dummy_impl =
  let module L = Deque.List_deque_dummy.Lockfree in
  Test_support.of_module
    (module struct
      include L

      let name = L.name
    end)
    ~bounded:false

let () =
  Alcotest.run "linearizability"
    [
      ( "checker: accepts",
        [
          Alcotest.test_case "empty" `Quick test_empty_history;
          Alcotest.test_case "sequential" `Quick test_sequential_history;
          Alcotest.test_case "overlap reorder" `Quick test_overlap_reorder;
          Alcotest.test_case "pop vs push overlap" `Quick
            test_pop_sees_concurrent_push;
          Alcotest.test_case "full at capacity" `Quick test_capacity_full;
          Alcotest.test_case "wide history" `Quick test_wide_history;
        ] );
      ( "checker: rejects",
        [
          Alcotest.test_case "value from nowhere" `Quick test_value_from_nowhere;
          Alcotest.test_case "double pop" `Quick test_double_pop;
          Alcotest.test_case "false empty" `Quick test_false_empty;
          Alcotest.test_case "false full" `Quick test_false_full;
          Alcotest.test_case "order violations" `Quick test_wrong_order;
          Alcotest.test_case "real-time order" `Quick
            test_real_time_order_respected;
        ] );
      ( "soundness",
        [ QCheck_alcotest.to_alcotest widened_sequential_accepted ] );
      ( "E13: recorded histories",
        [
          lin_rounds "array" array_impl 3;
          lin_rounds "array" array_impl 4;
          lin_rounds "list" list_impl 3;
          lin_rounds "list" list_impl 4;
          lin_rounds "list-dummy" dummy_impl 3;
        ] );
    ]

(* Tests for the sequential oracle (Spec.Seq_deque): the explicit
   transitions of Section 2.2, boundary behaviour for bounded deques,
   and a qcheck equivalence against a naive single-list reference
   implementation. *)

open Spec

let got = function Op.Got v -> v | _ -> Alcotest.fail "expected a value"

(* The worked example from Section 2.2 of the paper. *)
let test_paper_example () =
  let d = Seq_deque.make () in
  let d, r = Seq_deque.push_right d 1 in
  Alcotest.(check bool) "pushRight(1) okay" true (r = Op.Okay);
  Alcotest.(check (list int)) "S=<1>" [ 1 ] (Seq_deque.to_list d);
  let d, _ = Seq_deque.push_left d 2 in
  Alcotest.(check (list int)) "S=<2,1>" [ 2; 1 ] (Seq_deque.to_list d);
  let d, _ = Seq_deque.push_right d 3 in
  Alcotest.(check (list int)) "S=<2,1,3>" [ 2; 1; 3 ] (Seq_deque.to_list d);
  let d, r = Seq_deque.pop_left d in
  Alcotest.(check int) "popLeft returns 2" 2 (got r);
  Alcotest.(check (list int)) "S=<1,3>" [ 1; 3 ] (Seq_deque.to_list d);
  let d, r = Seq_deque.pop_left d in
  Alcotest.(check int) "popLeft returns 1" 1 (got r);
  Alcotest.(check (list int)) "S=<3>" [ 3 ] (Seq_deque.to_list d)

let test_empty_pops () =
  let d = Seq_deque.make () in
  let d1, r = Seq_deque.pop_right d in
  Alcotest.(check bool) "popRight empty" true (r = Op.Empty);
  Alcotest.(check bool) "state unchanged" true (Seq_deque.is_empty d1);
  let d2, r = Seq_deque.pop_left d in
  Alcotest.(check bool) "popLeft empty" true (r = Op.Empty);
  Alcotest.(check bool) "state unchanged" true (Seq_deque.is_empty d2)

let test_full_pushes () =
  let d = Seq_deque.make ~capacity:2 () in
  let d, r1 = Seq_deque.push_right d 1 in
  let d, r2 = Seq_deque.push_left d 2 in
  Alcotest.(check bool) "both okay" true (r1 = Op.Okay && r2 = Op.Okay);
  Alcotest.(check bool) "is_full" true (Seq_deque.is_full d);
  let d1, r = Seq_deque.push_right d 3 in
  Alcotest.(check bool) "pushRight full" true (r = Op.Full);
  Alcotest.(check (list int)) "unchanged" [ 2; 1 ] (Seq_deque.to_list d1);
  let d2, r = Seq_deque.push_left d 3 in
  Alcotest.(check bool) "pushLeft full" true (r = Op.Full);
  Alcotest.(check (list int)) "unchanged" [ 2; 1 ] (Seq_deque.to_list d2)

let test_capacity_validation () =
  Alcotest.check_raises "capacity 0" (Invalid_argument
    "Seq_deque.make: capacity must be >= 1") (fun () ->
      ignore (Seq_deque.make ~capacity:0 ()));
  Alcotest.check_raises "of_list overflow"
    (Invalid_argument "Seq_deque.of_list: more elements than capacity")
    (fun () -> ignore (Seq_deque.of_list ~capacity:1 [ 1; 2 ]))

let test_peek () =
  let d = Seq_deque.of_list [ 5; 6; 7 ] in
  Alcotest.(check (option int)) "peek_left" (Some 5) (Seq_deque.peek_left d);
  Alcotest.(check (option int)) "peek_right" (Some 7) (Seq_deque.peek_right d);
  let e = Seq_deque.make () in
  Alcotest.(check (option int)) "peek empty" None (Seq_deque.peek_left e);
  Alcotest.(check (option int)) "peek empty" None (Seq_deque.peek_right e)

(* Naive reference: the deque as a bare list. *)
module Ref_deque = struct
  type t = int list * int option (* contents, capacity *)

  let make capacity : t = ([], capacity)

  let apply ((xs, cap) : t) (op : int Op.op) : t * int Op.res =
    let full = match cap with None -> false | Some c -> List.length xs >= c in
    match op with
    | Op.Push_right v ->
        if full then ((xs, cap), Op.Full) else ((xs @ [ v ], cap), Op.Okay)
    | Op.Push_left v ->
        if full then ((xs, cap), Op.Full) else ((v :: xs, cap), Op.Okay)
    | Op.Pop_left -> (
        match xs with
        | [] -> ((xs, cap), Op.Empty)
        | v :: rest -> ((rest, cap), Op.Got v))
    | Op.Pop_right -> (
        match List.rev xs with
        | [] -> ((xs, cap), Op.Empty)
        | v :: rest -> ((List.rev rest, cap), Op.Got v))
end

let op_gen =
  let open QCheck2.Gen in
  frequency
    [
      (3, map (fun v -> Op.Push_right v) (int_bound 99));
      (3, map (fun v -> Op.Push_left v) (int_bound 99));
      (2, return Op.Pop_right);
      (2, return Op.Pop_left);
    ]

let print_ops ops =
  ops
  |> List.map (fun op -> Format.asprintf "%a" (Op.pp_op Format.pp_print_int) op)
  |> String.concat "; "

let ops_gen = QCheck2.Gen.(list_size (0 -- 200) op_gen)

let equiv_unbounded =
  QCheck2.Test.make ~name:"oracle = naive list deque (unbounded)" ~count:300
    ~print:print_ops ops_gen (fun ops ->
      let rec go d r = function
        | [] -> Seq_deque.to_list d = fst r
        | op :: rest ->
            let d', res_d = Seq_deque.apply d op in
            let r', res_r = Ref_deque.apply r op in
            res_d = res_r && go d' r' rest
      in
      go (Seq_deque.make ()) (Ref_deque.make None) ops)

let equiv_bounded =
  QCheck2.Test.make ~name:"oracle = naive list deque (capacity 5)" ~count:300
    ~print:print_ops ops_gen (fun ops ->
      let rec go d r = function
        | [] -> Seq_deque.to_list d = fst r
        | op :: rest ->
            let d', res_d = Seq_deque.apply d op in
            let r', res_r = Ref_deque.apply r op in
            res_d = res_r && go d' r' rest
      in
      go (Seq_deque.make ~capacity:5 ()) (Ref_deque.make (Some 5)) ops)

let length_invariant =
  QCheck2.Test.make ~name:"length = |to_list|" ~count:300 ~print:print_ops
    ops_gen (fun ops ->
      let d =
        List.fold_left (fun d op -> fst (Seq_deque.apply d op))
          (Seq_deque.make ()) ops
      in
      Seq_deque.length d = List.length (Seq_deque.to_list d))

let () =
  Alcotest.run "seq_deque"
    [
      ( "transitions",
        [
          Alcotest.test_case "paper worked example" `Quick test_paper_example;
          Alcotest.test_case "empty pops" `Quick test_empty_pops;
          Alcotest.test_case "full pushes" `Quick test_full_pushes;
          Alcotest.test_case "capacity validation" `Quick test_capacity_validation;
          Alcotest.test_case "peek" `Quick test_peek;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest equiv_unbounded;
          QCheck_alcotest.to_alcotest equiv_bounded;
          QCheck_alcotest.to_alcotest length_invariant;
        ] );
    ]

(* Tests for Spec.Algebra: the Figure 35 deque axioms, checked both on
   enumerated small terms and with qcheck generators, plus the bridge
   between the algebra and the Section 2.2 state machine. *)

open Spec

let eq_int = Int.equal

(* A generator of small algebra terms over small ints. *)
let term_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ return Algebra.EmptyQ; map (fun v -> Algebra.Singleton v) (int_bound 9) ]
      else
        frequency
          [
            (1, return Algebra.EmptyQ);
            (2, map (fun v -> Algebra.Singleton v) (int_bound 9));
            ( 3,
              map2
                (fun a b -> Algebra.Concat (a, b))
                (self (n / 2)) (self (n / 2)) );
          ])

let print_term t =
  t |> Algebra.denote |> List.map string_of_int |> String.concat ","

let law1 name f =
  QCheck2.Test.make ~name ~count:500 ~print:print_term term_gen f

let law2 name f =
  QCheck2.Test.make ~name ~count:500
    ~print:(QCheck2.Print.pair print_term print_term)
    (QCheck2.Gen.pair term_gen term_gen)
    (fun (a, b) -> f a b)

let law3 name f =
  QCheck2.Test.make ~name ~count:500
    ~print:(QCheck2.Print.triple print_term print_term print_term)
    (QCheck2.Gen.triple term_gen term_gen term_gen)
    (fun (a, b, c) -> f a b c)

let qcheck_laws =
  List.map QCheck_alcotest.to_alcotest
    [
      law1 "concat_empty_right" (Algebra.Laws.concat_empty_right eq_int);
      law1 "concat_empty_left" (Algebra.Laws.concat_empty_left eq_int);
      law2 "concat_nonempty_left" (Algebra.Laws.concat_nonempty_left eq_int);
      law2 "concat_nonempty_right" (Algebra.Laws.concat_nonempty_right eq_int);
      law3 "concat_assoc" (Algebra.Laws.concat_assoc eq_int);
      law2 "peek_r_concat" Algebra.Laws.peek_r_concat;
      law2 "peek_l_concat" Algebra.Laws.peek_l_concat;
      law2 "pop_r_concat" (Algebra.Laws.pop_r_concat eq_int);
      law2 "pop_l_concat" (Algebra.Laws.pop_l_concat eq_int);
      law2 "len_concat" (fun a b -> Algebra.Laws.len_concat a b);
      law1 "push_l_def" (fun q -> Algebra.Laws.push_l_def eq_int q 7);
      law1 "push_r_def" (fun q -> Algebra.Laws.push_r_def eq_int q 7);
    ]

let test_singleton_laws () =
  for v = -3 to 3 do
    Alcotest.(check bool) "constructors_distinct" true
      (Algebra.Laws.constructors_distinct v);
    Alcotest.(check bool) "peek_r_singleton" true (Algebra.Laws.peek_r_singleton v);
    Alcotest.(check bool) "peek_l_singleton" true (Algebra.Laws.peek_l_singleton v);
    Alcotest.(check bool) "pop_r_singleton" true
      (Algebra.Laws.pop_r_singleton eq_int v);
    Alcotest.(check bool) "pop_l_singleton" true
      (Algebra.Laws.pop_l_singleton eq_int v);
    Alcotest.(check bool) "len_singleton" true (Algebra.Laws.len_singleton v)
  done;
  Alcotest.(check bool) "len_empty" true (Algebra.Laws.len_empty ())

(* The algebra's mutators agree with the Section 2.2 state machine. *)
let test_bridge_push_pop () =
  let t = Algebra.of_list [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "denote" [ 1; 2; 3 ] (Algebra.denote t);
  let t = Algebra.push_l t 0 in
  let t = Algebra.push_r t 4 in
  Alcotest.(check (list int)) "pushes" [ 0; 1; 2; 3; 4 ] (Algebra.denote t);
  Alcotest.(check (option int)) "peek_l" (Some 0) (Algebra.peek_l t);
  Alcotest.(check (option int)) "peek_r" (Some 4) (Algebra.peek_r t);
  match (Algebra.pop_l t, Algebra.pop_r t) with
  | Some l, Some r ->
      Alcotest.(check (list int)) "pop_l" [ 1; 2; 3; 4 ] (Algebra.denote l);
      Alcotest.(check (list int)) "pop_r" [ 0; 1; 2; 3 ] (Algebra.denote r)
  | _ -> Alcotest.fail "pop on non-empty returned None"

let test_pops_undefined_on_empty () =
  Alcotest.(check bool) "pop_r EmptyQ" true (Algebra.pop_r Algebra.EmptyQ = None);
  Alcotest.(check bool) "pop_l EmptyQ" true (Algebra.pop_l Algebra.EmptyQ = None);
  Alcotest.(check bool) "peek_r EmptyQ" true (Algebra.peek_r Algebra.EmptyQ = None);
  Alcotest.(check bool) "peek_l EmptyQ" true (Algebra.peek_l Algebra.EmptyQ = None)

(* qcheck: algebra operations commute with the Seq_deque oracle *)
let commute_with_oracle =
  QCheck2.Test.make ~name:"algebra agrees with Seq_deque oracle" ~count:500
    ~print:print_term term_gen (fun t ->
      let d = Algebra.to_seq_deque t in
      let via_algebra =
        match Algebra.pop_l (Algebra.push_r t 42) with
        | Some t' -> Algebra.denote t'
        | None -> []
      in
      let via_oracle =
        let d, r1 = Seq_deque.push_right d 42 in
        let d, r2 = Seq_deque.pop_left d in
        assert (r1 = Op.Okay);
        ignore r2;
        Seq_deque.to_list d
      in
      via_algebra = via_oracle)

let () =
  Alcotest.run "algebra"
    [
      ("figure-35-laws", qcheck_laws);
      ( "singleton-laws",
        [ Alcotest.test_case "enumerated" `Quick test_singleton_laws ] );
      ( "bridge",
        [
          Alcotest.test_case "push/pop/peek" `Quick test_bridge_push_pop;
          Alcotest.test_case "empty partiality" `Quick test_pops_undefined_on_empty;
          QCheck_alcotest.to_alcotest commute_with_oracle;
        ] );
    ]

(* Tests for the baseline implementations: the sequential ring, the
   lock-based deques, the ABP work-stealing deque, Greenwald v1
   (correct but end-serializing), and the Greenwald v2 reconstruction —
   including the deterministic schedule on which v2 misreports "full"
   with a single element present (experiment E6). *)

let ring_tests =
  [
    Alcotest.test_case "ring: fifo + lifo" `Quick (fun () ->
        let r = Baselines.Ring.create ~capacity:4 () in
        Alcotest.(check bool) "empty" true (Baselines.Ring.pop_left r = `Empty);
        ignore (Baselines.Ring.push_right r 1);
        ignore (Baselines.Ring.push_right r 2);
        ignore (Baselines.Ring.push_left r 0);
        Alcotest.(check (list int)) "contents" [ 0; 1; 2 ]
          (Baselines.Ring.to_list r);
        Alcotest.(check bool) "push to full" true
          (Baselines.Ring.push_left r 9 = `Okay);
        Alcotest.(check bool) "full" true (Baselines.Ring.push_right r 9 = `Full);
        Alcotest.(check bool) "pop r" true (Baselines.Ring.pop_right r = `Value 2);
        Alcotest.(check bool) "pop l" true (Baselines.Ring.pop_left r = `Value 9);
        Alcotest.(check int) "length" 2 (Baselines.Ring.length r));
    Alcotest.test_case "ring: capacity validation" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Ring.create: capacity must be >= 1") (fun () ->
            ignore (Baselines.Ring.create ~capacity:0 ())));
  ]

let lock_impls : Test_support.impl list =
  [
    Test_support.of_module (module Baselines.Lock_deque) ~bounded:true;
    Test_support.of_module (module Baselines.Spin_deque) ~bounded:true;
  ]

let lock_qcheck =
  List.map
    (fun impl ->
      QCheck_alcotest.to_alcotest (Test_support.qcheck_sequential impl))
    lock_impls

(* --- ABP deque --- *)

let abp_tests =
  let module A = Baselines.Abp_deque in
  [
    Alcotest.test_case "abp: owner lifo" `Quick (fun () ->
        let d = A.create ~capacity:16 () in
        Alcotest.(check bool) "empty" true (A.pop_bottom d = `Empty);
        ignore (A.push_bottom d 1);
        ignore (A.push_bottom d 2);
        ignore (A.push_bottom d 3);
        Alcotest.(check bool) "pop 3" true (A.pop_bottom d = `Value 3);
        Alcotest.(check bool) "pop 2" true (A.pop_bottom d = `Value 2);
        Alcotest.(check bool) "pop 1" true (A.pop_bottom d = `Value 1);
        Alcotest.(check bool) "empty" true (A.pop_bottom d = `Empty));
    Alcotest.test_case "abp: steal fifo" `Quick (fun () ->
        let d = A.create ~capacity:16 () in
        ignore (A.push_bottom d 1);
        ignore (A.push_bottom d 2);
        ignore (A.push_bottom d 3);
        Alcotest.(check bool) "steal 1" true (A.steal_retry d = `Value 1);
        Alcotest.(check bool) "steal 2" true (A.steal_retry d = `Value 2);
        Alcotest.(check bool) "pop 3" true (A.pop_bottom d = `Value 3);
        Alcotest.(check bool) "steal empty" true (A.steal_retry d = `Empty));
    Alcotest.test_case "abp: capacity" `Quick (fun () ->
        let d = A.create ~capacity:2 () in
        ignore (A.push_bottom d 1);
        ignore (A.push_bottom d 2);
        Alcotest.(check bool) "full" true (A.push_bottom d 3 = `Full));
    Alcotest.test_case "abp: owner vs thieves race on last element" `Slow
      (fun () ->
        (* repeatedly race one owner pop against two thieves for a
           single element: exactly one of the three gets it *)
        for _round = 1 to 2000 do
          let d = A.create ~capacity:4 () in
          ignore (A.push_bottom d 42);
          let winners = Atomic.make 0 in
          let thief () =
            match A.steal_retry d with
            | `Value v ->
                Alcotest.(check int) "stolen value" 42 v;
                Atomic.incr winners
            | `Empty -> ()
          in
          let t1 = Domain.spawn thief and t2 = Domain.spawn thief in
          (match A.pop_bottom d with
          | `Value v ->
              Alcotest.(check int) "popped value" 42 v;
              Atomic.incr winners
          | `Empty -> ());
          Domain.join t1;
          Domain.join t2;
          Alcotest.(check int) "exactly one winner" 1 (Atomic.get winners)
        done);
  ]

(* --- Greenwald v1: correct, but serializes the two ends --- *)

let g1_impl : Test_support.impl =
  let module G = Baselines.Greenwald_v1.Sequential in
  {
    impl_name = G.name;
    bounded = true;
    fresh =
      (fun ~capacity ->
        let d = G.make ~length:capacity () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> G.push_right d v)
          ~push_left:(fun v -> G.push_left d v)
          ~pop_right:(fun () -> G.pop_right d)
          ~pop_left:(fun () -> G.pop_left d)
          ~to_list:(Some (fun () -> G.unsafe_to_list d))
          ~invariant:None);
  }

let g1_lockfree_impl : Test_support.impl =
  let module G = Baselines.Greenwald_v1.Lockfree in
  {
    impl_name = G.name;
    bounded = true;
    fresh =
      (fun ~capacity ->
        let d = G.make ~length:capacity () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> G.push_right d v)
          ~push_left:(fun v -> G.push_left d v)
          ~pop_right:(fun () -> G.pop_right d)
          ~pop_left:(fun () -> G.pop_left d)
          ~to_list:(Some (fun () -> G.unsafe_to_list d))
          ~invariant:None);
  }

let greenwald_v1_tests =
  [
    QCheck_alcotest.to_alcotest (Test_support.qcheck_sequential g1_impl);
    QCheck_alcotest.to_alcotest
      (Test_support.qcheck_sequential ~count:100 g1_lockfree_impl);
    Alcotest.test_case "greenwald v1: index range restriction" `Quick (fun () ->
        match Baselines.Greenwald_v1.Sequential.make ~length:(1 lsl 21) () with
        | _ -> Alcotest.fail "expected rejection of out-of-range length"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "greenwald v1: concurrent conservation" `Slow (fun () ->
        Test_support.stress_conservation g1_lockfree_impl ~threads:4
          ~iters:5_000 ~capacity:32 ());
  ]

(* --- Greenwald v2 reconstruction: the E6 failure --- *)

(* The documented flaw needs an interleaving: a pusher reads its index,
   another thread drains the deque from the opposite side and pushes a
   value into the cell the stale index points at, and the pusher then
   concludes "full" from the occupied cell without the confirming DCAS
   of Figure 3 lines 6-10 — while the deque holds a single element.
   The model checker finds such a schedule exhaustively; the same
   scenario run over the paper's algorithm is clean (its confirmation
   DCAS fails and the push retries). *)
let test_greenwald_v2_modelcheck () =
  let threads =
    [ [ Spec.Op.Push_right 9 ]; [ Spec.Op.Pop_left; Spec.Op.Push_right 8 ] ]
  in
  let flawed =
    Modelcheck.Scenario.greenwald_v2 ~name:"gw2-flaw" ~length:2 ~prefill:[ 7 ]
      threads
  in
  (match (Modelcheck.Explorer.explore flawed).Modelcheck.Explorer.error with
  | Some f ->
      Alcotest.(check string)
        "non-linearizable schedule found" "history is not linearizable"
        f.Modelcheck.Explorer.reason
  | None ->
      Alcotest.fail
        "expected the explorer to find Greenwald v2's false-full schedule");
  let sound =
    Modelcheck.Scenario.array_deque ~name:"paper-same-scenario" ~length:2
      ~prefill:[ 7 ] threads
  in
  match (Modelcheck.Explorer.explore sound).Modelcheck.Explorer.error with
  | None -> ()
  | Some f ->
      Alcotest.failf "paper's algorithm failed the same scenario: %s"
        f.Modelcheck.Explorer.reason

(* Sanity: on schedules without the race, v2 behaves like a deque. *)
let g2_impl : Test_support.impl =
  let module G = Baselines.Greenwald_v2.Sequential in
  {
    impl_name = G.name;
    bounded = true;
    fresh =
      (fun ~capacity ->
        let d = G.make ~length:capacity () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> G.push_right d v)
          ~push_left:(fun v -> G.push_left d v)
          ~pop_right:(fun () -> G.pop_right d)
          ~pop_left:(fun () -> G.pop_left d)
          ~to_list:(Some (fun () -> G.unsafe_to_list d))
          ~invariant:None);
  }

let greenwald_v2_tests =
  [
    Alcotest.test_case "model checker finds the flaw (E6)" `Slow
      test_greenwald_v2_modelcheck;
    QCheck_alcotest.to_alcotest
      (Test_support.qcheck_sequential ~count:100 g2_impl);
  ]

let () =
  Alcotest.run "baselines"
    [
      ("ring", ring_tests);
      ("lock deques", lock_qcheck);
      ("abp", abp_tests);
      ("greenwald v1", greenwald_v1_tests);
      ("greenwald v2", greenwald_v2_tests);
    ]

(* Tests for the work-stealing scheduler over every deque adapter: the
   computed results certify that no task is lost or duplicated, across
   worker counts and workloads (experiment E8's correctness side). *)

let rec seq_fib n = if n < 2 then n else seq_fib (n - 1) + seq_fib (n - 2)

let schedulers : (string * (module Worksteal.Worksteal_intf.SCHEDULER)) list =
  [
    ("abp", (module Worksteal.Scheduler.Abp_scheduler));
    ("array-deque", (module Worksteal.Scheduler.Array_scheduler));
    ("list-deque", (module Worksteal.Scheduler.List_scheduler));
    ("lock-deque", (module Worksteal.Scheduler.Lock_scheduler));
  ]

let fib_case name (module S : Worksteal.Worksteal_intf.SCHEDULER) workers n =
  Alcotest.test_case
    (Printf.sprintf "%s: fib %d on %d workers" name n workers)
    `Slow
    (fun () ->
      let module W = Worksteal.Workloads.Make (S) in
      let got = W.fib ~workers ~capacity:8192 n in
      Alcotest.(check int) "fib result" (seq_fib n) got)

let tree_case name (module S : Worksteal.Worksteal_intf.SCHEDULER) workers
    degree depth =
  Alcotest.test_case
    (Printf.sprintf "%s: %d^%d tree on %d workers" name degree depth workers)
    `Slow
    (fun () ->
      let module W = Worksteal.Workloads.Make (S) in
      let got = W.tree ~workers ~capacity:8192 ~degree ~depth () in
      let expect = int_of_float (float_of_int degree ** float_of_int depth) in
      Alcotest.(check int) "leaf count" expect got)

let fib_tests =
  List.concat_map
    (fun (name, s) -> [ fib_case name s 1 18; fib_case name s 4 20 ])
    schedulers

let tree_tests =
  List.concat_map
    (fun (name, s) -> [ tree_case name s 3 3 7; tree_case name s 2 5 5 ])
    schedulers

(* Tiny deques force the spawn-inline fallback path. *)
let inline_fallback_tests =
  List.map
    (fun (name, (module S : Worksteal.Worksteal_intf.SCHEDULER)) ->
      Alcotest.test_case (name ^ ": capacity-2 inline fallback") `Slow
        (fun () ->
          let module W = Worksteal.Workloads.Make (S) in
          let got = W.tree ~workers:3 ~capacity:2 ~degree:2 ~depth:8 () in
          Alcotest.(check int) "leaf count despite tiny deques" 256 got))
    schedulers

(* Determinism of the RNG plumbing: same seed, same single-worker
   schedule, same result (trivially), but also repeated multi-worker
   runs must agree on the (deterministic) result value. *)
let repeatability =
  [
    Alcotest.test_case "results stable across runs" `Slow (fun () ->
        let module W = Worksteal.Workloads.Make (Worksteal.Scheduler.Abp_scheduler)
        in
        let a = W.fib ~workers:4 ~capacity:4096 19 in
        let b = W.fib ~workers:4 ~capacity:4096 19 in
        Alcotest.(check int) "same value" a b);
  ]

let () =
  Alcotest.run "worksteal"
    [
      ("fib", fib_tests);
      ("tree", tree_tests);
      ("inline fallback", inline_fallback_tests);
      ("repeatability", repeatability);
    ]

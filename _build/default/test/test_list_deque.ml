(* Tests for the linked-list deque of Section 4 — experiment E3's
   correctness side: the four empty-deque configurations of Figure 9,
   logical vs physical deletion, the allocator (footnote 3) semantics,
   the Figures 24-25 representation invariant, and sequential
   equivalence with the oracle on every memory model. *)

let impl_of (module L : Deque.List_deque.ALGORITHM) : Test_support.impl =
  {
    impl_name = L.name;
    bounded = false;
    fresh =
      (fun ~capacity:_ ->
        let d = L.make () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> L.push_right d v)
          ~push_left:(fun v -> L.push_left d v)
          ~pop_right:(fun () -> L.pop_right d)
          ~pop_left:(fun () -> L.pop_left d)
          ~to_list:(Some (fun () -> L.unsafe_to_list d))
          ~invariant:(Some (fun () -> L.check_invariant d)));
  }

let algorithms : (module Deque.List_deque.ALGORITHM) list =
  [
    (module Deque.List_deque.Lockfree);
    (module Deque.List_deque.Locked);
    (module Deque.List_deque.Striped);
    (module Deque.List_deque.Sequential);
  ]

module L = Deque.List_deque.Sequential

let check_inv d =
  match L.check_invariant d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e

(* Figure 9: after popping, the deque passes through the
   one-deleted-cell and two-deleted-cell empty configurations; every
   subsequent operation still behaves correctly and the invariant
   holds throughout. *)
let test_figure9_empty_states () =
  let d = L.make () in
  check_inv d;
  (* state: plain empty (top of Figure 9) *)
  Alcotest.(check bool) "popRight empty" true (L.pop_right d = `Empty);
  Alcotest.(check bool) "popLeft empty" true (L.pop_left d = `Empty);
  (* one element, popped from the right: right-deleted empty state *)
  ignore (L.push_right d 1);
  Alcotest.(check bool) "pop 1" true (L.pop_right d = `Value 1);
  check_inv d;
  Alcotest.(check bool) "empty despite pending deletion" true
    (L.pop_right d = `Empty);
  Alcotest.(check bool) "empty from the left too" true (L.pop_left d = `Empty);
  check_inv d;
  (* one element, popped from the left: left-deleted empty state *)
  ignore (L.push_left d 2);
  Alcotest.(check bool) "pop 2" true (L.pop_left d = `Value 2);
  check_inv d;
  Alcotest.(check bool) "empty" true (L.pop_left d = `Empty);
  (* two elements, one popped from each side: two deleted cells *)
  ignore (L.push_right d 3);
  ignore (L.push_right d 4);
  Alcotest.(check bool) "pop right" true (L.pop_right d = `Value 4);
  Alcotest.(check bool) "pop left" true (L.pop_left d = `Value 3);
  check_inv d;
  Alcotest.(check bool) "empty with two pending" true (L.pop_right d = `Empty);
  Alcotest.(check bool) "empty with two pending (left)" true
    (L.pop_left d = `Empty);
  check_inv d;
  (* pushes on both sides complete the pending deletions *)
  Alcotest.(check bool) "push right after deletions" true
    (L.push_right d 5 = `Okay);
  Alcotest.(check bool) "push left after deletions" true
    (L.push_left d 6 = `Okay);
  check_inv d;
  Alcotest.(check (list int)) "contents" [ 6; 5 ] (L.unsafe_to_list d)

(* Explicit delete procedures are idempotent and safe when nothing is
   pending. *)
let test_delete_idempotent () =
  let d = L.make () in
  L.delete_right d;
  L.delete_left d;
  check_inv d;
  ignore (L.push_right d 1);
  ignore (L.pop_right d);
  (* deletion pending on the right *)
  L.delete_right d;
  L.delete_right d;
  (* run twice: second call must be a no-op *)
  check_inv d;
  Alcotest.(check bool) "still works" true (L.push_right d 2 = `Okay);
  Alcotest.(check bool) "pop" true (L.pop_left d = `Value 2)

(* Figure 16's left-wins / right-wins outcomes, driven sequentially:
   after both ends are logically deleted, completing the deletions in
   either order leaves a consistent empty deque. *)
let test_figure16_orders () =
  let exercise first second =
    let d = L.make () in
    ignore (L.push_right d 1);
    ignore (L.push_right d 2);
    Alcotest.(check bool) "pop r" true (L.pop_right d = `Value 2);
    Alcotest.(check bool) "pop l" true (L.pop_left d = `Value 1);
    first d;
    check_inv d;
    second d;
    check_inv d;
    Alcotest.(check bool) "empty" true (L.pop_right d = `Empty);
    Alcotest.(check bool) "push works" true (L.push_left d 9 = `Okay);
    Alcotest.(check (list int)) "contents" [ 9 ] (L.unsafe_to_list d)
  in
  exercise L.delete_right L.delete_left;
  exercise L.delete_left L.delete_right

(* Footnote 3: pushes return full exactly when allocation fails, and
   physical deletion releases memory. *)
let test_allocator_semantics () =
  let alloc = Deque.Alloc.bounded 2 in
  let d = L.make ~alloc () in
  Alcotest.(check bool) "push 1" true (L.push_right d 1 = `Okay);
  Alcotest.(check bool) "push 2" true (L.push_left d 2 = `Okay);
  Alcotest.(check bool) "push 3 fails (budget)" true (L.push_right d 3 = `Full);
  Alcotest.(check (option int)) "no credits" (Some 0)
    (Deque.Alloc.available alloc);
  (* logical deletion alone frees nothing *)
  Alcotest.(check bool) "pop" true (L.pop_right d = `Value 1);
  Alcotest.(check bool) "still full before physical deletion" true
    (L.push_right d 4 = `Full);
  (* the delete inside the next operation frees the node; afterwards a
     push succeeds again *)
  L.delete_right d;
  Alcotest.(check (option int)) "credit back" (Some 1)
    (Deque.Alloc.available alloc);
  Alcotest.(check bool) "push succeeds after reclaim" true
    (L.push_right d 5 = `Okay);
  check_inv d;
  Alcotest.(check (list int)) "contents" [ 2; 5 ] (L.unsafe_to_list d)

(* Mixed random single-threaded churn keeps the invariant. *)
let test_churn_invariant () =
  let d = L.make () in
  let rng = Harness.Splitmix.create ~seed:7 in
  for i = 1 to 2000 do
    (match Harness.Splitmix.int rng ~bound:4 with
    | 0 -> ignore (L.push_right d i)
    | 1 -> ignore (L.push_left d i)
    | 2 -> ignore (L.pop_right d)
    | _ -> ignore (L.pop_left d));
    if i mod 50 = 0 then check_inv d
  done;
  check_inv d

let qcheck_tests =
  List.map
    (fun (module M : Deque.List_deque.ALGORITHM) ->
      QCheck_alcotest.to_alcotest
        (Test_support.qcheck_sequential (impl_of (module M))))
    algorithms

(* --- Node recycling (the E16 probe of the GC assumption) --- *)

(* Sequential semantics are unchanged with recycling on. *)
let recycle_impl : Test_support.impl =
  let module R = Deque.List_deque.Sequential in
  {
    impl_name = R.name ^ "(recycle)";
    bounded = false;
    fresh =
      (fun ~capacity:_ ->
        let d = R.make ~recycle:true () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> R.push_right d v)
          ~push_left:(fun v -> R.push_left d v)
          ~pop_right:(fun () -> R.pop_right d)
          ~pop_left:(fun () -> R.pop_left d)
          ~to_list:(Some (fun () -> R.unsafe_to_list d))
          ~invariant:(Some (fun () -> R.check_invariant d)));
  }

(* Nodes really are reused: with a bounded allocator and recycling, a
   push after pop+delete succeeds without any new credit. *)
let test_recycling_reuses_nodes () =
  let module R = Deque.List_deque.Sequential in
  let alloc = Deque.Alloc.bounded 1 in
  let d = R.make ~alloc ~recycle:true () in
  for round = 1 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "push round %d" round)
      true
      (R.push_right d round = `Okay);
    Alcotest.(check bool) "budget exhausted" true (R.push_right d 0 = `Full);
    Alcotest.(check bool) "pop" true (R.pop_right d = `Value round);
    R.delete_right d
  done

(* Exhaustive: immediate reuse with repeated values yields no
   observable ABA (the negative result of experiment E16). *)
let test_recycling_model_checked () =
  let open Spec.Op in
  let check name scenario =
    match (Modelcheck.Explorer.explore scenario).Modelcheck.Explorer.error with
    | None -> ()
    | Some f -> Alcotest.failf "%s: %s" name f.Modelcheck.Explorer.reason
  in
  check "reuse vs popL"
    (Modelcheck.Scenario.list_deque ~recycle:true ~name:"m1" ~prefill:[ 2 ]
       [ [ Pop_right; Push_right 2 ]; [ Pop_left ] ]);
  check "reuse across pending deletion"
    (Modelcheck.Scenario.list_deque ~recycle:true ~name:"m2" ~prefill:[ 1; 2 ]
       ~setup:[ Pop_right ]
       [ [ Push_right 2 ]; [ Pop_right ] ])

let () =
  Alcotest.run "list_deque"
    [
      ( "empty states (E3)",
        [
          Alcotest.test_case "figure 9 configurations" `Quick
            test_figure9_empty_states;
          Alcotest.test_case "delete idempotent" `Quick test_delete_idempotent;
          Alcotest.test_case "figure 16 completion orders" `Quick
            test_figure16_orders;
        ] );
      ( "allocator (footnote 3)",
        [ Alcotest.test_case "bounded budget" `Quick test_allocator_semantics ] );
      ( "invariant",
        [ Alcotest.test_case "random churn" `Quick test_churn_invariant ] );
      ( "recycling (E16)",
        [
          QCheck_alcotest.to_alcotest
            (Test_support.qcheck_sequential ~count:150 recycle_impl);
          Alcotest.test_case "nodes actually reused" `Quick
            test_recycling_reuses_nodes;
          Alcotest.test_case "no ABA under exhaustive reuse" `Slow
            test_recycling_model_checked;
        ] );
      ("oracle equivalence", qcheck_tests);
    ]

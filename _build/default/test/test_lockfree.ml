(* Experiment E14: lock-freedom (Theorems 3.1 and 4.1's non-blocking
   half), tested two ways.

   Model-checker leg: freeze one thread at EVERY one of its reachable
   step counts and verify all other threads still complete.  This
   covers the paper's subtle cases: a thread frozen between the logical
   and physical phases of a pop leaves a deleted mark that others must
   complete or work around (Section 4), and a thread frozen holding a
   CASN descriptor in the lock-free memory model must be helped.

   Real-domain leg: a worker sleeps mid-operation (between two of its
   shared-memory accesses, via the stall-instrumented memory) while
   others hammer the deque; with the DCAS deques the others make
   progress, with the lock-based baseline an equivalent sleep holding
   the lock stops everyone. *)

open Spec.Op

let assert_nonblocking name scenario ~victim =
  match Modelcheck.Explorer.check_nonblocking scenario ~victim with
  | Ok stall_points ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: survived all %d stall points" name stall_points)
        true (stall_points > 0)
  | Error j -> Alcotest.failf "%s: blocked at stall point %d" name j

let test_array_nonblocking () =
  let scenario =
    Modelcheck.Scenario.array_deque ~name:"nb-array" ~length:3 ~prefill:[ 1 ]
      [ [ Pop_right; Push_right 2 ]; [ Pop_left ]; [ Push_left 3 ] ]
  in
  assert_nonblocking "array, victim 0" scenario ~victim:0;
  assert_nonblocking "array, victim 1" scenario ~victim:1

let test_list_nonblocking () =
  let scenario =
    Modelcheck.Scenario.list_deque ~name:"nb-list" ~prefill:[ 1; 2 ]
      [ [ Pop_right; Push_right 3 ]; [ Pop_left ]; [ Push_left 4 ] ]
  in
  assert_nonblocking "list, victim 0" scenario ~victim:0;
  assert_nonblocking "list, victim 1" scenario ~victim:1

let test_list_nonblocking_deletion_phase () =
  (* victim frozen while completing Figure 16's physical deletions *)
  let scenario =
    Modelcheck.Scenario.list_deque ~name:"nb-del" ~prefill:[ 1; 2 ]
      ~setup:[ Pop_right; Pop_left ]
      [ [ Push_right 3 ]; [ Push_left 4 ]; [ Pop_right ] ]
  in
  assert_nonblocking "list deletion, victim 0" scenario ~victim:0;
  assert_nonblocking "list deletion, victim 2" scenario ~victim:2

let test_dummy_nonblocking () =
  let scenario =
    Modelcheck.Scenario.list_deque_dummy ~name:"nb-dummy" ~prefill:[ 1; 2 ]
      ~setup:[ Pop_right; Pop_left ]
      [ [ Push_right 3 ]; [ Push_left 4 ] ]
  in
  assert_nonblocking "dummy, victim 0" scenario ~victim:0;
  assert_nonblocking "dummy, victim 1" scenario ~victim:1

(* --- Real domains: stall injection --- *)

(* The lock-free deque over the stall-instrumented memory: a victim
   sleeping mid-operation must not prevent others from completing. *)
module Stalling_mem = Harness.Stall.Mem_stalling (Dcas.Mem_lockfree)
module Stalling_deque = Deque.Array_deque.Make (Stalling_mem)

let test_real_stall_lockfree () =
  let d = Stalling_deque.make ~length:64 () in
  for i = 1 to 8 do
    ignore (Stalling_deque.push_right d i)
  done;
  let others_done = Atomic.make 0 in
  let victim () =
    (* sleep in the middle of a push: after its 2nd shared access *)
    Harness.Stall.request ~after_ops:2 ~duration:0.4;
    ignore (Stalling_deque.push_right d 99)
  in
  let worker () =
    for i = 1 to 3000 do
      ignore (Stalling_deque.push_left d i);
      ignore (Stalling_deque.pop_right d)
    done;
    Atomic.incr others_done
  in
  let t0 = Unix.gettimeofday () in
  let v = Domain.spawn victim in
  let w1 = Domain.spawn worker and w2 = Domain.spawn worker in
  Domain.join w1;
  Domain.join w2;
  let workers_elapsed = Unix.gettimeofday () -. t0 in
  Domain.join v;
  Alcotest.(check int) "both workers completed" 2 (Atomic.get others_done);
  (* the workers must not have waited for the victim's 400ms sleep on
     every operation; generous bound to stay robust on a loaded box *)
  Alcotest.(check bool)
    (Printf.sprintf "workers unimpeded (%.2fs)" workers_elapsed)
    true (workers_elapsed < 30.)

(* The lock-based deque under the same sleep, held inside the critical
   section: workers cannot complete until the victim wakes. *)
let test_real_stall_lock () =
  let d = Baselines.Lock_deque.create ~capacity:64 () in
  ignore (Baselines.Lock_deque.push_right d 1);
  let sleep = 0.3 in
  let worker_latency = ref 0. in
  let started = Atomic.make false in
  let victim () =
    Baselines.Lock_deque.with_lock_held d (fun () ->
        Atomic.set started true;
        Unix.sleepf sleep)
  in
  let worker () =
    while not (Atomic.get started) do
      Domain.cpu_relax ()
    done;
    let t0 = Unix.gettimeofday () in
    ignore (Baselines.Lock_deque.pop_right d);
    worker_latency := Unix.gettimeofday () -. t0
  in
  let v = Domain.spawn victim in
  let w = Domain.spawn worker in
  Domain.join v;
  Domain.join w;
  Alcotest.(check bool)
    (Printf.sprintf "worker blocked ~%.0fms behind the lock holder"
       (!worker_latency *. 1000.))
    true
    (!worker_latency >= sleep *. 0.5)

let () =
  Alcotest.run "lockfree"
    [
      ( "model checker stall points (E14)",
        [
          Alcotest.test_case "array deque" `Slow test_array_nonblocking;
          Alcotest.test_case "list deque" `Slow test_list_nonblocking;
          Alcotest.test_case "list deque deletions" `Slow
            test_list_nonblocking_deletion_phase;
          Alcotest.test_case "dummy variant" `Slow test_dummy_nonblocking;
        ] );
      ( "real-domain stalls (E9/E14)",
        [
          Alcotest.test_case "lock-free deque tolerates mid-op sleep" `Slow
            test_real_stall_lockfree;
          Alcotest.test_case "lock deque blocks behind sleeper" `Slow
            test_real_stall_lock;
        ] );
    ]

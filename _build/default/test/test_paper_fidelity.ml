(* Fidelity tests: checks pinned to specific sentences of the paper —
   the conventions its pseudocode relies on, the corrected errata in
   the left-hand-side listings, and the optionality claims about the
   strong DCAS form.  If a refactor silently diverges from the paper,
   these are the tests meant to fail first. *)

(* "We assume that mod is the modulus operation over the integers
   (-1 mod 6 = 5, -2 mod 6 = 4, and so on)." — Section 3.  OCaml's
   [mod] does not satisfy this; the deques use a Euclidean modulus.
   Check the convention through observable wraparound behaviour. *)
let test_mod_convention () =
  let module A = Deque.Array_deque.Sequential in
  let d = A.make ~length:6 () in
  (* first pushLeft writes at L=0 and moves L to (0-1) mod 6 = 5; a
     second pushLeft must land at index 5, i.e. directly "left" of 0
     in circular order *)
  ignore (A.push_left d 1);
  ignore (A.push_left d 2);
  Alcotest.(check (list int)) "wrap to 5" [ 2; 1 ] (A.unsafe_to_list d);
  Alcotest.(check bool) "pop from left" true (A.pop_left d = `Value 2)

(* "Initially L == 0, (L + 1) mod length_S = R": an empty deque's very
   first rightward push and leftward push land adjacently. *)
let test_initial_indices () =
  let module A = Deque.Array_deque.Sequential in
  let d = A.make ~length:4 () in
  ignore (A.push_right d 10);
  ignore (A.push_left d 20);
  Alcotest.(check (list int)) "adjacent" [ 20; 10 ] (A.unsafe_to_list d)

(* The bounded deque's capacity is exactly length_S ("reached a full
   state if its cardinality is length_S"). *)
let test_capacity_exact () =
  let module A = Deque.Array_deque.Sequential in
  List.iter
    (fun n ->
      let d = A.make ~length:n () in
      for v = 1 to n do
        Alcotest.(check bool)
          (Printf.sprintf "push %d/%d" v n)
          true
          (A.push_right d v = `Okay)
      done;
      Alcotest.(check bool) "n+1 is full" true (A.push_right d 0 = `Full))
    [ 1; 2; 3; 5; 8 ]

(* Figure 9, third diagram: "the right sentinel points to a node
   deleted by a popLeft operation" — a popRight that observes the null
   value concludes empty without completing the left side's deletion. *)
let test_pop_right_sees_left_deleted () =
  let module L = Deque.List_deque.Sequential in
  let d = L.make () in
  ignore (L.push_right d 1);
  Alcotest.(check bool) "popLeft takes it" true (L.pop_left d = `Value 1);
  (* the node is logically deleted; SL->R carries the mark *)
  Alcotest.(check bool) "popRight reports empty" true (L.pop_right d = `Empty);
  (match L.check_invariant d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e);
  Alcotest.(check bool) "pushRight still fine" true (L.push_right d 2 = `Okay);
  Alcotest.(check bool) "value retrievable" true (L.pop_left d = `Value 2)

(* Erratum, Figure 32 line 4: popLeft must read the value through the
   pointer it just loaded from SL->R (the published text reads through
   an unbound oldL).  With the typo "fixed wrong" the very first
   popLeft would crash or return garbage. *)
let test_erratum_fig32 () =
  let module L = Deque.List_deque.Sequential in
  let d = L.make () in
  ignore (L.push_left d 77);
  Alcotest.(check bool) "popLeft returns the pushed value" true
    (L.pop_left d = `Value 77)

(* Erratum, Figure 33 line 10: a left-pushed node's L pointer must
   reference SL (the published text writes SR).  If it pointed at SR,
   the next popLeft's deleteLeft would splice across the wrong
   sentinel; observable as order corruption below. *)
let test_erratum_fig33 () =
  let module L = Deque.List_deque.Sequential in
  let d = L.make () in
  ignore (L.push_left d 1);
  ignore (L.push_left d 2);
  ignore (L.push_left d 3);
  Alcotest.(check (list int)) "left pushes stack up" [ 3; 2; 1 ]
    (L.unsafe_to_list d);
  Alcotest.(check bool) "pop l" true (L.pop_left d = `Value 3);
  Alcotest.(check bool) "pop l" true (L.pop_left d = `Value 2);
  Alcotest.(check bool) "pop r" true (L.pop_right d = `Value 1);
  Alcotest.(check bool) "empty" true (L.pop_right d = `Empty)

(* "foregoing this optimization yields algorithms that can be
   implemented using only the weaker first form" — with hints disabled
   the array deque must never invoke the strong DCAS.  Checked with a
   counting memory wrapper. *)
module Counting_mem : sig
  include Dcas.Memory_intf.MEMORY

  val strong_calls : int ref
end = struct
  include Dcas.Mem_seq

  let strong_calls = ref 0

  let dcas_strong l1 l2 o1 o2 n1 n2 =
    incr strong_calls;
    Dcas.Mem_seq.dcas_strong l1 l2 o1 o2 n1 n2
end

module Counting_deque = Deque.Array_deque.Make (Counting_mem)

let exercise_counting hints =
  Counting_mem.strong_calls := 0;
  let d = Counting_deque.make ~hints ~length:4 () in
  for i = 1 to 4 do
    ignore (Counting_deque.push_right d i)
  done;
  ignore (Counting_deque.push_right d 9);
  (* full *)
  for _ = 1 to 4 do
    ignore (Counting_deque.pop_left d)
  done;
  ignore (Counting_deque.pop_left d);
  (* empty *)
  ignore (Counting_deque.push_left d 1);
  ignore (Counting_deque.pop_right d);
  !Counting_mem.strong_calls

let test_weak_dcas_sufficient () =
  Alcotest.(check int) "no strong DCAS without hints" 0 (exercise_counting false);
  Alcotest.(check bool) "hints do use the strong form" true
    (exercise_counting true > 0)

(* "The cost of this splitting technique is an extra DCAS per pop
   operation" — Section 1.2.  Count DCAS attempts per uncontended pop:
   the list deque's pop+completion takes two DCASes where the array
   deque takes one. *)
let test_split_pop_extra_dcas () =
  let dcas_per_pop ~pop ~push ~prefill_push ~deletes =
    Dcas.Mem_seq.reset_stats ();
    prefill_push ();
    let before = (Dcas.Mem_seq.stats ()).Dcas.Memory_intf.dcas_attempts in
    pop ();
    deletes ();
    let after = (Dcas.Mem_seq.stats ()).Dcas.Memory_intf.dcas_attempts in
    ignore push;
    after - before
  in
  let module A = Deque.Array_deque.Sequential in
  let a = A.make ~length:4 () in
  let array_cost =
    dcas_per_pop
      ~prefill_push:(fun () -> ignore (A.push_right a 1))
      ~pop:(fun () -> ignore (A.pop_right a))
      ~push:() ~deletes:ignore
  in
  let module L = Deque.List_deque.Sequential in
  let l = L.make () in
  let list_cost =
    dcas_per_pop
      ~prefill_push:(fun () -> ignore (L.push_right l 1))
      ~pop:(fun () -> ignore (L.pop_right l))
      ~push:() ~deletes:(fun () -> L.delete_right l)
  in
  Alcotest.(check int) "array pop: one DCAS" 1 array_cost;
  Alcotest.(check int) "list pop: two DCASes (split)" 2 list_cost

let () =
  Alcotest.run "paper_fidelity"
    [
      ( "conventions",
        [
          Alcotest.test_case "integer mod" `Quick test_mod_convention;
          Alcotest.test_case "initial indices" `Quick test_initial_indices;
          Alcotest.test_case "capacity = length_S" `Quick test_capacity_exact;
        ] );
      ( "figure 9 subtleties",
        [
          Alcotest.test_case "popRight sees left-deleted node" `Quick
            test_pop_right_sees_left_deleted;
        ] );
      ( "errata",
        [
          Alcotest.test_case "figure 32 line 4" `Quick test_erratum_fig32;
          Alcotest.test_case "figure 33 line 10" `Quick test_erratum_fig33;
        ] );
      ( "dcas forms",
        [
          Alcotest.test_case "weak form suffices without hints" `Quick
            test_weak_dcas_sufficient;
          Alcotest.test_case "split pop costs an extra DCAS" `Quick
            test_split_pop_extra_dcas;
        ] );
    ]

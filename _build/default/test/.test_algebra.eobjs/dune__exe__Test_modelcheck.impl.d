test/test_modelcheck.ml: Alcotest Format List Modelcheck Printf QCheck2 QCheck_alcotest Spec String

test/test_stress.ml: Alcotest Atomic Baselines Deque Domain List Printf Spec Test_support

test/test_list_deque_dummy.mli:

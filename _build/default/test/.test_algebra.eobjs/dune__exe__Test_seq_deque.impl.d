test/test_seq_deque.ml: Alcotest Format List Op QCheck2 QCheck_alcotest Seq_deque Spec String

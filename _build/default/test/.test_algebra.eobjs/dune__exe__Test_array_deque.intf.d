test/test_array_deque.mli:

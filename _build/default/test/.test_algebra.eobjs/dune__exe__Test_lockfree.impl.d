test/test_lockfree.ml: Alcotest Atomic Baselines Dcas Deque Domain Harness Modelcheck Printf Spec Unix

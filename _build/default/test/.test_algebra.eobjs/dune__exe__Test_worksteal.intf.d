test/test_worksteal.mli:

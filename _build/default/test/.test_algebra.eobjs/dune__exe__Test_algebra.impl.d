test/test_algebra.ml: Alcotest Algebra Int List Op QCheck2 QCheck_alcotest Seq_deque Spec String

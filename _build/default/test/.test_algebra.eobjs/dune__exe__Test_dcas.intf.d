test/test_dcas.mli:

test/test_worksteal.ml: Alcotest List Printf Worksteal

test/test_list_deque_casn.ml: Alcotest Deque List Modelcheck QCheck_alcotest Spec String Test_support

test/test_seq_deque.mli:

test/test_array_deque.ml: Alcotest Deque Harness List Op QCheck_alcotest Spec Test_support

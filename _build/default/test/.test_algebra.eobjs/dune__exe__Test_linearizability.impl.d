test/test_linearizability.ml: Alcotest Array Deque Format History Linearizability List Op Printf QCheck2 QCheck_alcotest Seq_deque Spec String Test_support

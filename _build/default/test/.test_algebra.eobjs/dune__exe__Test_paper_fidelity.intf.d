test/test_paper_fidelity.mli:

test/test_list_deque.ml: Alcotest Deque Harness List Modelcheck Printf QCheck_alcotest Spec Test_support

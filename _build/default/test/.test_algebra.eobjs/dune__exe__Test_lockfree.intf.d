test/test_lockfree.mli:

test/test_paper_fidelity.ml: Alcotest Dcas Deque List Printf

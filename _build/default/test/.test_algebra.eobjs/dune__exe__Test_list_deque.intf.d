test/test_list_deque.mli:

test/test_baselines.ml: Alcotest Atomic Baselines Domain List Modelcheck QCheck_alcotest Spec Test_support

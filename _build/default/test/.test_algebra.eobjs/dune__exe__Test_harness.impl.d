test/test_harness.ml: Alcotest Array Harness Hashtbl List Option Printf String

test/test_list_deque_casn.mli:

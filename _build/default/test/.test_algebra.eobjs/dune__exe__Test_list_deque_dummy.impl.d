test/test_list_deque_dummy.ml: Alcotest Deque Harness List QCheck_alcotest Test_support

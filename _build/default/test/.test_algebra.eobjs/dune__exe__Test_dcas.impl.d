test/test_dcas.ml: Alcotest Array Atomic Dcas Domain Harness List Printf QCheck2 QCheck_alcotest String

(** Blocking DCAS emulation behind one global mutex (the paper's
    citation [2]).  Correct and simple, but serializes all memory
    operations and is not non-blocking: a preempted lock holder stalls
    every other thread.  Used as a baseline in experiments E9 and
    E12. *)

include Memory_intf.MEMORY_CASN

(** Blocking DCAS emulation over striped per-location locks, acquired in
    a global stripe order.  Finer-grained than {!Mem_lock}: operations
    on unrelated locations proceed in parallel, but the model is still
    blocking.  Baseline for experiment E12. *)

include Memory_intf.MEMORY_CASN

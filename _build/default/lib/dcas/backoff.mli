(** Randomized truncated exponential backoff for retry loops.

    A failed DCAS means another operation succeeded (lock-freedom), but
    spinning straight back into the retry loop makes competing
    operations fail each other repeatedly.  Retry loops create one
    backoff per operation invocation and call {!once} after each
    failure. *)

type t

val create : ?min_wait:int -> ?max_wait:int -> unit -> t
(** Fresh backoff state.  [min_wait] and [max_wait] bound the spin count
    per wait (defaults 4 and 1024).

    @raise Invalid_argument unless [1 <= min_wait <= max_wait]. *)

val once : t -> unit
(** Spin for a randomized interval and double the bound (saturating). *)

val reset : t -> unit
(** Return the wait bound to [min_wait] (e.g. after a success). *)

(* Process-wide unique small integers, used to identify shared locations
   (for same-location checks) and to impose the total acquisition order
   that the lock-free and striped memory models rely on for progress. *)

let counter = Atomic.make 0
let next () = Atomic.fetch_and_add counter 1

(* Randomized truncated exponential backoff.  Retry loops in the
   lock-free structures back off after a failed DCAS so that, under
   contention, competing operations desynchronize instead of failing
   each other's DCAS repeatedly.  The state is a single int kept in the
   caller's stack frame; no allocation on the hot path. *)

type t = { min_wait : int; max_wait : int; mutable wait : int; mutable seed : int }

let default_min_wait = 4
let default_max_wait = 1024

let create ?(min_wait = default_min_wait) ?(max_wait = default_max_wait) () =
  if min_wait < 1 || max_wait < min_wait then
    invalid_arg "Backoff.create: need 1 <= min_wait <= max_wait";
  (* Seed from the domain id so that domains spinning in lockstep pick
     different wait times from the first iteration. *)
  let seed = (Domain.self () :> int) + 1 in
  { min_wait; max_wait; wait = min_wait; seed }

(* xorshift step; quality is irrelevant, decorrelation is the point. *)
let next_rand t =
  let s = t.seed in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  t.seed <- s land max_int;
  t.seed

let once t =
  let bound = t.wait in
  let spins = t.min_wait + (next_rand t mod bound) in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done;
  if t.wait < t.max_wait then t.wait <- min t.max_wait (t.wait * 2)

let reset t = t.wait <- t.min_wait

(** Process-wide unique location identifiers. *)

val next : unit -> int
(** A fresh identifier; thread-safe, strictly increasing per call. *)

(** Unsynchronized sequential memory model.  {b Not thread-safe}: use
    only from a single thread (sequential tests, cost floor in
    experiment E4). *)

include Memory_intf.MEMORY_CASN

lib/dcas/backoff.mli:

lib/dcas/id.mli:

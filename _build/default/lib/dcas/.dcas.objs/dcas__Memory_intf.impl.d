lib/dcas/memory_intf.ml: Format

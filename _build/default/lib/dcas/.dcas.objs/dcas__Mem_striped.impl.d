lib/dcas/mem_striped.ml: Array Id List Mutex Opstats

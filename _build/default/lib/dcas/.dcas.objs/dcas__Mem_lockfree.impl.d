lib/dcas/mem_lockfree.ml: Array Atomic List Opstats

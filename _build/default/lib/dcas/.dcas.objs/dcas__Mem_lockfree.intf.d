lib/dcas/mem_lockfree.mli: Memory_intf

lib/dcas/backoff.ml: Domain

lib/dcas/id.ml: Atomic

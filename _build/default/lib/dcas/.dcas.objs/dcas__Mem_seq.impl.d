lib/dcas/mem_seq.ml: Id List Opstats

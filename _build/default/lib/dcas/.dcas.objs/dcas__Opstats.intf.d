lib/dcas/opstats.mli: Memory_intf

lib/dcas/mem_lock.mli: Memory_intf

lib/dcas/opstats.ml: Array Atomic Domain Lazy List Memory_intf Mutex

lib/dcas/mem_striped.mli: Memory_intf

lib/dcas/mem_seq.mli: Memory_intf

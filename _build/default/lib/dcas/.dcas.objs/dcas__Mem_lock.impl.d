lib/dcas/mem_lock.ml: Id List Mutex Opstats

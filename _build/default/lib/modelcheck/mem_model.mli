(** The model checker's memory: a {!Dcas.Memory_intf.MEMORY_CASN}
    implementation whose every shared operation performs a {!Yield}
    effect before executing atomically, giving the explorer full
    control over interleavings at exactly the granularity the paper's
    proofs reason at (each transition is a read, a write, or a DCAS).

    Single-domain only: the explorer serializes all threads. *)

type _ Effect.t += Yield : unit Effect.t

include Dcas.Memory_intf.MEMORY_CASN

val unmonitored : (unit -> 'a) -> 'a
(** Run code with yields transparently continued — for building the
    structure under test and for evaluating invariants between steps,
    outside any scheduled thread. *)

lib/modelcheck/scenario.ml: Array Baselines Deque List Mem_model Spec String

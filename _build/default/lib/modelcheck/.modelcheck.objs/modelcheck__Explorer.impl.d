lib/modelcheck/explorer.ml: Array Effect Format Fun List Mem_model Scenario Spec String

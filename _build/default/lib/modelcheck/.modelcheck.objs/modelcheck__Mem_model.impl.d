lib/modelcheck/mem_model.ml: Dcas Effect List

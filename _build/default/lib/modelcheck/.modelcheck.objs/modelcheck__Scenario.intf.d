lib/modelcheck/scenario.mli: Spec

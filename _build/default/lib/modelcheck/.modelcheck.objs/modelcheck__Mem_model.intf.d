lib/modelcheck/mem_model.mli: Dcas Effect

lib/modelcheck/explorer.mli: Format Scenario Spec

(** Weighted operation mixes for the throughput experiments. *)

type kind = Push_right | Push_left | Pop_right | Pop_left

type mix = {
  w_push_right : int;
  w_push_left : int;
  w_pop_right : int;
  w_pop_left : int;
}

val balanced : mix
val push_heavy : mix
val pop_heavy : mix
val right_only : mix
val left_only : mix

val lifo_right : mix
(** Stack usage: push and pop on the same (right) end. *)

val fifo : mix
(** Queue usage: push right, pop left. *)

val draw : mix -> Splitmix.t -> kind
(** @raise Invalid_argument on an all-zero mix. *)

val apply :
  push_right:(int -> [ `Okay | `Full ]) ->
  push_left:(int -> [ `Okay | `Full ]) ->
  pop_right:(unit -> [ `Value of int | `Empty ]) ->
  pop_left:(unit -> [ `Value of int | `Empty ]) ->
  mix ->
  Splitmix.t ->
  int ->
  bool
(** Draw one operation and apply it; [true] if it succeeded (push okay
    / pop got a value). *)

(* Operation mixes for the throughput experiments: a weighted choice
   among the four deque operations, drawn from a per-thread
   deterministic RNG.  The named mixes are the ones the experiment
   index in DESIGN.md refers to. *)

type kind = Push_right | Push_left | Pop_right | Pop_left

type mix = {
  w_push_right : int;
  w_push_left : int;
  w_pop_right : int;
  w_pop_left : int;
}

let balanced = { w_push_right = 1; w_push_left = 1; w_pop_right = 1; w_pop_left = 1 }
let push_heavy = { w_push_right = 3; w_push_left = 3; w_pop_right = 1; w_pop_left = 1 }
let pop_heavy = { w_push_right = 1; w_push_left = 1; w_pop_right = 3; w_pop_left = 3 }
let right_only = { w_push_right = 1; w_push_left = 0; w_pop_right = 1; w_pop_left = 0 }
let left_only = { w_push_right = 0; w_push_left = 1; w_pop_right = 0; w_pop_left = 1 }

(* The stack- and queue-shaped mixes the introduction motivates: a
   deque subsumes LIFO (same end) and FIFO (opposite ends). *)
let lifo_right = right_only
let fifo = { w_push_right = 1; w_push_left = 0; w_pop_right = 0; w_pop_left = 1 }

let total m = m.w_push_right + m.w_push_left + m.w_pop_right + m.w_pop_left

let draw m rng =
  let t = total m in
  if t <= 0 then invalid_arg "Workload.draw: empty mix";
  let x = Splitmix.int rng ~bound:t in
  if x < m.w_push_right then Push_right
  else if x < m.w_push_right + m.w_push_left then Push_left
  else if x < m.w_push_right + m.w_push_left + m.w_pop_right then Pop_right
  else Pop_left

(* Apply one drawn operation to a deque given as its four primitives;
   returns true if the operation "succeeded" (push okay / pop got a
   value), which the harness can count for effective throughput. *)
let apply ~push_right ~push_left ~pop_right ~pop_left m rng v =
  match draw m rng with
  | Push_right -> ( match push_right v with `Okay -> true | `Full -> false)
  | Push_left -> ( match push_left v with `Okay -> true | `Full -> false)
  | Pop_right -> ( match pop_right () with `Value _ -> true | `Empty -> false)
  | Pop_left -> ( match pop_left () with `Value _ -> true | `Empty -> false)

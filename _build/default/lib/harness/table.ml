(* Aligned text tables for the experiment output.  The benchmark driver
   prints one table per experiment; EXPERIMENTS.md quotes them
   verbatim, so the format doubles as the record format. *)

type align = Left | Right

let render ?(align_default = Right) ~headers rows =
  let ncols = List.length headers in
  List.iter
    (fun r ->
      if List.length r <> ncols then invalid_arg "Table.render: ragged row")
    rows;
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure headers;
  List.iter measure rows;
  let pad align w s =
    let fill = String.make (w - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let line row align =
    row
    |> List.mapi (fun i cell -> pad (align i) widths.(i) cell)
    |> String.concat "  "
  in
  let buf = Buffer.create 256 in
  (* header is left-aligned in its first column for readability *)
  let header_align i = if i = 0 then Left else align_default in
  let row_align i = if i = 0 then Left else align_default in
  Buffer.add_string buf (line headers header_align);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (line r row_align);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?align_default ~headers rows =
  print_string (render ?align_default ~headers rows)

(* Formatting helpers used across benchmarks. *)
let ops_per_sec v =
  if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let ns v =
  if v >= 1e6 then Printf.sprintf "%.2fms" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.2fus" (v /. 1e3)
  else Printf.sprintf "%.0fns" v

let ratio v = Printf.sprintf "%.2fx" v
let pct v = Printf.sprintf "%.1f%%" (100. *. v)

lib/harness/table.mli:

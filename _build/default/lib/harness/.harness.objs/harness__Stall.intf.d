lib/harness/stall.mli: Dcas

lib/harness/splitmix.mli:

lib/harness/metrics.mli:

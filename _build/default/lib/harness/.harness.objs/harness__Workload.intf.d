lib/harness/workload.mli: Splitmix

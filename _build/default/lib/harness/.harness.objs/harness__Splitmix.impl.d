lib/harness/splitmix.ml: Int64

lib/harness/metrics.ml: Array Float Unix

lib/harness/stall.ml: Dcas Domain Unix

lib/harness/runner.ml: Array Atomic Domain List Splitmix Unix

lib/harness/workload.ml: Splitmix

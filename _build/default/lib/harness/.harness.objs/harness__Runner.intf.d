lib/harness/runner.mli: Splitmix

(** Aligned text tables for the experiment output; the format printed
    by [bench/main.exe] is quoted verbatim in EXPERIMENTS.md. *)

type align = Left | Right

val render : ?align_default:align -> headers:string list -> string list list -> string
(** @raise Invalid_argument on ragged rows. *)

val print : ?align_default:align -> headers:string list -> string list list -> unit

(** Cell formatting helpers. *)

val ops_per_sec : float -> string
(** e.g. ["2.50M"], ["3.1k"]. *)

val ns : float -> string
(** e.g. ["750ns"], ["1.50us"], ["2.10ms"]. *)

val ratio : float -> string
(** e.g. ["2.00x"]. *)

val pct : float -> string
(** [pct 0.31] is ["31.0%"]. *)

(** Wall-clock timing and a log-bucketed latency histogram.

    Latency should be recorded in batches ([Unix.gettimeofday] is too
    coarse for one sub-microsecond operation); bechamel covers the
    single-operation regime (experiment E4). *)

val now : unit -> float

val time : (unit -> 'a) -> 'a * float
(** Result and elapsed seconds. *)

module Histogram : sig
  (** Buckets of width 2x from 1ns to ~1s: bucket [i] covers
      [2^i, 2^(i+1)) nanoseconds. *)

  type t

  val create : unit -> t
  val add : t -> ns:int -> unit
  val merge : t -> t -> t
  val mean_ns : t -> float

  val quantile_ns : t -> float -> float
  (** Upper bound of the bucket containing the given quantile. *)
end

val throughput : ?duration:float -> (unit -> unit) -> float
(** Operations per second of [f] run repeatedly in the calling thread
    for ~[duration] seconds (default 0.2). *)

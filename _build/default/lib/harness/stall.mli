(** Cooperative stall injection for the resilience experiments (E9,
    E14): a thread arranges to fall asleep in the middle of its own
    next operation — after a chosen number of shared-memory accesses —
    via the {!Mem_stalling} instrumented memory.

    Requests are domain-local: a staller only ever stalls itself. *)

val request : after_ops:int -> duration:float -> unit
(** Arrange for the calling domain to sleep [duration] seconds just
    before its [after_ops]-th subsequent shared-memory operation.

    @raise Invalid_argument if [after_ops < 1]. *)

val cancel : unit -> unit

val point : unit -> unit
(** Called by the instrumented memory before every shared operation;
    sleeps if this domain's pending request has counted down. *)

module Mem_stalling (M : Dcas.Memory_intf.MEMORY) :
  Dcas.Memory_intf.MEMORY with type 'a loc = 'a M.loc
(** [M] with a {!point} check before every shared operation. *)

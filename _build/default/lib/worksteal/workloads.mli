(** Task-parallel workloads for the work-stealing experiments.  Results
    are exact (accumulated atomically), so each run doubles as a
    no-task-lost/no-task-duplicated check of the scheduler and its
    deque. *)

module Make (S : Worksteal_intf.SCHEDULER) : sig
  val fib : ?seed:int -> ?cutoff:int -> workers:int -> capacity:int -> int -> int
  (** Naive Fibonacci spawn tree with a sequential [cutoff]; returns
      fib(n). *)

  val tree :
    ?seed:int -> workers:int -> capacity:int -> degree:int -> depth:int ->
    unit -> int
  (** Complete [degree]-ary spawn tree; returns the leaf count
      (degree^depth). *)
end

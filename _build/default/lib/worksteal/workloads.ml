(* Task-parallel workloads for the work-stealing experiments (E8) and
   the work_stealing example: a Fibonacci spawn tree (irregular,
   steal-heavy near the root) and a uniform d-ary tree (regular,
   measures raw scheduling overhead).  Results are accumulated into an
   atomic so the workloads double as correctness checks — the scheduler
   must neither lose nor duplicate tasks. *)

module Make (S : Worksteal_intf.SCHEDULER) = struct
  (* Sum of leaf values of the naive Fibonacci recursion equals
     fib(n); below [cutoff] the computation runs sequentially inside
     the task, as any practical scheduler would. *)
  let fib ?(seed = 17) ?(cutoff = 10) ~workers ~capacity n =
    let rec seq_fib n = if n < 2 then n else seq_fib (n - 1) + seq_fib (n - 2) in
    let acc = Atomic.make 0 in
    let rec task n ctx =
      if n < cutoff then ignore (Atomic.fetch_and_add acc (seq_fib n))
      else begin
        S.spawn ctx (task (n - 1));
        S.spawn ctx (task (n - 2))
      end
    in
    S.run ~seed ~workers ~capacity (task n);
    Atomic.get acc

  (* Spawn a complete [degree]-ary tree of the given [depth]; the
     result counts the leaves, so the expected value is
     degree^depth. *)
  let tree ?(seed = 23) ~workers ~capacity ~degree ~depth () =
    let acc = Atomic.make 0 in
    let rec task depth ctx =
      if depth = 0 then Atomic.incr acc
      else
        for _ = 1 to degree do
          S.spawn ctx (task (depth - 1))
        done
    in
    S.run ~seed ~workers ~capacity (task depth);
    Atomic.get acc
end

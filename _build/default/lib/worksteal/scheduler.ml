(* A work-stealing task scheduler in the style of Arora, Blumofe and
   Plaxton [4] — the application domain the paper cites for deques
   ("currently used in load balancing algorithms").  Each worker owns a
   deque of tasks: it pushes and pops its own bottom end (LIFO, for
   locality) and steals from a random victim's top end (FIFO, for load
   spread).  Global termination is detected with a pending-task
   counter: it is incremented before a task becomes visible and
   decremented after the task body finishes, so it can only reach zero
   when no task is queued or running. *)

module Make (D : Worksteal_intf.WORKSTEAL_DEQUE) :
  Worksteal_intf.SCHEDULER = struct
  type pool = {
    deques : task D.t array;
    pending : int Atomic.t;
    workers : int;
  }

  and ctx = { pool : pool; worker : int; rng : Harness.Splitmix.t }
  and task = ctx -> unit

  let deque_name = D.name
  let worker ctx = ctx.worker
  let rng ctx = ctx.rng

  (* Run a task body and retire it. *)
  let execute ctx (t : task) =
    t ctx;
    Atomic.decr ctx.pool.pending

  let spawn ctx t =
    Atomic.incr ctx.pool.pending;
    if not (D.push ctx.pool.deques.(ctx.worker) t) then
      (* deque full: run inline rather than lose the task *)
      execute ctx t

  let steal_from ctx =
    let n = ctx.pool.workers in
    if n <= 1 then None
    else begin
      let victim =
        let v = Harness.Splitmix.int ctx.rng ~bound:(n - 1) in
        if v >= ctx.worker then v + 1 else v
      in
      D.steal ctx.pool.deques.(victim)
    end

  let worker_loop ctx =
    let own = ctx.pool.deques.(ctx.worker) in
    let rec loop () =
      match D.pop own with
      | Some t ->
          execute ctx t;
          loop ()
      | None ->
          if Atomic.get ctx.pool.pending = 0 then ()
          else begin
            (match steal_from ctx with
            | Some t -> execute ctx t
            | None -> Domain.cpu_relax ());
            loop ()
          end
    in
    loop ()

  let run ?(seed = 0xD0E5) ~workers ~capacity root =
    if workers < 1 then invalid_arg "Scheduler.run: workers must be >= 1";
    let master = Harness.Splitmix.create ~seed in
    let pool =
      {
        deques = Array.init workers (fun _ -> D.create ~capacity ());
        pending = Atomic.make 0;
        workers;
      }
    in
    let ctxs =
      Array.init workers (fun worker ->
          { pool; worker; rng = Harness.Splitmix.split master })
    in
    (* seed the root task on worker 0's deque *)
    Atomic.incr pool.pending;
    if not (D.push pool.deques.(0) root) then
      invalid_arg "Scheduler.run: capacity too small for the root task";
    let domains =
      List.init workers (fun i -> Domain.spawn (fun () -> worker_loop ctxs.(i)))
    in
    List.iter Domain.join domains
end

(* --- Deque adapters --- *)

(* The ABP deque implements the restricted interface natively. *)
module Abp_adapter : Worksteal_intf.WORKSTEAL_DEQUE = struct
  type 'a t = 'a Baselines.Abp_deque.t

  let name = Baselines.Abp_deque.name
  let create = Baselines.Abp_deque.create

  let push d v =
    match Baselines.Abp_deque.push_bottom d v with `Okay -> true | `Full -> false

  let pop d =
    match Baselines.Abp_deque.pop_bottom d with
    | `Value v -> Some v
    | `Empty -> None

  let steal d =
    match Baselines.Abp_deque.steal_retry d with
    | `Value v -> Some v
    | `Empty -> None
end

(* Any general deque runs the same role by restriction: the owner uses
   the right end, thieves pop the left end. *)
module Restrict (D : Deque.Deque_intf.S) : Worksteal_intf.WORKSTEAL_DEQUE =
struct
  type 'a t = 'a D.t

  let name = D.name
  let create = D.create
  let push d v = match D.push_right d v with `Okay -> true | `Full -> false
  let pop d = match D.pop_right d with `Value v -> Some v | `Empty -> None
  let steal d = match D.pop_left d with `Value v -> Some v | `Empty -> None
end

module Abp_scheduler = Make (Abp_adapter)

module Array_deque_adapter = Restrict (struct
  include Deque.Array_deque.Lockfree

  let name = Deque.Array_deque.Lockfree.name
end)

module List_deque_adapter = Restrict (struct
  include Deque.List_deque.Lockfree

  let name = Deque.List_deque.Lockfree.name
end)

module Lock_deque_adapter = Restrict (struct
  include Baselines.Lock_deque

  let name = Baselines.Lock_deque.name
end)

module Array_scheduler = Make (Array_deque_adapter)
module List_scheduler = Make (List_deque_adapter)
module Lock_scheduler = Make (Lock_deque_adapter)

lib/worksteal/worksteal_intf.ml: Harness

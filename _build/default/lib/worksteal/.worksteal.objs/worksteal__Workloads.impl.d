lib/worksteal/workloads.ml: Atomic Worksteal_intf

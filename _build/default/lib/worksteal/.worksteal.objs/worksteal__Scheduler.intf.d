lib/worksteal/scheduler.mli: Deque Worksteal_intf

lib/worksteal/workloads.mli: Worksteal_intf

lib/worksteal/scheduler.ml: Array Atomic Baselines Deque Domain Harness List Worksteal_intf

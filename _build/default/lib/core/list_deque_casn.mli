(** EXTENSION: the unbounded deque rebuilt on a three-word CAS —
    answering Section 6's question about stronger primitives.

    With a 3-entry CASN, a pop splices its node out in one atomic step:
    no deleted bits, no dummy nodes, no split between logical and
    physical deletion, no delete procedures (the interface's
    [delete_right]/[delete_left] are no-ops).  The third CASN entry is
    a pure validation of the victim's neighborhood, which is exactly
    what DCAS cannot express and what forces the paper's splitting
    technique.  Compared in experiment E15. *)

module type ALGORITHM = List_deque_intf.ALGORITHM

module Make (M : Dcas.Memory_intf.MEMORY_CASN) : ALGORITHM
module Lockfree : ALGORITHM
module Locked : ALGORITHM
module Striped : ALGORITHM
module Sequential : ALGORITHM

(** The linked-list-based unbounded deque of Section 4 (Figures 11, 13,
    17, 32, 33, 34) — the first non-blocking unbounded deque supporting
    concurrent access to both ends.

    Pops are split into logical deletion (value nulled, deleted bit set
    in the sentinel's inward pointer word, one DCAS) and physical
    deletion (node spliced out, bit cleared, one more DCAS performed
    lazily by the next operation on that side).  [make ?alloc ?recycle]
    injects a fallible allocator to exercise the footnote-3 semantics
    (pushes return [`Full] exactly when allocation fails) and, with
    [recycle], a node-recycling pool that simulates the ABSENCE of the
    garbage collector the paper assumes: physically deleted nodes are
    reused by subsequent pushes immediately.  Recycling is the probe of
    experiment E16 (what does the GC assumption actually protect?); it
    is not intended for production use.  [create ~capacity] satisfies
    {!Deque_intf.S} and ignores [capacity] (the deque is unbounded).

    [delete_right]/[delete_left] expose the physical-deletion
    procedures of Figures 17/34; they are called internally as the
    algorithm requires, and exposed for targeted tests of the
    contending-deletes scenario (Figure 16).  [unsafe_to_list] and
    [check_invariant] (the executable Figures 24-25 representation
    invariant) are for quiescent states only. *)

module type ALGORITHM = List_deque_intf.ALGORITHM

module Make (M : Dcas.Memory_intf.MEMORY) : ALGORITHM
module Lockfree : ALGORITHM
module Locked : ALGORITHM
module Striped : ALGORITHM
module Sequential : ALGORITHM

(* Module type of the array-based deque algorithm (shared between
   array_deque.ml and its interface).  See array_deque.mli for the
   documented version. *)

module type ALGORITHM = sig
  type 'a t

  val name : string
  val make : ?hints:bool -> length:int -> unit -> 'a t
  val create : capacity:int -> unit -> 'a t
  val push_right : 'a t -> 'a -> Deque_intf.push_result
  val push_left : 'a t -> 'a -> Deque_intf.push_result
  val pop_right : 'a t -> 'a Deque_intf.pop_result
  val pop_left : 'a t -> 'a Deque_intf.pop_result
  val unsafe_to_list : 'a t -> 'a list
  val check_invariant : 'a t -> (unit, string) result
end

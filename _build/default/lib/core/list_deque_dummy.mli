(** The footnote-4 / Figure 10 variant of the linked-list deque: the
    deleted bit is replaced by indirection through "dummy" nodes.  A
    sentinel inward pointer that goes through a dummy encodes a pending
    deletion; a direct pointer encodes none.  Control flow is otherwise
    identical to {!List_deque}; experiment E11 compares the two
    encodings.  The interface is that of {!List_deque}. *)

module type ALGORITHM = List_deque_intf.ALGORITHM

module Make (M : Dcas.Memory_intf.MEMORY) : ALGORITHM
module Lockfree : ALGORITHM
module Locked : ALGORITHM
module Striped : ALGORITHM
module Sequential : ALGORITHM

(** Fallible storage allocator (Section 2's [New], footnote 3).

    The linked-list deque takes an allocator at creation; pushes return
    [`Full] when [try_alloc] fails, and physical deletions return the
    credit, emulating GC reclamation.  Use {!unbounded} (the default)
    for the paper's ordinary GC'd setting. *)

type t

val unbounded : t
(** Never fails. *)

val bounded : int -> t
(** At most [n] live nodes at a time.
    @raise Invalid_argument on a negative budget. *)

val try_alloc : t -> bool
(** Take one credit; [false] means allocation failure. Lock-free. *)

val free : t -> unit
(** Return one credit (a node became unreachable). *)

val available : t -> int option
(** Remaining credits, or [None] if unbounded. *)

(* The storage allocator abstraction of Section 2: the paper assumes a
   GC'd [New] operation whose details are hidden, and footnote 3 makes
   the unbounded deque's pushes return "full" exactly when allocation
   fails.  OCaml's GC plays the paper's collector; this module injects
   the *failure* behaviour so the footnote-3 semantics are testable:
   a bounded budget of live nodes, decremented at allocation and
   credited back when a physical deletion splices a node out (the
   moment it becomes garbage). *)

type t = { budget : int Atomic.t option }

let unbounded = { budget = None }

let bounded n =
  if n < 0 then invalid_arg "Alloc.bounded: negative budget";
  { budget = Some (Atomic.make n) }

(* Try to take one allocation credit.  Lock-free: a CAS failure means
   another allocation or free succeeded. *)
let rec try_alloc t =
  match t.budget with
  | None -> true
  | Some b ->
      let n = Atomic.get b in
      if n <= 0 then false
      else if Atomic.compare_and_set b n (n - 1) then true
      else try_alloc t

let free t =
  match t.budget with None -> () | Some b -> Atomic.incr b

let available t =
  match t.budget with None -> None | Some b -> Some (Atomic.get b)

(* Module type of the linked-list deque algorithms (shared between
   list_deque.ml / list_deque_dummy.ml and their interfaces). *)

module type ALGORITHM = sig
  type 'a t

  val name : string
  val make : ?alloc:Alloc.t -> ?recycle:bool -> unit -> 'a t
  val create : capacity:int -> unit -> 'a t
  val push_right : 'a t -> 'a -> Deque_intf.push_result
  val push_left : 'a t -> 'a -> Deque_intf.push_result
  val pop_right : 'a t -> 'a Deque_intf.pop_result
  val pop_left : 'a t -> 'a Deque_intf.pop_result
  val delete_right : 'a t -> unit
  val delete_left : 'a t -> unit
  val unsafe_to_list : 'a t -> 'a list
  val check_invariant : 'a t -> (unit, string) result
end

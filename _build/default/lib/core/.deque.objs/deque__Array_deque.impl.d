lib/core/array_deque.ml: Array Array_deque_intf Dcas List Printf

lib/core/list_deque.ml: Alloc Atomic Dcas List List_deque_intf Printf

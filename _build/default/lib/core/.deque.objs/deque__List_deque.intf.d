lib/core/list_deque.mli: Dcas List_deque_intf

lib/core/list_deque_intf.ml: Alloc Deque_intf

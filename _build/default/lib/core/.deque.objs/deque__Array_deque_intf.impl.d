lib/core/array_deque_intf.ml: Deque_intf

lib/core/alloc.mli:

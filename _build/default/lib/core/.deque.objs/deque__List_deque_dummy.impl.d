lib/core/list_deque_dummy.ml: Alloc Dcas List List_deque_intf Printf

lib/core/array_deque.mli: Array_deque_intf Dcas

lib/core/list_deque_casn.ml: Alloc Dcas List List_deque_intf Printf

lib/core/alloc.ml: Atomic

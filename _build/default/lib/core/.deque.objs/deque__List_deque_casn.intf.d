lib/core/list_deque_casn.mli: Dcas List_deque_intf

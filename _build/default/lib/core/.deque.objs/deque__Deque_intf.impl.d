lib/core/deque_intf.ml: Spec

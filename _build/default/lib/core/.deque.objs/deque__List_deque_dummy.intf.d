lib/core/list_deque_dummy.mli: Dcas List_deque_intf

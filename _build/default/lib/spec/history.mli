(** Concurrent operation histories (Section 2): completed invocations
    and responses with logical timestamps, inducing the real-time
    partial order "A precedes B iff A responded before B was invoked".

    The {!Recorder} hands out per-thread buffers so recording costs two
    atomic clock ticks and two local stores per operation. *)

type ('op, 'res) entry = {
  thread : int;
  op : 'op;
  result : 'res;
  inv : int;  (** logical clock at invocation *)
  ret : int;  (** logical clock at response; [inv < ret] *)
}

type ('op, 'res) t = ('op, 'res) entry array
(** Completed operations, unordered. *)

val precedes : ('op, 'res) entry -> ('op, 'res) entry -> bool
(** Real-time order: [a] responded before [b] was invoked. *)

val sort_by_invocation : ('op, 'res) t -> ('op, 'res) t

val is_sequential : ('op, 'res) t -> bool
(** No two operations overlap. *)

val pp :
  (Format.formatter -> 'op -> unit) ->
  (Format.formatter -> 'res -> unit) ->
  Format.formatter ->
  ('op, 'res) t ->
  unit

module Recorder : sig
  type ('op, 'res) recorder

  val create : threads:int -> ('op, 'res) recorder
  (** @raise Invalid_argument if [threads < 1]. *)

  val record :
    ('op, 'res) recorder -> thread:int -> 'op -> (unit -> 'res) -> 'res
  (** [record r ~thread op f] runs [f] between two clock ticks and
      stores the entry in [thread]'s private buffer.  Only thread
      [thread] may record under that index. *)

  val history : ('op, 'res) recorder -> ('op, 'res) t
  (** Merge all buffers; call only after the recording threads have
      been joined. *)
end

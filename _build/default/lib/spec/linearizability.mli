(** Wing & Gong's linearizability checking algorithm with Lowe's
    memoization: DFS over the choice of the next operation to
    linearize, where an operation is eligible once every operation that
    responded before its invocation has been linearized.  Visited
    (pending-set, abstract-state) pairs are memoized.

    This checker is the executable counterpart of the paper's
    linearizability theorems (3.1 and 4.1): concurrent histories
    recorded against the implementations — by the test harness on real
    domains, and by the model checker for every interleaving — are
    validated against the Section 2.2 sequential specification. *)

module type SPEC = sig
  type state
  type op
  type res

  val apply : state -> op -> state * res
  val equal_res : res -> res -> bool

  val state_key : state -> string
  (** Injective encoding of the state, for memoization. *)
end

module Make (S : SPEC) : sig
  type entry = (S.op, S.res) History.entry

  type verdict =
    | Linearizable of int list
        (** witness: indices (into the invocation-sorted history) in
            linearization order *)
    | Not_linearizable

  val check : init:S.state -> entry array -> verdict
end

(** The instantiation used throughout: integer deques against the
    Section 2.2 oracle. *)

type deque_entry = (int Op.op, int Op.res) History.entry

val check_deque :
  ?capacity:int ->
  ?initial:int list ->
  deque_entry array ->
  (int list, unit) result
(** [check_deque ?capacity ?initial history] checks [history] against a
    sequential deque that starts as [initial] (default empty) with the
    given capacity (default unbounded).  [Ok witness] gives one valid
    linearization order. *)

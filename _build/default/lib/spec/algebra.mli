(** The deque algebra the paper feeds to the Simplify prover
    (Figure 35): deques as free terms over [EmptyQ] / [Singleton] /
    [Concat], with the push/pop/peek operations defined structurally
    and each axiom exported as a checkable law.

    [denote] interprets a term as the sequence it stands for; all laws
    hold up to that interpretation.  Tests check the laws by
    enumeration and with qcheck, and bridge the algebra to the
    executable oracle via {!to_seq_deque}. *)

type 'a term = EmptyQ | Singleton of 'a | Concat of 'a term * 'a term

val denote : 'a term -> 'a list
val len : 'a term -> int
val is_empty : 'a term -> bool
val push_l : 'a term -> 'a -> 'a term
val push_r : 'a term -> 'a -> 'a term

val peek_l : 'a term -> 'a option
val peek_r : 'a term -> 'a option
(** [None] exactly where Figure 35 leaves the observer undefined. *)

val pop_l : 'a term -> 'a term option
val pop_r : 'a term -> 'a term option

val equal : ('a -> 'a -> bool) -> 'a term -> 'a term -> bool
(** Semantic equality: same denotation. *)

(** One boolean law per Figure 35 axiom; each takes the element
    equality where relevant. *)
module Laws : sig
  val constructors_distinct : 'a -> bool
  val concat_nonempty_left : ('a -> 'a -> bool) -> 'a term -> 'a term -> bool
  val concat_nonempty_right : ('a -> 'a -> bool) -> 'a term -> 'a term -> bool
  val concat_empty_right : ('a -> 'a -> bool) -> 'a term -> bool
  val concat_empty_left : ('a -> 'a -> bool) -> 'a term -> bool

  val concat_assoc :
    ('a -> 'a -> bool) -> 'a term -> 'a term -> 'a term -> bool

  val push_l_def : ('a -> 'a -> bool) -> 'a term -> 'a -> bool
  val push_r_def : ('a -> 'a -> bool) -> 'a term -> 'a -> bool
  val peek_r_singleton : 'a -> bool
  val peek_l_singleton : 'a -> bool
  val peek_r_concat : 'a term -> 'a term -> bool
  val peek_l_concat : 'a term -> 'a term -> bool
  val pop_r_singleton : ('a -> 'a -> bool) -> 'a -> bool
  val pop_l_singleton : ('a -> 'a -> bool) -> 'a -> bool
  val pop_r_concat : ('a -> 'a -> bool) -> 'a term -> 'a term -> bool
  val pop_l_concat : ('a -> 'a -> bool) -> 'a term -> 'a term -> bool
  val len_empty : unit -> bool
  val len_singleton : 'a -> bool
  val len_concat : 'a term -> 'a term -> bool
end

val to_seq_deque : ?capacity:int -> 'a term -> 'a Seq_deque.t
val of_list : 'a list -> 'a term

(* Concurrent operation histories in the sense of Section 2: sequences
   of invocations and responses, inducing the real-time partial order
   "A precedes B iff A's response occurs before B's invocation".

   A recorder hands out per-thread buffers so that recording an
   operation costs two reads of a global atomic clock and two
   unsynchronized array stores — cheap enough not to perturb the
   interleavings being observed.  The global clock is an atomic counter
   ticked at invocation and response; because [Atomic.fetch_and_add] is
   linearizable, the recorded timestamps are consistent with real-time
   order. *)

type ('op, 'res) entry = {
  thread : int;  (* recording thread's index *)
  op : 'op;
  result : 'res;
  inv : int;  (* clock at invocation *)
  ret : int;  (* clock at response; inv < ret *)
}

type ('op, 'res) t = ('op, 'res) entry array
(* Completed operations only, in no particular order. *)

let precedes a b = a.ret < b.inv

let sort_by_invocation h =
  let h = Array.copy h in
  Array.sort (fun a b -> compare a.inv b.inv) h;
  h

(* Is the history already sequential (no two operations overlap)?  Such
   a history is linearizable iff replaying it through the oracle in
   invocation order reproduces every result. *)
let is_sequential h =
  let h = sort_by_invocation h in
  let ok = ref true in
  Array.iteri
    (fun i e -> if i > 0 then if not (precedes h.(i - 1) e) then ok := false)
    h;
  !ok

let pp pp_op pp_res ppf h =
  let h = sort_by_invocation h in
  Array.iter
    (fun e ->
      Format.fprintf ppf "@[[t%d %4d-%4d] %a -> %a@]@." e.thread e.inv e.ret
        pp_op e.op pp_res e.result)
    h

module Recorder = struct
  type ('op, 'res) buffer = {
    mutable entries : ('op, 'res) entry list;
    mutable count : int;
  }

  type ('op, 'res) recorder = {
    clock : int Atomic.t;
    buffers : ('op, 'res) buffer array;
  }

  let create ~threads =
    if threads < 1 then invalid_arg "History.Recorder.create: threads >= 1";
    {
      clock = Atomic.make 0;
      buffers = Array.init threads (fun _ -> { entries = []; count = 0 });
    }

  (* Record one operation: tick, run, tick.  Only thread [thread] may
     call this with that index, which is what makes the buffer stores
     race-free. *)
  let record r ~thread op f =
    let inv = Atomic.fetch_and_add r.clock 1 in
    let result = f () in
    let ret = Atomic.fetch_and_add r.clock 1 in
    let b = r.buffers.(thread) in
    b.entries <- { thread; op; result; inv; ret } :: b.entries;
    b.count <- b.count + 1;
    result

  (* Collect all buffers into one history.  Call only after every
     recording thread has been joined. *)
  let history r : ('op, 'res) t =
    Array.to_list r.buffers
    |> List.concat_map (fun b -> b.entries)
    |> Array.of_list
end

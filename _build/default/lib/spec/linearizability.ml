(* Wing & Gong's linearizability checking algorithm, with the
   memoization of Lowe ("Testing for linearizability", 2017): depth-
   first search over choices of the next operation to linearize, where
   an operation is eligible if every operation that responded before
   its invocation has already been linearized.  Visited (pending-set,
   abstract-state) pairs are memoized so that equivalent search
   frontiers are not re-explored; this is what makes histories of a few
   hundred operations tractable.

   The checker is generic in the sequential specification; the functor
   below is instantiated for deques in {!Deque_check}, which is what
   the test suites and experiment E13 use. *)

module type SPEC = sig
  type state
  type op
  type res

  val apply : state -> op -> state * res
  val equal_res : res -> res -> bool

  val state_key : state -> string
  (** An injective encoding of the abstract state, used as part of the
      memoization key. *)
end

module Make (S : SPEC) = struct
  type entry = (S.op, S.res) History.entry

  (* The pending set is represented as a bitset over the history
     (indices fixed after an initial sort), encoded into the memo key
     as raw bytes. *)
  let bitset_key (pending : bool array) (state : S.state) =
    let n = Array.length pending in
    let b = Bytes.make (((n + 7) / 8) + 1) '\000' in
    for i = 0 to n - 1 do
      if pending.(i) then
        let byte = i / 8 and bit = i mod 8 in
        Bytes.set b byte
          (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl bit)))
    done;
    Bytes.to_string b ^ "|" ^ S.state_key state

  type verdict =
    | Linearizable of int list  (* witness: linearization order (indices) *)
    | Not_linearizable

  let check ~init (history : entry array) =
    let h = History.sort_by_invocation history in
    let n = Array.length h in
    (* eligible i pending: no pending j responded before i's invocation *)
    let eligible pending i =
      pending.(i)
      &&
      let ok = ref true in
      for j = 0 to n - 1 do
        if pending.(j) && j <> i && History.precedes h.(j) h.(i) then ok := false
      done;
      !ok
    in
    let memo = Hashtbl.create 1024 in
    let pending = Array.make n true in
    let rec search state remaining acc =
      if remaining = 0 then Some (List.rev acc)
      else
        let key = bitset_key pending state in
        if Hashtbl.mem memo key then None
        else begin
          Hashtbl.add memo key ();
          let rec try_ops i =
            if i >= n then None
            else if eligible pending i then begin
              let state', res = S.apply state h.(i).op in
              if S.equal_res res h.(i).result then begin
                pending.(i) <- false;
                match search state' (remaining - 1) (i :: acc) with
                | Some w -> Some w
                | None ->
                    pending.(i) <- true;
                    try_ops (i + 1)
              end
              else try_ops (i + 1)
            end
            else try_ops (i + 1)
          in
          try_ops 0
        end
    in
    match search init n [] with
    | Some witness -> Linearizable witness
    | None -> Not_linearizable
end

(* The instantiation used throughout: integer-valued deques checked
   against the Section 2.2 oracle. *)
module Deque_spec = struct
  type state = int Seq_deque.t
  type op = int Op.op
  type res = int Op.res

  let apply = Seq_deque.apply
  let equal_res = Op.equal_res Int.equal

  let state_key s =
    Seq_deque.to_list s |> List.map string_of_int |> String.concat ","
end

module Deque_check = Make (Deque_spec)

type deque_entry = (int Op.op, int Op.res) History.entry

let check_deque ?capacity ?(initial = []) (history : deque_entry array) =
  match Deque_check.check ~init:(Seq_deque.of_list ?capacity initial) history with
  | Deque_check.Linearizable w -> Ok w
  | Deque_check.Not_linearizable -> Error ()

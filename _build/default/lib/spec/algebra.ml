(* The deque algebra the paper feeds to the Simplify prover (Figure 35):
   deques axiomatized with EmptyQ / singleton / concat constructors,
   pushR/pushL/popR/popL mutators, peekR/peekL observers and a len
   function.  Here the terms are a free datatype, [denote] maps a term
   to the sequence it stands for, and each Figure 35 axiom is exported
   as a boolean law so the test suite can check them by enumeration and
   by qcheck (experiment E13's "axioms hold of the implementation"
   leg). *)

type 'a term =
  | EmptyQ
  | Singleton of 'a
  | Concat of 'a term * 'a term

let rec denote = function
  | EmptyQ -> []
  | Singleton v -> [ v ]
  | Concat (a, b) -> denote a @ denote b

let rec len = function
  | EmptyQ -> 0
  | Singleton _ -> 1
  | Concat (a, b) -> len a + len b

let is_empty t = len t = 0

(* Mutators and observers, defined structurally as in Figure 35.  The
   peek/pop functions are partial exactly where the axioms leave them
   undefined (on empty deques). *)

let push_l q v = Concat (Singleton v, q)
let push_r q v = Concat (q, Singleton v)

let rec peek_r = function
  | EmptyQ -> None
  | Singleton v -> Some v
  | Concat (q1, q2) -> ( match peek_r q2 with Some v -> Some v | None -> peek_r q1)

let rec peek_l = function
  | EmptyQ -> None
  | Singleton v -> Some v
  | Concat (q1, q2) -> ( match peek_l q1 with Some v -> Some v | None -> peek_l q2)

let rec pop_r = function
  | EmptyQ -> None
  | Singleton _ -> Some EmptyQ
  | Concat (q1, q2) -> (
      if is_empty q2 then
        match pop_r q1 with Some q1' -> Some (Concat (q1', q2)) | None -> None
      else match pop_r q2 with Some q2' -> Some (Concat (q1, q2')) | None -> None)

let rec pop_l = function
  | EmptyQ -> None
  | Singleton _ -> Some EmptyQ
  | Concat (q1, q2) -> (
      if is_empty q1 then
        match pop_l q2 with Some q2' -> Some (Concat (q1, q2')) | None -> None
      else match pop_l q1 with Some q1' -> Some (Concat (q1', q2)) | None -> None)

(* Semantic equality: two terms denote the same deque.  The Figure 35
   axioms are all stated up to this equality. *)
let equal eq a b = List.equal eq (denote a) (denote b)

(* The axioms of Figure 35, one checkable law each.  [laws] pairs each
   with its name so test runners can report which axiom failed. *)
module Laws = struct
  let constructors_distinct v = denote (Singleton v) <> denote EmptyQ

  let concat_nonempty_left eq q1 q2 =
    if is_empty q1 then true else not (equal eq (Concat (q1, q2)) EmptyQ)

  let concat_nonempty_right eq q1 q2 =
    if is_empty q2 then true else not (equal eq (Concat (q1, q2)) EmptyQ)

  let concat_empty_right eq q = equal eq (Concat (q, EmptyQ)) q
  let concat_empty_left eq q = equal eq (Concat (EmptyQ, q)) q

  let concat_assoc eq q1 q2 q3 =
    equal eq (Concat (q1, Concat (q2, q3))) (Concat (Concat (q1, q2), q3))

  let push_l_def eq q v = equal eq (push_l q v) (Concat (Singleton v, q))
  let push_r_def eq q v = equal eq (push_r q v) (Concat (q, Singleton v))
  let peek_r_singleton v = peek_r (Singleton v) = Some v
  let peek_l_singleton v = peek_l (Singleton v) = Some v

  let peek_r_concat q1 q2 =
    if is_empty q2 then true else peek_r (Concat (q1, q2)) = peek_r q2

  let peek_l_concat q1 q2 =
    if is_empty q1 then true else peek_l (Concat (q1, q2)) = peek_l q1

  let pop_r_singleton eq v =
    match pop_r (Singleton v) with Some q -> equal eq q EmptyQ | None -> false

  let pop_l_singleton eq v =
    match pop_l (Singleton v) with Some q -> equal eq q EmptyQ | None -> false

  let pop_r_concat eq q1 q2 =
    if is_empty q2 then true
    else
      match (pop_r (Concat (q1, q2)), pop_r q2) with
      | Some q, Some q2' -> equal eq q (Concat (q1, q2'))
      | _, _ -> false

  let pop_l_concat eq q1 q2 =
    if is_empty q1 then true
    else
      match (pop_l (Concat (q1, q2)), pop_l q1) with
      | Some q, Some q1' -> equal eq q (Concat (q1', q2))
      | _, _ -> false

  let len_empty () = len EmptyQ = 0
  let len_singleton v = len (Singleton v) = 1
  let len_concat q1 q2 = len (Concat (q1, q2)) = len q1 + len q2
end

(* Bridge to the executable oracle: a term denotes the same sequence as
   the Seq_deque built by pushing its elements.  Used by tests to tie
   the Figure 35 algebra to the Section 2.2 state machine. *)
let to_seq_deque ?capacity t = Seq_deque.of_list ?capacity (denote t)
let of_list xs = List.fold_left (fun q v -> push_r q v) EmptyQ xs

lib/spec/algebra.ml: List Seq_deque

lib/spec/seq_deque.mli: Format Op

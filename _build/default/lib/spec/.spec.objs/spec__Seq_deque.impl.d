lib/spec/seq_deque.ml: Format List Op

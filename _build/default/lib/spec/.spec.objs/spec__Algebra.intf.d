lib/spec/algebra.mli: Seq_deque

lib/spec/linearizability.ml: Array Bytes Char Hashtbl History Int List Op Seq_deque String

lib/spec/op.ml: Format

lib/spec/op.mli: Format

lib/spec/history.ml: Array Atomic Format List

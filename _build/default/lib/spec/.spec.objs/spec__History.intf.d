lib/spec/history.mli: Format

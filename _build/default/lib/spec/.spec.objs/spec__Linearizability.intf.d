lib/spec/linearizability.mli: History Op

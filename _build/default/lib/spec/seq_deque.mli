(** The sequential deque specification of Section 2.2 — the oracle.

    A deque is a sequence ⟨v0, …, vk⟩ with four operations whose
    transitions and return values are exactly those listed in the
    paper.  [capacity] bounds the cardinality for the array-based
    bounded deque; omit it for the unbounded (linked-list) deque. *)

type 'a t

val make : ?capacity:int -> unit -> 'a t
(** The empty deque, i.e. the state after [make_deque(length_S)].

    @raise Invalid_argument if [capacity < 1]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val is_full : 'a t -> bool
(** Always [false] for unbounded deques. *)

val to_list : 'a t -> 'a list
(** The sequence left-to-right: head of the list is the left end. *)

val of_list : ?capacity:int -> 'a list -> 'a t
(** @raise Invalid_argument if the list exceeds [capacity]. *)

val push_right : 'a t -> 'a -> 'a t * 'a Op.res
val push_left : 'a t -> 'a -> 'a t * 'a Op.res
val pop_right : 'a t -> 'a t * 'a Op.res
val pop_left : 'a t -> 'a t * 'a Op.res

val apply : 'a t -> 'a Op.op -> 'a t * 'a Op.res
(** Dispatch one operation; the transition function of the state
    machine. *)

val peek_right : 'a t -> 'a option
val peek_left : 'a t -> 'a option

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** Equality of abstract deque values (same sequence and capacity). *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

(* The sequential deque specification of Section 2.2, as an executable
   state machine: the oracle against which every concurrent
   implementation is checked (directly in sequential tests, via the
   linearizability checker in concurrent ones, and as the abstraction
   function's codomain in the model checker).

   The representation is the classic pair of lists: [front] holds the
   left end of the sequence in order, [back] holds the right end in
   reverse.  Popping from an exhausted side splits the opposite list in
   half, giving O(1) amortized operations, so the oracle never dominates
   test time. *)

type 'a t = {
  front : 'a list;  (* leftmost element first *)
  back : 'a list;  (* rightmost element first *)
  length : int;
  capacity : int option;  (* None = unbounded deque *)
}

let make ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Seq_deque.make: capacity must be >= 1"
  | Some _ | None -> ());
  { front = []; back = []; length = 0; capacity }

let length t = t.length
let is_empty t = t.length = 0

let is_full t =
  match t.capacity with None -> false | Some c -> t.length >= c

let to_list t = t.front @ List.rev t.back

let of_list ?capacity xs =
  (match capacity with
  | Some c when List.length xs > c ->
      invalid_arg "Seq_deque.of_list: more elements than capacity"
  | Some _ | None -> ());
  { front = xs; back = []; length = List.length xs; capacity }

(* Split a list in two halves; used to rebalance when one side runs
   out.  The first half keeps ceil(n/2) elements. *)
let split_half xs =
  let n = List.length xs in
  let rec take i acc rest =
    if i = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (i - 1) (x :: acc) rest
  in
  take ((n + 1) / 2) [] xs

let push_right t v : 'a t * 'a Op.res =
  if is_full t then (t, Op.Full)
  else (( { t with back = v :: t.back; length = t.length + 1 } : 'a t), Op.Okay)

let push_left t v : 'a t * 'a Op.res =
  if is_full t then (t, Op.Full)
  else ({ t with front = v :: t.front; length = t.length + 1 }, Op.Okay)

let pop_right t : 'a t * 'a Op.res =
  match t.back with
  | v :: back -> ({ t with back; length = t.length - 1 }, Op.Got v)
  | [] -> (
      match t.front with
      | [] -> (t, Op.Empty)
      | front -> (
          (* back exhausted: move the right half of front over *)
          let front', moved = split_half front in
          match List.rev moved with
          | v :: back ->
              ({ t with front = front'; back; length = t.length - 1 }, Op.Got v)
          | [] -> (
              (* moved was empty: front had a single element *)
              match List.rev front' with
              | v :: back ->
                  ({ t with front = []; back; length = t.length - 1 }, Op.Got v)
              | [] -> assert false)))

let pop_left t : 'a t * 'a Op.res =
  match t.front with
  | v :: front -> ({ t with front; length = t.length - 1 }, Op.Got v)
  | [] -> (
      match t.back with
      | [] -> (t, Op.Empty)
      | back -> (
          let back', moved = split_half back in
          match List.rev moved with
          | v :: front ->
              ({ t with back = back'; front; length = t.length - 1 }, Op.Got v)
          | [] -> (
              match List.rev back' with
              | v :: front ->
                  ({ t with back = []; front; length = t.length - 1 }, Op.Got v)
              | [] -> assert false)))

let apply t (op : 'a Op.op) : 'a t * 'a Op.res =
  match op with
  | Op.Push_right v -> push_right t v
  | Op.Push_left v -> push_left t v
  | Op.Pop_right -> pop_right t
  | Op.Pop_left -> pop_left t

let peek_right t =
  match t.back with
  | v :: _ -> Some v
  | [] -> ( match List.rev t.front with v :: _ -> Some v | [] -> None)

let peek_left t =
  match t.front with
  | v :: _ -> Some v
  | [] -> ( match List.rev t.back with v :: _ -> Some v | [] -> None)

let equal eq a b =
  a.length = b.length
  && a.capacity = b.capacity
  && List.equal eq (to_list a) (to_list b)

let pp pp_v ppf t =
  Format.fprintf ppf "@[<h>\u{27e8}%a\u{27e9}@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_v)
    (to_list t)

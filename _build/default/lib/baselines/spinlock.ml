(* Test-and-test-and-set spinlock with randomized backoff.  Spinning
   (rather than parking, as Mutex does) keeps the critical section
   latency low under light contention, which makes Spin_deque the
   stronger lock-based baseline in the throughput experiments. *)

type t = { flag : bool Atomic.t }

let create () = { flag = Atomic.make false }

let acquire t =
  let b = Dcas.Backoff.create () in
  let rec loop () =
    if Atomic.get t.flag then begin
      (* test before test-and-set: spin on a read, not on a CAS *)
      Domain.cpu_relax ();
      loop ()
    end
    else if Atomic.compare_and_set t.flag false true then ()
    else begin
      Dcas.Backoff.once b;
      loop ()
    end
  in
  loop ()

let release t = Atomic.set t.flag false

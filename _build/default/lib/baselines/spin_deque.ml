(* Spinlock-protected ring deque: the stronger lock-based baseline.
   Under light contention a spinlock's uncontended fast path is a
   single CAS, so this bounds from below the cost any DCAS-based
   implementation must justify. *)

type 'a t = { lock : Spinlock.t; ring : 'a Ring.t }

let name = "spin-deque"

let create ~capacity () = { lock = Spinlock.create (); ring = Ring.create ~capacity () }

let with_lock t f =
  Spinlock.acquire t.lock;
  let r = f t.ring in
  Spinlock.release t.lock;
  r

let push_right t v = with_lock t (fun ring -> Ring.push_right ring v)
let push_left t v = with_lock t (fun ring -> Ring.push_left ring v)
let pop_right t = with_lock t Ring.pop_right
let pop_left t = with_lock t Ring.pop_left

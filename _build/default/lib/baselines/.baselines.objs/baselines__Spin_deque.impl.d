lib/baselines/spin_deque.ml: Ring Spinlock

lib/baselines/greenwald_v2.mli: Dcas Deque

lib/baselines/abp_deque.mli: Deque

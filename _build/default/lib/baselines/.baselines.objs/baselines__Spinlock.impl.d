lib/baselines/spinlock.ml: Atomic Dcas Domain

lib/baselines/ring.ml: Array List

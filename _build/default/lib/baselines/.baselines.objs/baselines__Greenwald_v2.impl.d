lib/baselines/greenwald_v2.ml: Array Dcas Deque List

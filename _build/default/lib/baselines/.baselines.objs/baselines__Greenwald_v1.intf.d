lib/baselines/greenwald_v1.mli: Dcas Deque

lib/baselines/lock_deque.mli: Deque

lib/baselines/ring.mli: Deque

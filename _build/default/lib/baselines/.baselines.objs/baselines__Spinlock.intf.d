lib/baselines/spinlock.mli:

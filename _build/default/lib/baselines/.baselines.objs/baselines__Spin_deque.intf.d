lib/baselines/spin_deque.mli: Deque

lib/baselines/lock_deque.ml: Mutex Ring

lib/baselines/abp_deque.ml: Array Atomic

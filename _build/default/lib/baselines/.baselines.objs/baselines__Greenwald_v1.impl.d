lib/baselines/greenwald_v1.ml: Array Dcas Deque List

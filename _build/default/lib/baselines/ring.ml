(* A plain sequential ring-buffer deque, used as the protected state of
   the lock-based baselines.  Not thread-safe on its own. *)

type 'a t = {
  cells : 'a option array;
  mutable left : int;  (* index of the slot left of the leftmost item *)
  mutable count : int;
  capacity : int;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { cells = Array.make capacity None; left = 0; count = 0; capacity }

let ( %% ) a b = ((a mod b) + b) mod b

let is_empty t = t.count = 0
let is_full t = t.count = t.capacity
let length t = t.count

let push_right t v =
  if is_full t then `Full
  else begin
    let i = (t.left + 1 + t.count) %% t.capacity in
    t.cells.(i) <- Some v;
    t.count <- t.count + 1;
    `Okay
  end

let push_left t v =
  if is_full t then `Full
  else begin
    t.cells.(t.left) <- Some v;
    t.left <- (t.left - 1) %% t.capacity;
    t.count <- t.count + 1;
    `Okay
  end

let pop_right t =
  if is_empty t then `Empty
  else begin
    let i = (t.left + t.count) %% t.capacity in
    match t.cells.(i) with
    | Some v ->
        t.cells.(i) <- None;
        t.count <- t.count - 1;
        `Value v
    | None -> assert false
  end

let pop_left t =
  if is_empty t then `Empty
  else begin
    let i = (t.left + 1) %% t.capacity in
    match t.cells.(i) with
    | Some v ->
        t.cells.(i) <- None;
        t.left <- i;
        t.count <- t.count - 1;
        `Value v
    | None -> assert false
  end

let to_list t =
  List.init t.count (fun k ->
      match t.cells.((t.left + 1 + k) %% t.capacity) with
      | Some v -> v
      | None -> assert false)

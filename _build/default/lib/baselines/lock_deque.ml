(* Mutex-protected ring deque: the straightforward blocking
   implementation every practitioner would write first.  The baseline
   for the paper's Section 1 claims that non-blocking structures
   deliver resilience (experiment E9: a stalled lock holder stops the
   world here) and scale better under contention. *)

type 'a t = { mutex : Mutex.t; ring : 'a Ring.t }

let name = "lock-deque"

let create ~capacity () = { mutex = Mutex.create (); ring = Ring.create ~capacity () }

let with_lock t f =
  Mutex.lock t.mutex;
  let r = f t.ring in
  Mutex.unlock t.mutex;
  r

let push_right t v = with_lock t (fun ring -> Ring.push_right ring v)
let push_left t v = with_lock t (fun ring -> Ring.push_left ring v)
let pop_right t = with_lock t Ring.pop_right
let pop_left t = with_lock t Ring.pop_left

(* Exposed for the stall-injection experiment (E9): run [f] while
   holding the deque's lock, simulating a preempted critical section. *)
let with_lock_held t f = with_lock t (fun _ring -> f ())

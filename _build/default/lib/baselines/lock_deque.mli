(** Mutex-protected ring deque: the straightforward blocking baseline
    (experiments E9, E12). *)

include Deque.Deque_intf.S

val with_lock_held : 'a t -> (unit -> 'b) -> 'b
(** Run a function while holding the deque's lock — the stall-injection
    hook for experiment E9 (a preempted critical section stops all
    other threads). *)

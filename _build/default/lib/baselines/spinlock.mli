(** Test-and-test-and-set spinlock with randomized backoff. *)

type t

val create : unit -> t
val acquire : t -> unit
val release : t -> unit

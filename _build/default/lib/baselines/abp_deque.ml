(* The CAS-only work-stealing deque of Arora, Blumofe and Plaxton [4]
   ("Thread scheduling for multiprogrammed multiprocessors", SPAA
   1998), the restricted baseline the paper contrasts with: one end
   (the bottom) is accessed only by its owning thread, the other end
   (the top) supports only pops (steals).  Those restrictions are what
   let it synchronize with single-word CAS — an (index, tag) pair
   packed into one atomic word — where the general deque needs DCAS.

   Used in experiment E8: inside a work-stealing scheduler, where its
   restrictions are acceptable, it beats the general DCAS deques; the
   DCAS deques in turn offer the unrestricted API. *)

type 'a t = {
  cells : 'a option Atomic.t array;
  bot : int Atomic.t;  (* owner writes, thieves read *)
  age : int Atomic.t;  (* top index and ABA tag packed in one word *)
  capacity : int;
}

let name = "abp-deque"

(* top in the low bits, tag above; capacity is far below 2^24 in all
   our workloads. *)
let top_bits = 24
let top_mask = (1 lsl top_bits) - 1
let pack ~tag ~top = (tag lsl top_bits) lor top
let top_of age = age land top_mask
let tag_of age = age lsr top_bits

let create ~capacity () =
  if capacity < 1 || capacity > top_mask then
    invalid_arg "Abp_deque.create: capacity out of range";
  {
    cells = Array.init capacity (fun _ -> Atomic.make None);
    bot = Atomic.make 0;
    age = Atomic.make (pack ~tag:0 ~top:0);
    capacity;
  }

(* Owner-only: push at the bottom. *)
let push_bottom t v =
  let bot = Atomic.get t.bot in
  if bot >= t.capacity then `Full
  else begin
    Atomic.set t.cells.(bot) (Some v);
    Atomic.set t.bot (bot + 1);
    `Okay
  end

(* Owner-only: pop from the bottom. *)
let pop_bottom t =
  let bot = Atomic.get t.bot in
  if bot = 0 then `Empty
  else begin
    let bot = bot - 1 in
    Atomic.set t.bot bot;
    let v =
      match Atomic.get t.cells.(bot) with Some v -> v | None -> assert false
    in
    let old_age = Atomic.get t.age in
    if bot > top_of old_age then `Value v
    else begin
      (* possibly racing a thief for the last element: reset the deque
         and arbitrate through the age word *)
      Atomic.set t.bot 0;
      let new_age = pack ~tag:(tag_of old_age + 1) ~top:0 in
      if bot = top_of old_age && Atomic.compare_and_set t.age old_age new_age
      then `Value v
      else begin
        Atomic.set t.age new_age;
        `Empty
      end
    end
  end

(* Any thread: steal from the top.  [`Abort] reports a lost race, which
   ABP exposes to the caller instead of retrying internally. *)
let steal t =
  let old_age = Atomic.get t.age in
  let bot = Atomic.get t.bot in
  if bot <= top_of old_age then `Empty
  else begin
    let v =
      match Atomic.get t.cells.(top_of old_age) with
      | Some v -> v
      | None -> assert false
    in
    let new_age = pack ~tag:(tag_of old_age) ~top:(top_of old_age + 1) in
    if Atomic.compare_and_set t.age old_age new_age then `Value v else `Abort
  end

(* Retrying wrapper with the general pop interface, for harness code
   that does not care about [`Abort]. *)
let rec steal_retry t =
  match steal t with
  | `Value v -> `Value v
  | `Empty -> `Empty
  | `Abort -> steal_retry t

(** A reconstruction of the failure mode of Greenwald's second deque
    (Section 1.1): boundary conditions concluded from two separate
    reads instead of an atomically-confirmed view.  Under a schedule
    where the deque drains from one side and refills from the other
    between those reads, a push reports "full" while a single element
    is present — the flaw the paper documents, found automatically by
    the model checker (experiment E6).  See DESIGN.md for the scope of
    the reconstruction (Greenwald's exact listing is in an inaccessible
    thesis; this reproduces the documented bug class, not his text). *)

module type ALGORITHM = sig
  type 'a t

  val name : string
  val make : length:int -> unit -> 'a t
  val create : capacity:int -> unit -> 'a t
  val push_right : 'a t -> 'a -> Deque.Deque_intf.push_result
  val push_left : 'a t -> 'a -> Deque.Deque_intf.push_result
  val pop_right : 'a t -> 'a Deque.Deque_intf.pop_result
  val pop_left : 'a t -> 'a Deque.Deque_intf.pop_result
  val unsafe_to_list : 'a t -> 'a list
end

module Make (M : Dcas.Memory_intf.MEMORY) : ALGORITHM
module Lockfree : ALGORITHM
module Locked : ALGORITHM
module Sequential : ALGORITHM

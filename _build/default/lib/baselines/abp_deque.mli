(** The CAS-only work-stealing deque of Arora, Blumofe and Plaxton [4]:
    the restricted baseline of Section 1.1.  One end (bottom) is
    owner-only; the other (top) supports only pops.  Those restrictions
    are what allow single-word CAS synchronization via an (index, tag)
    word. *)

type 'a t

val name : string

val create : capacity:int -> unit -> 'a t
(** @raise Invalid_argument if [capacity] is outside [1, 2^24). *)

val push_bottom : 'a t -> 'a -> Deque.Deque_intf.push_result
(** Owner only. *)

val pop_bottom : 'a t -> 'a Deque.Deque_intf.pop_result
(** Owner only. *)

val steal : 'a t -> [ `Value of 'a | `Empty | `Abort ]
(** Any thread; [`Abort] reports a lost race (ABP exposes it rather
    than retrying internally). *)

val steal_retry : 'a t -> 'a Deque.Deque_intf.pop_result
(** {!steal} with internal retry on [`Abort]. *)

(** Spinlock-protected ring deque: the stronger lock-based baseline
    (uncontended fast path is one CAS). *)

include Deque.Deque_intf.S

(* A reconstruction of the failure mode of Greenwald's second
   array-based DCAS deque (pages 219-220 of [16]), which Section 1.1
   reports "can fail to push a new value onto one of the ends, even
   when the deque contains only a single element, regardless of the
   array size".

   Greenwald's exact listing is only available in his thesis; what this
   module reproduces — and documents as a reconstruction in DESIGN.md —
   is the *class* of bug the paper attributes to it: concluding a
   boundary condition from a non-instantaneous view.  The code below is
   the paper's own array algorithm with the boundary-confirmation
   DCASes removed: when a push (pop) observes an occupied (empty) cell
   at its target index it reports full (empty) immediately, on the
   strength of two separate reads.  Under a schedule in which the deque
   drains from one side and refills from the other between those two
   reads, a push observes a stale index whose cell now holds a value
   and returns "full" while the deque holds a single element — the
   scenario experiment E6 constructs deterministically.

   The push side also matches the paper's other complaint: without a
   confirmed full check the algorithm is only correct for an unbounded
   array; bounded use can misreport, which is the point. *)

module type ALGORITHM = sig
  type 'a t

  val name : string
  val make : length:int -> unit -> 'a t
  val create : capacity:int -> unit -> 'a t
  val push_right : 'a t -> 'a -> Deque.Deque_intf.push_result
  val push_left : 'a t -> 'a -> Deque.Deque_intf.push_result
  val pop_right : 'a t -> 'a Deque.Deque_intf.pop_result
  val pop_left : 'a t -> 'a Deque.Deque_intf.pop_result
  val unsafe_to_list : 'a t -> 'a list
end

module Make (M : Dcas.Memory_intf.MEMORY) : ALGORITHM = struct
  type 'a cell = Null | Item of 'a

  type 'a t = { l : int M.loc; r : int M.loc; s : 'a cell M.loc array; length : int }

  let name = "greenwald-v2/" ^ M.name

  let cell_equal a b =
    match (a, b) with
    | Null, Null -> true
    | Item x, Item y -> x == y
    | (Null | Item _), _ -> false

  let ( %% ) a b = ((a mod b) + b) mod b

  let make ~length () =
    if length < 1 then invalid_arg "Greenwald_v2.make: length must be >= 1";
    {
      l = M.make 0;
      r = M.make (1 %% length);
      s = Array.init length (fun _ -> M.make ~equal:cell_equal Null);
      length;
    }

  let create ~capacity () = make ~length:capacity ()

  let push_right t v =
    let rec loop () =
      let old_r = M.get t.r in
      let old_s = M.get t.s.(old_r) in
      match old_s with
      | Item _ -> `Full (* unconfirmed conclusion: the flaw *)
      | Null ->
          let new_r = (old_r + 1) %% t.length in
          if M.dcas t.r t.s.(old_r) old_r old_s new_r (Item v) then `Okay
          else loop ()
    in
    loop ()

  let push_left t v =
    let rec loop () =
      let old_l = M.get t.l in
      let old_s = M.get t.s.(old_l) in
      match old_s with
      | Item _ -> `Full
      | Null ->
          let new_l = (old_l - 1) %% t.length in
          if M.dcas t.l t.s.(old_l) old_l old_s new_l (Item v) then `Okay
          else loop ()
    in
    loop ()

  let pop_right t =
    let rec loop () =
      let old_r = M.get t.r in
      let i = (old_r - 1) %% t.length in
      let old_s = M.get t.s.(i) in
      match old_s with
      | Null -> `Empty (* unconfirmed conclusion: the flaw *)
      | Item v ->
          if M.dcas t.r t.s.(i) old_r old_s i Null then `Value v else loop ()
    in
    loop ()

  let pop_left t =
    let rec loop () =
      let old_l = M.get t.l in
      let i = (old_l + 1) %% t.length in
      let old_s = M.get t.s.(i) in
      match old_s with
      | Null -> `Empty
      | Item v ->
          if M.dcas t.l t.s.(i) old_l old_s i Null then `Value v else loop ()
    in
    loop ()

  let unsafe_to_list t =
    let l = M.get t.l in
    let rec walk i k acc =
      if k = 0 then List.rev acc
      else
        match M.get t.s.(i) with
        | Item v -> walk ((i + 1) %% t.length) (k - 1) (v :: acc)
        | Null -> List.rev acc
    in
    walk ((l + 1) %% t.length) t.length []
end

module Lockfree = Make (Dcas.Mem_lockfree)
module Locked = Make (Dcas.Mem_lock)
module Sequential = Make (Dcas.Mem_seq)

(** Greenwald's first array-based DCAS deque (Section 1.1's prior art):
    both end indices packed into one memory word, DCASed together with
    a value cell on every operation.  Correct — boundary detection is
    trivial with an atomic index pair — but the index range is halved
    (lengths above 2^20 are rejected here) and the two ends always
    collide on the shared word: experiment E5 measures the
    serialization.  [capacity] for {!ALGORITHM.create} is the array
    length. *)

module type ALGORITHM = sig
  type 'a t

  val name : string
  val make : length:int -> unit -> 'a t
  val create : capacity:int -> unit -> 'a t
  val push_right : 'a t -> 'a -> Deque.Deque_intf.push_result
  val push_left : 'a t -> 'a -> Deque.Deque_intf.push_result
  val pop_right : 'a t -> 'a Deque.Deque_intf.pop_result
  val pop_left : 'a t -> 'a Deque.Deque_intf.pop_result
  val unsafe_to_list : 'a t -> 'a list
end

module Make (M : Dcas.Memory_intf.MEMORY) : ALGORITHM
module Lockfree : ALGORITHM
module Locked : ALGORITHM
module Sequential : ALGORITHM

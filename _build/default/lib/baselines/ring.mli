(** Sequential ring-buffer deque: the protected state of the lock-based
    baselines.  {b Not thread-safe} on its own. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val is_empty : 'a t -> bool
val is_full : 'a t -> bool
val length : 'a t -> int
val push_right : 'a t -> 'a -> Deque.Deque_intf.push_result
val push_left : 'a t -> 'a -> Deque.Deque_intf.push_result
val pop_right : 'a t -> 'a Deque.Deque_intf.pop_result
val pop_left : 'a t -> 'a Deque.Deque_intf.pop_result
val to_list : 'a t -> 'a list

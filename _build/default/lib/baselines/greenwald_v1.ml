(* Greenwald's first array-based DCAS deque (pages 196-197 of [16]),
   as characterized in Section 1.1 of the paper: both end indices are
   packed into a single memory word, and every operation DCASes that
   word together with one value cell — "using the two-word DCAS as if
   it were a three-word operation".

   Because the index word is read and updated atomically, boundary
   detection is trivial (no ambiguity between empty and full is ever
   observable), which is why the algorithm is simple and correct.  The
   paper's two complaints, both reproduced here:

   - the index range is cut to half a memory word (our packing allows
     2^20 cells, mirroring the limitation); and

   - operations on the two ends always collide on the shared index
     word, so the deque cannot serve concurrent access to both ends —
     experiment E5 measures exactly this serialization against the
     paper's algorithm. *)

module type ALGORITHM = sig
  type 'a t

  val name : string
  val make : length:int -> unit -> 'a t
  val create : capacity:int -> unit -> 'a t
  val push_right : 'a t -> 'a -> Deque.Deque_intf.push_result
  val push_left : 'a t -> 'a -> Deque.Deque_intf.push_result
  val pop_right : 'a t -> 'a Deque.Deque_intf.pop_result
  val pop_left : 'a t -> 'a Deque.Deque_intf.pop_result
  val unsafe_to_list : 'a t -> 'a list
end

module Make (M : Dcas.Memory_intf.MEMORY) : ALGORITHM = struct
  type 'a cell = Null | Item of 'a

  (* Both indices in one "word".  A record in a single location models
     the bit-packed word; the range limitation is enforced below. *)
  type indices = { l : int; r : int }

  type 'a t = { idx : indices M.loc; s : 'a cell M.loc array; length : int }

  let name = "greenwald-v1/" ^ M.name
  let max_index = 1 lsl 20

  let cell_equal a b =
    match (a, b) with
    | Null, Null -> true
    | Item x, Item y -> x == y
    | (Null | Item _), _ -> false

  let indices_equal a b = a.l = b.l && a.r = b.r
  let ( %% ) a b = ((a mod b) + b) mod b

  let make ~length () =
    if length < 1 || length > max_index then
      invalid_arg "Greenwald_v1.make: length out of the packed-index range";
    {
      idx = M.make ~equal:indices_equal { l = 0; r = 1 %% length };
      s = Array.init length (fun _ -> M.make ~equal:cell_equal Null);
      length;
    }

  let create ~capacity () = make ~length:capacity ()

  let push_right t v =
    let rec loop () =
      let w = M.get t.idx in
      let old_s = M.get t.s.(w.r) in
      match old_s with
      | Item _ ->
          (* cell at the insertion point occupied: full, confirmed by a
             no-op DCAS against the atomic index pair *)
          if M.dcas t.idx t.s.(w.r) w old_s w old_s then `Full else loop ()
      | Null ->
          let w' = { w with r = (w.r + 1) %% t.length } in
          if M.dcas t.idx t.s.(w.r) w old_s w' (Item v) then `Okay else loop ()
    in
    loop ()

  let push_left t v =
    let rec loop () =
      let w = M.get t.idx in
      let old_s = M.get t.s.(w.l) in
      match old_s with
      | Item _ ->
          if M.dcas t.idx t.s.(w.l) w old_s w old_s then `Full else loop ()
      | Null ->
          let w' = { w with l = (w.l - 1) %% t.length } in
          if M.dcas t.idx t.s.(w.l) w old_s w' (Item v) then `Okay else loop ()
    in
    loop ()

  let pop_right t =
    let rec loop () =
      let w = M.get t.idx in
      let i = (w.r - 1) %% t.length in
      let old_s = M.get t.s.(i) in
      match old_s with
      | Null ->
          if M.dcas t.idx t.s.(i) w old_s w old_s then `Empty else loop ()
      | Item v ->
          let w' = { w with r = i } in
          if M.dcas t.idx t.s.(i) w old_s w' Null then `Value v else loop ()
    in
    loop ()

  let pop_left t =
    let rec loop () =
      let w = M.get t.idx in
      let i = (w.l + 1) %% t.length in
      let old_s = M.get t.s.(i) in
      match old_s with
      | Null ->
          if M.dcas t.idx t.s.(i) w old_s w old_s then `Empty else loop ()
      | Item v ->
          let w' = { w with l = i } in
          if M.dcas t.idx t.s.(i) w old_s w' Null then `Value v else loop ()
    in
    loop ()

  let unsafe_to_list t =
    let w = M.get t.idx in
    let rec walk i k acc =
      if k = 0 then List.rev acc
      else
        match M.get t.s.(i) with
        | Item v -> walk ((i + 1) %% t.length) (k - 1) (v :: acc)
        | Null -> List.rev acc
    in
    walk ((w.l + 1) %% t.length) t.length []
end

module Lockfree = Make (Dcas.Mem_lockfree)
module Locked = Make (Dcas.Mem_lock)
module Sequential = Make (Dcas.Mem_seq)

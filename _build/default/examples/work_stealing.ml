(* Work stealing: the application domain the paper cites for deques
   ("currently used in load balancing algorithms [4]").

     dune exec examples/work_stealing.exe

   Each worker owns a deque of tasks: LIFO at its own end for locality,
   stolen FIFO from the other end for load spread.  The scheduler is
   generic in the deque, so the paper's general DCAS deques and the
   restricted CAS-only ABP deque run the same workload; the ABP deque
   is cheaper per operation but supports only this restricted usage,
   which is exactly the trade-off Section 1.1 discusses. *)

let rec seq_fib n = if n < 2 then n else seq_fib (n - 1) + seq_fib (n - 2)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_one name (module S : Worksteal.Worksteal_intf.SCHEDULER) ~workers n =
  let module W = Worksteal.Workloads.Make (S) in
  let got, dt = time (fun () -> W.fib ~workers ~capacity:16384 n) in
  assert (got = seq_fib n);
  Printf.printf "  %-12s %d workers: fib %d = %d in %.3fs\n%!" name workers n
    got dt

let () =
  let n = 27 in
  Printf.printf "work-stealing fib %d across deque implementations:\n" n;
  List.iter
    (fun workers ->
      Printf.printf "-- %d worker(s) --\n" workers;
      run_one "abp" (module Worksteal.Scheduler.Abp_scheduler) ~workers n;
      run_one "array-dcas" (module Worksteal.Scheduler.Array_scheduler) ~workers n;
      run_one "list-dcas" (module Worksteal.Scheduler.List_scheduler) ~workers n;
      run_one "lock" (module Worksteal.Scheduler.Lock_scheduler) ~workers n)
    [ 1; 2; 4 ];
  print_endline "\n(single-core container: expect overheads, not speedups)"

(* Quickstart: the public API in two minutes.

     dune exec examples/quickstart.exe

   Both deques of the paper are functors over a DCAS memory model; the
   [Lockfree] instantiations are the production defaults.  The bounded
   array deque returns [`Full] at capacity; the unbounded list deque
   returns [`Full] only if its (optional) allocator budget runs out. *)

module Array_deque = Deque.Array_deque.Lockfree
module List_deque = Deque.List_deque.Lockfree

let show = function `Value v -> string_of_int v | `Empty -> "empty"

let () =
  print_endline "== bounded array deque (Section 3) ==";
  let d = Array_deque.make ~length:4 () in
  (* push on both ends: the deque is <2, 1, 3> afterwards, exactly the
     worked example of Section 2.2 *)
  assert (Array_deque.push_right d 1 = `Okay);
  assert (Array_deque.push_left d 2 = `Okay);
  assert (Array_deque.push_right d 3 = `Okay);
  Printf.printf "popLeft  -> %s (expect 2)\n" (show (Array_deque.pop_left d));
  Printf.printf "popLeft  -> %s (expect 1)\n" (show (Array_deque.pop_left d));
  Printf.printf "popRight -> %s (expect 3)\n" (show (Array_deque.pop_right d));
  Printf.printf "popRight -> %s (expect empty)\n" (show (Array_deque.pop_right d));
  (* boundary cases are exact: capacity 4 means the 5th push is full *)
  for v = 1 to 4 do
    assert (Array_deque.push_left d v = `Okay)
  done;
  (match Array_deque.push_left d 5 with
  | `Full -> print_endline "5th push  -> full (capacity is exact)"
  | `Okay -> assert false);

  print_endline "\n== unbounded list deque (Section 4) ==";
  let q = List_deque.make () in
  for v = 1 to 10_000 do
    assert (List_deque.push_right q v = `Okay)
  done;
  Printf.printf "10k pushes ok; popLeft -> %s (expect 1)\n"
    (show (List_deque.pop_left q));

  (* concurrent access to both ends: two domains hammer opposite ends
     simultaneously — the property Section 1.2 advertises *)
  print_endline "\n== concurrent access to both ends ==";
  let q = List_deque.make () in
  let pushed = 50_000 in
  let right_worker () =
    for v = 1 to pushed do
      ignore (List_deque.push_right q v)
    done
  in
  let left_worker () =
    let got = ref 0 in
    while !got < pushed do
      match List_deque.pop_left q with
      | `Value _ -> incr got
      | `Empty -> Domain.cpu_relax ()
    done
  in
  let t0 = Unix.gettimeofday () in
  let r = Domain.spawn right_worker and l = Domain.spawn left_worker in
  Domain.join r;
  Domain.join l;
  Printf.printf "%d values flowed right-to-left in %.2fs\n" pushed
    (Unix.gettimeofday () -. t0);

  (* the memory model is pluggable: the same algorithm runs over the
     blocking emulation for comparison *)
  print_endline "\n== pluggable DCAS substrate ==";
  let module Locked = Deque.Array_deque.Locked in
  let d = Locked.make ~length:2 () in
  assert (Locked.push_right d 9 = `Okay);
  Printf.printf "same algorithm over %s: popLeft -> %s\n" Locked.name
    (show (Locked.pop_left d))

(* A two-stage stream pipeline over deques used as concurrent FIFO
   channels — the queue face of the deque, plus a "re-enqueue at the
   front" trick only a deque supports: items that fail a stage's
   admission test are pushed BACK on the end they came from, keeping
   their priority, instead of being requeued at the tail.

     dune exec examples/pipeline.exe

   Stage 1 squares numbers; stage 2 keeps only those congruent to
   0 or 1 mod 4 (true of all squares, so nothing is lost — the check
   doubles as an integrity assertion). *)

module Q = Deque.List_deque.Lockfree

let n_items = 30_000

let () =
  let stage1_in = Q.make () in
  let stage2_in = Q.make () in
  let results = Q.make () in

  (* producer: feed the raw numbers from the left; consumers pop from
     the right, so each channel is FIFO *)
  let producer () =
    for v = 1 to n_items do
      assert (Q.push_left stage1_in v = `Okay)
    done;
    assert (Q.push_left stage1_in (-1) = `Okay) (* end-of-stream *)
  in

  let stage1 () =
    let running = ref true in
    while !running do
      match Q.pop_right stage1_in with
      | `Value -1 ->
          assert (Q.push_left stage2_in (-1) = `Okay);
          running := false
      | `Value v -> assert (Q.push_left stage2_in (v * v) = `Okay)
      | `Empty -> Domain.cpu_relax ()
    done
  in

  let stage2 () =
    let running = ref true in
    let deferred = ref 0 in
    while !running do
      match Q.pop_right stage2_in with
      | `Value -1 -> running := false
      | `Value v ->
          if v mod 4 = 0 || v mod 4 = 1 then
            assert (Q.push_left results v = `Okay)
          else begin
            (* would-be rejects go back to the FRONT of the queue —
               deque-only move; squares never hit this branch *)
            incr deferred;
            assert (Q.push_right stage2_in v = `Okay)
          end
      | `Empty -> Domain.cpu_relax ()
    done;
    assert (!deferred = 0)
  in

  let t0 = Unix.gettimeofday () in
  let p = Domain.spawn producer in
  let s1 = Domain.spawn stage1 in
  let s2 = Domain.spawn stage2 in
  Domain.join p;
  Domain.join s1;
  Domain.join s2;
  let dt = Unix.gettimeofday () -. t0 in

  (* drain and verify *)
  let count = ref 0 and sum = ref 0 in
  let rec drain () =
    match Q.pop_left results with
    | `Value v ->
        incr count;
        sum := !sum + v;
        drain ()
    | `Empty -> ()
  in
  drain ();
  let expect_sum =
    let s = ref 0 in
    for v = 1 to n_items do
      s := !s + (v * v)
    done;
    !s
  in
  Printf.printf "pipeline: %d items through 2 stages in %.2fs\n" !count dt;
  Printf.printf "checksum %s\n"
    (if !count = n_items && !sum = expect_sum then "ok" else "MISMATCH");
  exit (if !count = n_items && !sum = expect_sum then 0 else 1)

examples/model_explore.mli:

examples/model_explore.ml: Format Modelcheck Printf Spec Unix

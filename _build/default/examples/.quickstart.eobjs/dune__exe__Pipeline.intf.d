examples/pipeline.mli:

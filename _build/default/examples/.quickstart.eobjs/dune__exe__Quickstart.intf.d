examples/quickstart.mli:

examples/work_stealing.ml: List Printf Unix Worksteal

examples/quickstart.ml: Deque Domain Printf Unix

examples/pipeline.ml: Deque Domain Printf Unix

(* Model exploration: watch the verification substrate reproduce the
   paper's trickiest figures.

     dune exec examples/model_explore.exe

   Each scenario is run over EVERY interleaving of its threads'
   shared-memory steps; the representation invariant is checked after
   every step and every history is checked for linearizability.  The
   last scenario demonstrates the point of the machinery: Greenwald's
   unconfirmed-boundary deque (the flawed prior art of Section 1.1)
   fails, and the explorer prints the offending schedule. *)

open Spec.Op

let show name scenario =
  let t0 = Unix.gettimeofday () in
  let outcome = Modelcheck.Explorer.explore scenario in
  Printf.printf "%-42s %s (%.2fs)\n%!" name
    (Format.asprintf "%a" Modelcheck.Explorer.pp_outcome outcome)
    (Unix.gettimeofday () -. t0)

let () =
  print_endline "exhaustive interleaving exploration (invariant + linearizability):\n";
  show "Figure 6: popRight vs popLeft, 1 element"
    (Modelcheck.Scenario.array_deque ~name:"fig6" ~length:4 ~prefill:[ 42 ]
       [ [ Pop_right ]; [ Pop_left ] ]);
  show "last free slot: pushRight vs pushLeft"
    (Modelcheck.Scenario.array_deque ~name:"slot" ~length:3 ~prefill:[ 1; 2 ]
       [ [ Push_right 8 ]; [ Push_left 9 ] ]);
  show "Figure 16: contending deleteRight/deleteLeft"
    (Modelcheck.Scenario.list_deque ~name:"fig16" ~prefill:[ 1; 2 ]
       ~setup:[ Pop_right; Pop_left ]
       [ [ Push_right 3 ]; [ Push_left 4 ] ]);
  show "Figure 16 on the dummy-node variant"
    (Modelcheck.Scenario.list_deque_dummy ~name:"dfig16" ~prefill:[ 1; 2 ]
       ~setup:[ Pop_right; Pop_left ]
       [ [ Push_right 3 ]; [ Push_left 4 ] ]);
  print_endline "\nand the flawed prior art (Greenwald v2, Section 1.1):\n";
  show "Greenwald v2: push vs drain-and-refill"
    (Modelcheck.Scenario.greenwald_v2 ~name:"gw2" ~length:2 ~prefill:[ 7 ]
       [ [ Push_right 9 ]; [ Pop_left; Push_right 8 ] ])

bench/main.mli:

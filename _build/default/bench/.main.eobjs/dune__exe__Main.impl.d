bench/main.ml: Arg Cmd Cmdliner Experiments List Printf String Term Unix

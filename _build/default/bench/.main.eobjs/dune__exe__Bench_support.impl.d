bench/bench_support.ml: Analyze Baselines Bechamel Benchmark Deque Float Harness Hashtbl Instance List Measure Printf Staged Test Time Toolkit

bench/experiments.ml: Array Atomic Baselines Bench_support Dcas Deque Domain Float Gc Harness Int List Modelcheck Printf Spec Unix Worksteal

(* Experiment driver: regenerates every table of EXPERIMENTS.md.

     dune exec bench/main.exe                 # all experiments
     dune exec bench/main.exe -- e5 e7        # a selection
     dune exec bench/main.exe -- --quick      # fast smoke pass

   Experiment ids map to paper artifacts via the index in DESIGN.md. *)

open Cmdliner

let run_selected quick ids =
  let selected =
    match ids with
    | [] -> Experiments.all
    | ids ->
        List.filter_map
          (fun id ->
            match
              List.find_opt (fun e -> e.Experiments.id = id) Experiments.all
            with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown experiment %S (have: %s)\n" id
                  (String.concat ", "
                     (List.map (fun e -> e.Experiments.id) Experiments.all));
                exit 2)
          ids
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun e ->
      let t = Unix.gettimeofday () in
      e.Experiments.run ~quick;
      Printf.printf "[%s done in %.1fs]\n%!" e.Experiments.id
        (Unix.gettimeofday () -. t))
    selected;
  Printf.printf "\nall selected experiments completed in %.1fs\n"
    (Unix.gettimeofday () -. t0)

let quick =
  let doc = "Shrink durations and sample counts (smoke run)." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let ids =
  let doc = "Experiment ids to run (default: all). E.g. e4 e7." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let cmd =
  let doc = "DCAS deque experiment tables (E1-E14)" in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(const run_selected $ quick $ ids)

let () = exit (Cmd.eval cmd)

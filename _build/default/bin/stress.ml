(* Stress / throughput CLI over every deque implementation.

     dune exec bin/stress.exe -- --impl list-lockfree --threads 4 \
         --duration 2 --mix balanced

   Prints throughput and, for implementations over the lock-free DCAS
   substrate, the DCAS attempt/success counters accumulated during the
   run. *)

open Cmdliner

type impl = {
  name : string;
  run :
    threads:int ->
    duration:float ->
    mix:Harness.Workload.mix ->
    capacity:int ->
    prefill:int ->
    float;
}

let make_impl (type t) name ~(create : capacity:int -> unit -> t)
    ~(push_right : t -> int -> Deque.Deque_intf.push_result)
    ~(push_left : t -> int -> Deque.Deque_intf.push_result)
    ~(pop_right : t -> int Deque.Deque_intf.pop_result)
    ~(pop_left : t -> int Deque.Deque_intf.pop_result) =
  {
    name;
    run =
      (fun ~threads ~duration ~mix ~capacity ~prefill ->
        let d = create ~capacity () in
        for i = 1 to prefill do
          match
            if i mod 2 = 0 then push_right d i else push_left d i
          with
          | `Okay -> ()
          | `Full -> invalid_arg "prefill exceeds capacity"
        done;
        let r =
          Harness.Runner.run ~threads ~duration (fun ~tid ~rng ->
              ignore
                (Harness.Workload.apply
                   ~push_right:(fun v -> push_right d v)
                   ~push_left:(fun v -> push_left d v)
                   ~pop_right:(fun () -> pop_right d)
                   ~pop_left:(fun () -> pop_left d)
                   mix rng tid))
        in
        Harness.Runner.throughput r);
  }

let impls : impl list =
  [
    (let module D = Deque.Array_deque.Lockfree in
    make_impl "array-lockfree"
      ~create:(fun ~capacity () -> D.make ~length:capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.Array_deque.Locked in
    make_impl "array-locked"
      ~create:(fun ~capacity () -> D.make ~length:capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.List_deque.Lockfree in
    make_impl "list-lockfree"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.List_deque_dummy.Lockfree in
    make_impl "dummy-lockfree"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.List_deque_casn.Lockfree in
    make_impl "3cas-lockfree"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.List_deque.Lockfree in
    make_impl "list-recycle"
      ~create:(fun ~capacity:_ () -> D.make ~recycle:true ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Baselines.Lock_deque in
    make_impl "lock"
      ~create:(fun ~capacity () -> D.create ~capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Baselines.Spin_deque in
    make_impl "spin"
      ~create:(fun ~capacity () -> D.create ~capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Baselines.Greenwald_v1.Lockfree in
    make_impl "greenwald1"
      ~create:(fun ~capacity () -> D.make ~length:capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
  ]

let mix_of = function
  | "balanced" -> Ok Harness.Workload.balanced
  | "push-heavy" -> Ok Harness.Workload.push_heavy
  | "pop-heavy" -> Ok Harness.Workload.pop_heavy
  | "fifo" -> Ok Harness.Workload.fifo
  | "lifo" -> Ok Harness.Workload.lifo_right
  | m -> Error ("unknown mix: " ^ m)

let run impl_name threads duration mix_name capacity prefill =
  match
    ( List.find_opt (fun i -> i.name = impl_name) impls,
      mix_of mix_name )
  with
  | None, _ ->
      Printf.eprintf "unknown implementation %s (have: %s)\n" impl_name
        (String.concat ", " (List.map (fun i -> i.name) impls));
      2
  | _, Error e ->
      prerr_endline e;
      2
  | Some impl, Ok mix ->
      Dcas.Mem_lockfree.reset_stats ();
      let tp = impl.run ~threads ~duration ~mix ~capacity ~prefill in
      Printf.printf "%s: %s ops/s (%d threads, %.1fs, mix %s)\n" impl.name
        (Harness.Table.ops_per_sec tp)
        threads duration mix_name;
      let s = Dcas.Mem_lockfree.stats () in
      if s.Dcas.Memory_intf.dcas_attempts > 0 then
        Printf.printf "lock-free substrate: %s\n"
          (Format.asprintf "%a" Dcas.Memory_intf.pp_stats s);
      0

let impl_arg =
  Arg.(
    value
    & opt string "array-lockfree"
    & info [ "impl"; "i" ] ~docv:"IMPL" ~doc:"Implementation to drive.")

let threads = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"N" ~doc:"Domains.")

let duration =
  Arg.(value & opt float 1.0 & info [ "duration"; "d" ] ~docv:"SEC" ~doc:"Seconds.")

let mix =
  Arg.(
    value
    & opt string "balanced"
    & info [ "mix"; "m" ] ~docv:"MIX"
        ~doc:"balanced, push-heavy, pop-heavy, fifo, lifo.")

let capacity =
  Arg.(value & opt int 1024 & info [ "capacity"; "c" ] ~docv:"N" ~doc:"Capacity.")

let prefill =
  Arg.(value & opt int 512 & info [ "prefill"; "p" ] ~docv:"N" ~doc:"Initial items.")

let cmd =
  let doc = "multi-domain deque throughput" in
  Cmd.v
    (Cmd.info "stress" ~doc)
    Term.(const run $ impl_arg $ threads $ duration $ mix $ capacity $ prefill)

let () = exit (Cmd.eval' cmd)

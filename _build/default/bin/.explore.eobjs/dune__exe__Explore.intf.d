bin/explore.mli:

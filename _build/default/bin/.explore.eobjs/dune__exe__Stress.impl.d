bin/stress.ml: Arg Baselines Cmd Cmdliner Dcas Deque Format Harness List Printf String Term

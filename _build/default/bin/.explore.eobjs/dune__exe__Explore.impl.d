bin/explore.ml: Arg Cmd Cmdliner Format List Modelcheck Printf Result Spec String Term

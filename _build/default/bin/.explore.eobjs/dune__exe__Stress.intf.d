bin/stress.mli:

(* Experiment E14: lock-freedom (Theorems 3.1 and 4.1's non-blocking
   half), tested two ways.

   Model-checker leg: freeze one thread at EVERY one of its reachable
   step counts and verify all other threads still complete.  This
   covers the paper's subtle cases: a thread frozen between the logical
   and physical phases of a pop leaves a deleted mark that others must
   complete or work around (Section 4), and a thread frozen holding a
   CASN descriptor in the lock-free memory model must be helped.

   Real-domain leg: a worker sleeps mid-operation (between two of its
   shared-memory accesses, via the stall-instrumented memory) while
   others hammer the deque; with the DCAS deques the others make
   progress, with the lock-based baseline an equivalent sleep holding
   the lock stops everyone. *)

open Spec.Op

let assert_nonblocking name scenario ~victim =
  match Modelcheck.Explorer.check_nonblocking scenario ~victim with
  | Ok stall_points ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: survived all %d stall points" name stall_points)
        true (stall_points > 0)
  | Error j -> Alcotest.failf "%s: blocked at stall point %d" name j

let test_array_nonblocking () =
  let scenario =
    Modelcheck.Scenario.array_deque ~name:"nb-array" ~length:3 ~prefill:[ 1 ]
      [ [ Pop_right; Push_right 2 ]; [ Pop_left ]; [ Push_left 3 ] ]
  in
  assert_nonblocking "array, victim 0" scenario ~victim:0;
  assert_nonblocking "array, victim 1" scenario ~victim:1

let test_list_nonblocking () =
  let scenario =
    Modelcheck.Scenario.list_deque ~name:"nb-list" ~prefill:[ 1; 2 ]
      [ [ Pop_right; Push_right 3 ]; [ Pop_left ]; [ Push_left 4 ] ]
  in
  assert_nonblocking "list, victim 0" scenario ~victim:0;
  assert_nonblocking "list, victim 1" scenario ~victim:1

let test_list_nonblocking_deletion_phase () =
  (* victim frozen while completing Figure 16's physical deletions *)
  let scenario =
    Modelcheck.Scenario.list_deque ~name:"nb-del" ~prefill:[ 1; 2 ]
      ~setup:[ Pop_right; Pop_left ]
      [ [ Push_right 3 ]; [ Push_left 4 ]; [ Pop_right ] ]
  in
  assert_nonblocking "list deletion, victim 0" scenario ~victim:0;
  assert_nonblocking "list deletion, victim 2" scenario ~victim:2

let test_dummy_nonblocking () =
  let scenario =
    Modelcheck.Scenario.list_deque_dummy ~name:"nb-dummy" ~prefill:[ 1; 2 ]
      ~setup:[ Pop_right; Pop_left ]
      [ [ Push_right 3 ]; [ Push_left 4 ] ]
  in
  assert_nonblocking "dummy, victim 0" scenario ~victim:0;
  assert_nonblocking "dummy, victim 1" scenario ~victim:1

let test_st_nonblocking () =
  (* the single-word-CAS competitor: a thread frozen between the mark
     and the physical unlink of a pop leaves a marked link that the
     others must help past *)
  let scenario =
    Modelcheck.Scenario.st_deque ~name:"nb-st" ~prefill:[ 1; 2 ]
      [ [ Pop_right; Push_right 3 ]; [ Pop_left ]; [ Push_left 4 ] ]
  in
  assert_nonblocking "st, victim 0" scenario ~victim:0;
  assert_nonblocking "st, victim 1" scenario ~victim:1

(* --- E22 model-checker leg: fail-stop instead of freeze ---

   The victim is killed for good at every reachable crash point —
   including mid-CASN with an installed descriptor — and beyond the
   survivors completing, the structure must be fully recoverable: a
   survivor drains it to empty (helping the victim's orphaned
   descriptor on the way) and the contents balance the completed
   operations up to the victim's single maybe-committed operation. *)

let assert_crash_recovers name scenario ~victim =
  match Modelcheck.Explorer.check_crash scenario ~victim with
  | Ok crash_points ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: recovered at all %d crash points" name
           crash_points)
        true (crash_points > 0)
  | Error j -> Alcotest.failf "%s: unrecovered at crash point %d" name j

let test_array_crash_recovery () =
  let scenario =
    Modelcheck.Scenario.array_deque ~name:"cr-array" ~length:3 ~prefill:[ 1 ]
      [ [ Pop_right; Push_right 2 ]; [ Pop_left ]; [ Push_left 3 ] ]
  in
  assert_crash_recovers "array, victim 0" scenario ~victim:0;
  assert_crash_recovers "array, victim 1" scenario ~victim:1

let test_list_crash_recovery () =
  let scenario =
    Modelcheck.Scenario.list_deque ~name:"cr-list" ~prefill:[ 1; 2 ]
      [ [ Pop_right; Push_right 3 ]; [ Pop_left ]; [ Push_left 4 ] ]
  in
  assert_crash_recovers "list, victim 0" scenario ~victim:0;
  assert_crash_recovers "list, victim 1" scenario ~victim:1

let test_dummy_crash_recovery () =
  let scenario =
    Modelcheck.Scenario.list_deque_dummy ~name:"cr-dummy" ~prefill:[ 1; 2 ]
      ~setup:[ Pop_right; Pop_left ]
      [ [ Push_right 3 ]; [ Push_left 4 ] ]
  in
  assert_crash_recovers "dummy, victim 0" scenario ~victim:0;
  assert_crash_recovers "dummy, victim 1" scenario ~victim:1

let test_casn_crash_recovery () =
  let scenario =
    Modelcheck.Scenario.list_deque_casn ~name:"cr-casn" ~prefill:[ 1; 2 ]
      [ [ Pop_right; Push_right 3 ]; [ Pop_left ] ]
  in
  assert_crash_recovers "casn, victim 0" scenario ~victim:0;
  assert_crash_recovers "casn, victim 1" scenario ~victim:1

let test_st_crash_recovery () =
  let scenario =
    Modelcheck.Scenario.st_deque ~name:"cr-st" ~prefill:[ 1; 2 ]
      [ [ Pop_right; Push_right 3 ]; [ Pop_left ] ]
  in
  assert_crash_recovers "st, victim 0" scenario ~victim:0;
  assert_crash_recovers "st, victim 1" scenario ~victim:1

(* --- Real domains: stall injection --- *)

(* The lock-free deque over the stall-instrumented memory: a victim
   sleeping mid-operation must not prevent others from completing. *)
module Stalling_mem = Harness.Stall.Mem_stalling (Dcas.Mem_lockfree)
module Stalling_deque = Deque.Array_deque.Make (Stalling_mem)

let test_real_stall_lockfree () =
  let d = Stalling_deque.make ~length:64 () in
  for i = 1 to 8 do
    ignore (Stalling_deque.push_right d i)
  done;
  let others_done = Atomic.make 0 in
  let victim () =
    (* sleep in the middle of a push: after its 2nd shared access *)
    Harness.Stall.request ~after_ops:2 ~duration:0.4;
    ignore (Stalling_deque.push_right d 99)
  in
  let worker () =
    for i = 1 to 3000 do
      ignore (Stalling_deque.push_left d i);
      ignore (Stalling_deque.pop_right d)
    done;
    Atomic.incr others_done
  in
  let t0 = Unix.gettimeofday () in
  let v = Domain.spawn victim in
  let w1 = Domain.spawn worker and w2 = Domain.spawn worker in
  Domain.join w1;
  Domain.join w2;
  let workers_elapsed = Unix.gettimeofday () -. t0 in
  Domain.join v;
  Alcotest.(check int) "both workers completed" 2 (Atomic.get others_done);
  (* the workers must not have waited for the victim's 400ms sleep on
     every operation; generous bound to stay robust on a loaded box *)
  Alcotest.(check bool)
    (Printf.sprintf "workers unimpeded (%.2fs)" workers_elapsed)
    true (workers_elapsed < 30.)

(* The lock-based deque under the same sleep, held inside the critical
   section: workers cannot complete until the victim wakes. *)
let test_real_stall_lock () =
  let d = Baselines.Lock_deque.create ~capacity:64 () in
  ignore (Baselines.Lock_deque.push_right d 1);
  let sleep = 0.3 in
  let worker_latency = ref 0. in
  let started = Atomic.make false in
  let victim () =
    Baselines.Lock_deque.with_lock_held d (fun () ->
        Atomic.set started true;
        Unix.sleepf sleep)
  in
  let worker () =
    while not (Atomic.get started) do
      Domain.cpu_relax ()
    done;
    let t0 = Unix.gettimeofday () in
    ignore (Baselines.Lock_deque.pop_right d);
    worker_latency := Unix.gettimeofday () -. t0
  in
  let v = Domain.spawn victim in
  let w = Domain.spawn worker in
  Domain.join v;
  Domain.join w;
  Alcotest.(check bool)
    (Printf.sprintf "worker blocked ~%.0fms behind the lock holder"
       (!worker_latency *. 1000.))
    true
    (!worker_latency >= sleep *. 0.5)

(* --- E19: empirical lock-freedom under cross-domain freezes --- *)

(* The adversary made executable on real domains: K = threads-1 worker
   domains are frozen at shared-memory access points mid-operation (via
   Stall.Freezer through the instrumented memory, composed with
   Mem_chaos so spurious DCAS failures land on the survivors too), and
   the one surviving domain must keep completing operations — the
   operational content of Theorems 3.1/4.1's non-blocking half.  The
   turn-passing Buggy_spin_deque must fail this test: its survivor
   blocks, and the progress watchdog converts the global stall into a
   diagnostic instead of a hang. *)

module Freeze_chaos = Dcas.Mem_chaos.Make (Dcas.Mem_lockfree)
module Freeze_mem = Harness.Stall.Mem_stalling_casn (Freeze_chaos)
module F_array = Deque.Array_deque.Make (Freeze_mem)
module F_list = Deque.List_deque.Make (Freeze_mem)
module F_dummy = Deque.List_deque_dummy.Make (Freeze_mem)
module F_casn = Deque.List_deque_casn.Make (Freeze_mem)
module F_buggy = Baselines.Buggy_spin_deque.Make (Freeze_mem)

module F_st =
  Baselines.St_deque.Make (Baselines.St_deque.Of_casn (Freeze_mem))

let survivor_ops = 1_000

(* Spawn [threads] workers looping [op]; once everyone has warmed up,
   freeze workers 1..threads-1, then watch whether worker 0 completes
   [survivor_ops] more operations within [time_budget] seconds.
   Returns (survivor progressed?, park events, watchdog stalls). *)
let run_frozen ?watchdog ~threads ~time_budget op =
  Harness.Stall.Freezer.reset ();
  let stop = Atomic.make false in
  let counts = Array.init threads (fun _ -> Atomic.make 0) in
  let master = Harness.Splitmix.create ~seed:0xF0E1 in
  let rngs = Array.init threads (fun _ -> Harness.Splitmix.split master) in
  let worker tid () =
    Harness.Stall.Freezer.enroll ~tid;
    let rng = rngs.(tid) in
    while not (Atomic.get stop) do
      op ~tid ~rng;
      Atomic.incr counts.(tid);
      Option.iter (fun w -> Harness.Watchdog.tick w ~tid) watchdog
    done
  in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  let hard_deadline = Unix.gettimeofday () +. 60. in
  (* warm-up: every worker has completed operations *)
  while
    Array.exists (fun c -> Atomic.get c < 10) counts
    && Unix.gettimeofday () < hard_deadline
  do
    Unix.sleepf 0.002
  done;
  for tid = 1 to threads - 1 do
    Harness.Stall.Freezer.freeze ~tid
  done;
  (* every victim parked at an access point mid-operation *)
  while
    Harness.Stall.Freezer.frozen_now () < threads - 1
    && Unix.gettimeofday () < hard_deadline
  do
    Unix.sleepf 0.002
  done;
  Option.iter Harness.Watchdog.start watchdog;
  let c0 = Atomic.get counts.(0) in
  let target = c0 + survivor_ops in
  let budget_deadline = Unix.gettimeofday () +. time_budget in
  let fired () =
    match watchdog with Some w -> Harness.Watchdog.fired w | None -> false
  in
  while
    Atomic.get counts.(0) < target
    && (not (fired ()))
    && Unix.gettimeofday () < budget_deadline
  do
    Unix.sleepf 0.002
  done;
  let progressed = Atomic.get counts.(0) >= target in
  let parks = Harness.Stall.Freezer.freeze_hits () in
  Harness.Stall.Freezer.thaw_all ();
  Atomic.set stop true;
  List.iter Domain.join domains;
  let stalls =
    match watchdog with Some w -> Harness.Watchdog.stop w | None -> 0
  in
  Harness.Stall.Freezer.reset ();
  (progressed, parks, stalls)

(* A balanced op mix over both ends, from the worker's own stream. *)
let mixed_op ~push_right ~push_left ~pop_right ~pop_left ~tid ~rng =
  match Harness.Splitmix.int rng ~bound:4 with
  | 0 -> ignore (push_right ((tid * 1_000_000) + Harness.Splitmix.int rng ~bound:1000))
  | 1 -> ignore (push_left ((tid * 1_000_000) + Harness.Splitmix.int rng ~bound:1000))
  | 2 -> ignore (pop_right ())
  | _ -> ignore (pop_left ())

let with_chaos f =
  (* spurious DCAS/CASN failures land on survivors and victims alike;
     no chaos delays/freezes — the freezer provides the (unbounded)
     stalls here *)
  Freeze_chaos.configure ~fail_prob:0.1 ~seed:0xF0E2 ();
  Fun.protect ~finally:Freeze_chaos.disarm f

let assert_survives name (progressed, parks, _stalls) ~threads =
  Alcotest.(check bool)
    (Printf.sprintf "%s: survivor completed %d ops with %d domains frozen"
       name survivor_ops (threads - 1))
    true progressed;
  Alcotest.(check bool)
    (Printf.sprintf "%s: victims actually parked (%d park events)" name parks)
    true
    (parks >= threads - 1)

let test_empirical_array () =
  with_chaos (fun () ->
      let d = F_array.make ~length:64 () in
      for i = 1 to 16 do
        ignore (F_array.push_right d i)
      done;
      let threads = 3 in
      run_frozen ~threads ~time_budget:30. (fun ~tid ~rng ->
          mixed_op ~tid ~rng
            ~push_right:(fun v -> F_array.push_right d v)
            ~push_left:(fun v -> F_array.push_left d v)
            ~pop_right:(fun () -> F_array.pop_right d)
            ~pop_left:(fun () -> F_array.pop_left d))
      |> assert_survives "array" ~threads)

let test_empirical_list () =
  with_chaos (fun () ->
      let d = F_list.make () in
      for i = 1 to 16 do
        ignore (F_list.push_right d i)
      done;
      let threads = 3 in
      run_frozen ~threads ~time_budget:30. (fun ~tid ~rng ->
          mixed_op ~tid ~rng
            ~push_right:(fun v -> F_list.push_right d v)
            ~push_left:(fun v -> F_list.push_left d v)
            ~pop_right:(fun () -> F_list.pop_right d)
            ~pop_left:(fun () -> F_list.pop_left d))
      |> assert_survives "list" ~threads)

let test_empirical_dummy () =
  with_chaos (fun () ->
      let d = F_dummy.make () in
      for i = 1 to 16 do
        ignore (F_dummy.push_right d i)
      done;
      let threads = 3 in
      run_frozen ~threads ~time_budget:30. (fun ~tid ~rng ->
          mixed_op ~tid ~rng
            ~push_right:(fun v -> F_dummy.push_right d v)
            ~push_left:(fun v -> F_dummy.push_left d v)
            ~pop_right:(fun () -> F_dummy.pop_right d)
            ~pop_left:(fun () -> F_dummy.pop_left d))
      |> assert_survives "3cas" ~threads)

let test_empirical_casn () =
  with_chaos (fun () ->
      let d = F_casn.make () in
      for i = 1 to 16 do
        ignore (F_casn.push_right d i)
      done;
      let threads = 3 in
      run_frozen ~threads ~time_budget:30. (fun ~tid ~rng ->
          mixed_op ~tid ~rng
            ~push_right:(fun v -> F_casn.push_right d v)
            ~push_left:(fun v -> F_casn.push_left d v)
            ~pop_right:(fun () -> F_casn.pop_right d)
            ~pop_left:(fun () -> F_casn.pop_left d))
      |> assert_survives "3cas" ~threads)

(* The single-word-CAS competitor under the same adversary: a peer
   frozen between the mark and the unlink of a pop leaves a marked
   link the survivor must help past, with spurious CAS failures on
   top. *)
let test_empirical_st () =
  with_chaos (fun () ->
      let d = F_st.make () in
      for i = 1 to 16 do
        ignore (F_st.push_right d i)
      done;
      let threads = 3 in
      run_frozen ~threads ~time_budget:30. (fun ~tid ~rng ->
          mixed_op ~tid ~rng
            ~push_right:(fun v -> F_st.push_right d v)
            ~push_left:(fun v -> F_st.push_left d v)
            ~pop_right:(fun () -> F_st.pop_right d)
            ~pop_left:(fun () -> F_st.pop_left d))
      |> assert_survives "st" ~threads)

(* The planted livelock: freezing any participant of the turn-passing
   deque blocks the survivor, the validator flags it, and the watchdog
   fires a diagnostic snapshot (captured, not printed) instead of the
   test hanging. *)
let test_empirical_buggy_spin () =
  let threads = 3 in
  let d = F_buggy.make ~participants:threads ~capacity:64 () in
  let captured = ref None in
  let watchdog =
    Harness.Watchdog.create ~interval:0.02 ~stall_after:0.4
      ~stats:(fun () -> Freeze_mem.stats ())
      ~on_stall:(fun s -> captured := Some s)
      ~threads ()
  in
  let progressed, _parks, stalls =
    run_frozen ~watchdog ~threads ~time_budget:10. (fun ~tid ~rng ->
        mixed_op ~tid ~rng
          ~push_right:(fun v -> F_buggy.push_right d ~tid v)
          ~push_left:(fun v -> F_buggy.push_left d ~tid v)
          ~pop_right:(fun () -> F_buggy.pop_right d ~tid)
          ~pop_left:(fun () -> F_buggy.pop_left d ~tid))
  in
  Alcotest.(check bool)
    "turn-passing deque blocks when a participant freezes" false progressed;
  Alcotest.(check bool)
    (Printf.sprintf "watchdog fired (%d stall episodes)" stalls)
    true (stalls > 0);
  match !captured with
  | None -> Alcotest.fail "watchdog fired but no snapshot captured"
  | Some s ->
      Alcotest.(check int)
        "snapshot covers all threads" threads
        (Array.length s.Harness.Watchdog.per_thread);
      Alcotest.(check bool)
        "snapshot waited at least the stall threshold" true
        (s.Harness.Watchdog.waited >= 0.4)

let () =
  Alcotest.run "lockfree"
    [
      ( "model checker stall points (E14)",
        [
          Alcotest.test_case "array deque" `Slow test_array_nonblocking;
          Alcotest.test_case "list deque" `Slow test_list_nonblocking;
          Alcotest.test_case "list deque deletions" `Slow
            test_list_nonblocking_deletion_phase;
          Alcotest.test_case "dummy variant" `Slow test_dummy_nonblocking;
          Alcotest.test_case "st deque" `Slow test_st_nonblocking;
        ] );
      ( "model-checked crash recovery",
        [
          Alcotest.test_case "array deque" `Slow test_array_crash_recovery;
          Alcotest.test_case "list deque" `Slow test_list_crash_recovery;
          Alcotest.test_case "dummy variant" `Slow test_dummy_crash_recovery;
          Alcotest.test_case "casn variant" `Slow test_casn_crash_recovery;
          Alcotest.test_case "st deque" `Slow test_st_crash_recovery;
        ] );
      ( "real-domain stalls (E9/E14)",
        [
          Alcotest.test_case "lock-free deque tolerates mid-op sleep" `Slow
            test_real_stall_lockfree;
          Alcotest.test_case "lock deque blocks behind sleeper" `Slow
            test_real_stall_lock;
        ] );
      ( "empirical lock-freedom, threads-1 frozen (E19)",
        [
          Alcotest.test_case "array deque survives" `Slow test_empirical_array;
          Alcotest.test_case "list deque survives" `Slow test_empirical_list;
          Alcotest.test_case "dummy variant survives" `Slow
            test_empirical_dummy;
          Alcotest.test_case "casn variant survives" `Slow test_empirical_casn;
          Alcotest.test_case "st deque survives" `Slow test_empirical_st;
          Alcotest.test_case "turn-passing deque fails, watchdog fires" `Slow
            test_empirical_buggy_spin;
        ] );
    ]

(* Tests for the Sundell–Tsigas single-word-CAS deque baseline: the
   two-phase delete (logical mark, then helped physical unlink), the
   prev-hint correction, and the planted no-helping variant that the
   PCT fuzzer must catch as a starvation (step-limit) violation.

   Sequential semantics run against the Section 2.2 oracle; the
   concurrent windows run exhaustively over the model memory via the
   one-entry-casn shim, so every shared read and CAS of the production
   algorithm text is a scheduling point. *)

open Spec.Op
module St = Baselines.St_deque

let st_impl : Test_support.impl =
  {
    impl_name = St.name;
    bounded = false;
    fresh =
      (fun ~capacity:_ ->
        let d = St.make () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> St.push_right d v)
          ~push_left:(fun v -> St.push_left d v)
          ~pop_right:(fun () -> St.pop_right d)
          ~pop_left:(fun () -> St.pop_left d)
          ~to_list:(Some (fun () -> St.unsafe_to_list d))
          ~invariant:(Some (fun () -> St.check_invariant d)));
  }

let check_inv d =
  match St.check_invariant d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e

(* --- Sequential semantics --- *)

(* The deque passes through its marked/unlinked configurations: a pop
   marks the node's next link and the same thread unlinks it, so every
   quiescent state must already be clean — subsequent operations from
   either end behave exactly like the oracle. *)
let test_sequential_mark_states () =
  let d = St.make () in
  check_inv d;
  Alcotest.(check bool) "popRight empty" true (St.pop_right d = `Empty);
  Alcotest.(check bool) "popLeft empty" true (St.pop_left d = `Empty);
  ignore (St.push_right d 1);
  Alcotest.(check bool) "pop only element from left" true
    (St.pop_left d = `Value 1);
  check_inv d;
  Alcotest.(check bool) "empty again" true (St.pop_right d = `Empty);
  ignore (St.push_left d 2);
  Alcotest.(check bool) "pop only element from right" true
    (St.pop_right d = `Value 2);
  check_inv d;
  (* two elements, one popped from each side *)
  ignore (St.push_right d 3);
  ignore (St.push_right d 4);
  Alcotest.(check bool) "pop right" true (St.pop_right d = `Value 4);
  Alcotest.(check bool) "pop left" true (St.pop_left d = `Value 3);
  check_inv d;
  Alcotest.(check bool) "empty after both" true (St.pop_left d = `Empty);
  (* pushes into the emptied deque from both ends *)
  Alcotest.(check bool) "push right" true (St.push_right d 5 = `Okay);
  Alcotest.(check bool) "push left" true (St.push_left d 6 = `Okay);
  check_inv d;
  Alcotest.(check (list int)) "contents" [ 6; 5 ] (St.unsafe_to_list d)

(* Mixed random single-threaded churn keeps the invariant. *)
let test_churn_invariant () =
  let d = St.make () in
  let rng = Harness.Splitmix.create ~seed:11 in
  for i = 1 to 2000 do
    (match Harness.Splitmix.int rng ~bound:4 with
    | 0 -> ignore (St.push_right d i)
    | 1 -> ignore (St.push_left d i)
    | 2 -> ignore (St.pop_right d)
    | _ -> ignore (St.pop_left d));
    if i mod 50 = 0 then check_inv d
  done;
  check_inv d

(* --- Systematic two-thread interleavings over the model memory ---

   The ST algorithm yields at every shared read and CAS, so only the
   smallest window (two opposite-end pushes into an empty deque,
   303,813 schedules) is exhaustible; the pop windows exceed two
   million schedules because the helping loops multiply the decision
   points.  The fast tier runs a bounded DFS prefix plus random
   sampling; the slow tier (DCAS_SLOW_TESTS=1, the CI configuration)
   exhausts the push window and runs a much deeper DFS on the rest. *)

let fail_of name = function
  | None -> ()
  | Some f -> Alcotest.failf "%s: %s" name f.Modelcheck.Explorer.reason

let explore_bounded name scenario =
  fail_of name
    (Modelcheck.Explorer.explore ~max_schedules:10_000 scenario)
      .Modelcheck.Explorer.error

let explore_full name scenario =
  let outcome = Modelcheck.Explorer.explore scenario in
  fail_of name outcome.Modelcheck.Explorer.error;
  Alcotest.(check bool)
    (name ^ " explored exhaustively")
    true outcome.Modelcheck.Explorer.exhaustive

let explore_deep name scenario =
  fail_of name
    (Modelcheck.Explorer.explore ~max_schedules:200_000 scenario)
      .Modelcheck.Explorer.error

let sample name scenario =
  fail_of name
    (Modelcheck.Explorer.sample ~schedules:2_000 ~seed:42 scenario)
      .Modelcheck.Explorer.error

let one_element_scenarios () =
  (* both pops race to mark the single node's next link; exactly one
     must win it and the loser must observe empty *)
  [
    ( "popL vs popR on one element",
      Modelcheck.Scenario.st_deque ~name:"st-1" ~prefill:[ 1 ]
        [ [ Pop_left ]; [ Pop_right ] ] );
    ( "two left pops on one element",
      Modelcheck.Scenario.st_deque ~name:"st-2" ~prefill:[ 1 ]
        [ [ Pop_left ]; [ Pop_left ] ] );
  ]

let push_pop_scenarios () =
  [
    ( "push into an emptying deque",
      Modelcheck.Scenario.st_deque ~name:"st-3" ~prefill:[ 1 ]
        [ [ Push_left 5 ]; [ Pop_right ] ] );
    ( "opposite-end pushes",
      Modelcheck.Scenario.st_deque ~name:"st-4" ~prefill:[]
        [ [ Push_left 5 ]; [ Push_right 6 ] ] );
    ( "pop chases two pushes",
      Modelcheck.Scenario.st_deque ~name:"st-5" ~prefill:[ 1 ]
        [ [ Push_right 5; Pop_right ]; [ Pop_left ] ] );
    (* a left pop marks the leftmost node while the right pusher's
       correct_prev walk is mid-flight over it *)
    ( "pop under a prev correction",
      Modelcheck.Scenario.st_deque ~name:"st-6" ~prefill:[ 1; 2 ]
        [ [ Pop_left; Pop_left ]; [ Push_right 7 ] ] );
  ]

let test_one_element_mark_race () =
  List.iter (fun (n, s) -> explore_bounded n s) (one_element_scenarios ())

let test_push_pop_races () =
  List.iter
    (fun (n, s) ->
      explore_bounded n s;
      sample n s)
    (push_pop_scenarios ())

(* Chaos-wrapped model memory: seeded spurious CAS failures drive the
   retry and helping paths through every explored schedule. *)
let test_chaos_interleavings () =
  let s =
    Modelcheck.Scenario.st_deque_chaos ~fail_prob:0.2 ~chaos_seed:5
      ~name:"st-chaos" ~prefill:[ 1 ]
      [ [ Pop_left ]; [ Pop_right ] ]
  in
  explore_bounded "one-element race under spurious failures" s;
  sample "one-element race under spurious failures" s

let test_exhaustive_slow_tier () =
  List.iter
    (fun (n, s) ->
      if n = "opposite-end pushes" then explore_full n s else explore_deep n s)
    (one_element_scenarios () @ push_pop_scenarios ())

(* --- The planted bug: helping never physically unlinks --- *)

(* Under a fair (uniform) schedule the marker's own trailing
   correct_prev splice hides the missing help_delete unlink, but a
   PCT priority schedule that starves the marker leaves the spinner
   unable to progress alone: the fuzzer must flag the run as a
   step-limit violation.  The correct deque must survive the very
   same budget. *)
let fuzz_budget scenario =
  Modelcheck.Fuzz.run ~max_steps:2000 ~shrink:false ~runs:500 ~seed:7
    ~strategy:(Modelcheck.Fuzz.Pct 3) scenario

let test_planted_bug_caught () =
  let report =
    fuzz_budget
      (Modelcheck.Scenario.st_deque_buggy ~name:"st-broken" ~prefill:[ 1; 2 ]
         [ [ Pop_left ]; [ Pop_left ] ])
  in
  match report.Modelcheck.Fuzz.violation with
  | None -> Alcotest.fail "pct missed the no-helping livelock in 500 runs"
  | Some c ->
      let reason = c.Modelcheck.Fuzz.failure.Modelcheck.Fuzz.reason in
      Alcotest.(check bool)
        (Printf.sprintf "starvation reported as step limit (got %S)" reason)
        true
        (let sub = "step limit" in
         let n = String.length sub in
         let rec scan i =
           i + n <= String.length reason
           && (String.sub reason i n = sub || scan (i + 1))
         in
         scan 0)

let test_correct_survives_same_budget () =
  let report =
    fuzz_budget
      (Modelcheck.Scenario.st_deque ~name:"st-clean" ~prefill:[ 1; 2 ]
         [ [ Pop_left ]; [ Pop_left ] ])
  in
  match report.Modelcheck.Fuzz.violation with
  | None ->
      Alcotest.(check int) "full budget executed" 500
        report.Modelcheck.Fuzz.executed
  | Some c ->
      Alcotest.failf "false positive: %s (token %s)"
        c.Modelcheck.Fuzz.failure.Modelcheck.Fuzz.reason
        c.Modelcheck.Fuzz.token

let test_uniform_fuzz_clean () =
  let report =
    Modelcheck.Fuzz.run ~max_steps:2000 ~runs:300 ~seed:13
      ~strategy:Modelcheck.Fuzz.Uniform
      (Modelcheck.Scenario.st_deque ~name:"st-u" ~prefill:[ 1; 2 ]
         [ [ Pop_right; Push_right 5 ]; [ Pop_left; Push_left 6 ] ])
  in
  match report.Modelcheck.Fuzz.violation with
  | None -> ()
  | Some c ->
      Alcotest.failf "false positive: %s"
        c.Modelcheck.Fuzz.failure.Modelcheck.Fuzz.reason

(* --- Real domains --- *)

(* Unique-value conservation under a 4-domain mixed workload, plus the
   quiescent invariant and contents partition afterwards. *)
let test_conservation_small () =
  Test_support.stress_conservation st_impl ~threads:4 ~iters:2_000
    ~capacity:64 ()

let test_linearizable_rounds () =
  Test_support.check_linearizable_rounds st_impl ~threads:3 ~ops_per_thread:5
    ~capacity:8 ~rounds:10

let () =
  Alcotest.run "st_deque"
    [
      ( "sequential semantics",
        [
          Alcotest.test_case "mark states" `Quick test_sequential_mark_states;
          Alcotest.test_case "random churn invariant" `Quick
            test_churn_invariant;
          QCheck_alcotest.to_alcotest
            (Test_support.qcheck_sequential st_impl);
        ] );
      ( "model interleavings",
        [
          Alcotest.test_case "one-element mark races" `Quick
            test_one_element_mark_race;
          Alcotest.test_case "push/pop races" `Quick test_push_pop_races;
          Alcotest.test_case "chaos interleavings" `Quick
            test_chaos_interleavings;
          Test_support.tiered "deep DFS over all windows" `Slow
            test_exhaustive_slow_tier;
        ] );
      ( "planted bug (no helping)",
        [
          Alcotest.test_case "pct catches the livelock" `Quick
            test_planted_bug_caught;
          Alcotest.test_case "correct deque survives the budget" `Quick
            test_correct_survives_same_budget;
          Alcotest.test_case "uniform fuzz clean" `Quick
            test_uniform_fuzz_clean;
        ] );
      ( "real domains",
        [
          Alcotest.test_case "conservation, 4 domains" `Quick
            test_conservation_small;
          Alcotest.test_case "linearizable histories" `Quick
            test_linearizable_rounds;
        ] );
    ]

(* Tests for the measurement harness itself: RNG determinism and
   distribution sanity, table rendering, histograms, workload mixes and
   the runner's accounting.  The harness is load-bearing for every
   benchmark number in EXPERIMENTS.md, so it gets its own checks. *)

let test_splitmix_determinism () =
  let a = Harness.Splitmix.create ~seed:123 in
  let b = Harness.Splitmix.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same stream" (Harness.Splitmix.next_int64 a)
      (Harness.Splitmix.next_int64 b)
  done

let test_splitmix_split_independent () =
  let master = Harness.Splitmix.create ~seed:7 in
  let s1 = Harness.Splitmix.split master in
  let s2 = Harness.Splitmix.split master in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Harness.Splitmix.next_int64 s1 = Harness.Splitmix.next_int64 s2 then
      incr same
  done;
  Alcotest.(check int) "split streams differ" 0 !same

let test_splitmix_bounds () =
  let rng = Harness.Splitmix.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Harness.Splitmix.int rng ~bound:7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Splitmix.int: bound must be positive") (fun () ->
      ignore (Harness.Splitmix.int rng ~bound:0))

let test_splitmix_uniformish () =
  let rng = Harness.Splitmix.create ~seed:11 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let v = Harness.Splitmix.int rng ~bound:4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expect = n / 4 in
      if abs (c - expect) > expect / 5 then
        Alcotest.failf "bucket %d skewed: %d vs %d" i c expect)
    counts

let test_table_render () =
  let s =
    Harness.Table.render
      ~headers:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "long-name"; "23" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "5 lines (incl. trailing empty)" 5 (List.length lines);
  (* all non-empty lines are equally wide *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  (match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
  | [] -> Alcotest.fail "no output");
  Alcotest.check_raises "ragged row rejected"
    (Invalid_argument "Table.render: ragged row") (fun () ->
      ignore (Harness.Table.render ~headers:[ "a" ] [ [ "1"; "2" ] ]))

let test_table_formats () =
  Alcotest.(check string) "ops M" "2.50M" (Harness.Table.ops_per_sec 2.5e6);
  Alcotest.(check string) "ops k" "3.0k" (Harness.Table.ops_per_sec 3.0e3);
  Alcotest.(check string) "ns" "750ns" (Harness.Table.ns 750.);
  Alcotest.(check string) "us" "1.50us" (Harness.Table.ns 1500.);
  Alcotest.(check string) "ratio" "2.00x" (Harness.Table.ratio 2.0)

let test_histogram () =
  let h = Harness.Metrics.Histogram.create () in
  List.iter
    (fun ns -> Harness.Metrics.Histogram.add h ~ns)
    [ 100; 100; 100; 100; 100; 100; 100; 100; 100; 10_000 ];
  let mean = Harness.Metrics.Histogram.mean_ns h in
  Alcotest.(check bool) "mean near 1090" true (abs_float (mean -. 1090.) < 1.);
  let p50 = Harness.Metrics.Histogram.quantile_ns h 0.5 in
  Alcotest.(check bool) "p50 bucket covers 100ns" true (p50 <= 256.);
  let p99 = Harness.Metrics.Histogram.quantile_ns h 0.99 in
  Alcotest.(check bool) "p99 bucket covers 10us" true (p99 >= 8192.)

let test_histogram_merge () =
  let a = Harness.Metrics.Histogram.create () in
  let b = Harness.Metrics.Histogram.create () in
  Harness.Metrics.Histogram.add a ~ns:10;
  Harness.Metrics.Histogram.add b ~ns:1000;
  let m = Harness.Metrics.Histogram.merge a b in
  Alcotest.(check bool) "count 2" true (Harness.Metrics.Histogram.mean_ns m = 505.)

let test_workload_mix () =
  let rng = Harness.Splitmix.create ~seed:3 in
  let counts = Hashtbl.create 4 in
  let bump k = Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)) in
  for _ = 1 to 10_000 do
    bump (Harness.Workload.draw Harness.Workload.push_heavy rng)
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  let pushes = get Harness.Workload.Push_right + get Harness.Workload.Push_left in
  let pops = get Harness.Workload.Pop_right + get Harness.Workload.Pop_left in
  Alcotest.(check bool)
    (Printf.sprintf "push-heavy mix skews to pushes (%d vs %d)" pushes pops)
    true
    (pushes > 2 * pops)

let test_workload_right_only () =
  let rng = Harness.Splitmix.create ~seed:4 in
  for _ = 1 to 1_000 do
    match Harness.Workload.draw Harness.Workload.right_only rng with
    | Harness.Workload.Push_right | Harness.Workload.Pop_right -> ()
    | Harness.Workload.Push_left | Harness.Workload.Pop_left ->
        Alcotest.fail "left operation drawn from right_only mix"
  done

let test_runner_counts () =
  let r =
    Harness.Runner.run ~threads:3 ~duration:0.05 (fun ~tid:_ ~rng:_ -> ())
  in
  Alcotest.(check int) "three buckets" 3 (Array.length r.Harness.Runner.per_thread);
  Array.iter
    (fun c -> Alcotest.(check bool) "every thread ran" true (c > 0))
    r.Harness.Runner.per_thread;
  Alcotest.(check bool) "throughput positive" true (Harness.Runner.throughput r > 0.)

let test_runner_fixed () =
  let hits = Array.make 3 0 in
  let _elapsed =
    Harness.Runner.run_fixed ~threads:3 ~iters:1000 (fun ~tid ~rng:_ ~i:_ ->
        hits.(tid) <- hits.(tid) + 1)
  in
  Array.iter (fun c -> Alcotest.(check int) "exact iteration count" 1000 c) hits

(* --- Stall request validation --- *)

let test_stall_validation () =
  List.iter
    (fun f ->
      match f () with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Harness.Stall.request ~after_ops:0 ~duration:0.1);
      (fun () -> Harness.Stall.request ~after_ops:(-3) ~duration:0.1);
      (fun () -> Harness.Stall.request ~after_ops:1 ~duration:(-0.5));
      (fun () -> Harness.Stall.request ~after_ops:1 ~duration:Float.nan);
    ];
  Alcotest.(check bool) "rejected requests leave nothing pending" false
    (Harness.Stall.pending ())

let test_stall_cancel_idempotent () =
  Harness.Stall.cancel ();
  Harness.Stall.cancel ();
  Alcotest.(check bool) "nothing pending" false (Harness.Stall.pending ());
  Harness.Stall.request ~after_ops:1000 ~duration:0.;
  Alcotest.(check bool) "armed" true (Harness.Stall.pending ());
  Harness.Stall.cancel ();
  Alcotest.(check bool) "cancelled" false (Harness.Stall.pending ());
  Harness.Stall.cancel ();
  Alcotest.(check bool) "still cancelled" false (Harness.Stall.pending ())

let test_stall_request_overwrites () =
  (* a second request replaces the first countdown, it does not queue:
     one point () call later the (new) 1-op request fires, and nothing
     remains pending *)
  Harness.Stall.request ~after_ops:1_000_000 ~duration:60.;
  Harness.Stall.request ~after_ops:1 ~duration:0.;
  Harness.Stall.point ();
  Alcotest.(check bool) "single armed slot consumed" false
    (Harness.Stall.pending ())

(* --- Watchdog --- *)

let test_watchdog_validation () =
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Harness.Watchdog.create ~threads:0 ());
      (fun () -> Harness.Watchdog.create ~interval:0. ~threads:1 ());
      (fun () -> Harness.Watchdog.create ~stall_after:(-1.) ~threads:1 ());
    ]

let test_watchdog_quiet_when_progressing () =
  let w =
    Harness.Watchdog.create ~interval:0.01 ~stall_after:0.2
      ~on_stall:(fun _ -> Alcotest.fail "fired despite progress")
      ~threads:1 ()
  in
  Harness.Watchdog.start w;
  for _ = 1 to 20 do
    Harness.Watchdog.tick w ~tid:0;
    Unix.sleepf 0.01
  done;
  Alcotest.(check int) "no stalls" 0 (Harness.Watchdog.stop w);
  Alcotest.(check int) "ticks accounted" 20 (Harness.Watchdog.total w)

let test_watchdog_fires_and_rearms () =
  let snaps = ref [] in
  let w =
    Harness.Watchdog.create ~interval:0.01 ~stall_after:0.05
      ~on_stall:(fun s -> snaps := s :: !snaps)
      ~threads:2 ()
  in
  Harness.Watchdog.note w ~tid:0 "first-stall";
  Harness.Watchdog.start w;
  let wait_for_stalls n =
    let deadline = Unix.gettimeofday () +. 5. in
    while Harness.Watchdog.stalls w < n && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.01
    done
  in
  wait_for_stalls 1;
  Alcotest.(check bool) "fired" true (Harness.Watchdog.fired w);
  (* progress re-arms the detector; a second stall is a new episode *)
  Harness.Watchdog.tick w ~tid:1;
  wait_for_stalls 2;
  Alcotest.(check int) "two episodes" 2 (Harness.Watchdog.stop w);
  match List.rev !snaps with
  | first :: _ ->
      Alcotest.(check bool) "waited at least the threshold" true
        (first.Harness.Watchdog.waited >= 0.05);
      Alcotest.(check int) "two counters" 2
        (Array.length first.Harness.Watchdog.per_thread);
      Alcotest.(check string) "noted op surfaces" "first-stall"
        first.Harness.Watchdog.last_op.(0)
  | [] -> Alcotest.fail "no snapshot captured"

let test_watchdog_double_start_rejected () =
  let w = Harness.Watchdog.create ~threads:1 () in
  Harness.Watchdog.start w;
  Alcotest.(check bool) "second start rejected" true
    (match Harness.Watchdog.start w with
    | () -> false
    | exception Invalid_argument _ -> true);
  ignore (Harness.Watchdog.stop w);
  ignore (Harness.Watchdog.stop w) (* stop is a no-op when not running *)

(* --- Starvation metrics --- *)

let test_starvation () =
  let s = Harness.Metrics.Starvation.of_counts [| 100; 100; 100 |] in
  Alcotest.(check int) "min" 100 s.Harness.Metrics.Starvation.min_ops;
  Alcotest.(check int) "max" 100 s.Harness.Metrics.Starvation.max_ops;
  Alcotest.(check (float 1e-9)) "fair" 0. s.Harness.Metrics.Starvation.imbalance;
  let s = Harness.Metrics.Starvation.of_counts [| 0; 200; 100 |] in
  Alcotest.(check int) "min" 0 s.Harness.Metrics.Starvation.min_ops;
  Alcotest.(check int) "max" 200 s.Harness.Metrics.Starvation.max_ops;
  Alcotest.(check (float 1e-9)) "imbalance (max-min)/mean" 2.
    s.Harness.Metrics.Starvation.imbalance;
  let z = Harness.Metrics.Starvation.of_counts [| 0; 0 |] in
  Alcotest.(check (float 1e-9)) "all-zero counts are fair" 0.
    z.Harness.Metrics.Starvation.imbalance;
  Alcotest.(check bool) "empty rejected" true
    (match Harness.Metrics.Starvation.of_counts [||] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Json: rows from a partially-failed soak cell must always parse --- *)

let test_json_control_chars () =
  (* every control character, DEL included, must escape to something
     the parser reads back byte-for-byte *)
  let raw = Buffer.create 130 in
  for code = 0 to 0x1f do
    Buffer.add_char raw (Char.chr code)
  done;
  Buffer.add_string raw "plain \"quoted\" back\\slash";
  Buffer.add_char raw '\x7f';
  let s = Buffer.contents raw in
  let doc = Harness.Json.Obj [ ("label", Harness.Json.String s) ] in
  let text = Harness.Json.to_string doc in
  String.iter
    (fun c ->
      if Char.code c < 0x20 || Char.code c = 0x7f then
        Alcotest.failf "raw control byte 0x%02x leaked into output"
          (Char.code c))
    text;
  match Harness.Json.(member "label" (of_string text)) with
  | Harness.Json.String s' -> Alcotest.(check string) "round trip" s s'
  | _ -> Alcotest.fail "label did not parse back as a string"

let test_json_nonfinite_floats () =
  let doc =
    Harness.Json.List
      [
        Harness.Json.Float Float.nan;
        Harness.Json.Float Float.infinity;
        Harness.Json.Float Float.neg_infinity;
        Harness.Json.Float 1.5;
      ]
  in
  let text = Harness.Json.to_string doc in
  Alcotest.(check string) "nan/inf emitted as null" "[null,null,null,1.5]"
    text;
  (* and the result still parses *)
  match Harness.Json.of_string text with
  | Harness.Json.List [ Null; Null; Null; Float f ] ->
      Alcotest.(check (float 0.)) "finite float survives" 1.5 f
  | _ -> Alcotest.fail "unexpected parse shape"

(* Property: any byte string survives a full encode/parse round trip
   as an object member, and the encoding never leaks a raw control
   byte (the partially-written labels of a crashed soak cell are
   exactly "any byte string").  QCheck2's string generator covers the
   full char range, including quotes, backslashes, DEL and NUL. *)
let json_string_roundtrip =
  QCheck2.Test.make ~name:"json string round trip" ~count:1000
    ~print:QCheck2.Print.string
    QCheck2.Gen.(string_size ~gen:(char_range '\x00' '\xff') (0 -- 64))
    (fun s ->
      let text =
        Harness.Json.to_string
          (Harness.Json.Obj [ ("s", Harness.Json.String s) ])
      in
      String.iter
        (fun c ->
          if Char.code c < 0x20 || Char.code c = 0x7f then
            QCheck2.Test.fail_reportf "raw control byte 0x%02x in %S"
              (Char.code c) text)
        text;
      match Harness.Json.(member "s" (of_string text)) with
      | Harness.Json.String s' -> String.equal s s'
      | _ -> false)

(* --- Compare: the bench --compare verdict logic --- *)

let compare_schema = "compare-test/1"

let write_doc text =
  let file = Filename.temp_file "bench" ".json" in
  let oc = open_out file in
  output_string oc text;
  close_out oc;
  file

(* One experiment, rows given as (section, domains, ops_per_sec as raw
   JSON text) — raw text so tests can plant null / strings where a
   number belongs. *)
let doc_with rows =
  Printf.sprintf
    {|{"schema":"%s","experiments":[{"id":"e1","rows":[%s]}]}|}
    compare_schema
    (String.concat ","
       (List.map
          (fun (section, domains, ops) ->
            Printf.sprintf
              {|{"section":"%s","domains":%d,"ops_per_sec":%s}|} section
              domains ops)
          rows))

let run_compare ~old_rows ~new_rows =
  let old_file = write_doc (doc_with old_rows) in
  let new_file = write_doc (doc_with new_rows) in
  let v =
    Harness.Compare.run ~schema:compare_schema ~old_file ~new_file ()
  in
  Sys.remove old_file;
  Sys.remove new_file;
  v

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_invalid name substring = function
  | Harness.Compare.Invalid m ->
      if not (contains ~sub:substring m) then
        Alcotest.failf "%s: diagnostic %S lacks %S" name m substring
  | Harness.Compare.Compared _ ->
      Alcotest.failf "%s: expected Invalid, got Compared" name

let test_compare_clean () =
  match
    run_compare
      ~old_rows:
        [ ("soak", 1, "1000.0"); ("shootout", 1, "500.0");
          ("shootout", 2, "400.0") ]
      ~new_rows:
        [ ("soak", 1, "950.0"); ("shootout", 1, "480.0");
          (* non-hot multi-domain rows may swing arbitrarily *)
          ("shootout", 2, "100.0") ]
  with
  | Harness.Compare.Compared { matched; regressions } ->
      Alcotest.(check int) "matched" 3 matched;
      Alcotest.(check int) "no regressions" 0 (List.length regressions)
  | Harness.Compare.Invalid m -> Alcotest.failf "unexpected Invalid: %s" m

let test_compare_regression () =
  match
    run_compare
      ~old_rows:[ ("soak", 1, "1000.0"); ("shootout", 1, "500.0") ]
      ~new_rows:[ ("soak", 1, "700.0"); ("shootout", 1, "490.0") ]
  with
  | Harness.Compare.Compared { matched; regressions } ->
      Alcotest.(check int) "matched" 2 matched;
      Alcotest.(check int) "one regression" 1 (List.length regressions)
  | Harness.Compare.Invalid m -> Alcotest.failf "unexpected Invalid: %s" m

let test_compare_missing_file () =
  let old_file = write_doc (doc_with [ ("soak", 1, "1.0") ]) in
  let v =
    Harness.Compare.run ~schema:compare_schema ~old_file
      ~new_file:"/nonexistent/bench.json" ()
  in
  Sys.remove old_file;
  check_invalid "missing file" "cannot read" v

let test_compare_malformed_json () =
  let old_file = write_doc (doc_with [ ("soak", 1, "1.0") ]) in
  let new_file = write_doc "{\"schema\": oops" in
  let v =
    Harness.Compare.run ~schema:compare_schema ~old_file ~new_file ()
  in
  Sys.remove old_file;
  Sys.remove new_file;
  check_invalid "malformed json" "invalid JSON" v

let test_compare_wrong_schema () =
  let old_file = write_doc (doc_with [ ("soak", 1, "1.0") ]) in
  let new_file = write_doc {|{"schema":"other/9","experiments":[]}|} in
  let v =
    Harness.Compare.run ~schema:compare_schema ~old_file ~new_file ()
  in
  Sys.remove old_file;
  Sys.remove new_file;
  check_invalid "wrong schema" "unexpected schema" v

let test_compare_nan_cell () =
  (* Json.to_string writes NaN as null, so a NaN measurement reaches
     the comparison as a null ops_per_sec in a matched cell *)
  check_invalid "null ops" "ops_per_sec"
    (run_compare
       ~old_rows:[ ("soak", 1, "1000.0") ]
       ~new_rows:[ ("soak", 1, "null") ]);
  check_invalid "string ops" "ops_per_sec"
    (run_compare
       ~old_rows:[ ("soak", 1, "\"fast\"") ]
       ~new_rows:[ ("soak", 1, "1000.0") ]);
  check_invalid "zero baseline" "ops_per_sec"
    (run_compare
       ~old_rows:[ ("soak", 1, "0.0") ]
       ~new_rows:[ ("soak", 1, "1000.0") ])

let test_compare_nothing_matched () =
  check_invalid "disjoint rows" "no comparable rows"
    (run_compare
       ~old_rows:[ ("soak", 1, "1000.0") ]
       ~new_rows:[ ("shootout", 1, "1000.0") ])

let () =
  Alcotest.run "harness"
    [
      ( "splitmix",
        [
          Alcotest.test_case "determinism" `Quick test_splitmix_determinism;
          Alcotest.test_case "split independence" `Quick
            test_splitmix_split_independent;
          Alcotest.test_case "bounds" `Quick test_splitmix_bounds;
          Alcotest.test_case "uniformity" `Quick test_splitmix_uniformish;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        ] );
      ( "workload",
        [
          Alcotest.test_case "mix skew" `Quick test_workload_mix;
          Alcotest.test_case "right-only" `Quick test_workload_right_only;
        ] );
      ( "runner",
        [
          Alcotest.test_case "timed run" `Quick test_runner_counts;
          Alcotest.test_case "fixed run" `Quick test_runner_fixed;
        ] );
      ( "stall",
        [
          Alcotest.test_case "request validation" `Quick test_stall_validation;
          Alcotest.test_case "cancel idempotent" `Quick
            test_stall_cancel_idempotent;
          Alcotest.test_case "request overwrites" `Quick
            test_stall_request_overwrites;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "create validation" `Quick
            test_watchdog_validation;
          Alcotest.test_case "quiet while progressing" `Quick
            test_watchdog_quiet_when_progressing;
          Alcotest.test_case "fires and re-arms" `Quick
            test_watchdog_fires_and_rearms;
          Alcotest.test_case "double start rejected" `Quick
            test_watchdog_double_start_rejected;
        ] );
      ( "starvation",
        [ Alcotest.test_case "imbalance" `Quick test_starvation ] );
      ( "json",
        [
          Alcotest.test_case "control characters escaped" `Quick
            test_json_control_chars;
          Alcotest.test_case "nan/inf encode as null" `Quick
            test_json_nonfinite_floats;
          QCheck_alcotest.to_alcotest json_string_roundtrip;
        ] );
      ( "compare",
        [
          Alcotest.test_case "clean compare" `Quick test_compare_clean;
          Alcotest.test_case "hot-path regression flagged" `Quick
            test_compare_regression;
          Alcotest.test_case "missing file is invalid" `Quick
            test_compare_missing_file;
          Alcotest.test_case "malformed json is invalid" `Quick
            test_compare_malformed_json;
          Alcotest.test_case "wrong schema is invalid" `Quick
            test_compare_wrong_schema;
          Alcotest.test_case "corrupt ops_per_sec is invalid" `Quick
            test_compare_nan_cell;
          Alcotest.test_case "nothing matched is invalid" `Quick
            test_compare_nothing_matched;
        ] );
    ]

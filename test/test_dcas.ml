(* Tests for the DCAS memory models: Figure 1 semantics sequentially on
   every model, and atomicity under real concurrency — the pair-ness of
   DCAS is exactly what a broken emulation loses first, so the
   concurrent tests revolve around invariants that relate the two
   locations of each DCAS. *)

module type MEM = Dcas.Memory_intf.MEMORY

let models : (module MEM) list =
  [
    (module Dcas.Mem_lockfree);
    (module Dcas.Mem_lock);
    (module Dcas.Mem_striped);
    (module Dcas.Mem_seq);
  ]

let concurrent_models : (module MEM) list =
  [ (module Dcas.Mem_lockfree); (module Dcas.Mem_lock); (module Dcas.Mem_striped) ]

(* --- Sequential Figure 1 semantics --- *)

let seq_tests (module M : MEM) =
  let name tag = M.name ^ ": " ^ tag in
  [
    Alcotest.test_case (name "get/set roundtrip") `Quick (fun () ->
        let l = M.make 1 in
        Alcotest.(check int) "initial" 1 (M.get l);
        M.set l 42;
        Alcotest.(check int) "after set" 42 (M.get l);
        M.set_private l 7;
        Alcotest.(check int) "after set_private" 7 (M.get l));
    Alcotest.test_case (name "dcas success updates both") `Quick (fun () ->
        let a = M.make 1 and b = M.make 2 in
        Alcotest.(check bool) "succeeds" true (M.dcas a b 1 2 10 20);
        Alcotest.(check int) "a" 10 (M.get a);
        Alcotest.(check int) "b" 20 (M.get b));
    Alcotest.test_case (name "dcas failure updates neither") `Quick (fun () ->
        let a = M.make 1 and b = M.make 2 in
        Alcotest.(check bool) "first mismatch" false (M.dcas a b 9 2 10 20);
        Alcotest.(check bool) "second mismatch" false (M.dcas a b 1 9 10 20);
        Alcotest.(check bool) "both mismatch" false (M.dcas a b 9 9 10 20);
        Alcotest.(check int) "a unchanged" 1 (M.get a);
        Alcotest.(check int) "b unchanged" 2 (M.get b));
    Alcotest.test_case (name "dcas across types") `Quick (fun () ->
        let a = M.make 5 and b = M.make "x" in
        Alcotest.(check bool) "succeeds" true (M.dcas a b 5 "x" 6 "y");
        Alcotest.(check int) "a" 6 (M.get a);
        Alcotest.(check string) "b" "y" (M.get b));
    Alcotest.test_case (name "same location rejected") `Quick (fun () ->
        let a = M.make 1 in
        match M.dcas a a 1 1 2 2 with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case (name "strong form returns view on failure") `Quick
      (fun () ->
        let a = M.make 1 and b = M.make 2 in
        let ok, v1, v2 = M.dcas_strong a b 5 5 0 0 in
        Alcotest.(check bool) "failed" false ok;
        Alcotest.(check int) "saw a" 1 v1;
        Alcotest.(check int) "saw b" 2 v2;
        let ok, v1, v2 = M.dcas_strong a b 1 2 10 20 in
        Alcotest.(check bool) "succeeded" true ok;
        Alcotest.(check int) "old a" 1 v1;
        Alcotest.(check int) "old b" 2 v2;
        Alcotest.(check int) "new a" 10 (M.get a));
    Alcotest.test_case (name "custom equality") `Quick (fun () ->
        (* physical-equality cells: structurally equal but physically
           distinct expected values must NOT match *)
        let x = ref 1 in
        let l = M.make ~equal:( == ) x in
        let other = M.make 0 in
        Alcotest.(check bool) "match on same block" true
          (M.dcas l other x 0 x 1);
        let x' = ref 1 in
        Alcotest.(check bool) "no match on copy" false (M.dcas l other x' 1 x' 2));
    Alcotest.test_case (name "stats count dcas") `Quick (fun () ->
        M.reset_stats ();
        let a = M.make 1 and b = M.make 2 in
        ignore (M.dcas a b 1 2 3 4);
        ignore (M.dcas a b 1 2 3 4);
        let s = M.stats () in
        Alcotest.(check bool) "attempts >= 2" true (s.dcas_attempts >= 2);
        Alcotest.(check bool) "successes >= 1" true (s.dcas_successes >= 1);
        Alcotest.(check bool) "failures happened" true
          (s.dcas_attempts > s.dcas_successes));
    Alcotest.test_case (name "padded locations behave identically") `Quick
      (fun () ->
        let a = M.make_padded 1 and b = M.make_padded 2 in
        Alcotest.(check bool) "dcas" true (M.dcas a b 1 2 10 20);
        Alcotest.(check int) "a" 10 (M.get a);
        Alcotest.(check int) "b" 20 (M.get b);
        M.set a 5;
        Alcotest.(check int) "set" 5 (M.get a);
        let x = ref 1 in
        let l = M.make_padded ~equal:( == ) x in
        let o = M.make_padded 0 in
        Alcotest.(check bool) "custom equality respected" true
          (M.dcas l o x 0 x 1);
        let x' = ref 1 in
        Alcotest.(check bool) "copy rejected" false (M.dcas l o x' 1 x' 2));
  ]

(* --- Concurrency: conservation under transfer --- *)

(* Threads move credits between two accounts with DCAS; the total is
   conserved iff each DCAS is atomic. *)
let transfer_test (module M : MEM) () =
  let a = M.make 1000 and b = M.make 1000 in
  let iters = 20_000 in
  let worker seed () =
    let rng = Harness.Splitmix.create ~seed in
    for _ = 1 to iters do
      let amount = 1 + Harness.Splitmix.int rng ~bound:5 in
      let flip = Harness.Splitmix.bool rng in
      let rec attempt () =
        let va = M.get a and vb = M.get b in
        let ok =
          if flip then M.dcas a b va vb (va - amount) (vb + amount)
          else M.dcas a b va vb (va + amount) (vb - amount)
        in
        if not ok then attempt ()
      in
      attempt ()
    done
  in
  let ds = List.init 4 (fun i -> Domain.spawn (worker (i * 7 + 1))) in
  List.iter Domain.join ds;
  Alcotest.(check int) "total conserved" 2000 (M.get a + M.get b)

(* Writers keep the two locations equal with paired DCAS increments;
   concurrent snapshots (the strong form's failing view and the no-op
   DCAS) must never observe them unequal. *)
let snapshot_test (module M : MEM) () =
  let a = M.make 0 and b = M.make 0 in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let writer () =
    while not (Atomic.get stop) do
      let rec attempt () =
        let va = M.get a and vb = M.get b in
        if not (M.dcas a b va vb (va + 1) (vb + 1)) then attempt ()
      in
      attempt ()
    done
  in
  let reader () =
    for _ = 1 to 20_000 do
      (* a no-op DCAS that succeeds certifies an atomic view *)
      let rec snap () =
        let va = M.get a and vb = M.get b in
        if M.dcas a b va vb va vb then (va, vb) else snap ()
      in
      let va, vb = snap () in
      if va <> vb then Atomic.incr violations
    done
  in
  let w1 = Domain.spawn writer and w2 = Domain.spawn writer in
  let r = Domain.spawn reader in
  Domain.join r;
  Atomic.set stop true;
  Domain.join w1;
  Domain.join w2;
  Alcotest.(check int) "no unequal snapshots" 0 (Atomic.get violations);
  Alcotest.(check int) "locations still equal" (M.get a) (M.get b)

(* strong-form views taken under contention are atomic pairs *)
let strong_view_test (module M : MEM) () =
  let a = M.make 0 and b = M.make 0 in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let writer () =
    while not (Atomic.get stop) do
      let rec attempt () =
        let va = M.get a and vb = M.get b in
        if not (M.dcas a b va vb (va + 1) (vb + 1)) then attempt ()
      in
      attempt ()
    done
  in
  let reader () =
    for _ = 1 to 10_000 do
      (* expected values never match (negative), so this always fails
         and must return an atomic view *)
      let ok, va, vb = M.dcas_strong a b (-1) (-1) 0 0 in
      if ok || va <> vb then Atomic.incr violations
    done
  in
  let w = Domain.spawn writer in
  let r = Domain.spawn reader in
  Domain.join r;
  Atomic.set stop true;
  Domain.join w;
  Alcotest.(check int) "atomic failing views" 0 (Atomic.get violations)

(* slow tier: multi-domain cases SKIP unless DCAS_SLOW_TESTS=1 *)
let concurrent_tests (module M : MEM) =
  [
    Test_support.tiered
      (M.name ^ ": transfer conservation")
      `Slow
      (transfer_test (module M));
    Test_support.tiered (M.name ^ ": snapshot equality") `Slow
      (snapshot_test (module M));
    Test_support.tiered
      (M.name ^ ": strong failing view")
      `Slow
      (strong_view_test (module M));
  ]

(* --- CASN (lock-free model only) --- *)

let casn_tests =
  let module M = Dcas.Mem_lockfree in
  [
    Alcotest.test_case "casn: 3-way swap" `Quick (fun () ->
        let a = M.make 1 and b = M.make 2 and c = M.make 3 in
        let ok = M.casn [ M.Cass (a, 1, 10); M.Cass (b, 2, 20); M.Cass (c, 3, 30) ] in
        Alcotest.(check bool) "succeeds" true ok;
        Alcotest.(check (list int)) "values" [ 10; 20; 30 ]
          [ M.get a; M.get b; M.get c ]);
    Alcotest.test_case "casn: partial mismatch changes nothing" `Quick (fun () ->
        let a = M.make 1 and b = M.make 2 and c = M.make 3 in
        let ok = M.casn [ M.Cass (a, 1, 10); M.Cass (b, 99, 20); M.Cass (c, 3, 30) ] in
        Alcotest.(check bool) "fails" false ok;
        Alcotest.(check (list int)) "unchanged" [ 1; 2; 3 ]
          [ M.get a; M.get b; M.get c ]);
    Alcotest.test_case "casn: empty succeeds" `Quick (fun () ->
        Alcotest.(check bool) "trivial" true (M.casn []));
    Alcotest.test_case "casn: duplicate locations rejected" `Quick (fun () ->
        let a = M.make 1 in
        match M.casn [ M.Cass (a, 1, 2); M.Cass (a, 1, 3) ] with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    Test_support.tiered "casn: concurrent conservation" `Slow (fun () ->
        (* four counters, transfers across a random pair via casn *)
        let locs = Array.init 4 (fun _ -> M.make 100) in
        let worker seed () =
          let rng = Harness.Splitmix.create ~seed in
          for _ = 1 to 10_000 do
            let i = Harness.Splitmix.int rng ~bound:4 in
            let j = (i + 1 + Harness.Splitmix.int rng ~bound:3) mod 4 in
            let rec attempt () =
              let vi = M.get locs.(i) and vj = M.get locs.(j) in
              if
                not
                  (M.casn
                     [ M.Cass (locs.(i), vi, vi - 1); M.Cass (locs.(j), vj, vj + 1) ])
              then attempt ()
            in
            attempt ()
          done
        in
        let ds = List.init 4 (fun i -> Domain.spawn (worker (i + 11))) in
        List.iter Domain.join ds;
        let total = Array.fold_left (fun acc l -> acc + M.get l) 0 locs in
        Alcotest.(check int) "conserved" 400 total);
  ]

(* --- qcheck: casn against its sequential semantics --- *)

(* A random batch of (index, expected, new) entries over 5 locations,
   applied via casn and via a reference fold: outcome and final state
   must agree. *)
let casn_matches_reference =
  let gen =
    QCheck2.Gen.(
      pair
        (array_size (return 5) (int_bound 9))
        (list_size (1 -- 5)
           (triple (int_bound 4) (int_bound 9) (int_bound 9))))
  in
  let print (init, entries) =
    Printf.sprintf "init=[%s] entries=[%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int init)))
      (String.concat ";"
         (List.map (fun (i, o, n) -> Printf.sprintf "(%d,%d,%d)" i o n) entries))
  in
  QCheck2.Test.make ~name:"casn agrees with sequential reference" ~count:500
    ~print gen (fun (init, entries) ->
      let module M = Dcas.Mem_lockfree in
      (* drop duplicate indices: casn rejects them by contract *)
      let entries =
        List.fold_left
          (fun acc ((i, _, _) as e) ->
            if List.exists (fun (j, _, _) -> j = i) acc then acc else e :: acc)
          [] entries
        |> List.rev
      in
      let locs = Array.map (fun v -> M.make v) init in
      let reference = Array.copy init in
      let expect_ok =
        List.for_all (fun (i, o, _) -> reference.(i) = o) entries
      in
      if expect_ok then
        List.iter (fun (i, _, n) -> reference.(i) <- n) entries;
      let ok = M.casn (List.map (fun (i, o, n) -> M.Cass (locs.(i), o, n)) entries) in
      ok = expect_ok
      && Array.for_all2 (fun l v -> M.get l = v) locs reference)

(* --- the pre-validation fast path (Mem_lockfree) --- *)

(* A DCAS whose expected values are already stale must fail from two
   plain reads: no descriptor allocated, no [Owned] placeholder ever
   installed, the locations untouched.  These tests pin each piece of
   that contract. *)
let fastpath_tests =
  let module M = Dcas.Mem_lockfree in
  [
    Alcotest.test_case "fast-fail: counted exactly" `Quick (fun () ->
        let a = M.make 0 and b = M.make 0 in
        M.reset_stats ();
        ignore (M.dcas a b 1 1 2 2);
        let s = M.stats () in
        Alcotest.(check int) "one attempt" 1 s.dcas_attempts;
        Alcotest.(check int) "one fast-fail" 1 s.dcas_fastfails;
        Alcotest.(check int) "no success" 0 s.dcas_successes;
        (* second-location staleness takes the same early exit *)
        ignore (M.dcas a b 0 1 2 2);
        Alcotest.(check int) "two fast-fails" 2 (M.stats ()).dcas_fastfails);
    Alcotest.test_case "fast-fail: allocation-free" `Quick (fun () ->
        let a = M.make 0 and b = M.make 0 in
        (* warm-up: first call initializes this domain's stats bucket *)
        ignore (M.dcas a b 1 1 2 2);
        (* [Gc.minor_words] itself boxes its float result, so a single
           delta cannot be zero; instead the delta must not grow with
           the iteration count, which proves the per-call cost is 0. *)
        let delta n =
          let before = Gc.minor_words () in
          for _ = 1 to n do
            ignore (M.dcas a b 1 1 2 2)
          done;
          Gc.minor_words () -. before
        in
        let d_small = delta 10 in
        let d_large = delta 10_000 in
        Alcotest.(check (float 0.)) "delta independent of iterations" d_small
          d_large);
    Alcotest.test_case "fast-fail: leaves no residue" `Quick (fun () ->
        let a = M.make 10 and b = M.make 20 in
        for _ = 1 to 100 do
          ignore (M.dcas a b 99 99 0 0)
        done;
        Alcotest.(check int) "a unchanged" 10 (M.get a);
        Alcotest.(check int) "b unchanged" 20 (M.get b);
        (* no Owned left behind: a correct DCAS must still succeed, and
           the strong form must report the plain values *)
        let ok, va, vb = M.dcas_strong a b 10 20 11 21 in
        Alcotest.(check bool) "clean success afterwards" true ok;
        Alcotest.(check int) "saw a" 10 va;
        Alcotest.(check int) "saw b" 20 vb);
    Alcotest.test_case "casn: stale entry fast-fails without mutation" `Quick
      (fun () ->
        let a = M.make 1 and b = M.make 2 and c = M.make 3 in
        M.reset_stats ();
        let ok =
          M.casn [ M.Cass (a, 1, 10); M.Cass (b, 99, 20); M.Cass (c, 3, 30) ]
        in
        Alcotest.(check bool) "fails" false ok;
        let s = M.stats () in
        Alcotest.(check int) "fast-failed" 1 s.dcas_fastfails;
        Alcotest.(check (list int)) "unchanged" [ 1; 2; 3 ]
          [ M.get a; M.get b; M.get c ]);
  ]

(* qcheck: a doomed DCAS on the lock-free model must be observationally
   identical to one on the sequential reference — same verdict, same
   final values, at every step of a random operation sequence. *)
let fastfail_matches_reference =
  let gen =
    QCheck2.Gen.(
      pair
        (pair (int_bound 4) (int_bound 4))
        (list_size (1 -- 20)
           (pair (pair (int_bound 4) (int_bound 4))
              (pair (int_bound 4) (int_bound 4)))))
  in
  let print ((i1, i2), ops) =
    Printf.sprintf "init=(%d,%d) ops=[%s]" i1 i2
      (String.concat ";"
         (List.map
            (fun ((o1, o2), (n1, n2)) ->
              Printf.sprintf "(%d,%d)->(%d,%d)" o1 o2 n1 n2)
            ops))
  in
  QCheck2.Test.make
    ~name:"dcas (incl. fast-fail) agrees with sequential reference" ~count:500
    ~print gen (fun ((i1, i2), ops) ->
      let module L = Dcas.Mem_lockfree in
      let module S = Dcas.Mem_seq in
      let la = L.make i1 and lb = L.make i2 in
      let sa = S.make i1 and sb = S.make i2 in
      List.for_all
        (fun ((o1, o2), (n1, n2)) ->
          let lr = L.dcas la lb o1 o2 n1 n2 in
          let sr = S.dcas sa sb o1 o2 n1 n2 in
          lr = sr && L.get la = S.get sa && L.get lb = S.get sb)
        ops)

(* qcheck: Mem_striped agrees with Mem_seq on arbitrary single-threaded
   op sequences (set / dcas over five locations).  The striped model's
   only behavioral risk is lock-ordering over the hashed stripes, so
   the generator biases toward dcas pairs that collide and retries in
   both orders. *)
let striped_matches_seq =
  let gen =
    QCheck2.Gen.(
      pair
        (array_size (return 5) (int_bound 9))
        (list_size (1 -- 40)
           (frequency
              [
                (1, map2 (fun i v -> `Set (i, v)) (int_bound 4) (int_bound 9));
                ( 4,
                  map2
                    (fun ((i, dj), (o1, o2)) (n1, n2) ->
                      `Dcas (i, (i + 1 + dj) mod 5, o1, o2, n1, n2))
                    (pair
                       (pair (int_bound 4) (int_bound 3))
                       (pair (int_bound 9) (int_bound 9)))
                    (pair (int_bound 9) (int_bound 9)) );
              ])))
  in
  let print (init, ops) =
    Printf.sprintf "init=[%s] ops=[%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int init)))
      (String.concat ";"
         (List.map
            (function
              | `Set (i, v) -> Printf.sprintf "set(%d,%d)" i v
              | `Dcas (i, j, o1, o2, n1, n2) ->
                  Printf.sprintf "dcas(%d,%d:%d,%d->%d,%d)" i j o1 o2 n1 n2)
            ops))
  in
  QCheck2.Test.make
    ~name:"striped model agrees with sequential reference" ~count:500 ~print
    gen (fun (init, ops) ->
      let module T = Dcas.Mem_striped in
      let module S = Dcas.Mem_seq in
      let ts = Array.map (fun v -> T.make v) init in
      let ss = Array.map (fun v -> S.make v) init in
      let agree () =
        Array.for_all2 (fun t s -> T.get t = S.get s) ts ss
      in
      List.for_all
        (fun op ->
          (match op with
          | `Set (i, v) ->
              T.set ts.(i) v;
              S.set ss.(i) v;
              true
          | `Dcas (i, j, o1, o2, n1, n2) ->
              let tr = T.dcas ts.(i) ts.(j) o1 o2 n1 n2 in
              let sr = S.dcas ss.(i) ss.(j) o1 o2 n1 n2 in
              let tok, tv1, tv2 = T.dcas_strong ts.(i) ts.(j) o1 o2 n1 n2 in
              let sok, sv1, sv2 = S.dcas_strong ss.(i) ss.(j) o1 o2 n1 n2 in
              tr = sr && tok = sok && tv1 = sv1 && tv2 = sv2)
          && agree ())
        ops)

(* --- the specialized two-location descriptor (Dcas2) --- *)

(* Run [f] with the Dcas2 specialization forced to [flag], restoring
   the default afterwards (the knob is global). *)
let with_dcas2 flag f =
  Dcas.Mem_lockfree.set_dcas2_enabled flag;
  Fun.protect ~finally:(fun () -> Dcas.Mem_lockfree.set_dcas2_enabled true) f

let dcas2_tests =
  let module M = Dcas.Mem_lockfree in
  [
    Alcotest.test_case "dcas2: hits counted on the two-location path" `Quick
      (fun () ->
        with_dcas2 true (fun () ->
            let a = M.make 1 and b = M.make 2 in
            M.reset_stats ();
            Alcotest.(check bool) "succeeds" true (M.dcas a b 1 2 10 20);
            let s = M.stats () in
            Alcotest.(check int) "one dcas2 hit" 1 s.dcas2_hits;
            Alcotest.(check int) "one descriptor" 1 s.descriptor_allocs));
    Alcotest.test_case "dcas2: ablation routes to generic descriptors" `Quick
      (fun () ->
        with_dcas2 false (fun () ->
            let a = M.make 1 and b = M.make 2 in
            M.reset_stats ();
            Alcotest.(check bool) "succeeds" true (M.dcas a b 1 2 10 20);
            let s = M.stats () in
            Alcotest.(check int) "no dcas2 hits" 0 s.dcas2_hits;
            Alcotest.(check int) "still one descriptor" 1 s.descriptor_allocs));
    Alcotest.test_case "dcas2: 2-entry casn takes the specialized path" `Quick
      (fun () ->
        with_dcas2 true (fun () ->
            let a = M.make 1 and b = M.make 2 and c = M.make 3 in
            M.reset_stats ();
            Alcotest.(check bool) "2-entry succeeds" true
              (M.casn [ M.Cass (b, 2, 20); M.Cass (a, 1, 10) ]);
            Alcotest.(check int) "specialized" 1 (M.stats ()).dcas2_hits;
            Alcotest.(check bool) "3-entry succeeds" true
              (M.casn
                 [ M.Cass (a, 10, 11); M.Cass (b, 20, 21); M.Cass (c, 3, 30) ]);
            Alcotest.(check int) "3-entry stays generic" 1
              (M.stats ()).dcas2_hits));
    Alcotest.test_case "dcas2: value elision on no-op confirms" `Quick
      (fun () ->
        (* a successful no-op DCAS leaves both logical values unchanged,
           so the release phase may reinstall the original Value blocks:
           value_allocs stays zero with the specialization on, and is
           2 per op with it off *)
        let confirms n flag =
          with_dcas2 flag (fun () ->
              let a = M.make 7 and b = M.make 8 in
              M.reset_stats ();
              for _ = 1 to n do
                Alcotest.(check bool) "confirm" true (M.dcas a b 7 8 7 8)
              done;
              M.stats ())
        in
        let s_on = confirms 50 true and s_off = confirms 50 false in
        Alcotest.(check int) "elided entirely" 0 s_on.value_allocs;
        Alcotest.(check int) "generic allocates two per op" 100
          s_off.value_allocs);
    Alcotest.test_case "dcas2: elision reduces minor allocation" `Quick
      (fun () ->
        let words flag =
          with_dcas2 flag (fun () ->
              let a = M.make 7 and b = M.make 8 in
              ignore (M.dcas a b 7 8 7 8);
              let before = Gc.minor_words () in
              for _ = 1 to 10_000 do
                ignore (M.dcas a b 7 8 7 8)
              done;
              Gc.minor_words () -. before)
        in
        let w_on = words true and w_off = words false in
        Alcotest.(check bool)
          (Printf.sprintf "%.0f < %.0f minor words" w_on w_off)
          true (w_on < w_off));
    Alcotest.test_case "dcas2: both modes agree with the reference" `Quick
      (fun () ->
        (* the same mixed op sequence — successful, failing, no-op and
           cross-type DCASes plus 2-entry CASNs — must be observationally
           identical on Mem_seq and on Mem_lockfree in either mode *)
        let module S = Dcas.Mem_seq in
        List.iter
          (fun flag ->
            with_dcas2 flag (fun () ->
                let la = M.make 0 and lb = M.make 100 in
                let sa = S.make 0 and sb = S.make 100 in
                let rng = Harness.Splitmix.create ~seed:(Bool.to_int flag) in
                for _ = 1 to 2_000 do
                  let o1 = Harness.Splitmix.int rng ~bound:4 in
                  let o2 = 100 + Harness.Splitmix.int rng ~bound:4 in
                  let n1 = Harness.Splitmix.int rng ~bound:4 in
                  let n2 = 100 + Harness.Splitmix.int rng ~bound:4 in
                  let lr, sr =
                    if Harness.Splitmix.bool rng then
                      ( M.casn [ M.Cass (la, o1, n1); M.Cass (lb, o2, n2) ],
                        S.casn [ S.Cass (sa, o1, n1); S.Cass (sb, o2, n2) ] )
                    else (M.dcas la lb o1 o2 n1 n2, S.dcas sa sb o1 o2 n1 n2)
                  in
                  Alcotest.(check bool) "verdicts agree" sr lr;
                  Alcotest.(check int) "a agrees" (S.get sa) (M.get la);
                  Alcotest.(check int) "b agrees" (S.get sb) (M.get lb)
                done))
          [ true; false ]);
    Test_support.tiered "dcas2: concurrent conservation in both modes" `Slow
      (fun () ->
        List.iter
          (fun flag -> with_dcas2 flag (transfer_test (module M)))
          [ true; false ]);
  ]

(* --- stats record completeness --- *)

(* [to_counts] fully destructures the record (field omission is a
   compile error via warning 9), and everything else — merge, reset,
   snapshot — is built on [to_counts]/[of_counts].  These tests pin the
   runtime half: conversions are mutually inverse and no field is
   silently dropped by merge or export. *)
let stats_completeness_tests =
  let module I = Dcas.Memory_intf in
  let counted = Array.init I.stats_fields (fun i -> (i + 1) * 3) in
  [
    Alcotest.test_case "stats: of_counts/to_counts round-trip" `Quick
      (fun () ->
        Alcotest.(check (array int))
          "round-trip" counted
          (I.to_counts (I.of_counts counted));
        Alcotest.check_raises "arity mismatch rejected"
          (Invalid_argument "Memory_intf.of_counts: wrong arity")
          (fun () -> ignore (I.of_counts (Array.make (I.stats_fields - 1) 0))));
    Alcotest.test_case "stats: add_stats covers every field" `Quick (fun () ->
        let a = I.of_counts counted in
        let doubled = I.add_stats a a in
        Alcotest.(check (array int))
          "every field doubled"
          (Array.map (fun c -> 2 * c) counted)
          (I.to_counts doubled);
        Alcotest.(check (array int))
          "empty is the identity" counted
          (I.to_counts (I.add_stats a I.empty_stats)));
    Alcotest.test_case "stats: assoc export covers every field" `Quick
      (fun () ->
        let assoc = I.stats_to_assoc (I.of_counts counted) in
        Alcotest.(check int) "one entry per field" I.stats_fields
          (List.length assoc);
        let names = List.map fst assoc in
        Alcotest.(check int)
          "names distinct" I.stats_fields
          (List.length (List.sort_uniq compare names));
        Alcotest.(check (list int))
          "values in field order" (Array.to_list counted)
          (List.map snd assoc));
  ]

(* --- per-domain stats plumbing --- *)

let opstats_tests =
  [
    Alcotest.test_case "opstats: multi-domain aggregation is exact" `Quick
      (fun () ->
        let module M = Dcas.Mem_lockfree in
        M.reset_stats ();
        let domains = 4 and per_domain = 5_000 in
        let ds =
          List.init domains (fun i ->
              Domain.spawn (fun () ->
                  (* private locations: every dcas is a deterministic
                     fast-fail, so the expected counts are exact *)
                  let a = M.make (2 * i) and b = M.make ((2 * i) + 1) in
                  for _ = 1 to per_domain do
                    ignore (M.dcas a b (-1) (-1) 0 0)
                  done))
        in
        List.iter Domain.join ds;
        let s = M.stats () in
        Alcotest.(check int) "attempts summed across domains"
          (domains * per_domain) s.dcas_attempts;
        Alcotest.(check int) "fast-fails summed across domains"
          (domains * per_domain) s.dcas_fastfails;
        Alcotest.(check int) "no successes" 0 s.dcas_successes);
    Alcotest.test_case "opstats: reset races with incrementers" `Quick
      (fun () ->
        let module M = Dcas.Mem_lockfree in
        let stop = Atomic.make false in
        let ds =
          List.init 3 (fun i ->
              Domain.spawn (fun () ->
                  let a = M.make (100 + (2 * i)) and b = M.make (101 + (2 * i)) in
                  while not (Atomic.get stop) do
                    ignore (M.dcas a b (-1) (-1) 0 0)
                  done))
        in
        (* hammer reset/snapshot while the incrementers run; the test
           is that nothing crashes, no count goes negative, and a final
           quiescent reset really zeroes every domain's bucket *)
        for _ = 1 to 200 do
          M.reset_stats ();
          let s = M.stats () in
          Alcotest.(check bool) "attempts non-negative" true
            (s.dcas_attempts >= 0)
        done;
        Atomic.set stop true;
        List.iter Domain.join ds;
        M.reset_stats ();
        let s = M.stats () in
        Alcotest.(check int) "attempts zero after quiescent reset" 0
          s.dcas_attempts;
        Alcotest.(check int) "fast-fails zero after quiescent reset" 0
          s.dcas_fastfails);
  ]

(* --- substrate odds and ends --- *)

let misc_tests =
  [
    Alcotest.test_case "backoff: parameter validation" `Quick (fun () ->
        Alcotest.check_raises "min_wait 0"
          (Invalid_argument "Backoff.create: need 1 <= min_wait <= max_wait")
          (fun () -> ignore (Dcas.Backoff.create ~min_wait:0 ()));
        Alcotest.check_raises "max < min"
          (Invalid_argument "Backoff.create: need 1 <= min_wait <= max_wait")
          (fun () -> ignore (Dcas.Backoff.create ~min_wait:8 ~max_wait:4 ())));
    Alcotest.test_case "backoff: once/reset terminate" `Quick (fun () ->
        let b = Dcas.Backoff.create ~min_wait:1 ~max_wait:4 () in
        for _ = 1 to 20 do
          Dcas.Backoff.once b
        done;
        Dcas.Backoff.reset b;
        Dcas.Backoff.once b);
    Alcotest.test_case "backoff: defaults are exposed and valid" `Quick
      (fun () ->
        Alcotest.(check bool) "1 <= min <= max" true
          (1 <= Dcas.Backoff.default_min_wait
          && Dcas.Backoff.default_min_wait <= Dcas.Backoff.default_max_wait);
        ignore
          (Dcas.Backoff.create ~min_wait:Dcas.Backoff.default_min_wait
             ~max_wait:Dcas.Backoff.default_max_wait ()));
    Alcotest.test_case "backoff: degenerate bounds terminate" `Quick (fun () ->
        (* min = max leaves a zero-width random range; each [once] must
           still return (the rng draw has bound 1) *)
        let b = Dcas.Backoff.create ~min_wait:3 ~max_wait:3 () in
        for _ = 1 to 50 do
          Dcas.Backoff.once b
        done;
        let b1 = Dcas.Backoff.create ~min_wait:1 ~max_wait:1 () in
        for _ = 1 to 50 do
          Dcas.Backoff.once b1
        done);
    Alcotest.test_case "id: strictly increasing" `Quick (fun () ->
        let a = Dcas.Id.next () in
        let b = Dcas.Id.next () in
        Alcotest.(check bool) "a < b" true (a < b));
    Alcotest.test_case "opstats: reset zeroes counters" `Quick (fun () ->
        let module M = Dcas.Mem_seq in
        M.reset_stats ();
        let l = M.make 0 in
        ignore (M.get l);
        M.set l 1;
        Alcotest.(check bool) "counted" true ((M.stats ()).reads >= 1);
        M.reset_stats ();
        let s = M.stats () in
        Alcotest.(check int) "reads zero" 0 s.reads;
        Alcotest.(check int) "writes zero" 0 s.writes);
    QCheck_alcotest.to_alcotest casn_matches_reference;
    QCheck_alcotest.to_alcotest fastfail_matches_reference;
    QCheck_alcotest.to_alcotest striped_matches_seq;
  ]

let () =
  Alcotest.run "dcas"
    [
      ("figure-1-semantics", List.concat_map seq_tests models);
      ("concurrent-atomicity", List.concat_map concurrent_tests concurrent_models);
      ("casn", casn_tests);
      ("fast-path", fastpath_tests);
      ("dcas2", dcas2_tests);
      ("stats-completeness", stats_completeness_tests);
      ("opstats", opstats_tests);
      ("substrate", misc_tests);
    ]

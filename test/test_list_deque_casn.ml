(* Tests for the 3CAS deque extension (experiment E17): sequential
   equivalence on every substrate, exhaustive model checks, stress
   conservation, linearizability of recorded histories — and a
   demonstration that the pop's third (validation) CASN entry is
   load-bearing: the same algorithm with a 2-entry CASN corrupts the
   list under an interleaving the explorer finds. *)

open Spec.Op

let impl_of (module L : Deque.List_deque_casn.ALGORITHM) : Test_support.impl =
  {
    impl_name = L.name;
    bounded = false;
    fresh =
      (fun ~capacity:_ ->
        let d = L.make () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> L.push_right d v)
          ~push_left:(fun v -> L.push_left d v)
          ~pop_right:(fun () -> L.pop_right d)
          ~pop_left:(fun () -> L.pop_left d)
          ~to_list:(Some (fun () -> L.unsafe_to_list d))
          ~invariant:(Some (fun () -> L.check_invariant d)));
  }

let algorithms : (module Deque.List_deque_casn.ALGORITHM) list =
  [
    (module Deque.List_deque_casn.Lockfree);
    (module Deque.List_deque_casn.Locked);
    (module Deque.List_deque_casn.Striped);
    (module Deque.List_deque_casn.Sequential);
  ]

let qcheck_tests =
  List.map
    (fun (module M : Deque.List_deque_casn.ALGORITHM) ->
      QCheck_alcotest.to_alcotest
        (Test_support.qcheck_sequential (impl_of (module M))))
    algorithms

let assert_ok name outcome =
  match outcome.Modelcheck.Explorer.error with
  | None ->
      Alcotest.(check bool) (name ^ " exhaustive") true
        outcome.Modelcheck.Explorer.exhaustive
  | Some f ->
      Alcotest.failf "%s: %s@.%s" name f.Modelcheck.Explorer.reason
        f.Modelcheck.Explorer.pretty_history

let modelcheck_tests =
  let case name prefill threads =
    Alcotest.test_case name `Slow (fun () ->
        assert_ok name
          (Modelcheck.Explorer.explore
             (Modelcheck.Scenario.list_deque_casn ~name ~prefill threads)))
  in
  [
    case "pop/pop 1 node" [ 42 ] [ [ Pop_right ]; [ Pop_left ] ];
    case "pop/pop 2 nodes (validation race)" [ 1; 2 ]
      [ [ Pop_right ]; [ Pop_left ] ];
    case "pop/pop 3 nodes" [ 1; 2; 3 ] [ [ Pop_right ]; [ Pop_left ] ];
    case "push/push empty" [] [ [ Push_right 1 ]; [ Push_left 2 ] ];
    case "pop vs push 1 node" [ 5 ] [ [ Pop_right ]; [ Push_left 6 ] ];
    case "three threads" [ 1; 2 ]
      [ [ Pop_right ]; [ Pop_left ]; [ Push_right 9 ] ];
    case "pop+push vs pop" [ 1; 2 ] [ [ Pop_right; Push_right 3 ]; [ Pop_left ] ];
  ]

let nonblocking_test =
  Alcotest.test_case "lock-freedom stall points" `Slow (fun () ->
      let s =
        Modelcheck.Scenario.list_deque_casn ~name:"nb" ~prefill:[ 1; 2 ]
          [ [ Pop_right; Push_right 3 ]; [ Pop_left ]; [ Push_left 4 ] ]
      in
      match Modelcheck.Explorer.check_nonblocking s ~victim:0 with
      | Ok n -> Alcotest.(check bool) "stall points > 0" true (n > 0)
      | Error j -> Alcotest.failf "blocked at stall point %d" j)

(* --- The validation entry is necessary --- *)

(* The same pop, with the third CASN entry removed.  Under the
   schedule "popLeft splices the left neighbor between popRight's reads
   and its CASN", the two remaining expectations still hold (a
   spliced-out node's outgoing pointers never change), the CASN
   succeeds, and the right sentinel ends up pointing at a node outside
   the chain — caught here as an invariant violation or a
   non-linearizable history. *)
module Broken = struct
  module M = Modelcheck.Mem_model
  module Full = Deque.List_deque_casn.Make (M)

  type 'a cell = SentL | SentR | Item of 'a

  type 'a node = {
    left : 'a node_ref M.loc;
    right : 'a node_ref M.loc;
    value : 'a cell;
  }

  and 'a node_ref = Nil | Node of 'a node

  type 'a t = { sl : 'a node; sr : 'a node }

  let node_ref_equal a b =
    match (a, b) with
    | Nil, Nil -> true
    | Node x, Node y -> x == y
    | (Nil | Node _), _ -> false

  let new_node value =
    {
      left = M.make ~equal:node_ref_equal Nil;
      right = M.make ~equal:node_ref_equal Nil;
      value;
    }

  let node_of = function Node n -> n | Nil -> assert false

  let make () =
    let sl = new_node SentL and sr = new_node SentR in
    M.set_private sl.right (Node sr);
    M.set_private sr.left (Node sl);
    { sl; sr }

  let pop_right t =
    let rec loop () =
      let old_l = M.get t.sr.left in
      let target = node_of old_l in
      match target.value with
      | SentL -> `Empty
      | SentR -> assert false
      | Item v ->
          let ll = M.get target.left in
          if
            M.casn
              [
                M.Cass (t.sr.left, old_l, ll);
                M.Cass ((node_of ll).right, old_l, Node t.sr);
                (* validation entry deliberately OMITTED *)
              ]
          then `Value v
          else loop ()
    in
    loop ()

  let pop_left t =
    let rec loop () =
      let old_r = M.get t.sl.right in
      let target = node_of old_r in
      match target.value with
      | SentR -> `Empty
      | SentL -> assert false
      | Item v ->
          let rr = M.get target.right in
          if
            M.casn
              [
                M.Cass (t.sl.right, old_r, rr);
                M.Cass ((node_of rr).left, old_r, Node t.sl);
              ]
          then `Value v
          else loop ()
    in
    loop ()

  let push_right t v =
    let nn = new_node (Item v) in
    let rec loop () =
      let old_l = M.get t.sr.left in
      let target = node_of old_l in
      M.set_private nn.right (Node t.sr);
      M.set_private nn.left old_l;
      if
        M.casn
          [
            M.Cass (t.sr.left, old_l, Node nn);
            M.Cass (target.right, Node t.sr, Node nn);
          ]
      then `Okay
      else loop ()
    in
    loop ()

  let unsafe_to_list t =
    let max_nodes = 100 in
    let rec walk node acc n =
      if n > max_nodes then acc
      else
        match node.value with
        | SentR -> List.rev acc
        | SentL -> walk (node_of (M.get node.right)) acc (n + 1)
        | Item v -> walk (node_of (M.get node.right)) (v :: acc) (n + 1)
    in
    walk (node_of (M.get t.sl.right)) [] 0

  (* minimal invariant: SR's inward neighbor must be reachable from SL *)
  let check_invariant t =
    let max_nodes = 100 in
    let rec reach node n acc =
      if n > max_nodes then acc
      else if node == t.sr then t.sr :: acc
      else reach (node_of (M.get node.right)) (n + 1) (node :: acc)
    in
    let chain = reach t.sl 0 [] in
    let sr_l = node_of (M.get t.sr.left) in
    if List.memq sr_l chain then Ok ()
    else Error "SR->L points outside the chain"

  let scenario : Modelcheck.Scenario.t =
    {
      Modelcheck.Scenario.name = "broken-2cas";
      capacity = None;
      initial = [ 1; 2 ];
      threads =
        [| [ Spec.Op.Pop_right; Spec.Op.Push_right 3 ]; [ Spec.Op.Pop_left ] |];
      instantiate =
        (fun () ->
          let d = make () in
          assert (push_right d 1 = `Okay);
          assert (push_right d 2 = `Okay);
          {
            Modelcheck.Scenario.apply =
              (fun op ->
                match op with
                | Spec.Op.Push_right v ->
                    Deque.Deque_intf.res_of_push (push_right d v)
                | Spec.Op.Pop_right ->
                    Deque.Deque_intf.res_of_pop (pop_right d)
                | Spec.Op.Pop_left -> Deque.Deque_intf.res_of_pop (pop_left d)
                | Spec.Op.Push_left _ -> Spec.Op.Full (* unused here *));
            invariant = Some (fun () -> check_invariant d);
            dump =
              Some
                (fun () ->
                  unsafe_to_list d |> List.map string_of_int
                  |> String.concat ",");
          });
    }
end

let test_validation_entry_necessary () =
  (* the broken 2-entry variant must fail... *)
  let broken = Modelcheck.Explorer.explore Broken.scenario in
  (match broken.Modelcheck.Explorer.error with
  | Some _ -> ()
  | None ->
      Alcotest.fail
        "expected the 2-entry pop to corrupt the list under some schedule");
  (* ...while the full 3-entry algorithm passes the same scenario *)
  let sound =
    Modelcheck.Scenario.list_deque_casn ~name:"sound" ~prefill:[ 1; 2 ]
      [ [ Pop_right; Push_right 3 ]; [ Pop_left ] ]
  in
  match (Modelcheck.Explorer.explore sound).Modelcheck.Explorer.error with
  | None -> ()
  | Some f ->
      Alcotest.failf "3-entry algorithm failed: %s" f.Modelcheck.Explorer.reason

(* --- Stress and recorded histories --- *)

let stress_test =
  Alcotest.test_case "4-thread conservation" `Slow (fun () ->
      Test_support.stress_conservation
        (impl_of (module Deque.List_deque_casn.Lockfree))
        ~threads:4 ~iters:8_000 ~capacity:64 ())

let lin_test =
  Alcotest.test_case "recorded histories linearizable" `Slow (fun () ->
      Test_support.check_linearizable_rounds
        (impl_of (module Deque.List_deque_casn.Lockfree))
        ~threads:3 ~ops_per_thread:8 ~capacity:4 ~rounds:40)

let () =
  Alcotest.run "list_deque_casn"
    [
      ("oracle equivalence", qcheck_tests);
      ("model checks", nonblocking_test :: modelcheck_tests);
      ( "validation entry",
        [
          Alcotest.test_case "2-entry CASN is unsound (3rd entry needed)"
            `Slow test_validation_entry_necessary;
        ] );
      ("concurrency", [ stress_test; lin_test ]);
    ]

(* Tests for the array-based deque of Section 3 — experiment E1's
   correctness side: boundary cases (empty/full), index wraparound and
   L/R crossing (Figures 4, 7, 8), the hints ablation, and sequential
   equivalence with the oracle on every memory model. *)

open Spec

let impl_of ?(hints = true) (module A : Deque.Array_deque.ALGORITHM) :
    Test_support.impl =
  {
    impl_name = A.name ^ (if hints then "" else "(no-hints)");
    bounded = true;
    fresh =
      (fun ~capacity ->
        let d = A.make ~hints ~length:capacity () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> A.push_right d v)
          ~push_left:(fun v -> A.push_left d v)
          ~pop_right:(fun () -> A.pop_right d)
          ~pop_left:(fun () -> A.pop_left d)
          ~to_list:(Some (fun () -> A.unsafe_to_list d))
          ~invariant:(Some (fun () -> A.check_invariant d)));
  }

let algorithms : (module Deque.Array_deque.ALGORITHM) list =
  [
    (module Deque.Array_deque.Lockfree);
    (module Deque.Array_deque.Locked);
    (module Deque.Array_deque.Striped);
    (module Deque.Array_deque.Sequential);
  ]

(* Work with the Sequential instantiation for the deterministic
   scenario tests; the algorithm text is identical on every model. *)
module A = Deque.Array_deque.Sequential

let check_inv d =
  match A.check_invariant d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e

(* E1: fill to full from the right, drain from the left (FIFO through
   the whole capacity, forcing wraparound of both indices). *)
let test_fill_right_drain_left () =
  let n = 7 in
  let d = A.make ~length:n () in
  for v = 1 to n do
    Alcotest.(check bool) "push okay" true (A.push_right d v = `Okay);
    check_inv d
  done;
  Alcotest.(check bool) "full" true (A.push_right d 99 = `Full);
  Alcotest.(check bool) "full from left too" true (A.push_left d 99 = `Full);
  for v = 1 to n do
    match A.pop_left d with
    | `Value got -> Alcotest.(check int) "FIFO order" v got
    | `Empty -> Alcotest.fail "unexpected empty"
  done;
  Alcotest.(check bool) "empty" true (A.pop_left d = `Empty);
  Alcotest.(check bool) "empty right" true (A.pop_right d = `Empty);
  check_inv d

(* Figure 8's sequence: fill to almost-full, then a left push and a
   right push produce the full state with L and R crossed. *)
let test_figure8_crossing () =
  let n = 6 in
  let d = A.make ~length:n () in
  (* rotate so the segment wraps: push and pop a few times first *)
  for v = 1 to 4 do
    ignore (A.push_right d v)
  done;
  for _ = 1 to 3 do
    ignore (A.pop_left d)
  done;
  (* deque now holds [4] somewhere in the middle *)
  for v = 10 to 12 do
    Alcotest.(check bool) "refill" true (A.push_right d v = `Okay)
  done;
  check_inv d;
  Alcotest.(check bool) "left push into last-but-one" true
    (A.push_left d 100 = `Okay);
  Alcotest.(check bool) "right push fills" true (A.push_right d 200 = `Okay);
  Alcotest.(check bool) "now full" true (A.push_right d 0 = `Full);
  Alcotest.(check bool) "now full (left)" true (A.push_left d 0 = `Full);
  check_inv d;
  Alcotest.(check (list int)) "contents ordered"
    [ 100; 4; 10; 11; 12; 200 ]
    (A.unsafe_to_list d)

(* Many wraparound cycles keep the invariant and FIFO order. *)
let test_wraparound_cycles () =
  let n = 5 in
  let d = A.make ~length:n () in
  let next_in = ref 0 and next_out = ref 0 in
  for _ = 1 to 1000 do
    (match A.push_right d !next_in with
    | `Okay -> incr next_in
    | `Full -> ());
    match A.pop_left d with
    | `Value v ->
        Alcotest.(check int) "FIFO across wraps" !next_out v;
        incr next_out
    | `Empty -> ()
  done;
  check_inv d

(* LIFO usage from each end. *)
let test_lifo_both_ends () =
  let d = A.make ~length:8 () in
  List.iter (fun v -> ignore (A.push_right d v)) [ 1; 2; 3 ];
  Alcotest.(check bool) "pop 3" true (A.pop_right d = `Value 3);
  Alcotest.(check bool) "pop 2" true (A.pop_right d = `Value 2);
  List.iter (fun v -> ignore (A.push_left d v)) [ 10; 20 ];
  Alcotest.(check bool) "pop 20" true (A.pop_left d = `Value 20);
  Alcotest.(check bool) "pop 10" true (A.pop_left d = `Value 10);
  Alcotest.(check bool) "pop 1" true (A.pop_left d = `Value 1);
  Alcotest.(check bool) "empty" true (A.pop_left d = `Empty)

(* A deque of length 1 behaves like a single slot. *)
let test_length_one () =
  let d = A.make ~length:1 () in
  Alcotest.(check bool) "empty" true (A.pop_right d = `Empty);
  Alcotest.(check bool) "push" true (A.push_right d 5 = `Okay);
  Alcotest.(check bool) "full" true (A.push_left d 6 = `Full);
  Alcotest.(check bool) "pop left gets it" true (A.pop_left d = `Value 5);
  Alcotest.(check bool) "empty again" true (A.pop_left d = `Empty);
  check_inv d

let test_invalid_length () =
  Alcotest.check_raises "length 0"
    (Invalid_argument "Array_deque.make: length must be >= 1") (fun () ->
      ignore (A.make ~length:0 ()))

(* The no-hints variant (weak DCAS only) has identical sequential
   semantics. *)
let test_hints_equivalence () =
  let ops =
    let rng = Harness.Splitmix.create ~seed:99 in
    List.init 500 (fun i ->
        match Harness.Splitmix.int rng ~bound:4 with
        | 0 -> Op.Push_right i
        | 1 -> Op.Push_left i
        | 2 -> Op.Pop_right
        | _ -> Op.Pop_left)
  in
  let run hints =
    let d = A.make ~hints ~length:5 () in
    List.map
      (fun op ->
        match op with
        | Op.Push_right v -> Deque.Deque_intf.res_of_push (A.push_right d v)
        | Op.Push_left v -> Deque.Deque_intf.res_of_push (A.push_left d v)
        | Op.Pop_right -> Deque.Deque_intf.res_of_pop (A.pop_right d)
        | Op.Pop_left -> Deque.Deque_intf.res_of_pop (A.pop_left d))
      ops
  in
  Alcotest.(check bool) "hint and no-hint runs agree" true (run true = run false)

(* --- batched entry points (push_many/pop_many) --- *)

(* The batched ops promise exactly the semantics of folding the single
   ops — same accepted prefix, same popped values, same final state —
   with the whole batch committed at one linearization point.  The
   reference below is that fold, run on a second instance. *)
let ref_push_many push d vs =
  let rec go n = function
    | [] -> n
    | v :: tl -> ( match push d v with `Okay -> go (n + 1) tl | `Full -> n)
  in
  go 0 vs

let ref_pop_many pop d k =
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match pop d with
      | `Value v -> go (v :: acc) (k - 1)
      | `Empty -> List.rev acc
  in
  go [] k

let test_batched_basics () =
  let d = A.make ~length:5 () in
  Alcotest.(check int) "empty batch accepted trivially" 0
    (A.push_many_right d []);
  Alcotest.(check (list int)) "pop 0 is empty" [] (A.pop_many_left d 0);
  Alcotest.(check int) "whole batch fits" 3 (A.push_many_right d [ 1; 2; 3 ]);
  check_inv d;
  Alcotest.(check int) "prefix accepted at full" 2
    (A.push_many_right d [ 4; 5; 6 ]);
  check_inv d;
  Alcotest.(check int) "full: nothing accepted" 0 (A.push_many_right d [ 7 ]);
  Alcotest.(check int) "full from the left too" 0 (A.push_many_left d [ 7 ]);
  Alcotest.(check (list int)) "pop order is left-to-right" [ 1; 2 ]
    (A.pop_many_left d 2);
  check_inv d;
  Alcotest.(check (list int)) "right pops in pop order" [ 5; 4 ]
    (A.pop_many_right d 2);
  Alcotest.(check (list int)) "truncated at empty" [ 3 ] (A.pop_many_left d 9);
  Alcotest.(check (list int)) "empty deque pops nothing" []
    (A.pop_many_left d 1);
  check_inv d

let test_batched_left_mirror () =
  let d = A.make ~length:4 () in
  Alcotest.(check int) "left batch accepted" 3 (A.push_many_left d [ 1; 2; 3 ]);
  check_inv d;
  (* successive left pushes stack leftwards: contents are 3,2,1 *)
  Alcotest.(check (list int)) "contents" [ 3; 2; 1 ] (A.unsafe_to_list d);
  Alcotest.(check (list int)) "right end sees 1 then 2" [ 1; 2 ]
    (A.pop_many_right d 2);
  check_inv d

let test_batched_length_one () =
  let d = A.make ~length:1 () in
  Alcotest.(check int) "one of two fits" 1 (A.push_many_right d [ 8; 9 ]);
  Alcotest.(check int) "full" 0 (A.push_many_left d [ 1 ]);
  Alcotest.(check (list int)) "drain" [ 8 ] (A.pop_many_left d 5);
  Alcotest.(check (list int)) "empty" [] (A.pop_many_right d 1);
  check_inv d

let test_batched_wraparound () =
  let d = A.make ~length:5 () in
  (* rotate the occupied segment so batches cross the array seam *)
  for cycle = 1 to 20 do
    Alcotest.(check int)
      (Printf.sprintf "cycle %d push" cycle)
      3
      (A.push_many_right d [ cycle; cycle + 100; cycle + 200 ]);
    check_inv d;
    Alcotest.(check (list int))
      (Printf.sprintf "cycle %d pop" cycle)
      [ cycle; cycle + 100; cycle + 200 ]
      (A.pop_many_left d 3);
    check_inv d
  done

(* qcheck: a random mixed sequence of batched ops agrees step-for-step
   with the fold of single ops on a second instance, and the run
   conserves the multiset of values: prefill + accepted pushes =
   popped + final contents. *)
let qcheck_batched_matches_fold =
  let gen =
    QCheck2.Gen.(
      pair (1 -- 6)
        (list_size (1 -- 40)
           (oneof
              [
                map (fun vs -> `Push_r vs) (list_size (0 -- 7) (int_bound 99));
                map (fun vs -> `Push_l vs) (list_size (0 -- 7) (int_bound 99));
                map (fun k -> `Pop_r k) (0 -- 7);
                map (fun k -> `Pop_l k) (0 -- 7);
              ])))
  in
  let print (cap, ops) =
    let vs l = String.concat "," (List.map string_of_int l) in
    Printf.sprintf "cap=%d ops=[%s]" cap
      (String.concat ";"
         (List.map
            (function
              | `Push_r l -> Printf.sprintf "pushR[%s]" (vs l)
              | `Push_l l -> Printf.sprintf "pushL[%s]" (vs l)
              | `Pop_r k -> Printf.sprintf "popR:%d" k
              | `Pop_l k -> Printf.sprintf "popL:%d" k)
            ops))
  in
  QCheck2.Test.make ~name:"batched ops agree with fold of singles + conserve"
    ~count:300 ~print gen (fun (cap, ops) ->
      let d = A.make ~length:cap () in
      let r = A.make ~length:cap () in
      let pushed = ref [] and popped = ref [] in
      let take n l = List.filteri (fun i _ -> i < n) l in
      let step_ok =
        List.for_all
          (fun op ->
            let ok =
              match op with
              | `Push_r vs ->
                  let n = A.push_many_right d vs in
                  pushed := take n vs @ !pushed;
                  n = ref_push_many A.push_right r vs
              | `Push_l vs ->
                  let n = A.push_many_left d vs in
                  pushed := take n vs @ !pushed;
                  n = ref_push_many A.push_left r vs
              | `Pop_r k ->
                  let got = A.pop_many_right d k in
                  popped := got @ !popped;
                  got = ref_pop_many A.pop_right r k
              | `Pop_l k ->
                  let got = A.pop_many_left d k in
                  popped := got @ !popped;
                  got = ref_pop_many A.pop_left r k
            in
            ok
            && A.unsafe_to_list d = A.unsafe_to_list r
            && A.check_invariant d = Ok ())
          ops
      in
      let sorted l = List.sort compare l in
      step_ok
      && sorted !pushed = sorted (!popped @ A.unsafe_to_list d))

(* The batched ops on the production (lock-free) instantiation under
   real memory: same fold-of-singles agreement, exercising the Dcas2
   2-entry specialization (k=1) and wider CASN descriptors alike. *)
let test_batched_lockfree_agrees () =
  let module L = Deque.Array_deque.Lockfree in
  let d = L.make ~length:5 () in
  let r = A.make ~length:5 () in
  let rng = Harness.Splitmix.create ~seed:4242 in
  for i = 1 to 400 do
    let k = Harness.Splitmix.int rng ~bound:4 in
    let vs = List.init k (fun j -> (10 * i) + j) in
    let agree =
      match Harness.Splitmix.int rng ~bound:4 with
      | 0 -> L.push_many_right d vs = ref_push_many A.push_right r vs
      | 1 -> L.push_many_left d vs = ref_push_many A.push_left r vs
      | 2 -> L.pop_many_right d k = ref_pop_many A.pop_right r k
      | _ -> L.pop_many_left d k = ref_pop_many A.pop_left r k
    in
    Alcotest.(check bool) (Printf.sprintf "step %d agrees" i) true agree;
    Alcotest.(check (list int))
      (Printf.sprintf "step %d state" i)
      (A.unsafe_to_list r) (L.unsafe_to_list d)
  done

let qcheck_tests =
  List.concat_map
    (fun (module M : Deque.Array_deque.ALGORITHM) ->
      [
        QCheck_alcotest.to_alcotest
          (Test_support.qcheck_sequential (impl_of (module M)));
        QCheck_alcotest.to_alcotest
          (Test_support.qcheck_sequential ~count:100
             (impl_of ~hints:false (module M)));
      ])
    algorithms

(* capacity-1 qcheck: the degenerate boundary case *)
let qcheck_capacity_one =
  QCheck_alcotest.to_alcotest
    (Test_support.qcheck_sequential ~capacity:1 ~count:100
       (impl_of (module Deque.Array_deque.Sequential)))

let () =
  Alcotest.run "array_deque"
    [
      ( "boundaries (E1)",
        [
          Alcotest.test_case "fill right / drain left" `Quick
            test_fill_right_drain_left;
          Alcotest.test_case "figure 8 crossing" `Quick test_figure8_crossing;
          Alcotest.test_case "wraparound cycles" `Quick test_wraparound_cycles;
          Alcotest.test_case "lifo both ends" `Quick test_lifo_both_ends;
          Alcotest.test_case "length one" `Quick test_length_one;
          Alcotest.test_case "invalid length" `Quick test_invalid_length;
          Alcotest.test_case "hints ablation equivalence" `Quick
            test_hints_equivalence;
        ] );
      ( "batched ops",
        [
          Alcotest.test_case "basics and boundaries" `Quick test_batched_basics;
          Alcotest.test_case "left mirror" `Quick test_batched_left_mirror;
          Alcotest.test_case "length one" `Quick test_batched_length_one;
          Alcotest.test_case "wraparound" `Quick test_batched_wraparound;
          Alcotest.test_case "lock-free instantiation agrees" `Quick
            test_batched_lockfree_agrees;
          QCheck_alcotest.to_alcotest qcheck_batched_matches_fold;
        ] );
      ("oracle equivalence", qcheck_capacity_one :: qcheck_tests);
    ]

(* The fault-injecting memory wrapper: disarmed it must be a pure
   pass-through; armed it must fail DCAS/CASN spuriously (and only
   those), stall deterministically from the configured seed, and
   account every injected fault in the stats.  The multi-domain case —
   a correct deque surviving heavy injected faults — is in the slow
   tier. *)

module C = Dcas.Mem_chaos.Make (Dcas.Mem_seq)

(* Each test arms its own configuration; start and end disarmed so the
   module-level state never leaks between tests. *)
let with_config configure f =
  configure ();
  Fun.protect ~finally:C.disarm f

let basic_tests =
  [
    Alcotest.test_case "disarmed: pure pass-through" `Quick (fun () ->
        C.disarm ();
        Alcotest.(check bool) "not armed" false (C.armed ());
        C.reset_stats ();
        let a = C.make 1 and b = C.make 2 in
        Alcotest.(check bool) "dcas works" true (C.dcas a b 1 2 10 20);
        Alcotest.(check int) "a" 10 (C.get a);
        Alcotest.(check bool) "casn works" true
          (C.casn [ C.Cass (a, 10, 11); C.Cass (b, 20, 21) ]);
        let s = C.stats () in
        Alcotest.(check int) "no spurious failures" 0 s.chaos_spurious;
        Alcotest.(check int) "no delays" 0 s.chaos_delays;
        Alcotest.(check int) "no freezes" 0 s.chaos_freezes);
    Alcotest.test_case "configure: validation" `Quick (fun () ->
        List.iter
          (fun f -> (
             match f () with
             | _ -> Alcotest.fail "expected Invalid_argument"
             | exception Invalid_argument _ -> ()))
          [
            (fun () -> C.configure ~fail_prob:(-0.1) ~seed:1 ());
            (fun () -> C.configure ~fail_prob:1.5 ~seed:1 ());
            (fun () -> C.configure ~delay_prob:2.0 ~seed:1 ());
            (fun () -> C.configure ~freeze_prob:(-1.0) ~seed:1 ());
            (fun () -> C.configure ~delay_prob:0.5 ~max_delay:0 ~seed:1 ());
            (fun () -> C.configure ~freeze_prob:0.5 ~freeze_spins:0 ~seed:1 ());
          ]);
    Alcotest.test_case "certain spurious failure leaves memory untouched"
      `Quick (fun () ->
        with_config (fun () -> C.configure ~fail_prob:1.0 ~seed:7 ()) (fun () ->
            C.reset_stats ();
            let a = C.make 1 and b = C.make 2 in
            for _ = 1 to 50 do
              Alcotest.(check bool) "dcas always fails" false
                (C.dcas a b 1 2 10 20);
              Alcotest.(check bool) "casn always fails" false
                (C.casn [ C.Cass (a, 1, 10); C.Cass (b, 2, 20) ])
            done;
            Alcotest.(check int) "a untouched" 1 (C.get a);
            Alcotest.(check int) "b untouched" 2 (C.get b);
            let s = C.stats () in
            Alcotest.(check int) "every failure accounted" 100 s.chaos_spurious;
            Alcotest.(check bool) "attempts include spurious" true
              (s.dcas_attempts >= 100));
        (* disarmed again: the very same dcas now succeeds *)
        let a = C.make 1 and b = C.make 2 in
        Alcotest.(check bool) "recovers after disarm" true
          (C.dcas a b 1 2 10 20));
    Alcotest.test_case "dcas_strong is exempt from spurious failures" `Quick
      (fun () ->
        with_config (fun () -> C.configure ~fail_prob:1.0 ~seed:7 ()) (fun () ->
            let a = C.make 1 and b = C.make 2 in
            let ok, v1, v2 = C.dcas_strong a b 1 2 10 20 in
            Alcotest.(check bool) "succeeds despite fail_prob=1" true ok;
            Alcotest.(check int) "old a" 1 v1;
            Alcotest.(check int) "old b" 2 v2;
            (* a genuine failure still returns the differing view *)
            let ok, v1, _ = C.dcas_strong a b 99 99 0 0 in
            Alcotest.(check bool) "real mismatch still fails" false ok;
            Alcotest.(check int) "true view" 10 v1));
    Alcotest.test_case "set_private never faulted" `Quick (fun () ->
        with_config
          (fun () -> C.configure ~delay_prob:1.0 ~freeze_prob:1.0 ~seed:3 ())
          (fun () ->
            C.reset_stats ();
            let a = C.make 0 in
            C.set_private a 5;
            Alcotest.(check int) "no stalls on private init" 0
              ((C.stats ()).chaos_delays + (C.stats ()).chaos_freezes)));
    Alcotest.test_case "delays and freezes are counted" `Quick (fun () ->
        with_config
          (fun () ->
            C.configure ~delay_prob:1.0 ~max_delay:4 ~freeze_prob:1.0
              ~freeze_spins:8 ~seed:11 ())
          (fun () ->
            C.reset_stats ();
            let a = C.make 0 in
            for i = 1 to 20 do
              C.set a i
            done;
            ignore (C.get a);
            let s = C.stats () in
            Alcotest.(check int) "every op delayed" 21 s.chaos_delays;
            Alcotest.(check int) "every op frozen" 21 s.chaos_freezes));
    Alcotest.test_case "same seed, same fault sequence" `Quick (fun () ->
        let record () =
          with_config
            (fun () -> C.configure ~fail_prob:0.5 ~seed:0xFEED ())
            (fun () ->
              let a = C.make 0 and b = C.make 0 in
              List.init 64 (fun i ->
                  (* keep expected values current so only chaos fails *)
                  let va = C.get a and vb = C.get b in
                  let ok = C.dcas a b va vb (va + i) (vb + i) in
                  ok))
        in
        let first = record () and second = record () in
        Alcotest.(check (list bool)) "identical verdicts" first second;
        Alcotest.(check bool) "both fault kinds occurred" true
          (List.mem true first && List.mem false first);
        (* a different seed must eventually disagree *)
        let other =
          with_config
            (fun () -> C.configure ~fail_prob:0.5 ~seed:0xBEEF ())
            (fun () ->
              let a = C.make 0 and b = C.make 0 in
              List.init 64 (fun i ->
                  let va = C.get a and vb = C.get b in
                  C.dcas a b va vb (va + i) (vb + i)))
        in
        Alcotest.(check bool) "different seed diverges" true (first <> other));
    Alcotest.test_case "stats pretty-printer shows chaos only when armed"
      `Quick (fun () ->
        C.reset_stats ();
        let clean =
          Format.asprintf "%a" Dcas.Memory_intf.pp_stats (C.stats ())
        in
        let contains ~needle hay =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "no chaos segment when zero" false
          (contains ~needle:"chaos" clean);
        with_config (fun () -> C.configure ~fail_prob:1.0 ~seed:2 ()) (fun () ->
            let a = C.make 1 and b = C.make 2 in
            ignore (C.dcas a b 1 2 3 4));
        let dirty =
          Format.asprintf "%a" Dcas.Memory_intf.pp_stats (C.stats ())
        in
        Alcotest.(check bool) "chaos segment appears" true
          (contains ~needle:"chaos=spurious:1" dirty));
  ]

(* Completeness of the stats pass-through: Mem_chaos merges its own
   counters into the wrapped substrate's snapshot with
   Memory_intf.add_stats, which is built on the exhaustive
   to_counts/of_counts conversions — so a field added to the record
   cannot silently vanish at the wrap seam.  Drive every counter of the
   lock-free substrate (including the dcas2/allocation ones) plus every
   chaos counter through one wrapped instance, and require the merged
   snapshot to be nonzero in *each* field and to zero out completely on
   reset. *)
module Chaos_over_lockfree = Dcas.Mem_chaos.Make (Dcas.Mem_lockfree)

let merge_completeness_tests =
  let module CW = Chaos_over_lockfree in
  [
    Alcotest.test_case "every stats field survives the chaos wrap" `Quick
      (fun () ->
        CW.disarm ();
        CW.reset_stats ();
        let a = CW.make 1 and b = CW.make 2 in
        (* reads/writes/value_allocs *)
        ignore (CW.get a);
        CW.set b 2;
        (* attempts/successes/descriptor_allocs/dcas2_hits, and a no-op
           confirm would elide — use a real write so value_allocs also
           moves on the slow path *)
        Alcotest.(check bool) "dcas succeeds" true (CW.dcas a b 1 2 10 20);
        (* fastfails *)
        ignore (CW.dcas a b 99 99 0 0);
        (* chaos_spurious / chaos_delays / chaos_freezes, with certain
           probabilities so the counts are deterministic *)
        Fun.protect ~finally:CW.disarm (fun () ->
            CW.configure ~fail_prob:1.0 ~delay_prob:1.0 ~max_delay:2
              ~freeze_prob:1.0 ~freeze_spins:2 ~seed:5 ();
            ignore (CW.dcas a b 10 20 11 21);
            ignore (CW.get a));
        (* helped_orphans: a crash-injected victim dies mid-CASN with a
           published descriptor and the surviving (main) domain helps
           it to completion *)
        let module CM = Harness.Crash.Mem_crashing_casn (Dcas.Mem_lockfree) in
        Harness.Crash.reset ();
        let x = CM.make 0 and y = CM.make 0 in
        let warm = Atomic.make false in
        let victim =
          Domain.spawn (fun () ->
              Harness.Crash.enroll ~tid:0;
              try
                let i = ref 0 in
                while true do
                  ignore (CM.dcas x y (CM.get x) (CM.get y) !i (!i + 1));
                  Atomic.set warm true;
                  incr i
                done
              with Harness.Crash.Died -> ())
        in
        while not (Atomic.get warm) do
          Domain.cpu_relax ()
        done;
        Harness.Crash.kill ~mode:`Mid_casn ~tid:0 ();
        Domain.join victim;
        Alcotest.(check int)
          "victim left one orphan" 1
          (Dcas.Mem_lockfree.help_orphans ());
        Harness.Crash.reset ();
        let counts = Dcas.Memory_intf.to_counts (CW.stats ()) in
        let assoc = Dcas.Memory_intf.stats_to_assoc (CW.stats ()) in
        Array.iteri
          (fun i c ->
            Alcotest.(check bool)
              (Printf.sprintf "field %s nonzero after wrap+merge"
                 (fst (List.nth assoc i)))
              true (c > 0))
          counts;
        CW.reset_stats ();
        Alcotest.(check (array int))
          "reset zeroes every field"
          (Array.make Dcas.Memory_intf.stats_fields 0)
          (Dcas.Memory_intf.to_counts (CW.stats ())));
  ]

(* The paper's adversary, executed: a correct lock-free deque keeps
   every invariant and conserves values under heavy injected faults on
   real domains.  Slow tier. *)
module Chaos_lockfree = Dcas.Mem_chaos.Make (Dcas.Mem_lockfree)
module Deque_under_chaos = Deque.List_deque.Make (Chaos_lockfree)

let chaos_impl : Test_support.impl =
  {
    impl_name = "list-deque/lockfree under chaos";
    bounded = false;
    fresh =
      (fun ~capacity:_ ->
        let d = Deque_under_chaos.make () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> Deque_under_chaos.push_right d v)
          ~push_left:(fun v -> Deque_under_chaos.push_left d v)
          ~pop_right:(fun () -> Deque_under_chaos.pop_right d)
          ~pop_left:(fun () -> Deque_under_chaos.pop_left d)
          ~to_list:(Some (fun () -> Deque_under_chaos.unsafe_to_list d))
          ~invariant:(Some (fun () -> Deque_under_chaos.check_invariant d)));
  }

let stress_tests =
  [
    Test_support.tiered "conservation under injected faults" `Slow (fun () ->
        Chaos_lockfree.configure ~fail_prob:0.2 ~delay_prob:0.05 ~max_delay:32
          ~freeze_prob:0.002 ~freeze_spins:2_000 ~seed:0xC0DE ();
        Fun.protect ~finally:Chaos_lockfree.disarm (fun () ->
            Chaos_lockfree.reset_stats ();
            Test_support.stress_conservation ~seed:0xC0DE chaos_impl
              ~threads:4 ~iters:4_000 ~capacity:64 ();
            let s = Chaos_lockfree.stats () in
            Alcotest.(check bool) "faults were actually injected" true
              (s.chaos_spurious > 0)));
  ]

let () =
  Alcotest.run "chaos"
    [
      ("substrate", basic_tests);
      ("stats-merge", merge_completeness_tests);
      ("stress", stress_tests);
    ]

(* Exhaustive bounded model checking of the paper's algorithms — the
   executable face of Section 5's theorems (experiments E2, E3, E13).

   Every scenario here is explored over ALL interleavings (up to the
   stated bound): after every shared-memory step the representation
   invariant must hold, and every complete history must be
   linearizable.  The scenarios are the paper's own figures: the
   contending pops of Figures 5-6, the empty-state family of Figure 9,
   and the contending physical deletions of Figure 16. *)

open Spec.Op

let assert_ok name outcome =
  match outcome.Modelcheck.Explorer.error with
  | None ->
      Alcotest.(check bool)
        (Printf.sprintf "%s explored exhaustively" name)
        true outcome.Modelcheck.Explorer.exhaustive
  | Some f ->
      Alcotest.failf "%s: %s@.schedule: %s@.%s" name
        f.Modelcheck.Explorer.reason
        (String.concat " " (List.map string_of_int f.Modelcheck.Explorer.schedule))
        f.Modelcheck.Explorer.pretty_history

let explore = Modelcheck.Explorer.explore

(* --- E2: the array deque's contended boundaries --- *)

let test_fig6_pop_vs_pop () =
  (* both pops race for the single element: exactly one wins *)
  assert_ok "array pop/pop on 1 element"
    (explore
       (Modelcheck.Scenario.array_deque ~name:"fig6" ~length:4 ~prefill:[ 42 ]
          [ [ Pop_right ]; [ Pop_left ] ]))

let test_fig6_no_hints () =
  assert_ok "array pop/pop, hints disabled"
    (explore
       (Modelcheck.Scenario.array_deque ~hints:false ~name:"fig6-nh" ~length:4
          ~prefill:[ 42 ]
          [ [ Pop_right ]; [ Pop_left ] ]))

let test_push_vs_push_last_slot () =
  (* both pushes race for the last free slot of a full-1 deque *)
  assert_ok "array push/push on last slot"
    (explore
       (Modelcheck.Scenario.array_deque ~name:"last-slot" ~length:3
          ~prefill:[ 1; 2 ]
          [ [ Push_right 8 ]; [ Push_left 9 ] ]))

let test_push_vs_pop_empty_boundary () =
  assert_ok "array push vs pop near empty"
    (explore
       (Modelcheck.Scenario.array_deque ~name:"push-pop" ~length:3
          ~prefill:[ 5 ]
          [ [ Pop_left; Pop_right ]; [ Push_right 6 ] ]))

let test_three_threads_array () =
  assert_ok "array 3 threads"
    (explore
       (Modelcheck.Scenario.array_deque ~name:"3t" ~length:3 ~prefill:[ 1 ]
          [ [ Pop_right ]; [ Pop_left ]; [ Push_right 9 ] ]))

let test_wrap_boundary () =
  (* index wraparound under contention: prefill rotated to the array's
     physical edge via setup pops/pushes *)
  assert_ok "array contention across the wrap point"
    (explore
       (Modelcheck.Scenario.array_deque ~name:"wrap" ~length:3
          ~prefill:[ 1; 2; 3 ]
          ~setup:[ Pop_left; Pop_left; Push_right 4 ]
          [ [ Pop_right ]; [ Pop_left ]; [ Push_left 5 ] ]))

(* --- Batched entry points: the scripted single ops routed through
   push_many/pop_many as width-1 batches, so every schedule exercises
   the probe + (k+1)-entry CASN path — the 2-entry case is exactly what
   the production substrate specializes into its flat Dcas2 descriptor —
   against the unchanged single-op oracle. --- *)

let test_batched_fig6 () =
  assert_ok "batched array pop/pop on 1 element"
    (explore
       (Modelcheck.Scenario.array_deque_batched ~name:"bfig6" ~length:4
          ~prefill:[ 42 ]
          [ [ Pop_right ]; [ Pop_left ] ]))

let test_batched_last_slot () =
  assert_ok "batched array push/push on last slot"
    (explore
       (Modelcheck.Scenario.array_deque_batched ~name:"b-last" ~length:3
          ~prefill:[ 1; 2 ]
          [ [ Push_right 8 ]; [ Push_left 9 ] ]))

let test_batched_empty_boundary () =
  assert_ok "batched array push vs pops near empty"
    (explore
       (Modelcheck.Scenario.array_deque_batched ~name:"b-pp" ~length:3
          ~prefill:[ 5 ]
          [ [ Pop_left; Pop_right ]; [ Push_right 6 ] ]))

let test_batched_wrap () =
  assert_ok "batched array contention across the wrap point"
    (explore
       (Modelcheck.Scenario.array_deque_batched ~name:"b-wrap" ~length:3
          ~prefill:[ 1; 2; 3 ]
          ~setup:[ Pop_left; Pop_left; Push_right 4 ]
          [ [ Pop_right ]; [ Pop_left ]; [ Push_left 5 ] ]))

let test_batched_list_fig6 () =
  assert_ok "batched list pop/pop on 1 element"
    (explore
       (Modelcheck.Scenario.list_deque_batched ~name:"blfig6" ~prefill:[ 42 ]
          [ [ Pop_right ]; [ Pop_left ] ]))

(* --- E3: the list deque's empty-state family and deletions --- *)

let test_fig6_list () =
  assert_ok "list pop/pop on 1 element"
    (explore
       (Modelcheck.Scenario.list_deque ~name:"fig6l" ~prefill:[ 42 ]
          [ [ Pop_right ]; [ Pop_left ] ]))

let test_fig9_right_deleted () =
  (* one pending right deletion; pop and push contend over completing
     it *)
  assert_ok "list ops over a right-deleted cell"
    (explore
       (Modelcheck.Scenario.list_deque ~name:"fig9r" ~prefill:[ 1 ]
          ~setup:[ Pop_right ]
          [ [ Push_right 2 ]; [ Pop_right ] ]))

let test_fig9_left_deleted () =
  assert_ok "list ops over a left-deleted cell"
    (explore
       (Modelcheck.Scenario.list_deque ~name:"fig9l" ~prefill:[ 1 ]
          ~setup:[ Pop_left ]
          [ [ Push_left 2 ]; [ Pop_left ] ]))

let test_fig16_contending_deletes () =
  (* both ends logically deleted; the two pushes must complete the
     contending physical deletions of Figure 16 *)
  assert_ok "figure 16: contending deletes"
    (explore
       (Modelcheck.Scenario.list_deque ~name:"fig16" ~prefill:[ 1; 2 ]
          ~setup:[ Pop_right; Pop_left ]
          [ [ Push_right 3 ]; [ Push_left 4 ] ]))

let test_fig16_deletes_vs_pops () =
  assert_ok "figure 16: deletes raced by pops"
    (explore
       (Modelcheck.Scenario.list_deque ~name:"fig16p" ~prefill:[ 1; 2 ]
          ~setup:[ Pop_right; Pop_left ]
          [ [ Pop_right ]; [ Pop_left ] ]))

let test_list_push_push_empty () =
  assert_ok "list push/push on empty"
    (explore
       (Modelcheck.Scenario.list_deque ~name:"pp" ~prefill:[]
          [ [ Push_right 1 ]; [ Push_left 2 ] ]))

let test_list_pop_pop_two () =
  assert_ok "list pop/pop on 2 elements"
    (explore
       (Modelcheck.Scenario.list_deque ~name:"pp2" ~prefill:[ 1; 2 ]
          [ [ Pop_right ]; [ Pop_left ] ]))

(* --- E11: the dummy-node variant passes the same checks --- *)

let test_dummy_fig6 () =
  assert_ok "dummy pop/pop on 1 element"
    (explore
       (Modelcheck.Scenario.list_deque_dummy ~name:"dfig6" ~prefill:[ 42 ]
          [ [ Pop_right ]; [ Pop_left ] ]))

let test_dummy_fig16 () =
  assert_ok "dummy figure 16"
    (explore
       (Modelcheck.Scenario.list_deque_dummy ~name:"dfig16" ~prefill:[ 1; 2 ]
          ~setup:[ Pop_right; Pop_left ]
          [ [ Push_right 3 ]; [ Push_left 4 ] ]))

(* --- Greenwald v1 is correct (its flaw is concurrency loss, not
   incorrectness) --- *)

let test_greenwald_v1_fig6 () =
  assert_ok "greenwald v1 pop/pop"
    (explore
       (Modelcheck.Scenario.greenwald_v1 ~name:"g1" ~length:4 ~prefill:[ 42 ]
          [ [ Pop_right ]; [ Pop_left ] ]))

(* --- Randomized sampling for configurations too big to enumerate --- *)

let test_sampled_array () =
  let s =
    Modelcheck.Scenario.array_deque ~name:"sampled-array" ~length:3
      ~prefill:[ 1 ]
      [
        [ Push_right 2; Pop_left; Pop_right ];
        [ Pop_right; Push_left 3 ];
        [ Push_left 4; Pop_left ];
      ]
  in
  match
    (Modelcheck.Explorer.sample ~schedules:3_000 ~seed:42 s)
      .Modelcheck.Explorer.error
  with
  | None -> ()
  | Some f -> Alcotest.failf "sampled array: %s" f.Modelcheck.Explorer.reason

let test_sampled_list () =
  let s =
    Modelcheck.Scenario.list_deque ~name:"sampled-list" ~prefill:[ 1; 2 ]
      [
        [ Pop_right; Push_right 3; Pop_right ];
        [ Pop_left; Push_left 4 ];
        [ Pop_right; Pop_left ];
      ]
  in
  match
    (Modelcheck.Explorer.sample ~schedules:2_000 ~seed:43 s)
      .Modelcheck.Explorer.error
  with
  | None -> ()
  | Some f -> Alcotest.failf "sampled list: %s" f.Modelcheck.Explorer.reason

(* --- Scenario fuzzing: randomly generated small scenarios, random
   schedules, across every algorithm --- *)

let ops_arb =
  let open QCheck2.Gen in
  let op =
    frequency
      [
        (2, map (fun v -> Push_right v) (int_bound 3));
        (2, map (fun v -> Push_left v) (int_bound 3));
        (3, return Pop_right);
        (3, return Pop_left);
      ]
  in
  let thread = list_size (1 -- 2) op in
  pair (list_size (0 -- 3) (int_bound 3)) (list_size (2 -- 3) thread)

let print_fuzz (prefill, threads) =
  Printf.sprintf "prefill=[%s] threads=[%s]"
    (String.concat ";" (List.map string_of_int prefill))
    (String.concat " | "
       (List.map
          (fun ops ->
            String.concat ","
              (List.map
                 (fun op ->
                   Format.asprintf "%a" (Spec.Op.pp_op Format.pp_print_int) op)
                 ops))
          threads))

let fuzz_test name mk =
  QCheck2.Test.make ~name ~count:30 ~print:print_fuzz ops_arb
    (fun (prefill, threads) ->
      let scenario = mk ~prefill threads in
      let outcome =
        Modelcheck.Explorer.sample ~schedules:120 ~seed:7 scenario
      in
      match outcome.Modelcheck.Explorer.error with
      | None -> true
      | Some f -> QCheck2.Test.fail_report f.Modelcheck.Explorer.reason)

let fuzz_tests =
  [
    QCheck_alcotest.to_alcotest
      (fuzz_test "fuzz: array scenarios" (fun ~prefill threads ->
           Modelcheck.Scenario.array_deque ~name:"fz-a" ~length:3 ~prefill
             threads));
    QCheck_alcotest.to_alcotest
      (fuzz_test "fuzz: list scenarios" (fun ~prefill threads ->
           Modelcheck.Scenario.list_deque ~name:"fz-l" ~prefill threads));
    QCheck_alcotest.to_alcotest
      (fuzz_test "fuzz: list scenarios (recycle)" (fun ~prefill threads ->
           Modelcheck.Scenario.list_deque ~recycle:true ~name:"fz-r" ~prefill
             threads));
    QCheck_alcotest.to_alcotest
      (fuzz_test "fuzz: batched array scenarios" (fun ~prefill threads ->
           Modelcheck.Scenario.array_deque_batched ~name:"fz-ab" ~length:3
             ~prefill threads));
    QCheck_alcotest.to_alcotest
      (fuzz_test "fuzz: batched list scenarios" (fun ~prefill threads ->
           Modelcheck.Scenario.list_deque_batched ~name:"fz-lb" ~prefill
             threads));
    QCheck_alcotest.to_alcotest
      (fuzz_test "fuzz: dummy scenarios" (fun ~prefill threads ->
           Modelcheck.Scenario.list_deque_dummy ~name:"fz-d" ~prefill threads));
    QCheck_alcotest.to_alcotest
      (fuzz_test "fuzz: 3cas scenarios" (fun ~prefill threads ->
           Modelcheck.Scenario.list_deque_casn ~name:"fz-c" ~prefill threads));
    QCheck_alcotest.to_alcotest
      (fuzz_test "fuzz: greenwald v1 scenarios" (fun ~prefill threads ->
           Modelcheck.Scenario.greenwald_v1 ~name:"fz-g" ~length:5 ~prefill
             threads));
  ]

(* The explorer is deterministic: replaying the same decision function
   over the same scenario yields byte-identical histories.  (This is
   what makes stateless DFS enumeration sound.) *)
let test_replay_deterministic () =
  let scenario =
    Modelcheck.Scenario.list_deque ~name:"det" ~prefill:[ 1; 2 ]
      [ [ Pop_right; Push_right 3 ]; [ Pop_left ] ]
  in
  let decide depth enabled = (depth * 7) mod List.length enabled in
  let show (r : Modelcheck.Explorer.run_report) =
    Modelcheck.Explorer.pretty_history r.Modelcheck.Explorer.history
  in
  let a = Modelcheck.Explorer.run_schedule scenario ~decide in
  let b = Modelcheck.Explorer.run_schedule scenario ~decide in
  Alcotest.(check string) "identical histories" (show a) (show b);
  Alcotest.(check int) "identical step counts" a.Modelcheck.Explorer.steps
    b.Modelcheck.Explorer.steps

(* --- run_schedule edge cases --- *)

(* Frozen threads must never appear in an enabled set, never execute an
   operation, and must not stop the others from completing. *)
let test_frozen_never_scheduled () =
  let scenario =
    Modelcheck.Scenario.list_deque ~name:"frozen" ~prefill:[ 1; 2 ]
      [ [ Pop_right ]; [ Pop_left; Push_left 9 ] ]
  in
  let report =
    Modelcheck.Explorer.run_schedule scenario
      ~frozen:(fun i -> i = 1)
      ~decide:(fun _ enabled -> List.length enabled - 1)
  in
  List.iter
    (fun (enabled, _) ->
      if List.mem 1 enabled then
        Alcotest.fail "frozen thread appeared in an enabled set")
    report.Modelcheck.Explorer.decisions;
  Array.iter
    (fun e ->
      if e.Spec.History.thread = 1 then
        Alcotest.fail "frozen thread executed an operation")
    report.Modelcheck.Explorer.history;
  Alcotest.(check int) "only thread 0's op completed" 1
    (Array.length report.Modelcheck.Explorer.history)

(* Step_limit fires when the schedule *exceeds* max_steps: a budget of
   exactly the run's length completes, one less raises. *)
let test_step_limit_boundary () =
  let scenario =
    Modelcheck.Scenario.list_deque ~name:"steps" ~prefill:[ 1 ]
      [ [ Pop_right ]; [ Push_left 5 ] ]
  in
  let decide depth enabled = depth mod List.length enabled in
  let full = Modelcheck.Explorer.run_schedule scenario ~decide in
  let s = full.Modelcheck.Explorer.steps in
  let exact = Modelcheck.Explorer.run_schedule ~max_steps:s scenario ~decide in
  Alcotest.(check int) "budget = steps completes" s
    exact.Modelcheck.Explorer.steps;
  match Modelcheck.Explorer.run_schedule ~max_steps:(s - 1) scenario ~decide with
  | _ -> Alcotest.fail "expected Step_limit"
  | exception Modelcheck.Explorer.Step_limit -> ()

(* The Invariant_violation payload is the scenario's own message,
   verbatim — both from run_schedule and through explore's report. *)
let test_invariant_message () =
  let scenario : Modelcheck.Scenario.t =
    {
      name = "inv-msg";
      capacity = None;
      initial = [];
      threads = [| [ Pop_right ] |];
      instantiate =
        (fun () ->
          {
            Modelcheck.Scenario.apply = (fun _ -> Empty);
            invariant = Some (fun () -> Error "custom-message-42");
            dump = None;
          });
    }
  in
  (match
     Modelcheck.Explorer.run_schedule scenario ~decide:(fun _ _ -> 0)
   with
  | _ -> Alcotest.fail "expected Invariant_violation"
  | exception Modelcheck.Explorer.Invariant_violation msg ->
      Alcotest.(check string) "verbatim payload" "custom-message-42" msg);
  match (Modelcheck.Explorer.explore scenario).error with
  | None -> Alcotest.fail "explore missed the violation"
  | Some f ->
      Alcotest.(check string)
        "explore's reason carries the message"
        "invariant violated: custom-message-42" f.Modelcheck.Explorer.reason

(* --- sharded service (E24) --- *)

(* The sharded front end is NOT linearizable to a single deque (routing
   and stealing reorder across shards by design), so these legs explore
   with [check:`None]: the per-step obligation is the scenario's own
   invariant (each shard's representation invariant plus no value
   resident twice service-wide), and exact conservation is delegated to
   check_crash's drain-and-balance accounting. *)

let assert_clean name (outcome : Modelcheck.Explorer.outcome) =
  match outcome.Modelcheck.Explorer.error with
  | None -> ()
  | Some f ->
      Alcotest.failf "%s: %s@.schedule: %s@.%s" name
        f.Modelcheck.Explorer.reason
        (String.concat " " (List.map string_of_int f.Modelcheck.Explorer.schedule))
        f.Modelcheck.Explorer.pretty_history

(* Two threads over two shards: exhaustively enumerable (~500
   schedules), every step invariant-checked. *)
let test_sharded_exhaustive () =
  assert_ok "sharded push vs urgent pop"
    (Modelcheck.Explorer.explore ~check:`None
       (Modelcheck.Scenario.sharded ~name:"sharded-2x2" ~prefill:[ 1 ]
          [ [ Push_right 3 ]; [ Pop_left ] ]))

(* Adoption racing traffic: thread 2's token push quarantines, adopts
   and revives shard-of-9 while the others push and pop.  Three threads
   blow past exhaustive enumeration, so this leg runs under a bounded
   schedule budget (still tens of thousands of invariant-checked
   interleavings). *)
let sharded_adoption_scenario () =
  Modelcheck.Scenario.sharded ~name:"sharded-adopt" ~adopt_token:9
    ~prefill:[ 1; 2 ]
    [ [ Push_right 3 ]; [ Pop_left ]; [ Push_right 9 ] ]

let test_sharded_adoption_bounded () =
  assert_clean "sharded adoption race"
    (Modelcheck.Explorer.explore ~check:`None ~max_schedules:50_000
       (sharded_adoption_scenario ()))

(* Crash-fault conservation: kill the popping thread at every reachable
   step count; survivors (including the adoption control plane) must
   complete and a full drain must balance the committed operations.
   The default steal_batch = 1 keeps at most one item in any thread's
   hand, matching check_crash's single-in-flight-item uncertainty. *)
let test_sharded_crash_conserves () =
  match
    Modelcheck.Explorer.check_crash (sharded_adoption_scenario ()) ~victim:1
  with
  | Ok n -> Alcotest.(check bool) "crash points exercised" true (n > 0)
  | Error j -> Alcotest.failf "value lost or duplicated at crash point %d" j

(* Non-blocking progress: freeze the popper at every reachable step
   count; pushes and the quarantine/adopt/revive cycle must still
   complete (this is the leg that caught a spinning adopt). *)
let test_sharded_nonblocking () =
  match
    Modelcheck.Explorer.check_nonblocking (sharded_adoption_scenario ())
      ~victim:1
  with
  | Ok n -> Alcotest.(check bool) "stall points exercised" true (n > 0)
  | Error j -> Alcotest.failf "service blocked at stall point %d" j

(* The E25 planted zombie-adoption bug, and the fence that fixes it.
   Over-committed shape: two capacity-1 shards, both prefilled (3 homes
   on shard 0, 1 on shard 1), one thread adopting shard-of-9 (= 1)
   while another pushes 5 (also homed on shard 1).  Unfenced, the
   racing push takes the slot the drain frees and the pre-limbo
   park-back re-places forever — a step-limit violation.  The fenced
   adoption survives the same script exhaustively: quarantine stops new
   routes and the limbo stash absorbs the straggler that routed before
   it. *)
let overcommit_script ~fence_adoption =
  Modelcheck.Scenario.sharded ~capacity:1 ~adopt_token:9 ~fence_adoption
    ~name:(if fence_adoption then "sharded-fenced" else "sharded-nofence")
    ~prefill:[ 3; 1 ]
    [ [ Push_right 9 ]; [ Push_right 5 ] ]

let test_sharded_fenced_survives () =
  let outcome =
    Modelcheck.Explorer.explore ~check:`None ~max_steps:2_000
      (overcommit_script ~fence_adoption:true)
  in
  assert_clean "fenced adoption under over-commit" outcome;
  Alcotest.(check bool)
    "exhaustive" true outcome.Modelcheck.Explorer.exhaustive

let test_sharded_nofence_caught () =
  match
    (Modelcheck.Explorer.explore ~check:`None ~max_steps:2_000
       (overcommit_script ~fence_adoption:false))
      .error
  with
  | Some f ->
      Alcotest.(check string)
        "liveness violation" "step limit exceeded" f.Modelcheck.Explorer.reason
  | None -> Alcotest.fail "planted no-fence adoption bug not caught"

(* Deadline shedding (push of the shed token = urgent pop-and-discard
   through its route) racing ordinary traffic: the invariant adds that
   no value is shed twice and no shed value is still resident. *)
let test_sharded_shed_conserves () =
  assert_clean "shed vs push vs pop"
    (Modelcheck.Explorer.explore ~check:`None ~max_schedules:50_000
       (Modelcheck.Scenario.sharded ~shed_token:7 ~name:"sharded-shed"
          ~prefill:[ 1; 2 ]
          [ [ Push_right 3 ]; [ Push_right 7 ]; [ Pop_left ] ]))

let () =
  Alcotest.run "modelcheck"
    [
      ( "array (E2)",
        [
          Alcotest.test_case "figure 6 pop vs pop" `Slow test_fig6_pop_vs_pop;
          Alcotest.test_case "figure 6 without hints" `Slow test_fig6_no_hints;
          Alcotest.test_case "push vs push last slot" `Slow
            test_push_vs_push_last_slot;
          Alcotest.test_case "push vs pops near empty" `Slow
            test_push_vs_pop_empty_boundary;
          Alcotest.test_case "three threads" `Slow test_three_threads_array;
          Alcotest.test_case "wraparound contention" `Slow test_wrap_boundary;
        ] );
      ( "batched ops",
        [
          Alcotest.test_case "figure 6 pop vs pop" `Slow test_batched_fig6;
          Alcotest.test_case "push vs push last slot" `Slow
            test_batched_last_slot;
          Alcotest.test_case "push vs pops near empty" `Slow
            test_batched_empty_boundary;
          Alcotest.test_case "wraparound contention" `Slow test_batched_wrap;
          Alcotest.test_case "list fallback figure 6" `Slow
            test_batched_list_fig6;
        ] );
      ( "list (E3)",
        [
          Alcotest.test_case "figure 6 on list" `Slow test_fig6_list;
          Alcotest.test_case "figure 9 right-deleted" `Slow
            test_fig9_right_deleted;
          Alcotest.test_case "figure 9 left-deleted" `Slow test_fig9_left_deleted;
          Alcotest.test_case "figure 16 contending deletes" `Slow
            test_fig16_contending_deletes;
          Alcotest.test_case "figure 16 raced by pops" `Slow
            test_fig16_deletes_vs_pops;
          Alcotest.test_case "push/push empty" `Slow test_list_push_push_empty;
          Alcotest.test_case "pop/pop two elements" `Slow test_list_pop_pop_two;
        ] );
      ( "dummy variant (E11)",
        [
          Alcotest.test_case "figure 6" `Slow test_dummy_fig6;
          Alcotest.test_case "figure 16" `Slow test_dummy_fig16;
        ] );
      ( "baselines",
        [ Alcotest.test_case "greenwald v1 pop/pop" `Slow test_greenwald_v1_fig6 ] );
      ( "sampled (E13)",
        [
          Alcotest.test_case "array 3x3 sampled" `Slow test_sampled_array;
          Alcotest.test_case "list 3x2 sampled" `Slow test_sampled_list;
        ] );
      ( "sharded service (E24)",
        [
          Alcotest.test_case "push vs pop exhaustive" `Slow
            test_sharded_exhaustive;
          Alcotest.test_case "adoption race bounded" `Slow
            test_sharded_adoption_bounded;
          Alcotest.test_case "crash conserves values" `Slow
            test_sharded_crash_conserves;
          Alcotest.test_case "stall never blocks service" `Slow
            test_sharded_nonblocking;
          Alcotest.test_case "fenced adoption survives over-commit" `Slow
            test_sharded_fenced_survives;
          Alcotest.test_case "planted no-fence bug caught" `Slow
            test_sharded_nofence_caught;
          Alcotest.test_case "shed conserves" `Slow test_sharded_shed_conserves;
        ] );
      ("scenario fuzzing", fuzz_tests);
      ( "determinism",
        [
          Alcotest.test_case "replay is deterministic" `Quick
            test_replay_deterministic;
        ] );
      ( "run_schedule edge cases",
        [
          Alcotest.test_case "frozen threads never scheduled" `Quick
            test_frozen_never_scheduled;
          Alcotest.test_case "step limit fires exactly at max_steps" `Quick
            test_step_limit_boundary;
          Alcotest.test_case "invariant violation carries the message" `Quick
            test_invariant_message;
        ] );
    ]

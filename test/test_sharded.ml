(* The sharded service front end (Core.Sharded + Worksteal.Shard_service,
   experiment E24): routing determinism, priority lanes, cross-shard
   overflow, steal rebalancing, quarantine/adoption, and — the
   robustness core — service-wide conservation under multi-domain
   crash storms and a frozen-shard survivor-progress check mirroring
   E19's empirical lock-freedom suite. *)

module Sharded = Deque.Sharded
module Sh = Deque.Sharded.Make (Deque.Array_deque.Lockfree)

(* --- routing --- *)

let test_routing_spread () =
  let t = Sh.create ~shards:4 ~capacity:64 () in
  let hits = Array.make 4 0 in
  for key = 0 to 1023 do
    let s = Sh.shard_of t ~key in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
    hits.(s) <- hits.(s) + 1
  done;
  (* the affinity hash must not collapse the key space onto one shard *)
  Array.iteri
    (fun i n ->
      if n = 0 then Alcotest.failf "shard %d never hit over 1024 keys" i)
    hits

let qcheck_routing_deterministic =
  QCheck2.Test.make ~name:"routing is a pure function of (key, shards)"
    ~count:500
    QCheck2.Gen.(pair (int_range 1 16) int)
    (fun (shards, key) ->
      let a = Sh.create ~shards ~capacity:8 () in
      let b = Sh.create ~shards ~capacity:8 () in
      let s1 = Sh.shard_of a ~key in
      let s2 = Sh.shard_of a ~key in
      let s3 = Sh.shard_of b ~key in
      s1 = s2 && s1 = s3 && s1 >= 0 && s1 < shards
      && Sharded.mix key = Sharded.mix key)

let test_route_skips_quarantined () =
  let t = Sh.create ~shards:3 ~capacity:8 () in
  let key = 0 in
  let home = Sh.shard_of t ~key in
  Alcotest.(check int) "route = home when alive" home (Sh.route t ~key);
  Sh.quarantine t ~shard:home;
  let r = Sh.route t ~key in
  Alcotest.(check bool) "routes around the dead shard" true (r <> home);
  Alcotest.(check bool) "to a live one" true (Sh.alive t ~shard:r);
  Sh.revive t ~shard:home;
  Alcotest.(check int) "home again after revival" home (Sh.route t ~key)

(* --- conservation, sequential --- *)

let test_sequential_conservation () =
  let t = Sh.create ~shards:4 ~capacity:32 () in
  for i = 1 to 100 do
    match Sh.push t ~key:i i with
    | `Okay -> ()
    | `Full | `Timeout -> Alcotest.failf "push %d refused" i
  done;
  let s = Sh.stats t in
  Alcotest.(check int) "all landed" 100 s.Sharded.pushed;
  let got = ref [] in
  for key = 1 to 100 do
    match Sh.pop t ~key with
    | `Value v -> got := v :: !got
    | `Empty | `Timeout -> ()
  done;
  let expect = List.init 100 (fun i -> i + 1) in
  Alcotest.(check (list int)) "nothing lost, nothing duplicated" expect
    (List.sort compare !got);
  Alcotest.(check (list int)) "drained dry" [] (Sh.drain t)

(* --- priority lanes --- *)

let test_priority_lanes () =
  let t = Sh.create ~shards:1 ~capacity:16 () in
  let key = 0 in
  List.iter
    (fun v -> ignore (Sh.push t ~key v))
    [ 1; 2; 3 ] (* bulk: right end *);
  ignore (Sh.push ~urgent:true t ~key 10);
  ignore (Sh.push ~urgent:true t ~key 11);
  (* urgent pops serve the left end: urgent entries (LIFO among
     themselves), then the oldest bulk *)
  let pop_urgent () =
    match Sh.pop ~urgent:true t ~key with
    | `Value v -> v
    | `Empty | `Timeout -> Alcotest.fail "unexpected empty"
  in
  Alcotest.(check int) "latest urgent first" 11 (pop_urgent ());
  Alcotest.(check int) "then earlier urgent" 10 (pop_urgent ());
  Alcotest.(check int) "then oldest bulk" 1 (pop_urgent ());
  (* bulk pops serve the right end: newest bulk *)
  match Sh.pop t ~key with
  | `Value v -> Alcotest.(check int) "bulk pop takes newest" 3 v
  | `Empty | `Timeout -> Alcotest.fail "unexpected empty"

(* --- cross-shard overflow and steal rebalancing --- *)

let test_cross_shard_overflow () =
  let t = Sh.create ~shards:2 ~capacity:2 () in
  let key = 0 in
  (* four pushes on one key: two land home, two overflow cross-shard
     (Reject shards, so the home's policy surfaces `Full) *)
  for i = 1 to 4 do
    match Sh.push t ~key i with
    | `Okay -> ()
    | `Full | `Timeout -> Alcotest.failf "push %d refused with room left" i
  done;
  let s = Sh.stats t in
  Alcotest.(check int) "two rerouted" 2 s.Sharded.rerouted;
  (* both shards now full: genuine saturation *)
  Alcotest.(check bool) "service full at capacity" true
    (Sh.push t ~key 5 = `Full);
  Alcotest.(check int) "all four conserved" 4
    (List.length (Sh.drain t))

let test_steal_rebalancing () =
  let t = Sh.create ~shards:4 ~capacity:64 ~steal_batch:4 () in
  (* load one shard through its own key, then pop through a key homed
     elsewhere: the empty home must steal from the loaded victim *)
  let loaded_key = 0 in
  let home = Sh.shard_of t ~key:loaded_key in
  for i = 1 to 12 do
    ignore (Sh.push t ~key:loaded_key i)
  done;
  let other_key =
    let rec find k =
      if Sh.shard_of t ~key:k <> home then k else find (k + 1)
    in
    find 1
  in
  (match Sh.pop t ~key:other_key with
  | `Value _ -> ()
  | `Empty | `Timeout -> Alcotest.fail "steal scan found nothing");
  let s = Sh.stats t in
  Alcotest.(check bool) "steals recorded" true (s.Sharded.stolen >= 1);
  Alcotest.(check bool) "batch moved extra items home" true
    (s.Sharded.stolen > 1);
  Alcotest.(check int) "every item still present" 11
    (List.length (Sh.drain t))

let test_adoption () =
  let t = Sh.create ~shards:3 ~capacity:32 () in
  let key = 0 in
  let home = Sh.shard_of t ~key in
  for i = 1 to 10 do
    ignore (Sh.push t ~key i)
  done;
  Sh.quarantine t ~shard:home;
  let moved = Sh.adopt t ~shard:home in
  Alcotest.(check int) "all ten adopted" 10 moved;
  (* the key now routes to a survivor, where the items landed *)
  let got = ref 0 in
  let rec drain () =
    match Sh.pop t ~key with
    | `Value _ ->
        incr got;
        drain ()
    | `Empty | `Timeout -> ()
  in
  drain ();
  Alcotest.(check int) "all ten served after adoption" 10 !got

(* --- supervised service: fast smoke, storm and freeze tiers --- *)

module Svc = Worksteal.Shard_service

let base_config =
  {
    Svc.default with
    Svc.shards = 2;
    producers = 1;
    consumers = 2;
    capacity = 64;
    rate = 0.;
    sup = { Worksteal.Supervisor.default with silence_after = 1.0 };
  }

let check_conserved r =
  if not (Svc.conserved r) then
    Alcotest.failf "conservation violated: %s"
      (Format.asprintf "%a" Svc.pp_report r)

let test_service_smoke () =
  let r = Svc.Array_service.run ~config:base_config ~duration:0.2 () in
  check_conserved r;
  Alcotest.(check bool) "traffic flowed" true (r.Svc.executed > 0);
  Alcotest.(check int) "no deaths uninjected" 0 r.Svc.killed

(* Multi-domain conservation under a crash storm: probabilistic
   fail-stop deaths land mid-traffic (some mid-CASN); the monitor
   adopts the dead consumers' shards and spawns replacements, and the
   books still balance: spawned = executed + reconciled, drain empty. *)
module Crash_mem = Harness.Crash.Mem_crashing_casn (Dcas.Mem_lockfree)
module Crash_array = Deque.Array_deque.Make (Crash_mem)
module Crash_svc = Worksteal.Shard_service.Make (Crash_array)

let storm_config =
  {
    base_config with
    Svc.producers = 2;
    consumers = 2;
    sup = { Worksteal.Supervisor.default with silence_after = 0. };
  }

let test_service_crash_storm () =
  Harness.Crash.reset ();
  Dcas.Mem_lockfree.reset_stats ();
  Harness.Crash.configure ~prob:0.0005 ~mid_casn_prob:0.5 ~max_kills:2
    ~seed:0xE24 ();
  let r =
    Fun.protect ~finally:Harness.Crash.disarm (fun () ->
        Crash_svc.run ~config:storm_config ~duration:0.6 ())
  in
  check_conserved r;
  Alcotest.(check bool) "the storm landed" true (r.Svc.killed >= 1);
  Alcotest.(check bool) "every death replaced" true
    (r.Svc.replacements >= r.Svc.killed);
  Alcotest.(check bool) "traffic survived the deaths" true
    (r.Svc.executed > 0)

(* Frozen-shard survivor progress, mirroring E19: one consumer domain
   is parked mid-operation at an instrumented memory point; the other
   consumer keeps serving the whole service (steal scan included), and
   after the thaw the books balance. *)
module Stall_mem = Harness.Stall.Mem_stalling_casn (Dcas.Mem_lockfree)
module Stall_array = Deque.Array_deque.Make (Stall_mem)
module Stall_svc = Worksteal.Shard_service.Make (Stall_array)

let test_service_frozen_shard () =
  Harness.Stall.Freezer.reset ();
  let cfg = { base_config with Svc.producers = 1; consumers = 2 } in
  let frozen_tid = cfg.Svc.producers in
  let served_in_freeze = Atomic.make 0 in
  let freeze_window = Atomic.make false in
  let on_pop ~tid ~ns:_ out =
    match out with
    | `Value _ when tid <> frozen_tid && Atomic.get freeze_window ->
        Atomic.incr served_in_freeze
    | _ -> ()
  in
  let driver () =
    Unix.sleepf 0.1;
    Harness.Stall.Freezer.freeze ~tid:frozen_tid;
    Atomic.set freeze_window true;
    Unix.sleepf 0.25;
    Atomic.set freeze_window false;
    Harness.Stall.Freezer.thaw_all ();
    Unix.sleepf 0.05
  in
  let r, hits =
    Fun.protect
      ~finally:Harness.Stall.Freezer.reset
      (fun () ->
        let r = Stall_svc.run ~config:cfg ~on_pop ~driver ~duration:0.4 () in
        (r, Harness.Stall.Freezer.freeze_hits ()))
  in
  check_conserved r;
  Alcotest.(check bool) "freeze landed" true (hits >= 1);
  Alcotest.(check bool) "survivor served during the freeze" true
    (Atomic.get served_in_freeze >= 1)

(* False-silence / false-zombie regression (the supervisor
   misclassification hazard): a near-idle service — producers rate-
   limited to a trickle — leaves the consumers parked in their idle
   backoff most of the run.  With aggressive detection thresholds
   (well below the run length) neither detector may fire: the idling
   flag covers the deliberate park, and empty scans keep the progress
   counter moving between parks.  Before the fix, an idle consumer
   descheduled inside its park read as silent, and a consumer whose
   ticks froze together with its progress (an oversubscribed box)
   read as a zombie. *)
let test_idle_not_misclassified () =
  let cfg =
    {
      base_config with
      Svc.producers = 1;
      consumers = 2;
      rate = 20.;
      (* a trickle: consumers idle almost always *)
      sup =
        {
          Worksteal.Supervisor.default with
          silence_after = 0.05;
          zombie_after = 0.05;
        };
    }
  in
  let r = Svc.Array_service.run ~config:cfg ~duration:0.5 () in
  check_conserved r;
  Alcotest.(check int) "no idle consumer presumed dead" 0 r.Svc.presumed_dead;
  Alcotest.(check int) "no idle consumer fenced as zombie" 0
    r.Svc.zombies_fenced;
  Alcotest.(check int) "no replacements without a failure" 0
    r.Svc.replacements

(* Zombie fencing: a consumer whose heartbeat keeps ticking while it
   does no work (Harness.Stall.Zombie) must be caught by the
   progress-based detector, fenced, and replaced — and the books must
   still balance. *)
let test_zombie_fenced () =
  Harness.Stall.Zombie.reset ();
  let cfg =
    {
      base_config with
      Svc.producers = 1;
      consumers = 2;
      sup =
        {
          Worksteal.Supervisor.default with
          silence_after = 0.;
          zombie_after = 0.05;
        };
    }
  in
  let victim = cfg.Svc.producers in
  let driver () =
    Unix.sleepf 0.1;
    Harness.Stall.Zombie.zombify ~tid:victim;
    Unix.sleepf 0.3;
    Harness.Stall.Zombie.cure ~tid:victim;
    Unix.sleepf 0.1
  in
  let r, bites =
    Fun.protect
      ~finally:Harness.Stall.Zombie.reset
      (fun () ->
        let r = Svc.Array_service.run ~config:cfg ~driver ~duration:0.4 () in
        (r, Harness.Stall.Zombie.bites ()))
  in
  check_conserved r;
  Alcotest.(check bool) "the zombie bit" true (bites >= 1);
  Alcotest.(check bool) "fenced by progress detection" true
    (r.Svc.zombies_fenced >= 1);
  Alcotest.(check bool) "and replaced" true
    (r.Svc.replacements >= r.Svc.zombies_fenced);
  Alcotest.(check bool) "traffic survived the zombie" true
    (r.Svc.executed > 0)

(* Deadline enforcement: with a budget far below the service's idle
   backoff the tail of every burst expires in queue; sheds must be
   first-class outcomes inside the conservation law, and no served op
   may overshoot its stamped deadline beyond a scheduling epsilon. *)
let test_deadline_sheds_conserve () =
  let cfg =
    {
      base_config with
      Svc.producers = 2;
      consumers = 1;
      rate = 2_000.;
      burst = 64;
      deadline = Some 0.0002;
      admission = true;
    }
  in
  let r = Svc.Array_service.run ~config:cfg ~duration:0.4 () in
  check_conserved r;
  Alcotest.(check bool) "traffic was offered" true (r.Svc.spawned > 0);
  Alcotest.(check bool) "sheds happened" true (Svc.shed r >= 1);
  (* executed may legitimately be 0 on a single-core box (every item
     expires in queue); what must hold is that every shed op stayed on
     the books — conservation above — and that nothing that WAS served
     finished far past its stamped deadline *)
  Alcotest.(check bool) "no served op finished far past its deadline" true
    (r.Svc.overshoot_max_ns <= 50_000_000)

let () =
  let tiered = Test_support.tiered in
  Alcotest.run "sharded"
    [
      ( "routing",
        [
          Alcotest.test_case "hash spreads the key space" `Quick
            test_routing_spread;
          QCheck_alcotest.to_alcotest qcheck_routing_deterministic;
          Alcotest.test_case "routes around quarantine" `Quick
            test_route_skips_quarantined;
        ] );
      ( "data plane",
        [
          Alcotest.test_case "sequential conservation" `Quick
            test_sequential_conservation;
          Alcotest.test_case "priority lanes" `Quick test_priority_lanes;
          Alcotest.test_case "cross-shard overflow" `Quick
            test_cross_shard_overflow;
          Alcotest.test_case "steal rebalancing" `Quick
            test_steal_rebalancing;
          Alcotest.test_case "quarantine and adoption" `Quick
            test_adoption;
        ] );
      ( "supervised service",
        [
          tiered "smoke: closed-loop traffic conserves" `Slow
            test_service_smoke;
          tiered "crash storm: conservation + replacement" `Slow
            test_service_crash_storm;
          tiered "frozen shard: survivors progress (E19 mirror)" `Slow
            test_service_frozen_shard;
          tiered "idle consumers are never misclassified" `Slow
            test_idle_not_misclassified;
          tiered "zombie consumer fenced and replaced" `Slow
            test_zombie_fenced;
          tiered "deadline sheds stay on the books" `Slow
            test_deadline_sheds_conserve;
        ] );
    ]

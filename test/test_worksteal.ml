(* Tests for the work-stealing scheduler over every deque adapter: the
   computed results certify that no task is lost or duplicated, across
   worker counts and workloads (experiment E8's correctness side). *)

let rec seq_fib n = if n < 2 then n else seq_fib (n - 1) + seq_fib (n - 2)

let schedulers : (string * (module Worksteal.Worksteal_intf.SCHEDULER)) list =
  [
    ("abp", (module Worksteal.Scheduler.Abp_scheduler));
    ("array-deque", (module Worksteal.Scheduler.Array_scheduler));
    ("list-deque", (module Worksteal.Scheduler.List_scheduler));
    ("lock-deque", (module Worksteal.Scheduler.Lock_scheduler));
  ]

let fib_case name (module S : Worksteal.Worksteal_intf.SCHEDULER) workers n =
  Alcotest.test_case
    (Printf.sprintf "%s: fib %d on %d workers" name n workers)
    `Slow
    (fun () ->
      let module W = Worksteal.Workloads.Make (S) in
      let got = W.fib ~workers ~capacity:8192 n in
      Alcotest.(check int) "fib result" (seq_fib n) got)

let tree_case name (module S : Worksteal.Worksteal_intf.SCHEDULER) workers
    degree depth =
  Alcotest.test_case
    (Printf.sprintf "%s: %d^%d tree on %d workers" name degree depth workers)
    `Slow
    (fun () ->
      let module W = Worksteal.Workloads.Make (S) in
      let got = W.tree ~workers ~capacity:8192 ~degree ~depth () in
      let expect = int_of_float (float_of_int degree ** float_of_int depth) in
      Alcotest.(check int) "leaf count" expect got)

let fib_tests =
  List.concat_map
    (fun (name, s) -> [ fib_case name s 1 18; fib_case name s 4 20 ])
    schedulers

let tree_tests =
  List.concat_map
    (fun (name, s) -> [ tree_case name s 3 3 7; tree_case name s 2 5 5 ])
    schedulers

(* Tiny deques force the spawn-inline fallback path. *)
let inline_fallback_tests =
  List.map
    (fun (name, (module S : Worksteal.Worksteal_intf.SCHEDULER)) ->
      Alcotest.test_case (name ^ ": capacity-2 inline fallback") `Slow
        (fun () ->
          let module W = Worksteal.Workloads.Make (S) in
          let got = W.tree ~workers:3 ~capacity:2 ~degree:2 ~depth:8 () in
          Alcotest.(check int) "leaf count despite tiny deques" 256 got))
    schedulers

(* --- steal_batch: the deque-level contract and the scheduler knob --- *)

(* Every adapter must steal oldest-first, take at most [max] tasks, and
   leave the remainder for the owner — whether the batch commits in one
   CASN (array deque) or one steal at a time (ABP, Restrict). *)
let steal_batch_adapters :
    (string * (module Worksteal.Worksteal_intf.WORKSTEAL_DEQUE)) list =
  [
    ("abp", (module Worksteal.Scheduler.Abp_adapter));
    ("array-deque", (module Worksteal.Scheduler.Array_deque_adapter));
  ]

let steal_batch_semantics_tests =
  List.map
    (fun (name, (module D : Worksteal.Worksteal_intf.WORKSTEAL_DEQUE)) ->
      Alcotest.test_case (name ^ ": steal_batch contract") `Quick (fun () ->
          let d = D.create ~capacity:32 () in
          for v = 1 to 10 do
            Alcotest.(check bool) "push" true (D.push d v)
          done;
          Alcotest.(check (list int)) "max 0 steals nothing" [] (D.steal_batch d ~max:0);
          Alcotest.(check (list int))
            "oldest four, oldest first" [ 1; 2; 3; 4 ]
            (D.steal_batch d ~max:4);
          Alcotest.(check (list int))
            "truncated at empty" [ 5; 6; 7; 8; 9; 10 ]
            (D.steal_batch d ~max:99);
          Alcotest.(check (list int)) "now empty" [] (D.steal_batch d ~max:1);
          (* interleaves with owner pops: owner keeps the newest end *)
          for v = 20 to 25 do
            ignore (D.push d v)
          done;
          Alcotest.(check (option int)) "owner pops newest" (Some 25) (D.pop d);
          Alcotest.(check (list int))
            "thief takes the oldest pair" [ 20; 21 ]
            (D.steal_batch d ~max:2)))
    steal_batch_adapters

(* The scheduler's ~steal_batch knob must not change results, only
   stealing granularity; 0 is rejected. *)
let steal_batch_scheduler_tests =
  let tree_with sb =
    let module S = Worksteal.Scheduler.Array_scheduler in
    let acc = Atomic.make 0 in
    let rec task depth ctx =
      if depth = 0 then Atomic.incr acc
      else
        for _ = 1 to 2 do
          S.spawn ctx (task (depth - 1))
        done
    in
    S.run ?steal_batch:sb ~workers:3 ~capacity:1024 (task 8);
    Atomic.get acc
  in
  [
    Test_support.tiered "steal-one and steal-half agree on the result" `Slow
      (fun () ->
        Alcotest.(check int) "steal_batch=1" 256 (tree_with (Some 1));
        Alcotest.(check int) "steal_batch=32" 256 (tree_with (Some 32));
        Alcotest.(check int) "default" 256 (tree_with None));
    Alcotest.test_case "steal_batch 0 rejected" `Quick (fun () ->
        Alcotest.check_raises "validated"
          (Invalid_argument "Scheduler.run: steal_batch must be >= 1")
          (fun () ->
            Worksteal.Scheduler.Array_scheduler.run ~steal_batch:0 ~workers:1
              ~capacity:8 (fun _ -> ())));
  ]

(* Determinism of the RNG plumbing: same seed, same single-worker
   schedule, same result (trivially), but also repeated multi-worker
   runs must agree on the (deterministic) result value. *)
let repeatability =
  [
    Alcotest.test_case "results stable across runs" `Slow (fun () ->
        let module W = Worksteal.Workloads.Make (Worksteal.Scheduler.Abp_scheduler)
        in
        let a = W.fib ~workers:4 ~capacity:4096 19 in
        let b = W.fib ~workers:4 ~capacity:4096 19 in
        Alcotest.(check int) "same value" a b);
  ]

let () =
  Alcotest.run "worksteal"
    [
      ("fib", fib_tests);
      ("tree", tree_tests);
      ("inline fallback", inline_fallback_tests);
      ( "steal batching",
        steal_batch_semantics_tests @ steal_batch_scheduler_tests );
      ("repeatability", repeatability);
    ]

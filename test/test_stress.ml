(* Multi-domain stress with conservation checking for every
   implementation: unique values in, the popped sets and the remainder
   must exactly partition the pushed set (no loss, no duplication, no
   invention), and the representation invariants must hold at
   quiescence.

   The whole binary is in the slow tier: cases SKIP under a plain
   [dune runtest] and run with DCAS_SLOW_TESTS=1.  Each invocation
   draws a fresh Splitmix seed (printed on failure); set
   DCAS_STRESS_SEED=<n> to replay a failing run deterministically. *)

let stress_seed =
  match Sys.getenv_opt "DCAS_STRESS_SEED" with
  | Some s when String.trim s <> "" -> (
      match int_of_string_opt (String.trim s) with
      | Some v -> v
      | None -> failwith ("DCAS_STRESS_SEED is not an integer: " ^ s))
  | _ ->
      (* time-derived: different interleavings every CI run, replayable
         via the seed printed on failure *)
      Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e6))
      land 0x3FFF_FFFF

let array_impl (module A : Deque.Array_deque.ALGORITHM) : Test_support.impl =
  {
    impl_name = A.name;
    bounded = true;
    fresh =
      (fun ~capacity ->
        let d = A.make ~length:capacity () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> A.push_right d v)
          ~push_left:(fun v -> A.push_left d v)
          ~pop_right:(fun () -> A.pop_right d)
          ~pop_left:(fun () -> A.pop_left d)
          ~to_list:(Some (fun () -> A.unsafe_to_list d))
          ~invariant:(Some (fun () -> A.check_invariant d)));
  }

let list_impl (module L : Deque.List_deque.ALGORITHM) : Test_support.impl =
  {
    impl_name = L.name;
    bounded = false;
    fresh =
      (fun ~capacity:_ ->
        let d = L.make () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> L.push_right d v)
          ~push_left:(fun v -> L.push_left d v)
          ~pop_right:(fun () -> L.pop_right d)
          ~pop_left:(fun () -> L.pop_left d)
          ~to_list:(Some (fun () -> L.unsafe_to_list d))
          ~invariant:(Some (fun () -> L.check_invariant d)));
  }

let dummy_impl (module L : Deque.List_deque_dummy.ALGORITHM) : Test_support.impl
    =
  {
    impl_name = L.name;
    bounded = false;
    fresh =
      (fun ~capacity:_ ->
        let d = L.make () in
        Test_support.handle_of_ops
          ~push_right:(fun v -> L.push_right d v)
          ~push_left:(fun v -> L.push_left d v)
          ~pop_right:(fun () -> L.pop_right d)
          ~pop_left:(fun () -> L.pop_left d)
          ~to_list:(Some (fun () -> L.unsafe_to_list d))
          ~invariant:(Some (fun () -> L.check_invariant d)));
  }

let impls : Test_support.impl list =
  [
    array_impl (module Deque.Array_deque.Lockfree);
    array_impl (module Deque.Array_deque.Locked);
    array_impl (module Deque.Array_deque.Striped);
    list_impl (module Deque.List_deque.Lockfree);
    list_impl (module Deque.List_deque.Locked);
    list_impl (module Deque.List_deque.Striped);
    dummy_impl (module Deque.List_deque_dummy.Lockfree);
    Test_support.of_module (module Baselines.Lock_deque) ~bounded:true;
    Test_support.of_module (module Baselines.Spin_deque) ~bounded:true;
  ]

let stress_case threads iters capacity (impl : Test_support.impl) =
  Test_support.tiered
    (Printf.sprintf "%s: %d threads x %d ops (cap %d)" impl.impl_name threads
       iters capacity)
    `Slow
    (Test_support.with_seed_report ~seed:stress_seed (fun () ->
         Test_support.stress_conservation ~seed:stress_seed impl ~threads
           ~iters ~capacity ()))

(* A tight-capacity run maximizes boundary traffic (full/empty churn);
   a roomy run maximizes successful operations. *)
let tight = List.map (stress_case 4 8_000 4) impls
let roomy = List.map (stress_case 4 8_000 256) impls
let wide = List.map (stress_case 8 3_000 64) impls

(* Two-end dedicated traffic: pushers on the left, poppers on the
   right, checking FIFO-ish flow under the paper's headline usage. *)
let two_end_pipeline (impl : Test_support.impl) =
  Test_support.tiered
    (impl.impl_name ^ ": two-end pipeline")
    `Slow
    (fun () ->
      let h = impl.fresh ~capacity:1024 in
      let produced = Atomic.make 0 and consumed = Atomic.make 0 in
      let n = 20_000 in
      let producer () =
        for i = 1 to n do
          let rec push () =
            match h.Test_support.apply (Spec.Op.Push_left i) with
            | Spec.Op.Okay -> Atomic.incr produced
            | Spec.Op.Full -> push ()
            | Spec.Op.Empty | Spec.Op.Got _ -> assert false
          in
          push ()
        done
      in
      let consumer () =
        let got = ref 0 in
        while !got < n do
          match h.Test_support.apply Spec.Op.Pop_right with
          | Spec.Op.Got _ ->
              incr got;
              Atomic.incr consumed
          | Spec.Op.Empty -> Domain.cpu_relax ()
          | Spec.Op.Okay | Spec.Op.Full -> assert false
        done
      in
      let p = Domain.spawn producer and c = Domain.spawn consumer in
      Domain.join p;
      Domain.join c;
      Alcotest.(check int) "all values flowed through" n (Atomic.get consumed);
      Alcotest.(check int) "produced all" n (Atomic.get produced))

let pipelines =
  List.map two_end_pipeline
    [
      array_impl (module Deque.Array_deque.Lockfree);
      list_impl (module Deque.List_deque.Lockfree);
      dummy_impl (module Deque.List_deque_dummy.Lockfree);
    ]

let () =
  Alcotest.run "stress"
    [
      ("tight capacity", tight);
      ("roomy capacity", roomy);
      ("eight threads", wide);
      ("two-end pipeline", pipelines);
    ]

(* Crash-fault tolerance (experiment E22): fail-stop deaths injected
   at instrumented memory points — including mid-CASN, with a published
   undecided descriptor — and the recovery machinery on top:

   - orphaned-descriptor helping: a domain killed mid-CASN on each of
     the four deques leaves exactly one undecided descriptor; the
     survivors complete it ([helped_orphans] counts it exactly once)
     and the deque stays coherent (fail-stop sibling of E19's freezes);

   - crash storms under the runner: probabilistic deaths, conservation
     within the crash-commit uncertainty (a victim's fatal operation
     may or may not have committed);

   - the scheduler's per-task exception barrier and join-all [run];

   - supervised scheduling: dead workers' deques adopted, pending
     reconciled, [Supervisor.conserved] on every terminating run. *)

module Crash = Harness.Crash
module C_mem = Harness.Crash.Mem_crashing_casn (Dcas.Mem_lockfree)
module C_array = Deque.Array_deque.Make_batched (C_mem)
module C_list = Deque.List_deque.Make (C_mem)
module C_dummy = Deque.List_deque_dummy.Make (C_mem)
module C_casn = Deque.List_deque_casn.Make (C_mem)

let fresh () =
  Crash.reset ();
  Dcas.Mem_lockfree.reset_stats ()

let lf_stats () = Dcas.Mem_lockfree.stats ()

(* --- orphaned-descriptor helping, one deque at a time ---

   The victim pushes [warm] items, signals, then keeps pushing until a
   targeted mid-CASN kill lands: it dies immediately after installing
   its own descriptor, before the status is decided.  The survivor
   (the main domain, never enrolled) then forces every orphan to a
   decision and drains the deque: the item count must be [completed]
   or [completed + 1] — the fatal push either committed or not, but
   nothing else may be lost or duplicated. *)
let orphan_case ~name ~push ~pop ~pop_drain () =
  fresh ();
  let warm = 5 in
  let pushed = Atomic.make 0 in
  let popped = Atomic.make 0 in
  let warmed = Atomic.make false in
  let victim =
    Domain.spawn (fun () ->
        Crash.enroll ~tid:0;
        try
          let i = ref 0 in
          while true do
            incr i;
            (* mostly pushes, some pops: DCAS-shaped operations keep
               coming even if a bounded deque fills up, so the pending
               mid-CASN kill always finds a publish to land on *)
            if !i mod 3 <> 0 then begin
              if push !i then Atomic.incr pushed
            end
            else if pop () then Atomic.incr popped;
            if !i = warm then Atomic.set warmed true
          done
        with Crash.Died -> ())
  in
  while not (Atomic.get warmed) do
    Domain.cpu_relax ()
  done;
  Crash.kill ~mode:`Mid_casn ~tid:0 ();
  Domain.join victim;
  Alcotest.(check int) (name ^ ": one kill") 1 (Crash.kills ());
  Alcotest.(check int)
    (name ^ ": died mid-CASN with a published descriptor")
    1
    (Crash.mid_casn_kills ());
  Alcotest.(check int) (name ^ ": one orphan") 1 (Dcas.Mem_lockfree.orphans ());
  (* the survivor decides the orphan; idempotent on a second pass *)
  let seen = Dcas.Mem_lockfree.help_orphans () in
  Alcotest.(check int) (name ^ ": help_orphans sees it") 1 seen;
  ignore (Dcas.Mem_lockfree.help_orphans ());
  Alcotest.(check int)
    (name ^ ": helped exactly once")
    1
    (lf_stats ()).Dcas.Memory_intf.helped_orphans;
  (* conservation: the fatal operation — one push or pop — either
     committed or it did not; everything else must balance exactly *)
  let n = pop_drain () in
  let net = Atomic.get pushed - Atomic.get popped in
  if n < net - 1 || n > net + 1 then
    Alcotest.failf "%s: drained %d items, expected %d±1" name n net

let drain_left pop_left () =
  let rec go n = match pop_left () with `Value _ -> go (n + 1) | `Empty -> n in
  go 0

let committed_push = function `Okay -> true | `Full -> false
let committed_pop = function `Value _ -> true | `Empty -> false

let orphan_array () =
  let d = C_array.make ~length:64 () in
  orphan_case ~name:"array-deque"
    ~push:(fun v -> committed_push (C_array.push_right d v))
    ~pop:(fun () -> committed_pop (C_array.pop_left d))
    ~pop_drain:(drain_left (fun () -> C_array.pop_left d))
    ()

let orphan_list () =
  let d = C_list.make () in
  orphan_case ~name:"list-deque"
    ~push:(fun v -> committed_push (C_list.push_right d v))
    ~pop:(fun () -> committed_pop (C_list.pop_left d))
    ~pop_drain:(drain_left (fun () -> C_list.pop_left d))
    ()

let orphan_dummy () =
  let d = C_dummy.make () in
  orphan_case ~name:"list-deque-dummy"
    ~push:(fun v -> committed_push (C_dummy.push_right d v))
    ~pop:(fun () -> committed_pop (C_dummy.pop_left d))
    ~pop_drain:(drain_left (fun () -> C_dummy.pop_left d))
    ()

let orphan_casn () =
  let d = C_casn.make () in
  orphan_case ~name:"list-deque-casn"
    ~push:(fun v -> committed_push (C_casn.push_right d v))
    ~pop:(fun () -> committed_pop (C_casn.pop_left d))
    ~pop_drain:(drain_left (fun () -> C_casn.pop_left d))
    ()

(* --- probabilistic crash storm under the runner ---

   Several enrolled threads hammer one deque while seeded deaths land
   at instrumented points (some mid-CASN).  Afterwards: every death is
   accounted, every orphan is helped exactly once, and conservation
   holds within the crash-commit uncertainty — each death leaves at
   most one operation in doubt. *)
let storm () =
  fresh ();
  let threads = 4 in
  let d = C_array.make ~length:128 () in
  let pushes = Array.make threads 0 in
  let pops = Array.make threads 0 in
  Crash.configure ~prob:0.002 ~mid_casn_prob:0.7 ~max_kills:(threads - 1)
    ~seed:0xE22 ();
  let wd = Harness.Watchdog.create ~threads ~stall_after:30. () in
  let r =
    Harness.Runner.run ~seed:0xE22 ~watchdog:wd ~threads ~duration:0.3
      (fun ~tid ~rng ->
        Crash.enroll ~tid;
        if Harness.Splitmix.int rng ~bound:2 = 0 then begin
          match C_array.push_right d tid with
          | `Okay -> pushes.(tid) <- pushes.(tid) + 1
          | `Full -> ()
        end
        else
          match C_array.pop_left d with
          | `Value _ -> pops.(tid) <- pops.(tid) + 1
          | `Empty -> ())
  in
  Crash.disarm ();
  let kills = Crash.kills () in
  Alcotest.(check int) "deaths seen by the runner" kills
    (Harness.Runner.deaths r);
  Alcotest.(check bool) "at most max_kills" true (kills <= threads - 1);
  let helped = Dcas.Mem_lockfree.help_orphans () in
  Alcotest.(check int) "orphans = mid-CASN kills" (Crash.mid_casn_kills ())
    helped;
  Alcotest.(check int) "helped exactly once each" helped
    (lf_stats ()).Dcas.Memory_intf.helped_orphans;
  Alcotest.(check bool) "watchdog quiet" false (Harness.Watchdog.fired wd);
  let drained = drain_left (fun () -> C_array.pop_left d) () in
  let pushed = Array.fold_left ( + ) 0 pushes in
  let popped = Array.fold_left ( + ) 0 pops in
  let lo = pushed - popped - kills and hi = pushed - popped + kills in
  if drained < lo || drained > hi then
    Alcotest.failf
      "conservation: drained %d with pushed=%d popped=%d kills=%d (want \
       [%d,%d])"
      drained pushed popped kills lo hi;
  (* the structure keeps working for survivors *)
  (match C_array.push_right d 42 with
  | `Okay -> ()
  | `Full -> Alcotest.fail "post-storm push failed");
  Alcotest.(check int) "post-storm drain" 1
    (drain_left (fun () -> C_array.pop_left d) ())

(* --- scheduler: per-task exception barrier and join-all run --- *)

exception Boom

let barrier_case (module S : Worksteal.Worksteal_intf.SCHEDULER) () =
  fresh ();
  let n = 50 in
  let ran = Atomic.make 0 in
  let raised_out =
    try
      S.run ~workers:3 ~capacity:64 (fun ctx ->
          for i = 1 to n do
            S.spawn ctx (fun _ ->
                if i = 7 then raise Boom else Atomic.incr ran)
          done);
      false
    with Boom -> true
  in
  (* the raising task neither killed its worker nor stranded pending:
     every other task still ran, and the exception resurfaced *)
  Alcotest.(check bool) "first task exception re-raised" true raised_out;
  Alcotest.(check int) "all other tasks ran" (n - 1) (Atomic.get ran)

(* --- supervised scheduling over crash-wrapped deques --- *)

module C_array_adapter : Worksteal.Worksteal_intf.WORKSTEAL_DEQUE = struct
  type 'a t = 'a C_array.t

  let name = "array-deque+crash"
  let create ~capacity () = C_array.make ~length:capacity ()
  let push d v = match C_array.push_right d v with `Okay -> true | `Full -> false
  let pop d = match C_array.pop_right d with `Value v -> Some v | `Empty -> None
  let steal d = match C_array.pop_left d with `Value v -> Some v | `Empty -> None
  let steal_batch d ~max = C_array.pop_many_left d max
end

module C_sched = Worksteal.Scheduler.Make (C_array_adapter)

(* a fork-join tree of [degree]^[depth] leaves, counting leaf visits *)
let tree_root ~degree ~depth counter ctx =
  let module S = C_sched in
  let rec node d ctx =
    if d = 0 then Atomic.incr counter
    else
      for _ = 1 to degree do
        C_sched.spawn ctx (node (d - 1))
      done
  in
  ignore (module S : Worksteal.Worksteal_intf.SCHEDULER);
  node depth ctx

let supervised_quiet () =
  fresh ();
  let counter = Atomic.make 0 in
  let r =
    C_sched.run_supervised ~workers:3 ~capacity:256
      (tree_root ~degree:3 ~depth:5 counter)
  in
  Alcotest.(check int) "all leaves visited" 243 (Atomic.get counter);
  Alcotest.(check bool) "conserved" true (Worksteal.Supervisor.conserved r);
  Alcotest.(check int) "no deaths" 0 r.Worksteal.Supervisor.killed;
  Alcotest.(check int) "nothing reconciled" 0 r.Worksteal.Supervisor.reconciled;
  Alcotest.(check int) "no orphans" 0 r.Worksteal.Supervisor.orphans_helped

(* One worker kills itself mid-tree: its next spawn's push dies
   mid-CASN, the supervisor adopts its deque and reconciles the lost
   units.  The run must terminate, conserve, and help the orphan. *)
let supervised_kill () =
  fresh ();
  let counter = Atomic.make 0 in
  let killed_once = Atomic.make false in
  let root ctx =
    let rec node d ctx =
      if d = 0 then Atomic.incr counter
      else begin
        if
          d = 3
          && (not (Atomic.get killed_once))
          && Atomic.compare_and_set killed_once false true
        then Crash.kill ~mode:`Mid_casn ~tid:(C_sched.worker ctx) ();
        for _ = 1 to 3 do
          C_sched.spawn ctx (node (d - 1))
        done
      end
    in
    node 5 ctx
  in
  let wd = Harness.Watchdog.create ~threads:4 ~stall_after:30. () in
  let r = C_sched.run_supervised ~workers:4 ~capacity:512 ~watchdog:wd root in
  Alcotest.(check bool) "watchdog quiet" false (Harness.Watchdog.fired wd);
  Alcotest.(check int) "exactly one death" 1 r.Worksteal.Supervisor.killed;
  Alcotest.(check bool) "replacement spawned" true
    (r.Worksteal.Supervisor.replacements >= 1);
  Alcotest.(check bool) "conserved" true (Worksteal.Supervisor.conserved r);
  Alcotest.(check int) "orphans helped = mid-CASN kills"
    (Crash.mid_casn_kills ())
    r.Worksteal.Supervisor.orphans_helped;
  (* the death loses at most the executing task, one mid-push child
     and one stolen batch *)
  Alcotest.(check bool) "reconciliation bounded" true
    (r.Worksteal.Supervisor.reconciled <= 8 + 2);
  (* every leaf not lost with the victim was visited exactly once *)
  let lost = r.Worksteal.Supervisor.reconciled in
  let visited = Atomic.get counter in
  if visited > 243 then
    Alcotest.failf "leaves visited twice: %d > 243" visited;
  if lost = 0 && visited <> 243 then
    Alcotest.failf "nothing reconciled yet only %d/243 leaves" visited

let supervised_storm () =
  fresh ();
  let counter = Atomic.make 0 in
  Crash.configure ~prob:0.001 ~mid_casn_prob:0.5 ~max_kills:2 ~seed:0x522 ();
  let wd = Harness.Watchdog.create ~threads:4 ~stall_after:30. () in
  let r =
    C_sched.run_supervised ~workers:4 ~capacity:512 ~watchdog:wd
      (tree_root ~degree:3 ~depth:6 counter)
  in
  Crash.disarm ();
  Alcotest.(check bool) "watchdog quiet" false (Harness.Watchdog.fired wd);
  Alcotest.(check int) "every death accounted" (Crash.kills ())
    r.Worksteal.Supervisor.killed;
  Alcotest.(check bool) "conserved" true (Worksteal.Supervisor.conserved r);
  Alcotest.(check int) "orphans helped = mid-CASN kills"
    (Crash.mid_casn_kills ())
    r.Worksteal.Supervisor.orphans_helped;
  Alcotest.(check bool) "reconciliation bounded" true
    (r.Worksteal.Supervisor.reconciled
    <= r.Worksteal.Supervisor.killed * 10);
  let visited = Atomic.get counter in
  if visited > 729 then Alcotest.failf "leaves visited twice: %d" visited;
  if visited < 729 - (r.Worksteal.Supervisor.reconciled * 729) then
    Alcotest.failf "implausible leaf count %d" visited

let () =
  Alcotest.run "crash"
    [
      ( "orphaned descriptors",
        [
          Alcotest.test_case "array-deque: owner killed mid-CASN" `Quick
            orphan_array;
          Alcotest.test_case "list-deque: owner killed mid-CASN" `Quick
            orphan_list;
          Alcotest.test_case "list-deque-dummy: owner killed mid-CASN" `Quick
            orphan_dummy;
          Alcotest.test_case "list-deque-casn: owner killed mid-CASN" `Quick
            orphan_casn;
        ] );
      ( "crash storm",
        [ Alcotest.test_case "seeded storm conserves" `Slow storm ] );
      ( "scheduler barrier",
        [
          Alcotest.test_case "raising task does not kill its worker" `Quick
            (barrier_case (module Worksteal.Scheduler.Array_scheduler));
          Alcotest.test_case "raising task (abp)" `Quick
            (barrier_case (module Worksteal.Scheduler.Abp_scheduler));
        ] );
      ( "supervised scheduler",
        [
          Alcotest.test_case "crash-free run conserves" `Quick supervised_quiet;
          Alcotest.test_case "targeted mid-CASN kill recovers" `Slow
            supervised_kill;
          Alcotest.test_case "probabilistic storm recovers" `Slow
            supervised_storm;
        ] );
    ]

(* Shared machinery for testing deque implementations: sequential
   equivalence against the Section 2.2 oracle, qcheck operation
   generators, multi-domain stress with conservation checking, and
   history recording + linearizability checking on real domains.

   Implementations are presented as [impl] records of closures so the
   same machinery runs over every algorithm and memory model without
   fighting the type system over the parameterized ['a t]; each test
   file builds its impls with [of_module] (plus a [to_list] closure
   where the implementation offers quiescent inspection). *)

open Spec

module type DEQUE = Deque.Deque_intf.S

(* A live deque instance, as closures. *)
type handle = {
  apply : int Op.op -> int Op.res;
  to_list : (unit -> int list) option;  (* quiescent-only *)
  invariant : (unit -> (unit, string) result) option;  (* quiescent-only *)
}

(* An implementation under test. *)
type impl = {
  impl_name : string;
  bounded : bool;  (* does capacity bind (array) or not (list)? *)
  fresh : capacity:int -> handle;
}

let handle_of_ops ~push_right ~push_left ~pop_right ~pop_left ~to_list
    ~invariant =
  {
    apply =
      (fun (op : int Op.op) ->
        match op with
        | Op.Push_right v -> Deque.Deque_intf.res_of_push (push_right v)
        | Op.Push_left v -> Deque.Deque_intf.res_of_push (push_left v)
        | Op.Pop_right -> Deque.Deque_intf.res_of_pop (pop_right ())
        | Op.Pop_left -> Deque.Deque_intf.res_of_pop (pop_left ()));
    to_list;
    invariant;
  }

(* Build an impl from any module matching the uniform interface; no
   quiescent inspection. *)
let of_module (module D : DEQUE) ~bounded =
  {
    impl_name = D.name;
    bounded;
    fresh =
      (fun ~capacity ->
        let d = D.create ~capacity () in
        handle_of_ops
          ~push_right:(fun v -> D.push_right d v)
          ~push_left:(fun v -> D.push_left d v)
          ~pop_right:(fun () -> D.pop_right d)
          ~pop_left:(fun () -> D.pop_left d)
          ~to_list:None ~invariant:None);
  }

(* --- Sequential equivalence --- *)

(* Run [ops] single-threadedly against both the implementation and the
   oracle; every response must agree, and the implementation's
   quiescent contents (when inspectable) must match the oracle's. *)
let sequential_vs_oracle impl ~capacity ops =
  let h = impl.fresh ~capacity in
  let oracle =
    Seq_deque.make ?capacity:(if impl.bounded then Some capacity else None) ()
  in
  let rec go oracle i = function
    | [] -> (
        match h.to_list with
        | None -> Ok ()
        | Some to_list ->
            let got = to_list () and expect = Seq_deque.to_list oracle in
            if got = expect then Ok ()
            else
              Error
                (Printf.sprintf "final contents [%s], oracle [%s]"
                   (String.concat ";" (List.map string_of_int got))
                   (String.concat ";" (List.map string_of_int expect))))
    | op :: rest -> (
        let got = h.apply op in
        let oracle', expect = Seq_deque.apply oracle op in
        if not (Op.equal_res Int.equal got expect) then
          Error
            (Format.asprintf "op %d (%a): implementation %a, oracle %a" i
               (Op.pp_op Format.pp_print_int)
               op
               (Op.pp_res Format.pp_print_int)
               got
               (Op.pp_res Format.pp_print_int)
               expect)
        else
          match h.invariant with
          | Some check when i mod 7 = 0 -> (
              match check () with
              | Ok () -> go oracle' (i + 1) rest
              | Error e -> Error (Printf.sprintf "op %d: invariant: %s" i e))
          | Some _ | None -> go oracle' (i + 1) rest)
  in
  go oracle 0 ops

(* --- Operation generators --- *)

let op_gen =
  let open QCheck2.Gen in
  frequency
    [
      (3, map (fun v -> Op.Push_right v) (int_bound 999));
      (3, map (fun v -> Op.Push_left v) (int_bound 999));
      (2, return Op.Pop_right);
      (2, return Op.Pop_left);
    ]

let ops_gen ~max_len = QCheck2.Gen.(list_size (0 -- max_len) op_gen)

let print_ops ops =
  ops
  |> List.map (fun op -> Format.asprintf "%a" (Op.pp_op Format.pp_print_int) op)
  |> String.concat "; "

(* The standard qcheck test every implementation runs. *)
let qcheck_sequential ?(count = 200) ?(capacity = 8) impl =
  QCheck2.Test.make
    ~name:(impl.impl_name ^ ": random ops agree with oracle")
    ~count ~print:print_ops (ops_gen ~max_len:300) (fun ops ->
      match sequential_vs_oracle impl ~capacity ops with
      | Ok () -> true
      | Error e -> QCheck2.Test.fail_report e)

(* --- Test tiers --- *)

(* [dune runtest] runs the fast tier only; setting DCAS_SLOW_TESTS=1
   (any value other than "", "0" or "false") unlocks the multi-domain
   stress tier.  Gated cases report as SKIP rather than silently
   vanishing, so the fast tier still shows what it did not run. *)
let slow_enabled =
  match Sys.getenv_opt "DCAS_SLOW_TESTS" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

let tiered name speed f =
  Alcotest.test_case name speed (fun () ->
      if slow_enabled then f () else Alcotest.skip ())

(* Re-raise with the run's seed on stderr, so a failing randomized
   stress run can be replayed with DCAS_STRESS_SEED=<seed>. *)
let with_seed_report ~seed f () =
  try f ()
  with e ->
    Printf.eprintf "\n*** replay this run with DCAS_STRESS_SEED=%d ***\n%!"
      seed;
    raise e

(* --- Multi-domain stress --- *)

(* Every pushed value is unique (tid, seq); after the run, the popped
   sets and the remainder must partition the pushed set.  Hash tables
   are per-thread so recording is race-free.

   [per_op ~tid ~i] runs on the worker before each operation — the hook
   for injecting adversity mid-run (arming {!Harness.Stall} requests,
   toggling chaos) without forking the conservation machinery.
   [watchdog] is passed through to the runner. *)
let stress_conservation ?seed ?watchdog ?(per_op = fun ~tid:_ ~i:_ -> ()) impl
    ~threads ~iters ~capacity () =
  let h = impl.fresh ~capacity in
  let popped : (int, unit) Hashtbl.t array =
    Array.init threads (fun _ -> Hashtbl.create 1024)
  in
  let pushed : (int, unit) Hashtbl.t array =
    Array.init threads (fun _ -> Hashtbl.create 1024)
  in
  let encode tid seq = (tid * 10_000_000) + seq in
  let _elapsed =
    Harness.Runner.run_fixed ?seed ?watchdog ~threads ~iters
      (fun ~tid ~rng ~i ->
        per_op ~tid ~i;
        match Harness.Splitmix.int rng ~bound:4 with
        | 0 ->
            if h.apply (Op.Push_right (encode tid i)) = Op.Okay then
              Hashtbl.replace pushed.(tid) (encode tid i) ()
        | 1 ->
            if h.apply (Op.Push_left (encode tid i)) = Op.Okay then
              Hashtbl.replace pushed.(tid) (encode tid i) ()
        | 2 -> (
            match h.apply Op.Pop_right with
            | Op.Got v -> Hashtbl.replace popped.(tid) v ()
            | Op.Empty -> ()
            | Op.Okay | Op.Full -> assert false)
        | _ -> (
            match h.apply Op.Pop_left with
            | Op.Got v -> Hashtbl.replace popped.(tid) v ()
            | Op.Empty -> ()
            | Op.Okay | Op.Full -> assert false))
  in
  (match h.invariant with
  | Some check -> (
      match check () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "post-stress invariant: %s" e)
  | None -> ());
  let remaining = match h.to_list with Some f -> f () | None -> [] in
  let all_pushed = Hashtbl.create 4096 in
  Array.iter
    (fun tbl -> Hashtbl.iter (fun v () -> Hashtbl.replace all_pushed v ()) tbl)
    pushed;
  let all_popped = Hashtbl.create 4096 in
  Array.iter
    (fun tbl ->
      Hashtbl.iter
        (fun v () ->
          if Hashtbl.mem all_popped v then
            Alcotest.failf "value %d popped twice" v;
          if not (Hashtbl.mem all_pushed v) then
            Alcotest.failf "value %d popped but never pushed" v;
          Hashtbl.replace all_popped v ())
        tbl)
    popped;
  List.iter
    (fun v ->
      if Hashtbl.mem all_popped v then
        Alcotest.failf "value %d both popped and still present" v;
      if not (Hashtbl.mem all_pushed v) then
        Alcotest.failf "value %d present but never pushed" v)
    remaining;
  match h.to_list with
  | Some _ ->
      Alcotest.(check int)
        "pushes = pops + remaining"
        (Hashtbl.length all_pushed)
        (Hashtbl.length all_popped + List.length remaining)
  | None ->
      Alcotest.(check bool)
        "pops <= pushes" true
        (Hashtbl.length all_popped <= Hashtbl.length all_pushed)

(* --- Linearizability of real concurrent histories --- *)

let record_round impl ~threads ~ops_per_thread ~capacity ~seed =
  let h = impl.fresh ~capacity in
  let recorder = Spec.History.Recorder.create ~threads in
  let master = Harness.Splitmix.create ~seed in
  let rngs = Array.init threads (fun _ -> Harness.Splitmix.split master) in
  let started = Atomic.make 0 in
  let worker tid () =
    let rng = rngs.(tid) in
    Atomic.incr started;
    while Atomic.get started < threads do
      Domain.cpu_relax ()
    done;
    for i = 1 to ops_per_thread do
      let op =
        match Harness.Splitmix.int rng ~bound:4 with
        | 0 -> Op.Push_right ((tid * 1000) + i)
        | 1 -> Op.Push_left ((tid * 1000) + i)
        | 2 -> Op.Pop_right
        | _ -> Op.Pop_left
      in
      ignore
        (Spec.History.Recorder.record recorder ~thread:tid op (fun () ->
             h.apply op))
    done
  in
  let ds = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  let history = Spec.History.Recorder.history recorder in
  Spec.Linearizability.check_deque
    ?capacity:(if impl.bounded then Some capacity else None)
    history
  |> Result.map_error (fun () ->
         Format.asprintf "%a"
           (Spec.History.pp
              (Op.pp_op Format.pp_print_int)
              (Op.pp_res Format.pp_print_int))
           history)

let check_linearizable_rounds impl ~threads ~ops_per_thread ~capacity ~rounds =
  for seed = 1 to rounds do
    match record_round impl ~threads ~ops_per_thread ~capacity ~seed with
    | Ok _witness -> ()
    | Error history ->
        Alcotest.failf "round %d: history not linearizable:@.%s" seed history
  done

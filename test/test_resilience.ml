(* Resilience: the robustness layers composed and pushed hard.

   Conservation leg (slow tier): all four deques run multi-domain under
   the full adversary at once — spurious DCAS/CASN failures, bounded
   chaos freezes AND cooperative mid-operation stalls injected through
   the per-op hook — and must still neither lose nor duplicate a value.

   Policy leg (fast tier): the Core.Policy wrapper's service-level
   contract — deadlines bound wall-clock time even under 20% injected
   DCAS failure, Reject/Retry/Spill degrade as documented, and the
   Spill chain conserves values across primary + overflow. *)

(* chaos + self-stall + freezer instrumentation under every deque *)
module Chaos = Dcas.Mem_chaos.Make (Dcas.Mem_lockfree)
module Mem = Harness.Stall.Mem_stalling_casn (Chaos)
module R_array = Deque.Array_deque.Make (Mem)
module R_list = Deque.List_deque.Make (Mem)
module R_dummy = Deque.List_deque_dummy.Make (Mem)
module R_casn = Deque.List_deque_casn.Make (Mem)

let impl_of ~name ~bounded ~fresh : Test_support.impl =
  { Test_support.impl_name = name; bounded; fresh }

let array_impl =
  impl_of ~name:"array under chaos+stall" ~bounded:true ~fresh:(fun ~capacity ->
      let d = R_array.make ~length:capacity () in
      Test_support.handle_of_ops
        ~push_right:(fun v -> R_array.push_right d v)
        ~push_left:(fun v -> R_array.push_left d v)
        ~pop_right:(fun () -> R_array.pop_right d)
        ~pop_left:(fun () -> R_array.pop_left d)
        ~to_list:(Some (fun () -> R_array.unsafe_to_list d))
        ~invariant:(Some (fun () -> R_array.check_invariant d)))

let list_impl =
  impl_of ~name:"list under chaos+stall" ~bounded:false ~fresh:(fun ~capacity:_ ->
      let d = R_list.make () in
      Test_support.handle_of_ops
        ~push_right:(fun v -> R_list.push_right d v)
        ~push_left:(fun v -> R_list.push_left d v)
        ~pop_right:(fun () -> R_list.pop_right d)
        ~pop_left:(fun () -> R_list.pop_left d)
        ~to_list:(Some (fun () -> R_list.unsafe_to_list d))
        ~invariant:(Some (fun () -> R_list.check_invariant d)))

let dummy_impl =
  impl_of ~name:"dummy under chaos+stall" ~bounded:false
    ~fresh:(fun ~capacity:_ ->
      let d = R_dummy.make () in
      Test_support.handle_of_ops
        ~push_right:(fun v -> R_dummy.push_right d v)
        ~push_left:(fun v -> R_dummy.push_left d v)
        ~pop_right:(fun () -> R_dummy.pop_right d)
        ~pop_left:(fun () -> R_dummy.pop_left d)
        ~to_list:(Some (fun () -> R_dummy.unsafe_to_list d))
        ~invariant:(Some (fun () -> R_dummy.check_invariant d)))

module R_st = Baselines.St_deque.Make (Baselines.St_deque.Of_casn (Mem))

let st_impl =
  impl_of ~name:"st under chaos+stall" ~bounded:false
    ~fresh:(fun ~capacity:_ ->
      let d = R_st.make () in
      Test_support.handle_of_ops
        ~push_right:(fun v -> R_st.push_right d v)
        ~push_left:(fun v -> R_st.push_left d v)
        ~pop_right:(fun () -> R_st.pop_right d)
        ~pop_left:(fun () -> R_st.pop_left d)
        ~to_list:(Some (fun () -> R_st.unsafe_to_list d))
        ~invariant:(Some (fun () -> R_st.check_invariant d)))

let casn_impl =
  impl_of ~name:"3cas under chaos+stall" ~bounded:false
    ~fresh:(fun ~capacity:_ ->
      let d = R_casn.make () in
      Test_support.handle_of_ops
        ~push_right:(fun v -> R_casn.push_right d v)
        ~push_left:(fun v -> R_casn.push_left d v)
        ~pop_right:(fun () -> R_casn.pop_right d)
        ~pop_left:(fun () -> R_casn.pop_left d)
        ~to_list:(Some (fun () -> R_casn.unsafe_to_list d))
        ~invariant:(Some (fun () -> R_casn.check_invariant d)))

(* Each worker periodically arms a cooperative stall for itself — a
   short sleep in the middle of a later operation — layered on top of
   the chaos substrate's own spurious failures and bounded freezes,
   with a (generously thresholded) watchdog confirming the system
   never wedges. *)
let conservation_case impl =
  Test_support.tiered
    (impl.Test_support.impl_name ^ ": conservation")
    `Slow
    (fun () ->
      Chaos.configure ~fail_prob:0.2 ~delay_prob:0.02 ~max_delay:16
        ~freeze_prob:0.001 ~freeze_spins:1_000 ~seed:0xD15EA5E ();
      Fun.protect ~finally:Chaos.disarm (fun () ->
          Chaos.reset_stats ();
          let watchdog = Harness.Watchdog.create ~stall_after:30. ~threads:4 () in
          Test_support.stress_conservation ~seed:0xD15EA5E ~watchdog
            ~per_op:(fun ~tid ~i ->
              if i mod 400 = (17 * tid) mod 400 then
                Harness.Stall.request ~after_ops:3 ~duration:0.0005)
            impl ~threads:4 ~iters:3_000 ~capacity:64 ();
          let s = Chaos.stats () in
          Alcotest.(check bool) "spurious faults injected" true
            (s.chaos_spurious > 0);
          Alcotest.(check bool) "watchdog stayed quiet" false
            (Harness.Watchdog.fired watchdog)))

(* --- Policy: deadlines, degradation, conservation --- *)

module P = Deque.Policy.Make (Deque.Array_deque.Lockfree)
module PC = Deque.Policy.Make (R_array)

let fill_via_policy push n =
  for i = 1 to n do
    match push i with
    | `Okay -> ()
    | `Full | `Timeout -> Alcotest.failf "prefill push %d did not land" i
  done

let test_policy_reject () =
  let d = P.create ~capacity:4 () in
  fill_via_policy (fun v -> P.push_right d v) 4;
  Alcotest.(check bool) "full surfaces immediately" true
    (P.push_right d 99 = `Full);
  Alcotest.(check bool) "other side full too" true (P.push_left d 99 = `Full);
  let s = P.stats d in
  Alcotest.(check int) "rejections counted" 2 s.Deque.Policy.full_rejections;
  Alcotest.(check int) "successes counted" 4 s.Deque.Policy.ok;
  Alcotest.(check int) "no retries under Reject" 0 s.Deque.Policy.retries

let test_policy_retry_cap () =
  let d = P.create ~full:(Deque.Policy.Retry { max_attempts = 3 }) ~capacity:2 () in
  fill_via_policy (fun v -> P.push_right d v) 2;
  Alcotest.(check bool) "still Full after bounded retries" true
    (P.push_right d 99 = `Full);
  let s = P.stats d in
  Alcotest.(check int) "two extra attempts burned" 2 s.Deque.Policy.retries;
  Alcotest.check_raises "max_attempts validated"
    (Invalid_argument "Policy.create: max_attempts must be >= 1") (fun () ->
      ignore (P.create ~full:(Deque.Policy.Retry { max_attempts = 0 })
                ~capacity:2 ()))

let test_policy_spill_conservation () =
  let d = P.create ~full:Deque.Policy.Spill ~capacity:4 () in
  for i = 1 to 10 do
    match P.push_right d i with
    | `Okay -> ()
    | `Full -> Alcotest.failf "spill push %d reported Full" i
    | `Timeout -> Alcotest.failf "spill push %d reported Timeout" i
  done;
  let s = P.stats d in
  Alcotest.(check int) "overflow absorbed the excess" 6 s.Deque.Policy.spilled;
  Alcotest.(check int) "overflow size visible" 6 s.Deque.Policy.overflow_size;
  (* primary + overflow hold exactly the pushed set *)
  let held =
    Deque.Array_deque.Lockfree.unsafe_to_list (P.primary d)
    @ P.overflow_list d
  in
  Alcotest.(check (list int)) "nothing lost, nothing duplicated"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.sort compare held);
  (* pops drain primary first, then the overflow, then report Empty *)
  let popped = ref [] in
  let rec drain () =
    match P.pop_right d with
    | `Value v ->
        popped := v :: !popped;
        drain ()
    | `Empty -> ()
    | `Timeout -> Alcotest.fail "no deadline given, Timeout impossible"
  in
  drain ();
  Alcotest.(check (list int)) "drained the full set"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.sort compare !popped);
  let s = P.stats d in
  (* each parked value leaves the overflow exactly once — either via
     the pop fallback or via an opportunistic refill *)
  Alcotest.(check int) "every parked value left the overflow once" 6
    (s.Deque.Policy.spill_drained + s.Deque.Policy.refilled);
  Alcotest.(check int) "overflow empty again" 0 s.Deque.Policy.overflow_size

(* The drain-back path specifically: a pop that frees a slot must pull
   a parked value back into the primary, so the backlog shrinks under
   mixed traffic without the primary ever going empty. *)
let test_policy_spill_refill () =
  let d = P.create ~full:Deque.Policy.Spill ~capacity:2 () in
  fill_via_policy (fun v -> P.push_right d v) 4;
  let s = P.stats d in
  Alcotest.(check int) "two values parked" 2 s.Deque.Policy.spilled;
  Alcotest.(check int) "no refill while the primary is full" 0
    s.Deque.Policy.refilled;
  (match P.pop_right d with
  | `Value _ -> ()
  | `Empty | `Timeout -> Alcotest.fail "pop of a full spill wrapper");
  let s = P.stats d in
  Alcotest.(check int) "the freed slot was refilled" 1
    s.Deque.Policy.refilled;
  Alcotest.(check int) "one fewer value parked" 1
    s.Deque.Policy.overflow_size;
  let rec drain acc =
    match P.pop_right d with
    | `Value v -> drain (v :: acc)
    | `Empty -> acc
    | `Timeout -> Alcotest.fail "no deadline given, Timeout impossible"
  in
  let rest = drain [] in
  Alcotest.(check int) "all values conserved" 3 (List.length rest);
  let s = P.stats d in
  Alcotest.(check int) "parked values accounted exactly once" 2
    (s.Deque.Policy.spill_drained + s.Deque.Policy.refilled);
  Alcotest.(check int) "overflow drained" 0 s.Deque.Policy.overflow_size

let test_policy_no_deadline_is_immediate () =
  let d = P.create ~capacity:4 () in
  Alcotest.(check bool) "empty pop returns at once" true
    (P.pop_left d = `Empty);
  let s = P.stats d in
  Alcotest.(check int) "miss counted" 1 s.Deque.Policy.empty_misses

(* Acceptance bound: a deadline op must not overrun its budget by more
   than 50ms even with 20% spurious DCAS failure injected underneath. *)
let deadline_grace = 0.05

let test_policy_deadline_under_chaos () =
  Chaos.configure ~fail_prob:0.2 ~seed:0xDEAD11 ();
  Fun.protect ~finally:Chaos.disarm (fun () ->
      let d = PC.create ~capacity:2 () in
      fill_via_policy (fun v -> PC.push_right ?deadline:None d v) 2;
      let deadline = 0.08 in
      let t0 = Unix.gettimeofday () in
      let r = PC.push_right ~deadline d 99 in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "full push times out" true (r = `Timeout);
      Alcotest.(check bool)
        (Printf.sprintf "waited at least ~the budget (%.3fs)" elapsed)
        true
        (elapsed >= deadline *. 0.5);
      Alcotest.(check bool)
        (Printf.sprintf "overran by < 50ms (%.3fs)" elapsed)
        true
        (elapsed <= deadline +. deadline_grace);
      let t0 = Unix.gettimeofday () in
      let r = PC.pop_right ~deadline d in
      let elapsed = Unix.gettimeofday () -. t0 in
      (match r with
      | `Value _ -> ()
      | `Empty | `Timeout -> Alcotest.fail "pop of a full deque must succeed");
      Alcotest.(check bool) "successful op well under deadline" true
        (elapsed <= deadline +. deadline_grace);
      (* drain, then an empty pop must also respect its budget *)
      ignore (PC.pop_left ?deadline:None d);
      let t0 = Unix.gettimeofday () in
      let r = PC.pop_left ~deadline d in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "empty pop times out" true (r = `Timeout);
      Alcotest.(check bool)
        (Printf.sprintf "pop overran by < 50ms (%.3fs)" elapsed)
        true
        (elapsed <= deadline +. deadline_grace);
      let s = PC.stats d in
      Alcotest.(check int) "timeouts counted" 2 s.Deque.Policy.timeouts;
      Alcotest.(check bool) "deadline ops retried underneath" true
        (s.Deque.Policy.retries > 0);
      Alcotest.(check bool) "worst-case latency recorded" true
        (s.Deque.Policy.max_latency_ns > 0))

(* Spill under real contention: many domains push past capacity and pop
   concurrently; the primary + overflow chain must conserve values.
   [bounded = false]: with Spill armed, capacity never refuses. *)
let spill_impl =
  impl_of ~name:"array+spill policy" ~bounded:false ~fresh:(fun ~capacity ->
      let d = P.create ~full:Deque.Policy.Spill ~capacity () in
      Test_support.handle_of_ops
        ~push_right:(fun v -> P.push_simple d ~side:`Right v)
        ~push_left:(fun v -> P.push_simple d ~side:`Left v)
        ~pop_right:(fun () -> P.pop_simple d ~side:`Right)
        ~pop_left:(fun () -> P.pop_simple d ~side:`Left)
        ~to_list:
          (Some
             (fun () ->
               Deque.Array_deque.Lockfree.unsafe_to_list (P.primary d)
               @ P.overflow_list d))
        ~invariant:None)

let spill_stress =
  Test_support.tiered "spill policy: multi-domain conservation" `Slow
    (fun () ->
      Test_support.stress_conservation ~seed:0x5B111 spill_impl ~threads:4
        ~iters:4_000 ~capacity:8 ())

let () =
  Alcotest.run "resilience"
    [
      ( "conservation under chaos + stalls (E19)",
        [
          conservation_case array_impl;
          conservation_case list_impl;
          conservation_case dummy_impl;
          conservation_case casn_impl;
          conservation_case st_impl;
        ] );
      ( "degradation policies (E20)",
        [
          Alcotest.test_case "reject backpressure" `Quick test_policy_reject;
          Alcotest.test_case "bounded retry cap" `Quick test_policy_retry_cap;
          Alcotest.test_case "spill conserves values" `Quick
            test_policy_spill_conservation;
          Alcotest.test_case "spill drains back opportunistically" `Quick
            test_policy_spill_refill;
          Alcotest.test_case "no deadline, no waiting" `Quick
            test_policy_no_deadline_is_immediate;
          Alcotest.test_case "deadlines bound time under 20% chaos" `Quick
            test_policy_deadline_under_chaos;
          spill_stress;
        ] );
    ]

(* The randomized schedule fuzzer: both families must find the planted
   linearizability bug, shrink it, and emit a replay token that
   reproduces the shrunk failure byte-for-byte; the correct deques must
   survive the same budget; and the whole pipeline must be a
   deterministic function of the seed.  Everything runs over the
   single-domain effect-based model, so these are fast-tier tests. *)

open Spec.Op

let buggy () =
  Modelcheck.Scenario.list_deque_buggy ~name:"buggy" ~prefill:[ 1; 2 ]
    [ [ Pop_right; Pop_right ]; [ Pop_left ] ]

let correct () =
  Modelcheck.Scenario.list_deque ~name:"correct" ~prefill:[ 1; 2 ]
    [ [ Pop_right; Pop_right ]; [ Pop_left ] ]

let ops_count threads =
  Array.fold_left (fun acc s -> acc + List.length s) 0 threads

let find_violation ~strategy ~seed scenario =
  let report = Modelcheck.Fuzz.run ~runs:500 ~seed ~strategy scenario in
  match report.Modelcheck.Fuzz.violation with
  | Some c -> c
  | None -> Alcotest.fail "fuzzer missed the planted bug in 500 runs"

let violation_tests =
  [
    Alcotest.test_case "pct finds the planted bug and shrinks it" `Quick
      (fun () ->
        let scenario = buggy () in
        let c = find_violation ~strategy:(Modelcheck.Fuzz.Pct 3) ~seed:7 scenario in
        Alcotest.(check bool) "shrunk to no more ops than the original" true
          (ops_count c.Modelcheck.Fuzz.threads
          <= ops_count scenario.Modelcheck.Scenario.threads);
        (* the planted bug needs both right-pops and nothing else *)
        Alcotest.(check int) "minimal counterexample is two ops" 2
          (ops_count c.Modelcheck.Fuzz.threads));
    Alcotest.test_case "uniform random walk finds it too" `Quick (fun () ->
        ignore (find_violation ~strategy:Modelcheck.Fuzz.Uniform ~seed:3 (buggy ())));
    Alcotest.test_case "replay token reproduces the failure byte-for-byte"
      `Quick (fun () ->
        let scenario = buggy () in
        let c = find_violation ~strategy:(Modelcheck.Fuzz.Pct 3) ~seed:7 scenario in
        match Modelcheck.Fuzz.replay scenario ~token:c.Modelcheck.Fuzz.token with
        | Error e -> Alcotest.fail e
        | Ok (_, None) -> Alcotest.fail "replay did not reproduce the failure"
        | Ok (threads, Some f) ->
            let orig = c.Modelcheck.Fuzz.failure in
            Alcotest.(check (list int))
              "same schedule" orig.Modelcheck.Fuzz.schedule
              f.Modelcheck.Fuzz.schedule;
            Alcotest.(check string) "same reason" orig.Modelcheck.Fuzz.reason
              f.Modelcheck.Fuzz.reason;
            Alcotest.(check string)
              "same history" orig.Modelcheck.Fuzz.pretty_history
              f.Modelcheck.Fuzz.pretty_history;
            Alcotest.(check string)
              "token is a fixed point"
              c.Modelcheck.Fuzz.token
              (Modelcheck.Fuzz.token_of threads f.Modelcheck.Fuzz.schedule));
    Alcotest.test_case "fuzzing is deterministic in the seed" `Quick (fun () ->
        let run () =
          find_violation ~strategy:(Modelcheck.Fuzz.Pct 3) ~seed:99 (buggy ())
        in
        let a = run () and b = run () in
        Alcotest.(check string) "same token" a.Modelcheck.Fuzz.token
          b.Modelcheck.Fuzz.token;
        Alcotest.(check int) "same discovery run" a.Modelcheck.Fuzz.found_at
          b.Modelcheck.Fuzz.found_at);
    Alcotest.test_case "buggy schedule passes on the correct deque" `Quick
      (fun () ->
        let c = find_violation ~strategy:(Modelcheck.Fuzz.Pct 3) ~seed:7 (buggy ()) in
        match Modelcheck.Fuzz.replay (correct ()) ~token:c.Modelcheck.Fuzz.token with
        | Error e -> Alcotest.fail e
        | Ok (_, Some f) ->
            Alcotest.failf "correct deque failed: %s" f.Modelcheck.Fuzz.reason
        | Ok (_, None) -> ());
  ]

let clean_tests =
  let clean name scenario strategy seed =
    Alcotest.test_case name `Quick (fun () ->
        let report =
          Modelcheck.Fuzz.run ~runs:300 ~seed ~strategy scenario
        in
        match report.Modelcheck.Fuzz.violation with
        | None ->
            Alcotest.(check int) "full budget executed" 300
              report.Modelcheck.Fuzz.executed
        | Some c ->
            Alcotest.failf "false positive: %s (token %s)"
              c.Modelcheck.Fuzz.failure.Modelcheck.Fuzz.reason
              c.Modelcheck.Fuzz.token)
  in
  [
    clean "correct list deque survives pct" (correct ()) (Modelcheck.Fuzz.Pct 3) 7;
    clean "correct list deque survives uniform" (correct ())
      Modelcheck.Fuzz.Uniform 7;
    clean "array deque survives pct"
      (Modelcheck.Scenario.array_deque ~name:"arr" ~length:3 ~prefill:[ 1; 2 ]
         [ [ Pop_right; Push_right 5 ]; [ Pop_left; Push_left 6 ] ])
      (Modelcheck.Fuzz.Pct 3) 13;
    clean "batched array deque survives pct"
      (Modelcheck.Scenario.array_deque_batched ~name:"arr-b" ~length:3
         ~prefill:[ 1; 2 ]
         [ [ Pop_right; Push_right 5 ]; [ Pop_left; Push_left 6 ] ])
      (Modelcheck.Fuzz.Pct 3) 13;
    clean "batched list fallback survives uniform"
      (Modelcheck.Scenario.list_deque_batched ~name:"list-b" ~prefill:[ 1; 2 ]
         [ [ Pop_right; Push_right 3 ]; [ Pop_left ] ])
      Modelcheck.Fuzz.Uniform 17;
    clean "list deque under chaos survives uniform"
      (Modelcheck.Scenario.list_deque_chaos ~fail_prob:0.15 ~chaos_seed:5
         ~name:"chaos" ~prefill:[ 1; 2 ]
         [ [ Pop_right; Push_right 3 ]; [ Pop_left ] ])
      Modelcheck.Fuzz.Uniform 21;
  ]

let token_tests =
  [
    Alcotest.test_case "token round-trips" `Quick (fun () ->
        let threads =
          [| [ Push_right 3; Pop_left ]; []; [ Pop_right ] |]
        in
        let sched = [ 0; 2; 2; 0; 1 ] in
        let token = Modelcheck.Fuzz.token_of threads sched in
        match Modelcheck.Fuzz.parse_token token with
        | Error e -> Alcotest.fail e
        | Ok (threads', sched') ->
            Alcotest.(check bool) "threads preserved" true (threads = threads');
            Alcotest.(check (list int)) "schedule preserved" sched sched');
    Alcotest.test_case "token parse errors are reported" `Quick (fun () ->
        List.iter
          (fun tok ->
            match Modelcheck.Fuzz.parse_token tok with
            | Ok _ -> Alcotest.failf "accepted bad token %S" tok
            | Error _ -> ())
          [
            "";
            "nope";
            "dqf2/qr/0";
            "dqf1/zz/0";
            "dqf1/qr/x";
            "dqf1/qr/-1";
            "dqf1/pr:abc/0";
          ]);
    Alcotest.test_case "empty schedule and idle threads round-trip" `Quick
      (fun () ->
        let threads = [| []; [] |] in
        let token = Modelcheck.Fuzz.token_of threads [] in
        match Modelcheck.Fuzz.parse_token token with
        | Error e -> Alcotest.fail e
        | Ok (threads', sched') ->
            Alcotest.(check bool) "threads preserved" true (threads = threads');
            Alcotest.(check (list int)) "schedule empty" [] sched');
  ]

let () =
  Alcotest.run "fuzz"
    [
      ("violations", violation_tests);
      ("clean runs", clean_tests);
      ("tokens", token_tests);
    ]

Schedule fuzzing is a deterministic function of the seed, so its
failure report — including the shrunk counterexample and the replay
token — is stable output.

PCT fuzzing finds the planted linearizability bug (the pop that drops
the logical-delete bit), shrinks it to the two-pop counterexample, and
exits 1.

  $ ../../bin/explore.exe --algo list-broken --prefill 1,2 --thread qr,qr --thread ql --pct 200 --seed 7
  FUZZ VIOLATION (run 22/200, pct depth=3, seed 7, 5 shrink steps)
  reason: history is not linearizable
  threads: qr,qr | (idle)
  schedule: 0 0 0 0 0 0 0 1
  history:
  [t0    0-   1] popRight() -> 2
  [t0    2-   3] popRight() -> empty
  replay: dqf1/qr,qr|/0.0.0.0.0.0.0.1
  [1]


The replay token reproduces the identical failing schedule,
byte-for-byte, without any searching.

  $ ../../bin/explore.exe --algo list-broken --prefill 1,2 --replay 'dqf1/qr,qr|/0.0.0.0.0.0.0.1'
  REPLAY VIOLATION
  reason: history is not linearizable
  threads: qr,qr | (idle)
  schedule: 0 0 0 0 0 0 0 1
  history:
  [t0    0-   1] popRight() -> 2
  [t0    2-   3] popRight() -> empty
  replay: dqf1/qr,qr|/0.0.0.0.0.0.0.1
  [1]


The same schedule is fine on the correct deque: the bug lives in the
algorithm, not the script.

  $ ../../bin/explore.exe --algo list --prefill 1,2 --replay 'dqf1/qr,qr|/0.0.0.0.0.0.0.1'
  replay ok: schedule passed

And the same fuzzing budget finds nothing on the correct deques — with
or without injected DCAS faults.

  $ ../../bin/explore.exe --algo list --prefill 1,2 --thread qr,qr --thread ql --pct 200 --seed 7
  fuzz ok: no violation in 200 runs (pct depth=3, seed 7)

  $ ../../bin/explore.exe --algo list-chaos --chaos-fail 0.15 --prefill 1,2 --thread qr,pr:3 --thread ql --fuzz 100 --seed 9
  fuzz ok: no violation in 100 runs (uniform, seed 9)
  chaos: spurious=200 delays=0 frozen-ops=0

Bounded freezes at shared-memory access points (--chaos-freeze) compose
with the spurious failures; the run summary counts the frozen ops.

  $ ../../bin/explore.exe --algo list-chaos --chaos-fail 0.15 --chaos-freeze 0.05 --prefill 1,2 --thread qr,pr:3 --thread ql --fuzz 100 --seed 9
  fuzz ok: no violation in 100 runs (uniform, seed 9)
  chaos: spurious=124 delays=0 frozen-ops=1418

The uniform walk also finds the planted bug.

  $ ../../bin/explore.exe --algo list-broken --prefill 1,2 --thread qr,qr --thread ql --fuzz 500 --seed 3 > /dev/null
  [1]

Test tiers: the multi-domain stress binary SKIPs every case unless
DCAS_SLOW_TESTS=1 unlocks the slow tier (grep exits 1 because nothing
but SKIPs are found).

  $ ../test_stress.exe test "tight capacity" 0 2> /dev/null | grep -c '\[OK\]'
  0
  [1]

  $ DCAS_SLOW_TESTS=1 ../test_stress.exe test "tight capacity" 0 2> /dev/null | grep -c '\[OK\]'
  1

The benchmark driver can mirror its tables into a JSON document with a
stable schema, and re-parse it for validation.  Timings vary, so the
run's stdout is discarded and only the deterministic --check-json
summary is asserted: the document parses, carries the expected schema
id, and holds the E15 sweep rows (3 substrates x 2 domain counts in
quick mode).

  $ ../../bench/main.exe --quick e15 --json out.json > /dev/null
  $ ../../bench/main.exe --check-json out.json
  schema: dcas-deques-bench/1
  e15: 6 rows

Quick E15 must witness the pre-validation fast path actually firing:
the forced-stale sanity counter is exact, so grep for it.

  $ ../../bench/main.exe --quick e15 | grep -c "2500 attempts -> 2500 fast-fails"
  1

Quick E21 must pass its own cross-checks, which assert the perf claims
and not just the schema: the dcas2 substrate allocates strictly fewer
minor words per op than the generic descriptors, batch k=16 is faster
and leaner per item than k=1 on both paths, percentiles are ordered,
and batch traffic conserves items exactly (see check_e21 in
bench/main.ml).

  $ ../../bench/main.exe --quick e21 --json e21.json > /dev/null
  $ ../../bench/main.exe --check-json e21.json
  schema: dcas-deques-bench/1
  e21: 10 rows
  e21 invariants: ok

Malformed input is rejected.

  $ echo '{"schema": "dcas-deques-bench/1", "experiments": [' > bad.json
  $ ../../bench/main.exe --check-json bad.json
  invalid JSON in bad.json: at 51: unexpected end of input
  [1]

--compare distinguishes broken inputs (usage-class, exit 2) from
hot-path regressions (exit 3).  A missing file, and a matched soak
cell whose ops_per_sec was corrupted to null (how a NaN measurement
lands in the document), must both diagnose and exit 2; a 50% soak
regression must exit 3.

  $ ../../bench/main.exe --compare missing.json out.json
  comparing missing.json (old) -> out.json (new)
  cannot read missing.json: missing.json: No such file or directory
  [2]
  $ cat > old_cmp.json <<'EOF'
  > {"schema":"dcas-deques-bench/1","experiments":[{"id":"e0","rows":[{"section":"soak","domains":1,"ops_per_sec":1000.0}]}]}
  > EOF
  $ cat > nan_cmp.json <<'EOF'
  > {"schema":"dcas-deques-bench/1","experiments":[{"id":"e0","rows":[{"section":"soak","domains":1,"ops_per_sec":null}]}]}
  > EOF
  $ cat > slow_cmp.json <<'EOF'
  > {"schema":"dcas-deques-bench/1","experiments":[{"id":"e0","rows":[{"section":"soak","domains":1,"ops_per_sec":500.0}]}]}
  > EOF
  $ ../../bench/main.exe --compare old_cmp.json nan_cmp.json
  comparing old_cmp.json (old) -> nan_cmp.json (new)
  nan_cmp.json: missing or non-numeric ops_per_sec in matched row [e0 domains=1 section=soak]
  [2]
  $ ../../bench/main.exe --compare old_cmp.json slow_cmp.json
  comparing old_cmp.json (old) -> slow_cmp.json (new)
      -50.0%  e0 domains=1 section=soak  (1000 -> 500 ops/s)  REGRESSION
  1 rows matched
  1 hot-path regression(s) beyond 20%:
    -50.0%  e0 domains=1 section=soak
  [3]
  $ ../../bench/main.exe --compare old_cmp.json old_cmp.json
  comparing old_cmp.json (old) -> old_cmp.json (new)
       +0.0%  e0 domains=1 section=soak  (1000 -> 1000 ops/s)
  1 rows matched
  no hot-path regressions beyond 20%

Quick E22 must pass the crash-recovery cross-checks: every supervised
kill-k-of-n run conserves tasks exactly (spawned = executed +
reconciled), terminates without the watchdog firing, helps every
descriptor orphaned by a mid-CASN death, and lands exactly the
targeted number of kills (see check_e22 in bench/main.ml).

  $ ../../bench/main.exe --quick e22 --json e22.json > /dev/null
  $ ../../bench/main.exe --check-json e22.json
  schema: dcas-deques-bench/1
  e22: 5 rows
  e22 invariants: ok

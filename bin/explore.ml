(* Model-checker CLI: explore all interleavings of scripted deque
   operations against any of the implementations.

     dune exec bin/explore.exe -- --algo list --prefill 1,2 \
         --setup qr,ql --thread pr:3 --thread pl:4

   Scripts use a tiny operation DSL, comma-separated per thread:

     pr:V  pushRight(V)      pl:V  pushLeft(V)
     qr    popRight()        ql    popLeft()

   Modes: exhaustive DFS (default), random sampling (--sample N), and
   the lock-freedom check (--victim I freezes thread I at every one of
   its reachable step counts and requires the others to finish). *)

open Cmdliner

let parse_ops s =
  if String.trim s = "" then Ok []
  else
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.fold_left
         (fun acc tok ->
           match acc with
           | Error _ as e -> e
           | Ok ops -> (
               match Spec.Op.of_token tok with
               | Ok op -> Ok (op :: ops)
               | Error e -> Error (`Msg e)))
         (Ok [])
    |> Result.map List.rev

let parse_ints s =
  if String.trim s = "" then Ok []
  else
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.fold_left
         (fun acc tok ->
           match (acc, int_of_string_opt tok) with
           | (Error _ as e), _ -> e
           | Ok xs, Some v -> Ok (v :: xs)
           | Ok _, None -> Error (`Msg ("bad integer " ^ tok)))
         (Ok [])
    |> Result.map List.rev

let ops_conv =
  Arg.conv
    ( parse_ops,
      fun ppf ops ->
        Format.fprintf ppf "%s"
          (String.concat ","
             (List.map
                (fun op ->
                  Format.asprintf "%a" (Spec.Op.pp_op Format.pp_print_int) op)
                ops)) )

let ints_conv =
  Arg.conv
    ( parse_ints,
      fun ppf xs ->
        Format.fprintf ppf "%s" (String.concat "," (List.map string_of_int xs))
    )

let scenario_of ~algo ~length ~prefill ~setup ~chaos_fail ~chaos_freeze
    ~chaos_freeze_spins ~chaos_seed ~shards ~adopt_token ~shed_token ~threads =
  let threads = if threads = [] then [ [ Spec.Op.Pop_right ] ] else threads in
  match algo with
  | "array" ->
      Ok
        (Modelcheck.Scenario.array_deque ~name:"cli" ~length ~prefill ~setup
           threads)
  | "array-no-hints" ->
      Ok
        (Modelcheck.Scenario.array_deque ~hints:false ~name:"cli" ~length
           ~prefill ~setup threads)
  | "array-batched" ->
      Ok
        (Modelcheck.Scenario.array_deque_batched ~name:"cli" ~length ~prefill
           ~setup threads)
  | "list-batched" ->
      Ok
        (Modelcheck.Scenario.list_deque_batched ~name:"cli" ~prefill ~setup
           threads)
  | "list" ->
      Ok (Modelcheck.Scenario.list_deque ~name:"cli" ~prefill ~setup threads)
  | "list-recycle" ->
      Ok
        (Modelcheck.Scenario.list_deque ~recycle:true ~name:"cli" ~prefill
           ~setup threads)
  | "3cas" ->
      Ok
        (Modelcheck.Scenario.list_deque_casn ~name:"cli" ~prefill ~setup
           threads)
  | "dummy" ->
      Ok
        (Modelcheck.Scenario.list_deque_dummy ~name:"cli" ~prefill ~setup
           threads)
  | "greenwald1" ->
      Ok
        (Modelcheck.Scenario.greenwald_v1 ~name:"cli" ~length ~prefill ~setup
           threads)
  | "greenwald2" ->
      Ok
        (Modelcheck.Scenario.greenwald_v2 ~name:"cli" ~length ~prefill ~setup
           threads)
  | "list-broken" ->
      Ok
        (Modelcheck.Scenario.list_deque_buggy ~name:"cli" ~prefill ~setup
           threads)
  | "list-chaos" ->
      Ok
        (Modelcheck.Scenario.list_deque_chaos ~fail_prob:chaos_fail
           ~freeze_prob:chaos_freeze ~freeze_spins:chaos_freeze_spins
           ~chaos_seed ~name:"cli" ~prefill ~setup threads)
  | "st" -> Ok (Modelcheck.Scenario.st_deque ~name:"cli" ~prefill ~setup threads)
  | "st-chaos" ->
      Ok
        (Modelcheck.Scenario.st_deque_chaos ~fail_prob:chaos_fail
           ~freeze_prob:chaos_freeze ~freeze_spins:chaos_freeze_spins
           ~chaos_seed ~name:"cli" ~prefill ~setup threads)
  | "st-broken" ->
      Ok (Modelcheck.Scenario.st_deque_buggy ~name:"cli" ~prefill ~setup threads)
  | "sharded" | "sharded-nofence" ->
      if setup <> [] then Error (algo ^ ": --setup is not supported")
      else
        Ok
          (Modelcheck.Scenario.sharded ~shards ~capacity:length ~adopt_token
             ~shed_token
             ~fence_adoption:(algo = "sharded")
             ~name:"cli" ~prefill threads)
  | other -> Error ("unknown algorithm: " ^ other)

(* Injected-fault counters for the run summary (list-chaos only; the
   other algorithms never touch the chaos substrate). *)
let print_chaos_summary ~algo =
  if algo = "list-chaos" || algo = "st-chaos" then begin
    let s = Modelcheck.Scenario.chaos_stats () in
    Printf.printf "chaos: spurious=%d delays=%d frozen-ops=%d\n%!"
      s.Dcas.Memory_intf.chaos_spurious s.Dcas.Memory_intf.chaos_delays
      s.Dcas.Memory_intf.chaos_freezes
  end

let run_fuzz scenario ~runs ~seed ~strategy ~shrink ~max_steps =
  (* The watchdog converts a hung schedule (e.g. a planted livelock
     reached under fault injection) into a diagnostic on stderr and a
     distinct exit code instead of a silent CI timeout. *)
  let watchdog = Harness.Watchdog.create ~stall_after:10. ~threads:1 () in
  let report =
    Modelcheck.Fuzz.run ~max_steps ~watchdog ~shrink ~runs ~seed ~strategy
      scenario
  in
  Format.printf "%a@." Modelcheck.Fuzz.pp_report report;
  if Harness.Watchdog.fired watchdog then begin
    Printf.eprintf "watchdog: %d stall episode(s) during fuzzing\n%!"
      (Harness.Watchdog.stalls watchdog);
    3
  end
  else match report.Modelcheck.Fuzz.violation with None -> 0 | Some _ -> 1

let run_replay scenario token ~max_steps =
  match Modelcheck.Fuzz.replay ~max_steps scenario ~token with
  | Error e ->
      prerr_endline e;
      2
  | Ok (_, None) ->
      print_endline "replay ok: schedule passed";
      0
  | Ok (threads, Some failure) ->
      Format.printf "REPLAY VIOLATION@.%a@." Modelcheck.Fuzz.pp_failure
        (threads, failure, Modelcheck.Fuzz.token_of threads failure.schedule);
      1

let is_sharded algo = algo = "sharded" || algo = "sharded-nofence"

let run algo length prefill setup threads sample seed victim crash
    max_schedules max_steps fuzz pct depth no_shrink replay chaos_fail
    chaos_freeze chaos_freeze_spins chaos_seed shards adopt_token shed_token =
  match
    scenario_of ~algo ~length ~prefill ~setup ~chaos_fail ~chaos_freeze
      ~chaos_freeze_spins ~chaos_seed ~shards ~adopt_token ~shed_token ~threads
  with
  | Error e ->
      prerr_endline e;
      2
  | Ok scenario
    when is_sharded algo
         && (sample <> None || fuzz <> None || pct <> None || replay <> None)
    ->
      ignore scenario;
      (* sampling, fuzzing and replay hard-code the single-deque
         linearizability oracle, which the sharded composite does not
         satisfy by design *)
      prerr_endline
        (algo
        ^ ": not linearizable to one deque; use plain explore \
           (invariant-checked), --victim, or --crash");
      2
  | Ok scenario ->
      let code =
        match (crash, victim, replay, pct, fuzz, sample) with
      | Some v, _, _, _, _, _ -> (
          match Modelcheck.Explorer.check_crash ~max_steps scenario ~victim:v with
          | Ok n ->
              Printf.printf
                "crash-recovery: survivors completed, drained and conserved \
                 at every one of the victim's %d crash points\n"
                n;
              0
          | Error j ->
              Printf.printf "UNRECOVERED: crash point %d broke recovery\n" j;
              1)
      | None, Some v, _, _, _, _ -> (
          match
            Modelcheck.Explorer.check_nonblocking ~max_steps scenario ~victim:v
          with
          | Ok n ->
              Printf.printf
                "non-blocking: all other threads completed at every one of \
                 the victim's %d stall points\n"
                n;
              0
          | Error j ->
              Printf.printf "BLOCKED: stall point %d prevented completion\n" j;
              1)
      | None, None, Some token, _, _, _ -> run_replay scenario token ~max_steps
      | None, None, None, Some runs, _, _ ->
          run_fuzz scenario ~runs ~seed
            ~strategy:(Modelcheck.Fuzz.Pct depth)
            ~shrink:(not no_shrink) ~max_steps
      | None, None, None, None, Some runs, _ ->
          run_fuzz scenario ~runs ~seed ~strategy:Modelcheck.Fuzz.Uniform
            ~shrink:(not no_shrink) ~max_steps
      | None, None, None, None, None, sample -> (
          let outcome =
            match sample with
            | Some n ->
                Modelcheck.Explorer.sample ~max_steps ~schedules:n ~seed
                  scenario
            | None ->
                let check =
                  if is_sharded algo then `None else `Linearizability
                in
                Modelcheck.Explorer.explore ~max_steps ~max_schedules ~check
                  scenario
          in
          Format.printf "%a@." Modelcheck.Explorer.pp_outcome outcome;
          match outcome.Modelcheck.Explorer.error with
          | None -> 0
          | Some _ -> 1)
      in
      print_chaos_summary ~algo;
      code

let algo =
  Arg.(
    value
    & opt string "array"
    & info [ "algo"; "a" ] ~docv:"ALGO"
        ~doc:
          "Algorithm: array, array-no-hints, array-batched (ops as width-1 \
           batches), list, list-recycle, list-batched, dummy, 3cas, \
           greenwald1, greenwald2, st (Sundell-Tsigas single-word CAS), \
           list-broken, st-broken (deliberately buggy), list-chaos, st-chaos \
           (fault injection), sharded (K-shard service front end; \
           invariant-checked, not linearizability-checked), sharded-nofence \
           (sharded with the adoption fence deliberately omitted — the \
           planted E25 zombie-adoption bug).")

let length =
  Arg.(
    value & opt int 4
    & info [ "length" ] ~docv:"N"
        ~doc:"Array length (bounded algorithms); per-shard capacity (sharded).")

let shards =
  Arg.(
    value & opt int 2
    & info [ "shards" ] ~docv:"K" ~doc:"sharded: number of shards.")

let adopt_token =
  Arg.(
    value
    & opt int min_int
    & info [ "adopt-token" ] ~docv:"V"
        ~doc:
          "sharded: pushing $(docv) quarantines, adopts and revives its home \
           shard instead of pushing — script it on one thread to race \
           adoption against routing (default: disabled).")

let shed_token =
  Arg.(
    value
    & opt int (min_int + 1)
    & info [ "shed-token" ] ~docv:"V"
        ~doc:
          "sharded: pushing $(docv) instead performs an urgent pop through \
           the token's route and $(i,discards) the value into a shed log — \
           the model of E25's deadline shed; the invariant then also checks \
           that no value is shed twice or both shed and resident (default: \
           disabled).")

let prefill =
  Arg.(
    value
    & opt ints_conv []
    & info [ "prefill" ] ~docv:"V,V,.." ~doc:"Values pushed right initially.")

let setup =
  Arg.(
    value
    & opt ops_conv []
    & info [ "setup" ]
        ~docv:"OPS"
        ~doc:
          "Operations run quiescently before exploration (DSL: pr:V, pl:V, \
           qr, ql).")

let threads =
  Arg.(
    value
    & opt_all ops_conv []
    & info [ "thread"; "t" ] ~docv:"OPS"
        ~doc:"One thread's scripted operations; repeatable.")

let sample =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample" ] ~docv:"N"
        ~doc:"Sample N random schedules instead of exhaustive DFS.")

let seed =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED" ~doc:"Sampling / fuzzing seed.")

let fuzz =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuzz" ] ~docv:"N"
        ~doc:"Fuzz N uniform-random schedules (shrinks counterexamples).")

let pct =
  Arg.(
    value
    & opt (some int) None
    & info [ "pct" ] ~docv:"N"
        ~doc:"Fuzz N PCT schedules (priority-based; see --depth).")

let depth =
  Arg.(
    value & opt int 3
    & info [ "depth" ] ~docv:"D"
        ~doc:"PCT preemption depth: D-1 priority change points per run.")

let no_shrink =
  Arg.(
    value & flag
    & info [ "no-shrink" ] ~doc:"Report the first counterexample unshrunk.")

let replay =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"TOKEN"
        ~doc:
          "Replay a dqf1/... token from a fuzz report (thread scripts come \
           from the token; prefill/setup/algo from the other flags).")

let chaos_fail =
  Arg.(
    value & opt float 0.1
    & info [ "chaos-fail" ] ~docv:"P"
        ~doc:"list-chaos: spurious DCAS failure probability.")

let chaos_freeze =
  Arg.(
    value & opt float 0.
    & info [ "chaos-freeze" ] ~docv:"P"
        ~doc:
          "list-chaos: probability of a bounded freeze at each \
           shared-memory access point.")

let chaos_freeze_spins =
  Arg.(
    value & opt int 8
    & info [ "chaos-freeze-spins" ] ~docv:"N"
        ~doc:"list-chaos: spins burned by each injected freeze.")

let chaos_seed =
  Arg.(
    value & opt int 0xC0FFEE
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:"list-chaos: fault-injection seed.")

let victim =
  Arg.(
    value
    & opt (some int) None
    & info [ "victim" ] ~docv:"I"
        ~doc:"Lock-freedom check: freeze thread I at every stall point.")

let crash =
  Arg.(
    value
    & opt (some int) None
    & info [ "crash" ] ~docv:"I"
        ~doc:
          "Crash-recovery check (E22): kill thread I for good at every one \
           of its reachable crash points; survivors must complete, drain the \
           deque and conserve its contents up to the victim's single \
           in-flight operation.")

let max_schedules =
  Arg.(
    value
    & opt int 2_000_000
    & info [ "max-schedules" ] ~docv:"N" ~doc:"DFS budget.")

let max_steps =
  Arg.(
    value
    & opt int 100_000
    & info [ "max-steps" ] ~docv:"N"
        ~doc:
          "Per-schedule shared-memory step budget; exceeding it is reported \
           as a (liveness) violation.  Lower it to make livelock hunts — \
           e.g. the planted st-broken — terminate quickly.")

let cmd =
  let doc = "explore interleavings of deque operations (bounded model checking)" in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      const run $ algo $ length $ prefill $ setup $ threads $ sample $ seed
      $ victim $ crash $ max_schedules $ max_steps $ fuzz $ pct $ depth
      $ no_shrink $ replay $ chaos_fail $ chaos_freeze $ chaos_freeze_spins
      $ chaos_seed $ shards $ adopt_token $ shed_token)

let () = exit (Cmd.eval' cmd)

(* Stress / throughput CLI over every deque implementation.

     dune exec bin/stress.exe -- --impl list-lockfree --threads 4 \
         --duration 2 --mix balanced

   Prints throughput, per-thread fairness (starvation) figures and, for
   implementations over the lock-free DCAS substrate, the DCAS
   attempt/success counters accumulated during the run.

   A progress watchdog (--watchdog SEC, default 10s, 0 disables)
   monitors the workers' completed-op counters on a separate domain:
   if nothing progresses for that long, it dumps a diagnostic snapshot
   (per-thread op counts, substrate counters) to stderr and the run
   exits with code 3 — a stalled structure becomes a report, not a CI
   timeout. *)

open Cmdliner

type impl = {
  name : string;
  run :
    watchdog:Harness.Watchdog.t option ->
    threads:int ->
    duration:float ->
    mix:Harness.Workload.mix ->
    capacity:int ->
    prefill:int ->
    Harness.Runner.result;
}

let make_impl (type t) name ~(create : capacity:int -> unit -> t)
    ~(push_right : t -> int -> Deque.Deque_intf.push_result)
    ~(push_left : t -> int -> Deque.Deque_intf.push_result)
    ~(pop_right : t -> int Deque.Deque_intf.pop_result)
    ~(pop_left : t -> int Deque.Deque_intf.pop_result) =
  {
    name;
    run =
      (fun ~watchdog ~threads ~duration ~mix ~capacity ~prefill ->
        let d = create ~capacity () in
        for i = 1 to prefill do
          match
            if i mod 2 = 0 then push_right d i else push_left d i
          with
          | `Okay -> ()
          | `Full -> invalid_arg "prefill exceeds capacity"
        done;
        Harness.Runner.run ?watchdog ~threads ~duration (fun ~tid ~rng ->
            ignore
              (Harness.Workload.apply
                 ~push_right:(fun v -> push_right d v)
                 ~push_left:(fun v -> push_left d v)
                 ~pop_right:(fun () -> pop_right d)
                 ~pop_left:(fun () -> pop_left d)
                 mix rng tid)));
  }

let impls : impl list =
  [
    (let module D = Deque.Array_deque.Lockfree in
    make_impl "array-lockfree"
      ~create:(fun ~capacity () -> D.make ~length:capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.Array_deque.Locked in
    make_impl "array-locked"
      ~create:(fun ~capacity () -> D.make ~length:capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.List_deque.Lockfree in
    make_impl "list-lockfree"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.List_deque_dummy.Lockfree in
    make_impl "dummy-lockfree"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.List_deque_casn.Lockfree in
    make_impl "3cas-lockfree"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.List_deque.Lockfree in
    make_impl "list-recycle"
      ~create:(fun ~capacity:_ () -> D.make ~recycle:true ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module P = Deque.Policy.Make (Deque.Array_deque.Lockfree) in
    make_impl "array-policy-spill"
      ~create:(fun ~capacity () -> P.create ~full:Deque.Policy.Spill ~capacity ())
      ~push_right:(fun d v -> P.push_simple d ~side:`Right v)
      ~push_left:(fun d v -> P.push_simple d ~side:`Left v)
      ~pop_right:(fun d -> P.pop_simple d ~side:`Right)
      ~pop_left:(fun d -> P.pop_simple d ~side:`Left));
    (let module D = Baselines.Lock_deque in
    make_impl "lock"
      ~create:(fun ~capacity () -> D.create ~capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Baselines.Spin_deque in
    make_impl "spin"
      ~create:(fun ~capacity () -> D.create ~capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Baselines.Greenwald_v1.Lockfree in
    make_impl "greenwald1"
      ~create:(fun ~capacity () -> D.make ~length:capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
  ]

let mix_of = function
  | "balanced" -> Ok Harness.Workload.balanced
  | "push-heavy" -> Ok Harness.Workload.push_heavy
  | "pop-heavy" -> Ok Harness.Workload.pop_heavy
  | "fifo" -> Ok Harness.Workload.fifo
  | "lifo" -> Ok Harness.Workload.lifo_right
  | m -> Error ("unknown mix: " ^ m)

let run impl_name threads duration mix_name capacity prefill watchdog_s =
  match
    ( List.find_opt (fun i -> i.name = impl_name) impls,
      mix_of mix_name )
  with
  | None, _ ->
      Printf.eprintf "unknown implementation %s (have: %s)\n" impl_name
        (String.concat ", " (List.map (fun i -> i.name) impls));
      2
  | _, Error e ->
      prerr_endline e;
      2
  | Some impl, Ok mix ->
      Dcas.Mem_lockfree.reset_stats ();
      let watchdog =
        if watchdog_s <= 0. then None
        else
          Some
            (Harness.Watchdog.create ~stall_after:watchdog_s
               ~stats:(fun () -> Dcas.Mem_lockfree.stats ())
               ~threads ())
      in
      let r = impl.run ~watchdog ~threads ~duration ~mix ~capacity ~prefill in
      Printf.printf "%s: %s ops/s (%d threads, %.1fs, mix %s)\n" impl.name
        (Harness.Table.ops_per_sec (Harness.Runner.throughput r))
        threads duration mix_name;
      Printf.printf "fairness: %s\n"
        (Format.asprintf "%a" Harness.Metrics.Starvation.pp
           (Harness.Metrics.Starvation.of_counts r.Harness.Runner.per_thread));
      let s = Dcas.Mem_lockfree.stats () in
      if s.Dcas.Memory_intf.dcas_attempts > 0 then
        Printf.printf "lock-free substrate: %s\n"
          (Format.asprintf "%a" Dcas.Memory_intf.pp_stats s);
      (match watchdog with
      | Some w when Harness.Watchdog.fired w ->
          Printf.eprintf "watchdog fired %d time(s); failing the run\n"
            (Harness.Watchdog.stalls w);
          3
      | Some _ | None -> 0)

let impl_arg =
  Arg.(
    value
    & opt string "array-lockfree"
    & info [ "impl"; "i" ] ~docv:"IMPL" ~doc:"Implementation to drive.")

let threads = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"N" ~doc:"Domains.")

let duration =
  Arg.(value & opt float 1.0 & info [ "duration"; "d" ] ~docv:"SEC" ~doc:"Seconds.")

let mix =
  Arg.(
    value
    & opt string "balanced"
    & info [ "mix"; "m" ] ~docv:"MIX"
        ~doc:"balanced, push-heavy, pop-heavy, fifo, lifo.")

let capacity =
  Arg.(value & opt int 1024 & info [ "capacity"; "c" ] ~docv:"N" ~doc:"Capacity.")

let prefill =
  Arg.(value & opt int 512 & info [ "prefill"; "p" ] ~docv:"N" ~doc:"Initial items.")

let watchdog_s =
  Arg.(
    value & opt float 10.
    & info [ "watchdog"; "w" ] ~docv:"SEC"
        ~doc:
          "Fail with a diagnostic (exit 3) if no worker completes an \
           operation for SEC seconds; 0 disables.")

let cmd =
  let doc = "multi-domain deque throughput" in
  Cmd.v
    (Cmd.info "stress" ~doc)
    Term.(
      const run $ impl_arg $ threads $ duration $ mix $ capacity $ prefill
      $ watchdog_s)

let () = exit (Cmd.eval' cmd)

(* Stress / throughput CLI over every deque implementation.

     dune exec bin/stress.exe -- --impl list-lockfree --threads 4 \
         --duration 2 --mix balanced

   Prints throughput, per-thread fairness (starvation) figures and, for
   implementations over the lock-free DCAS substrate, the DCAS
   attempt/success counters accumulated during the run.

   A progress watchdog (--watchdog SEC, default 10s, 0 disables)
   monitors the workers' completed-op counters on a separate domain:
   if nothing progresses for that long, it dumps a diagnostic snapshot
   (per-thread op counts, substrate counters) to stderr and the run
   exits with code 3 — a stalled structure becomes a report, not a CI
   timeout.

   Crash injection (--crash-prob P, --crash-workers K) arms fail-stop
   deaths over the lock-free implementations: each worker may die for
   good at an instrumented shared-memory point — mid-CASN with a
   published descriptor where the draw lands on a DCAS-shaped
   operation — and at most K workers die in total.  After the run a
   machine-readable "crash-summary:" line reports the deaths and the
   orphaned descriptors the survivors helped.

   Exit codes: 0 ok; 2 usage; 3 the watchdog fired (survivors
   stalled); 4 a crash went unrecovered (orphaned descriptors were
   not all helped, or the runner and injector disagree on deaths). *)

open Cmdliner

type impl = {
  name : string;
  run :
    watchdog:Harness.Watchdog.t option ->
    threads:int ->
    duration:float ->
    mix:Harness.Workload.mix ->
    capacity:int ->
    prefill:int ->
    Harness.Runner.result;
}

let make_impl (type t) ?(enroll = false) name
    ~(create : capacity:int -> unit -> t)
    ~(push_right : t -> int -> Deque.Deque_intf.push_result)
    ~(push_left : t -> int -> Deque.Deque_intf.push_result)
    ~(pop_right : t -> int Deque.Deque_intf.pop_result)
    ~(pop_left : t -> int Deque.Deque_intf.pop_result) =
  {
    name;
    run =
      (fun ~watchdog ~threads ~duration ~mix ~capacity ~prefill ->
        let d = create ~capacity () in
        for i = 1 to prefill do
          match
            if i mod 2 = 0 then push_right d i else push_left d i
          with
          | `Okay -> ()
          | `Full -> invalid_arg "prefill exceeds capacity"
        done;
        Harness.Runner.run ?watchdog ~threads ~duration (fun ~tid ~rng ->
            if enroll && tid < Harness.Crash.max_slots then
              Harness.Crash.enroll ~tid;
            ignore
              (Harness.Workload.apply
                 ~push_right:(fun v -> push_right d v)
                 ~push_left:(fun v -> push_left d v)
                 ~pop_right:(fun () -> pop_right d)
                 ~pop_left:(fun () -> pop_left d)
                 mix rng tid)));
  }

(* Sharded service front ends (Core.Sharded): --shards K deques behind
   affinity routing, Spill shards so a full home overflows rather than
   rejects.  Pushes route by value (spread), pops by a shared rotating
   key (each pop homes somewhere and steal-rebalances from the rest);
   the left-end ops map to the urgent priority lane. *)
let shards_n = ref 4

let sharded_impl ?(enroll = false) name (module D : Deque.Deque_intf.S) =
  let module Sh = Deque.Sharded.Make (D) in
  let rr = ref 0 in
  let key () =
    (* racy shared counter: only a routing key, any value is valid *)
    incr rr;
    !rr
  in
  let push urgent d v : Deque.Deque_intf.push_result =
    match Sh.push ~urgent d ~key:v v with
    | `Okay -> `Okay
    | `Full -> `Full
    | `Timeout -> `Full (* no deadline configured: unreachable *)
  in
  let pop urgent d : int Deque.Deque_intf.pop_result =
    match Sh.pop ~urgent d ~key:(key ()) with
    | `Value v -> `Value v
    | `Empty -> `Empty
    | `Timeout -> `Empty
  in
  make_impl ~enroll name
    ~create:(fun ~capacity () ->
      Sh.create ~full:Deque.Policy.Spill ~shards:!shards_n ~capacity ())
    ~push_right:(push false) ~push_left:(push true) ~pop_right:(pop false)
    ~pop_left:(pop true)

let impls : impl list =
  [
    (let module D = Deque.Array_deque.Lockfree in
    make_impl "array-lockfree"
      ~create:(fun ~capacity () -> D.make ~length:capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.Array_deque.Locked in
    make_impl "array-locked"
      ~create:(fun ~capacity () -> D.make ~length:capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.List_deque.Lockfree in
    make_impl "list-lockfree"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.List_deque_dummy.Lockfree in
    make_impl "dummy-lockfree"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.List_deque_casn.Lockfree in
    make_impl "3cas-lockfree"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Deque.List_deque.Lockfree in
    make_impl "list-recycle"
      ~create:(fun ~capacity:_ () -> D.make ~recycle:true ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module P = Deque.Policy.Make (Deque.Array_deque.Lockfree) in
    make_impl "array-policy-spill"
      ~create:(fun ~capacity () -> P.create ~full:Deque.Policy.Spill ~capacity ())
      ~push_right:(fun d v -> P.push_simple d ~side:`Right v)
      ~push_left:(fun d v -> P.push_simple d ~side:`Left v)
      ~pop_right:(fun d -> P.pop_simple d ~side:`Right)
      ~pop_left:(fun d -> P.pop_simple d ~side:`Left));
    (let module D = Baselines.Lock_deque in
    make_impl "lock"
      ~create:(fun ~capacity () -> D.create ~capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Baselines.Spin_deque in
    make_impl "spin"
      ~create:(fun ~capacity () -> D.create ~capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Baselines.Greenwald_v1.Lockfree in
    make_impl "greenwald1"
      ~create:(fun ~capacity () -> D.make ~length:capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Baselines.St_deque in
    make_impl "st-deque"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    sharded_impl "sharded-array" (module Deque.Array_deque.Lockfree);
    sharded_impl "sharded-list" (module Deque.List_deque.Lockfree);
  ]

(* Crash-instrumented variants of the lock-free implementations: same
   algorithms over [Mem_lockfree] behind [Crash.Mem_crashing_casn], so
   an armed worker dies at a shared-memory point and the others keep
   going.  Selected (by the same --impl names) when --crash-prob is
   positive. *)
module Crash_mem = Harness.Crash.Mem_crashing_casn (Dcas.Mem_lockfree)
module Crash_array = Deque.Array_deque.Make (Crash_mem)
module Crash_list = Deque.List_deque.Make (Crash_mem)
module Crash_dummy = Deque.List_deque_dummy.Make (Crash_mem)
module Crash_casn = Deque.List_deque_casn.Make (Crash_mem)

let crash_impls : impl list =
  [
    (let module D = Crash_array in
    make_impl ~enroll:true "array-lockfree"
      ~create:(fun ~capacity () -> D.make ~length:capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Crash_list in
    make_impl ~enroll:true "list-lockfree"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Crash_dummy in
    make_impl ~enroll:true "dummy-lockfree"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Crash_casn in
    make_impl ~enroll:true "3cas-lockfree"
      ~create:(fun ~capacity:_ () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    (let module D = Crash_list in
    make_impl ~enroll:true "list-recycle"
      ~create:(fun ~capacity:_ () -> D.make ~recycle:true ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left);
    sharded_impl ~enroll:true "sharded-array" (module Crash_array);
    sharded_impl ~enroll:true "sharded-list" (module Crash_list);
  ]

let mix_of = function
  | "balanced" -> Ok Harness.Workload.balanced
  | "push-heavy" -> Ok Harness.Workload.push_heavy
  | "pop-heavy" -> Ok Harness.Workload.pop_heavy
  | "fifo" -> Ok Harness.Workload.fifo
  | "lifo" -> Ok Harness.Workload.lifo_right
  | m -> Error ("unknown mix: " ^ m)

let run impl_name threads duration mix_name capacity prefill watchdog_s
    crash_prob crash_workers crash_seed shards =
  if shards < 1 then begin
    prerr_endline "--shards must be >= 1";
    exit 2
  end;
  shards_n := shards;
  let crashing = crash_prob > 0. in
  let table = if crashing then crash_impls else impls in
  match
    (List.find_opt (fun i -> i.name = impl_name) table, mix_of mix_name)
  with
  | None, _ ->
      if crashing && List.exists (fun i -> i.name = impl_name) impls then
        Printf.eprintf
          "%s has no crash-instrumented variant (have: %s)\n" impl_name
          (String.concat ", " (List.map (fun i -> i.name) crash_impls))
      else
        Printf.eprintf "unknown implementation %s (have: %s)\n" impl_name
          (String.concat ", " (List.map (fun i -> i.name) table));
      2
  | _, Error e ->
      prerr_endline e;
      2
  | Some impl, Ok mix ->
      Dcas.Mem_lockfree.reset_stats ();
      (* cap deaths below the thread count so survivors remain to help
         orphans and keep the watchdog ticking *)
      let max_kills = min crash_workers (threads - 1) in
      if crashing then begin
        Harness.Crash.reset ();
        Harness.Crash.configure ~prob:crash_prob ~mid_casn_prob:0.5
          ~max_kills ~seed:crash_seed ()
      end;
      let watchdog =
        if watchdog_s <= 0. then None
        else
          Some
            (Harness.Watchdog.create ~stall_after:watchdog_s
               ~stats:(fun () -> Dcas.Mem_lockfree.stats ())
               ~threads ())
      in
      let r = impl.run ~watchdog ~threads ~duration ~mix ~capacity ~prefill in
      if crashing then Harness.Crash.disarm ();
      Printf.printf "%s: %s ops/s (%d threads, %.1fs, mix %s)\n" impl.name
        (Harness.Table.ops_per_sec (Harness.Runner.throughput r))
        threads duration mix_name;
      Printf.printf "fairness: %s\n"
        (Format.asprintf "%a" Harness.Metrics.Starvation.pp
           (Harness.Metrics.Starvation.of_counts r.Harness.Runner.per_thread));
      let s = Dcas.Mem_lockfree.stats () in
      if s.Dcas.Memory_intf.dcas_attempts > 0 then
        Printf.printf "lock-free substrate: %s\n"
          (Format.asprintf "%a" Dcas.Memory_intf.pp_stats s);
      let stalled =
        match watchdog with
        | Some w when Harness.Watchdog.fired w ->
            Printf.eprintf "watchdog fired %d time(s); failing the run\n"
              (Harness.Watchdog.stalls w);
            true
        | Some _ | None -> false
      in
      if not crashing then if stalled then 3 else 0
      else begin
        let killed = Harness.Crash.kills () in
        let mid_casn = Harness.Crash.mid_casn_kills () in
        let orphans_helped = Dcas.Mem_lockfree.help_orphans () in
        let runner_deaths = Harness.Runner.deaths r in
        Printf.printf
          "crash-summary: killed=%d mid_casn=%d orphans_helped=%d \
           runner_deaths=%d survivors=%d\n"
          killed mid_casn orphans_helped runner_deaths
          (threads - runner_deaths);
        if stalled then 3
        else if orphans_helped <> mid_casn || runner_deaths <> killed then begin
          Printf.eprintf
            "unrecovered crash: %d mid-CASN deaths but %d orphans helped \
             (runner saw %d of %d deaths)\n"
            mid_casn orphans_helped runner_deaths killed;
          4
        end
        else 0
      end

let impl_arg =
  Arg.(
    value
    & opt string "array-lockfree"
    & info [ "impl"; "i" ] ~docv:"IMPL" ~doc:"Implementation to drive.")

let threads = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"N" ~doc:"Domains.")

let duration =
  Arg.(value & opt float 1.0 & info [ "duration"; "d" ] ~docv:"SEC" ~doc:"Seconds.")

let mix =
  Arg.(
    value
    & opt string "balanced"
    & info [ "mix"; "m" ] ~docv:"MIX"
        ~doc:"balanced, push-heavy, pop-heavy, fifo, lifo.")

let capacity =
  Arg.(value & opt int 1024 & info [ "capacity"; "c" ] ~docv:"N" ~doc:"Capacity.")

let prefill =
  Arg.(value & opt int 512 & info [ "prefill"; "p" ] ~docv:"N" ~doc:"Initial items.")

let watchdog_s =
  Arg.(
    value & opt float 10.
    & info [ "watchdog"; "w" ] ~docv:"SEC"
        ~doc:
          "Fail with a diagnostic (exit 3) if no worker completes an \
           operation for SEC seconds; 0 disables.")

let crash_prob =
  Arg.(
    value & opt float 0.
    & info [ "crash-prob" ] ~docv:"P"
        ~doc:
          "Per-instrumented-access probability that a worker dies for \
           good (fail-stop, possibly mid-CASN); 0 disables crash \
           injection.  Positive values select the crash-instrumented \
           variant of the implementation and print a crash-summary \
           line; exit 4 if recovery fails.")

let crash_workers =
  Arg.(
    value & opt int 1
    & info [ "crash-workers" ] ~docv:"K"
        ~doc:
          "Kill at most K workers (capped at threads - 1 so survivors \
           remain).")

let crash_seed =
  Arg.(
    value & opt int 0xE22
    & info [ "crash-seed" ] ~docv:"SEED"
        ~doc:"Seed for the replayable per-domain death draws.")

let shards =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Shard count for the sharded-* implementations (K policy-\
           wrapped deques behind affinity routing; --capacity is \
           per-shard).  Ignored by the single-structure \
           implementations.")

let cmd =
  let doc = "multi-domain deque throughput" in
  Cmd.v
    (Cmd.info "stress" ~doc)
    Term.(
      const run $ impl_arg $ threads $ duration $ mix $ capacity $ prefill
      $ watchdog_s $ crash_prob $ crash_workers $ crash_seed $ shards)

let () = exit (Cmd.eval' cmd)

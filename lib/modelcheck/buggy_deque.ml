(* A deliberately broken variant of the Section 4 list deque: the pop's
   claiming DCAS drops the logical-delete bit.

   In the correct algorithm (Figure 11 line 15) a pop atomically nulls
   the node's value AND marks the sentinel's inward pointer deleted, so
   later operations on that side first complete the physical deletion.
   Here the DCAS still nulls the value but writes the sentinel pointer
   back {e unmarked}, so the nulled husk looks like a live neighbor: a
   later pop on the same side sees [Null] on an unmarked pointer and —
   exactly as the correct algorithm's lines 8-12 prescribe for that
   observation — reports the deque empty while items remain beyond the
   husk.

   This is the planted target for the schedule fuzzer: the correct
   deques must survive any fuzz budget, while this one must yield a
   linearizability violation that shrinks to a couple of same-side pops
   (see test/test_fuzz.ml and the fuzz cram test).  Since the deleted
   bit is never set, the physical-deletion paths of Figures 17/34 are
   unreachable and are omitted. *)

module Make (M : Dcas.Memory_intf.MEMORY) = struct
  type 'a cell = Null | SentL | SentR | Item of 'a

  type 'a node = {
    left : 'a pointer M.loc;
    right : 'a pointer M.loc;
    value : 'a cell M.loc;
  }

  and 'a pointer = { ptr : 'a node_ref; deleted : bool }
  and 'a node_ref = Nil | Node of 'a node

  type 'a t = { sl : 'a node; sr : 'a node }

  let name = "list-deque-broken/" ^ M.name

  let node_ref_equal a b =
    match (a, b) with
    | Nil, Nil -> true
    | Node x, Node y -> x == y
    | (Nil | Node _), _ -> false

  let pointer_equal a b = a.deleted = b.deleted && node_ref_equal a.ptr b.ptr

  let cell_equal a b =
    match (a, b) with
    | Null, Null | SentL, SentL | SentR, SentR -> true
    | Item x, Item y -> x == y
    | (Null | SentL | SentR | Item _), _ -> false

  let nil_pointer = { ptr = Nil; deleted = false }

  let new_node () =
    {
      left = M.make ~equal:pointer_equal nil_pointer;
      right = M.make ~equal:pointer_equal nil_pointer;
      value = M.make ~equal:cell_equal Null;
    }

  let node_of = function Node n -> n | Nil -> assert false

  let make () =
    let sl = new_node () and sr = new_node () in
    M.set_private sl.value SentL;
    M.set_private sr.value SentR;
    M.set_private sl.right { ptr = Node sr; deleted = false };
    M.set_private sr.left { ptr = Node sl; deleted = false };
    { sl; sr }

  let pop_right t =
    let rec loop () =
      let old_l = M.get t.sr.left in
      let target = node_of old_l.ptr in
      match M.get target.value with
      | SentL -> `Empty
      | SentR -> assert false
      | Null ->
          (* the husk left by a previous pop reads as "empty side" *)
          if M.dcas t.sr.left target.value old_l Null old_l Null then `Empty
          else loop ()
      | Item x ->
          (* BUG: the correct new pointer is { old_l.ptr; deleted =
             true }; writing [old_l] back drops the mark *)
          if M.dcas t.sr.left target.value old_l (Item x) old_l Null then
            `Value x
          else loop ()
    in
    loop ()

  let pop_left t =
    let rec loop () =
      let old_r = M.get t.sl.right in
      let target = node_of old_r.ptr in
      match M.get target.value with
      | SentR -> `Empty
      | SentL -> assert false
      | Null ->
          if M.dcas t.sl.right target.value old_r Null old_r Null then `Empty
          else loop ()
      | Item x ->
          if M.dcas t.sl.right target.value old_r (Item x) old_r Null then
            `Value x
          else loop ()
    in
    loop ()

  (* Pushes are the correct Figure 13/33 splices (the deleted bit is
     never set here, so their delete-completion prefix is moot). *)
  let push_right t v =
    let nn = new_node () in
    let rec loop () =
      let old_l = M.get t.sr.left in
      let target = node_of old_l.ptr in
      M.set_private nn.right { ptr = Node t.sr; deleted = false };
      M.set_private nn.left old_l;
      M.set_private nn.value (Item v);
      let old_lr = { ptr = Node t.sr; deleted = false } in
      let new_ptr = { ptr = Node nn; deleted = false } in
      if M.dcas t.sr.left target.right old_l old_lr new_ptr new_ptr then `Okay
      else loop ()
    in
    loop ()

  let push_left t v =
    let nn = new_node () in
    let rec loop () =
      let old_r = M.get t.sl.right in
      let target = node_of old_r.ptr in
      M.set_private nn.left { ptr = Node t.sl; deleted = false };
      M.set_private nn.right old_r;
      M.set_private nn.value (Item v);
      let old_rl = { ptr = Node t.sl; deleted = false } in
      let new_ptr = { ptr = Node nn; deleted = false } in
      if M.dcas t.sl.right target.left old_r old_rl new_ptr new_ptr then `Okay
      else loop ()
    in
    loop ()

  let unsafe_to_list t =
    let rec walk node acc =
      match M.get node.value with
      | SentR -> List.rev acc
      | SentL | Null -> walk (node_of (M.get node.right).ptr) acc
      | Item v -> walk (node_of (M.get node.right).ptr) (v :: acc)
    in
    walk (node_of (M.get t.sl.right).ptr) []
end

(** Bounded systematic exploration of thread interleavings — the
    executable face of the paper's Section 5 obligations.

    Threads run under effect handlers; every {!Mem_model} operation
    yields, and the explorer chooses which thread performs the next
    atomic step.  Because OCaml continuations are one-shot, the
    explorer is stateless (CHESS-style): it re-executes the scenario
    from scratch for every schedule, enumerating schedules by DFS over
    the previous run's decision points.

    Every completed schedule is checked for linearizability against the
    sequential oracle; the scenario's invariant (when present) is
    evaluated after every shared-memory step of every schedule. *)

exception Step_limit
exception Invariant_violation of string

type run_report = {
  history : (int Spec.Op.op, int Spec.Op.res) Spec.History.entry array;
  steps : int;
  decisions : (int list * int) list;
      (** reversed stack of (enabled threads, chosen position) *)
}

val run_schedule :
  ?max_steps:int ->
  ?frozen:(int -> bool) ->
  Scenario.t ->
  decide:(int -> int list -> int) ->
  run_report
(** Execute one schedule.  [decide depth enabled] returns the
    position within [enabled] to run next.  [frozen] threads are never
    scheduled; the run ends when every unfrozen thread has finished.

    @raise Step_limit if the schedule exceeds [max_steps].
    @raise Invariant_violation if the scenario's invariant fails. *)

type failure = {
  schedule : int list;  (** thread ids in execution order *)
  reason : string;
  pretty_history : string;
}

type outcome = {
  schedules : int;
  exhaustive : bool;  (** [false] if [max_schedules] was hit *)
  error : failure option;
}

val pp_outcome : Format.formatter -> outcome -> unit

val pretty_history :
  (int Spec.Op.op, int Spec.Op.res) Spec.History.entry array -> string
(** Render a run's history for reports and debugging. *)

val schedule_of_decisions : (int list * int) list -> int list
(** Thread ids in execution order, from a run's (reversed) decision
    stack. *)

val check_history : Scenario.t -> run_report -> (unit, string) result
(** Check a completed run against the sequential deque oracle — the
    shared linearizability obligation of the DFS explorer and the
    randomized fuzzer. *)

val explore :
  ?max_steps:int ->
  ?max_schedules:int ->
  ?check:[ `Linearizability | `None ] ->
  ?on_schedule:(run_report -> unit) ->
  Scenario.t ->
  outcome
(** Exhaustive DFS over all interleavings (up to [max_schedules]).
    [on_schedule] observes every completed run, e.g. to aggregate
    memory statistics per schedule. *)

val sample : ?max_steps:int -> schedules:int -> seed:int -> Scenario.t -> outcome
(** Random schedules, for configurations too large to enumerate. *)

val check_nonblocking :
  ?max_steps:int -> Scenario.t -> victim:int -> (int, int) result
(** Freeze [victim] after each of its reachable step counts (0, 1, …,
    up to its greedy completion) and require all other threads to
    finish anyway — the empirical face of the lock-freedom theorems.
    [Ok n] reports the number of stall points exercised; [Error j] the
    first stall point at which another thread failed to complete. *)

val check_crash :
  ?max_steps:int -> Scenario.t -> victim:int -> (int, int) result
(** Fail-stop crash check (experiment E22): kill [victim] for good
    after each of its reachable step counts and verify {e recovery},
    not just progress — the survivors must complete, then a survivor
    drains the structure to empty (helping any descriptor the victim
    left undecided, the model-level orphan-helping path), the
    representation invariant must hold afterwards, and the drained
    values must balance the completed operations under crash-commit
    uncertainty: the victim's single in-flight operation may or may
    not have taken effect, everything else conserves exactly.  [Ok n]
    reports the number of crash points exercised; [Error j] the first
    crash point at which recovery failed.

    @raise Invalid_argument if [victim] is out of range. *)

(* Bounded systematic exploration of thread interleavings.

   Threads run inside effect handlers; every shared-memory access of
   {!Mem_model} yields, and the explorer decides which thread performs
   the next atomic step.  Because OCaml continuations are one-shot the
   explorer is stateless in the jVM/CHESS style: it re-executes the
   scenario from scratch for every schedule, enumerating schedules by
   depth-first search over the decision points of the previous run.

   For every complete schedule the explorer

   - checks the optional per-step invariant after every transition
     (the executable RepInv obligation of Section 5), and
   - checks the recorded history against the sequential deque
     specification with the Wing&Gong checker (the linearizability
     obligation of Theorems 3.1 and 4.1).

   [explore] is exhaustive up to [max_schedules]; [sample] draws random
   schedules for configurations too large to enumerate;
   [check_nonblocking] freezes one thread at every one of its reachable
   step counts and verifies that all other threads still complete —
   the empirical face of the paper's lock-freedom theorems. *)

exception Step_limit
exception Invariant_violation of string

type thread_status =
  | Not_started
  | Paused of (unit, unit) Effect.Deep.continuation
  | Finished

type run_report = {
  history : (int Spec.Op.op, int Spec.Op.res) Spec.History.entry array;
  steps : int;
  decisions : (int list * int) list;
      (* reversed stack of (enabled threads, chosen position) *)
}

(* Execute one schedule.  [decide depth enabled] returns the position
   (not the thread id) to pick within [enabled]; every decision made is
   recorded so the caller can backtrack.  [frozen] threads are never
   scheduled; the run ends when every unfrozen thread has finished. *)
let run_schedule ?(max_steps = 100_000) ?(frozen = fun _ -> false)
    (scenario : Scenario.t) ~decide =
  let n = Array.length scenario.threads in
  let inst = Mem_model.unmonitored scenario.instantiate in
  let clock = ref 0 in
  let entries = ref [] in
  let status = Array.make n Not_started in
  let run_thread i () =
    List.iter
      (fun op ->
        let inv = !clock in
        incr clock;
        let result = inst.Scenario.apply op in
        let ret = !clock in
        incr clock;
        entries :=
          { Spec.History.thread = i; op; result; inv; ret } :: !entries)
      scenario.threads.(i)
  in
  let step i =
    match status.(i) with
    | Finished -> invalid_arg "Explorer.step: thread already finished"
    | Paused k -> Effect.Deep.continue k ()
    | Not_started ->
        Effect.Deep.match_with (run_thread i) ()
          {
            retc = (fun () -> status.(i) <- Finished);
            exnc = (fun e -> raise e);
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Mem_model.Yield ->
                    Some
                      (fun (k : (a, _) Effect.Deep.continuation) ->
                        status.(i) <- Paused k)
                | _ -> None);
          }
  in
  let check_invariant () =
    match inst.Scenario.invariant with
    | None -> ()
    | Some chk -> (
        match Mem_model.unmonitored chk with
        | Ok () -> ()
        | Error e -> raise (Invariant_violation e))
  in
  let steps = ref 0 in
  let decisions = ref [] in
  let rec loop depth =
    let enabled =
      List.filter
        (fun i ->
          (not (frozen i))
          && match status.(i) with Finished -> false | Not_started | Paused _ -> true)
        (List.init n Fun.id)
    in
    match enabled with
    | [] -> ()
    | _ ->
        incr steps;
        if !steps > max_steps then raise Step_limit;
        let pos = decide depth enabled in
        decisions := (enabled, pos) :: !decisions;
        step (List.nth enabled pos);
        check_invariant ();
        loop (depth + 1)
  in
  check_invariant ();
  loop 0;
  {
    history = Array.of_list !entries;
    steps = !steps;
    decisions = !decisions;
  }

type failure = {
  schedule : int list;  (* thread ids in execution order *)
  reason : string;
  pretty_history : string;
}

type outcome = {
  schedules : int;
  exhaustive : bool;  (* false if max_schedules was hit *)
  error : failure option;
}

let pp_outcome ppf o =
  match o.error with
  | None ->
      Format.fprintf ppf "ok (%d schedules%s)" o.schedules
        (if o.exhaustive then ", exhaustive" else ", truncated")
  | Some f ->
      Format.fprintf ppf "FAILED after %d schedules: %s@.schedule: %s@.%s"
        o.schedules f.reason
        (String.concat " " (List.map string_of_int f.schedule))
        f.pretty_history

let schedule_of_decisions decisions =
  List.rev_map (fun (enabled, pos) -> List.nth enabled pos) decisions

let pretty_history h =
  Format.asprintf "%a"
    (Spec.History.pp
       (Spec.Op.pp_op Format.pp_print_int)
       (Spec.Op.pp_res Format.pp_print_int))
    h

let check_history (scenario : Scenario.t) (report : run_report) =
  match
    Spec.Linearizability.check_deque ?capacity:scenario.capacity
      ~initial:scenario.initial report.history
  with
  | Ok _witness -> Ok ()
  | Error () -> Error "history is not linearizable"

let failure_of report reason =
  {
    schedule = schedule_of_decisions report.decisions;
    reason;
    pretty_history = pretty_history report.history;
  }

(* Exhaustive DFS over schedules.  [on_schedule] is invoked with every
   completed run's report (e.g. to aggregate memory-model statistics
   per schedule). *)
let explore ?(max_steps = 100_000) ?(max_schedules = 2_000_000)
    ?(check = `Linearizability) ?(on_schedule = fun (_ : run_report) -> ())
    (scenario : Scenario.t) =
  let rec attempt prefix count =
    (* prefix: reversed (enabled, pos) decisions to replay *)
    let prefix_arr = Array.of_list (List.rev prefix) in
    let decide depth _enabled =
      if depth < Array.length prefix_arr then snd prefix_arr.(depth) else 0
    in
    let result =
      match run_schedule ~max_steps scenario ~decide with
      | report -> (
          on_schedule report;
          match check with
          | `None -> Ok report
          | `Linearizability -> (
              match check_history scenario report with
              | Ok () -> Ok report
              | Error reason -> Error (failure_of report reason)))
      | exception Invariant_violation e ->
          Error
            {
              schedule = [];
              reason = "invariant violated: " ^ e;
              pretty_history = "";
            }
      | exception Step_limit ->
          Error
            { schedule = []; reason = "step limit exceeded"; pretty_history = "" }
    in
    match result with
    | Error f -> { schedules = count + 1; exhaustive = false; error = Some f }
    | Ok report -> (
        (* find the deepest decision with an unexplored alternative *)
        let rec backtrack = function
          | [] -> None
          | (enabled, pos) :: rest ->
              if pos + 1 < List.length enabled then Some ((enabled, pos + 1) :: rest)
              else backtrack rest
        in
        match backtrack report.decisions with
        | None -> { schedules = count + 1; exhaustive = true; error = None }
        | Some prefix' ->
            if count + 1 >= max_schedules then
              { schedules = count + 1; exhaustive = false; error = None }
            else attempt prefix' (count + 1))
  in
  attempt [] 0

(* Randomized sampling for scenarios too large to enumerate. *)
let sample ?(max_steps = 100_000) ~schedules ~seed (scenario : Scenario.t) =
  let state = ref (seed lor 1) in
  let rand bound =
    let s = !state in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    state := s land max_int;
    !state mod bound
  in
  let rec go k =
    if k = 0 then { schedules; exhaustive = false; error = None }
    else
      let decide _depth enabled = rand (List.length enabled) in
      match run_schedule ~max_steps scenario ~decide with
      | report -> (
          match check_history scenario report with
          | Ok () -> go (k - 1)
          | Error reason ->
              {
                schedules = schedules - k + 1;
                exhaustive = false;
                error = Some (failure_of report reason);
              })
      | exception Invariant_violation e ->
          {
            schedules = schedules - k + 1;
            exhaustive = false;
            error =
              Some
                {
                  schedule = [];
                  reason = "invariant violated: " ^ e;
                  pretty_history = "";
                };
          }
  in
  go schedules

(* Lock-freedom evidence: freeze [victim] after each of its reachable
   step counts (0, 1, 2, ... up to its solo completion) and check that
   every other thread still finishes.  Returns the number of stall
   points exercised, or the first stall point at which some other
   thread failed to complete. *)
let check_nonblocking ?(max_steps = 100_000) (scenario : Scenario.t) ~victim =
  (* how many steps does the victim take when scheduled greedily? *)
  let victim_steps = ref 0 in
  let count_decide _depth enabled =
    match List.find_index (fun i -> i = victim) enabled with
    | Some pos ->
        incr victim_steps;
        pos
    | None -> 0
  in
  ignore (run_schedule ~max_steps scenario ~decide:count_decide);
  let total = !victim_steps in
  let rec try_stall j =
    if j > total then Ok total
    else begin
      (* schedule the victim for its first j steps, then freeze it *)
      let victim_taken = ref 0 in
      let frozen i = i = victim && !victim_taken >= j in
      let decide _depth enabled =
        match List.find_index (fun i -> i = victim) enabled with
        | Some pos when !victim_taken < j ->
            incr victim_taken;
            pos
        | Some _ | None -> 0
      in
      match run_schedule ~max_steps ~frozen scenario ~decide with
      | _report -> try_stall (j + 1)
      | exception Step_limit -> Error j
      | exception Invariant_violation _ -> Error j
    end
  in
  try_stall 0

(* Fail-stop crash check: like {!check_nonblocking}, the victim stops
   for good after each of its reachable step counts — but here the
   check continues past survivor completion into {e recovery}: a
   survivor drains the structure to empty (helping any descriptor the
   victim left undecided, exactly the orphan-helping path of the live
   substrate) and the drained values must balance the completed
   operations under crash-commit uncertainty — the victim's single
   in-flight operation may or may not have taken effect, everything
   else must conserve exactly. *)
let check_crash ?(max_steps = 100_000) (scenario : Scenario.t) ~victim =
  if victim < 0 || victim >= Array.length scenario.Scenario.threads then
    invalid_arg "Explorer.check_crash: victim out of range";
  (* how many steps does the victim take when scheduled greedily? *)
  let victim_steps = ref 0 in
  let count_decide _depth enabled =
    match List.find_index (fun i -> i = victim) enabled with
    | Some pos ->
        incr victim_steps;
        pos
    | None -> 0
  in
  ignore (run_schedule ~max_steps scenario ~decide:count_decide);
  let total = !victim_steps in
  (* multiset difference: [remove x xs] = Some xs' iff x was in xs *)
  let rec remove x = function
    | [] -> None
    | y :: ys when y = x -> Some ys
    | y :: ys -> Option.map (fun ys' -> y :: ys') (remove x ys)
  in
  let conserves report drained =
    (* values known pushed: the prefill plus every push that completed
       (including the victim's recorded prefix) *)
    let committed_pushes =
      Array.to_list report.history
      |> List.filter_map (fun e ->
             match (e.Spec.History.op, e.Spec.History.result) with
             | (Spec.Op.Push_right v | Spec.Op.Push_left v), Spec.Op.Okay ->
                 Some v
             | _ -> None)
    in
    let committed_pops =
      Array.to_list report.history
      |> List.filter_map (fun e ->
             match e.Spec.History.result with
             | Spec.Op.Got v -> Some v
             | _ -> None)
    in
    (* the victim's in-flight operation, if it stopped mid-script *)
    let victim_done =
      Array.to_list report.history
      |> List.filter (fun e -> e.Spec.History.thread = victim)
      |> List.length
    in
    let in_flight = List.nth_opt scenario.Scenario.threads.(victim) victim_done in
    let supply = scenario.Scenario.initial @ committed_pushes in
    let consumed = committed_pops @ drained in
    (* every consumed value comes from the supply (or the victim's
       maybe-committed push), each unit at most once ... *)
    let rec consume supply extra = function
      | [] -> Some (supply, extra)
      | v :: vs -> (
          match remove v supply with
          | Some supply' -> consume supply' extra vs
          | None -> (
              match extra with
              | Some ((Spec.Op.Push_right w | Spec.Op.Push_left w) : int Spec.Op.op)
                when w = v ->
                  consume supply None vs
              | _ -> None))
    in
    match consume supply in_flight consumed with
    | None -> false
    | Some (leftover, _) -> (
        (* ... and, the structure now drained, every supplied value was
           consumed — except at most one eaten by the victim's
           maybe-committed in-flight pop *)
        match leftover with
        | [] -> true
        | [ _ ] -> (
            match in_flight with
            | Some (Spec.Op.Pop_right | Spec.Op.Pop_left) -> true
            | _ -> false)
        | _ -> false)
  in
  let rec try_crash j =
    if j > total then Ok total
    else begin
      let victim_taken = ref 0 in
      let frozen i = i = victim && !victim_taken >= j in
      let decide _depth enabled =
        match List.find_index (fun i -> i = victim) enabled with
        | Some pos when !victim_taken < j ->
            incr victim_taken;
            pos
        | Some _ | None -> 0
      in
      (* the scenario is re-instantiated per run inside run_schedule,
         so we rebuild the instance alongside it to drain afterwards:
         run_schedule exposes no handle.  Re-run with a fresh instance
         of our own instead. *)
      match
        let inst = Mem_model.unmonitored scenario.Scenario.instantiate in
        let scenario' = { scenario with Scenario.instantiate = (fun () -> inst) } in
        let report = run_schedule ~max_steps ~frozen scenario' ~decide in
        (* recovery: a survivor drains to empty, helping as it goes *)
        let drained = ref [] in
        let rec drain () =
          match Mem_model.unmonitored (fun () -> inst.Scenario.apply Spec.Op.Pop_left) with
          | Spec.Op.Got v ->
              drained := v :: !drained;
              drain ()
          | Spec.Op.Empty -> ()
          | Spec.Op.Okay | Spec.Op.Full -> assert false
        in
        drain ();
        (* final representation invariant, post-recovery *)
        (match inst.Scenario.invariant with
        | None -> ()
        | Some chk -> (
            match Mem_model.unmonitored chk with
            | Ok () -> ()
            | Error e -> raise (Invariant_violation e)));
        conserves report (List.rev !drained)
      with
      | true -> try_crash (j + 1)
      | false -> Error j
      | exception Step_limit -> Error j
      | exception Invariant_violation _ -> Error j
    end
  in
  try_crash 0

(** Probabilistic schedule fuzzing: randomized schedules over the same
    effect-based runner and linearizability oracle as the DFS
    {!Explorer}, for windows too large to enumerate.

    Two schedule families:
    - {!Uniform}: each step runs a uniformly random enabled thread;
    - {!Pct}[ d]: probabilistic concurrency testing — random distinct
      thread priorities, the highest-priority enabled thread always
      runs, and [d - 1] random change points demote the running thread
      below everyone else.  Finds any bug of preemption depth [d] with
      probability at least [1 / (n * k^(d-1))] per run.

    A failing run is minimized (threads dropped, scripts shortened,
    schedule truncated and canonicalized toward lowest-thread-first)
    and reported with a replay token that reproduces the shrunk failure
    byte-for-byte via {!replay}. *)

type strategy = Uniform | Pct of int  (** change-point depth, [>= 1] *)

type failure = {
  schedule : int list;  (** thread ids, in execution order, as replayed *)
  reason : string;
  pretty_history : string;  (** empty when the run died before completing *)
}

type counterexample = {
  threads : int Spec.Op.op list array;  (** shrunk per-thread scripts *)
  failure : failure;
  token : string;  (** replay token for {!replay} / [--replay] *)
  found_at : int;  (** 1-based index of the first failing run *)
  shrink_accepts : int;  (** candidates accepted during minimization *)
}

type report = {
  budget : int;  (** runs requested *)
  executed : int;  (** runs actually performed (= found_at on failure) *)
  strategy : strategy;
  seed : int;
  violation : counterexample option;
}

val run :
  ?max_steps:int ->
  ?shrink:bool ->
  ?watchdog:Harness.Watchdog.t ->
  runs:int ->
  seed:int ->
  strategy:strategy ->
  Scenario.t ->
  report
(** Draw [runs] random schedules; stop at the first violation and
    (unless [shrink:false]) minimize it.  Deterministic in [seed].
    [watchdog], when given (created with [threads:1], not started), is
    started for the loop and ticked once per executed schedule, so a
    livelock inside the structure under test surfaces as a diagnostic
    instead of a hang. *)

val token_of : int Spec.Op.op list array -> int list -> string
(** [dqf1/<scripts>/<schedule>]: scripts are ["|"]-separated,
    comma-joined {!Spec.Op.to_token} forms; the schedule is a
    ["."]-separated thread-id list. *)

val parse_token :
  string -> (int Spec.Op.op list array * int list, string) result

val replay :
  ?max_steps:int ->
  Scenario.t ->
  token:string ->
  (int Spec.Op.op list array * failure option, string) result
(** Re-execute a token against [scenario] (its [threads] are replaced
    by the token's scripts; name, prefill, setup and instantiation are
    taken from the scenario).  [Ok (threads, Some f)] reproduces the
    failure; [Ok (threads, None)] means the run passed. *)

val pp_report : Format.formatter -> report -> unit
(** Stable report format, pinned by [test/cram/fuzz.t]. *)

val pp_failure :
  Format.formatter -> int Spec.Op.op list array * failure * string -> unit
(** [(threads, failure, token)] — the body shared by fuzz and replay
    reports: reason, scripts, schedule, history, token. *)

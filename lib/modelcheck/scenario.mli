(** Declarative model-checking scenarios: per-thread scripts of deque
    operations over a fresh instance built on {!Mem_model}.

    [prefill] pushes initial values from the right; [setup] runs
    further operations quiescently before exploration starts (to steer
    the structure into an interesting state, e.g. the two-deleted-node
    configuration of Figure 16, while keeping the explored window
    exhaustively enumerable).  The linearizability oracle starts from
    the abstract state after prefill and setup. *)

type instance = {
  apply : int Spec.Op.op -> int Spec.Op.res;
  invariant : (unit -> (unit, string) result) option;
      (** evaluated by the explorer after every shared-memory step —
          the executable RepInv obligation of Section 5 *)
  dump : (unit -> string) option;  (** quiescent contents, for reports *)
}

type t = {
  name : string;
  capacity : int option;
  initial : int list;
  threads : int Spec.Op.op list array;
  instantiate : unit -> instance;
}

val array_deque :
  ?hints:bool ->
  ?setup:int Spec.Op.op list ->
  name:string ->
  length:int ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t

val array_deque_batched :
  ?hints:bool ->
  ?setup:int Spec.Op.op list ->
  name:string ->
  length:int ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t
(** The array deque with every scripted op routed through the batched
    entry points as a width-1 batch, so the explorer and the fuzzer
    exercise the probe + (k+1)-entry CASN code path — the one the
    production substrate takes through its flat [Dcas2] descriptor —
    against the single-op linearizability oracle and the Figure 18
    representation invariant. *)

val list_deque_batched :
  ?setup:int Spec.Op.op list ->
  name:string ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t
(** The list deque through {!Deque.Deque_intf.Batch}'s generic
    one-at-a-time fallback, as width-1 batches. *)

val list_deque :
  ?recycle:bool ->
  ?setup:int Spec.Op.op list ->
  name:string ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t

val list_deque_dummy :
  ?setup:int Spec.Op.op list ->
  name:string ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t

val list_deque_casn :
  ?setup:int Spec.Op.op list ->
  name:string ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t

val list_deque_buggy :
  ?setup:int Spec.Op.op list ->
  name:string ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t
(** The deliberately broken list deque of {!Buggy_deque}: the pop's
    claiming DCAS drops the logical-delete bit.  The fuzzer must find a
    linearizability violation here; the correct deques must survive the
    same budget. *)

val list_deque_chaos :
  ?fail_prob:float ->
  ?freeze_prob:float ->
  ?freeze_spins:int ->
  ?chaos_seed:int ->
  ?setup:int Spec.Op.op list ->
  name:string ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t
(** The (correct) list deque over a {!Dcas.Mem_chaos}-wrapped model
    memory: every explored schedule additionally sees seeded spurious
    DCAS failures at rate [fail_prob] and, with [freeze_prob] > 0,
    bounded freezes of [freeze_spins] spins at shared-memory access
    points (default 0 / 8).  Fault streams restart from [chaos_seed] at
    every instantiation, keeping exploration sound. *)

val st_deque :
  ?setup:int Spec.Op.op list ->
  name:string ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t
(** The Sundell–Tsigas single-word-CAS deque ({!Baselines.St_deque})
    over the model memory via its one-entry-casn shim: every shared
    read and CAS of the production algorithm text is a scheduling
    point, and its weak per-step representation invariant (next chain
    reaches tail, head unmarked, chained nodes valued) is checked
    after every step. *)

val st_deque_chaos :
  ?fail_prob:float ->
  ?freeze_prob:float ->
  ?freeze_spins:int ->
  ?chaos_seed:int ->
  ?setup:int Spec.Op.op list ->
  name:string ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t
(** {!st_deque} over the chaos-wrapped model memory: spurious CAS
    failures (and optional bounded freezes) woven into every explored
    schedule, exercising the helping paths harder.  Fault streams
    restart from [chaos_seed] at every instantiation. *)

val st_deque_buggy :
  ?setup:int Spec.Op.op list ->
  name:string ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t
(** The planted-bug variant {!Baselines.Buggy_st_deque}: helping never
    physically unlinks, so a schedule with two pops on one side spins
    forever — the fuzzer must catch it as a step-limit violation. *)

val sharded :
  ?shards:int ->
  ?capacity:int ->
  ?steal_batch:int ->
  ?adopt_token:int ->
  ?shed_token:int ->
  ?fence_adoption:bool ->
  name:string ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t
(** The sharded service front end ({!Deque.Sharded}, experiments
    E24/E25) over model-memory array deques: [shards] Reject-policy
    shards of [capacity] each behind affinity routing, cross-shard
    push overflow and steal-based pop rebalancing.  The composite is
    {e not} linearizable to one deque — explore with [check:`None];
    its obligations are the per-step invariant (every shard's
    representation invariant, no value resident twice across the
    service, no shed value resident or shed twice) plus
    {!Explorer.check_crash}'s drain-and-conserve check, whose
    single-in-flight-item accounting the default [steal_batch = 1]
    matches.  Pushes route by their own value, pops by key 0 (so an
    empty home shard exercises the steal scan).

    Pushing [adopt_token] (default: disabled) instead quarantines,
    adopts and revives the token's home shard — the control-plane
    action whose races against routing this scenario explores; it
    reports [Full], which every checker ignores.  With
    [fence_adoption:false] it runs the planted zombie-adoption bug of
    E25 instead: the pre-fence, pre-limbo drain (no quarantine, and an
    unplaceable park-back re-places forever instead of escaping to
    {!Deque.Sharded}'s limbo stash) — a racing push takes the freed
    slot, over-commits the bounded shards, and the spin is caught as a
    step-limit (liveness) violation; the fenced variant survives the
    same schedules.

    Pushing [shed_token] (default: disabled) models E25's deadline
    shed: an urgent pop through the token's route whose value is
    {e discarded} into a shed log — the invariant then checks the
    conservation face of shedding against steal/adoption races.

    Scripts must use distinct non-token values. *)

val chaos_stats : unit -> Dcas.Memory_intf.stats
(** Cumulative counters of the chaos substrate behind
    {!list_deque_chaos} ([chaos_spurious], [chaos_freezes], ...). *)

val greenwald_v1 :
  ?setup:int Spec.Op.op list ->
  name:string ->
  length:int ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t

val greenwald_v2 :
  ?setup:int Spec.Op.op list ->
  name:string ->
  length:int ->
  prefill:int list ->
  int Spec.Op.op list list ->
  t

(* Declarative model-checking scenarios: a fixed script of deque
   operations per thread, a way to build a fresh instance of the
   structure under test (over Mem_model), and optional per-step checks.

   [prefill] pushes initial values from the right; [setup] then runs
   additional operations quiescently (single-threaded, before any
   exploration) so a test can steer the structure into an interesting
   state — e.g. popping both elements to leave two logically deleted
   nodes before exploring the contending physical deletions of
   Figure 16 — while keeping the explored window small enough to
   enumerate exhaustively.  The linearizability oracle starts from the
   abstract state reached after prefill and setup. *)

type instance = {
  apply : int Spec.Op.op -> int Spec.Op.res;
  invariant : (unit -> (unit, string) result) option;
      (* evaluated by the explorer after every shared-memory step; this
         is the executable RepInv obligation of Section 5 *)
  dump : (unit -> string) option;  (* quiescent contents, for reports *)
}

type t = {
  name : string;
  capacity : int option;  (* oracle capacity for linearizability *)
  initial : int list;  (* oracle start state: prefill after setup *)
  threads : int Spec.Op.op list array;
  instantiate : unit -> instance;
}

(* --- Ready-made instances over the model memory --- *)

module Array_model = Deque.Array_deque.Make (Mem_model)
module Array_batched_model = Deque.Array_deque.Make_batched (Mem_model)
module List_model = Deque.List_deque.Make (Mem_model)
module List_batch = Deque.Deque_intf.Batch (List_model)
module List_dummy_model = Deque.List_deque_dummy.Make (Mem_model)
module List_casn_model = Deque.List_deque_casn.Make (Mem_model)
module Greenwald_v2_model = Baselines.Greenwald_v2.Make (Mem_model)
module Greenwald_v1_model = Baselines.Greenwald_v1.Make (Mem_model)
module Buggy_model = Buggy_deque.Make (Mem_model)

(* The list deque over a fault-injecting model memory: chaos sits
   between the algorithm and the yielding model cells, so the explorer
   still controls the interleaving while spurious DCAS failures and
   stalls are woven into each schedule. *)
module Chaos_model = Dcas.Mem_chaos.Make (Mem_model)
module List_chaos_model = Deque.List_deque.Make (Chaos_model)

(* The Sundell–Tsigas single-word-CAS deque over the model memory: the
   algorithm is a functor over St_deque.CAS, so the one-entry-casn shim
   puts a yield point at every shared read and CAS — the explorer and
   fuzzer drive the identical algorithm text that production runs on
   plain Atomic. *)
module St_model = Baselines.St_deque.Make (Baselines.St_deque.Of_casn (Mem_model))
module St_chaos_model =
  Baselines.St_deque.Make (Baselines.St_deque.Of_casn (Chaos_model))
module St_buggy_model =
  Baselines.St_deque.Make_buggy (Baselines.St_deque.Of_casn (Mem_model))

let apply_via push_right push_left pop_right pop_left d (op : int Spec.Op.op) :
    int Spec.Op.res =
  match op with
  | Spec.Op.Push_right v -> Deque.Deque_intf.res_of_push (push_right d v)
  | Spec.Op.Push_left v -> Deque.Deque_intf.res_of_push (push_left d v)
  | Spec.Op.Pop_right -> Deque.Deque_intf.res_of_pop (pop_right d)
  | Spec.Op.Pop_left -> Deque.Deque_intf.res_of_pop (pop_left d)

(* Route every scripted single op through the batch entry points (as
   width-1 batches), so the explorer exhaustively interleaves the
   batched probe/CASN code paths — including the 2-entry CASN that the
   production substrate specializes into its flat Dcas2 descriptor —
   while the single-op linearizability oracle still applies. *)
let apply_batched push_many_right push_many_left pop_many_right pop_many_left d
    (op : int Spec.Op.op) : int Spec.Op.res =
  match op with
  | Spec.Op.Push_right v -> (
      match push_many_right d [ v ] with 1 -> Spec.Op.Okay | _ -> Spec.Op.Full)
  | Spec.Op.Push_left v -> (
      match push_many_left d [ v ] with 1 -> Spec.Op.Okay | _ -> Spec.Op.Full)
  | Spec.Op.Pop_right -> (
      match pop_many_right d 1 with
      | [ v ] -> Spec.Op.Got v
      | _ -> Spec.Op.Empty)
  | Spec.Op.Pop_left -> (
      match pop_many_left d 1 with [ v ] -> Spec.Op.Got v | _ -> Spec.Op.Empty)

let dump_ints to_list d () =
  to_list d |> List.map string_of_int |> String.concat ","

(* The abstract state after prefill and setup, for the oracle. *)
let oracle_initial ?capacity ~prefill ~setup () =
  let d0 = Spec.Seq_deque.of_list ?capacity prefill in
  let d1 =
    List.fold_left (fun d op -> fst (Spec.Seq_deque.apply d op)) d0 setup
  in
  Spec.Seq_deque.to_list d1

(* Shared scaffolding: [make_instance] builds a fresh structure, plays
   prefill and setup against it, and returns the instance record. *)
let build ~name ~capacity ~prefill ~setup ~threads ~make_instance =
  {
    name;
    capacity;
    initial = oracle_initial ?capacity ~prefill ~setup ();
    threads = Array.of_list threads;
    instantiate =
      (fun () ->
        let apply, invariant, dump = make_instance () in
        List.iter
          (fun v ->
            match apply (Spec.Op.Push_right v) with
            | Spec.Op.Okay -> ()
            | Spec.Op.Full | Spec.Op.Empty | Spec.Op.Got _ ->
                invalid_arg "Scenario: prefill exceeded capacity")
          prefill;
        List.iter (fun op -> ignore (apply op)) setup;
        { apply; invariant; dump });
  }

let array_deque ?(hints = true) ?(setup = []) ~name ~length ~prefill threads =
  build ~name ~capacity:(Some length) ~prefill ~setup ~threads
    ~make_instance:(fun () ->
      let d = Array_model.make ~hints ~length () in
      ( apply_via Array_model.push_right Array_model.push_left
          Array_model.pop_right Array_model.pop_left d,
        Some (fun () -> Array_model.check_invariant d),
        Some (dump_ints Array_model.unsafe_to_list d) ))

let array_deque_batched ?(hints = true) ?(setup = []) ~name ~length ~prefill
    threads =
  build ~name ~capacity:(Some length) ~prefill ~setup ~threads
    ~make_instance:(fun () ->
      let d = Array_batched_model.make ~hints ~length () in
      ( apply_batched Array_batched_model.push_many_right
          Array_batched_model.push_many_left Array_batched_model.pop_many_right
          Array_batched_model.pop_many_left d,
        Some (fun () -> Array_batched_model.check_invariant d),
        Some (dump_ints Array_batched_model.unsafe_to_list d) ))

let list_deque_batched ?(setup = []) ~name ~prefill threads =
  build ~name ~capacity:None ~prefill ~setup ~threads ~make_instance:(fun () ->
      let d = List_model.make ~recycle:false () in
      ( apply_batched List_batch.push_many_right List_batch.push_many_left
          List_batch.pop_many_right List_batch.pop_many_left d,
        Some (fun () -> List_model.check_invariant d),
        Some (dump_ints List_model.unsafe_to_list d) ))

let list_deque ?(recycle = false) ?(setup = []) ~name ~prefill threads =
  build ~name ~capacity:None ~prefill ~setup ~threads ~make_instance:(fun () ->
      let d = List_model.make ~recycle () in
      ( apply_via List_model.push_right List_model.push_left
          List_model.pop_right List_model.pop_left d,
        Some (fun () -> List_model.check_invariant d),
        Some (dump_ints List_model.unsafe_to_list d) ))

let list_deque_dummy ?(setup = []) ~name ~prefill threads =
  build ~name ~capacity:None ~prefill ~setup ~threads ~make_instance:(fun () ->
      let d = List_dummy_model.make () in
      ( apply_via List_dummy_model.push_right List_dummy_model.push_left
          List_dummy_model.pop_right List_dummy_model.pop_left d,
        Some (fun () -> List_dummy_model.check_invariant d),
        Some (dump_ints List_dummy_model.unsafe_to_list d) ))

let list_deque_casn ?(setup = []) ~name ~prefill threads =
  build ~name ~capacity:None ~prefill ~setup ~threads ~make_instance:(fun () ->
      let d = List_casn_model.make () in
      ( apply_via List_casn_model.push_right List_casn_model.push_left
          List_casn_model.pop_right List_casn_model.pop_left d,
        Some (fun () -> List_casn_model.check_invariant d),
        Some (dump_ints List_casn_model.unsafe_to_list d) ))

let list_deque_buggy ?(setup = []) ~name ~prefill threads =
  build ~name ~capacity:None ~prefill ~setup ~threads ~make_instance:(fun () ->
      let d = Buggy_model.make () in
      ( apply_via Buggy_model.push_right Buggy_model.push_left
          Buggy_model.pop_right Buggy_model.pop_left d,
        None,
        Some (dump_ints Buggy_model.unsafe_to_list d) ))

let chaos_stats () = Chaos_model.stats ()

let list_deque_chaos ?(fail_prob = 0.1) ?(freeze_prob = 0.) ?(freeze_spins = 8)
    ?(chaos_seed = 0xC0FFEE) ?(setup = []) ~name ~prefill threads =
  build ~name ~capacity:None ~prefill ~setup ~threads ~make_instance:(fun () ->
      (* re-arming per instance restarts the fault streams, so every
         schedule the explorer replays sees the same fault sequence
         for the same interleaving prefix — exploration stays sound *)
      Chaos_model.configure ~fail_prob ~freeze_prob ~freeze_spins
        ~seed:chaos_seed ();
      let d = List_chaos_model.make () in
      ( apply_via List_chaos_model.push_right List_chaos_model.push_left
          List_chaos_model.pop_right List_chaos_model.pop_left d,
        Some (fun () -> List_chaos_model.check_invariant d),
        Some (dump_ints List_chaos_model.unsafe_to_list d) ))

let st_deque ?(setup = []) ~name ~prefill threads =
  build ~name ~capacity:None ~prefill ~setup ~threads ~make_instance:(fun () ->
      let d = St_model.make () in
      ( apply_via St_model.push_right St_model.push_left St_model.pop_right
          St_model.pop_left d,
        Some (fun () -> St_model.check_invariant d),
        Some (dump_ints St_model.unsafe_to_list d) ))

let st_deque_chaos ?(fail_prob = 0.1) ?(freeze_prob = 0.) ?(freeze_spins = 8)
    ?(chaos_seed = 0xC0FFEE) ?(setup = []) ~name ~prefill threads =
  build ~name ~capacity:None ~prefill ~setup ~threads ~make_instance:(fun () ->
      Chaos_model.configure ~fail_prob ~freeze_prob ~freeze_spins
        ~seed:chaos_seed ();
      let d = St_chaos_model.make () in
      ( apply_via St_chaos_model.push_right St_chaos_model.push_left
          St_chaos_model.pop_right St_chaos_model.pop_left d,
        Some (fun () -> St_chaos_model.check_invariant d),
        Some (dump_ints St_chaos_model.unsafe_to_list d) ))

let st_deque_buggy ?(setup = []) ~name ~prefill threads =
  build ~name ~capacity:None ~prefill ~setup ~threads ~make_instance:(fun () ->
      let d = St_buggy_model.make () in
      ( apply_via St_buggy_model.push_right St_buggy_model.push_left
          St_buggy_model.pop_right St_buggy_model.pop_left d,
        Some (fun () -> St_buggy_model.check_invariant d),
        Some (dump_ints St_buggy_model.unsafe_to_list d) ))

let greenwald_v2 ?(setup = []) ~name ~length ~prefill threads =
  build ~name ~capacity:(Some length) ~prefill ~setup ~threads
    ~make_instance:(fun () ->
      let d = Greenwald_v2_model.make ~length () in
      ( apply_via Greenwald_v2_model.push_right Greenwald_v2_model.push_left
          Greenwald_v2_model.pop_right Greenwald_v2_model.pop_left d,
        None,
        Some (dump_ints Greenwald_v2_model.unsafe_to_list d) ))

(* The sharded service front end over model-memory array deques: K
   policy-wrapped shards behind affinity routing, cross-shard overflow
   and steal rebalancing (Core.Sharded, experiment E24).  The
   composite is NOT linearizable to a single deque — explore it with
   [check:`None] — so its obligations here are per-step:

   - every shard's array-deque representation invariant (Figure 18);
   - no value resident twice across the whole service (primaries and
     overflows), which a racing steal or adoption would violate by
     completing the push leg without the pop leg having committed;

   and end-to-end: [Explorer.check_crash] drains through the sharded
   pop (whose steal sweep reaches every shard, quarantined included)
   and checks exact multiset conservation around the victim's single
   in-flight operation.  [steal_batch] defaults to 1 so any operation
   holds at most one item in hand — the same bound check_crash's
   crash-commit uncertainty accounts for; raise it to explore batched
   rebalancing races under [explore] (but not under [check_crash]).

   Pushes route by their own value (distinct values spread over the
   shards deterministically); pops route by key 0, so an empty home
   exercises the steal scan.  Pushing [adopt_token] is not a push at
   all: it quarantines the token's home shard, adopts (drains) it into
   the survivors and revives it — the control-plane action whose races
   against routing this scenario exists to explore.  It reports
   [Full], which every checker ignores.  With [fence_adoption:false]
   the script runs the planted zombie-adoption bug instead: the
   pre-fence, pre-limbo drain protocol (no quarantine, and an
   unplaceable park-back re-places round-robin forever instead of
   escaping to the limbo stash) — a racing push takes the slot the
   drain just freed, over-commits the bounded shards, and the spin
   becomes a liveness violation the explorer reports as a step-limit
   hit.  The fenced variant survives the same schedules: quarantine
   stops new routes, and the limbo escape absorbs the straggler that
   routed before it.  Pushing [shed_token] models E25's
   deadline shed: it pops (urgent end) through the token's route and
   DISCARDS the value, recording it in a shed log; the invariant then
   also demands that no shed value is still resident and none is shed
   twice — the conservation face of shedding, explored against steal
   and adoption races.  Scripts must use distinct non-token values or
   the no-duplicate obligation misfires. *)
module Sharded_model = Deque.Sharded.Make (Array_model)

let sharded ?(shards = 2) ?(capacity = 2) ?(steal_batch = 1)
    ?(adopt_token = min_int) ?(shed_token = min_int + 1)
    ?(fence_adoption = true) ~name ~prefill threads =
  if adopt_token = shed_token then
    invalid_arg "Scenario.sharded: adopt_token = shed_token";
  build ~name ~capacity:None ~prefill ~setup:[] ~threads
    ~make_instance:(fun () ->
      let t =
        Sharded_model.create ~full:Deque.Policy.Reject ~steal_batch ~shards
          ~capacity ()
      in
      let sheds = ref [] in
      let res_of_push = function
        | `Okay -> Spec.Op.Okay
        | `Full | `Timeout -> Spec.Op.Full
      in
      let res_of_pop = function
        | `Value v -> Spec.Op.Got v
        | `Empty | `Timeout -> Spec.Op.Empty
      in
      let apply (op : int Spec.Op.op) : int Spec.Op.res =
        match op with
        | Spec.Op.(Push_right v | Push_left v) when v = adopt_token ->
            let shard = Sharded_model.shard_of t ~key:v in
            if fence_adoption then begin
              Sharded_model.quarantine t ~shard;
              ignore (Sharded_model.adopt t ~shard);
              Sharded_model.revive t ~shard
            end
            else begin
              (* planted bug: the pre-fence, pre-limbo adoption — no
                 quarantine, so routing keeps targeting the shard
                 mid-drain, and an unplaceable park-back re-places
                 round-robin forever instead of escaping to the limbo
                 stash.  A racing push that takes the freed slot
                 over-commits the shards and livelocks it — caught as
                 a step-limit violation. *)
              let sh i = Sharded_model.shard t (i mod shards) in
              let rec spin_place v i =
                match Sharded_model.P.push (sh i) ~side:`Right v with
                | `Okay -> ()
                | `Full | `Timeout -> spin_place v (i + 1)
              in
              let rec drain_loop () =
                match Sharded_model.P.pop (sh shard) ~side:`Left with
                | `Empty | `Timeout -> ()
                | `Value v ->
                    let rec survivors i =
                      if i >= shards - 1 then
                        (* full sweep: park back on the source — whose
                           freed slot a racing push may have taken *)
                        match
                          Sharded_model.P.push (sh shard) ~side:`Left v
                        with
                        | `Okay -> ()
                        | `Full | `Timeout -> spin_place v (shard + 1)
                      else
                        match
                          Sharded_model.P.push
                            (sh (shard + 1 + i))
                            ~side:`Right v
                        with
                        | `Okay -> drain_loop ()
                        | `Full | `Timeout -> survivors (i + 1)
                    in
                    survivors 0
              in
              drain_loop ()
            end;
            Spec.Op.Full
        | Spec.Op.(Push_right v | Push_left v) when v = shed_token ->
            (* a deadline shed: pop-and-discard through the token's
               route, as a consumer shedding an expired item — the
               value leaves the system without being served *)
            (match Sharded_model.pop ~urgent:true t ~key:shed_token with
            | `Value v' ->
                sheds := v' :: !sheds;
                Spec.Op.Got v'
            | `Empty | `Timeout -> Spec.Op.Empty)
        | Spec.Op.Push_right v -> res_of_push (Sharded_model.push t ~key:v v)
        | Spec.Op.Push_left v ->
            res_of_push (Sharded_model.push ~urgent:true t ~key:v v)
        | Spec.Op.Pop_right -> res_of_pop (Sharded_model.pop t ~key:0)
        | Spec.Op.Pop_left ->
            res_of_pop (Sharded_model.pop ~urgent:true t ~key:0)
      in
      let resident i =
        Array_model.unsafe_to_list
          (Sharded_model.P.primary (Sharded_model.shard t i))
        @ Sharded_model.P.overflow_list (Sharded_model.shard t i)
      in
      let rec dup = function
        | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
        | _ -> None
      in
      let invariant () =
        let rec shard_inv i =
          if i >= shards then Ok ()
          else
            match
              Array_model.check_invariant
                (Sharded_model.P.primary (Sharded_model.shard t i))
            with
            | Ok () -> shard_inv (i + 1)
            | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
        in
        match shard_inv 0 with
        | Error _ as e -> e
        | Ok () -> (
            let all =
              List.concat (List.init shards resident)
              @ Sharded_model.limbo_list t
              |> List.sort compare
            in
            match dup all with
            | Some v ->
                Error (Printf.sprintf "value %d resident in two places" v)
            | None -> (
                match dup (List.sort compare !sheds) with
                | Some v -> Error (Printf.sprintf "value %d shed twice" v)
                | None -> (
                    match
                      List.find_opt (fun v -> List.mem v all) !sheds
                    with
                    | Some v ->
                        Error
                          (Printf.sprintf
                             "value %d both shed and still resident" v)
                    | None -> Ok ())))
      in
      let dump () =
        (List.init shards (fun i ->
             resident i |> List.map string_of_int |> String.concat ",")
        |> String.concat " | ")
        ^ (match Sharded_model.limbo_list t with
          | [] -> ""
          | l ->
              " limbo: " ^ (List.map string_of_int l |> String.concat ","))
        ^
        match !sheds with
        | [] -> ""
        | s ->
            " shed: "
            ^ (List.rev_map string_of_int s |> String.concat ",")
      in
      (apply, Some invariant, Some dump))

let greenwald_v1 ?(setup = []) ~name ~length ~prefill threads =
  build ~name ~capacity:(Some length) ~prefill ~setup ~threads
    ~make_instance:(fun () ->
      let d = Greenwald_v1_model.make ~length () in
      ( apply_via Greenwald_v1_model.push_right Greenwald_v1_model.push_left
          Greenwald_v1_model.pop_right Greenwald_v1_model.pop_left d,
        None,
        Some (dump_ints Greenwald_v1_model.unsafe_to_list d) ))

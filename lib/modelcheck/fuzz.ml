(* Probabilistic schedule fuzzing over the explorer's one-shot runner.

   The DFS explorer enumerates every interleaving but only of tiny
   windows; this module trades exhaustiveness for depth, drawing random
   schedules from two families:

   - a uniform random walk: each step picks uniformly among the enabled
     threads, and
   - PCT (probabilistic concurrency testing, Burckhardt et al.): each
     thread gets a random priority, the highest-priority enabled thread
     always runs, and at d-1 random step indices the running thread's
     priority is demoted below everyone's.  A bug of preemption depth d
     is found with probability >= 1/(n * k^(d-1)) per run, independent
     of how astronomically rare the schedule is under uniform random
     choice.

   Both share the Scenario / linearizability oracle with the DFS
   explorer.  A failing run is minimized before reporting — whole
   threads are dropped, scripts are shortened from the tail, the
   schedule is re-canonicalized toward lowest-thread-first — and the
   result is packaged as a replay token, a single string that rebuilds
   the (shrunk) thread scripts and the exact decision sequence, so the
   failure reproduces byte-for-byte from the CLI or a test.

   Everything is driven by Harness.Splitmix: same seed, same runs, same
   verdict. *)

type strategy = Uniform | Pct of int  (* priority change-point depth d >= 1 *)

type failure = {
  schedule : int list;  (* thread ids, execution order, as replayed *)
  reason : string;
  pretty_history : string;
}

type counterexample = {
  threads : int Spec.Op.op list array;  (* shrunk scripts *)
  failure : failure;
  token : string;
  found_at : int;  (* 1-based index of the first failing run *)
  shrink_accepts : int;  (* candidates accepted during minimization *)
}

type report = {
  budget : int;
  executed : int;
  strategy : strategy;
  seed : int;
  violation : counterexample option;
}

(* --- replay tokens --- *)

let token_version = "dqf1"

let token_of threads schedule =
  let scripts =
    Array.to_list threads
    |> List.map (fun ops -> String.concat "," (List.map Spec.Op.to_token ops))
    |> String.concat "|"
  in
  let sched = String.concat "." (List.map string_of_int schedule) in
  String.concat "/" [ token_version; scripts; sched ]

let parse_script s =
  if String.trim s = "" then Ok []
  else
    String.split_on_char ',' s
    |> List.fold_left
         (fun acc tok ->
           match acc with
           | Error _ as e -> e
           | Ok ops -> (
               match Spec.Op.of_token (String.trim tok) with
               | Ok op -> Ok (op :: ops)
               | Error e -> Error e))
         (Ok [])
    |> Result.map List.rev

let parse_token token =
  match String.split_on_char '/' token with
  | [ v; scripts; sched ] when v = token_version -> (
      let threads =
        String.split_on_char '|' scripts
        |> List.fold_left
             (fun acc s ->
               match acc with
               | Error _ as e -> e
               | Ok ts -> Result.map (fun ops -> ops :: ts) (parse_script s))
             (Ok [])
        |> Result.map (fun ts -> Array.of_list (List.rev ts))
      in
      let schedule =
        if String.trim sched = "" then Ok []
        else
          String.split_on_char '.' sched
          |> List.fold_left
               (fun acc tok ->
                 match (acc, int_of_string_opt tok) with
                 | (Error _ as e), _ -> e
                 | Ok xs, Some t when t >= 0 -> Ok (t :: xs)
                 | Ok _, _ -> Error ("bad thread id " ^ tok))
               (Ok [])
          |> Result.map List.rev
      in
      match (threads, schedule) with
      | Ok t, Ok s -> Ok (t, s)
      | Error e, _ | _, Error e -> Error ("bad replay token: " ^ e))
  | _ -> Error "bad replay token: expected dqf1/<scripts>/<schedule>"

(* --- running one schedule and classifying the outcome --- *)

(* Wrap a decision function so the decisions survive even when the run
   dies in Invariant_violation or Step_limit (the report inside
   run_schedule is lost on raise). *)
let recording inner =
  let decisions = ref [] in
  let decide depth enabled =
    let pos = inner depth enabled in
    decisions := (enabled, pos) :: !decisions;
    pos
  in
  (decide, decisions)

let run_one ~max_steps scenario inner =
  let decide, decisions = recording inner in
  match Explorer.run_schedule ~max_steps scenario ~decide with
  | report -> (
      match Explorer.check_history scenario report with
      | Ok () -> None
      | Error reason ->
          Some
            {
              schedule = Explorer.schedule_of_decisions !decisions;
              reason;
              pretty_history = Explorer.pretty_history report.history;
            })
  | exception Explorer.Invariant_violation e ->
      Some
        {
          schedule = Explorer.schedule_of_decisions !decisions;
          reason = "invariant violated: " ^ e;
          pretty_history = "";
        }
  | exception Explorer.Step_limit ->
      Some
        {
          schedule = Explorer.schedule_of_decisions !decisions;
          reason = "step limit exceeded";
          pretty_history = "";
        }

(* Replay a recorded schedule: follow the thread ids while they are
   enabled; past the end (or when the named thread cannot run) fall
   back to the first enabled thread.  Total, deterministic. *)
let decide_of_schedule schedule =
  let arr = Array.of_list schedule in
  fun depth enabled ->
    if depth < Array.length arr then
      match List.find_index (fun i -> i = arr.(depth)) enabled with
      | Some pos -> pos
      | None -> 0
    else 0

let replay_threads ~max_steps scenario threads schedule =
  run_one ~max_steps
    { scenario with Scenario.threads }
    (decide_of_schedule schedule)

let replay ?(max_steps = 100_000) scenario ~token =
  match parse_token token with
  | Error _ as e -> e
  | Ok (threads, schedule) ->
      Ok (threads, replay_threads ~max_steps scenario threads schedule)

(* --- the two schedule families --- *)

let uniform_decide rng _depth enabled =
  Harness.Splitmix.int rng ~bound:(List.length enabled)

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Harness.Splitmix.int rng ~bound:(i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

(* PCT: initial priorities are a random permutation of d..d+n-1; the
   j-th change point (a step index below [horizon]) demotes whoever is
   running at that step to priority d-1-j, below every initial
   priority and every earlier demotion. *)
let pct_decide rng ~n ~depth ~horizon =
  let prios = Array.init n (fun i -> depth + i) in
  shuffle rng prios;
  let changes =
    Array.init (max 0 (depth - 1)) (fun _ ->
        Harness.Splitmix.int rng ~bound:(max 1 horizon))
  in
  let step = ref 0 in
  fun _depth enabled ->
    let tid =
      List.fold_left
        (fun best i ->
          match best with
          | None -> Some i
          | Some j -> if prios.(i) > prios.(j) then Some i else best)
        None enabled
      |> Option.get
    in
    Array.iteri (fun j at -> if at = !step then prios.(tid) <- depth - 1 - j) changes;
    incr step;
    match List.find_index (fun i -> i = tid) enabled with
    | Some pos -> pos
    | None -> assert false

(* PCT needs an a-priori schedule length to place change points in; a
   deterministic round-robin dry run gives a good-enough horizon. *)
let estimate_steps ~max_steps scenario =
  match
    Explorer.run_schedule ~max_steps scenario ~decide:(fun depth enabled ->
        depth mod List.length enabled)
  with
  | report -> report.Explorer.steps
  | exception (Explorer.Step_limit | Explorer.Invariant_violation _) ->
      max_steps

(* --- counterexample minimization --- *)

(* Shrink a failing (threads, schedule) pair while it keeps failing:
   (1) drop whole threads, (2) shorten scripts from the tail,
   (3) replay ever-shorter schedule prefixes (the fallback decider
   completes the run, so an accepted prefix re-canonicalizes the tail
   to lowest-enabled-first), (4) canonicalize each decision toward the
   lowest thread id.  Every accepted candidate replaces the failure
   with the newly observed one, so the final schedule, history and
   token are mutually consistent. *)
let minimize ~max_steps scenario (f0 : failure) =
  let threads = ref (Array.copy scenario.Scenario.threads) in
  let failure = ref f0 in
  let accepts = ref 0 in
  let try_candidate thr sched =
    match replay_threads ~max_steps scenario thr sched with
    | Some f ->
        threads := thr;
        failure := f;
        incr accepts;
        true
    | None -> false
  in
  let drop_threads () =
    Array.iteri
      (fun t script ->
        if script <> [] then begin
          let thr = Array.copy !threads in
          thr.(t) <- [];
          ignore
            (try_candidate thr (List.filter (fun i -> i <> t) !failure.schedule))
        end)
      !threads
  in
  let shorten_scripts () =
    Array.iteri
      (fun t _ ->
        let rec chop () =
          let script = !threads.(t) in
          if script <> [] then begin
            let thr = Array.copy !threads in
            thr.(t) <- List.filteri (fun i _ -> i < List.length script - 1) script;
            if try_candidate thr !failure.schedule then chop ()
          end
        in
        chop ())
      !threads
  in
  let truncate_schedule () =
    let sched = Array.of_list !failure.schedule in
    let rec go l =
      if l < Array.length sched then
        if
          try_candidate !threads
            (Array.to_list (Array.sub sched 0 l))
        then ()
        else go (l + 1)
    in
    go 0
  in
  let canonicalize () =
    let rec go i =
      let sched = Array.of_list !failure.schedule in
      if i < Array.length sched then begin
        let rec try_tid tid =
          if tid < sched.(i) then
            let cand = Array.copy sched in
            cand.(i) <- tid;
            if try_candidate !threads (Array.to_list cand) then ()
            else try_tid (tid + 1)
        in
        try_tid 0;
        go (i + 1)
      end
    in
    go 0
  in
  let state () = (Array.map (fun s -> s) !threads, !failure.schedule) in
  let rec fixpoint rounds =
    let before = state () in
    drop_threads ();
    shorten_scripts ();
    truncate_schedule ();
    canonicalize ();
    if rounds > 1 && state () <> before then fixpoint (rounds - 1)
  in
  fixpoint 4;
  (!threads, !failure, !accepts)

(* --- the fuzz loop --- *)

let run ?(max_steps = 100_000) ?(shrink = true) ?watchdog ~runs ~seed
    ~strategy scenario =
  let master = Harness.Splitmix.create ~seed in
  let n = Array.length scenario.Scenario.threads in
  let horizon =
    match strategy with
    | Uniform -> 0
    | Pct _ -> estimate_steps ~max_steps scenario
  in
  let mk_decide rng =
    match strategy with
    | Uniform -> uniform_decide rng
    | Pct depth ->
        if depth < 1 then invalid_arg "Fuzz.run: Pct depth must be >= 1";
        pct_decide rng ~n ~depth ~horizon
  in
  (* The fuzz loop itself runs on the calling domain; the watchdog
     (when given) ticks once per executed schedule, so a run that
     livelocks inside the structure under test — below the explorer's
     step accounting — still surfaces as a diagnostic. *)
  let tick k =
    match watchdog with
    | None -> ()
    | Some w ->
        Harness.Watchdog.note w ~tid:0 (Printf.sprintf "fuzz run %d" k);
        Harness.Watchdog.tick w ~tid:0
  in
  Option.iter Harness.Watchdog.start watchdog;
  let finally () =
    Option.iter (fun w -> ignore (Harness.Watchdog.stop w)) watchdog
  in
  Fun.protect ~finally @@ fun () ->
  let rec go k =
    if k > runs then
      { budget = runs; executed = runs; strategy; seed; violation = None }
    else
      let rng = Harness.Splitmix.split master in
      match
        let r = run_one ~max_steps scenario (mk_decide rng) in
        tick k;
        r
      with
      | None -> go (k + 1)
      | Some f ->
          let threads, failure, shrink_accepts =
            if shrink then minimize ~max_steps scenario f
            else (Array.copy scenario.Scenario.threads, f, 0)
          in
          {
            budget = runs;
            executed = k;
            strategy;
            seed;
            violation =
              Some
                {
                  threads;
                  failure;
                  token = token_of threads failure.schedule;
                  found_at = k;
                  shrink_accepts;
                };
          }
  in
  go 1

(* --- reporting (format pinned by the fuzz cram test) --- *)

let strategy_name = function
  | Uniform -> "uniform"
  | Pct d -> Printf.sprintf "pct depth=%d" d

let pp_script ppf ops =
  if ops = [] then Format.pp_print_string ppf "(idle)"
  else
    Format.pp_print_string ppf
      (String.concat "," (List.map Spec.Op.to_token ops))

let pp_failure ppf (threads, (f : failure), token) =
  Format.fprintf ppf "reason: %s@." f.reason;
  Format.fprintf ppf "threads: %s@."
    (String.concat " | "
       (Array.to_list
          (Array.map (Format.asprintf "%a" pp_script) threads)));
  Format.fprintf ppf "schedule: %s@."
    (String.concat " " (List.map string_of_int f.schedule));
  if f.pretty_history <> "" then
    Format.fprintf ppf "history:@.%s@." (String.trim f.pretty_history);
  Format.fprintf ppf "replay: %s" token

let pp_report ppf r =
  match r.violation with
  | None ->
      Format.fprintf ppf "fuzz ok: no violation in %d runs (%s, seed %d)"
        r.executed (strategy_name r.strategy) r.seed
  | Some c ->
      Format.fprintf ppf
        "FUZZ VIOLATION (run %d/%d, %s, seed %d, %d shrink steps)@."
        c.found_at r.budget (strategy_name r.strategy) r.seed c.shrink_accepts;
      pp_failure ppf (c.threads, c.failure, c.token)

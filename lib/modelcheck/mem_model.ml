(* The model checker's memory: a MEMORY implementation whose every
   operation performs a [Yield] effect before executing atomically.
   The explorer installs a handler that captures the continuation at
   each yield, giving it full control over the interleaving of shared
   memory accesses — the granularity at which the paper's proofs reason
   (each transition is a read, a write, or a DCAS; Section 5).

   Locations are plain mutable cells: the explorer runs everything in
   one domain, and an operation's body executes without preemption
   between two yields, which models precisely the atomic machine
   operations of Section 2. *)

type _ Effect.t += Yield : unit Effect.t

type 'a loc = { id : int; mutable content : 'a; equal : 'a -> 'a -> bool }

let name = "model"

(* Single-domain counters suffice here. *)
let reads = ref 0
let writes = ref 0
let dcas_attempts = ref 0
let dcas_successes = ref 0

let stats () : Dcas.Memory_intf.stats =
  {
    Dcas.Memory_intf.empty_stats with
    reads = !reads;
    writes = !writes;
    dcas_attempts = !dcas_attempts;
    dcas_successes = !dcas_successes;
  }

let reset_stats () =
  reads := 0;
  writes := 0;
  dcas_attempts := 0;
  dcas_successes := 0

let make ?(equal = ( = )) v = { id = Dcas.Id.next (); content = v; equal }

(* Single-domain exploration: placement cannot matter, and aliasing
   [make] keeps location ids and schedule counts identical whichever
   constructor the algorithm under test picked. *)
let make_padded = make

let get loc =
  Effect.perform Yield;
  incr reads;
  loc.content

let set loc v =
  Effect.perform Yield;
  incr writes;
  loc.content <- v

(* Unpublished location: not a scheduling point (paper footnote 7). *)
let set_private loc v = loc.content <- v

let dcas_strong l1 l2 o1 o2 n1 n2 =
  if l1.id = l2.id then invalid_arg "Mem_model.dcas: locations must differ";
  Effect.perform Yield;
  incr dcas_attempts;
  let v1 = l1.content and v2 = l2.content in
  let ok = l1.equal v1 o1 && l2.equal v2 o2 in
  if ok then begin
    l1.content <- n1;
    l2.content <- n2;
    incr dcas_successes
  end;
  (ok, v1, v2)

let dcas l1 l2 o1 o2 n1 n2 =
  let ok, _, _ = dcas_strong l1 l2 o1 o2 n1 n2 in
  ok

(* Run [f] with yields transparently continued: for code the explorer
   itself needs to run outside any scheduled thread (building the
   structure under test, evaluating invariants between steps). *)
let unmonitored f =
  Effect.Deep.try_with f ()
    {
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  Effect.Deep.continue k ())
          | _ -> None);
    }

type cass = Cass : 'a loc * 'a * 'a -> cass

let casn cs =
  let ids = List.map (fun (Cass (l, _, _)) -> l.id) cs in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Mem_model.casn: locations must differ";
  Effect.perform Yield;
  incr dcas_attempts;
  let ok = List.for_all (fun (Cass (l, o, _)) -> l.equal l.content o) cs in
  if ok then begin
    List.iter (fun (Cass (l, _, n)) -> l.content <- n) cs;
    incr dcas_successes
  end;
  ok

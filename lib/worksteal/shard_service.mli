(** A supervised producer/consumer service over {!Deque.Sharded}
    (ROADMAP item 3, experiment E24): M producer domains inject keyed
    traffic over K policy-wrapped shards, N consumer domains drain
    them, and an immortal monitor domain replaces dead or silent
    workers, adopting a dead consumer's home shard (quarantine, drain
    into survivors, revive for the replacement) and reconciling the
    pending counter under the {!Supervisor} quiescence certificate.

    The acceptance law, service-wide and fault-storm-proof:

    [spawned = executed + reconciled] and [leftover = 0]

    — a pending unit is granted before each push and returned on an
    honest [`Full]/[`Timeout], so a death inside any operation strands
    at most one unit, written off only once consumers' full no-find
    scans (which walk every shard, quarantined included) certify that
    nothing live remains. *)

type config = {
  shards : int;
  producers : int;
  consumers : int;
  capacity : int;  (** per-shard primary capacity *)
  full : Deque.Policy.full_policy;  (** per-shard full policy *)
  steal_batch : int;  (** rebalancing transfer bound *)
  rate : float;
      (** per-producer open-loop arrivals per second; [<= 0.] = closed
          loop (inject as fast as the service absorbs) *)
  burst : int;  (** arrivals released per token-bucket refill *)
  urgent_share : float;  (** fraction of pushes entering the left end *)
  key_space : int;  (** routing keys drawn uniformly from [0,key_space) *)
  deadline : float option;  (** per-operation budget, seconds *)
  sup : Supervisor.config;
  seed : int;
}

val default : config
(** 4 shards, 2+2 workers, Spill shards, closed loop, 10% urgent. *)

val validate : config -> unit
(** @raise Invalid_argument on non-positive counts, [urgent_share]
    outside [0,1], or an invalid supervisor config. *)

type report = {
  spawned : int;  (** pending units granted to pushes *)
  executed : int;  (** pops served *)
  reconciled : int;  (** phantom units written off at quiescence *)
  leftover : int;  (** items found by the final quiescent drain *)
  pushed_ok : int;
  push_full : int;
  timeouts : int;
  empty_scans : int;  (** consumers' full no-find scans *)
  killed : int;  (** workers lost to {!Harness.Crash.Died} *)
  presumed_dead : int;  (** silent workers replaced without certificate *)
  replacements : int;
  adoptions : int;  (** shard quarantine+drain+revive cycles *)
  adopted_items : int;
  orphans_helped : int;
  recoveries : float list;
      (** seconds from detection to replacement running, per event *)
  per_shard_pushed : int array;
      (** external landings per shard — feed
          {!Harness.Metrics.Starvation} *)
  per_shard_popped : int array;
  elapsed : float;
}

val conserved : report -> bool
(** [spawned = executed + reconciled && leftover = 0] — the E24
    acceptance predicate. *)

val pp_report : Format.formatter -> report -> unit

module Make (D : Deque.Deque_intf.S) : sig
  module S : module type of Deque.Sharded.Make (D)

  val run :
    ?config:config ->
    ?watchdog:Harness.Watchdog.t ->
    ?on_push:(tid:int -> ns:float -> Deque.Policy.push_outcome -> unit) ->
    ?on_pop:(tid:int -> ns:float -> int Deque.Policy.pop_outcome -> unit) ->
    ?driver:(unit -> unit) ->
    duration:float ->
    unit ->
    report
  (** Run the service for [duration] seconds of injection (values are
      ints: each producer pushes its own send counter).  [on_push] /
      [on_pop] observe every operation with its wall-clock latency in
      nanoseconds — E24's histogram feed; they run on the worker
      domains, so they must be thread-safe and cheap.  [driver], when
      given, runs on the calling domain {e while traffic flows} and
      replaces the default [sleepf duration] — E24 uses it to fire
      crash, stall and chaos storms mid-soak; its return stops the
      producers, after which the run drains, reconciles and joins.

      Workers enroll with {!Harness.Crash} and
      {!Harness.Stall.Freezer} under their slot id (producers first,
      then consumers), so callers can target kills and freezes at
      specific roles. *)
end

module Array_service : module type of Make (Deque.Array_deque.Lockfree)
module List_service : module type of Make (Deque.List_deque.Lockfree)

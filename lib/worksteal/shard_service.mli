(** A supervised producer/consumer service over {!Deque.Sharded}
    (ROADMAP item 3, experiment E24): M producer domains inject keyed
    traffic over K policy-wrapped shards, N consumer domains drain
    them, and an immortal monitor domain replaces dead or silent
    workers, adopting a dead consumer's home shard (quarantine, drain
    into survivors, revive for the replacement) and reconciling the
    pending counter under the {!Supervisor} quiescence certificate.

    The acceptance law, service-wide and fault-storm-proof:

    [spawned = executed + reconciled + shed] and [leftover = 0]

    — a pending unit is granted before each push and returned on an
    honest [`Full], so a death inside any operation strands at most
    one unit, written off only once consumers' full no-find scans
    (which walk every shard, quarantined included) certify that
    nothing live remains.  [shed] is deadline enforcement (E25): ops
    refused at admission, timed out mid-push, or popped past their
    stamped expiry resolve their unit as first-class timed-out
    outcomes that stay on the books.

    Failure detection is two disjoint detectors: tick-based silence
    ([silence_after]) for frozen heartbeats, and progress-based zombie
    detection ([zombie_after]) for consumers whose heartbeat ticks
    while their progress counters are frozen
    ({!Harness.Stall.Zombie}).  Idle consumers trip neither — their
    empty scans advance progress, and their idle-backoff parks are
    flagged so they cannot read as silence.  Either detector fences
    the old worker before replacing it, so a woken or cured worker
    never runs beside its replacement and no slot is adopted twice
    for one failure. *)

type config = {
  shards : int;
  producers : int;
  consumers : int;
  capacity : int;  (** per-shard primary capacity *)
  full : Deque.Policy.full_policy;  (** per-shard full policy *)
  steal_batch : int;  (** rebalancing transfer bound *)
  rate : float;
      (** per-producer open-loop arrivals per second; [<= 0.] = closed
          loop (inject as fast as the service absorbs) *)
  burst : int;  (** arrivals released per token-bucket refill *)
  urgent_share : float;  (** fraction of pushes entering the left end *)
  key_space : int;  (** routing keys drawn uniformly from [0,key_space) *)
  deadline : float option;
      (** per-request budget, seconds: bounds the push call, stamps
          the item with an absolute expiry, and sheds it at dequeue
          once exceeded *)
  admission : bool;
      (** refuse requests at enqueue when the home shard's observed
          p99 sojourn already exceeds [deadline]
          ({!Deque.Sharded.Make.admit}); no-op without a deadline *)
  sup : Supervisor.config;
  seed : int;
}

val default : config
(** 4 shards, 2+2 workers, Spill shards, closed loop, 10% urgent. *)

val validate : config -> unit
(** @raise Invalid_argument on non-positive counts, [urgent_share]
    outside [0,1], or an invalid supervisor config. *)

type report = {
  spawned : int;  (** pending units granted to pushes *)
  executed : int;  (** pops served within deadline *)
  reconciled : int;  (** phantom units written off at quiescence *)
  shed_admission : int;
      (** ops refused at enqueue by admission control (unit retained) *)
  shed_expired : int;
      (** ops timed out with their unit retained: the push ran out of
          budget, or the item was popped past its stamped expiry *)
  leftover : int;  (** items found by the final quiescent drain *)
  pushed_ok : int;
  push_full : int;
  timeouts : int;  (** push/pop calls that ran out of deadline *)
  empty_scans : int;  (** consumers' full no-find scans *)
  overshoot_max_ns : int;
      (** worst served-op completion past its stamped expiry; expired
          items are shed at dequeue, so anything beyond a scheduling
          epsilon is an enforcement bug — the E25 gate *)
  killed : int;  (** workers lost to {!Harness.Crash.Died} *)
  presumed_dead : int;  (** silent workers replaced without certificate *)
  zombies_fenced : int;
      (** consumers fenced by progress-based zombie detection *)
  replacements : int;
  adoptions : int;  (** shard quarantine+drain+revive cycles *)
  adopted_items : int;
  orphans_helped : int;
  recoveries : float list;
      (** seconds from detection to replacement running, per event *)
  per_shard_pushed : int array;
      (** external landings per shard — feed
          {!Harness.Metrics.Starvation} *)
  per_shard_popped : int array;
  elapsed : float;
}

val shed : report -> int
(** [shed_admission + shed_expired] — ops resolved as timed out with
    their spawned unit retained. *)

val conserved : report -> bool
(** [spawned = executed + reconciled + shed && leftover = 0] — the
    E24/E25 acceptance predicate. *)

val pp_report : Format.formatter -> report -> unit

module Make (D : Deque.Deque_intf.S) : sig
  module S : module type of Deque.Sharded.Make (D)

  val run :
    ?config:config ->
    ?watchdog:Harness.Watchdog.t ->
    ?on_push:(tid:int -> ns:float -> Deque.Policy.push_outcome -> unit) ->
    ?on_pop:(tid:int -> ns:float -> int Deque.Policy.pop_outcome -> unit) ->
    ?driver:(unit -> unit) ->
    duration:float ->
    unit ->
    report
  (** Run the service for [duration] seconds of injection (values are
      ints: each producer pushes its own send counter).  [on_push] /
      [on_pop] observe every operation with its wall-clock latency in
      nanoseconds — E24's histogram feed; they run on the worker
      domains, so they must be thread-safe and cheap.  [driver], when
      given, runs on the calling domain {e while traffic flows} and
      replaces the default [sleepf duration] — E24 uses it to fire
      crash, stall and chaos storms mid-soak; its return stops the
      producers, after which the run drains, reconciles and joins.

      Workers enroll with {!Harness.Crash} and
      {!Harness.Stall.Freezer} under their slot id (producers first,
      then consumers) and poll {!Harness.Stall.Zombie} under the same
      id, so callers can target kills, freezes and zombifications at
      specific roles. *)
end

module Array_service : module type of Make (Deque.Array_deque.Lockfree)
module List_service : module type of Make (Deque.List_deque.Lockfree)

(* A supervised producer/consumer service over a sharded deque
   (ROADMAP item 3, experiment E24).

   [Core.Sharded] is the data plane: K policy-wrapped deques behind
   affinity routing, cross-shard overflow and steal rebalancing.  This
   module is the control plane that turns it into a service that
   survives fail-stop faults: M producer domains inject keyed traffic
   (open-loop token bucket or closed loop), N consumer domains drain
   it, and a monitor domain — never enrolled with the crash layer,
   hence immortal — watches for dead or silent workers, quarantines
   and adopts a dead consumer's home shard, spawns an epoch-free
   replacement (each crash tid dies at most once, so replacements are
   immortal), and finally reconciles the pending counter under the
   same quiescence certificate as {!Scheduler.Make.run_supervised}.

   Conservation is the acceptance law, service-wide:

     spawned = executed + reconciled + shed   and   leftover = 0

   [spawned] counts pushes that were granted a pending unit (the unit
   is taken BEFORE the push and returned if the push honestly answers
   [`Full], so a death inside a push leaves the unit up whether or not
   the item landed); [executed] counts pops served; [reconciled] is
   what the quiescence certificate wrote off — at most one in-flight
   item per death, the same bound the scheduler proves.  [shed] is the
   deadline-enforcement path (E25): ops refused at admission (the home
   shard's observed p99 sojourn already exceeds the budget), ops whose
   push ran out of budget, and ops popped after their stamped expiry
   all resolve their pending unit as first-class timed-out outcomes —
   they keep their spawned unit, so shedding is visible in the books,
   never silent.  [leftover] is the final quiescent drain of every
   shard, which must be empty precisely because a consumer's full
   no-find scan (the certificate's ingredient) walks every shard,
   quarantined ones included, primary and overflow both.

   Failure detection is two disjoint detectors (Supervisor knobs):
   tick-based silence ([silence_after]) catches workers whose
   heartbeat froze (dead without a certificate, or frozen), and
   progress-based zombie detection ([zombie_after]) catches consumers
   whose heartbeat keeps ticking while their progress counters — ops
   resolved plus no-find scans — are frozen (Harness.Stall.Zombie's
   alive-but-useless mode).  An idle consumer trips neither: its
   empty scans advance progress, and its deliberate idle-backoff
   sleeps are flagged ([idling]) so a long park between scans can
   never be mistaken for silence.  Either detector fences the old
   worker (it retires at its next loop iteration, even if it wakes
   later) before the slot is replaced and — for consumers — its home
   shard is adopted; the owners table holds one tracked entry per
   slot, so a fenced worker is never examined again and no slot is
   adopted twice for one failure. *)

type config = {
  shards : int;
  producers : int;
  consumers : int;
  capacity : int;  (* per-shard primary capacity *)
  full : Deque.Policy.full_policy;  (* per-shard full policy *)
  steal_batch : int;  (* rebalancing transfer bound *)
  rate : float;  (* per-producer arrivals/s; <= 0 = closed loop *)
  burst : int;  (* arrivals released per token-bucket refill *)
  urgent_share : float;  (* fraction of pushes entering the left end *)
  key_space : int;  (* routing keys drawn uniformly from [0,key_space) *)
  deadline : float option;
  (* per-request budget, seconds: bounds the push, stamps the item
     with an absolute expiry, and sheds it at dequeue if exceeded *)
  admission : bool;
  (* refuse requests at enqueue when the home shard's observed p99
     sojourn already exceeds the deadline (no-op without one) *)
  sup : Supervisor.config;  (* monitor poll / silence / quiet knobs *)
  seed : int;
}

let default =
  {
    shards = 4;
    producers = 2;
    consumers = 2;
    capacity = 1024;
    full = Deque.Policy.Spill;
    steal_batch = 8;
    rate = 0.;
    burst = 32;
    urgent_share = 0.1;
    key_space = 1024;
    deadline = None;
    admission = false;
    sup = Supervisor.default;
    seed = 0x5EA5;
  }

let validate c =
  if c.shards < 1 then invalid_arg "Shard_service: shards must be >= 1";
  if c.producers < 1 then invalid_arg "Shard_service: producers must be >= 1";
  if c.consumers < 1 then invalid_arg "Shard_service: consumers must be >= 1";
  if c.burst < 1 then invalid_arg "Shard_service: burst must be >= 1";
  if c.key_space < 1 then invalid_arg "Shard_service: key_space must be >= 1";
  if not (c.urgent_share >= 0. && c.urgent_share <= 1.) then
    invalid_arg "Shard_service: urgent_share must be in [0,1]";
  Supervisor.validate c.sup

type report = {
  spawned : int;  (* pending units granted to pushes *)
  executed : int;  (* pops served (within deadline) *)
  reconciled : int;  (* phantom units written off at quiescence *)
  shed_admission : int;  (* ops refused at enqueue by admission control *)
  shed_expired : int;
  (* ops timed out with their unit retained: push ran out of budget,
     or the item was popped after its stamped expiry *)
  leftover : int;  (* items found by the final quiescent drain *)
  pushed_ok : int;  (* pushes that landed *)
  push_full : int;  (* pushes refused as `Full (unit returned) *)
  timeouts : int;  (* push/pop calls that ran out of deadline *)
  empty_scans : int;  (* consumers' full no-find scans *)
  overshoot_max_ns : int;
  (* worst served-op completion past its stamped expiry: expired items
     are shed at dequeue, so anything beyond a scheduling epsilon here
     is an enforcement bug — the E25 gate *)
  killed : int;  (* workers lost to Crash.Died *)
  presumed_dead : int;  (* silent workers replaced without certificate *)
  zombies_fenced : int;  (* ticking-but-stuck consumers fenced *)
  replacements : int;  (* replacement domains spawned *)
  adoptions : int;  (* shard quarantine+drain+revive cycles *)
  adopted_items : int;  (* items moved off quarantined shards *)
  orphans_helped : int;  (* descriptors completed for dead domains *)
  recoveries : float list;
      (* seconds from detection to replacement running, per event *)
  per_shard_pushed : int array;  (* external landings, for Starvation *)
  per_shard_popped : int array;
  elapsed : float;
}

let shed r = r.shed_admission + r.shed_expired

let conserved r =
  r.spawned = r.executed + r.reconciled + shed r && r.leftover = 0

let pp_report ppf r =
  Format.fprintf ppf
    "spawned=%d executed=%d reconciled=%d shed=%d+%d leftover=%d ok=%d \
     full=%d timeout=%d overshoot-max=%dns killed=%d presumed-dead=%d \
     zombies-fenced=%d replacements=%d adoptions=%d adopted-items=%d \
     orphans-helped=%d recoveries=%d"
    r.spawned r.executed r.reconciled r.shed_admission r.shed_expired
    r.leftover r.pushed_ok r.push_full r.timeouts r.overshoot_max_ns
    r.killed r.presumed_dead r.zombies_fenced r.replacements r.adoptions
    r.adopted_items r.orphans_helped
    (List.length r.recoveries)

module Make (D : Deque.Deque_intf.S) = struct
  module S = Deque.Sharded.Make (D)

  (* Per-worker-domain state, monitor-readable; all atomics padded
     (the records sit next to each other in the tracking list). *)
  type wstate = {
    slot : int;
    role : [ `Producer | `Consumer ];
    busy : bool Atomic.t;  (* inside an operation + its accounting *)
    ticks : int Atomic.t;  (* liveness heartbeat, bumped every loop *)
    scans : int Atomic.t;  (* full no-find service scans (consumers) *)
    spawned_w : int Atomic.t;  (* net pending units granted *)
    executed_w : int Atomic.t;
    ok_w : int Atomic.t;
    full_w : int Atomic.t;
    timeout_w : int Atomic.t;
    shed_adm_w : int Atomic.t;  (* refused at enqueue by admission *)
    shed_exp_w : int Atomic.t;  (* budget spent: push timeout / expired pop *)
    late_ns_w : int Atomic.t;  (* max served completion past expiry, ns *)
    idling : bool Atomic.t;
    (* inside the deliberate idle-backoff sleep: the monitor must not
       read the park as silence (the false-silence hazard) *)
    fenced : bool Atomic.t;
    (* set by the monitor before replacing this worker: the worker
       retires at its next loop check, so a presumed-dead worker that
       wakes up, or a cured zombie, can never run beside its
       replacement *)
    died : bool Atomic.t;
    retired : bool Atomic.t;
  }

  let make_wstate ~slot ~role =
    {
      slot;
      role;
      busy = Dcas.Padding.make_atomic false;
      ticks = Dcas.Padding.make_atomic 0;
      scans = Dcas.Padding.make_atomic 0;
      spawned_w = Dcas.Padding.make_atomic 0;
      executed_w = Dcas.Padding.make_atomic 0;
      ok_w = Dcas.Padding.make_atomic 0;
      full_w = Dcas.Padding.make_atomic 0;
      timeout_w = Dcas.Padding.make_atomic 0;
      shed_adm_w = Dcas.Padding.make_atomic 0;
      shed_exp_w = Dcas.Padding.make_atomic 0;
      late_ns_w = Dcas.Padding.make_atomic 0;
      idling = Dcas.Padding.make_atomic false;
      fenced = Dcas.Padding.make_atomic false;
      died = Dcas.Padding.make_atomic false;
      retired = Dcas.Padding.make_atomic false;
    }

  (* Progress (as opposed to liveness): operations this worker has
     RESOLVED — served, refused, timed out, shed — plus finished
     no-find scans.  A healthy idle consumer keeps completing empty
     scans, so its progress moves; a zombie's heartbeat moves while
     this stays frozen.  That asymmetry is the whole detector. *)
  let progress ws =
    Atomic.get ws.executed_w + Atomic.get ws.ok_w + Atomic.get ws.full_w
    + Atomic.get ws.timeout_w + Atomic.get ws.shed_adm_w
    + Atomic.get ws.shed_exp_w + Atomic.get ws.scans

  (* What travels through the deques: the value plus its deadline
     stamp.  [expiry] is absolute ([infinity] without a deadline) so a
     consumer can shed an expired item with one clock read; [home] is
     the key's home shard, so the sojourn lands on the shard admission
     control will consult for the next request on that key. *)
  type item = { v : int; enq : float; expiry : float; home : int }

  type state = {
    service : item S.t;
    cfg : config;
    pending : int Atomic.t;
    stop : bool Atomic.t;  (* producers: stop injecting *)
    producers_running : int Atomic.t;
    drained : bool Atomic.t;  (* consumers may exit: stop + pending=0 *)
    wd : Harness.Watchdog.t option;
  }

  (* Consumers are pinned to a home shard round-robin by slot: their
     pops route there first, so a consumer death starves a specific
     shard until the monitor adopts it — the scenario E24 storms. *)
  let consumer_shard cfg ~slot = (slot - cfg.producers) mod cfg.shards

  (* Keys whose affinity hash routes to a wanted shard, found by probe
     (pure, so computed once per worker). *)
  let key_for service ~shard =
    let rec go k =
      if k > 1_000_000 then shard (* unreachable: hash is uniform *)
      else if S.shard_of service ~key:k = shard then k
      else go (k + 1)
    in
    go 0

  let tick_wd st ~tid =
    match st.wd with
    | None -> ()
    | Some w -> Harness.Watchdog.tick w ~tid

  (* --- producer --- *)

  (* A push is granted its pending unit BEFORE the attempt: if the
     push honestly answers [`Full] the unit is returned; if the domain
     dies inside, the unit stays up and is reconciled at quiescence
     whether or not the item landed.  (If it landed, a consumer pops
     it and the books balance through [executed].)  The deadline paths
     resolve the unit as SHED instead of returning it — a timed-out op
     was a real request the service failed, so it keeps its place in
     the conservation law: refused at admission (the home shard's
     observed p99 already exceeds the whole budget, so the enqueue
     would only age into an expired pop) or timed out inside the push
     itself.  Both surface to the observer as the first-class
     [`Timeout] outcome. *)
  let produce st ws ~on_push ~rng value =
    let cfg = st.cfg in
    let key = Harness.Splitmix.int rng ~bound:cfg.key_space in
    let urgent =
      cfg.urgent_share > 0.
      && Harness.Splitmix.int rng ~bound:10_000
         < int_of_float (cfg.urgent_share *. 10_000.)
    in
    Atomic.set ws.busy true;
    Atomic.incr st.pending;
    Atomic.incr ws.spawned_w;
    let t0 = Unix.gettimeofday () in
    let admitted =
      match cfg.deadline with
      | Some budget when cfg.admission ->
          S.admit st.service ~key ~budget
      | Some _ | None -> true
    in
    let out =
      if not admitted then begin
        Atomic.decr st.pending;
        Atomic.incr ws.shed_adm_w;
        `Timeout
      end
      else
        let expiry =
          match cfg.deadline with None -> infinity | Some b -> t0 +. b
        in
        let item =
          { v = value; enq = t0; expiry; home = S.shard_of st.service ~key }
        in
        match S.push ?deadline:cfg.deadline ~urgent st.service ~key item with
        | `Okay ->
            Atomic.incr ws.ok_w;
            `Okay
        | `Full ->
            Atomic.decr st.pending;
            Atomic.decr ws.spawned_w;
            Atomic.incr ws.full_w;
            `Full
        | `Timeout ->
            (* the budget died inside the push: shed, keeping the
               spawned unit on the books *)
            Atomic.decr st.pending;
            Atomic.incr ws.shed_exp_w;
            Atomic.incr ws.timeout_w;
            `Timeout
    in
    let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    Atomic.set ws.busy false;
    on_push ~tid:ws.slot ~ns out;
    tick_wd st ~tid:ws.slot

  let producer_loop st ws ~on_push =
    let cfg = st.cfg in
    let rng =
      Harness.Splitmix.create ~seed:(cfg.seed + (ws.slot * 7919) + 1)
    in
    let t_start = Unix.gettimeofday () in
    let sent = ref 0 in
    while not (Atomic.get st.stop) && not (Atomic.get ws.fenced) do
      Atomic.incr ws.ticks;
      if Harness.Stall.Zombie.active ~tid:ws.slot then begin
        (* zombified: alive and ticking, injecting nothing *)
        Harness.Stall.Zombie.bite ~tid:ws.slot;
        tick_wd st ~tid:ws.slot;
        Unix.sleepf 0.0001
      end
      else if cfg.rate <= 0. then begin
        (* closed loop: inject as fast as the service absorbs *)
        produce st ws ~on_push ~rng !sent;
        incr sent
      end
      else begin
        (* open loop: the token bucket owes [rate * elapsed] arrivals
           regardless of completions; release them in bursts *)
        let owed =
          int_of_float ((Unix.gettimeofday () -. t_start) *. cfg.rate)
          - !sent
        in
        if owed >= 1 then
          let n = min owed cfg.burst in
          for _ = 1 to n do
            produce st ws ~on_push ~rng !sent;
            incr sent
          done
        else Domain.cpu_relax ()
      end
    done

  (* --- consumer --- *)

  let consumer_loop st ws ~on_pop =
    let cfg = st.cfg in
    let home = consumer_shard cfg ~slot:ws.slot in
    let key = key_for st.service ~shard:home in
    (* Park briefly (busy=false) after a run of consecutive no-finds.
       Besides not burning a core on an idle service, this is what
       makes quiescence certification live on few cores: the monitor
       needs to sample an instant where no consumer is inside a pop,
       and a consumer that never sleeps is inside a pop almost
       always. *)
    let idle = ref 0 in
    let rec loop () =
      if Atomic.get ws.fenced then ()  (* replaced: retire quietly *)
      else if Atomic.get st.drained then ()
      else if Harness.Stall.Zombie.active ~tid:ws.slot then begin
        (* zombified: the heartbeat ticks, the watchdog is fed, and no
           work happens — indistinguishable from healthy by every
           liveness signal, which is the point; only the frozen
           progress counters give it away *)
        Atomic.incr ws.ticks;
        Harness.Stall.Zombie.bite ~tid:ws.slot;
        tick_wd st ~tid:ws.slot;
        Unix.sleepf 0.0001;
        loop ()
      end
      else begin
        Atomic.incr ws.ticks;
        Atomic.set ws.busy true;
        let t0 = Unix.gettimeofday () in
        (* urgent-side pops: left end first = urgent entries, then the
           oldest bulk — FIFO service with priority jumping.  A pop that
           comes back `Empty has scanned every shard (Sharded's steal
           sweep), which is exactly the full no-find scan certificate
           quiescence needs.  The deadline budget applies only while
           traffic flows: a budgeted pop blocks inside the deque for
           the whole budget when the service is empty, which would pin
           [busy] true almost always and starve the monitor of the
           all-idle instant quiescence certification samples for — so
           once [stop] is set (no new requests left to bound), drain
           pops run unbudgeted and certificates flow freely. *)
        let deadline =
          if Atomic.get st.stop then None else cfg.deadline
        in
        let out = S.pop ?deadline ~urgent:true st.service ~key in
        let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
        let out' =
          match out with
          | `Value it ->
              let now = Unix.gettimeofday () in
              (* the sojourn estimate must see the whole tail, shed
                 requests included — they ARE the tail *)
              S.note_sojourn st.service ~shard:it.home
                ~ns:((now -. it.enq) *. 1e9);
              if now >= it.expiry then begin
                (* expired in queue: shed at dequeue — the op resolves
                   as a first-class timeout, its unit stays spawned *)
                Atomic.incr ws.shed_exp_w;
                Atomic.decr st.pending;
                `Timeout
              end
              else begin
                Atomic.incr ws.executed_w;
                Atomic.decr st.pending;
                (* overshoot is judged at completion, on a fresh clock
                   read: the gap between the expiry check above and
                   here is exactly the scheduling epsilon E25 allows *)
                let late_ns =
                  int_of_float ((Unix.gettimeofday () -. it.expiry) *. 1e9)
                in
                if late_ns > Atomic.get ws.late_ns_w then
                  Atomic.set ws.late_ns_w late_ns;
                `Value it.v
              end
          | `Empty ->
              Atomic.incr ws.scans;
              `Empty
          | `Timeout ->
              Atomic.incr ws.timeout_w;
              `Timeout
        in
        Atomic.set ws.busy false;
        on_pop ~tid:ws.slot ~ns out';
        tick_wd st ~tid:ws.slot;
        if Atomic.get st.drained then ()
        else begin
          (match out with
          | `Value _ -> idle := 0
          | `Empty | `Timeout ->
              incr idle;
              if !idle >= 32 then begin
                (* flag the deliberate park: an idle consumer
                   descheduled inside this sleep must read as idling,
                   never as silent (the false-silence hazard) *)
                Atomic.set ws.idling true;
                Unix.sleepf 0.0005;
                Atomic.set ws.idling false
              end
              else Domain.cpu_relax ());
          loop ()
        end
      end
    in
    loop ()

  (* --- domain bodies --- *)

  let body st ws ~on_push ~on_pop () =
    if ws.slot < Harness.Crash.max_slots then
      Harness.Crash.enroll ~tid:ws.slot;
    if ws.slot < Harness.Stall.Freezer.max_slots then
      Harness.Stall.Freezer.enroll ~tid:ws.slot;
    (match ws.role with
    | `Producer -> (
        try producer_loop st ws ~on_push
        with Harness.Crash.Died ->
          Atomic.set ws.died true)
    | `Consumer -> (
        try consumer_loop st ws ~on_pop
        with Harness.Crash.Died -> Atomic.set ws.died true));
    (match ws.role with
    | `Producer -> Atomic.decr st.producers_running
    | `Consumer -> ());
    Atomic.set ws.retired true

  (* --- monitor --- *)

  type tracked = {
    ws : wstate;
    domain : unit Domain.t option;  (* None for initial workers *)
    mutable last_ticks : int;
    mutable last_move : float;
    mutable last_progress : int;
    mutable last_progress_move : float;
  }

  let sum field tracked =
    List.fold_left (fun n t -> n + Atomic.get (field t.ws)) 0 tracked

  (* Replace the dead/silent owner of [slot].  Consumers additionally
     get their home shard quarantined, drained into the survivors and
     revived for the replacement — the adoption path under test. *)
  let replace st ~on_push ~on_pop ~slot ~role =
    let moved =
      match role with
      | `Producer -> 0
      | `Consumer ->
          let shard = consumer_shard st.cfg ~slot in
          S.quarantine st.service ~shard;
          let n = S.adopt st.service ~shard in
          S.revive st.service ~shard;
          n
    in
    let ws = make_wstate ~slot ~role in
    (match role with
    | `Producer -> Atomic.incr st.producers_running
    | `Consumer -> ());
    let d = Domain.spawn (body st ws ~on_push ~on_pop) in
    (moved, ws, d)

  let supervise st ~on_push ~on_pop ~initial =
    let cfg = st.cfg in
    let tracked = ref initial in
    let owners = Array.of_list initial in
    let adoptions = ref 0 in
    let adopted_items = ref 0 in
    let reconciled = ref 0 in
    let replacements = ref 0 in
    let presumed = ref 0 in
    let zombies = ref 0 in
    let recoveries = ref [] in
    let q = Supervisor.quiescence () in
    let debug = Sys.getenv_opt "SHARD_SERVICE_DEBUG" <> None in
    let finished () =
      Atomic.get st.drained
      && List.for_all
           (fun t ->
             Atomic.get t.ws.retired || Atomic.get t.ws.died)
           !tracked
    in
    while not (finished ()) do
      let now = Unix.gettimeofday () in
      Array.iteri
        (fun slot t ->
          let dead = Atomic.get t.ws.died in
          let gone = dead || Atomic.get t.ws.retired in
          (* heartbeat sampling is shared by both detectors, so it is
             tracked unconditionally (not inside the silence guard):
             zombie detection must know the ticks are MOVING even when
             silence detection is disabled *)
          let ticks_moving =
            let ticks = Atomic.get t.ws.ticks in
            if ticks <> t.last_ticks then begin
              t.last_ticks <- ticks;
              t.last_move <- now;
              true
            end
            else false
          in
          (* ticks frozen too long: dead without a certificate, or
             frozen mid-operation.  The deliberate idle-backoff sleep
             is excluded ([idling]) — an idle consumer descheduled
             inside its park is healthy, not silent. *)
          let silent =
            cfg.sup.silence_after > 0. && (not gone) && (not ticks_moving)
            && (not (Atomic.get t.ws.idling))
            && now -. t.last_move >= cfg.sup.silence_after
          in
          (* ticks moving, progress frozen: a zombie.  Consumers only —
             an open-loop producer between token-bucket refills is
             legitimately not progressing.  [ticks_moving] is required
             on the very sweep that crosses the threshold: a healthy
             consumer descheduled for a long spell (oversubscribed
             box) freezes ticks and progress together, and must not
             read as a zombie — only a demonstrably beating heart with
             frozen progress is one.  Disjoint from [silent] by
             construction, so one worker can only ever be claimed by
             one detector per sweep, and the fence below makes the
             claim final. *)
          let zombie =
            cfg.sup.zombie_after > 0. && (not gone) && (not silent)
            && t.ws.role = `Consumer
            &&
            let p = progress t.ws in
            if p <> t.last_progress then begin
              t.last_progress <- p;
              t.last_progress_move <- now;
              false
            end
            else
              ticks_moving
              && (not (Atomic.get t.ws.idling))
              && now -. t.last_progress_move >= cfg.sup.zombie_after
          in
          if dead || silent || zombie then begin
            if silent then incr presumed;
            if zombie then incr zombies;
            (* fence before replacing: the old worker retires at its
               next loop check, so a silent worker that wakes up or a
               zombie that gets cured never runs beside its
               replacement — and since the owners table now points at
               the replacement, this slot's failure is acted on
               exactly once (no double-adoption) *)
            Atomic.set t.ws.fenced true;
            let role = t.ws.role in
            let moved, ws, d = replace st ~on_push ~on_pop ~slot ~role in
            (match role with
            | `Consumer ->
                incr adoptions;
                adopted_items := !adopted_items + moved
            | `Producer -> ());
            incr replacements;
            recoveries := (Unix.gettimeofday () -. now) :: !recoveries;
            let t' =
              {
                ws;
                domain = Some d;
                last_ticks = Atomic.get ws.ticks;
                last_move = Unix.gettimeofday ();
                last_progress = progress ws;
                last_progress_move = Unix.gettimeofday ();
              }
            in
            owners.(slot) <- t';
            tracked := t' :: !tracked
          end)
        owners;
      (* producers gone + pending drained => consumers may leave *)
      if
        Atomic.get st.stop
        && Atomic.get st.producers_running = 0
        && Atomic.get st.pending = 0
      then Atomic.set st.drained true;
      (* quiescence: write off units stranded by deaths.  Only
         consumer scans certify — their no-find scan walks every
         shard of the service. *)
      let live t =
        (not (Atomic.get t.ws.died)) && not (Atomic.get t.ws.retired)
      in
      let live_consumers =
        List.filter (fun t -> live t && t.ws.role = `Consumer) !tracked
      in
      let busy =
        List.exists (fun t -> live t && Atomic.get t.ws.busy) !tracked
      in
      let scans =
        Array.of_list
          (List.map (fun t -> Atomic.get t.ws.scans) live_consumers)
      in
      let pending = Atomic.get st.pending in
      let safe =
        Atomic.get st.stop
        && Atomic.get st.producers_running = 0
        && Supervisor.observe q ~pending
             ~executed:(sum (fun w -> w.executed_w) !tracked)
             ~spawned:(sum (fun w -> w.spawned_w) !tracked)
             ~busy ~scans ~quiet_sweeps:cfg.sup.quiet_sweeps
      in
      if safe && Atomic.compare_and_set st.pending pending 0 then
        reconciled := !reconciled + pending;
      (* monitor-eye view of the drain, for diagnosing stuck soaks
         (notably: busy never sampling false on few cores) *)
      if debug then
        Printf.eprintf
            "[mon] stop=%b pr=%d pending=%d drained=%b busy=%b scans=[%s] \
             tracked=%d retired=%d died=%d\n%!"
            (Atomic.get st.stop)
            (Atomic.get st.producers_running)
            pending (Atomic.get st.drained) busy
            (String.concat ","
               (List.map string_of_int (Array.to_list scans)))
            (List.length !tracked)
            (List.length
               (List.filter (fun t -> Atomic.get t.ws.retired) !tracked))
            (List.length
               (List.filter (fun t -> Atomic.get t.ws.died) !tracked));
      Unix.sleepf cfg.sup.interval
    done;
    List.iter
      (fun t -> match t.domain with None -> () | Some d -> Domain.join d)
      !tracked;
    (!tracked, !adoptions, !adopted_items, !reconciled, !replacements,
     !presumed, !zombies, !recoveries)

  (* --- entry point --- *)

  let null_push ~tid:_ ~ns:_ _ = ()
  let null_pop ~tid:_ ~ns:_ _ = ()

  (* Run the service.  [driver] executes on the calling domain while
     traffic flows — E24 uses it to fire crash/stall/chaos storms
     mid-soak — and its return asks the producers to stop; the run
     then drains, reconciles and joins.  Default driver: sleep
     [duration] seconds. *)
  let run ?(config = default) ?watchdog
      ?(on_push = null_push) ?(on_pop = null_pop)
      ?driver ~duration () =
    validate config;
    if duration < 0. then invalid_arg "Shard_service.run: duration < 0";
    let service =
      S.create ~full:config.full ~steal_batch:config.steal_batch
        ~shards:config.shards ~capacity:config.capacity ()
    in
    let st =
      {
        service;
        cfg = config;
        pending = Dcas.Padding.make_atomic 0;
        stop = Dcas.Padding.make_atomic false;
        producers_running = Dcas.Padding.make_atomic config.producers;
        drained = Dcas.Padding.make_atomic false;
        wd = watchdog;
      }
    in
    let workers = config.producers + config.consumers in
    let wss =
      Array.init workers (fun slot ->
          let role =
            if slot < config.producers then `Producer else `Consumer
          in
          make_wstate ~slot ~role)
    in
    Option.iter Harness.Watchdog.start watchdog;
    let t0 = Unix.gettimeofday () in
    let initial =
      Array.to_list
        (Array.map
           (fun ws ->
             let d = Domain.spawn (body st ws ~on_push ~on_pop) in
             ( d,
               {
                 ws;
                 domain = None;
                 last_ticks = 0;
                 last_move = t0;
                 last_progress = 0;
                 last_progress_move = t0;
               } ))
           wss)
    in
    let sup =
      Domain.spawn (fun () ->
          supervise st ~on_push ~on_pop
            ~initial:(List.map snd initial))
    in
    (match driver with
    | Some f -> f ()
    | None -> Unix.sleepf duration);
    Atomic.set st.stop true;
    List.iter (fun (d, _) -> Domain.join d) initial;
    let ( tracked, adoptions, adopted_items, reconciled, replacements,
          presumed, zombies, recoveries ) =
      Domain.join sup
    in
    Option.iter (fun w -> ignore (Harness.Watchdog.stop w)) watchdog;
    let elapsed = Unix.gettimeofday () -. t0 in
    (* survivors must decide every descriptor a dead domain left
       undecided before the quiescent drain reads past them *)
    let orphans_helped = Dcas.Mem_lockfree.help_orphans () in
    let leftover = List.length (S.drain service) in
    let killed =
      List.fold_left
        (fun n t -> if Atomic.get t.ws.died then n + 1 else n)
        0 tracked
    in
    let stats = S.stats service in
    {
      spawned = sum (fun w -> w.spawned_w) tracked;
      executed = sum (fun w -> w.executed_w) tracked;
      reconciled;
      shed_admission = sum (fun w -> w.shed_adm_w) tracked;
      shed_expired = sum (fun w -> w.shed_exp_w) tracked;
      leftover;
      pushed_ok = sum (fun w -> w.ok_w) tracked;
      push_full = sum (fun w -> w.full_w) tracked;
      timeouts = sum (fun w -> w.timeout_w) tracked;
      empty_scans = sum (fun w -> w.scans) tracked;
      overshoot_max_ns =
        List.fold_left
          (fun m t -> max m (Atomic.get t.ws.late_ns_w))
          0 tracked;
      killed;
      presumed_dead = presumed;
      zombies_fenced = zombies;
      replacements;
      adoptions;
      adopted_items;
      orphans_helped;
      recoveries = List.rev recoveries;
      per_shard_pushed = stats.Deque.Sharded.per_shard_pushed;
      per_shard_popped = stats.Deque.Sharded.per_shard_popped;
      elapsed;
    }
end

module Array_service = Make (Deque.Array_deque.Lockfree)
module List_service = Make (Deque.List_deque.Lockfree)

(** Supervision machinery for crash-fault-tolerant work stealing:
    policy knobs, the run report, and the quiescence tracker behind
    [Scheduler.Make.run_supervised]'s pending-counter reconciliation.

    Fault model: fail-stop ({!Harness.Crash}) — a worker dies for good
    at a shared-memory point, possibly mid-CASN with a published
    undecided descriptor.  The supervisor adopts the dead worker's
    deque (drained from the thief end, safe on every adapter) into an
    epoch-fenced replacement; what a death can actually lose is only
    the task it was executing, a child mid-push, and a stolen batch in
    hand — at most [steal_batch + 2] pending units per death, written
    off by reconciliation once provably phantom. *)

type config = {
  interval : float;
      (** monitor poll period in seconds (default 2ms); also the sweep
          granularity of the quiescence window *)
  silence_after : float;
      (** presume a worker dead when its tick counter has not moved
          for this long (default 0.25s); [0.] disables silence
          detection — deaths certified by {!Harness.Crash.Died} still
          trigger adoption.  A silent-but-alive worker adopted by
          mistake becomes a {e zombie}: the epoch fence makes its
          stale pushes run inline and it degrades to a thief. *)
  zombie_after : float;
      (** fence a consumer as a {e zombie} — alive and ticking its
          heartbeat but making no progress (no op completed, no
          no-find scan finished) for this long (default [0.] =
          disabled).  Complements [silence_after]: silence catches
          frozen ticks, zombie detection catches moving ticks with
          frozen progress ({!Harness.Stall.Zombie}), and an idle
          consumer trips neither because its empty scans keep the
          progress counter advancing. *)
  quiet_sweeps : int;
      (** consecutive frozen sweeps required before reconciling
          (default 3) *)
}

val default : config

val validate : config -> unit
(** @raise Invalid_argument on non-positive [interval], negative
    [silence_after] or [zombie_after], or [quiet_sweeps < 1]. *)

type report = {
  spawned : int;  (** tasks made pending, root included *)
  executed : int;  (** task bodies run to completion (or caught raise) *)
  raised : int;  (** bodies that raised — caught by the per-task barrier *)
  killed : int;  (** workers that died via {!Harness.Crash.Died} *)
  presumed_dead : int;  (** silent workers adopted without a certificate *)
  adopted : int;  (** tasks drained from adopted workers' deques *)
  reconciled : int;  (** phantom pending units written off at quiescence *)
  replacements : int;  (** replacement workers the supervisor spawned *)
  orphans_helped : int;
      (** orphaned descriptors helped to completion at the end of the
          run ({!Dcas.Mem_lockfree.help_orphans}) *)
}

val conserved : report -> bool
(** Task conservation: [spawned = executed + reconciled].  Holds for
    every terminating supervised run; the E22 acceptance predicate. *)

val pp_report : Format.formatter -> report -> unit

(** {2 Quiescence certification}

    The supervisor may write off leftover [pending] units only when no
    live task exists anywhere.  The tracker certifies this from
    per-sweep observations: counters frozen and nobody busy for
    [quiet_sweeps] sweeps, {e and} every live worker completed at
    least two full no-find steal scans inside the frozen window (two
    completions inside the window imply one scan ran entirely within
    it, and a full scan over frozen deques cannot miss a queued
    task). *)

type quiescence

val quiescence : unit -> quiescence

val observe :
  quiescence ->
  pending:int ->
  executed:int ->
  spawned:int ->
  busy:bool ->
  scans:int array ->
  quiet_sweeps:int ->
  bool
(** Record one supervisor sweep; [scans] are the live workers' full
    no-find scan counters (a length change restarts the window) and
    [busy] is true when any live worker is executing a task body.
    Returns [true] when reconciling [pending] to zero is provably
    safe. *)

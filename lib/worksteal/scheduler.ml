(* A work-stealing task scheduler in the style of Arora, Blumofe and
   Plaxton [4] — the application domain the paper cites for deques
   ("currently used in load balancing algorithms").  Each worker owns a
   deque of tasks: it pushes and pops its own bottom end (LIFO, for
   locality) and steals from a victim's top end (FIFO, for load
   spread).  Global termination is detected with a pending-task
   counter: it is incremented before a task becomes visible and
   decremented after the task body finishes, so it can only reach zero
   when no task is queued or running.

   Two robustness layers ride on top of the classic design:

   - a per-task exception barrier: a task body that raises no longer
     kills its worker domain (which would strand the pending counter
     and hang every other worker); the exception is counted, the first
     one is re-raised by [run] after all domains have joined;

   - a supervised mode ([run_supervised]) tolerating fail-stop worker
     deaths ({!Harness.Crash}): a monitor domain detects dead or
     silent workers, drains their deques from the thief end into
     epoch-fenced replacements, and reconciles the pending counter
     once the units lost with the dead workers are provably the only
     thing keeping it above zero (see {!Supervisor}). *)

module Make (D : Worksteal_intf.WORKSTEAL_DEQUE) :
  Worksteal_intf.SCHEDULER = struct
  type pool = {
    deques : task D.t array;
        (* slot contents are swapped on adoption; both old and new
           values are valid deques, so racy reads stay safe *)
    pending : int Atomic.t;
    workers : int;
    steal_max : int;  (* tasks taken per steal; 1 = classic steal-one *)
    capacity : int;  (* per-deque capacity, for replacement deques *)
    epochs : int Atomic.t array;
        (* per-slot adoption epoch: bumped when the slot's deque is
           adopted, so a presumed-dead-but-alive worker (zombie) can
           detect that it no longer owns the slot *)
    first_error : exn option Atomic.t;
        (* first exception a task body raised, re-raised by [run] *)
    wd : Harness.Watchdog.t option;
  }

  (* Per-worker-domain state.  Each spawned domain — initial worker or
     replacement — has its own record; the supervisor reads them to
     detect deaths and silence and to sum progress counters without a
     shared hot counter.  All atomics padded: these sit next to each
     other in the registry. *)
  and wstate = {
    slot : int;  (* deque slot this domain (last) owned *)
    born : int;  (* pool.epochs.(slot) at enrollment; the fence *)
    busy : bool Atomic.t;  (* executing a task body right now *)
    ticks : int Atomic.t;  (* liveness heartbeat, bumped every loop *)
    scans : int Atomic.t;  (* completed full no-find steal sweeps *)
    executed_w : int Atomic.t;
    raised_w : int Atomic.t;
    spawned_w : int Atomic.t;
    died : bool Atomic.t;  (* exited via Crash.Died *)
    retired : bool Atomic.t;  (* worker body finished, any reason *)
  }

  and ctx = {
    pool : pool;
    worker : int;
    rng : Harness.Splitmix.t;
    ws : wstate;
  }

  and task = ctx -> unit

  let deque_name = D.name
  let worker ctx = ctx.worker
  let rng ctx = ctx.rng

  let make_wstate ~slot ~born =
    {
      slot;
      born;
      busy = Dcas.Padding.make_atomic false;
      ticks = Dcas.Padding.make_atomic 0;
      scans = Dcas.Padding.make_atomic 0;
      executed_w = Dcas.Padding.make_atomic 0;
      raised_w = Dcas.Padding.make_atomic 0;
      spawned_w = Dcas.Padding.make_atomic 0;
      died = Dcas.Padding.make_atomic false;
      retired = Dcas.Padding.make_atomic false;
    }

  (* Has this worker's slot been adopted out from under it?  True only
     for zombies: workers presumed dead (silent) whose deque was handed
     to a replacement.  A zombie must no longer touch the owner end of
     the slot's deque — the replacement owns it. *)
  let zombie ctx = Atomic.get ctx.pool.epochs.(ctx.worker) <> ctx.ws.born

  (* Run a task body and retire it, behind the exception barrier.  A
     raising task is a task bug, not a scheduler failure: count it,
     remember the first exception for [run] to re-raise, and retire
     the task normally so [pending] still drains.  {!Harness.Crash.Died}
     is the one exception that must NOT be caught: it is a fail-stop
     fault — the domain dies here, the task's pending unit is written
     off later by the supervisor's reconciliation. *)
  let execute ctx (t : task) =
    let ws = ctx.ws in
    Atomic.set ws.busy true;
    (try t ctx with
    | Harness.Crash.Died as e -> raise e
    | e ->
        ignore (Atomic.compare_and_set ctx.pool.first_error None (Some e));
        Atomic.incr ws.raised_w);
    Atomic.incr ws.executed_w;
    Atomic.set ws.busy false;
    Atomic.decr ctx.pool.pending;
    (* the watchdog heartbeat is per completed task, not per loop
       iteration: idle steal-spinning must not mask a genuine stall *)
    match ctx.pool.wd with
    | None -> ()
    | Some w -> Harness.Watchdog.tick w ~tid:ctx.worker

  let spawn ctx t =
    Atomic.incr ctx.pool.pending;
    Atomic.incr ctx.ws.spawned_w;
    (* the epoch fence: a zombie's push would land on the replacement's
       deque (owner-end, two owners) or on the drained old one (task
       stranded forever) — run inline instead, which is always sound *)
    if zombie ctx || not (D.push ctx.pool.deques.(ctx.worker) t) then
      execute ctx t

  (* One full steal sweep over every other worker's deque, starting at
     a random victim for fairness.  Returning [] certifies that a
     complete pass found every deque empty — the certificate the
     supervisor's quiescence tracker counts (see {!Supervisor}); a
     single random victim probe could miss a queued task forever. *)
  let steal_scan ctx =
    let n = ctx.pool.workers in
    if n <= 1 then []
    else begin
      let start = Harness.Splitmix.int ctx.rng ~bound:n in
      let rec go k =
        if k >= n then []
        else
          let v = (start + k) mod n in
          if v = ctx.worker then go (k + 1)
          else
            match D.steal_batch ctx.pool.deques.(v) ~max:ctx.pool.steal_max with
            | [] -> go (k + 1)
            | ts -> ts
      in
      go 0
    end

  let worker_loop ctx =
    let ws = ctx.ws in
    let rec loop () =
      Atomic.incr ws.ticks;
      let z = zombie ctx in
      match (if z then None else D.pop ctx.pool.deques.(ctx.worker)) with
      | Some t ->
          execute ctx t;
          loop ()
      | None ->
          if Atomic.get ctx.pool.pending = 0 then ()
          else begin
            (match steal_scan ctx with
            | [] ->
                Atomic.incr ws.scans;
                Domain.cpu_relax ()
            | t :: rest ->
                (* stolen tasks are already counted in [pending], so
                   they are re-queued directly, not via [spawn]; one
                   that does not fit — or that a zombie cannot
                   re-queue — runs inline rather than be lost *)
                List.iter
                  (fun t' ->
                    if z || not (D.push ctx.pool.deques.(ctx.worker) t') then
                      execute ctx t')
                  rest;
                execute ctx t);
            loop ()
          end
    in
    loop ()

  (* The body of a worker domain: run the loop, certify a fail-stop
     death, always mark retirement.  [Crash.point] only fires at
     instrumented memory operations, so the handler itself runs in a
     crash-free zone. *)
  let worker_body ctx () =
    (try worker_loop ctx
     with Harness.Crash.Died -> Atomic.set ctx.ws.died true);
    Atomic.set ctx.ws.retired true

  (* Supervised workers enroll with the crash layer under their slot
     id, making them eligible victims; each tid dies at most once, so
     a replacement enrolled under the same slot is never re-killed.
     The supervisor domain never enrolls and is immortal. *)
  let supervised_body ctx () =
    if ctx.worker < Harness.Crash.max_slots then
      Harness.Crash.enroll ~tid:ctx.worker;
    worker_body ctx ()

  let make_pool ?wd ~workers ~capacity ~steal_max () =
    {
      deques = Array.init workers (fun _ -> D.create ~capacity ());
      pending = Atomic.make 0;
      workers;
      steal_max;
      capacity;
      epochs = Array.init workers (fun _ -> Dcas.Padding.make_atomic 0);
      first_error = Atomic.make None;
      wd;
    }

  let check_args ~who ~workers ~steal_batch =
    if workers < 1 then
      invalid_arg (Printf.sprintf "Scheduler.%s: workers must be >= 1" who);
    if steal_batch < 1 then
      invalid_arg (Printf.sprintf "Scheduler.%s: steal_batch must be >= 1" who)

  let seed_root pool root =
    Atomic.incr pool.pending;
    if not (D.push pool.deques.(0) root) then
      invalid_arg "Scheduler: capacity too small for the root task"

  (* Join every spawned domain even when one join raises, then
     re-raise the first failure — a raising domain must not leave its
     siblings unjoined and leaking. *)
  let join_all domains =
    let errs =
      List.filter_map
        (fun d -> try Domain.join d; None with e -> Some e)
        domains
    in
    match errs with [] -> () | e :: _ -> raise e

  let run ?(seed = 0xD0E5) ?(steal_batch = 8) ~workers ~capacity root =
    check_args ~who:"run" ~workers ~steal_batch;
    let master = Harness.Splitmix.create ~seed in
    let pool = make_pool ~workers ~capacity ~steal_max:steal_batch () in
    let ctxs =
      Array.init workers (fun worker ->
          {
            pool;
            worker;
            rng = Harness.Splitmix.split master;
            ws = make_wstate ~slot:worker ~born:0;
          })
    in
    (* seed the root task on worker 0's deque *)
    seed_root pool root;
    let domains =
      List.init workers (fun i -> Domain.spawn (worker_body ctxs.(i)))
    in
    join_all domains;
    match Atomic.get pool.first_error with
    | Some e -> raise e
    | None -> ()

  (* --- Supervised mode --- *)

  (* Supervisor-side view of one worker domain, with the silence
     tracking only the (single-threaded) monitor touches. *)
  type tracked = {
    ws : wstate;
    domain : unit Domain.t option;  (* None for initial workers *)
    mutable last_ticks : int;
    mutable last_move : float;
  }

  let sum field tracked =
    List.fold_left (fun n t -> n + Atomic.get (field t.ws)) 0 tracked

  (* Adopt [slot]: fence the (possibly zombie) previous owner, drain
     the abandoned deque from the thief end — safe concurrently with
     live thieves on every adapter — and hand the tasks to a fresh
     replacement worker.  The drained tasks are already counted in
     [pending]; the replacement pushes them itself (it is the owner of
     the fresh deque), running inline any that do not fit. *)
  let adopt pool ~rng ~slot ~now =
    Atomic.incr pool.epochs.(slot);
    let old = pool.deques.(slot) in
    let rec drain acc =
      match D.steal_batch old ~max:(max 1 pool.steal_max) with
      | [] -> acc
      | ts -> drain (acc @ ts)
    in
    let tasks = drain [] in
    let fresh = D.create ~capacity:pool.capacity () in
    pool.deques.(slot) <- fresh;
    let born = Atomic.get pool.epochs.(slot) in
    let ws = make_wstate ~slot ~born in
    let ctx =
      { pool; worker = slot; rng = Harness.Splitmix.split rng; ws }
    in
    let d =
      Domain.spawn (fun () ->
          if slot < Harness.Crash.max_slots then
            Harness.Crash.enroll ~tid:slot;
          (try
             List.iter
               (fun t -> if not (D.push fresh t) then execute ctx t)
               tasks;
             worker_loop ctx
           with Harness.Crash.Died -> Atomic.set ws.died true);
          Atomic.set ws.retired true)
    in
    ( List.length tasks,
      { ws; domain = Some d; last_ticks = Atomic.get ws.ticks; last_move = now }
    )

  (* The monitor loop, run on its own (never-enrolled, hence immortal)
     domain.  Each sweep: adopt slots whose current owner died or went
     silent, feed the quiescence tracker, reconcile [pending] when it
     certifies that only dead workers' lost units remain. *)
  let supervise pool (config : Supervisor.config) ~rng ~initial =
    let tracked = ref initial in
    (* current owner of each slot, as tracked records *)
    let owners = Array.of_list initial in
    let adopted = ref 0 in
    let reconciled = ref 0 in
    let replacements = ref 0 in
    let presumed = ref 0 in
    let q = Supervisor.quiescence () in
    let finished () =
      Atomic.get pool.pending = 0
      && List.for_all (fun t -> Atomic.get t.ws.retired) !tracked
    in
    while not (finished ()) do
      let now = Unix.gettimeofday () in
      (* adoption: a slot needs a new owner when its current owner has
         a death certificate, or has been silent past the threshold
         (ticks move every loop iteration, so silence means dead-
         without-certificate or frozen; a wrong presumption creates a
         zombie, which the epoch fence defuses) *)
      for slot = 0 to pool.workers - 1 do
        let t = owners.(slot) in
        let dead = Atomic.get t.ws.died in
        let silent =
          config.silence_after > 0.
          && (not (Atomic.get t.ws.retired))
          &&
          let ticks = Atomic.get t.ws.ticks in
          if ticks <> t.last_ticks then begin
            t.last_ticks <- ticks;
            t.last_move <- now;
            false
          end
          else now -. t.last_move >= config.silence_after
        in
        if dead || silent then begin
          if silent && not dead then incr presumed;
          let n, t' = adopt pool ~rng ~slot ~now in
          adopted := !adopted + n;
          incr replacements;
          owners.(slot) <- t';
          tracked := t' :: !tracked
        end
      done;
      (* quiescence: certify that leftover pending units are phantom *)
      let live t =
        (not (Atomic.get t.ws.died)) && not (Atomic.get t.ws.retired)
      in
      let live_tracked = List.filter live !tracked in
      let busy =
        List.exists (fun t -> Atomic.get t.ws.busy) live_tracked
      in
      let scans =
        Array.of_list
          (List.map (fun t -> Atomic.get t.ws.scans) live_tracked)
      in
      let pending = Atomic.get pool.pending in
      let safe =
        Supervisor.observe q ~pending
          ~executed:(sum (fun w -> w.executed_w) !tracked)
          ~spawned:(sum (fun w -> w.spawned_w) !tracked)
          ~busy ~scans ~quiet_sweeps:config.quiet_sweeps
      in
      if safe && Atomic.compare_and_set pool.pending pending 0 then
        reconciled := !reconciled + pending;
      Unix.sleepf config.interval
    done;
    (* replacements retire once pending hits zero; collect them *)
    List.iter
      (fun t -> match t.domain with None -> () | Some d -> Domain.join d)
      !tracked;
    let killed =
      List.fold_left
        (fun n t -> if Atomic.get t.ws.died then n + 1 else n)
        0 !tracked
    in
    {
      Supervisor.spawned = 1 + sum (fun w -> w.spawned_w) !tracked;
      executed = sum (fun w -> w.executed_w) !tracked;
      raised = sum (fun w -> w.raised_w) !tracked;
      killed;
      presumed_dead = !presumed;
      adopted = !adopted;
      reconciled = !reconciled;
      replacements = !replacements;
      (* survivors must decide every descriptor a dead domain left
         undecided — the deque drain alone only *reads* past them *)
      orphans_helped = Dcas.Mem_lockfree.help_orphans ();
    }

  let run_supervised ?(seed = 0xD0E5) ?(steal_batch = 8)
      ?(config = Supervisor.default) ?watchdog ~workers ~capacity root =
    check_args ~who:"run_supervised" ~workers ~steal_batch;
    Supervisor.validate config;
    let master = Harness.Splitmix.create ~seed in
    let pool =
      make_pool ?wd:watchdog ~workers ~capacity ~steal_max:steal_batch ()
    in
    let ctxs =
      Array.init workers (fun worker ->
          {
            pool;
            worker;
            rng = Harness.Splitmix.split master;
            ws = make_wstate ~slot:worker ~born:0;
          })
    in
    seed_root pool root;
    Option.iter Harness.Watchdog.start watchdog;
    let t0 = Unix.gettimeofday () in
    let initial =
      List.init workers (fun i ->
          let ctx = ctxs.(i) in
          let d = Domain.spawn (supervised_body ctx) in
          (d, { ws = ctx.ws; domain = None; last_ticks = 0; last_move = t0 }))
    in
    let worker_domains = List.map fst initial in
    let sup_rng = Harness.Splitmix.split master in
    let sup =
      Domain.spawn (fun () ->
          supervise pool config ~rng:sup_rng
            ~initial:(List.map snd initial))
    in
    (* initial workers retire when pending reaches zero — naturally or
       by reconciliation; dead ones are joinable immediately *)
    join_all worker_domains;
    let report = Domain.join sup in
    Option.iter (fun w -> ignore (Harness.Watchdog.stop w)) watchdog;
    (match Atomic.get pool.first_error with Some e -> raise e | None -> ());
    report
end

(* --- Deque adapters --- *)

(* The ABP deque implements the restricted interface natively. *)
module Abp_adapter : Worksteal_intf.WORKSTEAL_DEQUE = struct
  type 'a t = 'a Baselines.Abp_deque.t

  let name = Baselines.Abp_deque.name
  let create = Baselines.Abp_deque.create

  let push d v =
    match Baselines.Abp_deque.push_bottom d v with `Okay -> true | `Full -> false

  let pop d =
    match Baselines.Abp_deque.pop_bottom d with
    | `Value v -> Some v
    | `Empty -> None

  let steal d =
    match Baselines.Abp_deque.steal_retry d with
    | `Value v -> Some v
    | `Empty -> None

  (* The ABP deque can only steal one item per CAS; a batch is a
     sequence of single steals (each its own linearization point). *)
  let steal_batch d ~max =
    let rec go n acc =
      if n >= max then List.rev acc
      else
        match steal d with
        | Some v -> go (n + 1) (v :: acc)
        | None -> List.rev acc
    in
    go 0 []
end

(* Any general deque runs the same role by restriction: the owner uses
   the right end, thieves pop the left end. *)
module Restrict (D : Deque.Deque_intf.S) : Worksteal_intf.WORKSTEAL_DEQUE =
struct
  type 'a t = 'a D.t

  module B = Deque.Deque_intf.Batch (D)

  let name = D.name
  let create = D.create
  let push d v = match D.push_right d v with `Okay -> true | `Full -> false
  let pop d = match D.pop_right d with `Value v -> Some v | `Empty -> None
  let steal d = match D.pop_left d with `Value v -> Some v | `Empty -> None
  let steal_batch d ~max = B.pop_many_left d max
end

module Abp_scheduler = Make (Abp_adapter)

(* The array deque restricts like any deque but steals batches with its
   native atomic [pop_many_left]: one CASN takes the whole batch. *)
module Array_deque_adapter : Worksteal_intf.WORKSTEAL_DEQUE = struct
  module A = Deque.Array_deque.Lockfree

  type 'a t = 'a A.t

  let name = A.name
  let create = A.create
  let push d v = match A.push_right d v with `Okay -> true | `Full -> false
  let pop d = match A.pop_right d with `Value v -> Some v | `Empty -> None
  let steal d = match A.pop_left d with `Value v -> Some v | `Empty -> None
  let steal_batch d ~max = A.pop_many_left d max
end

module List_deque_adapter = Restrict (struct
  include Deque.List_deque.Lockfree

  let name = Deque.List_deque.Lockfree.name
end)

module Lock_deque_adapter = Restrict (struct
  include Baselines.Lock_deque

  let name = Baselines.Lock_deque.name
end)

(* The Sundell–Tsigas single-word-CAS deque restricts like any general
   deque; steal_batch is the generic one-at-a-time fallback (each steal
   its own marking CAS — there is no multi-word primitive to batch
   under). *)
module St_deque_adapter = Restrict (struct
  include Baselines.St_deque

  let name = Baselines.St_deque.name
end)

module Array_scheduler = Make (Array_deque_adapter)
module List_scheduler = Make (List_deque_adapter)
module Lock_scheduler = Make (Lock_deque_adapter)
module St_scheduler = Make (St_deque_adapter)

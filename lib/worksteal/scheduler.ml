(* A work-stealing task scheduler in the style of Arora, Blumofe and
   Plaxton [4] — the application domain the paper cites for deques
   ("currently used in load balancing algorithms").  Each worker owns a
   deque of tasks: it pushes and pops its own bottom end (LIFO, for
   locality) and steals from a random victim's top end (FIFO, for load
   spread).  Global termination is detected with a pending-task
   counter: it is incremented before a task becomes visible and
   decremented after the task body finishes, so it can only reach zero
   when no task is queued or running. *)

module Make (D : Worksteal_intf.WORKSTEAL_DEQUE) :
  Worksteal_intf.SCHEDULER = struct
  type pool = {
    deques : task D.t array;
    pending : int Atomic.t;
    workers : int;
    steal_max : int;  (* tasks taken per steal; 1 = classic steal-one *)
  }

  and ctx = { pool : pool; worker : int; rng : Harness.Splitmix.t }
  and task = ctx -> unit

  let deque_name = D.name
  let worker ctx = ctx.worker
  let rng ctx = ctx.rng

  (* Run a task body and retire it. *)
  let execute ctx (t : task) =
    t ctx;
    Atomic.decr ctx.pool.pending

  let spawn ctx t =
    Atomic.incr ctx.pool.pending;
    if not (D.push ctx.pool.deques.(ctx.worker) t) then
      (* deque full: run inline rather than lose the task *)
      execute ctx t

  (* Steal a batch from a random victim: the synchronization cost of
     one steal is amortized over up to [steal_max] tasks. *)
  let steal_from ctx =
    let n = ctx.pool.workers in
    if n <= 1 then []
    else begin
      let victim =
        let v = Harness.Splitmix.int ctx.rng ~bound:(n - 1) in
        if v >= ctx.worker then v + 1 else v
      in
      D.steal_batch ctx.pool.deques.(victim) ~max:ctx.pool.steal_max
    end

  let worker_loop ctx =
    let own = ctx.pool.deques.(ctx.worker) in
    let rec loop () =
      match D.pop own with
      | Some t ->
          execute ctx t;
          loop ()
      | None ->
          if Atomic.get ctx.pool.pending = 0 then ()
          else begin
            (match steal_from ctx with
            | [] -> Domain.cpu_relax ()
            | t :: rest ->
                (* stolen tasks are already counted in [pending], so
                   they are re-queued directly, not via [spawn]; one
                   that does not fit runs inline rather than be lost *)
                List.iter
                  (fun t' -> if not (D.push own t') then execute ctx t')
                  rest;
                execute ctx t);
            loop ()
          end
    in
    loop ()

  let run ?(seed = 0xD0E5) ?(steal_batch = 8) ~workers ~capacity root =
    if workers < 1 then invalid_arg "Scheduler.run: workers must be >= 1";
    if steal_batch < 1 then
      invalid_arg "Scheduler.run: steal_batch must be >= 1";
    let master = Harness.Splitmix.create ~seed in
    let pool =
      {
        deques = Array.init workers (fun _ -> D.create ~capacity ());
        pending = Atomic.make 0;
        workers;
        steal_max = steal_batch;
      }
    in
    let ctxs =
      Array.init workers (fun worker ->
          { pool; worker; rng = Harness.Splitmix.split master })
    in
    (* seed the root task on worker 0's deque *)
    Atomic.incr pool.pending;
    if not (D.push pool.deques.(0) root) then
      invalid_arg "Scheduler.run: capacity too small for the root task";
    let domains =
      List.init workers (fun i -> Domain.spawn (fun () -> worker_loop ctxs.(i)))
    in
    List.iter Domain.join domains
end

(* --- Deque adapters --- *)

(* The ABP deque implements the restricted interface natively. *)
module Abp_adapter : Worksteal_intf.WORKSTEAL_DEQUE = struct
  type 'a t = 'a Baselines.Abp_deque.t

  let name = Baselines.Abp_deque.name
  let create = Baselines.Abp_deque.create

  let push d v =
    match Baselines.Abp_deque.push_bottom d v with `Okay -> true | `Full -> false

  let pop d =
    match Baselines.Abp_deque.pop_bottom d with
    | `Value v -> Some v
    | `Empty -> None

  let steal d =
    match Baselines.Abp_deque.steal_retry d with
    | `Value v -> Some v
    | `Empty -> None

  (* The ABP deque can only steal one item per CAS; a batch is a
     sequence of single steals (each its own linearization point). *)
  let steal_batch d ~max =
    let rec go n acc =
      if n >= max then List.rev acc
      else
        match steal d with
        | Some v -> go (n + 1) (v :: acc)
        | None -> List.rev acc
    in
    go 0 []
end

(* Any general deque runs the same role by restriction: the owner uses
   the right end, thieves pop the left end. *)
module Restrict (D : Deque.Deque_intf.S) : Worksteal_intf.WORKSTEAL_DEQUE =
struct
  type 'a t = 'a D.t

  module B = Deque.Deque_intf.Batch (D)

  let name = D.name
  let create = D.create
  let push d v = match D.push_right d v with `Okay -> true | `Full -> false
  let pop d = match D.pop_right d with `Value v -> Some v | `Empty -> None
  let steal d = match D.pop_left d with `Value v -> Some v | `Empty -> None
  let steal_batch d ~max = B.pop_many_left d max
end

module Abp_scheduler = Make (Abp_adapter)

(* The array deque restricts like any deque but steals batches with its
   native atomic [pop_many_left]: one CASN takes the whole batch. *)
module Array_deque_adapter : Worksteal_intf.WORKSTEAL_DEQUE = struct
  module A = Deque.Array_deque.Lockfree

  type 'a t = 'a A.t

  let name = A.name
  let create = A.create
  let push d v = match A.push_right d v with `Okay -> true | `Full -> false
  let pop d = match A.pop_right d with `Value v -> Some v | `Empty -> None
  let steal d = match A.pop_left d with `Value v -> Some v | `Empty -> None
  let steal_batch d ~max = A.pop_many_left d max
end

module List_deque_adapter = Restrict (struct
  include Deque.List_deque.Lockfree

  let name = Deque.List_deque.Lockfree.name
end)

module Lock_deque_adapter = Restrict (struct
  include Baselines.Lock_deque

  let name = Baselines.Lock_deque.name
end)

module Array_scheduler = Make (Array_deque_adapter)
module List_scheduler = Make (List_deque_adapter)
module Lock_scheduler = Make (Lock_deque_adapter)

(* Interfaces of the work-stealing substrate.

   WORKSTEAL_DEQUE is the restricted deque shape of Arora, Blumofe and
   Plaxton [4]: the owner pushes and pops one end, thieves pop the
   other.  The ABP baseline implements it natively with CAS only; the
   paper's general deques implement it by restriction (experiment E8
   compares the two inside the same scheduler). *)

module type WORKSTEAL_DEQUE = sig
  type 'a t

  val name : string
  val create : capacity:int -> unit -> 'a t

  val push : 'a t -> 'a -> bool
  (** Owner only.  [false] means the deque is full. *)

  val pop : 'a t -> 'a option
  (** Owner only. *)

  val steal : 'a t -> 'a option
  (** Any thread. *)

  val steal_batch : 'a t -> max:int -> 'a list
  (** Any thread: take up to [max] tasks from the thief end in one go,
      oldest first.  Deques with native batched operations (the array
      deque) commit the whole batch at a single linearization point;
      the others take what a sequence of single steals would.  [steal]
      is the [max = 1] special case. *)
end

module type SCHEDULER = sig
  type ctx
  (** A worker's execution context, passed to every task. *)

  val worker : ctx -> int
  (** Index of the worker currently running the task. *)

  val rng : ctx -> Harness.Splitmix.t
  (** The worker's deterministic RNG stream. *)

  val spawn : ctx -> (ctx -> unit) -> unit
  (** Make a task available for execution (possibly inline if the
      worker's deque is full). *)

  val run :
    ?seed:int ->
    ?steal_batch:int ->
    workers:int ->
    capacity:int ->
    (ctx -> unit) ->
    unit
  (** Run the root task to global quiescence on [workers] domains, each
      owning a deque of [capacity] tasks.  A thief takes up to
      [steal_batch] tasks per steal (default 8): it runs the first and
      re-queues the rest on its own deque, amortizing the steal's
      synchronization over the batch; [steal_batch = 1] is classic
      steal-one. *)

  val deque_name : string
end

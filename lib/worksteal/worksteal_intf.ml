(* Interfaces of the work-stealing substrate.

   WORKSTEAL_DEQUE is the restricted deque shape of Arora, Blumofe and
   Plaxton [4]: the owner pushes and pops one end, thieves pop the
   other.  The ABP baseline implements it natively with CAS only; the
   paper's general deques implement it by restriction (experiment E8
   compares the two inside the same scheduler). *)

module type WORKSTEAL_DEQUE = sig
  type 'a t

  val name : string
  val create : capacity:int -> unit -> 'a t

  val push : 'a t -> 'a -> bool
  (** Owner only.  [false] means the deque is full. *)

  val pop : 'a t -> 'a option
  (** Owner only. *)

  val steal : 'a t -> 'a option
  (** Any thread. *)

  val steal_batch : 'a t -> max:int -> 'a list
  (** Any thread: take up to [max] tasks from the thief end in one go,
      oldest first.  Deques with native batched operations (the array
      deque) commit the whole batch at a single linearization point;
      the others take what a sequence of single steals would.  [steal]
      is the [max = 1] special case. *)
end

module type SCHEDULER = sig
  type ctx
  (** A worker's execution context, passed to every task. *)

  val worker : ctx -> int
  (** Index of the worker currently running the task. *)

  val rng : ctx -> Harness.Splitmix.t
  (** The worker's deterministic RNG stream. *)

  val spawn : ctx -> (ctx -> unit) -> unit
  (** Make a task available for execution (possibly inline if the
      worker's deque is full). *)

  val run :
    ?seed:int ->
    ?steal_batch:int ->
    workers:int ->
    capacity:int ->
    (ctx -> unit) ->
    unit
  (** Run the root task to global quiescence on [workers] domains, each
      owning a deque of [capacity] tasks.  A thief takes up to
      [steal_batch] tasks per steal (default 8): it runs the first and
      re-queues the rest on its own deque, amortizing the steal's
      synchronization over the batch; [steal_batch = 1] is classic
      steal-one.

      A task body that raises does not kill its worker: the exception
      is caught by a per-task barrier, the task retires normally so
      the pending counter still drains, and the {e first} such
      exception is re-raised after every worker domain has joined.
      Fail-stop deaths ({!Harness.Crash.Died}) are NOT tolerated here
      — a killed worker strands the pending counter and the run hangs;
      use [run_supervised] for crash-injected workloads. *)

  val run_supervised :
    ?seed:int ->
    ?steal_batch:int ->
    ?config:Supervisor.config ->
    ?watchdog:Harness.Watchdog.t ->
    workers:int ->
    capacity:int ->
    (ctx -> unit) ->
    Supervisor.report
  (** Like [run], but crash-fault tolerant: workers enroll with
      {!Harness.Crash} (slot = worker index) and a supervisor domain —
      never enrolled, hence immortal — monitors them.  When a worker
      dies ({!Harness.Crash.Died}) or goes silent past
      [config.silence_after], the supervisor bumps the slot's epoch
      (fencing any zombie: its stale pushes run inline), drains the
      abandoned deque from the thief end, and spawns a replacement
      that adopts the drained tasks on a fresh deque.  Pending units
      irrecoverably lost with a death — the task it was executing, a
      child mid-push, a stolen batch in hand; at most
      [steal_batch + 2] per death — are written off ([reconciled])
      once the {!Supervisor} quiescence tracker certifies no live task
      remains anywhere.  Every terminating run satisfies
      {!Supervisor.conserved}: [spawned = executed + reconciled].

      [watchdog], when given, must cover [workers] threads and not yet
      be started: it is started before the workers spawn, ticked once
      per {e completed task}, and stopped after the run — so a hang
      (which supervision exists to prevent) surfaces as a stall report
      rather than silence.

      The supervisor also helps every orphaned descriptor a dead
      domain left mid-CASN to completion
      ({!Dcas.Mem_lockfree.help_orphans}) and reports the count. *)

  val deque_name : string
end

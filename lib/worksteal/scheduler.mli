(** Work-stealing task scheduler in the style of Arora, Blumofe and
    Plaxton [4] — the load-balancing application the paper cites for
    deques.  Workers pop their own deque's bottom (LIFO) and steal from
    random victims' tops (FIFO); global termination is detected with a
    pending-task counter.

    {!Make} is generic in the deque, so the restricted CAS-only ABP
    deque and the paper's general DCAS deques (by restriction) run
    identical workloads — the comparison of experiment E8.

    Robustness: task bodies run behind a per-task exception barrier (a
    raising task no longer kills its worker and strands the pending
    counter), and the supervised mode tolerates fail-stop worker
    deaths with deque adoption and pending-counter reconciliation —
    experiment E22; see {!Worksteal_intf.SCHEDULER.run_supervised} and
    {!Supervisor}. *)

module Make (D : Worksteal_intf.WORKSTEAL_DEQUE) : Worksteal_intf.SCHEDULER

module Abp_adapter : Worksteal_intf.WORKSTEAL_DEQUE
(** The ABP deque, which implements the restricted interface natively. *)

module Restrict (D : Deque.Deque_intf.S) : Worksteal_intf.WORKSTEAL_DEQUE
(** Any general deque, restricted: owner on the right end, thieves pop
    the left end. *)

module Array_deque_adapter : Worksteal_intf.WORKSTEAL_DEQUE
(** The lock-free array deque, restricted — except that [steal_batch]
    uses the native atomic [pop_many_left]: the thief takes the whole
    batch at one linearization point (one CASN) instead of one CAS per
    stolen task. *)

module St_deque_adapter : Worksteal_intf.WORKSTEAL_DEQUE
(** The Sundell–Tsigas single-word-CAS deque ({!Baselines.St_deque}),
    restricted via {!Restrict}; [steal_batch] is the generic
    one-steal-at-a-time fallback. *)

module Abp_scheduler : Worksteal_intf.SCHEDULER
module Array_scheduler : Worksteal_intf.SCHEDULER
module List_scheduler : Worksteal_intf.SCHEDULER
module Lock_scheduler : Worksteal_intf.SCHEDULER

module St_scheduler : Worksteal_intf.SCHEDULER
(** The scheduler over {!St_deque_adapter}. *)

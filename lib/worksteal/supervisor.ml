(* Supervision machinery for crash-fault-tolerant work stealing.

   The scheduler's supervised mode ([Scheduler.Make.run_supervised])
   runs a monitor domain alongside the workers.  This module holds the
   parts of that monitor that are independent of the deque: the policy
   knobs, the run report, and — the subtle part — the quiescence
   tracker that decides when leftover [pending] units are provably
   phantom and may be written off.

   Fault model (fail-stop, the paper's Section 1 "a process stops
   forever"): a worker domain can die at any instrumented shared-memory
   point, including mid-CASN with a published undecided descriptor
   ({!Harness.Crash}).  A death can lose pending-task units in exactly
   three ways, all bounded per death:

   - the task it was {e executing} never finishes (1 unit);
   - a child it was {e spawning} dies inside the push, so the increment
     happened but the task may never have become visible (1 unit);
   - a batch it had {e stolen} — popped from the victim, not yet
     re-queued or run — vanishes with it (up to [steal_batch] units).

   The deque the dead worker owned is NOT lost: the supervisor drains
   it from the thief end (safe on every adapter, including ABP, whose
   steal is multi-thief CAS) and hands the tasks to an epoch-fenced
   replacement.  Only the units above remain, and they keep [pending]
   above zero forever, which would hang termination detection.  The
   quiescence tracker certifies the moment they are the ONLY thing
   keeping [pending] up, so the supervisor can reconcile the counter
   to zero without ever writing off a live task. *)

type config = {
  interval : float;
      (* monitor poll period, seconds; also the sweep granularity of
         the quiescence window *)
  silence_after : float;
      (* presume a worker dead when its tick counter has not moved for
         this long; 0 disables silence detection (death certificates
         from Crash.Died still trigger adoption) *)
  zombie_after : float;
      (* fence a consumer as a zombie when its heartbeat keeps ticking
         but its progress counters (ops completed + no-find scans)
         have not moved for this long; 0 disables zombie detection.
         Disjoint from silence by construction: a silent worker's
         ticks are frozen, a zombie's are moving — so the two
         detectors never race over one worker, and an idle consumer
         (whose no-find scans keep advancing progress) trips
         neither. *)
  quiet_sweeps : int;
      (* consecutive frozen sweeps required before reconciling *)
}

let default =
  { interval = 0.002; silence_after = 0.25; zombie_after = 0.; quiet_sweeps = 3 }

let validate c =
  if not (c.interval > 0.) then
    invalid_arg "Supervisor: interval must be > 0";
  if c.silence_after < 0. then
    invalid_arg "Supervisor: silence_after must be >= 0";
  if c.zombie_after < 0. then
    invalid_arg "Supervisor: zombie_after must be >= 0";
  if c.quiet_sweeps < 1 then
    invalid_arg "Supervisor: quiet_sweeps must be >= 1"

type report = {
  spawned : int;  (* tasks made pending, root included *)
  executed : int;  (* task bodies run to completion (or caught raise) *)
  raised : int;  (* bodies that raised; caught by the per-task barrier *)
  killed : int;  (* workers that died via Crash.Died *)
  presumed_dead : int;  (* silent workers adopted without a certificate *)
  adopted : int;  (* tasks drained from adopted workers' deques *)
  reconciled : int;  (* phantom pending units written off at quiescence *)
  replacements : int;  (* replacement workers the supervisor spawned *)
  orphans_helped : int;
      (* orphaned descriptors helped to completion at the end of the
         run (Dcas.Mem_lockfree.help_orphans) *)
}

let conserved r = r.spawned = r.executed + r.reconciled

let pp_report ppf r =
  Format.fprintf ppf
    "spawned=%d executed=%d raised=%d killed=%d presumed-dead=%d adopted=%d \
     reconciled=%d replacements=%d orphans-helped=%d"
    r.spawned r.executed r.raised r.killed r.presumed_dead r.adopted
    r.reconciled r.replacements r.orphans_helped

(* --- Quiescence certification ---

   The supervisor may reconcile [pending] to zero only when no live
   task exists anywhere — queued, stolen-in-hand, or executing.  The
   tracker certifies this from per-sweep observations alone:

   - [pending], [executed] and [spawned] unchanged across the window
     and no live worker [busy]: nothing ran, so deque contents were
     frozen for the whole window;
   - every live worker completed at least TWO full no-find steal scans
     during the window: two completions inside the window mean at
     least one scan ran entirely within it, and a full scan over
     frozen, uncontended deques cannot miss a queued task.

   Together: any queued task would have been found (contradiction),
   any executing task would show as busy or move [executed], and any
   task mid-spawn belongs to a busy worker.  So the remaining
   [pending] units are exactly the dead workers' lost units. *)

type quiescence = {
  mutable prev : int * int * int;  (* pending, executed, spawned *)
  mutable quiet : int;  (* consecutive frozen sweeps *)
  mutable scans0 : int array;  (* live workers' scan counts at window start *)
  mutable have_base : bool;
}

let quiescence () =
  { prev = (-1, -1, -1); quiet = 0; scans0 = [||]; have_base = false }

let restart q scans =
  q.quiet <- 0;
  q.scans0 <- Array.copy scans;
  q.have_base <- true

(* One sweep's observation.  [scans] holds the current full-scan
   counters of the live (non-dead, non-retired) workers; its length
   changes when the live set changes, which restarts the window.
   Returns [true] when reconciliation is provably safe. *)
let observe q ~pending ~executed ~spawned ~busy ~scans ~quiet_sweeps =
  let snap = (pending, executed, spawned) in
  let frozen = snap = q.prev && pending > 0 && not busy in
  q.prev <- snap;
  if
    (not frozen)
    || (not q.have_base)
    || Array.length scans <> Array.length q.scans0
  then begin
    restart q scans;
    false
  end
  else begin
    q.quiet <- q.quiet + 1;
    q.quiet >= quiet_sweeps
    && Array.length scans > 0
    && Array.for_all2 (fun now base -> now >= base + 2) scans q.scans0
  end

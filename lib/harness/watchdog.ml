(* Progress watchdog: a monitor domain that samples a set of per-thread
   operation counters and, when the system as a whole stops making
   progress for longer than [stall_after] seconds, emits a diagnostic
   snapshot instead of letting CI hang until its outer timeout.

   The watchdog never unblocks anything — OCaml domains cannot be
   interrupted — it makes a global stall *observable*: per-thread op
   counts, the last-known operation of each thread, and the memory
   substrate's counters (including chaos and fast-fail, when a stats
   thunk is supplied).  The caller decides what to do with the report:
   the default handler prints it to stderr; bin/stress exits non-zero;
   the lock-freedom tests assert it fires for the planted-livelock
   deque and stays silent for the paper's deques.

   Worker-side costs are one padded-atomic increment per operation
   ([tick]) and an unsynchronized array write for the optional
   operation label ([note]; the monitor's read is racy by design — a
   torn label is acceptable in a diagnostic). *)

type snapshot = {
  waited : float;  (* seconds since the last observed progress *)
  total : int;
  per_thread : int array;
  last_op : string array;
  stats : Dcas.Memory_intf.stats option;
}

let pp_snapshot ppf s =
  Format.fprintf ppf
    "@[<v>watchdog: no progress for %.2fs (%d ops completed)@," s.waited
    s.total;
  Array.iteri
    (fun tid ops ->
      Format.fprintf ppf "  thread %d: %d ops, last op %s@," tid ops
        (if s.last_op.(tid) = "" then "?" else s.last_op.(tid)))
    s.per_thread;
  (match s.stats with
  | Some st -> Format.fprintf ppf "  memory: %a@," Dcas.Memory_intf.pp_stats st
  | None -> ());
  Format.fprintf ppf "@]"

let default_on_stall s = Format.eprintf "%a@." pp_snapshot s

type t = {
  interval : float;
  stall_after : float;
  on_stall : snapshot -> unit;
  stats : (unit -> Dcas.Memory_intf.stats) option;
  ticks : int Atomic.t array;
  last_op : string array;
  stalls : int Atomic.t;  (* completed stall reports *)
  shutdown : bool Atomic.t;
  mutable monitor : unit Domain.t option;
}

let create ?(interval = 0.02) ?(stall_after = 1.0) ?stats
    ?(on_stall = default_on_stall) ~threads () =
  if threads < 1 then invalid_arg "Watchdog.create: threads must be >= 1";
  if not (interval > 0.) then
    invalid_arg "Watchdog.create: interval must be > 0";
  if not (stall_after > 0.) then
    invalid_arg "Watchdog.create: stall_after must be > 0";
  {
    interval;
    stall_after;
    on_stall;
    stats;
    ticks = Array.init threads (fun _ -> Dcas.Padding.make_atomic 0);
    last_op = Array.make threads "";
    stalls = Atomic.make 0;
    shutdown = Atomic.make false;
    monitor = None;
  }

let tick t ~tid = Atomic.incr t.ticks.(tid)
let note t ~tid op = t.last_op.(tid) <- op
let total t = Array.fold_left (fun n c -> n + Atomic.get c) 0 t.ticks
let stalls t = Atomic.get t.stalls
let fired t = stalls t > 0

let snapshot t ~waited =
  {
    waited;
    total = total t;
    per_thread = Array.map Atomic.get t.ticks;
    last_op = Array.copy t.last_op;
    stats = Option.map (fun f -> f ()) t.stats;
  }

let monitor_loop t () =
  let last_total = ref (total t) in
  let last_progress = ref (Unix.gettimeofday ()) in
  let reported = ref false in
  while not (Atomic.get t.shutdown) do
    Unix.sleepf t.interval;
    let now = Unix.gettimeofday () in
    let cur = total t in
    if cur <> !last_total then begin
      last_total := cur;
      last_progress := now;
      reported := false
    end
    else if (not !reported) && now -. !last_progress >= t.stall_after then begin
      (* one report per stall episode; progress re-arms the detector *)
      reported := true;
      t.on_stall (snapshot t ~waited:(now -. !last_progress));
      Atomic.incr t.stalls
    end
  done

let start t =
  match t.monitor with
  | Some _ -> invalid_arg "Watchdog.start: already running"
  | None ->
      Atomic.set t.shutdown false;
      t.monitor <- Some (Domain.spawn (monitor_loop t))

let stop t =
  (match t.monitor with
  | None -> ()
  | Some d ->
      Atomic.set t.shutdown true;
      Domain.join d;
      t.monitor <- None);
  stalls t

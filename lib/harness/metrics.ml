(* Measurement helpers for the macro benchmarks: wall-clock timing and
   a log-bucketed latency histogram.

   Latency is recorded in batches (time a group of operations, divide)
   because [Unix.gettimeofday]'s microsecond resolution is too coarse
   for a single sub-microsecond deque operation; bechamel covers the
   single-operation regime in experiment E4. *)

let now = Unix.gettimeofday

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* Histogram over nanosecond latencies with 2x-wide buckets from 1ns to
   ~1s: bucket i covers [2^i, 2^(i+1)) ns. *)
module Histogram = struct
  type t = { buckets : int array; mutable count : int; mutable sum_ns : float }

  let nbuckets = 31

  let create () = { buckets = Array.make nbuckets 0; count = 0; sum_ns = 0. }

  let bucket_of_ns ns =
    let ns = max 1 ns in
    min (nbuckets - 1) (int_of_float (Float.log2 (float_of_int ns)))

  let add t ~ns =
    t.buckets.(bucket_of_ns ns) <- t.buckets.(bucket_of_ns ns) + 1;
    t.count <- t.count + 1;
    t.sum_ns <- t.sum_ns +. float_of_int ns

  let merge a b =
    let t = create () in
    Array.iteri (fun i v -> t.buckets.(i) <- v + b.buckets.(i)) a.buckets;
    t.count <- a.count + b.count;
    t.sum_ns <- a.sum_ns +. b.sum_ns;
    t

  let mean_ns t = if t.count = 0 then 0. else t.sum_ns /. float_of_int t.count

  (* Upper bound of the bucket containing the q-quantile. *)
  let quantile_ns t q =
    if t.count = 0 then 0.
    else begin
      let target = int_of_float (q *. float_of_int t.count) in
      let rec walk i seen =
        if i >= nbuckets then Float.pow 2. (float_of_int nbuckets)
        else
          let seen = seen + t.buckets.(i) in
          if seen > target then Float.pow 2. (float_of_int (i + 1))
          else walk (i + 1) seen
      in
      walk 0 0
    end
end

(* Per-thread fairness: how unevenly did operations distribute over the
   workers?  A lock-free structure guarantees system-wide progress, not
   per-thread fairness, so starvation must be measured, not assumed —
   the resilience policies (Core.Policy) bound it with deadlines, and
   the stress CLI prints it next to throughput.  [imbalance] is
   (max - min) / mean: 0 for a perfectly fair run, ~n when one of n
   threads did all the work while another did none. *)
module Starvation = struct
  type t = {
    min_ops : int;
    max_ops : int;
    mean_ops : float;
    imbalance : float;
  }

  let of_counts per_thread =
    if Array.length per_thread = 0 then
      invalid_arg "Starvation.of_counts: empty";
    let min_ops = Array.fold_left min max_int per_thread in
    let max_ops = Array.fold_left max min_int per_thread in
    let total = Array.fold_left ( + ) 0 per_thread in
    let mean_ops = float_of_int total /. float_of_int (Array.length per_thread) in
    let imbalance =
      if mean_ops = 0. then 0.
      else float_of_int (max_ops - min_ops) /. mean_ops
    in
    { min_ops; max_ops; mean_ops; imbalance }

  let pp ppf s =
    Format.fprintf ppf "per-thread min=%d max=%d mean=%.0f imbalance=%.2f"
      s.min_ops s.max_ops s.mean_ops s.imbalance
end

(* Throughput of [f] executed repeatedly for ~[duration] seconds in the
   calling thread; returns operations per second. *)
let throughput ?(duration = 0.2) f =
  let deadline = now () +. duration in
  let batch = 64 in
  let count = ref 0 in
  while now () < deadline do
    for _ = 1 to batch do
      f ()
    done;
    count := !count + batch
  done;
  float_of_int !count /. duration

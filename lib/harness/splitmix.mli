(** SplitMix64 deterministic PRNG with splittable streams.

    The implementation lives in {!Dcas.Splitmix} (the fault-injection
    substrate needs it below the harness layer); this module re-exports
    it under the historical [Harness.Splitmix] path. *)

include module type of Dcas.Splitmix with type t = Dcas.Splitmix.t

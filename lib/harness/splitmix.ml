(* Re-export of the SplitMix64 PRNG, which moved into the dcas library
   so that substrate-level code (Mem_chaos fault injection) can draw
   from the same deterministic streams without a dependency cycle.
   Harness callers keep their historical [Harness.Splitmix] path. *)

include Dcas.Splitmix

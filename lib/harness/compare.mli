(** Baseline comparison between two benchmark [--json] documents (the
    [bench --compare] verdict logic, factored out for unit testing).

    Rows are matched by experiment id, every string-valued field and
    the domain count; matched pairs report their [ops_per_sec] delta,
    and hot-path rows (single-domain shootout, soak sections)
    regressing beyond the threshold become {!Compared} regressions.
    Broken inputs — unreadable or unparsable files, wrong schema, a
    matched cell with missing / non-numeric / NaN / non-positive
    [ops_per_sec], zero matched rows — yield {!Invalid} with a
    diagnostic, so callers can keep usage-class failures (exit 2)
    distinct from regression-class failures (exit 3). *)

type verdict =
  | Compared of { matched : int; regressions : (string * float) list }
      (** [regressions] are [(row key, delta percent)], delta negative,
          in document order. *)
  | Invalid of string  (** diagnostic; the comparison is meaningless *)

val default_threshold : float
(** 20.0 — percent regression beyond which a hot row fails. *)

val run :
  ?threshold:float ->
  ?print:(string -> unit) ->
  schema:string ->
  old_file:string ->
  new_file:string ->
  unit ->
  verdict
(** Compare [old_file] to [new_file] (both previously written by
    [bench --json], carrying [schema]).  [print] receives one
    human-readable line per row (deltas, new / vanished rows);
    defaults to dropping them. *)

(* A minimal JSON tree, encoder and parser — just enough for the
   benchmark driver's machine-readable output (experiment E15 and the
   [--json] flag) and for the cram test that round-trips it.  No
   external dependency: the container image carries no JSON library,
   and the schema we emit needs nothing fancy (no unicode escapes
   beyond \uXXXX pass-through, numbers are OCaml floats/ints). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- encoding --- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      (* every remaining control character, DEL included, as \uXXXX —
         a row built from a partially-failed soak cell (raw exception
         text, truncated labels) must still parse downstream *)
      | c when Char.code c < 0x20 || Char.code c = 0x7f ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest round-trippable representation *)
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.12g" f in
    if float_of_string shorter = f then shorter else s

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> (
      match Float.classify_float f with
      | FP_nan | FP_infinite ->
          (* nan/inf are not JSON; encode as null like most emitters *)
          Buffer.add_string b "null"
      | FP_normal | FP_subnormal | FP_zero ->
          Buffer.add_string b (float_literal f))
  | String s -> escape_string b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 4096 in
  write b t;
  Buffer.contents b

(* --- parsing: plain recursive descent over a string --- *)

exception Parse_error of string

type cursor = { s : string; mutable i : int }

let error c fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" c.i m))) fmt

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | Some x -> error c "expected %C, found %C" ch x
  | None -> error c "expected %C, found end of input" ch

let literal c word value =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    value
  end
  else error c "invalid literal"

let parse_string_body c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.i >= String.length c.s then error c "unterminated string"
    else
      match c.s.[c.i] with
      | '"' -> c.i <- c.i + 1
      | '\\' ->
          if c.i + 1 >= String.length c.s then error c "unterminated escape";
          (match c.s.[c.i + 1] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if c.i + 5 >= String.length c.s then error c "short \\u escape";
              let hex = String.sub c.s (c.i + 2) 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> error c "bad \\u escape %S" hex
              in
              (* ASCII pass-through only; our emitter never produces
                 higher code points *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else error c "non-ASCII \\u escape unsupported";
              c.i <- c.i + 4
          | e -> error c "bad escape \\%C" e);
          c.i <- c.i + 2;
          go ()
      | ch ->
          Buffer.add_char b ch;
          c.i <- c.i + 1;
          go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.i in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.i < String.length c.s && is_num_char c.s.[c.i] do
    c.i <- c.i + 1
  done;
  let text = String.sub c.s start (c.i - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error c "bad number %S" text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin
        c.i <- c.i + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              items (v :: acc)
          | Some ']' ->
              c.i <- c.i + 1;
              List.rev (v :: acc)
          | _ -> error c "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin
        c.i <- c.i + 1;
        Obj []
      end
      else begin
        let rec pairs acc =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              pairs ((k, v) :: acc)
          | Some '}' ->
              c.i <- c.i + 1;
              List.rev ((k, v) :: acc)
          | _ -> error c "expected ',' or '}'"
        in
        Obj (pairs [])
      end
  | Some ch -> if is_number_start ch then parse_number c else error c "unexpected %C" ch

and is_number_start = function '0' .. '9' | '-' -> true | _ -> false

let of_string s =
  let c = { s; i = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.i <> String.length s then error c "trailing garbage";
  v

(* --- accessors (used by the --check-json verifier) --- *)

let member k = function
  | Obj kvs -> ( match List.assoc_opt k kvs with Some v -> v | None -> Null)
  | _ -> Null

let to_list = function List xs -> xs | _ -> []

let string_value = function String s -> Some s | _ -> None

let number_value = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

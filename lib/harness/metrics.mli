(** Wall-clock timing and a log-bucketed latency histogram.

    Latency should be recorded in batches ([Unix.gettimeofday] is too
    coarse for one sub-microsecond operation); bechamel covers the
    single-operation regime (experiment E4). *)

val now : unit -> float

val time : (unit -> 'a) -> 'a * float
(** Result and elapsed seconds. *)

module Histogram : sig
  (** Buckets of width 2x from 1ns to ~1s: bucket [i] covers
      [2^i, 2^(i+1)) nanoseconds. *)

  type t

  val create : unit -> t
  val add : t -> ns:int -> unit
  val merge : t -> t -> t
  val mean_ns : t -> float

  val quantile_ns : t -> float -> float
  (** Upper bound of the bucket containing the given quantile. *)
end

module Starvation : sig
  (** Per-thread fairness of a multi-domain run: lock-freedom
      guarantees system-wide progress, not per-thread fairness, so
      starvation is measured (E19/E20), not assumed. *)

  type t = {
    min_ops : int;
    max_ops : int;
    mean_ops : float;
    imbalance : float;  (** (max - min) / mean; 0 = perfectly fair *)
  }

  val of_counts : int array -> t
  (** From per-thread operation counts (e.g. {!Runner.result}'s
      [per_thread]).

      @raise Invalid_argument on an empty array. *)

  val pp : Format.formatter -> t -> unit
end

val throughput : ?duration:float -> (unit -> unit) -> float
(** Operations per second of [f] run repeatedly in the calling thread
    for ~[duration] seconds (default 0.2). *)

(* A declarative multi-storm schedule (experiment E25).

   E24's storm was imperative: a driver thread slept, killed one
   domain, slept, froze another.  That shape cannot express what the
   Chase-Lev verification literature says actually breaks services —
   OVERLAPPING faults (a kill landing while another worker is frozen
   and a third is a zombie, all under spurious-failure chaos) — and it
   cannot tell the experiment whether each injection actually landed.

   A [window] declares one fault, an offset and a hold time; [run]
   executes a whole schedule on the calling domain (E25 passes it as
   the service's [driver]), overlapping windows freely, and returns a
   per-window [landing] verdict read back from the injectors' own
   per-victim counters ({!Crash.killed}, {!Stall.Freezer.freeze_hits_of},
   {!Stall.Zombie.bites_of}, and a caller-supplied chaos counter) — so
   a soak can GATE on "every scheduled fault landed" instead of hoping.

   [jittered] perturbs the offsets with a seeded uniform shift so
   repeated soaks sample different alignments of the same storm
   without losing reproducibility. *)

type fault =
  | Kill of { tid : int; mid_casn : bool }
      (* fail-stop the victim at its next crash point; [mid_casn]
         aims inside a CASN with a published descriptor *)
  | Freeze of { tid : int }  (* park at next shared-memory access *)
  | Zombie of { tid : int }  (* alive and ticking, no progress *)
  | Chaos  (* armed/disarmed through [run]'s callbacks *)

type window = { at : float; hold : float; fault : fault }

type landing = {
  window : window;
  started : float;  (* measured offset of the start event, seconds *)
  ended : float;  (* measured offset of the stop event *)
  landed : bool;  (* the injector's own counter confirmed a hit *)
}

let pp_fault ppf = function
  | Kill { tid; mid_casn } ->
      Format.fprintf ppf "kill(tid=%d%s)" tid
        (if mid_casn then ",mid-casn" else "")
  | Freeze { tid } -> Format.fprintf ppf "freeze(tid=%d)" tid
  | Zombie { tid } -> Format.fprintf ppf "zombie(tid=%d)" tid
  | Chaos -> Format.fprintf ppf "chaos"

let validate ws =
  List.iter
    (fun w ->
      if not (w.at >= 0.) then
        invalid_arg "Storm: window offsets must be >= 0";
      if not (w.hold >= 0.) then
        invalid_arg "Storm: window holds must be >= 0")
    ws

(* Seeded uniform shift of each window's offset in [-jitter, +jitter],
   clamped at 0.  Holds are left alone: the hold is the experiment's
   contract (e.g. "the zombie lasts the whole middle phase"), the
   alignment is what deserves fuzzing. *)
let jittered ~seed ~jitter ws =
  if not (jitter >= 0.) then invalid_arg "Storm.jittered: jitter must be >= 0";
  let rng = Splitmix.create ~seed in
  List.map
    (fun w ->
      let u = float_of_int (Splitmix.int rng ~bound:2001 - 1000) /. 1000. in
      { w with at = Float.max 0. (w.at +. (u *. jitter)) })
    ws

type event = { time : float; idx : int; phase : [ `Start | `Stop ] }

let run ?(arm_chaos = fun () -> ()) ?(disarm_chaos = fun () -> ())
    ?(chaos_hits = fun () -> 0) ?(on_active = fun (_ : int) -> ())
    ?(settle = 0.) windows =
  validate windows;
  let ws = Array.of_list windows in
  let n = Array.length ws in
  let baseline = Array.make n 0 in
  let started = Array.make n 0. in
  let ended = Array.make n 0. in
  let events =
    List.sort
      (fun a b ->
        let rank p = match p.phase with `Start -> 0 | `Stop -> 1 in
        compare (a.time, rank a, a.idx) (b.time, rank b, b.idx))
      (List.concat
         (List.init n (fun i ->
              let w = ws.(i) in
              [
                { time = w.at; idx = i; phase = `Start };
                { time = w.at +. w.hold; idx = i; phase = `Stop };
              ])))
  in
  let t0 = Unix.gettimeofday () in
  let active = ref 0 in
  List.iter
    (fun ev ->
      let slack = t0 +. ev.time -. Unix.gettimeofday () in
      if slack > 0. then Unix.sleepf slack;
      let i = ev.idx in
      (match (ev.phase, ws.(i).fault) with
      | `Start, Kill { tid; mid_casn } ->
          Crash.kill
            ~mode:(if mid_casn then `Mid_casn else `At_point)
            ~tid ()
      | `Start, Freeze { tid } ->
          baseline.(i) <- Stall.Freezer.freeze_hits_of ~tid;
          Stall.Freezer.freeze ~tid
      | `Start, Zombie { tid } ->
          baseline.(i) <- Stall.Zombie.bites_of ~tid;
          Stall.Zombie.zombify ~tid
      | `Start, Chaos ->
          baseline.(i) <- chaos_hits ();
          arm_chaos ()
      | `Stop, Kill _ -> ()
      | `Stop, Freeze { tid } -> Stall.Freezer.thaw ~tid
      | `Stop, Zombie { tid } -> Stall.Zombie.cure ~tid
      | `Stop, Chaos -> disarm_chaos ());
      (match ev.phase with
      | `Start ->
          started.(i) <- Unix.gettimeofday () -. t0;
          incr active
      | `Stop ->
          ended.(i) <- Unix.gettimeofday () -. t0;
          decr active);
      on_active !active)
    events;
  (* Let in-flight effects register (a kill lands at the victim's NEXT
     crash point, not synchronously) before reading the verdicts. *)
  if settle > 0. then Unix.sleepf settle;
  List.init n (fun i ->
      let landed =
        match ws.(i).fault with
        | Kill { tid; _ } -> Crash.killed ~tid
        | Freeze { tid } -> Stall.Freezer.freeze_hits_of ~tid > baseline.(i)
        | Zombie { tid } -> Stall.Zombie.bites_of ~tid > baseline.(i)
        | Chaos -> chaos_hits () > baseline.(i)
      in
      { window = ws.(i); started = started.(i); ended = ended.(i); landed })

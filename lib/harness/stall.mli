(** Stall injection for the resilience and liveness experiments (E9,
    E14, E19): cooperative self-stalls (a thread arranges to fall
    asleep in the middle of its own next operation) and adversarial
    cross-domain freezes (a controller suspends victim domains at their
    next shared-memory access point until thawed), both delivered
    through the {!Mem_stalling} / {!Mem_stalling_casn} instrumented
    memories. *)

val request : after_ops:int -> duration:float -> unit
(** Arrange for the calling domain to sleep [duration] seconds just
    before its [after_ops]-th subsequent shared-memory operation.

    Requests are domain-local (a staller only ever stalls itself) and
    do not nest or queue: each domain has at most one armed stall, and
    a new [request] overwrites any pending one — the earlier countdown
    is discarded, not resumed after the new stall fires.

    @raise Invalid_argument if [after_ops < 1] or [duration] is
    negative (or NaN). *)

val cancel : unit -> unit
(** Discard the calling domain's pending stall request, if any.
    Idempotent: cancelling with nothing pending is a no-op. *)

val pending : unit -> bool
(** Whether the calling domain has an armed stall request. *)

val point : unit -> unit
(** Called by the instrumented memory before every shared operation;
    sleeps if this domain's pending request has counted down, then
    parks while this domain is frozen by the {!Freezer}. *)

(** Adversarial cross-domain freezing: the empirical form of the
    paper's "stopped process".  Victim domains [enroll] under a dense
    worker id; a controller [freeze]s a victim, which then parks at its
    next instrumented shared-memory access — i.e. mid-operation,
    holding whatever intermediate state the algorithm has published —
    until [thaw]ed.  Lock-free structures must let the surviving
    domains keep completing operations with up to [threads - 1]
    victims frozen; blocking ones stall system-wide (see E19 and
    [test_lockfree.ml]). *)
module Freezer : sig
  val max_slots : int
  (** Capacity of the worker-id space (ids are [0 .. max_slots - 1]). *)

  val enroll : tid:int -> unit
  (** Register the calling domain as victim [tid].  Freezes are
      per-id: only enrolled domains ever park.

      @raise Invalid_argument if [tid] is outside [0, max_slots). *)

  val leave : unit -> unit
  (** Un-enroll the calling domain (it will no longer park). *)

  val freeze : tid:int -> unit
  (** Raise victim [tid]'s freeze flag; it parks at its next
      instrumented shared-memory access and stays parked until thawed. *)

  val thaw : tid:int -> unit
  (** Release victim [tid]. *)

  val thaw_all : unit -> unit

  val frozen_now : unit -> int
  (** Number of domains currently parked at a freeze point. *)

  val freeze_hits : unit -> int
  (** Total number of park events since the last {!reset}. *)

  val freeze_hits_of : tid:int -> int
  (** Park events of victim [tid] alone — lets a storm schedule verify
      that a specific freeze window landed even when windows overlap.

      @raise Invalid_argument if [tid] is outside [0, max_slots). *)

  val reset : unit -> unit
  (** Thaw everyone and zero the counters.  Call between experiments;
      does not un-enroll domains. *)
end

(** Zombie injection: the victim stays alive {e and keeps ticking its
    liveness heartbeat} but makes no progress — the failure mode that
    neither crash detection (not dead) nor tick-based silence
    detection (not silent) can see, only progress-based detection
    ({!Worksteal.Supervisor}'s [zombie_after]).

    Unlike the {!Freezer}, zombification is not delivered at
    shared-memory access points (a parked victim would stop ticking
    and look merely silent).  The victim's work loop cooperates: it
    polls {!active} each iteration and, while the flag is up, skips
    the operation, keeps its heartbeat ticking, and records one
    {!bite} — the counter a storm schedule reads to verify the window
    landed.  Slots are the same dense worker ids the {!Freezer} and
    {!Crash} use. *)
module Zombie : sig
  val max_slots : int

  val zombify : tid:int -> unit
  (** Raise victim [tid]'s zombie flag.

      @raise Invalid_argument if [tid] is outside [0, max_slots). *)

  val cure : tid:int -> unit
  (** Lower victim [tid]'s zombie flag; it resumes useful work at its
      next loop iteration (unless it was fenced meanwhile). *)

  val cure_all : unit -> unit

  val active : tid:int -> bool
  (** Whether [tid]'s flag is up ([false] for out-of-range ids, so
      un-enrolled callers can poll unconditionally). *)

  val bite : tid:int -> unit
  (** Victim-side: record one operation suppressed while zombified. *)

  val bites : unit -> int
  (** Total suppressed operations since the last {!reset}. *)

  val bites_of : tid:int -> int

  val reset : unit -> unit
  (** Cure everyone and zero the bite counters. *)
end

module Mem_stalling (M : Dcas.Memory_intf.MEMORY) :
  Dcas.Memory_intf.MEMORY with type 'a loc = 'a M.loc
(** [M] with a {!point} check before every shared operation. *)

module Mem_stalling_casn (M : Dcas.Memory_intf.MEMORY_CASN) :
  Dcas.Memory_intf.MEMORY_CASN with type 'a loc = 'a M.loc
(** Like {!Mem_stalling} but preserving [casn], so the 3CAS deque and
    {!Dcas.Mem_chaos}-composed substrates run under the same
    instrumentation. *)

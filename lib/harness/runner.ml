(* Multi-domain benchmark runner: spawns worker domains, lines them up
   behind a sense barrier so measurement starts simultaneously, runs a
   per-thread body until a stop flag flips, and reports per-thread
   operation counts and wall-clock time.

   On a single-core container the domains time-share preemptively;
   throughput numbers therefore measure synchronization cost under
   contention and oversubscription rather than parallel speedup, as
   recorded in DESIGN.md's substitution table. *)

type result = {
  per_thread : int array;  (* operations completed by each thread *)
  elapsed : float;  (* seconds between barrier release and last join *)
  died : bool array;  (* which threads exited via Crash.Died *)
}

let deaths r = Array.fold_left (fun n d -> if d then n + 1 else n) 0 r.died

let total r = Array.fold_left ( + ) 0 r.per_thread
let throughput r = float_of_int (total r) /. r.elapsed

(* [run ~threads ~duration body]: each domain evaluates [body ~tid ~rng]
   repeatedly — the body performs ONE logical operation per call — until
   the duration elapses.  [seed] makes the workers' RNG streams
   reproducible.  [watchdog], when given, is started for the
   measurement window and ticked once per body call, so a system-wide
   stall inside the body surfaces as a diagnostic report instead of a
   hang; it must have been created with at least [threads] threads and
   not yet started. *)
let run ?(seed = 0x5EED) ?watchdog ~threads ~duration body =
  if threads < 1 then invalid_arg "Runner.run: threads must be >= 1";
  let stop = Atomic.make false in
  let started = Atomic.make 0 in
  let per_thread = Array.make threads 0 in
  let master = Splitmix.create ~seed in
  let rngs = Array.init threads (fun _ -> Splitmix.split master) in
  let tick =
    match watchdog with
    | None -> fun ~tid:_ -> ()
    | Some w -> fun ~tid -> Watchdog.tick w ~tid
  in
  let died = Array.make threads false in
  let worker tid () =
    let rng = rngs.(tid) in
    Atomic.incr started;
    while Atomic.get started < threads do
      Domain.cpu_relax ()
    done;
    let count = ref 0 in
    (* a crash-injected death is a fail-stop fault under test, not an
       error: record it and let the domain retire with its count *)
    (try
       while not (Atomic.get stop) do
         body ~tid ~rng;
         tick ~tid;
         incr count
       done
     with Crash.Died -> died.(tid) <- true);
    per_thread.(tid) <- !count
  in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  (* wait until all workers are at the barrier, then time the window *)
  while Atomic.get started < threads do
    Domain.cpu_relax ()
  done;
  Option.iter Watchdog.start watchdog;
  let t0 = Unix.gettimeofday () in
  Unix.sleepf duration;
  Atomic.set stop true;
  List.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. t0 in
  Option.iter (fun w -> ignore (Watchdog.stop w)) watchdog;
  { per_thread; elapsed; died }

(* Fixed-iteration variant: every thread performs exactly [iters]
   operations; used where operation counts must balance exactly (e.g.
   conservation checks in stress tests). *)
let run_fixed ?(seed = 0x5EED) ?watchdog ~threads ~iters body =
  if threads < 1 then invalid_arg "Runner.run_fixed: threads must be >= 1";
  let started = Atomic.make 0 in
  let master = Splitmix.create ~seed in
  let rngs = Array.init threads (fun _ -> Splitmix.split master) in
  let tick =
    match watchdog with
    | None -> fun ~tid:_ -> ()
    | Some w -> fun ~tid -> Watchdog.tick w ~tid
  in
  let worker tid () =
    let rng = rngs.(tid) in
    Atomic.incr started;
    while Atomic.get started < threads do
      Domain.cpu_relax ()
    done;
    try
      for i = 1 to iters do
        body ~tid ~rng ~i;
        tick ~tid
      done
    with Crash.Died -> ()
  in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  while Atomic.get started < threads do
    Domain.cpu_relax ()
  done;
  Option.iter Watchdog.start watchdog;
  let t0 = Unix.gettimeofday () in
  List.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. t0 in
  Option.iter (fun w -> ignore (Watchdog.stop w)) watchdog;
  elapsed

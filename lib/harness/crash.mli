(** Fail-stop crash injection: enrolled victim domains die for good at
    an instrumented shared-memory point — including {e mid-CASN}, with
    a published undecided descriptor that survivors must help to
    completion.  The permanent sibling of {!Stall.Freezer}'s freezes,
    for experiment E22 and the supervised scheduler
    ({!Worksteal.Supervisor}). *)

exception Died
(** Raised on the victim domain at its death point.  Anything driving
    crash-injected workers must treat a worker raising [Died] as a
    fail-stop fault, not an error (see {!Runner} and
    [Worksteal.Scheduler]'s supervised mode). *)

type mode = [ `At_point | `Mid_casn ]
(** Where a targeted death lands: [`At_point] at the next instrumented
    access; [`Mid_casn] inside the victim's next DCAS/CASN, after its
    descriptor is published and before it is decided (falls back to
    the operation boundary when the operation never publishes, e.g.
    fast-fail pre-validation, or when the bottom substrate is not
    {!Dcas.Mem_lockfree}). *)

val max_slots : int
(** Capacity of the tid table (matches {!Stall.Freezer}). *)

val enroll : tid:int -> unit
(** Make the calling domain eligible to die, under worker id [tid].
    Un-enrolled domains (supervisors, monitors, the main domain) are
    never victims.

    @raise Invalid_argument if [tid] is outside [\[0, max_slots)]. *)

val leave : unit -> unit
(** The calling domain is no longer eligible. *)

val kill : ?mode:mode -> tid:int -> unit -> unit
(** Request a targeted death: the enrolled domain running as [tid]
    dies at its next eligible instrumented point (default mode
    [`Mid_casn]: its next DCAS-shaped operation).  Deterministic —
    used by the orphaned-descriptor tests. *)

val configure :
  ?prob:float -> ?mid_casn_prob:float -> ?max_kills:int -> seed:int -> unit -> unit
(** Arm probabilistic deaths: each enrolled domain draws a kill
    verdict with probability [prob] at every instrumented point, from
    a per-domain SplitMix stream derived from [seed] (replayable, as
    in {!Dcas.Mem_chaos}).  A kill landing on a DCAS-shaped operation
    dies mid-CASN with probability [mid_casn_prob] (default 1), at the
    point otherwise.  At most [max_kills] probabilistic deaths occur
    in total, and each [tid] dies at most once either way. *)

val disarm : unit -> unit
(** Stop drawing probabilistic deaths (targeted requests survive). *)

val armed : unit -> bool

val kills : unit -> int
(** Domains killed so far (targeted and probabilistic). *)

val mid_casn_kills : unit -> int
(** How many of those died mid-CASN with a published descriptor — the
    expected value of [helped_orphans] once survivors have helped
    every orphan ({!Dcas.Mem_lockfree.help_orphans}). *)

val killed : tid:int -> bool
val killed_tids : unit -> int list

val reset : unit -> unit
(** Disarm, forget all deaths and requests, and clear the substrate's
    dead set ({!Dcas.Mem_lockfree.clear_dead}) — between tests. *)

val point : casn:bool -> unit
(** The victim-side check, called by {!Mem_crashing_casn} before every
    shared operation; [casn] marks DCAS-shaped operations that can
    host a mid-CASN death.  Exposed for custom instrumentation. *)

val boundary : unit -> unit
(** Post-operation fallback for an armed mid-CASN death that never
    reached a publish (see {!mode}).  Exposed for custom
    instrumentation; call after the operation returns. *)

module Mem_crashing_casn (M : Dcas.Memory_intf.MEMORY_CASN) :
  Dcas.Memory_intf.MEMORY_CASN with type 'a loc = 'a M.loc
(** [M] with a death check in front of every shared operation.  Same
    [loc] type, so structures are otherwise identical; composes with
    {!Dcas.Mem_chaos} and {!Stall.Mem_stalling_casn}. *)

(* Fail-stop crash injection for the fault-tolerance experiments (E22).

   Where {!Stall.Freezer} parks a victim domain at an instrumented
   shared-memory access point and later releases it, [Crash] makes the
   stop {e permanent}: the victim raises {!Died} and never touches the
   structure again — the paper's Section 1 "process stops forever",
   fail-stop instead of fail-slow.  Deaths come in two flavours:

   - {e at-point}: the domain dies at the instrumented point before an
     operation, leaving no shared state of its own behind (its deque
     contents are still orphaned and must be adopted by survivors);

   - {e mid-CASN}: the domain dies via {!Mem_lockfree}'s publish hook,
     immediately after installing its own CASN descriptor and before
     the status is decided — the worst reachable crash point, with a
     live undecided descriptor in shared memory that survivors must
     help to completion ({!Memory_intf.stats.helped_orphans}).

   Eligibility mirrors the freezer: only enrolled domains (a dense
   worker [tid], set per-domain) can die, so supervisors, monitors and
   the main domain are never victims.  Deaths are either targeted
   ([kill ~tid], deterministic tests) or drawn from per-domain seeded
   SplitMix streams ([configure ~prob], like {!Dcas.Mem_chaos}); a
   [tid] dies at most once, so a supervisor's epoch-fenced replacement
   enrolled under the same slot is not re-killed, and [max_kills]
   bounds the total body count of a probabilistic run.

   Composition: {!Mem_crashing_casn} checks for a pending death before
   every shared operation of any [MEMORY_CASN], so it stacks under or
   over {!Mem_chaos} and {!Stall.Mem_stalling_casn} exactly like they
   stack on each other.  The mid-CASN flavour needs the substrate at
   the bottom of the stack to be {!Dcas.Mem_lockfree} (the only one
   with descriptors to orphan); over any other substrate the pending
   death falls back to the operation boundary. *)

exception Died

type mode = [ `At_point | `Mid_casn ]

let max_slots = 64

(* Per-tid control state, all padded: requested targeted kills, their
   mode, and which tids have died. *)
let requested = Array.init max_slots (fun _ -> Dcas.Padding.make_atomic false)

let req_mid_casn =
  Array.init max_slots (fun _ -> Dcas.Padding.make_atomic true)

let dead = Array.init max_slots (fun _ -> Dcas.Padding.make_atomic false)
let kills_total = Atomic.make 0
let kills_mid_casn = Atomic.make 0

(* Probabilistic configuration, Mem_chaos-style: ppm so the hot path
   compares ints, an epoch so reconfiguring restarts the per-domain
   streams deterministically. *)
type config = {
  prob_ppm : int;
  mid_casn_ppm : int;
  max_kills : int;
  seed : int;
  epoch : int;
}

let disarmed =
  { prob_ppm = 0; mid_casn_ppm = 0; max_kills = 0; seed = 0; epoch = 0 }

let config = Atomic.make disarmed
let slots = Atomic.make 0

(* Per-domain state: the enrolled tid, the armed "die at next publish"
   flag consumed by the publish hook, and the kill-verdict RNG. *)
type dstate = {
  mutable tid : int;
  mutable die_at_publish : bool;
  mutable epoch : int;
  mutable rng : Splitmix.t;
}

let key : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { tid = -1; die_at_publish = false; epoch = -1; rng = Splitmix.create ~seed:0 })

let check_tid ~who tid =
  if tid < 0 || tid >= max_slots then
    invalid_arg
      (Printf.sprintf "Crash.%s: tid must be in [0, %d)" who max_slots)

let enroll ~tid =
  check_tid ~who:"enroll" tid;
  (Domain.DLS.get key).tid <- tid

let leave () = (Domain.DLS.get key).tid <- -1

(* The one global publish hook: raise iff THIS domain armed itself.
   Installed lazily the first time any kill is requested; harmless for
   every other domain (the flag is domain-local). *)
let hook () =
  let d = Domain.DLS.get key in
  if d.die_at_publish then begin
    d.die_at_publish <- false;
    Atomic.incr kills_mid_casn;
    raise Died
  end

let hook_installed = Atomic.make false

let ensure_hook () =
  if not (Atomic.get hook_installed) then
    if Atomic.compare_and_set hook_installed false true then
      Dcas.Mem_lockfree.set_publish_hook hook

let kill ?(mode = (`Mid_casn : mode)) ~tid () =
  check_tid ~who:"kill" tid;
  ensure_hook ();
  Atomic.set req_mid_casn.(tid) (mode = `Mid_casn);
  Atomic.set requested.(tid) true

let ppm_of_prob ~what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Crash.configure: %s must be in [0, 1]" what);
  int_of_float (p *. 1_000_000.)

let configure ?(prob = 0.) ?(mid_casn_prob = 1.) ?(max_kills = max_int) ~seed
    () =
  if max_kills < 0 then
    invalid_arg "Crash.configure: max_kills must be >= 0";
  ensure_hook ();
  let prev = Atomic.get config in
  Atomic.set slots 0;
  Atomic.set config
    {
      prob_ppm = ppm_of_prob ~what:"prob" prob;
      mid_casn_ppm = ppm_of_prob ~what:"mid_casn_prob" mid_casn_prob;
      max_kills;
      seed;
      epoch = prev.epoch + 1;
    }

let disarm () =
  let prev = Atomic.get config in
  Atomic.set slots 0;
  Atomic.set config { disarmed with epoch = prev.epoch + 1 }

let armed () = (Atomic.get config).prob_ppm > 0
let kills () = Atomic.get kills_total
let mid_casn_kills () = Atomic.get kills_mid_casn
let killed ~tid =
  check_tid ~who:"killed" tid;
  Atomic.get dead.(tid)

let killed_tids () =
  let acc = ref [] in
  for tid = max_slots - 1 downto 0 do
    if Atomic.get dead.(tid) then acc := tid :: !acc
  done;
  !acc

let reset () =
  disarm ();
  Array.iter (fun a -> Atomic.set a false) requested;
  Array.iter (fun a -> Atomic.set a true) req_mid_casn;
  Array.iter (fun a -> Atomic.set a false) dead;
  Atomic.set kills_total 0;
  Atomic.set kills_mid_casn 0;
  (Domain.DLS.get key).die_at_publish <- false;
  Dcas.Mem_lockfree.clear_dead ()

let rng_for (c : config) (d : dstate) =
  if d.epoch <> c.epoch then begin
    let slot = Atomic.fetch_and_add slots 1 in
    d.epoch <- c.epoch;
    let s = Splitmix.create ~seed:c.seed in
    for _ = 0 to slot do
      ignore (Splitmix.next_int64 s)
    done;
    d.rng <- Splitmix.split s
  end;
  d.rng

let draw rng ppm = ppm > 0 && Splitmix.int rng ~bound:1_000_000 < ppm

(* Claim one unit of the probabilistic kill budget. *)
let rec claim_budget max_kills =
  let n = Atomic.get kills_total in
  if n >= max_kills then false
  else if Atomic.compare_and_set kills_total n (n + 1) then true
  else claim_budget max_kills

(* The victim side of a death.  [mid] = die at the next publish of our
   own descriptor (only meaningful when the imminent operation is
   DCAS-shaped); otherwise die right here.  Marking the domain dead in
   the substrate FIRST closes the accounting race: any descriptor this
   domain publishes from now on is an orphan. *)
let die ~tid ~mid =
  Atomic.set dead.(tid) true;
  Dcas.Mem_lockfree.mark_dead (Domain.self () :> int);
  if mid then (Domain.DLS.get key).die_at_publish <- true
  else raise Died

(* Instrumentation point, called by the wrapper before every shared
   operation.  [casn] says whether the imminent operation is
   DCAS-shaped and can host a mid-CASN death. *)
let point ~casn =
  let d = Domain.DLS.get key in
  let tid = d.tid in
  if tid >= 0 && not (Atomic.get dead.(tid)) then
    if Atomic.get requested.(tid) then begin
      let want_mid = Atomic.get req_mid_casn.(tid) in
      (* a mid-CASN request waits for a DCAS-shaped operation *)
      if casn || not want_mid then begin
        Atomic.set requested.(tid) false;
        Atomic.incr kills_total;
        die ~tid ~mid:(want_mid && casn)
      end
    end
    else
      let c = Atomic.get config in
      if c.prob_ppm > 0 then begin
        let rng = rng_for c d in
        if draw rng c.prob_ppm && claim_budget c.max_kills then
          die ~tid ~mid:(casn && draw rng c.mid_casn_ppm)
      end

(* After a DCAS-shaped operation returns: if the armed mid-CASN death
   never fired — pre-validation fast-failed, a chaos layer failed the
   op spuriously, or the substrate has no publish hook — fall back to
   dying at the operation boundary, orphaning nothing. *)
let boundary () =
  let d = Domain.DLS.get key in
  if d.die_at_publish then begin
    d.die_at_publish <- false;
    raise Died
  end

(* A memory model whose enrolled users may be killed for good before
   (or during) any shared operation. *)
module Mem_crashing_casn (M : Dcas.Memory_intf.MEMORY_CASN) :
  Dcas.Memory_intf.MEMORY_CASN with type 'a loc = 'a M.loc = struct
  type 'a loc = 'a M.loc

  let name = M.name ^ "+crash"
  let make = M.make
  let make_padded = M.make_padded

  let get l =
    point ~casn:false;
    M.get l

  let set l v =
    point ~casn:false;
    M.set l v

  let set_private = M.set_private

  let dcas l1 l2 o1 o2 n1 n2 =
    point ~casn:true;
    let r = M.dcas l1 l2 o1 o2 n1 n2 in
    boundary ();
    r

  let dcas_strong l1 l2 o1 o2 n1 n2 =
    point ~casn:true;
    let r = M.dcas_strong l1 l2 o1 o2 n1 n2 in
    boundary ();
    r

  type cass = M.cass = Cass : 'a M.loc * 'a * 'a -> cass

  let casn cs =
    point ~casn:true;
    let r = M.casn cs in
    boundary ();
    r

  let stats = M.stats
  let reset_stats = M.reset_stats
end

(** Progress watchdog: a monitor domain samples per-thread operation
    counters and converts a system-wide stall (no progress anywhere for
    [stall_after] seconds) into a diagnostic snapshot instead of a CI
    hang.

    The watchdog observes; it cannot unblock stuck domains.  Workers
    call {!tick} once per completed operation (a padded atomic
    increment) and optionally {!note} the operation they are about to
    run (an unsynchronized write; the monitor's read is racy by design
    and only feeds the diagnostic).  One report is emitted per stall
    episode; renewed progress re-arms the detector.  See E19 and the
    wiring in {!Runner}, [bin/stress.ml] and {!Modelcheck.Fuzz}. *)

type snapshot = {
  waited : float;  (** seconds since the last observed progress *)
  total : int;  (** operations completed system-wide *)
  per_thread : int array;
  last_op : string array;  (** last {!note}d op per thread; "" if none *)
  stats : Dcas.Memory_intf.stats option;
      (** memory substrate counters, when a [stats] thunk was given *)
}

val pp_snapshot : Format.formatter -> snapshot -> unit

type t

val create :
  ?interval:float ->
  ?stall_after:float ->
  ?stats:(unit -> Dcas.Memory_intf.stats) ->
  ?on_stall:(snapshot -> unit) ->
  threads:int ->
  unit ->
  t
(** A watchdog over [threads] per-thread counters.  The monitor samples
    every [interval] seconds (default 0.02) and calls [on_stall]
    (default: print to stderr) when no counter has moved for
    [stall_after] seconds (default 1.0).

    @raise Invalid_argument if [threads < 1], [interval <= 0] or
    [stall_after <= 0]. *)

val tick : t -> tid:int -> unit
(** One operation completed by worker [tid]. *)

val note : t -> tid:int -> string -> unit
(** Record the operation worker [tid] is about to run, for the
    diagnostic snapshot. *)

val start : t -> unit
(** Spawn the monitor domain.

    @raise Invalid_argument if already running. *)

val stop : t -> int
(** Shut the monitor down (no-op if not running) and return the number
    of stall episodes reported. *)

val stalls : t -> int
(** Stall episodes reported so far. *)

val fired : t -> bool
(** [stalls t > 0]. *)

val total : t -> int
(** Operations ticked so far, summed over threads. *)

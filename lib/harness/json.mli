(** Minimal JSON encoder/parser for the benchmark driver's
    machine-readable output.  Deliberately tiny: the [--json] schema
    uses only objects, arrays, strings, booleans and numbers, and the
    container carries no JSON library to depend on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) encoding.  [Float nan/inf] encode as [null];
    integral floats print with a trailing [.0] so they parse back as
    floats. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a complete JSON document.  @raise Parse_error on malformed
    input or trailing garbage.  Integers without fractional part parse
    as [Int], everything else numeric as [Float].  String escapes are
    limited to the ASCII range — sufficient for everything [to_string]
    emits. *)

(** {2 Accessors} — total, returning [Null]/[[]]/[None] on shape
    mismatch, for terse verification code. *)

val member : string -> t -> t
val to_list : t -> t list
val string_value : t -> string option
val number_value : t -> float option

(** Declarative multi-storm schedules (experiment E25): a list of
    fault {!window}s — kill, freeze, zombie, chaos — executed on the
    calling domain with overlapping windows allowed, seeded offset
    jitter, and a per-window {e landing} verdict read back from the
    injectors' own per-victim counters, so a soak can gate on "every
    scheduled fault actually landed". *)

type fault =
  | Kill of { tid : int; mid_casn : bool }
      (** {!Crash.kill} the victim at its next crash point when the
          window opens; [mid_casn] aims inside a CASN.  The hold only
          shapes the window's [active] span — a kill is permanent. *)
  | Freeze of { tid : int }
      (** {!Stall.Freezer.freeze} on open, [thaw] on close. *)
  | Zombie of { tid : int }
      (** {!Stall.Zombie.zombify} on open, [cure] on close. *)
  | Chaos
      (** Delegated: [run]'s [arm_chaos] / [disarm_chaos] callbacks
          fire on open / close and [chaos_hits] supplies the landing
          counter (chaos configuration lives with the memory functor
          instance, which this module cannot see). *)

type window = {
  at : float;  (** start offset from schedule start, seconds *)
  hold : float;  (** window length, seconds *)
  fault : fault;
}

type landing = {
  window : window;
  started : float;  (** measured start-event offset, seconds *)
  ended : float;  (** measured stop-event offset *)
  landed : bool;
      (** the injector's own counter moved (freeze parked its victim
          at least once, the zombie bit at least once, the kill's
          victim died, the chaos counter advanced) *)
}

val pp_fault : Format.formatter -> fault -> unit

val jittered : seed:int -> jitter:float -> window list -> window list
(** Shift each window's [at] by a seeded uniform draw from
    [-jitter, +jitter] (clamped at 0), leaving holds alone — repeated
    soaks sample different alignments of the same storm,
    reproducibly.

    @raise Invalid_argument if [jitter < 0] (or NaN). *)

val run :
  ?arm_chaos:(unit -> unit) ->
  ?disarm_chaos:(unit -> unit) ->
  ?chaos_hits:(unit -> int) ->
  ?on_active:(int -> unit) ->
  ?settle:float ->
  window list ->
  landing list
(** Execute the schedule on the calling domain (an E25 soak passes
    this as the service's [driver]), sleeping between events;
    overlapping windows are fine.  [on_active] is called after every
    window edge with the number of currently-open windows — flip a
    fault-phase flag on [> 0].  After the last event, sleep [settle]
    (default 0) so in-flight effects (a kill lands at the victim's
    {e next} crash point) register, then return one {!landing} per
    window, in input order.

    @raise Invalid_argument on a negative offset or hold. *)

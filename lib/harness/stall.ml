(* Stall injection for the resilience and liveness experiments (E9,
   E14, E19).

   Two mechanisms share the same instrumentation point (a check before
   every shared-memory operation):

   - {e cooperative self-stalls} ([request]): a thread arranges to go
     to sleep just before its [after_ops]-th subsequent shared-memory
     operation — i.e. genuinely in the middle of a deque operation,
     holding whatever intermediate state the algorithm has published.
     The request is domain-local, so a staller only ever stalls itself.

   - {e adversarial cross-domain freezes} ([Freezer]): a controller
     thread suspends enrolled victim domains at their next
     shared-memory access point and releases them later.  Unlike
     [Mem_chaos]'s bounded freezes, a frozen domain stays parked until
     it is thawed, which is exactly the paper's Section 1 "stopped
     process": with up to [threads - 1] domains frozen mid-operation, a
     lock-free structure must let the survivors keep completing
     operations, while anything blocking (a lock holder, a turn-passing
     protocol) stalls system-wide.  The controller chooses {e when} to
     set the flag; the victim parks at whatever access point it reaches
     next, so repeated freeze/thaw cycles sample random points inside
     operations.

   For the DCAS deques both mechanisms are harmless by design (any
   other thread helps or works around); for the lock-based baseline the
   equivalent experiment holds the deque's mutex across the same sleep,
   stopping the world. *)

type pending = { mutable countdown : int; mutable duration : float }

let key : pending Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { countdown = -1; duration = 0. })

(* A new request overwrites any pending one: requests do not nest or
   queue, each domain has at most one armed stall at a time.  See the
   .mli. *)
let request ~after_ops ~duration =
  if after_ops < 1 then invalid_arg "Stall.request: after_ops must be >= 1";
  if not (duration >= 0.) (* also rejects NaN *) then
    invalid_arg "Stall.request: duration must be >= 0";
  let p = Domain.DLS.get key in
  p.countdown <- after_ops;
  p.duration <- duration

(* Idempotent: cancelling with nothing pending is a no-op. *)
let cancel () =
  let p = Domain.DLS.get key in
  p.countdown <- -1

let pending () = (Domain.DLS.get key).countdown > 0

(* --- Cross-domain freezer --- *)

module Freezer = struct
  (* Slots are dense worker ids (the runner's [tid]), not domain ids:
     tests freeze "worker 1 and 2 of 3".  Fixed capacity keeps the
     check on the hot path an array load; 64 comfortably exceeds any
     worker count the harness spawns. *)
  let max_slots = 64

  let flags = Array.init max_slots (fun _ -> Dcas.Padding.make_atomic false)
  let parked = Array.init max_slots (fun _ -> Dcas.Padding.make_atomic false)
  let hits = Array.init max_slots (fun _ -> Dcas.Padding.make_atomic 0)

  let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

  let check_tid ~who tid =
    if tid < 0 || tid >= max_slots then
      invalid_arg
        (Printf.sprintf "Stall.Freezer.%s: tid must be in [0, %d)" who
           max_slots)

  let enroll ~tid =
    check_tid ~who:"enroll" tid;
    Domain.DLS.set slot_key tid

  let leave () = Domain.DLS.set slot_key (-1)

  let freeze ~tid =
    check_tid ~who:"freeze" tid;
    Atomic.set flags.(tid) true

  let thaw ~tid =
    check_tid ~who:"thaw" tid;
    Atomic.set flags.(tid) false

  let thaw_all () = Array.iter (fun f -> Atomic.set f false) flags

  let frozen_now () =
    Array.fold_left (fun n p -> if Atomic.get p then n + 1 else n) 0 parked

  let freeze_hits () =
    Array.fold_left (fun n h -> n + Atomic.get h) 0 hits

  let freeze_hits_of ~tid =
    check_tid ~who:"freeze_hits_of" tid;
    Atomic.get hits.(tid)

  let reset () =
    thaw_all ();
    Array.iter (fun h -> Atomic.set h 0) hits;
    Array.iter (fun p -> Atomic.set p false) parked

  (* The victim side: park while this domain's flag is up.  Checked at
     every instrumented shared-memory access, so the park lands inside
     whatever operation the victim is executing. *)
  let point () =
    let tid = Domain.DLS.get slot_key in
    if tid >= 0 && Atomic.get flags.(tid) then begin
      Atomic.incr hits.(tid);
      Atomic.set parked.(tid) true;
      while Atomic.get flags.(tid) do
        Domain.cpu_relax ()
      done;
      Atomic.set parked.(tid) false
    end
end

(* --- Zombie injection ---

   A zombie is the failure mode neither of the above produces: the
   victim stays scheduled and keeps ticking its liveness heartbeat,
   but does no useful work — a worker wedged in a retry loop, spinning
   on a poisoned connection, or live-locked.  Crash detection never
   fires (it is not dead) and tick-based silence detection never fires
   (it is not silent); only progress-based detection
   ({!Worksteal.Supervisor}'s [zombie_after]) can tell it from a
   healthy idle worker.

   Unlike the freezer, zombification is not delivered at shared-memory
   points — a parked victim would stop ticking and look merely silent.
   Instead the victim's WORK LOOP cooperates: it polls [active] each
   iteration and, while the flag is up, skips the operation, keeps its
   heartbeat ticking, and counts one [bite].  The bite counter is how
   a storm schedule verifies the window actually landed. *)
module Zombie = struct
  let max_slots = 64

  let flags = Array.init max_slots (fun _ -> Dcas.Padding.make_atomic false)
  let bitten = Array.init max_slots (fun _ -> Dcas.Padding.make_atomic 0)

  let check_tid ~who tid =
    if tid < 0 || tid >= max_slots then
      invalid_arg
        (Printf.sprintf "Stall.Zombie.%s: tid must be in [0, %d)" who
           max_slots)

  let zombify ~tid =
    check_tid ~who:"zombify" tid;
    Atomic.set flags.(tid) true

  let cure ~tid =
    check_tid ~who:"cure" tid;
    Atomic.set flags.(tid) false

  let cure_all () = Array.iter (fun f -> Atomic.set f false) flags

  let active ~tid =
    tid >= 0 && tid < max_slots && Atomic.get flags.(tid)

  let bite ~tid =
    check_tid ~who:"bite" tid;
    Atomic.incr bitten.(tid)

  let bites () =
    Array.fold_left (fun n b -> n + Atomic.get b) 0 bitten

  let bites_of ~tid =
    check_tid ~who:"bites_of" tid;
    Atomic.get bitten.(tid)

  let reset () =
    cure_all ();
    Array.iter (fun b -> Atomic.set b 0) bitten
end

(* Called by the instrumented memory before every shared operation. *)
let point () =
  let p = Domain.DLS.get key in
  if p.countdown > 0 then begin
    p.countdown <- p.countdown - 1;
    if p.countdown = 0 then begin
      p.countdown <- -1;
      Unix.sleepf p.duration
    end
  end;
  Freezer.point ()

(* A memory model that checks for a pending stall or freeze before each
   shared operation, then delegates.  Same loc type as the wrapped
   model, so structures built over it are otherwise identical. *)
module Mem_stalling (M : Dcas.Memory_intf.MEMORY) :
  Dcas.Memory_intf.MEMORY with type 'a loc = 'a M.loc = struct
  type 'a loc = 'a M.loc

  let name = M.name ^ "+stall"
  let make = M.make
  let make_padded = M.make_padded

  let get l =
    point ();
    M.get l

  let set l v =
    point ();
    M.set l v

  let set_private = M.set_private

  let dcas l1 l2 o1 o2 n1 n2 =
    point ();
    M.dcas l1 l2 o1 o2 n1 n2

  let dcas_strong l1 l2 o1 o2 n1 n2 =
    point ();
    M.dcas_strong l1 l2 o1 o2 n1 n2

  let stats = M.stats
  let reset_stats = M.reset_stats
end

(* CASN-capable variant, so the 3CAS deque (and anything composed with
   Mem_chaos, which is CASN-shaped) runs under the same
   instrumentation. *)
module Mem_stalling_casn (M : Dcas.Memory_intf.MEMORY_CASN) :
  Dcas.Memory_intf.MEMORY_CASN with type 'a loc = 'a M.loc = struct
  include Mem_stalling (M)

  type cass = M.cass = Cass : 'a M.loc * 'a * 'a -> cass

  let casn cs =
    point ();
    M.casn cs
end

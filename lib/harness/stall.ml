(* Cooperative stall injection for the resilience experiment (E9).

   The paper's Section 1 motivates non-blocking structures with
   resilience: a thread preempted in the middle of an operation must
   not block others.  [Mem_stalling] wraps any memory model so that a
   thread which has called [request] goes to sleep just before its
   [after_ops]-th subsequent shared-memory operation — i.e. genuinely
   in the middle of a deque operation, holding whatever intermediate
   state the algorithm has published.  For the DCAS deques this is
   harmless by design (any other thread helps or works around); for the
   lock-based baseline the equivalent experiment holds the deque's
   mutex across the same sleep, stopping the world.

   The request is domain-local, so a staller thread only ever stalls
   itself. *)

type pending = { mutable countdown : int; mutable duration : float }

let key : pending Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { countdown = -1; duration = 0. })

let request ~after_ops ~duration =
  if after_ops < 1 then invalid_arg "Stall.request: after_ops must be >= 1";
  let p = Domain.DLS.get key in
  p.countdown <- after_ops;
  p.duration <- duration

let cancel () =
  let p = Domain.DLS.get key in
  p.countdown <- -1

(* Called by the instrumented memory before every shared operation. *)
let point () =
  let p = Domain.DLS.get key in
  if p.countdown > 0 then begin
    p.countdown <- p.countdown - 1;
    if p.countdown = 0 then begin
      p.countdown <- -1;
      Unix.sleepf p.duration
    end
  end

(* A memory model that checks for a pending stall before each shared
   operation, then delegates.  Same loc type as the wrapped model, so
   structures built over it are otherwise identical. *)
module Mem_stalling (M : Dcas.Memory_intf.MEMORY) :
  Dcas.Memory_intf.MEMORY with type 'a loc = 'a M.loc = struct
  type 'a loc = 'a M.loc

  let name = M.name ^ "+stall"
  let make = M.make
  let make_padded = M.make_padded

  let get l =
    point ();
    M.get l

  let set l v =
    point ();
    M.set l v

  let set_private = M.set_private

  let dcas l1 l2 o1 o2 n1 n2 =
    point ();
    M.dcas l1 l2 o1 o2 n1 n2

  let dcas_strong l1 l2 o1 o2 n1 n2 =
    point ();
    M.dcas_strong l1 l2 o1 o2 n1 n2

  let stats = M.stats
  let reset_stats = M.reset_stats
end

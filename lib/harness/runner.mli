(** Multi-domain benchmark runner: workers line up behind a sense
    barrier, run until a stop flag flips (or for a fixed iteration
    count), and report per-thread operation counts.

    On a single-core machine the domains time-share preemptively;
    throughput measures synchronization cost under contention rather
    than parallel speedup. *)

type result = {
  per_thread : int array;  (** operations completed by each thread *)
  elapsed : float;  (** seconds between barrier release and last join *)
  died : bool array;
      (** which threads exited early via {!Crash.Died} — a fail-stop
          fault under test, not an error; their completed-op counts are
          still in [per_thread] *)
}

val total : result -> int
val throughput : result -> float

val deaths : result -> int
(** Number of threads that died ([Array] count of [died]). *)

val run :
  ?seed:int ->
  ?watchdog:Watchdog.t ->
  threads:int ->
  duration:float ->
  (tid:int -> rng:Splitmix.t -> unit) ->
  result
(** Each domain evaluates the body (one logical operation per call)
    repeatedly until [duration] elapses.  Per-thread RNG streams derive
    deterministically from [seed].

    [watchdog], when given, must be created with at least [threads]
    threads and not yet started: the runner starts it when the barrier
    releases, ticks it once per completed body call, and stops it after
    the workers join — read {!Watchdog.stalls} afterwards to learn
    whether it fired.

    @raise Invalid_argument if [threads < 1]. *)

val run_fixed :
  ?seed:int ->
  ?watchdog:Watchdog.t ->
  threads:int ->
  iters:int ->
  (tid:int -> rng:Splitmix.t -> i:int -> unit) ->
  float
(** Every thread performs exactly [iters] operations; returns the
    elapsed wall-clock seconds.  Used where operation counts must
    balance exactly (conservation checks). *)

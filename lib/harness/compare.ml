(* Baseline comparison between two benchmark --json documents,
   factored out of the bench driver so the verdict logic is unit
   testable.

   Rows are matched across the two documents by experiment id plus
   every string-valued field (backend, mix, section, cell, ...) plus
   the domain count — the stable identity of a benchmark cell.  Every
   matched pair reports its ops_per_sec delta; hot-path rows (the
   single-domain e23 shootout and the soak sections) regressing beyond
   the threshold are collected as regressions.  New and vanished rows
   are reported but never fail: growing the suite must not break the
   gate.

   Anything that makes the comparison itself meaningless — an
   unreadable or unparsable file, a wrong schema, a matched cell whose
   ops_per_sec is missing, non-numeric or NaN, or zero matched rows —
   is an [Invalid] verdict with a diagnostic naming the file and cell,
   so the caller can distinguish "your inputs are broken" (usage-class
   failure) from "your code got slower" (regression-class failure). *)

type verdict =
  | Compared of { matched : int; regressions : (string * float) list }
  | Invalid of string

let default_threshold = 20.0

let load ~schema file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error (Printf.sprintf "cannot read %s: %s" file m)
  | text -> (
      match Json.of_string text with
      | exception Json.Parse_error m ->
          Error (Printf.sprintf "invalid JSON in %s: %s" file m)
      | doc -> (
          match Json.string_value (Json.member "schema" doc) with
          | Some s when s = schema -> Ok doc
          | Some s -> Error (Printf.sprintf "%s: unexpected schema %S" file s)
          | None -> Error (Printf.sprintf "%s: missing schema field" file)))

let row_key ~id row =
  match row with
  | Json.Obj fields ->
      let parts =
        List.filter_map
          (fun (k, v) ->
            match v with
            (* measurements are never identity, even when corrupted
               into a string — keep the row matched so the corruption
               is diagnosed rather than reported as a new row *)
            | _ when k = "ops_per_sec" -> None
            | Json.String s -> Some (Printf.sprintf "%s=%s" k s)
            | Json.Int n when k = "domains" -> Some (Printf.sprintf "%s=%d" k n)
            | _ -> None)
          fields
      in
      String.concat " " (id :: List.sort compare parts)
  | _ -> id

let indexed_rows doc =
  List.concat_map
    (fun e ->
      match Json.string_value (Json.member "id" e) with
      | None -> []
      | Some id ->
          List.map
            (fun r -> (row_key ~id r, r))
            (Json.to_list (Json.member "rows" e)))
    (Json.to_list (Json.member "experiments" doc))

(* The gate is restricted to rows whose run-to-run variance supports a
   threshold: single-domain shootout throughput and the rate-paced
   soaks.  Multi-domain cells measure the OS scheduler's interleaving
   luck on an oversubscribed box; their deltas still print. *)
let hot key =
  let parts = String.split_on_char ' ' key in
  let has s = List.mem s parts in
  (has "section=shootout" && has "domains=1") || has "section=soak"

(* A matched cell's throughput, or a diagnostic: [ops_per_sec]
   missing, non-numeric or NaN means whoever wrote [file] produced a
   corrupt measurement, and comparing against it would silently gate
   on garbage. *)
let ops ~file ~key row =
  match Json.number_value (Json.member "ops_per_sec" row) with
  | Some v when Float.is_nan v ->
      Error (Printf.sprintf "%s: NaN ops_per_sec in matched row [%s]" file key)
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "%s: missing or non-numeric ops_per_sec in matched \
                         row [%s]"
           file key)

let run ?(threshold = default_threshold) ?(print = fun _ -> ())
    ~schema ~old_file ~new_file () =
  match (load ~schema old_file, load ~schema new_file) with
  | Error m, _ | _, Error m -> Invalid m
  | Ok old_doc, Ok new_doc -> (
      let old_rows = indexed_rows old_doc in
      let new_rows = indexed_rows new_doc in
      let regressions = ref [] in
      let matched = ref 0 in
      let invalid = ref None in
      let fail m = if !invalid = None then invalid := Some m in
      List.iter
        (fun (key, nr) ->
          match List.assoc_opt key old_rows with
          | None -> print (Printf.sprintf "  new       %s" key)
          | Some orow -> (
              match (ops ~file:old_file ~key orow, ops ~file:new_file ~key nr)
              with
              | Error m, _ | _, Error m -> fail m
              | Ok o, Ok _ when o <= 0. ->
                  fail
                    (Printf.sprintf
                       "%s: non-positive ops_per_sec (%g) in matched row [%s]"
                       old_file o key)
              | Ok o, Ok n ->
                  incr matched;
                  let delta = (n -. o) /. o *. 100. in
                  let flag =
                    if hot key && delta < -.threshold then begin
                      regressions := (key, delta) :: !regressions;
                      "  REGRESSION"
                    end
                    else ""
                  in
                  print
                    (Printf.sprintf "  %+7.1f%%  %s  (%.0f -> %.0f ops/s)%s"
                       delta key o n flag)))
        new_rows;
      List.iter
        (fun (key, _) ->
          if not (List.mem_assoc key new_rows) then
            print (Printf.sprintf "  vanished  %s" key))
        old_rows;
      match !invalid with
      | Some m -> Invalid m
      | None ->
          if !matched = 0 then
            Invalid
              (Printf.sprintf "no comparable rows between %s and %s" old_file
                 new_file)
          else
            Compared
              { matched = !matched; regressions = List.rev !regressions })

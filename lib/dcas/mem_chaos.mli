(** Fault-injecting wrapper around any {!Memory_intf.MEMORY_CASN}.

    [Make (M)] behaves exactly like [M] until {!Make.configure} arms
    it, after which it injects seeded, deterministic faults in front of
    [M]'s operations: spurious DCAS/CASN failures (the attempt returns
    [false] without consulting memory, as a weak compare-and-swap may),
    bounded pre-operation delays, and long "frozen domain" stalls.
    Injected faults are counted in the [chaos_*] fields of
    {!Memory_intf.stats} (spurious failures also count as
    [dcas_attempts]); [stats] sums them with [M]'s own counters.

    [dcas_strong] never fails spuriously — its contract promises a
    failing call returns an atomic view differing from the expected
    values — but delays and freezes apply to it.  [set_private] is
    exempt entirely: unpublished locations are invisible to other
    threads, so a fault there would test nothing.

    Draws come from per-domain SplitMix64 streams derived from the
    configured seed, so single-domain runs (e.g. under the model
    checker) replay faults exactly; each [configure] restarts the
    streams. *)

module Make (M : Memory_intf.MEMORY_CASN) : sig
  include Memory_intf.MEMORY_CASN with type 'a loc = 'a M.loc

  val configure :
    ?fail_prob:float ->
    ?delay_prob:float ->
    ?max_delay:int ->
    ?freeze_prob:float ->
    ?freeze_spins:int ->
    seed:int ->
    unit ->
    unit
  (** Arm the injector.  [fail_prob] is the per-DCAS/CASN spurious
      failure probability; [delay_prob] the per-operation probability
      of spinning 1..[max_delay] times; [freeze_prob] the
      per-operation probability of spinning [freeze_spins] times.
      Probabilities default to 0; restarting the fault streams from
      [seed] is the only effect of a configure that leaves them all 0.

      @raise Invalid_argument if a probability is outside [0, 1] or a
      spin bound is < 1. *)

  val disarm : unit -> unit
  (** Stop injecting faults; the wrapper becomes transparent. *)

  val armed : unit -> bool
  (** Is any fault probability currently non-zero? *)
end

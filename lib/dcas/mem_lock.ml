(* Blocking software DCAS behind a single global mutex — the paper's
   citation [2] ("a blocking software emulation", Agesen & Cartwright's
   platform-independent DCAS).  Every operation, including reads, takes
   the lock: a read that bypassed the lock could observe the window
   between the two stores of a DCAS, which would break the atomicity
   Figure 1 specifies.  This model is the simplest correct baseline and
   the reference point for experiment E12. *)

type 'a loc = { id : int; mutable content : 'a; equal : 'a -> 'a -> bool }

let name = "global-lock"
let counters = Opstats.create ()
let stats () = Opstats.snapshot counters
let reset_stats () = Opstats.reset counters
let mutex = Mutex.create ()

let make ?(equal = ( = )) v = { id = Id.next (); content = v; equal }
let make_padded ?equal v = Padding.copy_as_padded (make ?equal v)

let get loc =
  Opstats.incr_read counters;
  Mutex.lock mutex;
  let v = loc.content in
  Mutex.unlock mutex;
  v

let set loc v =
  Opstats.incr_write counters;
  Mutex.lock mutex;
  loc.content <- v;
  Mutex.unlock mutex

let set_private loc v = loc.content <- v

let dcas_strong l1 l2 o1 o2 n1 n2 =
  if l1.id = l2.id then invalid_arg "Mem_lock.dcas: locations must differ";
  Opstats.incr_attempt counters;
  Mutex.lock mutex;
  let v1 = l1.content and v2 = l2.content in
  let ok = l1.equal v1 o1 && l2.equal v2 o2 in
  if ok then begin
    l1.content <- n1;
    l2.content <- n2
  end;
  Mutex.unlock mutex;
  if ok then Opstats.incr_success counters;
  (ok, v1, v2)

let dcas l1 l2 o1 o2 n1 n2 =
  let ok, _, _ = dcas_strong l1 l2 o1 o2 n1 n2 in
  ok

type cass = Cass : 'a loc * 'a * 'a -> cass

let casn cs =
  let ids = List.map (fun (Cass (l, _, _)) -> l.id) cs in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Mem_lock.casn: locations must differ";
  Opstats.incr_attempt counters;
  Mutex.lock mutex;
  let ok = List.for_all (fun (Cass (l, o, _)) -> l.equal l.content o) cs in
  if ok then List.iter (fun (Cass (l, _, n)) -> l.content <- n) cs;
  Mutex.unlock mutex;
  if ok then Opstats.incr_success counters;
  ok

(** Non-blocking software DCAS: a two-word CASN built from single-word
    CAS with descriptors and helping (the paper's "non-blocking software
    emulation [8, 30]").

    This is the production memory model: all operations are lock-free.
    Reads never help; they resolve an owning descriptor's status
    in-place.  Writers and DCAS operations help any undecided descriptor
    they encounter, so a preempted operation can never block others.
    Descriptor reclamation relies on the garbage collector, mirroring
    the paper's reliance on GC for list nodes. *)

include Memory_intf.MEMORY_CASN
(** [casn entries] atomically compares-and-swaps every entry with
    descriptor-based helping, succeeding iff all expected values match:
    the generalization the paper's Section 6 gestures at, used by the
    3CAS deque extension. *)

val set_dcas2_enabled : bool -> unit
(** Ablation switch (default [true]): with [false], every DCAS/CASN
    slow path builds the generic entry-array descriptor and no release
    is value-elided — the substrate before the flat [Dcas2]
    specialization.  For experiment E21 and tests; do not toggle while
    operations are in flight. *)

(** Non-blocking software DCAS: a two-word CASN built from single-word
    CAS with descriptors and helping (the paper's "non-blocking software
    emulation [8, 30]").

    This is the production memory model: all operations are lock-free.
    Reads never help; they resolve an owning descriptor's status
    in-place.  Writers and DCAS operations help any undecided descriptor
    they encounter, so a preempted operation can never block others.
    Descriptor reclamation relies on the garbage collector, mirroring
    the paper's reliance on GC for list nodes. *)

include Memory_intf.MEMORY_CASN
(** [casn entries] atomically compares-and-swaps every entry with
    descriptor-based helping, succeeding iff all expected values match:
    the generalization the paper's Section 6 gestures at, used by the
    3CAS deque extension. *)

val set_dcas2_enabled : bool -> unit
(** Ablation switch (default [true]): with [false], every DCAS/CASN
    slow path builds the generic entry-array descriptor and no release
    is value-elided — the substrate before the flat [Dcas2]
    specialization.  For experiment E21 and tests; do not toggle while
    operations are in flight. *)

(** {2 Fail-stop crash bookkeeping}

    Hooks for {!Harness.Crash} and experiment E22.  Every descriptor
    records the domain id of its initiator; a domain {!mark_dead}ed
    before its final operation leaves {e orphaned} descriptors, and
    each one whose status is decided by a {e surviving} helper is
    counted in {!Memory_intf.stats.helped_orphans} — the operational
    content of the paper's claim that a stopped process's in-flight
    DCAS is completed by others.  All checks hide behind armed flags,
    so the fault-free paths are unchanged. *)

val mark_dead : int -> unit
(** [mark_dead id] marks domain [id] (as in [(Domain.self () :> int)])
    dead: descriptors it owns that are decided by other domains from
    now on count as helped orphans.  Call {e before} the domain's
    final, fatal operation so the accounting has no race window. *)

val clear_dead : unit -> unit
(** Empty the dead set (between experiments). *)

val dead_domains : unit -> int list
(** Domain ids currently marked dead. *)

val set_publish_hook : (unit -> unit) -> unit
(** [set_publish_hook f] arms [f] to run each time a domain installs
    its {e own} descriptor on a location — i.e. mid-CASN, after the
    operation has published shared state but before it is decided.
    [f] runs on the installing domain and may raise to simulate a
    crash at exactly that point; helpers working on other domains'
    descriptors never trigger it.  One global hook; the crash layer
    multiplexes per-domain decisions through domain-local state. *)

val clear_publish_hook : unit -> unit
(** Disarm the publish hook. *)

val orphans : unit -> int
(** Number of orphaned descriptors observed so far: descriptors
    published by a domain after it was {!mark_dead}ed.  A killed
    domain publishes at most one (the crash layer kills it at its
    first publish), so this equals the number of mid-CASN deaths. *)

val help_orphans : unit -> int
(** Help every orphaned descriptor to completion on the current
    domain, and return the number of orphans observed (same count as
    {!orphans}).  Idempotent: descriptors already decided — by organic
    helping or a previous call — are left untouched, and the
    [helped_orphans] counter ticks exactly once per descriptor however
    many parties help.  Call from a surviving domain once the dead
    domains' deques are drained, before asserting
    [helped_orphans = orphans ()]. *)

(* Randomized truncated exponential backoff.  Retry loops in the
   lock-free structures back off after a failed DCAS so that, under
   contention, competing operations desynchronize instead of failing
   each other's DCAS repeatedly.  The state is a single record kept in
   the caller's stack frame; no allocation on the hot path. *)

type t = { min_wait : int; max_wait : int; mutable wait : int; mutable seed : int }

let default_min_wait = 4
let default_max_wait = 1024

(* Domains are seeded from their (small, consecutive) domain ids.  Raw
   xorshift maps nearby seeds to correlated early outputs, and a
   power-of-two [mod] reads exactly the correlated low bits, so domains
   spinning in lockstep would draw the same first waits — defeating the
   decorrelation that is the whole point.  One multiplicative mix
   (Knuth's 2^62-safe constant) spreads consecutive ids across the
   state space before xorshift takes over. *)
let scramble s =
  let s = s lxor (s lsr 30) in
  let s = s * 0x2545F4914F6CDD1D in
  let s = s land max_int in
  if s = 0 then 1 else s

let create ?(min_wait = default_min_wait) ?(max_wait = default_max_wait) () =
  if min_wait < 1 || max_wait < min_wait then
    invalid_arg "Backoff.create: need 1 <= min_wait <= max_wait";
  (* Seed from the domain id so that domains spinning in lockstep pick
     different wait times from the first iteration. *)
  let seed = scramble ((Domain.self () :> int) + 1) in
  { min_wait; max_wait; wait = min_wait; seed }

(* xorshift step; quality is irrelevant, decorrelation is the point. *)
let next_rand t =
  let s = t.seed in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  t.seed <- s land max_int;
  t.seed

(* Unbiased draw from [0, n): rejection-sample under the smallest
   all-ones mask covering n-1.  A plain [next_rand t mod n] is biased
   toward small residues whenever n does not divide the generator's
   range, and collapses to a constant for n = 1 without even advancing
   the generator. *)
let uniform t n =
  if n <= 1 then (
    ignore (next_rand t);
    0)
  else begin
    let mask =
      let rec widen m = if m >= n - 1 then m else widen ((m lsl 1) lor 1) in
      widen 1
    in
    let rec draw () =
      let r = next_rand t land mask in
      if r < n then r else draw ()
    in
    draw ()
  end

let once t =
  let spins = t.min_wait + uniform t t.wait in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done;
  if t.wait < t.max_wait then t.wait <- min t.max_wait (t.wait * 2)

let reset t = t.wait <- t.min_wait

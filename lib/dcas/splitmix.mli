(** SplitMix64 deterministic PRNG with splittable streams. *)

type t

val create : seed:int -> t
val next_int64 : t -> int64

val int : t -> bound:int -> int
(** Uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val split : t -> t
(** An independent stream derived from [t]'s state. *)

(* Fault-injecting wrapper around any MEMORY_CASN substrate.

   The paper's progress and safety arguments are adversarial: they must
   hold however slowly a processor runs, however often its DCAS loses,
   and wherever it stalls.  [Mem_chaos.Make (M)] turns that adversary
   into an executable substrate by injecting three seeded, deterministic
   fault kinds in front of M's operations:

   - {e spurious DCAS/CASN failures}: the attempt returns [false]
     without consulting memory, as a weak compare-and-swap (LL/SC, or a
     DCAS emulated with helping) legitimately may.  Retry loops must
     absorb them; any algorithm that treats a failed DCAS as proof of a
     conflicting write is flushed out immediately.
   - {e bounded delays}: a short spin before an operation, modelling a
     processor losing its timeslice mid-operation.
   - {e freezes}: a much longer stall, modelling the paper's Section 1
     "stopped process" scenario.  Non-blocking structures must let the
     other domains sail past a frozen one.

   All draws come from per-domain SplitMix64 streams derived from the
   configured master seed, so a failing run is replayed exactly by
   reconfiguring with the same seed (single-domain use, e.g. under the
   model checker, is fully deterministic; multi-domain use is
   deterministic per domain given the registration order).  Fault
   counters flow through {!Opstats} into {!Memory_intf.stats} alongside
   the ordinary operation counters.

   [dcas_strong] is deliberately exempt from spurious failures: its
   contract promises that a failing call returns an atomic view that
   differs from the expected values, which a made-up failure cannot
   honour.  Delays and freezes still apply to it. *)

(* Probabilities are stored as parts-per-million so the hot path
   compares ints, never floats. *)
type config = {
  fail_ppm : int;
  delay_ppm : int;
  max_delay : int;
  freeze_ppm : int;
  freeze_spins : int;
  seed : int;
  epoch : int;  (* bumped by every configure/disarm: invalidates the
                   per-domain RNG streams so they restart from the new
                   seed *)
}

let disarmed =
  {
    fail_ppm = 0;
    delay_ppm = 0;
    max_delay = 0;
    freeze_ppm = 0;
    freeze_spins = 0;
    seed = 0;
    epoch = 0;
  }

let ppm_of_prob ~what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Mem_chaos.configure: %s must be in [0, 1]" what);
  int_of_float (p *. 1_000_000.)

module Make (M : Memory_intf.MEMORY_CASN) = struct
  type 'a loc = 'a M.loc

  let name = "chaos[" ^ M.name ^ "]"
  let counters = Opstats.create ()
  let stats () = Memory_intf.add_stats (M.stats ()) (Opstats.snapshot counters)

  let reset_stats () =
    M.reset_stats ();
    Opstats.reset counters

  let config = Atomic.make disarmed

  (* Slots are handed out in domain registration order within the
     current epoch; configure/disarm restart the handout, so the same
     seed replays the same streams (exactly so for single-domain use,
     per registration order for multi-domain use). *)
  let slots = Atomic.make 0

  let configure ?(fail_prob = 0.) ?(delay_prob = 0.) ?(max_delay = 64)
      ?(freeze_prob = 0.) ?(freeze_spins = 10_000) ~seed () =
    if max_delay < 1 then
      invalid_arg "Mem_chaos.configure: max_delay must be >= 1";
    if freeze_spins < 1 then
      invalid_arg "Mem_chaos.configure: freeze_spins must be >= 1";
    let prev = Atomic.get config in
    Atomic.set slots 0;
    Atomic.set config
      {
        fail_ppm = ppm_of_prob ~what:"fail_prob" fail_prob;
        delay_ppm = ppm_of_prob ~what:"delay_prob" delay_prob;
        max_delay;
        freeze_ppm = ppm_of_prob ~what:"freeze_prob" freeze_prob;
        freeze_spins;
        seed;
        epoch = prev.epoch + 1;
      }

  let disarm () =
    let prev = Atomic.get config in
    Atomic.set slots 0;
    Atomic.set config { disarmed with epoch = prev.epoch + 1 }

  let armed () =
    let c = Atomic.get config in
    c.fail_ppm > 0 || c.delay_ppm > 0 || c.freeze_ppm > 0

  (* Per-domain RNG streams.  Each domain's stream is a deterministic
     function of (seed, slot); a configure restarts every stream from
     the new seed. *)
  type dstate = { mutable epoch : int; mutable rng : Splitmix.t }

  let key =
    Domain.DLS.new_key (fun () ->
        { epoch = -1; rng = Splitmix.create ~seed:0 })

  let rng_for (c : config) =
    let d = Domain.DLS.get key in
    if d.epoch <> c.epoch then begin
      let slot = Atomic.fetch_and_add slots 1 in
      d.epoch <- c.epoch;
      (* decorrelate nearby (seed, slot) pairs with one golden-ratio
         step per slot before the stream starts *)
      let s = Splitmix.create ~seed:c.seed in
      for _ = 0 to slot do
        ignore (Splitmix.next_int64 s)
      done;
      d.rng <- Splitmix.split s
    end;
    d.rng

  let draw rng ppm = ppm > 0 && Splitmix.int rng ~bound:1_000_000 < ppm

  (* One fault point, shared by every operation: maybe stall.  Returns
     the rng so DCAS-shaped operations can additionally draw their
     spurious-failure verdict from the same stream. *)
  let turbulence () =
    let c = Atomic.get config in
    if c.epoch = 0 then None
    else begin
      let rng = rng_for c in
      if draw rng c.delay_ppm then begin
        Opstats.incr_delay counters;
        let spins = 1 + Splitmix.int rng ~bound:c.max_delay in
        for _ = 1 to spins do
          Domain.cpu_relax ()
        done
      end;
      if draw rng c.freeze_ppm then begin
        Opstats.incr_freeze counters;
        for _ = 1 to c.freeze_spins do
          Domain.cpu_relax ()
        done
      end;
      Some (rng, c)
    end

  let spurious_failure = function
    | None -> false
    | Some (rng, c) ->
        c.fail_ppm > 0 && draw rng c.fail_ppm

  let make = M.make
  let make_padded = M.make_padded

  let get l =
    ignore (turbulence ());
    M.get l

  let set l v =
    ignore (turbulence ());
    M.set l v

  (* Private initialization of unpublished locations: no other thread
     can observe it, so a fault here would test nothing. *)
  let set_private = M.set_private

  let dcas l1 l2 o1 o2 n1 n2 =
    let t = turbulence () in
    if spurious_failure t then begin
      Opstats.incr_attempt counters;
      Opstats.incr_spurious counters;
      false
    end
    else M.dcas l1 l2 o1 o2 n1 n2

  (* No spurious failures: the failing view must truly differ from the
     expected values (see the header comment). *)
  let dcas_strong l1 l2 o1 o2 n1 n2 =
    ignore (turbulence ());
    M.dcas_strong l1 l2 o1 o2 n1 n2

  type cass = Cass : 'a loc * 'a * 'a -> cass

  let casn cs =
    let t = turbulence () in
    if spurious_failure t then begin
      Opstats.incr_attempt counters;
      Opstats.incr_spurious counters;
      false
    end
    else M.casn (List.map (fun (Cass (l, o, n)) -> M.Cass (l, o, n)) cs)
end

(* Per-domain operation counters.  Each domain that touches a memory
   model gets its own array of atomic counters (registered in a global
   list), so the hot paths never contend on a shared counter; [snapshot]
   sums across domains.

   Each counter cell is cache-line padded (see Padding): without it,
   the five counters of one domain's bucket — and worse, the counters
   of different domains allocated back to back — share cache lines,
   and "per-domain so the hot path doesn't contend" is defeated by
   coherence traffic on the line itself.  The bucket's spine array is
   NOT padded: an array must never go through [copy_as_padded]
   (Array.length is derived from the block size), and the spine is
   read-only after creation, so sharing its line is harmless. *)

type bucket = int Atomic.t array
(* indices: 0 = reads, 1 = writes, 2 = dcas attempts, 3 = dcas
   successes, 4 = dcas fast-fails, 5 = injected spurious failures,
   6 = injected delays, 7 = injected freezes (5-7 used by Mem_chaos),
   8 = Dcas2 fast-path hits, 9 = descriptor allocations, 10 = Value
   block allocations (8-10 used by Mem_lockfree), 11 = orphaned
   descriptors helped to completion by survivors (crash injection).
   The layout is the field order of Memory_intf.stats: snapshot
   converts through Memory_intf.of_counts, so the two can never drift
   apart silently. *)

let bucket_size = Memory_intf.stats_fields

type t = {
  mutex : Mutex.t;
  mutable buckets : bucket list;
  key : bucket Domain.DLS.key;
}

let create () =
  let rec t =
    lazy
      {
        mutex = Mutex.create ();
        buckets = [];
        key =
          Domain.DLS.new_key (fun () ->
              let b = Array.init bucket_size (fun _ -> Padding.make_atomic 0) in
              let t = Lazy.force t in
              Mutex.lock t.mutex;
              t.buckets <- b :: t.buckets;
              Mutex.unlock t.mutex;
              b);
      }
  in
  Lazy.force t

let bucket t = Domain.DLS.get t.key

let incr b i = Atomic.incr b.(i)
let incr_read t = incr (bucket t) 0
let incr_write t = incr (bucket t) 1
let incr_attempt t = incr (bucket t) 2
let incr_success t = incr (bucket t) 3
let incr_fastfail t = incr (bucket t) 4
let incr_spurious t = incr (bucket t) 5
let incr_delay t = incr (bucket t) 6
let incr_freeze t = incr (bucket t) 7
let incr_dcas2 t = incr (bucket t) 8
let incr_desc_alloc t = incr (bucket t) 9
let incr_value_alloc t = incr (bucket t) 10
let incr_orphan t = incr (bucket t) 11

let snapshot t : Memory_intf.stats =
  Mutex.lock t.mutex;
  let buckets = t.buckets in
  Mutex.unlock t.mutex;
  let sum i = List.fold_left (fun acc b -> acc + Atomic.get b.(i)) 0 buckets in
  Memory_intf.of_counts (Array.init bucket_size sum)

let reset t =
  Mutex.lock t.mutex;
  let buckets = t.buckets in
  Mutex.unlock t.mutex;
  List.iter (fun b -> Array.iter (fun c -> Atomic.set c 0) b) buckets

(* Cache-line padding for contended heap blocks, in the style of
   Multicore_magic.copy_as_padded.

   OCaml gives no direct control over object placement, but the minor
   allocator is a bump allocator: blocks allocated together end up
   adjacent, so two Atomic.t cells made back to back share a cache line
   and every CAS on one invalidates the other on all cores (false
   sharing).  Widening a hot block with unused trailing words pushes
   its neighbors out of the line: after the copy survives a minor
   collection the block occupies [padding_words + header] words of the
   major heap, more than a 64-byte line on 64-bit, so no *other* hot
   block shares its line.

   The copy is shallow and preserves tag and field order, so mutable
   record fields and Atomic.t contents (an Atomic.t is a single-field
   heap block) behave identically through it.  Non-block values and
   exotic tags (closures, floats-only records, custom blocks) are
   returned unchanged — padding them is either impossible or unsound,
   and callers only pad ordinary records and atomics. *)

(* 8 words = one 64-byte line on 64-bit; pad well past one line so the
   block straddling a line boundary still keeps neighbors out. *)
let cache_line_words = 8
let padding_words = (2 * cache_line_words) - 1

let copy_as_padded (v : 'a) : 'a =
  let r = Obj.repr v in
  if
    Obj.is_block r && Obj.tag r = 0 && Obj.size r > 0
    && Obj.size r < padding_words
  then begin
    (* Obj.new_block initializes every field to (), so the trailing
       padding words are valid immediates for the GC to scan. *)
    let padded = Obj.new_block 0 padding_words in
    for i = 0 to Obj.size r - 1 do
      Obj.set_field padded i (Obj.field r i)
    done;
    Obj.obj padded
  end
  else v

let make_atomic v = copy_as_padded (Atomic.make v)

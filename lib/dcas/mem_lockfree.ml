(* Non-blocking software DCAS in the style the paper cites as "a
   non-blocking software emulation [8, 30]": a restricted multi-word
   compare-and-swap (CASN) built from single-word CAS with descriptors
   and helping, after Harris, Fraser and Pratt.

   Each location holds a [state]: either a plain [Value], or [Owned] by
   a CASN descriptor together with the location's value before and
   after that CASN.  The logical value of an [Owned] location is
   decided by the descriptor's status: [before] until the status word
   is CASed to [Succeeded] (which is the linearization point of the
   whole CASN), [after] from then on.  Any thread that encounters an
   undecided descriptor while installing its own helps it to completion
   first, so a stalled thread can never block others.

   Two properties of OCaml make the simple two-phase CASN (without the
   RDCSS sub-protocol of Harris et al.) correct here:

   - every write allocates a fresh [Value] block, and installation uses
     a physical compare-and-set against the exact state block read in
     the same attempt, so a stale helper that slept across a complete
     acquire/decide/release cycle can never re-install its descriptor
     (the state block it read is no longer current); and

   - the garbage collector reclaims descriptors, exactly as the paper's
     deques rely on GC to reclaim list nodes (Section 1.1).

   Entries are acquired in ascending location-id order, which bounds
   helping chains and yields lock-freedom by the standard argument. *)

type status = Undecided | Failed | Succeeded

type 'a loc = {
  id : int;
  state : 'a state Atomic.t;
  equal : 'a -> 'a -> bool;
}

and 'a state = Value of 'a | Owned of { desc : desc; before : 'a; after : 'a }

and desc = { status : status Atomic.t; entries : entry array }

and entry = Entry : { loc : 'a loc; before : 'a; after : 'a } -> entry

type cass = Cass : 'a loc * 'a * 'a -> cass

let name = "lockfree"
let counters = Opstats.create ()
let stats () = Opstats.snapshot counters
let reset_stats () = Opstats.reset counters

let next_id =
  let c = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add c 1

let make ?(equal = ( = )) v =
  { id = next_id (); state = Atomic.make (Value v); equal }

let make_padded ?(equal = ( = )) v =
  Padding.copy_as_padded
    { id = next_id (); state = Padding.make_atomic (Value v); equal }

(* The logical value of a state block, given the owning descriptor's
   current status.  Status is monotonic (Undecided -> Failed/Succeeded,
   then frozen), so reading the state block and then its status yields a
   linearizable read: see DESIGN.md, lib/dcas notes. *)
let resolve : type a. a state -> a = function
  | Value v -> v
  | Owned { desc; before; after } -> (
      match Atomic.get desc.status with
      | Succeeded -> after
      | Undecided | Failed -> before)

let get loc =
  Opstats.incr_read counters;
  resolve (Atomic.get loc.state)

(* Replace a decided descriptor's hold on [loc] with a plain [Value];
   failure means somebody else already moved the location on. *)
let release_one (type a) (loc : a loc) (cur : a state) =
  ignore (Atomic.compare_and_set loc.state cur (Value (resolve cur)))

let rec help desc =
  let n = Array.length desc.entries in
  let rec acquire i =
    if i >= n then ignore (Atomic.compare_and_set desc.status Undecided Succeeded)
    else if Atomic.get desc.status <> Undecided then ()
    else
      let (Entry { loc; before; after }) = desc.entries.(i) in
      let cur = Atomic.get loc.state in
      match cur with
      | Owned { desc = d; _ } when d == desc -> acquire (i + 1)
      | Owned { desc = d; _ } ->
          if Atomic.get d.status = Undecided then help d else release_one loc cur;
          acquire i
      | Value v ->
          if loc.equal v before then
            if Atomic.compare_and_set loc.state cur (Owned { desc; before; after })
            then acquire (i + 1)
            else acquire i
          else ignore (Atomic.compare_and_set desc.status Undecided Failed)
  in
  acquire 0;
  (* Eagerly release whatever we still own so later operations on these
     locations take the fast [Value] path. *)
  Array.iter
    (fun (Entry { loc; _ }) ->
      match Atomic.get loc.state with
      | Owned { desc = d; _ } as cur when d == desc -> release_one loc cur
      | Value _ | Owned _ -> ())
    desc.entries

let rec set loc v =
  Opstats.incr_write counters;
  let cur = Atomic.get loc.state in
  (match cur with
  | Owned { desc; _ } when Atomic.get desc.status = Undecided -> help desc
  | Value _ | Owned _ -> ());
  if not (Atomic.compare_and_set loc.state cur (Value v)) then set loc v

(* The location is unpublished: no other thread can hold a descriptor
   on it, so a plain store of a fresh Value block suffices. *)
let set_private loc v = Atomic.set loc.state (Value v)

(* Pre-validation fast path: a DCAS whose expected values are already
   stale is doomed, and a single logical read of either location proves
   it.  [resolve] of the current state block is exactly such a read
   (linearizing at the [Atomic.get]), so failing here is
   indistinguishable from installing a descriptor and losing — except
   that it allocates nothing and performs no CAS, which under
   contention is the difference between a cache-line read and a
   read-for-ownership storm.  Mismatch against an [Owned] state needs
   no helping either: the owner's status word alone decides the logical
   value. *)
let doomed (type a) (loc : a loc) (expected : a) =
  not (loc.equal (resolve (Atomic.get loc.state)) expected)

let dcas l1 l2 o1 o2 n1 n2 =
  if l1.id = l2.id then invalid_arg "Mem_lockfree.dcas: locations must differ";
  Opstats.incr_attempt counters;
  if doomed l1 o1 || doomed l2 o2 then begin
    Opstats.incr_fastfail counters;
    false
  end
  else begin
    let e1 = Entry { loc = l1; before = o1; after = n1 }
    and e2 = Entry { loc = l2; before = o2; after = n2 } in
    let entries = if l1.id < l2.id then [| e1; e2 |] else [| e2; e1 |] in
    let desc = { status = Atomic.make Undecided; entries } in
    help desc;
    let ok = Atomic.get desc.status = Succeeded in
    if ok then Opstats.incr_success counters;
    ok
  end

(* The strong form obtains its failing atomic view with the same trick
   the paper's own algorithms use (Figure 2, lines 8-10): a successful
   no-op DCAS certifies that the two values were simultaneously
   present.  The loop is lock-free: every retry is caused by some other
   operation's successful DCAS.  Retries back off — the failure that
   sent us around the loop means the locations are contended right now,
   and re-colliding immediately mostly fails the other operations'
   DCASes too.  The backoff state is allocated only once the first
   attempt has failed, keeping the success path allocation-equal to
   [dcas]. *)
let dcas_strong l1 l2 o1 o2 n1 n2 =
  if dcas l1 l2 o1 o2 n1 n2 then (true, o1, o2)
  else begin
    let b = Backoff.create () in
    let rec retry () =
      let v1 = get l1 in
      let v2 = get l2 in
      if l1.equal v1 o1 && l2.equal v2 o2 then begin
        if dcas l1 l2 o1 o2 n1 n2 then (true, o1, o2)
        else begin
          Backoff.once b;
          retry ()
        end
      end
      else if dcas l1 l2 v1 v2 v1 v2 then (false, v1, v2)
      else begin
        Backoff.once b;
        retry ()
      end
    in
    retry ()
  end

(* Generic N-word CASN over the same locations: the natural
   generalization the paper's Section 6 alludes to when discussing
   "synchronization primitives that can access more than one shared
   memory location".  DCAS above is the two-entry special case. *)
let casn cs =
  let entries =
    List.map (fun (Cass (loc, before, after)) -> Entry { loc; before; after }) cs
    |> Array.of_list
  in
  Array.sort (fun (Entry a) (Entry b) -> compare a.loc.id b.loc.id) entries;
  let distinct =
    let ok = ref true in
    Array.iteri
      (fun i (Entry a) ->
        if i > 0 then
          let (Entry b) = entries.(i - 1) in
          if a.loc.id = b.loc.id then ok := false)
      entries;
    !ok
  in
  if not distinct then invalid_arg "Mem_lockfree.casn: locations must differ";
  if Array.length entries = 0 then true
  else begin
    Opstats.incr_attempt counters;
    (* Same pre-validation as [dcas]: any entry already stale dooms the
       whole CASN, and spotting it from a logical read skips the
       descriptor and the acquire cascade entirely. *)
    let stale = ref false in
    Array.iter
      (fun (Entry { loc; before; _ }) -> if doomed loc before then stale := true)
      entries;
    if !stale then begin
      Opstats.incr_fastfail counters;
      false
    end
    else begin
      let desc = { status = Atomic.make Undecided; entries } in
      help desc;
      let ok = Atomic.get desc.status = Succeeded in
      if ok then Opstats.incr_success counters;
      ok
    end
  end

(* Non-blocking software DCAS in the style the paper cites as "a
   non-blocking software emulation [8, 30]": a restricted multi-word
   compare-and-swap (CASN) built from single-word CAS with descriptors
   and helping, after Harris, Fraser and Pratt.

   Each location holds a [state]: either a plain [Value], or [Owned] by
   a CASN descriptor together with the location's value before and
   after that CASN.  The logical value of an [Owned] location is
   decided by the descriptor's status: [before] until the status word
   is CASed to [Succeeded] (which is the linearization point of the
   whole CASN), [after] from then on.  Any thread that encounters an
   undecided descriptor while installing its own helps it to completion
   first, so a stalled thread can never block others.

   Descriptors come in two shapes.  The generic [Casn] carries an
   entry array and serves any width; the flat [Dcas2] inlines both
   locations and values into one record — no entry blocks, no array,
   no per-index bounds checks — and serves the two-location case, which
   is every deque operation in the paper.  Both run the identical
   acquire (in ascending location-id order) / decide / release
   protocol; only the descriptor layout differs, so the linearization
   argument is unchanged.

   Two properties of OCaml make the simple two-phase CASN (without the
   RDCSS sub-protocol of Harris et al.) correct here:

   - installation uses a physical compare-and-set against the exact
     state block read in the same attempt, and a state block stays
     current only while the location's logical value is unchanged:
     every logical change installs a fresh [Value] block.  A release
     that would write back the unchanged logical value may reinstall
     the original block (value elision, below); a stale helper whose
     physical CAS then succeeds has therefore validated a still-current
     logical value, and the decided descriptor it installs resolves to
     that same value, so the re-installation is harmless and is undone
     by the helper's own release phase; and

   - the garbage collector reclaims descriptors, exactly as the paper's
     deques rely on GC to reclaim list nodes (Section 1.1).

   Entries are acquired in ascending location-id order, which bounds
   helping chains and yields lock-freedom by the standard argument. *)

type status = Undecided | Failed | Succeeded

type 'a loc = {
  id : int;
  state : 'a state Atomic.t;
  equal : 'a -> 'a -> bool;
}

and 'a state =
  | Value of 'a
  | Owned of { desc : desc; before : 'a; after : 'a; orig : 'a state }
      (* [orig] is the [Value] block this acquisition displaced; release
         reinstalls it when the logical value comes out unchanged *)

and desc =
  | Dcas2 : {
      status : status Atomic.t;
      owner : int;  (* domain id of the operation's initiator *)
      loc_a : 'a loc;  (* invariant: loc_a.id < loc_b.id *)
      before_a : 'a;
      after_a : 'a;
      loc_b : 'b loc;
      before_b : 'b;
      after_b : 'b;
    }
      -> desc
  | Casn of { status : status Atomic.t; owner : int; entries : entry array }

and entry = Entry : { loc : 'a loc; before : 'a; after : 'a } -> entry

type cass = Cass : 'a loc * 'a * 'a -> cass

let name = "lockfree"
let counters = Opstats.create ()
let stats () = Opstats.snapshot counters
let reset_stats () = Opstats.reset counters

(* Ablation switch (experiment E21, tests): with dcas2 disabled, every
   slow path builds the generic entry-array descriptor and no release
   is elided — the substrate as it was before specialization.  Not
   meant to be toggled while operations are in flight. *)
let dcas2_enabled = Atomic.make true
let set_dcas2_enabled b = Atomic.set dcas2_enabled b

let status_of = function
  | Dcas2 { status; _ } -> status
  | Casn { status; _ } -> status

(* --- Fail-stop crash bookkeeping (driven by {!Harness.Crash}) ---

   A domain about to be killed is first marked dead; every descriptor
   it publishes from then on is an {e orphan}, and the helper that
   decides such a descriptor's status — the successful Undecided ->
   Succeeded/Failed CAS, which happens exactly once — records it in
   [helped_orphans].  The publish hook lets the crash layer interpose
   {e between} a domain's first successful install of its own
   descriptor and the decide, i.e. die mid-CASN with a live undecided
   descriptor in shared memory: the scenario Theorems 3.1/4.1 promise
   survivors recover from.  Both checks are gated on cheap armed flags
   so the fault-free hot paths are unchanged. *)

let dead_count = Atomic.make 0
let dead_list = Atomic.make ([] : int list)

(* Orphan registry: every descriptor published by an already-dead
   domain.  A dying domain publishes at most one (it is killed at its
   first publish), so the registry is exactly the set of descriptors
   the paper's helping protocol must complete on the crashed domain's
   behalf; [help_orphans] lets a supervisor force that completion
   deterministically instead of waiting for a survivor to collide with
   the owned locations.  Reads alone never decide a descriptor
   ([resolve] consults the status without helping), so without this a
   quiescent orphan could stay undecided forever. *)
let orphan_registry = Atomic.make ([] : desc list)

let rec register_orphan d =
  let cur = Atomic.get orphan_registry in
  if List.memq d cur then ()
  else if not (Atomic.compare_and_set orphan_registry cur (d :: cur)) then
    register_orphan d

let orphans () = List.length (Atomic.get orphan_registry)

let rec mark_dead id =
  let cur = Atomic.get dead_list in
  if List.memq id cur then ()
  else if Atomic.compare_and_set dead_list cur (id :: cur) then
    Atomic.incr dead_count
  else mark_dead id

let clear_dead () =
  Atomic.set dead_list [];
  Atomic.set dead_count 0;
  Atomic.set orphan_registry []

let dead_domains () = Atomic.get dead_list
let no_hook = fun () -> ()
let publish_hook = Atomic.make no_hook
let hook_armed = Atomic.make false

let set_publish_hook f =
  Atomic.set publish_hook f;
  Atomic.set hook_armed true

let clear_publish_hook () =
  Atomic.set hook_armed false;
  Atomic.set publish_hook no_hook

let self_id () = (Domain.self () :> int)

let owner_of = function
  | Dcas2 { owner; _ } -> owner
  | Casn { owner; _ } -> owner

(* The initiator just installed its own descriptor: give the crash
   layer its chance to kill the domain right here, mid-CASN.  Helpers
   installing someone else's descriptor never trigger the hook.  The
   owner is read back out of [desc] (rather than passed in) so the
   acquire closures in [help_*] capture nothing beyond what the
   fault-free protocol already needs. *)
let published desc =
  if Atomic.get hook_armed then begin
    let owner = owner_of desc in
    if owner = self_id () then begin
      if Atomic.get dead_count > 0 && List.memq owner (Atomic.get dead_list)
      then register_orphan desc;
      (Atomic.get publish_hook) ()
    end
  end

(* A status CAS just decided [owner]'s descriptor; if the owner is a
   dead domain and we are not it, a survivor has completed a crashed
   thread's operation.  Status is monotonic, so this runs exactly once
   per descriptor. *)
let decided owner =
  if
    Atomic.get dead_count > 0
    && owner <> self_id ()
    && List.memq owner (Atomic.get dead_list)
  then Opstats.incr_orphan counters

let next_id =
  let c = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add c 1

let make ?(equal = ( = )) v =
  { id = next_id (); state = Atomic.make (Value v); equal }

let make_padded ?(equal = ( = )) v =
  Padding.copy_as_padded
    { id = next_id (); state = Padding.make_atomic (Value v); equal }

(* The logical value of a state block, given the owning descriptor's
   current status.  Status is monotonic (Undecided -> Failed/Succeeded,
   then frozen), so reading the state block and then its status yields a
   linearizable read: see DESIGN.md, lib/dcas notes.  On the common
   already-released [Value] case this allocates nothing. *)
let resolve : type a. a state -> a = function
  | Value v -> v
  | Owned { desc; before; after; _ } -> (
      match Atomic.get (status_of desc) with
      | Succeeded -> after
      | Undecided | Failed -> before)

let get loc =
  Opstats.incr_read counters;
  resolve (Atomic.get loc.state)

(* Replace a decided descriptor's hold on [loc] with a plain [Value];
   failure means somebody else already moved the location on.  When the
   logical value comes out unchanged — the descriptor failed, or this
   was a no-op entry such as the array deque's empty/full confirmation
   — the displaced original block is reinstalled instead of allocating
   a fresh one (value elision; exact for unboxed values like the deque
   indices, conservative otherwise via physical equality). *)
let release_one (type a) (loc : a loc) (cur : a state) =
  match cur with
  | Value _ -> ()
  | Owned { before; after; orig; desc } ->
      let v =
        match Atomic.get (status_of desc) with
        | Succeeded -> after
        | Undecided | Failed -> before
      in
      let replacement =
        match orig with
        | Value v0 when v0 == v && Atomic.get dcas2_enabled -> orig
        | Value _ | Owned _ ->
            Opstats.incr_value_alloc counters;
            Value v
      in
      ignore (Atomic.compare_and_set loc.state cur replacement)

let rec help desc =
  match desc with
  | Casn { status; owner; entries } -> help_casn desc status owner entries
  | Dcas2 { status; owner; loc_a; before_a; after_a; loc_b; before_b; after_b }
    ->
      help_dcas2 desc status owner loc_a before_a after_a loc_b before_b
        after_b

and help_casn desc status owner entries =
  let n = Array.length entries in
  (* [acquire] returns true iff this call's CAS decided the status, so
     the orphan accounting runs outside the loop and the closure
     environment stays what the fault-free protocol needs. *)
  let rec acquire i =
    if i >= n then Atomic.compare_and_set status Undecided Succeeded
    else if Atomic.get status <> Undecided then false
    else
      let (Entry { loc; before; after }) = entries.(i) in
      let cur = Atomic.get loc.state in
      match cur with
      | Owned { desc = d; _ } when d == desc -> acquire (i + 1)
      | Owned { desc = d; _ } ->
          if Atomic.get (status_of d) = Undecided then help d
          else release_one loc cur;
          acquire i
      | Value v ->
          if loc.equal v before then
            if
              Atomic.compare_and_set loc.state cur
                (Owned { desc; before; after; orig = cur })
            then begin
              published desc;
              acquire (i + 1)
            end
            else acquire i
          else Atomic.compare_and_set status Undecided Failed
  in
  if acquire 0 then decided owner;
  (* Eagerly release whatever we still own so later operations on these
     locations take the fast [Value] path. *)
  Array.iter
    (fun (Entry { loc; _ }) ->
      match Atomic.get loc.state with
      | Owned { desc = d; _ } as cur when d == desc -> release_one loc cur
      | Value _ | Owned _ -> ())
    entries

(* The flat two-location protocol: textually the [help_casn] acquire
   loop unrolled for entries 0 and 1 (locations pre-sorted by id), with
   the entry array and [Entry] blocks gone.  The decide and release
   steps are identical, so every interleaving maps one-to-one onto a
   generic-CASN interleaving. *)
and help_dcas2 :
    type a b.
    desc ->
    status Atomic.t ->
    int ->
    a loc ->
    a ->
    a ->
    b loc ->
    b ->
    b ->
    unit =
 fun desc status owner loc_a before_a after_a loc_b before_b after_b ->
  (* As in [help_casn], the acquire loops return true iff this call's
     CAS decided the status; [decided] runs after, outside the
     closures, so the fault-free hot path allocates exactly what it
     did before the crash layer existed. *)
  let rec acquire_a () =
    if Atomic.get status = Undecided then
      let cur = Atomic.get loc_a.state in
      match cur with
      | Owned { desc = d; _ } when d == desc -> acquire_b ()
      | Owned { desc = d; _ } ->
          if Atomic.get (status_of d) = Undecided then help d
          else release_one loc_a cur;
          acquire_a ()
      | Value v ->
          if loc_a.equal v before_a then
            if
              Atomic.compare_and_set loc_a.state cur
                (Owned { desc; before = before_a; after = after_a; orig = cur })
            then begin
              published desc;
              acquire_b ()
            end
            else acquire_a ()
          else Atomic.compare_and_set status Undecided Failed
    else false
  and acquire_b () =
    if Atomic.get status = Undecided then
      let cur = Atomic.get loc_b.state in
      match cur with
      | Owned { desc = d; _ } when d == desc ->
          Atomic.compare_and_set status Undecided Succeeded
      | Owned { desc = d; _ } ->
          if Atomic.get (status_of d) = Undecided then help d
          else release_one loc_b cur;
          acquire_b ()
      | Value v ->
          if loc_b.equal v before_b then
            if
              Atomic.compare_and_set loc_b.state cur
                (Owned { desc; before = before_b; after = after_b; orig = cur })
            then begin
              published desc;
              Atomic.compare_and_set status Undecided Succeeded
            end
            else acquire_b ()
          else Atomic.compare_and_set status Undecided Failed
    else false
  in
  if acquire_a () then decided owner;
  (match Atomic.get loc_a.state with
  | Owned { desc = d; _ } as cur when d == desc -> release_one loc_a cur
  | Value _ | Owned _ -> ());
  match Atomic.get loc_b.state with
  | Owned { desc = d; _ } as cur when d == desc -> release_one loc_b cur
  | Value _ | Owned _ -> ()

(* Complete every orphaned descriptor on the crashed owners' behalf:
   the survivors' side of Theorems 3.1/4.1 made into an API.  Helping
   an already-decided descriptor is a no-op (the acquire loop exits on
   a decided status), so calling this after organic helping has
   already completed some orphans is safe and counts nothing twice —
   [helped_orphans] ticks only at the single successful status CAS. *)
let help_orphans () =
  let ds = Atomic.get orphan_registry in
  List.iter help ds;
  List.length ds

let rec set loc v =
  Opstats.incr_write counters;
  let cur = Atomic.get loc.state in
  (match cur with
  | Owned { desc; _ } when Atomic.get (status_of desc) = Undecided -> help desc
  | Value _ | Owned _ -> ());
  Opstats.incr_value_alloc counters;
  if not (Atomic.compare_and_set loc.state cur (Value v)) then set loc v

(* The location is unpublished: no other thread can hold a descriptor
   on it, so a plain store of a fresh Value block suffices. *)
let set_private loc v = Atomic.set loc.state (Value v)

(* Pre-validation fast path: a DCAS whose expected values are already
   stale is doomed, and a single logical read of either location proves
   it.  [resolve] of the current state block is exactly such a read
   (linearizing at the [Atomic.get]), so failing here is
   indistinguishable from installing a descriptor and losing — except
   that it allocates nothing and performs no CAS, which under
   contention is the difference between a cache-line read and a
   read-for-ownership storm.  Mismatch against an [Owned] state needs
   no helping either: the owner's status word alone decides the logical
   value. *)
let doomed (type a) (loc : a loc) (expected : a) =
  not (loc.equal (resolve (Atomic.get loc.state)) expected)

(* Build the flat two-location descriptor, normalizing to ascending
   location-id order (the acquire order that bounds helping chains). *)
let make_dcas2 l1 l2 o1 o2 n1 n2 =
  let owner = self_id () in
  if l1.id < l2.id then
    Dcas2
      {
        status = Atomic.make Undecided;
        owner;
        loc_a = l1;
        before_a = o1;
        after_a = n1;
        loc_b = l2;
        before_b = o2;
        after_b = n2;
      }
  else
    Dcas2
      {
        status = Atomic.make Undecided;
        owner;
        loc_a = l2;
        before_a = o2;
        after_a = n2;
        loc_b = l1;
        before_b = o1;
        after_b = n1;
      }

let dcas l1 l2 o1 o2 n1 n2 =
  if l1.id = l2.id then invalid_arg "Mem_lockfree.dcas: locations must differ";
  Opstats.incr_attempt counters;
  if doomed l1 o1 || doomed l2 o2 then begin
    Opstats.incr_fastfail counters;
    false
  end
  else begin
    Opstats.incr_desc_alloc counters;
    let desc =
      if Atomic.get dcas2_enabled then begin
        Opstats.incr_dcas2 counters;
        make_dcas2 l1 l2 o1 o2 n1 n2
      end
      else begin
        let e1 = Entry { loc = l1; before = o1; after = n1 }
        and e2 = Entry { loc = l2; before = o2; after = n2 } in
        let entries = if l1.id < l2.id then [| e1; e2 |] else [| e2; e1 |] in
        Casn { status = Atomic.make Undecided; owner = self_id (); entries }
      end
    in
    help desc;
    let ok = Atomic.get (status_of desc) = Succeeded in
    if ok then Opstats.incr_success counters;
    ok
  end

(* The strong form obtains its failing atomic view with the same trick
   the paper's own algorithms use (Figure 2, lines 8-10): a successful
   no-op DCAS certifies that the two values were simultaneously
   present.  The loop is lock-free: every retry is caused by some other
   operation's successful DCAS.  Retries back off — the failure that
   sent us around the loop means the locations are contended right now,
   and re-colliding immediately mostly fails the other operations'
   DCASes too.  The backoff state is allocated only once the first
   attempt has failed, keeping the success path allocation-equal to
   [dcas]. *)
let dcas_strong l1 l2 o1 o2 n1 n2 =
  if dcas l1 l2 o1 o2 n1 n2 then (true, o1, o2)
  else begin
    let b = Backoff.create () in
    let rec retry () =
      let v1 = get l1 in
      let v2 = get l2 in
      if l1.equal v1 o1 && l2.equal v2 o2 then begin
        if dcas l1 l2 o1 o2 n1 n2 then (true, o1, o2)
        else begin
          Backoff.once b;
          retry ()
        end
      end
      else if dcas l1 l2 v1 v2 v1 v2 then (false, v1, v2)
      else begin
        Backoff.once b;
        retry ()
      end
    in
    retry ()
  end

(* Generic N-word CASN over the same locations: the natural
   generalization the paper's Section 6 alludes to when discussing
   "synchronization primitives that can access more than one shared
   memory location".  The two-entry case — every deque DCAS routed
   through [casn], e.g. by the batched array-deque operations — takes
   the same flat [Dcas2] descriptor as [dcas]. *)
let casn cs =
  let entries =
    List.map (fun (Cass (loc, before, after)) -> Entry { loc; before; after }) cs
    |> Array.of_list
  in
  Array.sort (fun (Entry a) (Entry b) -> compare a.loc.id b.loc.id) entries;
  let distinct =
    let ok = ref true in
    Array.iteri
      (fun i (Entry a) ->
        if i > 0 then
          let (Entry b) = entries.(i - 1) in
          if a.loc.id = b.loc.id then ok := false)
      entries;
    !ok
  in
  if not distinct then invalid_arg "Mem_lockfree.casn: locations must differ";
  if Array.length entries = 0 then true
  else begin
    Opstats.incr_attempt counters;
    (* Same pre-validation as [dcas]: any entry already stale dooms the
       whole CASN, and spotting it from a logical read skips the
       descriptor and the acquire cascade entirely. *)
    let stale = ref false in
    Array.iter
      (fun (Entry { loc; before; _ }) -> if doomed loc before then stale := true)
      entries;
    if !stale then begin
      Opstats.incr_fastfail counters;
      false
    end
    else begin
      Opstats.incr_desc_alloc counters;
      let desc =
        if Array.length entries = 2 && Atomic.get dcas2_enabled then begin
          Opstats.incr_dcas2 counters;
          let (Entry { loc = la; before = oa; after = na }) = entries.(0) in
          let (Entry { loc = lb; before = ob; after = nb }) = entries.(1) in
          Dcas2
            {
              status = Atomic.make Undecided;
              owner = self_id ();
              loc_a = la;
              before_a = oa;
              after_a = na;
              loc_b = lb;
              before_b = ob;
              after_b = nb;
            }
        end
        else Casn { status = Atomic.make Undecided; owner = self_id (); entries }
      in
      help desc;
      let ok = Atomic.get (status_of desc) = Succeeded in
      if ok then Opstats.incr_success counters;
      ok
    end
  end

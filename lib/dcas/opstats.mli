(** Per-domain operation counters backing {!Memory_intf.MEMORY.stats}.

    Counters are kept in domain-local atomic buckets so that counting on
    the memory models' hot paths does not introduce cross-domain cache
    contention; {!snapshot} sums over every domain that has used the
    counter. *)

type t

val create : unit -> t
(** A fresh, independent set of counters (one per memory model). *)

val incr_read : t -> unit
val incr_write : t -> unit
val incr_attempt : t -> unit
val incr_success : t -> unit

val incr_fastfail : t -> unit
(** Count a DCAS/CASN attempt rejected by pre-validation (see
    {!Memory_intf.stats.dcas_fastfails}). *)

val incr_spurious : t -> unit
(** Count an injected spurious DCAS/CASN failure ({!Mem_chaos}). *)

val incr_delay : t -> unit
(** Count an injected bounded operation delay ({!Mem_chaos}). *)

val incr_freeze : t -> unit
(** Count an injected long domain stall ({!Mem_chaos}). *)

val incr_dcas2 : t -> unit
(** Count a slow path taken through the specialized flat [Dcas2]
    descriptor ({!Mem_lockfree}). *)

val incr_desc_alloc : t -> unit
(** Count a CASN descriptor allocation ({!Mem_lockfree}). *)

val incr_value_alloc : t -> unit
(** Count a fresh [Value] state-block allocation ({!Mem_lockfree});
    elided releases do not count. *)

val incr_orphan : t -> unit
(** Count an orphaned descriptor — published by a domain marked dead —
    decided by a surviving helper ({!Mem_lockfree.mark_dead}). *)

val snapshot : t -> Memory_intf.stats
(** Sum of all domains' counters since creation or the last {!reset}. *)

val reset : t -> unit

(** Randomized truncated exponential backoff for retry loops.

    A failed DCAS means another operation succeeded (lock-freedom), but
    spinning straight back into the retry loop makes competing
    operations fail each other repeatedly.  Retry loops create one
    backoff per operation invocation and call {!once} after each
    failure. *)

type t

val default_min_wait : int
(** Default lower spin bound (4). *)

val default_max_wait : int
(** Default saturation bound for the doubling window (1024). *)

val create : ?min_wait:int -> ?max_wait:int -> unit -> t
(** Fresh backoff state.  [min_wait] and [max_wait] bound the spin count
    per wait (defaults {!default_min_wait} and {!default_max_wait}).

    @raise Invalid_argument unless [1 <= min_wait <= max_wait]. *)

val once : t -> unit
(** Spin for an unbiased random interval in
    [\[min_wait, min_wait + wait)] and double the window (saturating at
    [max_wait]). *)

val reset : t -> unit
(** Return the wait bound to [min_wait] (e.g. after a success). *)

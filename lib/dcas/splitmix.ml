(* SplitMix64: a tiny, fast, statistically solid PRNG with a splittable
   seed, so every worker thread gets an independent deterministic
   stream — benchmark runs and stress tests are reproducible without
   any cross-thread RNG state. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A non-negative int uniform below [bound]. *)
let int t ~bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Derive an independent stream; used to hand each worker its own
   generator from one master seed. *)
let split t = { state = next_int64 t }

(* Blocking DCAS emulation over striped locks: locations hash (by their
   allocation id) onto a fixed array of mutexes, and a DCAS acquires the
   two stripes in index order (one acquisition when both locations share
   a stripe).  Compared with Mem_lock this removes the global
   serialization point — operations on the two ends of a deque touch
   disjoint stripes with high probability — while remaining a blocking
   emulation.  It sits between Mem_lock and Mem_lockfree in experiment
   E12's comparison. *)

let stripe_count = 64
let stripes = Array.init stripe_count (fun _ -> Mutex.create ())

type 'a loc = { id : int; mutable content : 'a; equal : 'a -> 'a -> bool }

let name = "striped-lock"
let counters = Opstats.create ()
let stats () = Opstats.snapshot counters
let reset_stats () = Opstats.reset counters

let make ?(equal = ( = )) v = { id = Id.next (); content = v; equal }
let make_padded ?equal v = Padding.copy_as_padded (make ?equal v)

let stripe_of loc = loc.id mod stripe_count

let get loc =
  Opstats.incr_read counters;
  let m = stripes.(stripe_of loc) in
  Mutex.lock m;
  let v = loc.content in
  Mutex.unlock m;
  v

let set loc v =
  Opstats.incr_write counters;
  let m = stripes.(stripe_of loc) in
  Mutex.lock m;
  loc.content <- v;
  Mutex.unlock m

let set_private loc v = loc.content <- v

let dcas_strong l1 l2 o1 o2 n1 n2 =
  if l1.id = l2.id then invalid_arg "Mem_striped.dcas: locations must differ";
  Opstats.incr_attempt counters;
  let s1 = stripe_of l1 and s2 = stripe_of l2 in
  let lo = min s1 s2 and hi = max s1 s2 in
  Mutex.lock stripes.(lo);
  if hi <> lo then Mutex.lock stripes.(hi);
  let v1 = l1.content and v2 = l2.content in
  let ok = l1.equal v1 o1 && l2.equal v2 o2 in
  if ok then begin
    l1.content <- n1;
    l2.content <- n2
  end;
  if hi <> lo then Mutex.unlock stripes.(hi);
  Mutex.unlock stripes.(lo);
  if ok then Opstats.incr_success counters;
  (ok, v1, v2)

let dcas l1 l2 o1 o2 n1 n2 =
  let ok, _, _ = dcas_strong l1 l2 o1 o2 n1 n2 in
  ok

type cass = Cass : 'a loc * 'a * 'a -> cass

let casn cs =
  let ids = List.map (fun (Cass (l, _, _)) -> l.id) cs in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Mem_striped.casn: locations must differ";
  Opstats.incr_attempt counters;
  (* lock the distinct stripes in index order to avoid deadlock *)
  let stripe_ids =
    List.sort_uniq compare (List.map (fun (Cass (l, _, _)) -> stripe_of l) cs)
  in
  List.iter (fun i -> Mutex.lock stripes.(i)) stripe_ids;
  let ok = List.for_all (fun (Cass (l, o, _)) -> l.equal l.content o) cs in
  if ok then List.iter (fun (Cass (l, _, n)) -> l.content <- n) cs;
  List.iter (fun i -> Mutex.unlock stripes.(i)) (List.rev stripe_ids);
  if ok then Opstats.incr_success counters;
  ok

(* The shared-memory model of Section 2 of the paper: a linearizable
   memory object offering Read, Write and DCAS (Figure 1).  Every deque
   algorithm in this repository is a functor over MEMORY, so the same
   algorithm text runs on a production lock-free substrate, on blocking
   emulations, and inside the model checker. *)

type stats = {
  reads : int;  (** number of [get] operations observed *)
  writes : int;  (** number of [set] operations observed *)
  dcas_attempts : int;  (** number of [dcas]/[dcas_strong]/[casn] invocations *)
  dcas_successes : int;  (** how many of those returned [true] *)
  dcas_fastfails : int;
      (** how many attempts were rejected by pre-validation — a read of
          the locations showed an expected-value mismatch, so the
          operation failed without taking its slow path (for
          [Mem_lockfree]: without allocating a descriptor).  Included
          in [dcas_attempts]; always 0 for substrates with no slow
          path to avoid. *)
  chaos_spurious : int;
      (** injected spurious DCAS/CASN failures ({!Mem_chaos}): the
          attempt returned [false] without consulting memory, as a weak
          compare-and-swap may.  Included in [dcas_attempts]; always 0
          outside a chaos wrapper. *)
  chaos_delays : int;
      (** injected bounded operation delays ({!Mem_chaos}). *)
  chaos_freezes : int;
      (** injected long domain stalls ({!Mem_chaos}) — the empirical
          "thread stops making progress" of the lock-freedom claims. *)
  dcas2_hits : int;
      (** how many DCAS/2-entry-CASN slow paths took the specialized
          flat [Dcas2] descriptor instead of the generic entry-array
          CASN ({!Mem_lockfree}); always 0 for other substrates. *)
  descriptor_allocs : int;
      (** CASN descriptors allocated — attempts that survived
          pre-validation and took a slow path ({!Mem_lockfree}). *)
  value_allocs : int;
      (** fresh [Value] state blocks allocated by writes and descriptor
          releases ({!Mem_lockfree}).  Elided releases — the location's
          logical value was unchanged, so the original block is
          reinstalled — do not count. *)
  helped_orphans : int;
      (** descriptors published by a domain since marked dead
          ({!Mem_lockfree.mark_dead}) whose status was decided by a
          {e surviving} domain — the helping protocol completing a
          crashed thread's in-flight CASN (the fail-stop face of the
          paper's Theorems 3.1/4.1).  Each orphaned descriptor is
          counted exactly once, at the successful status CAS; always 0
          when no domain has been marked dead. *)
}

(* Conversions to a flat count array, in the order of the field list
   above (= the Opstats bucket layout).  [to_counts] destructures every
   field, so forgetting to extend it — or any function below built on
   the pair — when a counter is added is a compile-time error; this is
   what keeps wrappers like Mem_chaos's stats pass-through from
   silently dropping new counters. *)
let stats_fields = 12

let to_counts
    {
      reads;
      writes;
      dcas_attempts;
      dcas_successes;
      dcas_fastfails;
      chaos_spurious;
      chaos_delays;
      chaos_freezes;
      dcas2_hits;
      descriptor_allocs;
      value_allocs;
      helped_orphans;
    } =
  [|
    reads;
    writes;
    dcas_attempts;
    dcas_successes;
    dcas_fastfails;
    chaos_spurious;
    chaos_delays;
    chaos_freezes;
    dcas2_hits;
    descriptor_allocs;
    value_allocs;
    helped_orphans;
  |]

let of_counts a =
  if Array.length a <> stats_fields then
    invalid_arg "Memory_intf.of_counts: wrong arity";
  {
    reads = a.(0);
    writes = a.(1);
    dcas_attempts = a.(2);
    dcas_successes = a.(3);
    dcas_fastfails = a.(4);
    chaos_spurious = a.(5);
    chaos_delays = a.(6);
    chaos_freezes = a.(7);
    dcas2_hits = a.(8);
    descriptor_allocs = a.(9);
    value_allocs = a.(10);
    helped_orphans = a.(11);
  }

let stats_to_assoc s =
  [
    ("reads", s.reads);
    ("writes", s.writes);
    ("dcas_attempts", s.dcas_attempts);
    ("dcas_successes", s.dcas_successes);
    ("dcas_fastfails", s.dcas_fastfails);
    ("chaos_spurious", s.chaos_spurious);
    ("chaos_delays", s.chaos_delays);
    ("chaos_freezes", s.chaos_freezes);
    ("dcas2_hits", s.dcas2_hits);
    ("descriptor_allocs", s.descriptor_allocs);
    ("value_allocs", s.value_allocs);
    ("helped_orphans", s.helped_orphans);
  ]

let empty_stats = of_counts (Array.make stats_fields 0)
let add_stats a b = of_counts (Array.map2 ( + ) (to_counts a) (to_counts b))

let pp_stats ppf s =
  Format.fprintf ppf "reads=%d writes=%d dcas=%d/%d fastfail=%d" s.reads
    s.writes s.dcas_successes s.dcas_attempts s.dcas_fastfails;
  (* chaos counters only appear when a fault injector is in play, so
     the uninjected substrates' reports stay unchanged *)
  if s.chaos_spurious > 0 || s.chaos_delays > 0 || s.chaos_freezes > 0 then
    Format.fprintf ppf " chaos=spurious:%d,delay:%d,freeze:%d" s.chaos_spurious
      s.chaos_delays s.chaos_freezes;
  (* likewise the allocation counters appear only on substrates that
     track them, so the other models' reports stay unchanged *)
  if s.dcas2_hits > 0 || s.descriptor_allocs > 0 || s.value_allocs > 0 then
    Format.fprintf ppf " alloc=dcas2:%d,desc:%d,value:%d" s.dcas2_hits
      s.descriptor_allocs s.value_allocs;
  (* the orphan counter appears only when crash injection marked a
     domain dead, so fault-free reports stay unchanged *)
  if s.helped_orphans > 0 then
    Format.fprintf ppf " orphans-helped=%d" s.helped_orphans

module type MEMORY = sig
  (** A linearizable shared memory providing the operations of Section 2:
      [Read], [Write] and the two forms of [DCAS] from Figure 1. *)

  type 'a loc
  (** A shared memory location holding a value of type ['a]. *)

  val make : ?equal:('a -> 'a -> bool) -> 'a -> 'a loc
  (** [make ?equal v] allocates a fresh location initialized to [v].
      [equal] decides whether a location's current content matches the
      "old" value supplied to a DCAS; it defaults to structural equality
      [( = )].  Pass a custom [equal] whenever values may contain cycles
      (e.g. pointers into a doubly-linked structure). *)

  val make_padded : ?equal:('a -> 'a -> bool) -> 'a -> 'a loc
  (** Like {!make}, but the location is allocated so that it does not
      share a cache line with other locations (see {!Padding}).  Use
      for the handful of a structure's locations that stay hot for its
      whole lifetime — end indices, sentinel link words — where false
      sharing with a neighboring allocation would serialize logically
      disjoint operations.  Substrates to which placement is irrelevant
      (the model checker, the sequential model) may alias [make]. *)

  val get : 'a loc -> 'a
  (** [get l] is the paper's [Read(L)]: a linearizable read of [l]. *)

  val set : 'a loc -> 'a -> unit
  (** [set l v] is the paper's [Write(L, v)]: a linearizable,
      unconditional write. *)

  val set_private : 'a loc -> 'a -> unit
  (** [set_private l v] writes to a location that is not yet reachable
      by any other thread — initialization of a freshly allocated
      structure before it is published.  Semantically identical to
      {!set}; memory models may skip synchronization and the model
      checker does not treat it as a scheduling point, following the
      paper's footnote 7 ("we do not consider fields of a
      newly-allocated heap object to be shared variables until a
      pointer to the object has been stored in some shared
      variable"). *)

  val dcas : 'a loc -> 'b loc -> 'a -> 'b -> 'a -> 'b -> bool
  (** [dcas l1 l2 o1 o2 n1 n2] is the boolean form of Figure 1:
      atomically, if [l1] holds [o1] and [l2] holds [o2], store [n1] and
      [n2] and return [true]; otherwise leave memory unchanged and
      return [false].  The two locations must be distinct.

      @raise Invalid_argument if [l1] and [l2] are the same location. *)

  val dcas_strong : 'a loc -> 'b loc -> 'a -> 'b -> 'a -> 'b -> bool * 'a * 'b
  (** [dcas_strong l1 l2 o1 o2 n1 n2] is the atomic-view form of
      Figure 1 (third and fourth arguments are pointers to the old
      values in the paper's C rendition).  On success it behaves like
      {!dcas} and returns [(true, o1, o2)]; on failure it returns
      [(false, v1, v2)] where [(v1, v2)] is an {e atomic} snapshot of
      the two locations observed at some instant during the call, with
      [(v1, v2) <> (o1, o2)] under the locations' equalities. *)

  val name : string
  (** Short human-readable name of the memory model, used in benchmark
      tables and test labels. *)

  val stats : unit -> stats
  (** Cumulative operation counters for this memory model, summed over
      all domains that used it.  Intended for the ablation experiments
      (E10, E12); see {!reset_stats}. *)

  val reset_stats : unit -> unit
  (** Reset the counters returned by {!stats} to zero. *)
end

module type MEMORY_CASN = sig
  (** A memory model additionally offering an N-word compare-and-swap —
      the stronger primitive Section 6 of the paper asks about.  DCAS
      is the two-entry special case; the 3CAS deque extension
      ({!Deque.List_deque_casn}) is built on the three-entry case. *)

  include MEMORY

  type cass = Cass : 'a loc * 'a * 'a -> cass
  (** One entry: location, expected value, new value. *)

  val casn : cass list -> bool
  (** Atomically compare-and-swap every entry; succeeds iff all
      expected values match.  The empty list trivially succeeds.

      @raise Invalid_argument if two entries name the same location. *)
end

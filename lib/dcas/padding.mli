(** Cache-line padding for contended heap blocks.

    OCaml's bump allocator places consecutively allocated blocks on the
    same cache line, so independent hot [Atomic.t] cells (per-domain
    counters, a deque's two end indices, sentinel link words) falsely
    share lines and turn logically disjoint operations into coherence
    traffic.  [copy_as_padded] re-allocates a block with unused
    trailing words so it fills at least one full line by itself, in the
    style of [Multicore_magic.copy_as_padded]. *)

val cache_line_words : int
(** Words per assumed cache line (8 words = 64 bytes on 64-bit). *)

val copy_as_padded : 'a -> 'a
(** [copy_as_padded v] is a shallow copy of [v] widened with unused
    trailing words so that no other hot block shares its cache line.
    Identity (same physical value, no copy) for non-blocks, for blocks
    with non-zero tags (closures, float records, custom blocks), and
    for blocks already at least as wide as the padding target — so it
    is always safe to apply.  Mutable fields of the copy work as usual;
    note the {e copy} is the padded value, the argument is unchanged.

    NEVER pad an array: [Array.length] is derived from the block size,
    so the copy would report phantom trailing elements whose contents
    are the unit padding words.  (Tag 0 cannot be distinguished from a
    record at runtime, so this cannot be guarded against here.) *)

val make_atomic : 'a -> 'a Atomic.t
(** [make_atomic v] is [copy_as_padded (Atomic.make v)]: an atomic cell
    guaranteed not to share a cache line with any other such cell. *)

(* Unsynchronized sequential memory model: plain mutable cells with no
   atomicity machinery at all.  Only valid when a single thread touches
   the structure; used for sequential unit tests (where it makes
   failures independent of the DCAS emulations) and as the no-overhead
   floor in the primitive-cost experiment E4. *)

type 'a loc = { id : int; mutable content : 'a; equal : 'a -> 'a -> bool }

let name = "sequential"
let counters = Opstats.create ()
let stats () = Opstats.snapshot counters
let reset_stats () = Opstats.reset counters

let make ?(equal = ( = )) v = { id = Id.next (); content = v; equal }

(* Single-threaded by contract: placement cannot matter. *)
let make_padded = make

let get loc =
  Opstats.incr_read counters;
  loc.content

let set loc v =
  Opstats.incr_write counters;
  loc.content <- v

let set_private loc v = loc.content <- v

let dcas_strong l1 l2 o1 o2 n1 n2 =
  if l1.id = l2.id then invalid_arg "Mem_seq.dcas: locations must differ";
  Opstats.incr_attempt counters;
  let v1 = l1.content and v2 = l2.content in
  let ok = l1.equal v1 o1 && l2.equal v2 o2 in
  if ok then begin
    l1.content <- n1;
    l2.content <- n2;
    Opstats.incr_success counters
  end;
  (ok, v1, v2)

let dcas l1 l2 o1 o2 n1 n2 =
  let ok, _, _ = dcas_strong l1 l2 o1 o2 n1 n2 in
  ok

type cass = Cass : 'a loc * 'a * 'a -> cass

let casn cs =
  let ids = List.map (fun (Cass (l, _, _)) -> l.id) cs in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Mem_seq.casn: locations must differ";
  Opstats.incr_attempt counters;
  let ok = List.for_all (fun (Cass (l, o, _)) -> l.equal l.content o) cs in
  if ok then begin
    List.iter (fun (Cass (l, _, n)) -> l.content <- n) cs;
    Opstats.incr_success counters
  end;
  ok

(* The deliberately broken Sundell–Tsigas deque: help_delete's
   physical-unlink phase is removed (the mark still lands), so marked
   nodes stay chained and later pops on that side spin forever.  The
   fuzzer must catch this as a step-limit violation — the planted-bug
   discipline that keeps the verification stack honest (see
   Buggy_deque and Buggy_spin_deque for the earlier plants). *)

module Make = St_deque.Make_buggy

include Make (St_deque.Atomic_cas)

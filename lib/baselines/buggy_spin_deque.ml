(* A deliberately BLOCKING deque: the planted target for the empirical
   lock-freedom validator (E19).

   Operations are serialized by a strict turn-passing protocol: the
   [turn] word names the only participant allowed to operate, and each
   completed operation hands the turn to the next participant
   round-robin.  The protocol is perfectly fair, starvation-free under
   a fair scheduler — and catastrophically NOT non-blocking: if any
   participant stops (is frozen, descheduled, or crashes) while the
   protocol expects it to act, every other participant spins forever
   waiting for a turn that never comes.  There is no helping and no
   work-around path, by construction.

   This is precisely the failure mode the paper's Section 1 motivates
   lock-free structures against, in its most honest form: no lock is
   held, no mutex is involved, every wait is a busy-wait on shared
   memory — yet one stopped process stops the world.  The empirical
   lock-freedom test (test_lockfree.ml) must flag this structure while
   passing the four DCAS deques; the progress watchdog must convert its
   stall into a diagnostic report.

   All cross-thread synchronization flows through [M], so the freezer's
   instrumented memory sees every access point.  The element storage is
   a plain ring buffer touched only by the turn holder (the turn
   hand-off orders those accesses). *)

module Make (M : Dcas.Memory_intf.MEMORY) = struct
  type 'a t = {
    turn : int M.loc;
    participants : int;
    ring : 'a option array;
    (* ring indices, only ever touched by the turn holder *)
    mutable left : int;  (* first occupied cell, when size > 0 *)
    mutable size : int;
  }

  let name = "buggy-spin/" ^ M.name

  let make ~participants ~capacity () =
    if participants < 1 then
      invalid_arg "Buggy_spin_deque.make: participants must be >= 1";
    if capacity < 1 then
      invalid_arg "Buggy_spin_deque.make: capacity must be >= 1";
    {
      turn = M.make 0;
      participants;
      ring = Array.make capacity None;
      left = 0;
      size = 0;
    }

  (* Busy-wait for our turn; every probe is a shared-memory access
     point.  This is the planted liveness bug: there is no bound on the
     number of probes and no alternative path. *)
  let await t ~tid =
    while M.get t.turn <> tid do
      Domain.cpu_relax ()
    done

  let pass t ~tid = M.set t.turn ((tid + 1) mod t.participants)

  let with_turn t ~tid f =
    await t ~tid;
    let r = f () in
    pass t ~tid;
    r

  let capacity t = Array.length t.ring

  let push_right t ~tid v : Deque.Deque_intf.push_result =
    with_turn t ~tid (fun () ->
        if t.size = capacity t then `Full
        else begin
          t.ring.((t.left + t.size) mod capacity t) <- Some v;
          t.size <- t.size + 1;
          `Okay
        end)

  let push_left t ~tid v : Deque.Deque_intf.push_result =
    with_turn t ~tid (fun () ->
        if t.size = capacity t then `Full
        else begin
          t.left <- (t.left + capacity t - 1) mod capacity t;
          t.ring.(t.left) <- Some v;
          t.size <- t.size + 1;
          `Okay
        end)

  let pop_left t ~tid : 'a Deque.Deque_intf.pop_result =
    with_turn t ~tid (fun () ->
        if t.size = 0 then `Empty
        else begin
          let v = Option.get t.ring.(t.left) in
          t.ring.(t.left) <- None;
          t.left <- (t.left + 1) mod capacity t;
          t.size <- t.size - 1;
          `Value v
        end)

  let pop_right t ~tid : 'a Deque.Deque_intf.pop_result =
    with_turn t ~tid (fun () ->
        if t.size = 0 then `Empty
        else begin
          let i = (t.left + t.size - 1) mod capacity t in
          let v = Option.get t.ring.(i) in
          t.ring.(i) <- None;
          t.size <- t.size - 1;
          `Value v
        end)

  (* Quiescent-only. *)
  let unsafe_to_list t =
    List.init t.size (fun i ->
        Option.get t.ring.((t.left + i) mod capacity t))
end

(** The Sundell–Tsigas deque with a planted liveness bug: the
    physical-unlink phase of [help_delete] is removed.  A pop's marking
    CAS still lands (values are not lost or duplicated), but the marked
    node is never spliced out, so the next pop on that side spins on
    the marked link forever.  The fuzzer must report this as a
    step-limit violation within its budget; the correct {!St_deque}
    must survive the same budget.  Never use outside tests. *)

module Make (C : St_deque.CAS) : St_deque.S

include St_deque.S
(** [Make (St_deque.Atomic_cas)]. *)

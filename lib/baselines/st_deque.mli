(** The Sundell–Tsigas lock-free deque over single-word CAS — the
    practical competitor the source paper's DCAS premise is measured
    against (E23).

    A doubly-linked list between two sentinels.  The [next] chain is
    authoritative with the deletion mark packed into the link word;
    [prev] links are correctable hints.  Pops are two-phase — a marking
    CAS (the linearization point) then a physical unlink — and every
    operation that meets a marked link helps complete the unlink, which
    is what makes the structure lock-free.  See DESIGN.md,
    "Single-word-CAS competitor: Sundell–Tsigas deque". *)

module type CAS = sig
  (** The minimal substrate the algorithm needs: shared locations with
      read, pre-publication write, and single-word CAS. *)

  type 'a loc

  val make : ?equal:('a -> 'a -> bool) -> 'a -> 'a loc
  val make_padded : ?equal:('a -> 'a -> bool) -> 'a -> 'a loc
  val get : 'a loc -> 'a
  val set_private : 'a loc -> 'a -> unit

  val cas : 'a loc -> 'a -> 'a -> bool
  (** Single-word compare-and-swap.  The algorithm only ever passes an
      expected value it physically read from the location, so physical
      comparison ([Atomic.compare_and_set]) and [equal]-based
      comparison (the MEMORY_CASN substrates) agree on every call. *)

  val name : string
end

module Atomic_cas : CAS
(** Plain [Atomic] — the production substrate; no MEMORY_CASN
    emulation, no descriptors, no instrumentation. *)

module Of_casn (M : Dcas.Memory_intf.MEMORY_CASN) : CAS
(** Any CASN-capable memory model as a single-word-CAS substrate, via
    one-entry [casn].  This is how the deque runs over the model
    checker's yielding memory ({!Modelcheck.Mem_model}), the chaos
    injector, and the stall/crash harnesses: the instrumentation sees
    every shared access of the identical algorithm text. *)

module type S = sig
  include Deque.Deque_intf.S

  val make : unit -> 'a t
  (** [create] without the (ignored) capacity — the deque is
      unbounded; pushes never return [`Full]. *)

  val unsafe_to_list : 'a t -> 'a list
  (** Quiescent contents, left to right.  Not linearizable. *)

  val check_invariant : 'a t -> (unit, string) result
  (** Executable representation invariant, weak enough to hold after
      every shared-memory step of in-flight operations: the [next]
      chain runs head → tail without cycling, head's [next] link is
      unmarked, chained interior nodes carry values.  ([prev] links
      are hints with no per-step obligation.) *)
end

module Make (C : CAS) : S

module Make_buggy (C : CAS) : S
(** The planted bug of {!Buggy_st_deque}: [help_delete] still marks
    the victim's [prev] link but the physical-unlink phase is removed,
    so a logically deleted node stays chained forever and the next pop
    on that side spins on its marked link.  The fuzzer must flag this
    as a step-limit (lock-freedom) violation; it must not flag
    {!Make}. *)

include S
(** The production instantiation, [Make (Atomic_cas)]. *)

(* The lock-free deque of Sundell & Tsigas, "Lock-Free and Practical
   Deques and Doubly Linked Lists using Single-Word Compare-and-Swap"
   (OPODIS 2004 / JPDC 2008) — the historical answer to this paper's
   premise.  Where the source paper waits for DCAS hardware, Sundell &
   Tsigas build a general doubly-linked deque from the single-word CAS
   every machine already has, at the cost of a markedly subtler
   protocol:

   - The [next] chain is authoritative (Harris-style): a node is
     logically deleted the instant its [next] link is marked, and
     physically unlinked by a later CAS on its predecessor's [next].
   - The [prev] chain is only a correctable hint.  It may lag behind
     insertions and deletions; every consumer validates it against the
     [next] chain and repairs it with [correct_prev].
   - Deletion is two-phase — mark ([pop_left]/[pop_right]'s
     linearization CAS), then unlink ([help_delete]) — and every
     operation that trips over a marked link helps finish the unlink
     instead of waiting, which is what makes the deque lock-free.

   The deletion mark lives in the link word itself: a link is an
   immutable [(pointer, mark)] record in a single location, mirroring
   the paper's mark bit packed into a pointer via alignment.

   The algorithm is a functor over a minimal single-word-CAS signature
   {!CAS} so the one algorithm text runs everywhere the repo needs it:
   {!Atomic_cas} instantiates it directly on [Atomic] (the production
   build — no MEMORY_CASN emulation in the hot path), and {!Of_casn}
   shims any {!Dcas.Memory_intf.MEMORY_CASN} (the model checker's
   yielding memory, the chaos injector, the stall/crash harnesses) in
   via one-entry [casn], so the explorer, fuzzer, freezer and crash
   layers all drive the identical code.

   Adaptations from the paper: OCaml's GC replaces the reference
   counting (no [ReleaseRef]/[CopyRef]); the sentinels carry self links
   on their outward sides (head.prev, tail.next) instead of NULL, which
   double as walk terminators; and because [Atomic.compare_and_set]
   compares physically, every CAS expects the exact link record
   previously read from that location — never a freshly built
   structurally-equal one. *)

module type CAS = sig
  type 'a loc

  val make : ?equal:('a -> 'a -> bool) -> 'a -> 'a loc
  val make_padded : ?equal:('a -> 'a -> bool) -> 'a -> 'a loc
  val get : 'a loc -> 'a
  val set_private : 'a loc -> 'a -> unit

  val cas : 'a loc -> 'a -> 'a -> bool
  (** Single-word compare-and-swap.  Callers only ever pass an
      expected value physically read from the location, so substrates
      whose comparison is physical equality (plain [Atomic]) and
      substrates honoring [make]'s [equal] agree. *)

  val name : string
end

module Atomic_cas : CAS = struct
  type 'a loc = 'a Atomic.t

  let make ?equal:_ v = Atomic.make v
  let make_padded ?equal:_ v = Dcas.Padding.make_atomic v
  let get = Atomic.get
  let set_private = Atomic.set
  let cas = Atomic.compare_and_set
  let name = "atomic"
end

module Of_casn (M : Dcas.Memory_intf.MEMORY_CASN) : CAS = struct
  type 'a loc = 'a M.loc

  let make = M.make
  let make_padded = M.make_padded
  let get = M.get
  let set_private = M.set_private
  let cas l o n = M.casn [ M.Cass (l, o, n) ]
  let name = M.name
end

module type S = sig
  include Deque.Deque_intf.S

  val make : unit -> 'a t
  val unsafe_to_list : 'a t -> 'a list
  val check_invariant : 'a t -> (unit, string) result
end

(* [B.helping] gates the physical-unlink phase of [help_delete]; the
   planted-bug variant ({!Buggy_st_deque}) sets it to [false], leaving
   marked nodes chained forever so any later pop on that side spins —
   the livelock the fuzzer must catch as a step-limit violation. *)
module Impl
    (C : CAS) (B : sig
      val helping : bool
      val variant : string
    end) =
struct
  type 'a node = {
    value : 'a option;  (* [None] only on the two sentinels *)
    prev : 'a link C.loc;
    next : 'a link C.loc;
  }

  and 'a link = { ptr : 'a node_ref; mark : bool }
  and 'a node_ref = Nil | Node of 'a node

  type 'a t = { head : 'a node; tail : 'a node }

  let name = B.variant ^ "/" ^ C.name

  let node_ref_equal a b =
    match (a, b) with
    | Nil, Nil -> true
    | Node x, Node y -> x == y
    | (Nil | Node _), _ -> false

  let link_equal a b = a.mark = b.mark && node_ref_equal a.ptr b.ptr
  let nil_link = { ptr = Nil; mark = false }

  (* Dereference a link the representation invariant guarantees is
     non-nil (every published link points at a node). *)
  let node_of = function Node n -> n | Nil -> assert false

  (* The sentinels' outward links are self loops: head.prev and
     tail.next are never marked and never traversed except as the
     walk-termination guards below. *)
  let make () =
    let sentinel () =
      {
        value = None;
        prev = C.make_padded ~equal:link_equal nil_link;
        next = C.make_padded ~equal:link_equal nil_link;
      }
    in
    let head = sentinel () and tail = sentinel () in
    C.set_private head.prev { ptr = Node head; mark = false };
    C.set_private head.next { ptr = Node tail; mark = false };
    C.set_private tail.prev { ptr = Node head; mark = false };
    C.set_private tail.next { ptr = Node tail; mark = false };
    { head; tail }

  let create ~capacity:_ () = make ()

  (* SetMark: mark a link in place, preserving its pointer.  Used on
     [prev] links only — marking a [next] link is a linearization point
     and must be a one-shot CAS by the deleting operation itself. *)
  let rec set_mark loc =
    let l = C.get loc in
    if not l.mark then
      if not (C.cas loc l { ptr = l.ptr; mark = true }) then set_mark loc

  (* HelpDelete: finish the deletion of a node whose [next] link is
     already marked — mark its [prev] link, then splice it out of the
     [next] chain.  [last] remembers the predecessor we last stepped
     through together with the exact link record read from it, so the
     splice-out of a deleted [prev] can CAS with a physically-read
     expected value. *)
  let help_delete node =
    set_mark node.prev;
    let rec unlink ~last ~prev ~next =
      if prev == next then ()
      else
        let next_link = C.get next.next in
        if next_link.mark then
          (* the successor is deleted too: never re-link a dead node *)
          unlink ~last ~prev ~next:(node_of next_link.ptr)
        else
          let prev_link = C.get prev.next in
          if prev_link.mark then
            match last with
            | Some (ln, ll) ->
                (* [prev] is deleted: help unlink it from [ln] first *)
                set_mark prev.prev;
                ignore (C.cas ln.next ll { ptr = prev_link.ptr; mark = false });
                unlink ~last:None ~prev:ln ~next
            | None ->
                unlink ~last:None ~prev:(node_of (C.get prev.prev).ptr) ~next
          else
            let succ = node_of prev_link.ptr in
            if succ == node then begin
              if
                not
                  (C.cas prev.next prev_link { ptr = Node next; mark = false })
              then unlink ~last ~prev ~next
            end
            else if succ == prev then ()
              (* tail's self link: [node] already left the chain *)
            else unlink ~last:(Some (prev, prev_link)) ~prev:succ ~next
    in
    if B.helping then
      unlink ~last:None
        ~prev:(node_of (C.get node.prev).ptr)
        ~next:(node_of (C.get node.next).ptr)

  (* CorrectPrev: starting from the hint [prev], walk the authoritative
     [next] chain to the live predecessor of [node], repair [node.prev]
     to point at it, and return it.  Gives up (returning the current
     position, which the caller revalidates) once [node] itself is
     deleted.  Helps unlink any deleted node it steps over. *)
  let rec correct_prev ~last prev node =
    let link1 = C.get node.prev in
    if link1.mark then prev
    else
      let prev_link = C.get prev.next in
      if prev_link.mark then
        match last with
        | Some (ln, ll) ->
            set_mark prev.prev;
            ignore (C.cas ln.next ll { ptr = prev_link.ptr; mark = false });
            correct_prev ~last:None ln node
        | None -> correct_prev ~last:None (node_of (C.get prev.prev).ptr) node
      else
        let succ = node_of prev_link.ptr in
        if succ == node then
          if C.cas node.prev link1 { ptr = Node prev; mark = false } then
            if (C.get prev.prev).mark then
              (* [prev] was deleted while we installed it: re-correct *)
              correct_prev ~last prev node
            else prev
          else correct_prev ~last prev node
        else if succ == prev then prev
          (* tail's self link: [node] left the chain while we walked *)
        else correct_prev ~last:(Some (prev, prev_link)) succ node

  (* PushCommon: after the insertion CAS has published [node] before
     [next], pull [next.prev] forward to point at it.  Purely a hint
     repair — abandoning it on any interference is safe. *)
  let push_common node next =
    let rec fixup () =
      let link1 = C.get next.prev in
      let node_link = C.get node.next in
      if link1.mark || node_link.mark || node_of node_link.ptr != next then ()
      else if C.cas next.prev link1 { ptr = Node node; mark = false } then begin
        if (C.get node.prev).mark then
          (* [node] was deleted while we fixed the hint: re-correct *)
          ignore (correct_prev ~last:None node next)
      end
      else fixup ()
    in
    fixup ()

  let fresh_node v =
    {
      value = Some v;
      prev = C.make ~equal:link_equal nil_link;
      next = C.make ~equal:link_equal nil_link;
    }

  (* PushLeft: insert directly after the head sentinel.  head is never
     deleted, so its [next] link is never marked and the CAS needs no
     revalidation walk. *)
  let push_left t v =
    let node = fresh_node v in
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let link = C.get t.head.next in
      C.set_private node.prev { ptr = Node t.head; mark = false };
      C.set_private node.next link;
      if C.cas t.head.next link { ptr = Node node; mark = false } then
        push_common node (node_of link.ptr)
      else begin
        Dcas.Backoff.once b;
        loop ()
      end
    in
    loop ();
    `Okay

  (* PushRight: insert before the tail sentinel.  The predecessor comes
     from the [tail.prev] hint and must be revalidated: its [next] link
     must still be the unmarked link to tail at the insertion CAS. *)
  let push_right t v =
    let node = fresh_node v in
    let b = Dcas.Backoff.create () in
    let rec loop prev =
      let link = C.get prev.next in
      if link.mark || node_of link.ptr != t.tail then
        loop (correct_prev ~last:None prev t.tail)
      else begin
        C.set_private node.prev { ptr = Node prev; mark = false };
        C.set_private node.next { ptr = Node t.tail; mark = false };
        if C.cas prev.next link { ptr = Node node; mark = false } then
          push_common node t.tail
        else begin
          Dcas.Backoff.once b;
          loop prev
        end
      end
    in
    loop (node_of (C.get t.tail.prev).ptr);
    `Okay

  (* PopLeft linearizes at the read of [head.next] (empty) or at the
     marking CAS on the first node's [next] link: the CAS succeeds only
     if that link is unchanged since the read, so the node was still
     untouched — any interposed [push_left] commutes to after this pop
     within the operations' overlap. *)
  let pop_left t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let link = C.get t.head.next in
      let node = node_of link.ptr in
      if node == t.tail then `Empty
      else
        let node_link = C.get node.next in
        if node_link.mark then begin
          (* already logically deleted: help finish, then retry *)
          help_delete node;
          loop ()
        end
        else if C.cas node.next node_link { ptr = node_link.ptr; mark = true }
        then begin
          help_delete node;
          (* repair the new first node's backward hint *)
          ignore (correct_prev ~last:None t.head (node_of node_link.ptr));
          match node.value with Some v -> `Value v | None -> assert false
        end
        else begin
          Dcas.Backoff.once b;
          loop ()
        end
    in
    loop ()

  (* PopRight linearizes at the marking CAS: it succeeds only while the
     node's [next] is the unmarked link to tail, i.e. while the node is
     live and rightmost (a push_right behind it would have rewritten
     that link).  Empty linearizes at reading [head.next = tail]. *)
  let pop_right t =
    let b = Dcas.Backoff.create () in
    let rec loop node =
      let node_link = C.get node.next in
      if node_link.mark || node_of node_link.ptr != t.tail then
        loop (correct_prev ~last:None node t.tail)
      else if node == t.head then `Empty
      else if C.cas node.next node_link { ptr = node_link.ptr; mark = true }
      then begin
        help_delete node;
        let prev = node_of (C.get node.prev).ptr in
        ignore (correct_prev ~last:None prev t.tail);
        match node.value with Some v -> `Value v | None -> assert false
      end
      else begin
        Dcas.Backoff.once b;
        loop node
      end
    in
    loop (node_of (C.get t.tail.prev).ptr)

  (* --- Quiescent inspection (tests and invariant checks only) --- *)

  let unsafe_to_list t =
    let rec walk node acc =
      if node == t.tail then List.rev acc
      else
        let l = C.get node.next in
        let acc =
          if l.mark then acc
          else match node.value with Some v -> v :: acc | None -> acc
        in
        walk (node_of l.ptr) acc
    in
    walk (node_of (C.get t.head.next).ptr) []

  (* Executable representation invariant, weak enough to hold after
     every shared-memory step of an in-flight operation: the
     authoritative [next] chain runs from head to tail without cycling,
     head's [next] link is never marked (head is never deleted), and
     every chained non-sentinel node carries a value.  [prev] links are
     hints and carry no per-step obligation; the strong doubly-linked
     checks are quiescent-only and live in the test suite. *)
  let check_invariant t =
    let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
    let max_nodes = 1_000_000 in
    let hl = C.get t.head.next in
    if hl.mark then fail "head's next link is marked"
    else
      let rec walk node n =
        if n > max_nodes then fail "next chain does not reach tail (cycle?)"
        else if node == t.tail then Ok ()
        else if node == t.head then fail "head reappears inside the chain"
        else
          match node.value with
          | None -> fail "valueless interior node in the chain"
          | Some _ -> walk (node_of (C.get node.next).ptr) (n + 1)
      in
      walk (node_of hl.ptr) 0
end

module Make (C : CAS) =
  Impl
    (C)
    (struct
      let helping = true
      let variant = "st-deque"
    end)

module Make_buggy (C : CAS) =
  Impl
    (C)
    (struct
      let helping = false
      let variant = "st-deque-broken"
    end)

(* The production instantiation: directly on [Atomic]. *)
include Make (Atomic_cas)

(** A deliberately BLOCKING deque — the planted target for the
    empirical lock-freedom validator (E19).

    Operations are serialized by strict round-robin turn passing over a
    shared [turn] word: fair under a fair scheduler, and not
    non-blocking in the strongest sense — one stopped participant
    stalls every other forever, with no lock held anywhere.  The
    lock-freedom test must flag this structure while passing the DCAS
    deques; the progress watchdog must turn its stall into a
    diagnostic.

    Operations take the calling participant's [tid] (in
    [0, participants)); each participant must be driven by exactly one
    thread. *)

module Make (M : Dcas.Memory_intf.MEMORY) : sig
  type 'a t

  val name : string

  val make : participants:int -> capacity:int -> unit -> 'a t
  (** @raise Invalid_argument if [participants < 1] or [capacity < 1]. *)

  val push_right : 'a t -> tid:int -> 'a -> Deque.Deque_intf.push_result
  val push_left : 'a t -> tid:int -> 'a -> Deque.Deque_intf.push_result
  val pop_right : 'a t -> tid:int -> 'a Deque.Deque_intf.pop_result
  val pop_left : 'a t -> tid:int -> 'a Deque.Deque_intf.pop_result

  val unsafe_to_list : 'a t -> 'a list
  (** Quiescent-only. *)
end

(** The deque operation vocabulary of Section 2.2.

    Shared by the sequential oracle, the history recorder, the
    linearizability checker and the model-checking scenarios. *)

type 'a op = Push_right of 'a | Push_left of 'a | Pop_right | Pop_left

type 'a res = Okay | Full | Empty | Got of 'a
(** Pushes answer [Okay]/[Full]; pops answer [Got v]/[Empty]. *)

val equal_res : ('a -> 'a -> bool) -> 'a res -> 'a res -> bool

val pp_op :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a op -> unit

val pp_res :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a res -> unit

val res_matches_op : 'a op -> 'b res -> bool
(** Shape-level well-formedness: is [res] a possible answer for [op],
    regardless of state? *)

val to_token : int op -> string
(** Render in the compact DSL of the explorer CLI and the fuzzer's
    replay tokens: [pr:V], [pl:V], [qr], [ql]. *)

val of_token : string -> (int op, string) result
(** Inverse of {!to_token}. *)

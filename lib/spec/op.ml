(* The deque operation vocabulary of Section 2.2: four operations, push
   results in {okay, full}, pop results in {val, empty}.  Shared by the
   sequential specification, the concurrent implementations' test
   harness, the history recorder and the linearizability checker. *)

type 'a op = Push_right of 'a | Push_left of 'a | Pop_right | Pop_left

type 'a res = Okay | Full | Empty | Got of 'a

let equal_res equal_v a b =
  match (a, b) with
  | Okay, Okay | Full, Full | Empty, Empty -> true
  | Got x, Got y -> equal_v x y
  | (Okay | Full | Empty | Got _), _ -> false

let pp_op pp_v ppf = function
  | Push_right v -> Format.fprintf ppf "pushRight(%a)" pp_v v
  | Push_left v -> Format.fprintf ppf "pushLeft(%a)" pp_v v
  | Pop_right -> Format.fprintf ppf "popRight()"
  | Pop_left -> Format.fprintf ppf "popLeft()"

let pp_res pp_v ppf = function
  | Okay -> Format.fprintf ppf "okay"
  | Full -> Format.fprintf ppf "full"
  | Empty -> Format.fprintf ppf "empty"
  | Got v -> Format.fprintf ppf "%a" pp_v v

(* The compact operation DSL shared by the explorer CLI and the fuzzer's
   replay tokens: pr:V / pl:V for pushes, qr / ql for pops. *)

let to_token = function
  | Push_right v -> "pr:" ^ string_of_int v
  | Push_left v -> "pl:" ^ string_of_int v
  | Pop_right -> "qr"
  | Pop_left -> "ql"

let of_token tok =
  match String.split_on_char ':' tok with
  | [ "qr" ] -> Ok Pop_right
  | [ "ql" ] -> Ok Pop_left
  | [ "pr"; v ] -> (
      match int_of_string_opt v with
      | Some v -> Ok (Push_right v)
      | None -> Error ("bad value in " ^ tok))
  | [ "pl"; v ] -> (
      match int_of_string_opt v with
      | Some v -> Ok (Push_left v)
      | None -> Error ("bad value in " ^ tok))
  | _ -> Error ("unknown op " ^ tok)

(* Well-formedness of a result for an operation, independent of state:
   pushes answer Okay/Full, pops answer Got/Empty. *)
let res_matches_op op res =
  match (op, res) with
  | (Push_right _ | Push_left _), (Okay | Full) -> true
  | (Pop_right | Pop_left), (Got _ | Empty) -> true
  | (Push_right _ | Push_left _), (Got _ | Empty) -> false
  | (Pop_right | Pop_left), (Okay | Full) -> false

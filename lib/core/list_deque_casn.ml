(* EXTENSION: the linked-list deque rebuilt on a THREE-word CAS.

   Section 6 of the paper asks whether even stronger multi-word
   primitives are worth providing; Section 1.1 notes that Greenwald's
   first algorithm already used "the two-word DCAS as if it were a
   three-word operation".  This module answers the question
   constructively: given a 3-entry CASN, the whole splitting machinery
   of Section 4 disappears.

   - No deleted bits (and no dummy nodes): a pop splices its node out
     in ONE atomic step, so there is never a logically-deleted node for
     other operations to complete or work around.
   - No null values: a node's value is written once, before
     publication, and never mutated.
   - deleteRight/deleteLeft do not exist.

   popRight's single CASN touches three words: the right sentinel's
   inward pointer (redirected to the node's left neighbor), the left
   neighbor's right pointer (redirected to the sentinel), and — as a
   pure validation entry — the node's own left pointer.  The validation
   entry is what makes three words necessary: with only the first two,
   a concurrent popLeft could splice out the left neighbor between our
   reads and our CASN, and both stale expectations would still hold
   (a spliced-out node's outgoing pointers are never modified), leaving
   the sentinel pointing into garbage.  The node's left pointer changes
   exactly when its left neighbor is spliced out, so including it
   pins the neighborhood.

   Pushes still need only two words (plain DCAS shape, expressed as a
   2-entry CASN).  Experiment E17 measures what the stronger primitive
   buys: one CASN per pop instead of the split's two DCASes, at the
   cost of a wider atomic operation. *)

module type ALGORITHM = List_deque_intf.ALGORITHM

module Make (M : Dcas.Memory_intf.MEMORY_CASN) = struct
  type 'a cell = SentL | SentR | Item of 'a

  type 'a node = {
    left : 'a node_ref M.loc;
    right : 'a node_ref M.loc;
    value : 'a cell;  (* immutable: fixed at allocation *)
  }

  and 'a node_ref = Nil | Node of 'a node

  type 'a t = { sl : 'a node; sr : 'a node; alloc : Alloc.t }

  let name = "list-deque-3cas/" ^ M.name

  let node_ref_equal a b =
    match (a, b) with
    | Nil, Nil -> true
    | Node x, Node y -> x == y
    | (Nil | Node _), _ -> false

  let new_node value =
    {
      left = M.make ~equal:node_ref_equal Nil;
      right = M.make ~equal:node_ref_equal Nil;
      value;
    }

  (* Sentinels: every operation hits their inward pointer, so keep the
     two off each other's cache lines. *)
  let new_sentinel value =
    {
      left = M.make_padded ~equal:node_ref_equal Nil;
      right = M.make_padded ~equal:node_ref_equal Nil;
      value;
    }

  let node_of = function
    | Node n -> n
    | Nil -> assert false

  let make ?(alloc = Alloc.unbounded) ?(recycle = false) () =
    if recycle then
      invalid_arg "List_deque_casn.make: node recycling is only implemented for List_deque";
    let sl = new_sentinel SentL and sr = new_sentinel SentR in
    M.set_private sl.right (Node sr);
    M.set_private sr.left (Node sl);
    { sl; sr; alloc }

  let create ~capacity:_ () = make ()

  (* No pending deletions exist in this design; the procedures are
     retained as no-ops so the module satisfies the shared list-deque
     interface (and so ablation code can swap implementations). *)
  let delete_right (_ : 'a t) = ()
  let delete_left (_ : 'a t) = ()

  let pop_right t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_l = M.get t.sr.left in
      let target = node_of old_l in
      match target.value with
      | SentL -> `Empty
      | SentR -> assert false
      | Item v ->
          let ll = M.get target.left in
          if
            M.casn
              [
                M.Cass (t.sr.left, old_l, ll);
                M.Cass ((node_of ll).right, old_l, Node t.sr);
                (* validation: target's left neighborhood unchanged *)
                M.Cass (target.left, ll, ll);
              ]
          then begin
            Alloc.free t.alloc;
            `Value v
          end
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
    in
    loop ()

  let pop_left t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_r = M.get t.sl.right in
      let target = node_of old_r in
      match target.value with
      | SentR -> `Empty
      | SentL -> assert false
      | Item v ->
          let rr = M.get target.right in
          if
            M.casn
              [
                M.Cass (t.sl.right, old_r, rr);
                M.Cass ((node_of rr).left, old_r, Node t.sl);
                M.Cass (target.right, rr, rr);
              ]
          then begin
            Alloc.free t.alloc;
            `Value v
          end
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
    in
    loop ()

  let push_right t v =
    if not (Alloc.try_alloc t.alloc) then `Full
    else begin
      let nn = new_node (Item v) in
      let b = Dcas.Backoff.create () in
      let rec loop () =
        let old_l = M.get t.sr.left in
        let target = node_of old_l in
        M.set_private nn.right (Node t.sr);
        M.set_private nn.left old_l;
        if
          M.casn
            [
              M.Cass (t.sr.left, old_l, Node nn);
              M.Cass (target.right, Node t.sr, Node nn);
            ]
        then `Okay
        else begin
          Dcas.Backoff.once b;
          loop ()
        end
      in
      loop ()
    end

  let push_left t v =
    if not (Alloc.try_alloc t.alloc) then `Full
    else begin
      let nn = new_node (Item v) in
      let b = Dcas.Backoff.create () in
      let rec loop () =
        let old_r = M.get t.sl.right in
        let target = node_of old_r in
        M.set_private nn.left (Node t.sl);
        M.set_private nn.right old_r;
        if
          M.casn
            [
              M.Cass (t.sl.right, old_r, Node nn);
              M.Cass (target.left, Node t.sl, Node nn);
            ]
        then `Okay
        else begin
          Dcas.Backoff.once b;
          loop ()
        end
      in
      loop ()
    end

  (* --- Quiescent inspection --- *)

  let unsafe_to_list t =
    let rec walk node acc =
      match node.value with
      | SentR -> List.rev acc
      | SentL -> walk (node_of (M.get node.right)) acc
      | Item v -> walk (node_of (M.get node.right)) (v :: acc)
    in
    walk (node_of (M.get t.sl.right)) []

  (* The invariant is simpler than Figures 24-25: a consistent
     doubly-linked chain of distinct Item nodes between the sentinels —
     no marks, no nulls, ever. *)
  let check_invariant t =
    let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
    let max_nodes = 1_000_000 in
    let rec collect node acc n =
      if n > max_nodes then Error "chain too long (cycle?)"
      else if node == t.sr then Ok (List.rev acc)
      else collect (node_of (M.get node.right)) (node :: acc) (n + 1)
    in
    match collect (node_of (M.get t.sl.right)) [] 0 with
    | Error e -> Error e
    | Ok chain ->
        let rec distinct = function
          | [] -> true
          | x :: rest -> (not (List.memq x rest)) && distinct rest
        in
        if not (distinct chain) then fail "chain contains a repeated node"
        else begin
          let full_chain = (t.sl :: chain) @ [ t.sr ] in
          let rec check_links = function
            | a :: (b :: _ as rest) ->
                if not (node_ref_equal (M.get b.left) (Node a)) then
                  fail "left pointer does not mirror right"
                else check_links rest
            | [ _ ] | [] -> Ok ()
          in
          match check_links full_chain with
          | Error e -> Error e
          | Ok () ->
              if
                List.for_all
                  (fun n ->
                    match n.value with
                    | Item _ -> true
                    | SentL | SentR -> false)
                  chain
              then Ok ()
              else fail "sentinel value inside the chain"
        end
end

module Lockfree = Make (Dcas.Mem_lockfree)
module Locked = Make (Dcas.Mem_lock)
module Striped = Make (Dcas.Mem_striped)
module Sequential = Make (Dcas.Mem_seq)

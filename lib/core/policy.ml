(* Caller-facing resilience policies over any deque implementation.

   The paper's deques are non-blocking but *honest*: a bounded push at
   capacity answers [`Full], a pop of an empty deque answers [`Empty],
   and under contention an operation may simply take longer.  Callers
   building services on top want a different contract — "give me an
   answer within my deadline, and tell me what to do when the structure
   is saturated".  [Policy.Make (D)] wraps a deque with exactly that:

   - {e deadline-bounded operations}: every operation takes an optional
     [?deadline] (seconds of budget for this call).  Instead of the
     caller spinning on [`Full]/[`Empty], the wrapper retries with the
     substrate's randomized exponential {!Dcas.Backoff} and returns
     [`Timeout] once the budget is spent.  Without a deadline, nothing
     ever blocks: a single attempt (plus the configured bounded
     retries) runs to completion.

   - {e graceful degradation at capacity} (bounded deques): a push that
     finds the deque full consults the [full] policy —
     [Reject] surfaces [`Full] immediately (backpressure, counted);
     [Retry { max_attempts }] retries with backoff, then surfaces
     [`Full] (or [`Timeout] if a deadline expired first);
     [Spill] diverts the value into an unbounded overflow
     {!List_deque} on the same side, trading strict deque ordering for
     availability — pops drain the primary first and fall back to the
     overflow, so no value is ever lost or duplicated, but an element
     that overflowed can be overtaken by later primary-deque traffic.
     Parked values also drain {e back} opportunistically: any call that
     proves the primary has room (a push that landed, a pop that just
     freed a slot) moves one overflowed value back into the primary and
     counts it as a refill, so a burst's backlog melts away under
     ordinary traffic instead of waiting for the primary to empty.

   - {e backpressure / starvation accounting}: per-wrapper counters
     (successes, rejections, retries, spills, timeouts) and the maximum
     observed single-call latency, cheap enough to stay on in
     production harnesses; per-thread fairness over a whole run is
     computed by {!Harness.Metrics.Starvation} from the runner's
     per-thread counts.

   The wrapper adds no atomicity of its own: each underlying operation
   remains linearizable; a retried operation is simply a sequence of
   linearizable attempts, and a spilled push is a push on the overflow
   deque.  Conservation (no loss, no duplication) therefore holds
   across the chain, which test/test_resilience.ml checks under chaos
   injection. *)

type full_policy =
  | Reject  (* surface `Full immediately: backpressure to the caller *)
  | Retry of { max_attempts : int }  (* bounded backoff retries *)
  | Spill  (* divert to an unbounded overflow list deque *)

type push_outcome = [ `Okay | `Full | `Timeout ]
type 'a pop_outcome = [ `Value of 'a | `Empty | `Timeout ]

type stats = {
  ok : int;  (* operations that completed with `Okay / `Value *)
  full_rejections : int;  (* pushes surfaced as `Full *)
  empty_misses : int;  (* pops surfaced as `Empty *)
  timeouts : int;  (* operations surfaced as `Timeout *)
  retries : int;  (* extra attempts beyond each operation's first *)
  spilled : int;  (* pushes diverted to the overflow deque *)
  spill_drained : int;  (* pops served from the overflow deque *)
  refilled : int;  (* parked values moved back into the primary *)
  overflow_size : int;  (* values currently parked in the overflow *)
  max_latency_ns : int;  (* worst single completed call *)
}

let pp_stats ppf s =
  Format.fprintf ppf
    "ok=%d full=%d empty=%d timeout=%d retries=%d spill=%d/%d refill=%d \
     pending=%d max_latency=%dns"
    s.ok s.full_rejections s.empty_misses s.timeouts s.retries s.spilled
    s.spill_drained s.refilled s.overflow_size s.max_latency_ns

(* A tiny concurrent latency sketch for admission control: power-of-two
   nanosecond buckets under padded atomic counters.  Writers only ever
   [Atomic.incr] one bucket, so recording is wait-free and cheap enough
   for every served request; readers fold the counters for a
   conservative (bucket-upper-bound) quantile.  Reads racing writes can
   be off by in-flight increments — fine for a shedding heuristic,
   which only needs the order of magnitude of the tail. *)
module Lat = struct
  let buckets = 64

  type t = int Atomic.t array

  let create () : t =
    Array.init buckets (fun _ -> Dcas.Padding.make_atomic 0)

  let bucket_of ~ns =
    if not (ns >= 2.) (* also NaN *) then 0
    else
      let b = int_of_float (Float.log2 ns) in
      if b >= buckets then buckets - 1 else b

  let note (t : t) ~ns = Atomic.incr t.(bucket_of ~ns)
  let count (t : t) = Array.fold_left (fun n c -> n + Atomic.get c) 0 t

  (* Upper bound of the bucket holding the q-th ranked observation:
     never underestimates the tail by more than one doubling. *)
  let quantile_ns (t : t) q =
    let total = count t in
    if total = 0 then 0.
    else
      let rank =
        let r = int_of_float (ceil (q *. float_of_int total)) in
        if r < 1 then 1 else if r > total then total else r
      in
      let rec go b seen =
        if b >= buckets then Float.pow 2. (float_of_int buckets)
        else
          let seen = seen + Atomic.get t.(b) in
          if seen >= rank then Float.pow 2. (float_of_int (b + 1))
          else go (b + 1) seen
      in
      go 0 0
end

module Make (D : Deque_intf.S) = struct
  module Overflow = List_deque.Lockfree

  type side = [ `Left | `Right ]

  type 'a t = {
    primary : 'a D.t;
    overflow : 'a Overflow.t option;  (* Some iff policy is Spill *)
    full : full_policy;
    (* padded counters: the wrapper must not introduce contention the
       structure itself avoids *)
    c_ok : int Atomic.t;
    c_full : int Atomic.t;
    c_empty : int Atomic.t;
    c_timeout : int Atomic.t;
    c_retries : int Atomic.t;
    c_spilled : int Atomic.t;
    c_drained : int Atomic.t;
    c_refilled : int Atomic.t;
    c_max_ns : int Atomic.t;
  }

  let name = "policy[" ^ D.name ^ "]"

  let create ?(full = Reject) ~capacity () =
    (match full with
    | Retry { max_attempts } when max_attempts < 1 ->
        invalid_arg "Policy.create: max_attempts must be >= 1"
    | Reject | Retry _ | Spill -> ());
    {
      primary = D.create ~capacity ();
      overflow = (match full with Spill -> Some (Overflow.make ()) | _ -> None);
      full;
      c_ok = Dcas.Padding.make_atomic 0;
      c_full = Dcas.Padding.make_atomic 0;
      c_empty = Dcas.Padding.make_atomic 0;
      c_timeout = Dcas.Padding.make_atomic 0;
      c_retries = Dcas.Padding.make_atomic 0;
      c_spilled = Dcas.Padding.make_atomic 0;
      c_drained = Dcas.Padding.make_atomic 0;
      c_refilled = Dcas.Padding.make_atomic 0;
      c_max_ns = Dcas.Padding.make_atomic 0;
    }

  let stats t =
    {
      ok = Atomic.get t.c_ok;
      full_rejections = Atomic.get t.c_full;
      empty_misses = Atomic.get t.c_empty;
      timeouts = Atomic.get t.c_timeout;
      retries = Atomic.get t.c_retries;
      spilled = Atomic.get t.c_spilled;
      spill_drained = Atomic.get t.c_drained;
      refilled = Atomic.get t.c_refilled;
      overflow_size =
        (match t.overflow with
        | None -> 0
        | Some o -> List.length (Overflow.unsafe_to_list o));
      max_latency_ns = Atomic.get t.c_max_ns;
    }

  let note_latency t ~t0 =
    let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
    let rec bump () =
      let cur = Atomic.get t.c_max_ns in
      if ns > cur && not (Atomic.compare_and_set t.c_max_ns cur ns) then bump ()
    in
    bump ()

  (* Deadline bookkeeping: [deadline] is a per-call budget in seconds,
     measured from the call's entry.  [None] = no deadline. *)
  let expired ~t0 = function
    | None -> false
    | Some budget -> Unix.gettimeofday () -. t0 >= budget

  let finish t ~t0 (counter : int Atomic.t) outcome =
    Atomic.incr counter;
    note_latency t ~t0;
    outcome

  (* --- push --- *)

  let push_primary t ~side v =
    match side with
    | `Right -> D.push_right t.primary v
    | `Left -> D.push_left t.primary v

  let push_overflow t ~side v =
    match t.overflow with
    | None -> `Full
    | Some o -> (
        match side with
        | `Right -> Overflow.push_right o v
        | `Left -> Overflow.push_left o v)

  (* Opportunistic drain-back for Spill: a call that just proved the
     primary has room (a push that landed, a pop that freed a slot)
     moves at most one parked value back in on the same side.  The
     [c_spilled - c_drained - c_refilled] hint keeps the common case
     (nothing parked) to three counter reads — no shared-structure
     traffic.  The move is two linearizable steps, not one: a
     concurrent observer can catch the value in hand, so quiescent
     conservation views must run with no call in flight (unchanged). *)
  let overflow_hint t =
    Atomic.get t.c_spilled - Atomic.get t.c_drained - Atomic.get t.c_refilled

  let try_refill t ~side =
    match t.overflow with
    | None -> ()
    | Some _ when overflow_hint t <= 0 -> ()
    | Some o -> (
        match
          match side with
          | `Right -> Overflow.pop_right o
          | `Left -> Overflow.pop_left o
        with
        | `Empty -> ()
        | `Value v -> (
            match push_primary t ~side v with
            | `Okay -> Atomic.incr t.c_refilled
            | `Full ->
                (* the slot was taken concurrently: re-park the value on
                   the side it came from (the list overflow is unbounded,
                   so this cannot refuse — loop for the type system) *)
                let rec park () =
                  match
                    match side with
                    | `Right -> Overflow.push_right o v
                    | `Left -> Overflow.push_left o v
                  with
                  | `Okay -> ()
                  | `Full -> park ()
                in
                park ()))

  (* Retrying is bounded two ways: the Retry policy caps the attempt
     COUNT (exhaustion surfaces as `Full — honest backpressure), while
     a [?deadline] bounds the attempt WINDOW in wall-clock time
     (expiry surfaces as `Timeout).  A deadline is an explicit opt-in
     to waiting, so when one is given it governs: retrying continues
     past the count cap until the budget is spent. *)
  let push ?deadline t ~side v : push_outcome =
    let t0 = Unix.gettimeofday () in
    if expired ~t0 deadline then finish t ~t0 t.c_timeout `Timeout
    else
      let backoff = Dcas.Backoff.create () in
      let budgeted =
        match t.full with Retry { max_attempts } -> max_attempts | _ -> 1
      in
      let rec go attempt =
        match push_primary t ~side v with
        | `Okay ->
            try_refill t ~side;
            finish t ~t0 t.c_ok `Okay
        | `Full -> (
            match t.full with
            | Spill -> (
                match push_overflow t ~side v with
                | `Okay ->
                    Atomic.incr t.c_spilled;
                    finish t ~t0 t.c_ok `Okay
                | `Full ->
                    (* overflow allocation failed: genuine saturation *)
                    finish t ~t0 t.c_full `Full)
            | Reject | Retry _ ->
                if deadline <> None then
                  if expired ~t0 deadline then
                    finish t ~t0 t.c_timeout `Timeout
                  else begin
                    Atomic.incr t.c_retries;
                    Dcas.Backoff.once backoff;
                    if expired ~t0 deadline then
                      finish t ~t0 t.c_timeout `Timeout
                    else go (attempt + 1)
                  end
                else if attempt < budgeted then begin
                  Atomic.incr t.c_retries;
                  Dcas.Backoff.once backoff;
                  go (attempt + 1)
                end
                else finish t ~t0 t.c_full `Full)
      in
      go 1

  (* --- pop --- *)

  let pop_primary t ~side =
    match side with
    | `Right -> D.pop_right t.primary
    | `Left -> D.pop_left t.primary

  let pop_overflow t ~side =
    match t.overflow with
    | None -> `Empty
    | Some o -> (
        match side with
        | `Right -> Overflow.pop_right o
        | `Left -> Overflow.pop_left o)

  let pop ?deadline t ~side : 'a pop_outcome =
    let t0 = Unix.gettimeofday () in
    if expired ~t0 deadline then finish t ~t0 t.c_timeout `Timeout
    else
      let backoff = Dcas.Backoff.create () in
      let rec go () =
        match pop_primary t ~side with
        | `Value v ->
            (* the pop freed one slot: prime it with a parked value *)
            try_refill t ~side;
            finish t ~t0 t.c_ok (`Value v)
        | `Empty -> (
            match pop_overflow t ~side with
            | `Value v ->
                Atomic.incr t.c_drained;
                finish t ~t0 t.c_ok (`Value v)
            | `Empty ->
                if deadline = None then finish t ~t0 t.c_empty `Empty
                else if expired ~t0 deadline then
                  finish t ~t0 t.c_timeout `Timeout
                else begin
                  Atomic.incr t.c_retries;
                  Dcas.Backoff.once backoff;
                  if expired ~t0 deadline then
                    finish t ~t0 t.c_timeout `Timeout
                  else go ()
                end)
      in
      go ()

  (* The four named operations of the deque vocabulary. *)
  let push_right ?deadline t v = push ?deadline t ~side:`Right v
  let push_left ?deadline t v = push ?deadline t ~side:`Left v
  let pop_right ?deadline t = pop ?deadline t ~side:`Right
  let pop_left ?deadline t = pop ?deadline t ~side:`Left

  (* Deadline-free views with the plain [Deque_intf] result types, for
     harnesses that drive every implementation uniformly.  Without a
     deadline no path produces [`Timeout]. *)
  let push_simple t ~side v : Deque_intf.push_result =
    match push t ~side v with
    | `Okay -> `Okay
    | `Full -> `Full
    | `Timeout -> assert false

  let pop_simple t ~side : 'a Deque_intf.pop_result =
    match pop t ~side with
    | `Value v -> `Value v
    | `Empty -> `Empty
    | `Timeout -> assert false

  (* Quiescent-only inspection hooks for the conservation tests:
     [Deque_intf.S] exposes no generic contents view, so callers that
     know the concrete [D] reach the primary through [primary] and get
     the parked overflow values from [overflow_list].  The union is a
     multiset view, not an ordering claim (see header comment). *)
  let primary t = t.primary

  let overflow_list t =
    match t.overflow with
    | None -> []
    | Some o -> Overflow.unsafe_to_list o
end

(* The array-based bounded deque of Section 3 (Figures 2, 3, 30, 31).

   The deque lives in a circular array [s] of [length] cells indexed by
   two counters [l] and [r], which always point at the next location a
   value can be inserted into from the left and right respectively.
   Emptiness and fullness are never decided from the relative positions
   of [l] and [r] — the paper's key observation is that both (L+1) mod
   length = R configurations are ambiguous — but from the combination
   of an index and the content of the cell it points at, confirmed
   atomically with a DCAS.

   The two optional optimizations the paper discusses are kept behind
   the [hints] flag (experiment E10):

   - the re-read of the index before attempting the "is it really
     empty/full?" confirmation DCAS (line 7 of Figures 2/3), and

   - the inspection of the strong DCAS's failing atomic view to return
     "empty"/"full" without retrying (lines 17-18).

   With [hints = false] the algorithm uses only the weak (boolean)
   DCAS, as the paper notes at the end of Section 3. *)

module type ALGORITHM = Array_deque_intf.ALGORITHM
module type BATCHED = Array_deque_intf.BATCHED

module Make (M : Dcas.Memory_intf.MEMORY) = struct
  type 'a cell = Null | Item of 'a

  (* DCAS compares cells by constructor, and items by physical payload
     equality: algorithms only ever pass previously-read cells as
     expected values, so physical equality is exact and cannot diverge
     on cyclic user values. *)
  let cell_equal a b =
    match (a, b) with
    | Null, Null -> true
    | Item x, Item y -> x == y
    | (Null | Item _), _ -> false

  type 'a t = {
    l : int M.loc;
    r : int M.loc;
    s : 'a cell M.loc array;
    length : int;
    hints : bool;
  }

  let name = "array-deque/" ^ M.name

  (* Euclidean modulus: the paper specifies -1 mod 6 = 5. *)
  let ( %% ) a b = ((a mod b) + b) mod b

  let make ?(hints = true) ~length () =
    if length < 1 then invalid_arg "Array_deque.make: length must be >= 1";
    {
      (* The two end indices are the deque's permanent hot spots — every
         operation on a side reads and DCASes its index — and they are
         allocated back to back, so unpadded they share one cache line
         and the "independent ends" of E5 ping-pong it anyway. *)
      l = M.make_padded 0;
      r = M.make_padded (1 %% length);
      s = Array.init length (fun _ -> M.make ~equal:cell_equal Null);
      length;
      hints;
    }

  let create ~capacity () = make ~length:capacity ()

  (* Figure 2: right-hand-side pop. *)
  let pop_right t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_r = M.get t.r in
      let new_r = (old_r - 1) %% t.length in
      let old_s = M.get t.s.(new_r) in
      match old_s with
      | Null ->
          (* Lines 6-11: possibly empty; confirm the (index, null cell)
             pair atomically before reporting it. *)
          if (not t.hints) || M.get t.r = old_r then
            if M.dcas t.r t.s.(new_r) old_r old_s old_r old_s then `Empty
            else begin
              Dcas.Backoff.once b;
              loop ()
            end
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
      | Item v ->
          (* Lines 12-20: try to claim the item. *)
          if t.hints then begin
            let ok, got_r, got_s =
              M.dcas_strong t.r t.s.(new_r) old_r old_s new_r Null
            in
            if ok then `Value v
            else if got_r = old_r then
              (* Lines 17-18: index unchanged, so the cell changed; if
                 it is now null a competing pop on the other side stole
                 the last item (Figure 6) and the deque was empty at
                 the DCAS. *)
              match got_s with
              | Null -> `Empty
              | Item _ ->
                  Dcas.Backoff.once b;
                  loop ()
            else begin
              Dcas.Backoff.once b;
              loop ()
            end
          end
          else if M.dcas t.r t.s.(new_r) old_r old_s new_r Null then `Value v
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
    in
    loop ()

  (* Figure 3: right-hand-side push. *)
  let push_right t v =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_r = M.get t.r in
      let new_r = (old_r + 1) %% t.length in
      let old_s = M.get t.s.(old_r) in
      match old_s with
      | Item _ ->
          (* Lines 6-11: possibly full; confirm atomically. *)
          if (not t.hints) || M.get t.r = old_r then
            if M.dcas t.r t.s.(old_r) old_r old_s old_r old_s then `Full
            else begin
              Dcas.Backoff.once b;
              loop ()
            end
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
      | Null ->
          (* Lines 12-19: try to insert. *)
          if t.hints then begin
            let ok, got_r, _got_s =
              M.dcas_strong t.r t.s.(old_r) old_r old_s new_r (Item v)
            in
            if ok then `Okay
            else if got_r = old_r then
              (* Lines 17-18: index unchanged, so the cell gained a
                 value: whatever it is, the deque is full. *)
              `Full
            else begin
              Dcas.Backoff.once b;
              loop ()
            end
          end
          else if M.dcas t.r t.s.(old_r) old_r old_s new_r (Item v) then `Okay
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
    in
    loop ()

  (* Figure 30: left-hand-side pop (mirror image of Figure 2). *)
  let pop_left t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_l = M.get t.l in
      let new_l = (old_l + 1) %% t.length in
      let old_s = M.get t.s.(new_l) in
      match old_s with
      | Null ->
          if (not t.hints) || M.get t.l = old_l then
            if M.dcas t.l t.s.(new_l) old_l old_s old_l old_s then `Empty
            else begin
              Dcas.Backoff.once b;
              loop ()
            end
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
      | Item v ->
          if t.hints then begin
            let ok, got_l, got_s =
              M.dcas_strong t.l t.s.(new_l) old_l old_s new_l Null
            in
            if ok then `Value v
            else if got_l = old_l then
              match got_s with
              | Null -> `Empty
              | Item _ ->
                  Dcas.Backoff.once b;
                  loop ()
            else begin
              Dcas.Backoff.once b;
              loop ()
            end
          end
          else if M.dcas t.l t.s.(new_l) old_l old_s new_l Null then `Value v
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
    in
    loop ()

  (* Figure 31: left-hand-side push (mirror image of Figure 3). *)
  let push_left t v =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_l = M.get t.l in
      let new_l = (old_l - 1) %% t.length in
      let old_s = M.get t.s.(old_l) in
      match old_s with
      | Item _ ->
          if (not t.hints) || M.get t.l = old_l then
            if M.dcas t.l t.s.(old_l) old_l old_s old_l old_s then `Full
            else begin
              Dcas.Backoff.once b;
              loop ()
            end
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
      | Null ->
          if t.hints then begin
            let ok, got_l, _got_s =
              M.dcas_strong t.l t.s.(old_l) old_l old_s new_l (Item v)
            in
            if ok then `Okay
            else if got_l = old_l then `Full
            else begin
              Dcas.Backoff.once b;
              loop ()
            end
          end
          else if M.dcas t.l t.s.(old_l) old_l old_s new_l (Item v) then `Okay
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
    in
    loop ()

  (* --- Quiescent inspection (tests and invariant checks only) --- *)

  (* The contents left-to-right.  Valid only while no operation is in
     flight.  Items occupy the circular segment (l+1 .. r-1). *)
  let unsafe_to_list t =
    let l = M.get t.l in
    (* In the full state every cell is an item; walking from l+1 for at
       most [length] steps terminates in both states. *)
    let rec walk i k acc =
      if k = 0 then List.rev acc
      else
        match M.get t.s.(i) with
        | Item v -> walk ((i + 1) %% t.length) (k - 1) (v :: acc)
        | Null -> List.rev acc
    in
    walk ((l + 1) %% t.length) t.length []

  (* The representation invariant of Figure 18, executable: the indices
     are in range and the non-null cells form one contiguous circular
     segment starting just right of [l] and ending just left of [r];
     the full deque is the special case where the segment covers the
     whole array.  Quiescent use only. *)
  let check_invariant t =
    let l = M.get t.l and r = M.get t.r in
    let n = t.length in
    if l < 0 || l >= n then Error (Printf.sprintf "L=%d out of range [0,%d)" l n)
    else if r < 0 || r >= n then
      Error (Printf.sprintf "R=%d out of range [0,%d)" r n)
    else begin
      let count = ref 0 in
      Array.iter
        (fun c -> match M.get c with Item _ -> incr count | Null -> ())
        t.s;
      let k = !count in
      if r <> (l + k + 1) %% n then
        Error
          (Printf.sprintf "R=%d inconsistent with L=%d and %d items (len %d)" r
             l k n)
      else begin
        (* every item must be inside the segment (l+1 .. l+k) *)
        let first_error = ref None in
        let record e = if !first_error = None then first_error := Some e in
        for off = 1 to n do
          let i = (l + off) %% n in
          let expected_item = off <= k in
          match (M.get t.s.(i), expected_item) with
          | Item _, true | Null, false -> ()
          | Item _, false ->
              record (Printf.sprintf "unexpected item at index %d (off %d)" i off)
          | Null, true -> record (Printf.sprintf "hole at index %d (off %d)" i off)
        done;
        match !first_error with None -> Ok () | Some e -> Error e
      end
    end
end

(* Batched operations over a CASN-capable memory: a k-item batch moves
   the end index by k and fills/empties k cells in ONE (k+1)-entry CASN
   — all-or-nothing, so an accepted batch linearizes as k consecutive
   single operations at the CASN's decision point.  A short batch
   (fewer than asked) additionally certifies the boundary: the CASN
   carries a no-op entry on the blocking cell (the paper's
   confirm-by-DCAS idea from Figures 2/3 lifted to N entries), so
   "only j fit" means the deque really was full/empty once the j
   transfers took effect.  The probe phase only reads; every cell it
   saw is revalidated by the CASN, so a stale probe just retries. *)
module Make_batched (M : Dcas.Memory_intf.MEMORY_CASN) = struct
  include Make (M)

  let push_many_right t vs =
    match vs with
    | [] -> 0
    | _ ->
        let vals = Array.of_list vs in
        let k = Array.length vals in
        let n = t.length in
        let limit = min k n in
        let b = Dcas.Backoff.create () in
        let rec loop () =
          let old_r = M.get t.r in
          let rec probe j =
            if j >= limit then (j, None)
            else
              match M.get t.s.((old_r + j) %% n) with
              | Null -> probe (j + 1)
              | Item _ as c -> (j, Some c)
          in
          match probe 0 with
          | 0, Some c0 ->
              (* possibly full: confirm the (index, item cell) pair
                 atomically, exactly as the single push does *)
              if M.dcas t.r t.s.(old_r) old_r c0 old_r c0 then 0
              else begin
                Dcas.Backoff.once b;
                loop ()
              end
          | 0, None -> assert false (* limit >= 1 *)
          | j, blocker ->
              let entries = ref [ M.Cass (t.r, old_r, (old_r + j) %% n) ] in
              for i = j - 1 downto 0 do
                entries :=
                  M.Cass (t.s.((old_r + i) %% n), Null, Item vals.(i))
                  :: !entries
              done;
              (* [blocker <> None] implies j < k: the no-op entry makes
                 the CASN certify fullness after the j accepted items *)
              (match blocker with
              | Some c ->
                  entries := M.Cass (t.s.((old_r + j) %% n), c, c) :: !entries
              | None -> ());
              if M.casn !entries then j
              else begin
                Dcas.Backoff.once b;
                loop ()
              end
        in
        loop ()

  let push_many_left t vs =
    match vs with
    | [] -> 0
    | _ ->
        let vals = Array.of_list vs in
        let k = Array.length vals in
        let n = t.length in
        let limit = min k n in
        let b = Dcas.Backoff.create () in
        let rec loop () =
          let old_l = M.get t.l in
          let rec probe j =
            if j >= limit then (j, None)
            else
              match M.get t.s.((old_l - j) %% n) with
              | Null -> probe (j + 1)
              | Item _ as c -> (j, Some c)
          in
          match probe 0 with
          | 0, Some c0 ->
              if M.dcas t.l t.s.(old_l) old_l c0 old_l c0 then 0
              else begin
                Dcas.Backoff.once b;
                loop ()
              end
          | 0, None -> assert false
          | j, blocker ->
              let entries = ref [ M.Cass (t.l, old_l, (old_l - j) %% n) ] in
              for i = j - 1 downto 0 do
                entries :=
                  M.Cass (t.s.((old_l - i) %% n), Null, Item vals.(i))
                  :: !entries
              done;
              (match blocker with
              | Some c ->
                  entries := M.Cass (t.s.((old_l - j) %% n), c, c) :: !entries
              | None -> ());
              if M.casn !entries then j
              else begin
                Dcas.Backoff.once b;
                loop ()
              end
        in
        loop ()

  let pop_many_left t want =
    if want <= 0 then []
    else begin
      let n = t.length in
      let limit = min want n in
      let b = Dcas.Backoff.create () in
      let rec loop () =
        let old_l = M.get t.l in
        let rec probe j acc =
          if j >= limit then (j, List.rev acc, false)
          else
            match M.get t.s.((old_l + 1 + j) %% n) with
            | Item v as c -> probe (j + 1) ((v, c) :: acc)
            | Null -> (j, List.rev acc, true)
        in
        let j, got, blocked = probe 0 [] in
        if j = 0 then begin
          (* possibly empty: confirm the (index, null cell) pair *)
          if M.dcas t.l t.s.((old_l + 1) %% n) old_l Null old_l Null then []
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
        end
        else begin
          let entries =
            M.Cass (t.l, old_l, (old_l + j) %% n)
            :: List.mapi
                 (fun i (_, c) -> M.Cass (t.s.((old_l + 1 + i) %% n), c, Null))
                 got
          in
          let entries =
            (* [blocked] implies j < want: certify emptiness after the
               j removals with a no-op entry on the null cell *)
            if blocked then
              M.Cass (t.s.((old_l + 1 + j) %% n), Null, Null) :: entries
            else entries
          in
          if M.casn entries then List.map fst got
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
        end
      in
      loop ()
    end

  let pop_many_right t want =
    if want <= 0 then []
    else begin
      let n = t.length in
      let limit = min want n in
      let b = Dcas.Backoff.create () in
      let rec loop () =
        let old_r = M.get t.r in
        let rec probe j acc =
          if j >= limit then (j, List.rev acc, false)
          else
            match M.get t.s.((old_r - 1 - j) %% n) with
            | Item v as c -> probe (j + 1) ((v, c) :: acc)
            | Null -> (j, List.rev acc, true)
        in
        let j, got, blocked = probe 0 [] in
        if j = 0 then begin
          if M.dcas t.r t.s.((old_r - 1) %% n) old_r Null old_r Null then []
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
        end
        else begin
          let entries =
            M.Cass (t.r, old_r, (old_r - j) %% n)
            :: List.mapi
                 (fun i (_, c) -> M.Cass (t.s.((old_r - 1 - i) %% n), c, Null))
                 got
          in
          let entries =
            if blocked then
              M.Cass (t.s.((old_r - 1 - j) %% n), Null, Null) :: entries
            else entries
          in
          if M.casn entries then List.map fst got
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
        end
      in
      loop ()
    end
end

(* Ready-made instantiations on the four memory models (all four offer
   CASN, so all four get the batched operations). *)
module Lockfree = Make_batched (Dcas.Mem_lockfree)
module Locked = Make_batched (Dcas.Mem_lock)
module Striped = Make_batched (Dcas.Mem_striped)
module Sequential = Make_batched (Dcas.Mem_seq)

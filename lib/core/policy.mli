(** Caller-facing resilience policies over any deque implementation:
    deadline-bounded operations, bounded backoff retries, and a
    graceful-degradation chain for bounded deques at capacity
    (experiments E19/E20).

    The paper's deques answer honestly ([`Full] at capacity, [`Empty]
    when drained) and never block; this wrapper turns those answers
    into a service-level contract without touching the algorithms: the
    wrapped operations remain plain sequences of linearizable attempts,
    so conservation (no loss, no duplication) holds across the whole
    chain, including the overflow deque. *)

type full_policy =
  | Reject
      (** Surface [`Full] immediately — backpressure to the caller,
          counted in {!stats}. *)
  | Retry of { max_attempts : int }
      (** Up to [max_attempts] attempts with randomized exponential
          {!Dcas.Backoff} between them, then [`Full]. *)
  | Spill
      (** Divert the value into an unbounded overflow {!List_deque} on
          the same side.  Pops drain the primary first and fall back to
          the overflow; in addition, any call that proves the primary
          has room (a push that landed, a pop that just freed a slot)
          opportunistically moves one parked value back into the
          primary (counted as [refilled]), so the backlog drains under
          ordinary traffic.  Availability is preserved, strict deque
          ordering across the two structures is not (an overflowed
          element can be overtaken by later primary traffic). *)

type push_outcome = [ `Okay | `Full | `Timeout ]
type 'a pop_outcome = [ `Value of 'a | `Empty | `Timeout ]

type stats = {
  ok : int;
  full_rejections : int;
  empty_misses : int;
  timeouts : int;
  retries : int;  (** attempts beyond each operation's first *)
  spilled : int;  (** pushes diverted to the overflow *)
  spill_drained : int;  (** pops served from the overflow *)
  refilled : int;  (** parked values moved back into the primary *)
  overflow_size : int;  (** values currently parked in the overflow *)
  max_latency_ns : int;  (** worst single completed call *)
}

val pp_stats : Format.formatter -> stats -> unit

(** A concurrent latency sketch for admission control (E25): log₂
    nanosecond buckets under padded atomic counters.  Recording is a
    single wait-free [Atomic.incr], cheap enough for every served
    request; quantile reads fold the counters and return the bucket's
    upper bound, so the tail is never underestimated by more than one
    doubling.  Reads racing writes can miss in-flight increments —
    acceptable for a shedding heuristic. *)
module Lat : sig
  type t

  val create : unit -> t

  val note : t -> ns:float -> unit
  (** Record one observation of [ns] nanoseconds (negative or NaN
      values land in the lowest bucket). *)

  val count : t -> int
  (** Observations recorded so far. *)

  val quantile_ns : t -> float -> float
  (** [quantile_ns t q] is an upper bound on the [q]-quantile of the
      recorded observations in nanoseconds; [0.] when empty. *)
end

module Make (D : Deque_intf.S) : sig
  type side = [ `Left | `Right ]
  type 'a t

  val name : string

  val create : ?full:full_policy -> capacity:int -> unit -> 'a t
  (** [full] defaults to {!Reject}.

      @raise Invalid_argument if a {!Retry} policy has
      [max_attempts < 1]. *)

  val push : ?deadline:float -> 'a t -> side:side -> 'a -> push_outcome
  val pop : ?deadline:float -> 'a t -> side:side -> 'a pop_outcome

  val push_right : ?deadline:float -> 'a t -> 'a -> push_outcome
  val push_left : ?deadline:float -> 'a t -> 'a -> push_outcome
  val pop_right : ?deadline:float -> 'a t -> 'a pop_outcome
  val pop_left : ?deadline:float -> 'a t -> 'a pop_outcome
  (** [deadline] is this call's wall-clock budget in seconds, measured
      from entry.  With a deadline, a push that keeps finding the deque
      full (and a pop that keeps finding it empty) retries with backoff
      until the budget is spent, then returns [`Timeout]; the deadline
      governs even under a {!Retry} policy's attempt cap.  Without a
      deadline nothing waits: pops return [`Empty] at once, pushes
      follow the [full] policy ({!Reject} = one attempt). *)

  val push_simple : 'a t -> side:side -> 'a -> Deque_intf.push_result
  val pop_simple : 'a t -> side:side -> 'a Deque_intf.pop_result
  (** Deadline-free views with the plain {!Deque_intf} result types,
      for harnesses that drive every implementation uniformly. *)

  val stats : 'a t -> stats
  (** Cumulative counters for this wrapper instance.  [overflow_size]
      walks the overflow deque and is quiescent-only. *)

  val primary : 'a t -> 'a D.t
  (** The wrapped deque — quiescent-only inspection hook for
      conservation tests. *)

  val overflow_list : 'a t -> 'a list
  (** Values currently parked in the overflow deque (quiescent-only;
      empty unless the policy is {!Spill}). *)
end

(** The array-based bounded deque of Section 3 (Figures 2, 3, 30, 31).

    A non-blocking, linearizable bounded deque in a circular array,
    supporting uninterrupted concurrent access to both ends.  Boundary
    cases (empty/full) are detected from the pair (index, cell content)
    confirmed atomically by DCAS, not from the relative positions of
    the two indices. *)

module type ALGORITHM = Array_deque_intf.ALGORITHM
(** See {!Array_deque_intf.ALGORITHM}: [make ?hints ~length ()] builds
    an empty deque of capacity [length]; [hints] (default [true])
    enables the paper's two optional optimizations — line 7's index
    re-read and lines 17-18's use of the failing strong-DCAS view;
    with [hints = false] only the weak boolean DCAS is required.
    [unsafe_to_list] and [check_invariant] (the executable Figure 18
    representation invariant) are for quiescent states only. *)

module type BATCHED = Array_deque_intf.BATCHED
(** {!ALGORITHM} plus atomic batch transfers: [push_many_*] commits a
    prefix of the batch and [pop_many_*] removes up to [k] items with
    one (k+1)-entry CASN, so the whole batch occupies a single
    linearization point.  A short batch certifies the full/empty
    boundary atomically via a no-op entry on the blocking cell. *)

module Make (M : Dcas.Memory_intf.MEMORY) : ALGORITHM
(** The algorithm over an arbitrary memory model — the production
    substrates below, or the model checker's instrumented memory. *)

module Make_batched (M : Dcas.Memory_intf.MEMORY_CASN) : BATCHED
(** {!Make} plus the batched operations, over any CASN-capable
    memory. *)

module Lockfree : BATCHED
(** Over {!Dcas.Mem_lockfree}: the fully non-blocking instantiation. *)

module Locked : BATCHED
(** Over {!Dcas.Mem_lock} (blocking DCAS emulation). *)

module Striped : BATCHED
(** Over {!Dcas.Mem_striped} (striped-lock DCAS emulation). *)

module Sequential : BATCHED
(** Over {!Dcas.Mem_seq}: single-threaded use only. *)

(* The concurrent deque interface of Section 2.2.  Push returns
   [`Okay]/[`Full], pop returns [`Value v]/[`Empty]; bounded deques
   report [`Full] at capacity, unbounded ones only when their (injected)
   allocator fails — the paper's footnote 3. *)

type push_result = [ `Okay | `Full ]
type 'a pop_result = [ `Value of 'a | `Empty ]

module type S = sig
  (** Uniform deque interface used by the test harness, the examples
      and the benchmarks, so that every implementation (the paper's
      two, the variants, and the baselines) is interchangeable. *)

  type 'a t

  val name : string
  (** Implementation name for test labels and benchmark tables. *)

  val create : capacity:int -> unit -> 'a t
  (** A fresh empty deque.  Bounded implementations can hold at most
      [capacity] items; unbounded ones ignore it. *)

  val push_right : 'a t -> 'a -> push_result
  val push_left : 'a t -> 'a -> push_result
  val pop_right : 'a t -> 'a pop_result
  val pop_left : 'a t -> 'a pop_result
end

(* Conversions to the spec vocabulary, used when recording histories. *)
let res_of_push : push_result -> 'a Spec.Op.res = function
  | `Okay -> Spec.Op.Okay
  | `Full -> Spec.Op.Full

let res_of_pop : 'a pop_result -> 'a Spec.Op.res = function
  | `Value v -> Spec.Op.Got v
  | `Empty -> Spec.Op.Empty

(* Generic batch operations for deques without native batching (the
   list deques): a plain fold of single operations.  NOT atomic — each
   item commits individually — but the same prefix semantics as
   {!Array_deque.Make_batched}: a push stops at the first [`Full], a
   pop at the first [`Empty], so callers can treat the two uniformly
   when they do not need the batch to be one linearization point. *)
module Batch (D : S) = struct
  let push_many_right d vs =
    let rec go n = function
      | [] -> n
      | v :: tl -> (
          match D.push_right d v with `Okay -> go (n + 1) tl | `Full -> n)
    in
    go 0 vs

  let push_many_left d vs =
    let rec go n = function
      | [] -> n
      | v :: tl -> (
          match D.push_left d v with `Okay -> go (n + 1) tl | `Full -> n)
    in
    go 0 vs

  let pop_many_right d k =
    let rec go n acc =
      if n >= k then List.rev acc
      else
        match D.pop_right d with
        | `Value v -> go (n + 1) (v :: acc)
        | `Empty -> List.rev acc
    in
    go 0 []

  let pop_many_left d k =
    let rec go n acc =
      if n >= k then List.rev acc
      else
        match D.pop_left d with
        | `Value v -> go (n + 1) (v :: acc)
        | `Empty -> List.rev acc
    in
    go 0 []
end

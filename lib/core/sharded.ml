(* A sharded deque service front end: K per-core deques behind one
   routing surface (ROADMAP item 3).

   The paper's deques are single components; a service carrying real
   traffic runs K of them and routes M producers/consumers across the
   set.  [Sharded.Make (D)] supplies exactly that data plane, built
   from parts this repo already trusts:

   - {e affinity hashing}: a request key is mixed through a
     SplitMix-style finalizer and lands on a {e home} shard, so a
     given key always meets the same deque (cache affinity, per-key
     FIFO within a shard).  Routing is a pure function of
     [(key, shard count)] — the qcheck determinism property in
     test/test_sharded.ml.

   - {e per-shard policy wrapping}: every shard is a {!Policy.Make}
     wrapper, so deadlines surface as [`Timeout] and a full shard
     degrades by the configured {!Policy.full_policy} (Reject /
     Retry / Spill) before the router even sees it.  If the home
     shard still answers [`Full], the router tries the other live
     shards once each — cross-shard overflow — and only then
     surfaces [`Full].

   - {e steal-based rebalancing}: a pop that finds its home shard
     empty scans the others and transfers up to [steal_batch] items
     (one in hand at a time, so a crash can strand at most one),
     serving the first and parking the rest on the home shard.  The
     scan visits quarantined shards too: an in-flight push that raced
     shard adoption may strand items on a dead shard, and the steal
     sweep is what makes them reachable again.

   - {e quarantine / adopt / revive}: the control plane (a supervisor
     in lib/worksteal, which this library cannot depend on) marks a
     crashed shard dead so routing skips it, [adopt] drains the
     orphaned deque into the survivors, and [revive] puts the shard
     back in rotation once a replacement owner exists.

   - {e double-ended priority}: urgent operations enter and leave the
     left end, bulk ones the right (Fatourou et al.'s deque-as-
     priority-queue usage, PAPERS.md).  An urgent pop therefore sees
     urgent entries first and then the {e oldest} bulk entry (queue
     order); a bulk pop takes the {e newest} bulk entry (stack
     order).

   The wrapper adds no atomicity: each shard operation remains a
   linearizable operation on that shard, and a rebalancing transfer
   is a pop on one shard followed by a push on another.  The service
   is therefore NOT linearizable to a single deque — routing and
   stealing reorder across shards by design — and is checked by
   conservation (no loss, no duplication) plus each shard's own
   representation invariant, not by the deque linearizability oracle
   (see Modelcheck.Scenario.sharded). *)

type stats = {
  pushed : int;  (* external pushes that landed, across all shards *)
  popped : int;  (* external pops served, across all shards *)
  rerouted : int;  (* pushes placed cross-shard after a full home *)
  stolen : int;  (* items moved between shards by rebalancing *)
  adopted : int;  (* items drained out of quarantined shards *)
  per_shard_pushed : int array;  (* external landings per shard *)
  per_shard_popped : int array;  (* external serves per shard *)
}

let pp_stats ppf s =
  Format.fprintf ppf "pushed=%d popped=%d rerouted=%d stolen=%d adopted=%d"
    s.pushed s.popped s.rerouted s.stolen s.adopted

(* SplitMix64-style finalizer over the native int width: every bit of
   the key affects every bit of the hash, so adjacent keys spread over
   the shards instead of striding.  Constants truncated to OCaml's
   63-bit ints; pure, so routing is deterministic for a given key. *)
let mix key =
  let h = key lxor (key lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x1E9F36D06D9A25B5 in
  h lxor (h lsr 32)

module Make (D : Deque_intf.S) = struct
  module P = Policy.Make (D)

  type 'a t = {
    shards : 'a P.t array;
    alive : bool Atomic.t array;
    steal_batch : int;
    (* service-level counters; the per-shard Policy counters also tick
       underneath but include internal transfers, so conservation is
       judged on these *)
    s_pushed : int Atomic.t array;
    s_popped : int Atomic.t array;
    s_rerouted : int Atomic.t;
    s_stolen : int Atomic.t;
    s_adopted : int Atomic.t;
  }

  let name = "sharded[" ^ D.name ^ "]"

  let create ?(full = Policy.Reject) ?(steal_batch = 8) ~shards ~capacity ()
      =
    if shards < 1 then invalid_arg "Sharded.create: shards must be >= 1";
    if steal_batch < 1 then
      invalid_arg "Sharded.create: steal_batch must be >= 1";
    {
      shards = Array.init shards (fun _ -> P.create ~full ~capacity ());
      alive = Array.init shards (fun _ -> Dcas.Padding.make_atomic true);
      steal_batch;
      s_pushed = Array.init shards (fun _ -> Dcas.Padding.make_atomic 0);
      s_popped = Array.init shards (fun _ -> Dcas.Padding.make_atomic 0);
      s_rerouted = Dcas.Padding.make_atomic 0;
      s_stolen = Dcas.Padding.make_atomic 0;
      s_adopted = Dcas.Padding.make_atomic 0;
    }

  let shards t = Array.length t.shards
  let alive t ~shard = Atomic.get t.alive.(shard)
  let shard_of t ~key = abs (mix key) mod Array.length t.shards

  (* Home shard, or the next live one probing upward from it; when
     every shard is quarantined, fall back to the home shard — its
     deque is still safe storage, and a later adoption sweep or steal
     scan recovers anything parked there. *)
  let route t ~key =
    let k = Array.length t.shards in
    let home = shard_of t ~key in
    let rec probe i =
      if i >= k then home
      else
        let s = (home + i) mod k in
        if Atomic.get t.alive.(s) then s else probe (i + 1)
    in
    probe 0

  let side_of ~urgent = if urgent then `Left else `Right

  (* --- push --- *)

  let push ?deadline ?(urgent = false) t ~key v : Policy.push_outcome =
    let side = side_of ~urgent in
    let home = route t ~key in
    match P.push ?deadline t.shards.(home) ~side v with
    | `Okay ->
        Atomic.incr t.s_pushed.(home);
        `Okay
    | `Timeout -> `Timeout
    | `Full ->
        (* cross-shard overflow: one undeadlined attempt per live
           peer; the home shard's policy has already done its Retry /
           Spill work, so a second `Full here is genuine saturation *)
        let k = Array.length t.shards in
        let rec overflow i =
          if i >= k then `Full
          else
            let s = (home + i) mod k in
            if not (Atomic.get t.alive.(s)) then overflow (i + 1)
            else
              match P.push t.shards.(s) ~side v with
              | `Okay ->
                  Atomic.incr t.s_pushed.(s);
                  Atomic.incr t.s_rerouted;
                  `Okay
              | `Full -> overflow (i + 1)
              | `Timeout -> assert false (* no deadline passed *)
        in
        overflow 1

  (* --- rebalancing --- *)

  (* Park a value somewhere, never losing it: round-robin over the
     shards with backoff until a push lands.  Reached only when a
     stolen item's home filled up concurrently; with Spill shards (the
     soak configuration) or unbounded shards it terminates on the
     first attempt, and a full sweep finding every bounded shard at
     capacity can only repeat while consumers are also running, so the
     loop is effectively bounded in any execution that makes progress
       elsewhere. *)
  let place t ~start ~side v =
    let k = Array.length t.shards in
    let backoff = Dcas.Backoff.create () in
    let rec go i =
      let s = (start + i) mod k in
      let ok =
        Atomic.get t.alive.(s)
        && match P.push t.shards.(s) ~side v with
           | `Okay -> true
           | `Full | `Timeout -> false
      in
      if ok then s
      else begin
        if i + 1 >= k then Dcas.Backoff.once backoff;
        go ((i + 1) mod k)
      end
    in
    go 0

  (* Transfer up to [budget] items from [victim] to [home], one in
     hand at a time (a crash mid-transfer strands at most one item,
     which supervision writes off like any other in-flight op).  Items
     are taken from the victim's bulk (right) end and parked on the
     home's right, so urgent left-end traffic never reorders. *)
  let rebalance t ~home ~victim ~budget =
    let rec go moved =
      if moved >= budget then moved
      else
        match P.pop t.shards.(victim) ~side:`Right with
        | `Empty | `Timeout -> moved
        | `Value v -> (
            Atomic.incr t.s_stolen;
            match P.push t.shards.(home) ~side:`Right v with
            | `Okay -> go (moved + 1)
            | `Full | `Timeout ->
                (* home filled concurrently: put the item back where
                   it came from and stop pulling *)
                ignore (place t ~start:victim ~side:`Right v);
                moved
            )
    in
    go 0

  (* --- pop --- *)

  (* Steals always take from the victim's bulk (right) end, whatever
     end the caller is serving: the victim's urgent traffic keeps its
     left end, and a starving urgent consumer would rather have a bulk
     item than none. *)
  let try_steal t ~home =
    let k = Array.length t.shards in
    (* visit every other shard, quarantined ones included: stragglers
       from a push that raced adoption are only reachable here *)
    let rec scan i =
      if i >= k then `Empty
      else
        let victim = (home + i) mod k in
        match P.pop t.shards.(victim) ~side:`Right with
        | `Value v ->
            Atomic.incr t.s_stolen;
            Atomic.incr t.s_popped.(victim);
            if t.steal_batch > 1 then
              ignore (rebalance t ~home ~victim ~budget:(t.steal_batch - 1));
            `Value v
        | `Empty | `Timeout -> scan (i + 1)
    in
    scan 1

  let pop ?deadline ?(urgent = false) t ~key : 'a Policy.pop_outcome =
    let side = side_of ~urgent in
    let home = route t ~key in
    let attempt () =
      match P.pop t.shards.(home) ~side with
      | `Value v ->
          Atomic.incr t.s_popped.(home);
          `Value v
      | `Empty -> try_steal t ~home
      | `Timeout -> `Timeout
    in
    match deadline with
    | None -> (attempt () :> 'a Policy.pop_outcome)
    | Some budget ->
        (* the deadline budgets the whole routed operation (home +
           steal scan), retried with backoff until something turns up *)
        let t0 = Unix.gettimeofday () in
        let backoff = Dcas.Backoff.create () in
        let rec go () =
          match attempt () with
          | `Value v -> `Value v
          | `Timeout -> `Timeout
          | `Empty ->
              if Unix.gettimeofday () -. t0 >= budget then `Timeout
              else begin
                Dcas.Backoff.once backoff;
                go ()
              end
        in
        go ()

  (* --- quarantine / adoption --- *)

  let quarantine t ~shard = Atomic.set t.alive.(shard) false
  let revive t ~shard = Atomic.set t.alive.(shard) true

  (* Drain a quarantined shard into the survivors (round-robin from
     its right neighbour).  The shard stays quarantined: reviving is
     the control plane's call, once a replacement owner exists.
     Returns the number of items moved.  Safe to run concurrently
     with traffic — each move is a pop here plus a push there — but
     an in-flight push that routed before quarantine can land after
     this drain; such stragglers stay reachable through the steal
     scan until the next adoption or revival.

     Adoption must never block: it runs on the supervisor, and an
     adoption that spins while every survivor sits at capacity (Reject
     shards, consumers dead or stalled — exactly a fault storm) would
     hang the control plane.  So each item gets one attempt per live
     shard; a full sweep parks it back on the source shard — which has
     the slot the pop just freed, and is quarantined, so no push races
     it — and ends the adoption early.  The model checker's frozen-
     consumer schedules are what forced this shape. *)
  let adopt t ~shard =
    let k = Array.length t.shards in
    if not (Array.exists Atomic.get t.alive) then 0
    else
      let try_place v =
        let rec go i =
          if i >= k then false
          else
            let s = (shard + 1 + i) mod k in
            if s = shard || not (Atomic.get t.alive.(s)) then go (i + 1)
            else
              match P.push t.shards.(s) ~side:`Right v with
              | `Okay -> true
              | `Full | `Timeout -> go (i + 1)
        in
        go 0
      in
      let rec go n =
        match P.pop t.shards.(shard) ~side:`Left with
        | `Empty | `Timeout -> n
        | `Value v ->
            if try_place v then begin
              Atomic.incr t.s_adopted;
              go (n + 1)
            end
            else begin
              (match P.push t.shards.(shard) ~side:`Left v with
              | `Okay -> ()
              | `Full | `Timeout ->
                  (* the freed slot vanished: something else is making
                     progress on this shard, so the spinning fallback
                     is safe — it only waits on that progress *)
                  ignore (place t ~start:((shard + 1) mod k) ~side:`Right v));
              n
            end
      in
      go 0

  (* --- inspection --- *)

  let shard t i = t.shards.(i)

  let stats t =
    let per_push = Array.map Atomic.get t.s_pushed in
    let per_pop = Array.map Atomic.get t.s_popped in
    {
      pushed = Array.fold_left ( + ) 0 per_push;
      popped = Array.fold_left ( + ) 0 per_pop;
      rerouted = Atomic.get t.s_rerouted;
      stolen = Atomic.get t.s_stolen;
      adopted = Atomic.get t.s_adopted;
      per_shard_pushed = per_push;
      per_shard_popped = per_pop;
    }

  (* Quiescent-only: pop every shard dry (left end first — primary
     then overflow per the Policy contract) and return the values.
     Service counters are untouched, so after a quiescent run
     [stats.pushed - stats.popped = List.length (drain t)] is the
     conservation check. *)
  let drain t =
    let out = ref [] in
    Array.iter
      (fun shard ->
        let rec go () =
          match P.pop shard ~side:`Left with
          | `Value v ->
              out := v :: !out;
              go ()
          | `Empty | `Timeout -> ()
        in
        go ())
      t.shards;
    List.rev !out
end

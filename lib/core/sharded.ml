(* A sharded deque service front end: K per-core deques behind one
   routing surface (ROADMAP item 3).

   The paper's deques are single components; a service carrying real
   traffic runs K of them and routes M producers/consumers across the
   set.  [Sharded.Make (D)] supplies exactly that data plane, built
   from parts this repo already trusts:

   - {e affinity hashing}: a request key is mixed through a
     SplitMix-style finalizer and lands on a {e home} shard, so a
     given key always meets the same deque (cache affinity, per-key
     FIFO within a shard).  Routing is a pure function of
     [(key, shard count)] — the qcheck determinism property in
     test/test_sharded.ml.

   - {e per-shard policy wrapping}: every shard is a {!Policy.Make}
     wrapper, so deadlines surface as [`Timeout] and a full shard
     degrades by the configured {!Policy.full_policy} (Reject /
     Retry / Spill) before the router even sees it.  If the home
     shard still answers [`Full], the router tries the other live
     shards once each — cross-shard overflow — and only then
     surfaces [`Full].

   - {e steal-based rebalancing}: a pop that finds its home shard
     empty scans the others and transfers up to [steal_batch] items
     (one in hand at a time, so a crash can strand at most one),
     serving the first and parking the rest on the home shard.  The
     scan visits quarantined shards too: an in-flight push that raced
     shard adoption may strand items on a dead shard, and the steal
     sweep is what makes them reachable again.

   - {e quarantine / adopt / revive}: the control plane (a supervisor
     in lib/worksteal, which this library cannot depend on) marks a
     crashed shard dead so routing skips it, [adopt] drains the
     orphaned deque into the survivors, and [revive] puts the shard
     back in rotation once a replacement owner exists.

   - {e double-ended priority}: urgent operations enter and leave the
     left end, bulk ones the right (Fatourou et al.'s deque-as-
     priority-queue usage, PAPERS.md).  An urgent pop therefore sees
     urgent entries first and then the {e oldest} bulk entry (queue
     order); a bulk pop takes the {e newest} bulk entry (stack
     order).

   The wrapper adds no atomicity: each shard operation remains a
   linearizable operation on that shard, and a rebalancing transfer
   is a pop on one shard followed by a push on another.  The service
   is therefore NOT linearizable to a single deque — routing and
   stealing reorder across shards by design — and is checked by
   conservation (no loss, no duplication) plus each shard's own
   representation invariant, not by the deque linearizability oracle
   (see Modelcheck.Scenario.sharded). *)

type stats = {
  pushed : int;  (* external pushes that landed, across all shards *)
  popped : int;  (* external pops served, across all shards *)
  rerouted : int;  (* pushes placed cross-shard after a full home *)
  stolen : int;  (* items moved between shards by rebalancing *)
  adopted : int;  (* items drained out of quarantined shards *)
  per_shard_pushed : int array;  (* external landings per shard *)
  per_shard_popped : int array;  (* external serves per shard *)
}

let pp_stats ppf s =
  Format.fprintf ppf "pushed=%d popped=%d rerouted=%d stolen=%d adopted=%d"
    s.pushed s.popped s.rerouted s.stolen s.adopted

(* SplitMix64-style finalizer over the native int width: every bit of
   the key affects every bit of the hash, so adjacent keys spread over
   the shards instead of striding.  Constants truncated to OCaml's
   63-bit ints; pure, so routing is deterministic for a given key. *)
let mix key =
  let h = key lxor (key lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x1E9F36D06D9A25B5 in
  h lxor (h lsr 32)

module Make (D : Deque_intf.S) = struct
  module P = Policy.Make (D)

  type 'a t = {
    shards : 'a P.t array;
    alive : bool Atomic.t array;
    steal_batch : int;
    (* service-level counters; the per-shard Policy counters also tick
       underneath but include internal transfers, so conservation is
       judged on these *)
    s_pushed : int Atomic.t array;
    s_popped : int Atomic.t array;
    s_rerouted : int Atomic.t;
    s_stolen : int Atomic.t;
    s_adopted : int Atomic.t;
    (* the limbo stash: an unbounded last-resort side list for items
       that could not be placed on any shard (every bounded shard at
       capacity — an over-committed fault storm).  It is what lets the
       control plane (adoption, rebalancing park-backs) terminate
       instead of spinning; consumers drain it through [pop] once the
       shards come up empty, and [drain] empties it, so nothing is
       ever lost. *)
    limbo : 'a list Atomic.t;
    (* per-shard end-to-end sojourn observations (enqueue to serve),
       fed by the consuming layer and read back by admission control *)
    sojourn : Policy.Lat.t array;
  }

  let name = "sharded[" ^ D.name ^ "]"

  let create ?(full = Policy.Reject) ?(steal_batch = 8) ~shards ~capacity ()
      =
    if shards < 1 then invalid_arg "Sharded.create: shards must be >= 1";
    if steal_batch < 1 then
      invalid_arg "Sharded.create: steal_batch must be >= 1";
    {
      shards = Array.init shards (fun _ -> P.create ~full ~capacity ());
      alive = Array.init shards (fun _ -> Dcas.Padding.make_atomic true);
      steal_batch;
      s_pushed = Array.init shards (fun _ -> Dcas.Padding.make_atomic 0);
      s_popped = Array.init shards (fun _ -> Dcas.Padding.make_atomic 0);
      s_rerouted = Dcas.Padding.make_atomic 0;
      s_stolen = Dcas.Padding.make_atomic 0;
      s_adopted = Dcas.Padding.make_atomic 0;
      limbo = Dcas.Padding.make_atomic [];
      sojourn = Array.init shards (fun _ -> Policy.Lat.create ());
    }

  let rec limbo_put t v =
    let old = Atomic.get t.limbo in
    if not (Atomic.compare_and_set t.limbo old (v :: old)) then limbo_put t v

  let rec limbo_take t =
    match Atomic.get t.limbo with
    | [] -> None
    | v :: rest as old ->
        if Atomic.compare_and_set t.limbo old rest then Some v
        else limbo_take t

  let limbo_list t = Atomic.get t.limbo

  let shards t = Array.length t.shards
  let alive t ~shard = Atomic.get t.alive.(shard)
  let shard_of t ~key = abs (mix key) mod Array.length t.shards

  (* Home shard, or the next live one probing upward from it; when
     every shard is quarantined, fall back to the home shard — its
     deque is still safe storage, and a later adoption sweep or steal
     scan recovers anything parked there. *)
  let route t ~key =
    let k = Array.length t.shards in
    let home = shard_of t ~key in
    let rec probe i =
      if i >= k then home
      else
        let s = (home + i) mod k in
        if Atomic.get t.alive.(s) then s else probe (i + 1)
    in
    probe 0

  let side_of ~urgent = if urgent then `Left else `Right

  (* --- sojourn observation / admission control --- *)

  (* The consuming layer reports each request's end-to-end sojourn
     (enqueue to serve — or to shed, so the tail the estimator sees
     includes the requests that missed) against the request's HOME
     shard: admission decides against the home too, keeping the loop
     closed even when stealing served the item elsewhere. *)
  let note_sojourn t ~shard ~ns = Policy.Lat.note t.sojourn.(shard) ~ns

  (* Below this many observations the estimate is noise; admit. *)
  let min_observations = 32

  let sojourn_p99_ns t ~shard =
    let l = t.sojourn.(shard) in
    if Policy.Lat.count l < min_observations then None
    else Some (Policy.Lat.quantile_ns l 0.99)

  (* Admission control: refuse at enqueue when the home shard's
     observed p99 sojourn already exceeds this request's whole budget —
     the request would almost surely expire in queue, so shedding it
     now costs nothing and sheds load where it helps (before the push
     touches shared state).  Conservative in both directions by
     design: with few observations it admits (cold start), and the
     p99 read is a bucket upper bound (sheds slightly early rather
     than late). *)
  let admit t ~key ~budget =
    match sojourn_p99_ns t ~shard:(shard_of t ~key) with
    | None -> true
    | Some p99_ns -> p99_ns <= budget *. 1e9

  (* --- push --- *)

  let push ?deadline ?(urgent = false) t ~key v : Policy.push_outcome =
    let side = side_of ~urgent in
    let home = route t ~key in
    match P.push ?deadline t.shards.(home) ~side v with
    | `Okay ->
        Atomic.incr t.s_pushed.(home);
        `Okay
    | `Timeout -> `Timeout
    | `Full ->
        (* cross-shard overflow: one undeadlined attempt per live
           peer; the home shard's policy has already done its Retry /
           Spill work, so a second `Full here is genuine saturation *)
        let k = Array.length t.shards in
        let rec overflow i =
          if i >= k then `Full
          else
            let s = (home + i) mod k in
            if not (Atomic.get t.alive.(s)) then overflow (i + 1)
            else
              match P.push t.shards.(s) ~side v with
              | `Okay ->
                  Atomic.incr t.s_pushed.(s);
                  Atomic.incr t.s_rerouted;
                  `Okay
              | `Full -> overflow (i + 1)
              | `Timeout -> assert false (* no deadline passed *)
        in
        overflow 1

  (* --- rebalancing --- *)

  (* Park a value somewhere, never losing it AND never spinning:
     round-robin over the live shards for a bounded number of sweeps,
     then escape to the limbo stash.  Reached only when a moved item's
     target filled up concurrently; with Spill shards (the soak
     configuration) or unbounded shards it lands on the first attempt.
     The bound matters: this runs on control-plane paths (adoption,
     steal park-backs), and the system can be genuinely over-committed
     — a racing push that routed before a quarantine can land in the
     very slot an adoption's drain just freed, leaving one more item
     than the bounded shards have slots.  No amount of re-placing
     terminates then; the model checker's step-limit hunts are what
     forced the escape hatch. *)
  let place_sweeps = 3

  let place t ~start ~side v =
    let k = Array.length t.shards in
    let backoff = Dcas.Backoff.create () in
    let rec go i =
      if i >= place_sweeps * k then limbo_put t v
      else
        let s = (start + i) mod k in
        let ok =
          Atomic.get t.alive.(s)
          && match P.push t.shards.(s) ~side v with
             | `Okay -> true
             | `Full | `Timeout -> false
        in
        if not ok then begin
          if (i + 1) mod k = 0 then Dcas.Backoff.once backoff;
          go (i + 1)
        end
    in
    go 0

  (* Transfer up to [budget] items from [victim] to [home], one in
     hand at a time (a crash mid-transfer strands at most one item,
     which supervision writes off like any other in-flight op).  Items
     are taken from the victim's bulk (right) end and parked on the
     home's right, so urgent left-end traffic never reorders. *)
  let rebalance t ~home ~victim ~budget =
    let rec go moved =
      if moved >= budget then moved
      else
        match P.pop t.shards.(victim) ~side:`Right with
        | `Empty | `Timeout -> moved
        | `Value v -> (
            Atomic.incr t.s_stolen;
            match P.push t.shards.(home) ~side:`Right v with
            | `Okay -> go (moved + 1)
            | `Full | `Timeout ->
                (* home filled concurrently: put the item back where
                   it came from and stop pulling *)
                place t ~start:victim ~side:`Right v;
                moved
            )
    in
    go 0

  (* --- pop --- *)

  (* Steals always take from the victim's bulk (right) end, whatever
     end the caller is serving: the victim's urgent traffic keeps its
     left end, and a starving urgent consumer would rather have a bulk
     item than none. *)
  let try_steal t ~home =
    let k = Array.length t.shards in
    (* visit every other shard, quarantined ones included: stragglers
       from a push that raced adoption are only reachable here *)
    let rec scan i =
      if i >= k then `Empty
      else
        let victim = (home + i) mod k in
        match P.pop t.shards.(victim) ~side:`Right with
        | `Value v ->
            Atomic.incr t.s_stolen;
            Atomic.incr t.s_popped.(victim);
            if t.steal_batch > 1 then
              ignore (rebalance t ~home ~victim ~budget:(t.steal_batch - 1));
            `Value v
        | `Empty | `Timeout -> scan (i + 1)
    in
    scan 1

  let pop ?deadline ?(urgent = false) t ~key : 'a Policy.pop_outcome =
    let side = side_of ~urgent in
    let home = route t ~key in
    let attempt () =
      match P.pop t.shards.(home) ~side with
      | `Value v ->
          Atomic.incr t.s_popped.(home);
          `Value v
      | `Empty -> (
          match try_steal t ~home with
          | `Value _ as hit -> hit
          | `Empty -> (
              (* last resort: the limbo stash (items parked there when
                 every shard was full), credited to the server's home *)
              match limbo_take t with
              | Some v ->
                  Atomic.incr t.s_popped.(home);
                  `Value v
              | None -> `Empty))
      | `Timeout -> `Timeout
    in
    match deadline with
    | None -> (attempt () :> 'a Policy.pop_outcome)
    | Some budget ->
        (* the deadline budgets the whole routed operation (home +
           steal scan), retried with backoff until something turns up.
           Budget exhaustion with only no-finds surfaces as [`Empty],
           not [`Timeout]: every attempt walked all shards and the
           limbo stash, so the no-find is certified — and consumers'
           quiescence certificates (full no-find scans) must keep
           flowing even when every pop carries a deadline, or a
           stranded pending unit could never be reconciled. *)
        let t0 = Unix.gettimeofday () in
        let backoff = Dcas.Backoff.create () in
        let rec go () =
          match attempt () with
          | `Value v -> `Value v
          | `Timeout -> `Timeout
          | `Empty ->
              if Unix.gettimeofday () -. t0 >= budget then `Empty
              else begin
                Dcas.Backoff.once backoff;
                go ()
              end
        in
        go ()

  (* --- quarantine / adoption --- *)

  let quarantine t ~shard = Atomic.set t.alive.(shard) false
  let revive t ~shard = Atomic.set t.alive.(shard) true

  (* Drain a quarantined shard into the survivors (round-robin from
     its right neighbour).  The shard stays quarantined: reviving is
     the control plane's call, once a replacement owner exists.
     Returns the number of items moved.  Safe to run concurrently
     with traffic — each move is a pop here plus a push there — but
     an in-flight push that routed before quarantine can land after
     this drain; such stragglers stay reachable through the steal
     scan until the next adoption or revival.

     Adoption must never block: it runs on the supervisor, and an
     adoption that spins while every survivor sits at capacity (Reject
     shards, consumers dead or stalled — exactly a fault storm) would
     hang the control plane.  So each item gets one attempt per live
     shard; a full sweep parks it back on the source shard — which
     usually has the slot the pop just freed — and ends the adoption
     early.  "Usually": a straggler push that routed before the
     quarantine can land in that slot mid-drain, over-committing the
     bounded shards, so a failed park-back escapes through [place]'s
     limbo stash rather than re-placing forever.  The model checker's
     frozen-consumer and straggler schedules are what forced this
     shape. *)
  let adopt t ~shard =
    let k = Array.length t.shards in
    if not (Array.exists Atomic.get t.alive) then 0
    else
      let try_place v =
        let rec go i =
          if i >= k then false
          else
            let s = (shard + 1 + i) mod k in
            if s = shard || not (Atomic.get t.alive.(s)) then go (i + 1)
            else
              match P.push t.shards.(s) ~side:`Right v with
              | `Okay -> true
              | `Full | `Timeout -> go (i + 1)
        in
        go 0
      in
      let rec go n =
        match P.pop t.shards.(shard) ~side:`Left with
        | `Empty | `Timeout -> n
        | `Value v ->
            if try_place v then begin
              Atomic.incr t.s_adopted;
              go (n + 1)
            end
            else begin
              (match P.push t.shards.(shard) ~side:`Left v with
              | `Okay -> ()
              | `Full | `Timeout ->
                  (* the freed slot vanished: a straggler push that
                     routed before the quarantine landed mid-drain, so
                     the system may hold one more item than the bounded
                     shards have slots — [place]'s bounded sweeps and
                     limbo escape keep the control plane from spinning
                     on it *)
                  place t ~start:((shard + 1) mod k) ~side:`Right v);
              n
            end
      in
      go 0

  (* --- inspection --- *)

  let shard t i = t.shards.(i)

  let stats t =
    let per_push = Array.map Atomic.get t.s_pushed in
    let per_pop = Array.map Atomic.get t.s_popped in
    {
      pushed = Array.fold_left ( + ) 0 per_push;
      popped = Array.fold_left ( + ) 0 per_pop;
      rerouted = Atomic.get t.s_rerouted;
      stolen = Atomic.get t.s_stolen;
      adopted = Atomic.get t.s_adopted;
      per_shard_pushed = per_push;
      per_shard_popped = per_pop;
    }

  (* Quiescent-only: pop every shard dry (left end first — primary
     then overflow per the Policy contract) and return the values.
     Service counters are untouched, so after a quiescent run
     [stats.pushed - stats.popped = List.length (drain t)] is the
     conservation check. *)
  let drain t =
    let out = ref [] in
    Array.iter
      (fun shard ->
        let rec go () =
          match P.pop shard ~side:`Left with
          | `Value v ->
              out := v :: !out;
              go ()
          | `Empty | `Timeout -> ()
        in
        go ())
      t.shards;
    let rec limbo () =
      match limbo_take t with
      | Some v ->
          out := v :: !out;
          limbo ()
      | None -> ()
    in
    limbo ();
    List.rev !out
end

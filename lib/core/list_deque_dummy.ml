(* The footnote-4 / Figure 10 variant of the linked-list deque: the
   deleted bit is eliminated by indirection through "dummy" nodes.  A
   sentinel's inward pointer that refers to a node directly encodes
   deleted = false; one that refers to a dummy node — a node whose
   immutable identity carries the reference to the marked node —
   encodes deleted = true.

   The paper gives each processor a reusable left and right dummy; here
   a fresh dummy is allocated per marking, which is equivalent (a dummy
   is private until published by the marking DCAS, and GC reclaims it)
   and keeps the code free of processor registration.  A dummy's
   referent is part of its [kind] — an ordinary immutable field fixed
   at construction, mirroring how the paper distinguishes dummies
   structurally ("a special dummy type ... distinguishable from regular
   nodes") — so decoding a link costs exactly one shared read, the same
   as the deleted-bit representation.  Link words hold a bare node
   reference; [read_link] decodes it into the same (pointer, deleted)
   view the Section 4 algorithm uses.  Apart from this codec the
   control flow is exactly that of Figures 11, 13, 17 and their
   mirrors, which is what experiment E11 tests: the two encodings are
   behaviourally identical, trading a pointer tag bit for one
   allocation per pop. *)

module type ALGORITHM = List_deque_intf.ALGORITHM

module Make (M : Dcas.Memory_intf.MEMORY) = struct
  type 'a cell = Null | SentL | SentR | Item of 'a

  type 'a node = {
    kind : 'a kind;
    left : 'a node_ref M.loc;
    right : 'a node_ref M.loc;
    value : 'a cell M.loc;
  }

  and 'a kind = Regular | Dummy_for of 'a node
  and 'a node_ref = Nil | Node of 'a node

  type 'a t = { sl : 'a node; sr : 'a node; alloc : Alloc.t }

  let name = "list-deque-dummy/" ^ M.name

  let node_ref_equal a b =
    match (a, b) with
    | Nil, Nil -> true
    | Node x, Node y -> x == y
    | (Nil | Node _), _ -> false

  let cell_equal a b =
    match (a, b) with
    | Null, Null | SentL, SentL | SentR, SentR -> true
    | Item x, Item y -> x == y
    | (Null | SentL | SentR | Item _), _ -> false

  let new_raw_node ?(kind = Regular) () =
    {
      kind;
      left = M.make ~equal:node_ref_equal Nil;
      right = M.make ~equal:node_ref_equal Nil;
      value = M.make ~equal:cell_equal Null;
    }

  (* Long-lived and hit by every operation; padded so the two
     sentinels' hot words do not share cache lines.  Dummies stay
     unpadded — they are transient. *)
  let new_sentinel_node () =
    {
      kind = Regular;
      left = M.make_padded ~equal:node_ref_equal Nil;
      right = M.make_padded ~equal:node_ref_equal Nil;
      value = M.make_padded ~equal:cell_equal Null;
    }

  let node_of = function
    | Node n -> n
    | Nil -> assert false

  (* Decoded view of a link word: the logical (ptr, deleted) pair plus
     the raw reference actually stored, which is what a DCAS must use
     as its expected value.  One shared read. *)
  type 'a link = { ptr : 'a node; deleted : bool; raw : 'a node_ref }

  let read_link loc =
    let raw = M.get loc in
    let n = node_of raw in
    match n.kind with
    | Dummy_for target -> { ptr = target; deleted = true; raw }
    | Regular -> { ptr = n; deleted = false; raw }

  (* Encoders for new pointer values. *)
  let direct n = Node n

  let marked n =
    (* The paper preallocates one reusable dummy per processor per
       side; dummies never count against the allocator budget.  A fresh
       dummy per marking is behaviourally the same (it is private until
       the marking DCAS publishes it). *)
    Node (new_raw_node ~kind:(Dummy_for n) ())

  let make ?(alloc = Alloc.unbounded) ?(recycle = false) () =
    if recycle then
      invalid_arg "List_deque_dummy.make: node recycling is only implemented for List_deque";
    let sl = new_sentinel_node () and sr = new_sentinel_node () in
    M.set_private sl.value SentL;
    M.set_private sr.value SentR;
    M.set_private sl.right (Node sr);
    M.set_private sr.left (Node sl);
    { sl; sr; alloc }

  let create ~capacity:_ () = make ()

  (* Figure 17 under the dummy encoding.  As in [List_deque], retries
     that follow a failed DCAS back off before looping. *)
  let delete_right t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_l = read_link t.sr.left in
      if not old_l.deleted then ()
      else begin
        let target = old_l.ptr in
        let old_ll = node_of (M.get target.left) in
        match M.get old_ll.value with
        | Null ->
            let old_r = read_link t.sl.right in
            if old_r.deleted then begin
              if
                M.dcas t.sr.left t.sl.right old_l.raw old_r.raw (direct t.sl)
                  (direct t.sr)
              then begin
                (* two null nodes became unreachable *)
                Alloc.free t.alloc;
                Alloc.free t.alloc
              end
              else begin
                Dcas.Backoff.once b;
                loop ()
              end
            end
            else loop ()
        | SentL | SentR | Item _ ->
            let old_llr = M.get old_ll.right in
            if node_ref_equal old_llr (Node target) then begin
              if
                M.dcas t.sr.left old_ll.right old_l.raw old_llr (direct old_ll)
                  (direct t.sr)
              then Alloc.free t.alloc
              else begin
                Dcas.Backoff.once b;
                loop ()
              end
            end
            else loop ()
      end
    in
    loop ()

  (* Figure 34 under the dummy encoding. *)
  let delete_left t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_r = read_link t.sl.right in
      if not old_r.deleted then ()
      else begin
        let target = old_r.ptr in
        let old_rr = node_of (M.get target.right) in
        match M.get old_rr.value with
        | Null ->
            let old_l = read_link t.sr.left in
            if old_l.deleted then begin
              if
                M.dcas t.sl.right t.sr.left old_r.raw old_l.raw (direct t.sr)
                  (direct t.sl)
              then begin
                Alloc.free t.alloc;
                Alloc.free t.alloc
              end
              else begin
                Dcas.Backoff.once b;
                loop ()
              end
            end
            else loop ()
        | SentL | SentR | Item _ ->
            let old_rrl = M.get old_rr.left in
            if node_ref_equal old_rrl (Node target) then begin
              if
                M.dcas t.sl.right old_rr.left old_r.raw old_rrl (direct old_rr)
                  (direct t.sl)
              then Alloc.free t.alloc
              else begin
                Dcas.Backoff.once b;
                loop ()
              end
            end
            else loop ()
      end
    in
    loop ()

  (* Figure 11 under the dummy encoding. *)
  let pop_right t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_l = read_link t.sr.left in
      let target = old_l.ptr in
      let v = M.get target.value in
      match v with
      | SentL -> `Empty
      | SentR -> assert false
      | Null | Item _ ->
          if old_l.deleted then begin
            delete_right t;
            loop ()
          end
          else begin
            match v with
            | Null ->
                if M.dcas t.sr.left target.value old_l.raw v old_l.raw v then
                  `Empty
                else begin
                  Dcas.Backoff.once b;
                  loop ()
                end
            | Item x ->
                let new_raw = marked target in
                if M.dcas t.sr.left target.value old_l.raw v new_raw Null then
                  `Value x
                else begin
                  Dcas.Backoff.once b;
                  loop ()
                end
            | SentL | SentR -> assert false
          end
    in
    loop ()

  (* Figure 32 under the dummy encoding. *)
  let pop_left t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_r = read_link t.sl.right in
      let target = old_r.ptr in
      let v = M.get target.value in
      match v with
      | SentR -> `Empty
      | SentL -> assert false
      | Null | Item _ ->
          if old_r.deleted then begin
            delete_left t;
            loop ()
          end
          else begin
            match v with
            | Null ->
                if M.dcas t.sl.right target.value old_r.raw v old_r.raw v then
                  `Empty
                else begin
                  Dcas.Backoff.once b;
                  loop ()
                end
            | Item x ->
                let new_raw = marked target in
                if M.dcas t.sl.right target.value old_r.raw v new_raw Null then
                  `Value x
                else begin
                  Dcas.Backoff.once b;
                  loop ()
                end
            | SentL | SentR -> assert false
          end
    in
    loop ()

  (* Figure 13 under the dummy encoding. *)
  let push_right t v =
    if not (Alloc.try_alloc t.alloc) then `Full
    else begin
      let nn = new_raw_node () in
      let b = Dcas.Backoff.create () in
      let rec loop () =
        let old_l = read_link t.sr.left in
        if old_l.deleted then begin
          delete_right t;
          loop ()
        end
        else begin
          let target = old_l.ptr in
          M.set_private nn.right (Node t.sr);
          M.set_private nn.left old_l.raw;
          M.set_private nn.value (Item v);
          let old_lr = M.get target.right in
          if not (node_ref_equal old_lr (Node t.sr)) then loop ()
          else if
            M.dcas t.sr.left target.right old_l.raw old_lr (direct nn)
              (direct nn)
          then `Okay
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
        end
      in
      loop ()
    end

  (* Figure 33 under the dummy encoding. *)
  let push_left t v =
    if not (Alloc.try_alloc t.alloc) then `Full
    else begin
      let nn = new_raw_node () in
      let b = Dcas.Backoff.create () in
      let rec loop () =
        let old_r = read_link t.sl.right in
        if old_r.deleted then begin
          delete_left t;
          loop ()
        end
        else begin
          let target = old_r.ptr in
          M.set_private nn.left (Node t.sl);
          M.set_private nn.right old_r.raw;
          M.set_private nn.value (Item v);
          let old_rl = M.get target.left in
          if not (node_ref_equal old_rl (Node t.sl)) then loop ()
          else if
            M.dcas t.sl.right target.left old_r.raw old_rl (direct nn)
              (direct nn)
          then `Okay
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
        end
      in
      loop ()
    end

  (* --- Quiescent inspection --- *)

  let resolve n =
    match n.kind with Dummy_for target -> target | Regular -> n

  let unsafe_to_list t =
    let rec walk node acc =
      match M.get node.value with
      | SentR -> List.rev acc
      | SentL | Null -> walk (next node) acc
      | Item v -> walk (next node) (v :: acc)
    and next node = resolve (node_of (M.get node.right)) in
    walk (next t.sl) []

  (* Invariant: decoding every link must yield a structure satisfying
     the Figures 24-25 invariant; additionally dummies may appear only
     as the immediate target of a sentinel's inward pointer. *)
  let check_invariant t =
    let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
    let max_nodes = 1_000_000 in
    let sl_r = read_link t.sl.right and sr_l = read_link t.sr.left in
    let rec collect node acc n =
      if n > max_nodes then Error "chain too long (cycle?)"
      else if node == t.sr then Ok (List.rev acc)
      else
        let nxt = node_of (M.get node.right) in
        match nxt.kind with
        | Dummy_for _ -> Error "dummy node in an interior right link"
        | Regular -> collect nxt (node :: acc) (n + 1)
    in
    match collect sl_r.ptr [] 0 with
    | Error e -> Error e
    | Ok chain ->
        let n = List.length chain in
        let rec distinct = function
          | [] -> true
          | x :: rest -> (not (List.memq x rest)) && distinct rest
        in
        if not (distinct chain) then fail "chain contains a repeated node"
        else begin
          let full_chain = (t.sl :: chain) @ [ t.sr ] in
          let rec check_links = function
            | a :: (b :: _ as rest) ->
                let b_left = resolve (node_of (M.get b.left)) in
                if b_left != a then fail "left pointer does not mirror right"
                else check_links rest
            | [ _ ] | [] -> Ok ()
          in
          match check_links full_chain with
          | Error e -> Error e
          | Ok () ->
              let rec check_values i = function
                | [] -> Ok ()
                | node :: rest -> (
                    let is_left_null = i = 0 && sl_r.deleted in
                    let is_right_null = i = n - 1 && sr_l.deleted in
                    match M.get node.value with
                    | Null ->
                        if is_left_null || is_right_null then
                          check_values (i + 1) rest
                        else fail "null value on an unmarked interior node"
                    | Item _ ->
                        if is_left_null || is_right_null then
                          fail "marked neighbor of sentinel holds a value"
                        else check_values (i + 1) rest
                    | SentL | SentR -> fail "sentinel value inside the chain")
              in
              if (sl_r.deleted || sr_l.deleted) && n = 0 then
                fail "sentinel marked deleted but chain is empty"
              else if sl_r.deleted && sr_l.deleted && n = 1 then
                fail "both sentinels marked but only one node present"
              else check_values 0 chain
        end
end

module Lockfree = Make (Dcas.Mem_lockfree)
module Locked = Make (Dcas.Mem_lock)
module Striped = Make (Dcas.Mem_striped)
module Sequential = Make (Dcas.Mem_seq)

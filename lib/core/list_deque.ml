(* The linked-list-based unbounded deque of Section 4 (Figures 11, 13,
   17 and the symmetric Figures 32, 33, 34).

   A doubly-linked list between two fixed sentinels SL and SR.  Pops are
   split in two atomic steps: a DCAS that "logically" deletes the
   rightmost (leftmost) node — nulling its value and setting a deleted
   bit packed into the sentinel's inward pointer word — and a later
   DCAS, performed by whichever operation next touches that side, that
   "physically" splices the node out and clears the bit.  The deleted
   bit is represented here as a [deleted] field of the immutable
   [pointer] record stored in a single memory location, mirroring the
   paper's bit packed into a pointer word via alignment.

   DCAS earns its keep in two places: the pop's simultaneous
   (sentinel-pointer, node-value) update, and the physical deletion
   when both sides contend for the last logically-deleted nodes
   (Figure 16), where the two DCASes overlap on a sentinel pointer and
   exactly one wins.

   Two typos in the published listings are corrected (see DESIGN.md):
   Figure 32 line 4 reads through the unbound [oldL] (should be
   [oldR]), and Figure 33 line 10 points the new node's L pointer at SR
   (should be SL). *)

module type ALGORITHM = List_deque_intf.ALGORITHM

module Make (M : Dcas.Memory_intf.MEMORY) = struct
  type 'a cell = Null | SentL | SentR | Item of 'a

  type 'a node = {
    left : 'a pointer M.loc;
    right : 'a pointer M.loc;
    value : 'a cell M.loc;
  }

  and 'a pointer = { ptr : 'a node_ref; deleted : bool }
  and 'a node_ref = Nil | Node of 'a node

  type 'a t = {
    sl : 'a node;
    sr : 'a node;
    alloc : Alloc.t;
    pool : 'a node list Atomic.t option;
        (* [Some _] simulates the absence of a garbage collector:
           physically deleted nodes go to this free pool and pushes
           reuse them immediately.  The paper's algorithms assume GC
           (Section 1.1, footnote 2); experiment E16 uses this mode to
           probe what that assumption actually protects. *)
  }

  let name = "list-deque/" ^ M.name

  let node_ref_equal a b =
    match (a, b) with
    | Nil, Nil -> true
    | Node x, Node y -> x == y
    | (Nil | Node _), _ -> false

  let pointer_equal a b = a.deleted = b.deleted && node_ref_equal a.ptr b.ptr

  let cell_equal a b =
    match (a, b) with
    | Null, Null | SentL, SentL | SentR, SentR -> true
    | Item x, Item y -> x == y
    | (Null | SentL | SentR | Item _), _ -> false

  let nil_pointer = { ptr = Nil; deleted = false }

  let new_raw_node () =
    {
      left = M.make ~equal:pointer_equal nil_pointer;
      right = M.make ~equal:pointer_equal nil_pointer;
      value = M.make ~equal:cell_equal Null;
    }

  (* Sentinels live as long as the deque and their inward pointers are
     touched by every operation on their side; padding keeps SL's and
     SR's hot words off each other's (and the pool's) cache lines. *)
  let new_sentinel_node () =
    {
      left = M.make_padded ~equal:pointer_equal nil_pointer;
      right = M.make_padded ~equal:pointer_equal nil_pointer;
      value = M.make_padded ~equal:cell_equal Null;
    }

  (* Dereference a pointer that the representation invariant guarantees
     is non-nil (sentinels' inward pointers and list links). *)
  let node_of = function
    | Node n -> n
    | Nil -> assert false

  let make ?(alloc = Alloc.unbounded) ?(recycle = false) () =
    let sl = new_sentinel_node () and sr = new_sentinel_node () in
    M.set_private sl.value SentL;
    M.set_private sr.value SentR;
    M.set_private sl.right { ptr = Node sr; deleted = false };
    M.set_private sr.left { ptr = Node sl; deleted = false };
    { sl; sr; alloc; pool = (if recycle then Some (Atomic.make []) else None) }

  (* Recycling pool: a Treiber stack of freed nodes. *)
  let rec pool_put pool n =
    let cur = Atomic.get pool in
    if not (Atomic.compare_and_set pool cur (n :: cur)) then pool_put pool n

  let rec pool_take pool =
    match Atomic.get pool with
    | [] -> None
    | n :: rest as cur ->
        if Atomic.compare_and_set pool cur rest then Some n else pool_take pool

  (* A node for a push: fresh, or recycled from the pool.  A recycled
     node may still be referenced by stalled operations, so its fields
     must be (re)initialized with real shared writes, not
     [set_private]. *)
  let obtain_node t =
    match t.pool with
    | None -> (new_raw_node (), true)
    | Some pool -> (
        match pool_take pool with
        | Some n -> (n, false)
        | None -> (new_raw_node (), true))

  (* A node became unreachable via a successful splice. *)
  let retire t n =
    Alloc.free t.alloc;
    match t.pool with None -> () | Some pool -> pool_put pool n

  let create ~capacity:_ () = make ()

  (* Figure 17: complete any pending right-side physical deletion.

     Retry points that follow a *failed* DCAS back off before looping:
     the failure proves another operation just won on the same words,
     so immediate retry only prolongs the convoy (Section 6 measures
     exactly this effect).  Retries after a plain re-read do not back
     off — the state may simply have been stale. *)
  let delete_right t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_l = M.get t.sr.left in
      (* line 4: someone already finished the deletion *)
      if not old_l.deleted then ()
      else begin
        let target = node_of old_l.ptr in
        let old_ll = (M.get target.left).ptr in
        let ll = node_of old_ll in
        match M.get ll.value with
        | Null ->
            (* lines 16-26: two logically deleted nodes remain; try to
               point the sentinels at each other (Figure 16). *)
            let old_r = M.get t.sl.right in
            if old_r.deleted then begin
              let new_l = { ptr = Node t.sl; deleted = false } in
              let new_r = { ptr = Node t.sr; deleted = false } in
              if M.dcas t.sr.left t.sl.right old_l old_r new_l new_r then begin
                (* both null nodes became unreachable *)
                retire t target;
                retire t (node_of old_r.ptr)
              end
              else begin
                Dcas.Backoff.once b;
                loop ()
              end
            end
            else loop ()
        | SentL | SentR | Item _ ->
            (* lines 6-14: splice out the single null node by making
               SR and its left-left neighbor point at each other. *)
            let old_llr = M.get ll.right in
            if node_ref_equal old_llr.ptr (Node target) then begin
              let new_sr_l = { ptr = old_ll; deleted = false } in
              let new_llr = { ptr = Node t.sr; deleted = false } in
              if M.dcas t.sr.left ll.right old_l old_llr new_sr_l new_llr then
                retire t target
              else begin
                Dcas.Backoff.once b;
                loop ()
              end
            end
            else loop ()
      end
    in
    loop ()

  (* Figure 34 (typos fixed): left-side physical deletion. *)
  let delete_left t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_r = M.get t.sl.right in
      if not old_r.deleted then ()
      else begin
        let target = node_of old_r.ptr in
        let old_rr = (M.get target.right).ptr in
        let rr = node_of old_rr in
        match M.get rr.value with
        | Null ->
            let old_l = M.get t.sr.left in
            if old_l.deleted then begin
              let new_r = { ptr = Node t.sr; deleted = false } in
              let new_l = { ptr = Node t.sl; deleted = false } in
              if M.dcas t.sl.right t.sr.left old_r old_l new_r new_l then begin
                retire t target;
                retire t (node_of old_l.ptr)
              end
              else begin
                Dcas.Backoff.once b;
                loop ()
              end
            end
            else loop ()
        | SentL | SentR | Item _ ->
            let old_rrl = M.get rr.left in
            if node_ref_equal old_rrl.ptr (Node target) then begin
              let new_sl_r = { ptr = old_rr; deleted = false } in
              let new_rrl = { ptr = Node t.sl; deleted = false } in
              if M.dcas t.sl.right rr.left old_r old_rrl new_sl_r new_rrl then
                retire t target
              else begin
                Dcas.Backoff.once b;
                loop ()
              end
            end
            else loop ()
      end
    in
    loop ()

  (* Figure 11: right-side pop. *)
  let pop_right t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_l = M.get t.sr.left in
      let target = node_of old_l.ptr in
      let v = M.get target.value in
      match v with
      | SentL -> `Empty (* line 5: SR points directly at SL *)
      | SentR -> assert false (* SR->L never points at SR *)
      | Null | Item _ ->
          if old_l.deleted then begin
            (* lines 6-7: finish the pending deletion, then retry *)
            delete_right t;
            loop ()
          end
          else begin
            match v with
            | Null ->
                (* lines 8-12: right neighbor logically deleted by a
                   popLeft; confirm (pointer, null) atomically and
                   report empty. *)
                if M.dcas t.sr.left target.value old_l v old_l v then `Empty
                else begin
                  Dcas.Backoff.once b;
                  loop ()
                end
            | Item x ->
                (* lines 13-19: claim the value and mark the node
                   deleted in the same DCAS. *)
                let new_l = { ptr = old_l.ptr; deleted = true } in
                if M.dcas t.sr.left target.value old_l v new_l Null then
                  `Value x
                else begin
                  Dcas.Backoff.once b;
                  loop ()
                end
            | SentL | SentR -> assert false
          end
    in
    loop ()

  (* Figure 32 (typo fixed): left-side pop. *)
  let pop_left t =
    let b = Dcas.Backoff.create () in
    let rec loop () =
      let old_r = M.get t.sl.right in
      let target = node_of old_r.ptr in
      let v = M.get target.value in
      match v with
      | SentR -> `Empty
      | SentL -> assert false
      | Null | Item _ ->
          if old_r.deleted then begin
            delete_left t;
            loop ()
          end
          else begin
            match v with
            | Null ->
                if M.dcas t.sl.right target.value old_r v old_r v then `Empty
                else begin
                  Dcas.Backoff.once b;
                  loop ()
                end
            | Item x ->
                let new_r = { ptr = old_r.ptr; deleted = true } in
                if M.dcas t.sl.right target.value old_r v new_r Null then
                  `Value x
                else begin
                  Dcas.Backoff.once b;
                  loop ()
                end
            | SentL | SentR -> assert false
          end
    in
    loop ()

  (* Figure 13: right-side push. *)
  let push_right t v =
    if not (Alloc.try_alloc t.alloc) then `Full (* lines 2-3, footnote 3 *)
    else begin
      let nn, fresh = obtain_node t in
      let init = if fresh then M.set_private else M.set in
      let b = Dcas.Backoff.create () in
      let rec loop () =
        let old_l = M.get t.sr.left in
        if old_l.deleted then begin
          (* lines 7-8 *)
          delete_right t;
          loop ()
        end
        else begin
          (* lines 10-15: initialize the private node, then splice it
             in between SR and its current left neighbor. *)
          let target = node_of old_l.ptr in
          init nn.right { ptr = Node t.sr; deleted = false };
          init nn.left old_l;
          init nn.value (Item v);
          let old_lr = { ptr = Node t.sr; deleted = false } in
          let new_ptr = { ptr = Node nn; deleted = false } in
          if M.dcas t.sr.left target.right old_l old_lr new_ptr new_ptr then
            `Okay
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
        end
      in
      loop ()
    end

  (* Figure 33 (typo fixed): left-side push. *)
  let push_left t v =
    if not (Alloc.try_alloc t.alloc) then `Full
    else begin
      let nn, fresh = obtain_node t in
      let init = if fresh then M.set_private else M.set in
      let b = Dcas.Backoff.create () in
      let rec loop () =
        let old_r = M.get t.sl.right in
        if old_r.deleted then begin
          delete_left t;
          loop ()
        end
        else begin
          let target = node_of old_r.ptr in
          init nn.left { ptr = Node t.sl; deleted = false };
          init nn.right old_r;
          init nn.value (Item v);
          let old_rl = { ptr = Node t.sl; deleted = false } in
          let new_ptr = { ptr = Node nn; deleted = false } in
          if M.dcas t.sl.right target.left old_r old_rl new_ptr new_ptr then
            `Okay
          else begin
            Dcas.Backoff.once b;
            loop ()
          end
        end
      in
      loop ()
    end

  (* --- Quiescent inspection (tests and invariant checks only) --- *)

  let unsafe_to_list t =
    let rec walk node acc =
      match M.get node.value with
      | SentR -> List.rev acc
      | SentL | Null -> walk (node_of (M.get node.right).ptr) acc
      | Item v -> walk (node_of (M.get node.right).ptr) (v :: acc)
    in
    walk (node_of (M.get t.sl.right).ptr) []

  (* Executable rendition of the representation invariant of Figures 24
     and 25: the nodes from SL to SR form a consistent doubly-linked
     chain of distinct nodes; deleted bits appear only on the
     sentinels' inward pointers; a node holds null iff it is the
     neighbor of a sentinel whose inward pointer is marked deleted; all
     other interior nodes hold real values.  Quiescent use only. *)
  let check_invariant t =
    let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
    let max_nodes = 1_000_000 in
    if not (cell_equal (M.get t.sl.value) SentL) then fail "SL value corrupted"
    else if not (cell_equal (M.get t.sr.value) SentR) then
      fail "SR value corrupted"
    else begin
      let sl_r = M.get t.sl.right and sr_l = M.get t.sr.left in
      (* collect the chain left-to-right, excluding sentinels *)
      let rec collect node acc n =
        if n > max_nodes then Error "chain too long (cycle?)"
        else if node == t.sr then Ok (List.rev acc)
        else collect (node_of (M.get node.right).ptr) (node :: acc) (n + 1)
      in
      match collect (node_of sl_r.ptr) [] 0 with
      | Error e -> Error e
      | Ok chain -> (
          (* distinctness *)
          let distinct =
            let rec go = function
              | [] -> true
              | x :: rest -> (not (List.memq x rest)) && go rest
            in
            go chain
          in
          if not distinct then fail "chain contains a repeated node"
          else begin
            (* doubly-linked consistency incl. sentinels, and interior
               pointer bits all false *)
            let full_chain = (t.sl :: chain) @ [ t.sr ] in
            let rec check_links = function
              | a :: (b :: _ as rest) ->
                  let ar = M.get a.right and bl = M.get b.left in
                  if not (node_ref_equal ar.ptr (Node b)) then
                    fail "right pointer does not reach next node"
                  else if not (node_ref_equal bl.ptr (Node a)) then
                    fail "left pointer does not reach previous node"
                  else if ar.deleted && a != t.sl then
                    fail "deleted bit on interior right pointer"
                  else if bl.deleted && b != t.sr then
                    fail "deleted bit on interior left pointer"
                  else check_links rest
              | [ _ ] | [] -> Ok ()
            in
            match check_links full_chain with
            | Error e -> Error e
            | Ok () ->
                (* null-value placement per the four conjuncts of
                   Figure 25 *)
                let n = List.length chain in
                let nulls_expected_left = if sl_r.deleted then 1 else 0 in
                let nulls_expected_right = if sr_l.deleted then 1 else 0 in
                let rec check_values i = function
                  | [] -> Ok ()
                  | node :: rest -> (
                      let is_left_null = i = 0 && nulls_expected_left = 1 in
                      let is_right_null =
                        i = n - 1 && nulls_expected_right = 1
                      in
                      match M.get node.value with
                      | Null ->
                          if is_left_null || is_right_null then
                            check_values (i + 1) rest
                          else fail "null value on an unmarked interior node"
                      | Item _ ->
                          if is_left_null || is_right_null then
                            fail "marked neighbor of sentinel holds a value"
                          else check_values (i + 1) rest
                      | SentL | SentR -> fail "sentinel value inside the chain")
                in
                if sl_r.deleted && n = 0 then
                  fail "SL marked deleted but chain is empty"
                else if sr_l.deleted && n = 0 then
                  fail "SR marked deleted but chain is empty"
                else if sl_r.deleted && sr_l.deleted && n = 1 then
                  fail "both sentinels marked but only one node present"
                else check_values 0 chain
          end)
    end
end

(* Ready-made instantiations on the four memory models. *)
module Lockfree = Make (Dcas.Mem_lockfree)
module Locked = Make (Dcas.Mem_lock)
module Striped = Make (Dcas.Mem_striped)
module Sequential = Make (Dcas.Mem_seq)

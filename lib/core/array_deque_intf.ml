(* Module type of the array-based deque algorithm (shared between
   array_deque.ml and its interface).  See array_deque.mli for the
   documented version. *)

module type ALGORITHM = sig
  type 'a t

  val name : string
  val make : ?hints:bool -> length:int -> unit -> 'a t
  val create : capacity:int -> unit -> 'a t
  val push_right : 'a t -> 'a -> Deque_intf.push_result
  val push_left : 'a t -> 'a -> Deque_intf.push_result
  val pop_right : 'a t -> 'a Deque_intf.pop_result
  val pop_left : 'a t -> 'a Deque_intf.pop_result
  val unsafe_to_list : 'a t -> 'a list
  val check_invariant : 'a t -> (unit, string) result
end

module type BATCHED = sig
  include ALGORITHM

  val push_many_right : 'a t -> 'a list -> int
  (** [push_many_right t vs] atomically pushes a prefix of [vs] from
      the right and returns its length [j].  Linearizes as [j]
      consecutive single pushes; [j < List.length vs] only if the
      deque was full once those [j] items were in. *)

  val push_many_left : 'a t -> 'a list -> int

  val pop_many_right : 'a t -> int -> 'a list
  (** [pop_many_right t k] atomically pops up to [k] items from the
      right, returned in pop order (rightmost first).  Linearizes as
      [j] consecutive single pops; fewer than [k] only if the deque
      was empty after them. *)

  val pop_many_left : 'a t -> int -> 'a list
end

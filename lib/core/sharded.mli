(** A sharded deque service front end (ROADMAP item 3): K per-core
    deques behind one routing surface, judged by requests-under-SLO
    rather than single-structure ops/s (experiment E24).

    Each shard is a {!Policy.Make} wrapper, so deadlines surface as
    [`Timeout] and full shards degrade per the configured
    {!Policy.full_policy} before the router adds cross-shard overflow
    (pushes) and steal-based rebalancing (pops) on top.  Urgent
    operations use the left end, bulk ones the right — the
    double-ended priority usage of Fatourou et al. (PAPERS.md).

    The composite is {e not} linearizable to a single deque: routing
    and stealing reorder across shards by design.  Its correctness
    story is conservation — no value lost, none duplicated — plus each
    shard's own linearizability, model-checked by the [sharded]
    scenario and soak-tested under fault storms by E24. *)

type stats = {
  pushed : int;  (** external pushes that landed, across all shards *)
  popped : int;  (** external pops served, across all shards *)
  rerouted : int;  (** pushes placed cross-shard after a full home *)
  stolen : int;  (** items moved between shards by rebalancing *)
  adopted : int;  (** items drained out of quarantined shards *)
  per_shard_pushed : int array;
  per_shard_popped : int array;
      (** per-shard landings/serves — feed
          {!Harness.Metrics.Starvation} for imbalance *)
}

val pp_stats : Format.formatter -> stats -> unit

val mix : int -> int
(** The SplitMix-style affinity hash finalizer (pure; exposed for the
    routing-determinism property test). *)

module Make (D : Deque_intf.S) : sig
  module P : module type of Policy.Make (D)
  (** The per-shard wrapper, exposed so quiescent inspection can reach
      each shard's primary deque and overflow list. *)

  type 'a t

  val name : string

  val create :
    ?full:Policy.full_policy ->
    ?steal_batch:int ->
    shards:int ->
    capacity:int ->
    unit ->
    'a t
  (** [full] (default {!Policy.Reject}) and [capacity] configure every
      shard's policy wrapper; [steal_batch] (default 8) bounds how many
      items one rebalancing pop may transfer.

      @raise Invalid_argument if [shards < 1] or [steal_batch < 1]. *)

  val shards : 'a t -> int

  val shard_of : 'a t -> key:int -> int
  (** Home shard for [key] — the pure affinity hash, ignoring
      liveness. *)

  val route : 'a t -> key:int -> int
  (** Home shard, or the next live shard probing upward when the home
      is quarantined (the home itself when every shard is down). *)

  val push :
    ?deadline:float -> ?urgent:bool -> 'a t -> key:int -> 'a ->
    Policy.push_outcome
  (** Push [v] for [key]: urgent entries use the left end, bulk
      (default) the right.  The home shard's policy runs first
      (deadline → [`Timeout], Retry/Spill at capacity); a surviving
      [`Full] triggers one undeadlined attempt on each other live
      shard before [`Full] is surfaced. *)

  val note_sojourn : 'a t -> shard:int -> ns:float -> unit
  (** Report one request's end-to-end sojourn (enqueue to serve, or to
      shed) against its home [shard].  Feeds the {!Policy.Lat} sketch
      behind {!admit}; wait-free, safe from any domain. *)

  val sojourn_p99_ns : 'a t -> shard:int -> float option
  (** Upper-bound estimate of [shard]'s p99 sojourn in nanoseconds;
      [None] until enough observations (32) have been recorded. *)

  val admit : 'a t -> key:int -> budget:float -> bool
  (** Admission control (E25): [false] when the home shard's observed
      p99 sojourn already exceeds [budget] seconds — a request enqueued
      now would almost surely expire before being served, so the caller
      should shed it before pushing.  Admits during cold start (too few
      observations). *)

  val pop :
    ?deadline:float -> ?urgent:bool -> 'a t -> key:int ->
    'a Policy.pop_outcome
  (** Pop for [key]: urgent serves the left end (urgent entries first,
      then the oldest bulk), bulk serves the right (newest bulk).  An
      empty home shard triggers a steal scan that transfers up to
      [steal_batch] items from the first non-empty peer — quarantined
      shards included, which is how items stranded by a crash stay
      reachable — serving one and parking the rest on the home shard;
      a fully empty scan checks the limbo stash last.  With a
      [deadline], the whole routed operation (home + scan + stash)
      retries with backoff until the budget is spent; exhausting the
      budget on no-finds returns [`Empty] (a certified full no-find
      scan — consumers' quiescence certificates depend on it), never
      [`Timeout]. *)

  val quarantine : 'a t -> shard:int -> unit
  (** Take [shard] out of routing (its deque remains safe storage). *)

  val revive : 'a t -> shard:int -> unit
  (** Put [shard] back in rotation (a replacement owner exists). *)

  val alive : 'a t -> shard:int -> bool

  val adopt : 'a t -> shard:int -> int
  (** Drain a quarantined shard into the survivors (round-robin from
      its right neighbour); returns the number of items moved, [0]
      when no live shard exists to receive them.  Never blocks: an
      item that no live shard will take (all at capacity under
      {!Policy.Reject}) is parked back on the source shard and ends
      the adoption early — and if a straggler push that routed before
      the quarantine stole that freed slot mid-drain (the shards are
      then over-committed), the item escapes to the limbo stash
      instead of re-placing forever.  Safe concurrently with traffic;
      a push that raced the quarantine, or an early end, can leave
      items on the quarantined shard — they stay reachable via the
      steal scan. *)

  val limbo_list : 'a t -> 'a list
  (** Quiescent-only inspection: items currently parked in the limbo
      stash — the unbounded last-resort side list used by adoption and
      rebalancing park-backs when every bounded shard is at capacity,
      so the control plane terminates instead of spinning.  Pops drain
      it (after the steal scan) and {!drain} empties it; normally
      empty. *)

  val stats : 'a t -> stats
  (** Service-level counters.  Internal transfers (steals, adoption)
      are counted separately from external landings/serves, so
      [pushed - popped] is the number of items resident at
      quiescence. *)

  val shard : 'a t -> int -> 'a P.t
  (** Quiescent-only inspection hook: the [i]th shard's policy
      wrapper. *)

  val drain : 'a t -> 'a list
  (** Quiescent-only: pop every shard dry (left end; primary then
      overflow), then the limbo stash, and return the values.  Leaves
      service counters untouched, so
      [stats.pushed - stats.popped = length (drain t)] is the
      conservation check. *)
end

(* Shared machinery for the experiment tables: a bechamel wrapper that
   turns named thunks into ns/op estimates, closure handles over every
   deque implementation (so each experiment ranges over implementations
   uniformly), and a multi-domain throughput driver built on
   Harness.Runner. *)

open Bechamel
open Toolkit

(* --- Micro-benchmarks (single-thread ns/op) via bechamel --- *)

let ns_per_op ?(quota = 0.5) (cases : (string * (unit -> unit)) list) :
    (string * float) list =
  let tests =
    List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) cases
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"" ~fmt:"%s%s" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  List.map
    (fun (name, _) ->
      let est =
        match Hashtbl.find_opt results name with
        | Some t -> (
            match Analyze.OLS.estimates t with
            | Some (e :: _) -> e
            | Some [] | None -> Float.nan)
        | None -> Float.nan
      in
      (name, est))
    cases

(* --- Uniform closure handles over implementations --- *)

type handle = {
  h_name : string;
  push_right : int -> bool;  (* true = okay *)
  push_left : int -> bool;
  pop_right : unit -> bool;  (* true = got a value *)
  pop_left : unit -> bool;
}

type factory = { f_name : string; make : capacity:int -> prefill:int -> handle }

let prefill_handle h ~prefill =
  (* alternate ends so the content straddles the array's start point *)
  for i = 1 to prefill do
    let ok = if i mod 2 = 0 then h.push_right i else h.push_left i in
    if not ok then invalid_arg "prefill exceeded capacity"
  done;
  h

let of_array (module A : Deque.Array_deque.ALGORITHM) ?hints () : factory =
  let base_name =
    match hints with
    | Some false -> A.name ^ "(no-hints)"
    | Some true | None -> A.name
  in
  {
    f_name = base_name;
    make =
      (fun ~capacity ~prefill ->
        let d = A.make ?hints ~length:capacity () in
        prefill_handle ~prefill
          {
            h_name = base_name;
            push_right = (fun v -> A.push_right d v = `Okay);
            push_left = (fun v -> A.push_left d v = `Okay);
            pop_right = (fun () -> A.pop_right d <> `Empty);
            pop_left = (fun () -> A.pop_left d <> `Empty);
          });
  }

let of_list (module L : Deque.List_deque.ALGORITHM) : factory =
  {
    f_name = L.name;
    make =
      (fun ~capacity:_ ~prefill ->
        let d = L.make () in
        prefill_handle ~prefill
          {
            h_name = L.name;
            push_right = (fun v -> L.push_right d v = `Okay);
            push_left = (fun v -> L.push_left d v = `Okay);
            pop_right = (fun () -> L.pop_right d <> `Empty);
            pop_left = (fun () -> L.pop_left d <> `Empty);
          });
  }

let of_list_dummy (module L : Deque.List_deque_dummy.ALGORITHM) : factory =
  {
    f_name = L.name;
    make =
      (fun ~capacity:_ ~prefill ->
        let d = L.make () in
        prefill_handle ~prefill
          {
            h_name = L.name;
            push_right = (fun v -> L.push_right d v = `Okay);
            push_left = (fun v -> L.push_left d v = `Okay);
            pop_right = (fun () -> L.pop_right d <> `Empty);
            pop_left = (fun () -> L.pop_left d <> `Empty);
          });
  }

let of_general (module D : Deque.Deque_intf.S) : factory =
  {
    f_name = D.name;
    make =
      (fun ~capacity ~prefill ->
        let d = D.create ~capacity () in
        prefill_handle ~prefill
          {
            h_name = D.name;
            push_right = (fun v -> D.push_right d v = `Okay);
            push_left = (fun v -> D.push_left d v = `Okay);
            pop_right = (fun () -> D.pop_right d <> `Empty);
            pop_left = (fun () -> D.pop_left d <> `Empty);
          });
  }

let of_greenwald_v1 (module G : Baselines.Greenwald_v1.ALGORITHM) : factory =
  {
    f_name = G.name;
    make =
      (fun ~capacity ~prefill ->
        let d = G.make ~length:capacity () in
        prefill_handle ~prefill
          {
            h_name = G.name;
            push_right = (fun v -> G.push_right d v = `Okay);
            push_left = (fun v -> G.push_left d v = `Okay);
            pop_right = (fun () -> G.pop_right d <> `Empty);
            pop_left = (fun () -> G.pop_left d <> `Empty);
          });
  }

(* --- Multi-domain throughput --- *)

(* Total completed operations per second under [mix], with [threads]
   domains hammering one instance for [duration] seconds. *)
let mixed_throughput ~threads ~duration ~mix (factory : factory) ~capacity
    ~prefill =
  let h = factory.make ~capacity ~prefill in
  let r =
    Harness.Runner.run ~threads ~duration (fun ~tid ~rng ->
        ignore
          (Harness.Workload.apply
             ~push_right:(fun v -> if h.push_right v then `Okay else `Full)
             ~push_left:(fun v -> if h.push_left v then `Okay else `Full)
             ~pop_right:(fun () -> if h.pop_right () then `Value 0 else `Empty)
             ~pop_left:(fun () -> if h.pop_left () then `Value 0 else `Empty)
             mix rng tid))
  in
  Harness.Runner.throughput r

(* Dedicated-ends throughput: even threads work the right end, odd
   threads the left end (half pushes, half pops on their own end).
   This is the experiment E5 workload: with truly independent ends the
   two sides do not disturb each other. *)
let two_end_throughput ~threads ~duration (factory : factory) ~capacity
    ~prefill =
  let h = factory.make ~capacity ~prefill in
  let r =
    Harness.Runner.run ~threads ~duration (fun ~tid ~rng ->
        let push = Harness.Splitmix.bool rng in
        if tid mod 2 = 0 then
          ignore (if push then h.push_right tid else h.pop_right ())
        else ignore (if push then h.push_left tid else h.pop_left ()))
  in
  Harness.Runner.throughput r

(* --- Fixed-bucket latency histogram (experiment E21) ---

   Linear buckets of [width_ns] nanoseconds, last bucket absorbing
   overflow.  The log-bucketed Harness.Metrics.Histogram (E7b) has ~2x
   resolution per bucket, which is too coarse to compare the close
   distributions of the substrate ablation; constant-width buckets keep
   p50/p99 honest at the cost of a bounded range.  Like E7b, latencies
   should be recorded for groups of operations — gettimeofday cannot
   time one sub-microsecond op. *)
module Fixed_histogram = struct
  type t = { width_ns : float; counts : int array; mutable total : int }

  let create ?(width_ns = 25.) ?(buckets = 8192) () =
    if width_ns <= 0. || buckets < 1 then
      invalid_arg "Fixed_histogram.create";
    { width_ns; counts = Array.make buckets 0; total = 0 }

  let add t ~ns =
    let i = int_of_float (ns /. t.width_ns) in
    let i = if i < 0 then 0 else min i (Array.length t.counts - 1) in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let count t = t.total

  let merge a b =
    if a.width_ns <> b.width_ns || Array.length a.counts <> Array.length b.counts
    then invalid_arg "Fixed_histogram.merge: shapes differ";
    {
      width_ns = a.width_ns;
      counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
      total = a.total + b.total;
    }

  (* Upper bound of the bucket containing quantile [q] (0 < q <= 1), so
     quantiles are monotone in [q] by construction. *)
  let quantile_ns t q =
    if t.total = 0 then Float.nan
    else begin
      let target = max 1 (int_of_float (ceil (q *. float_of_int t.total))) in
      let last = Array.length t.counts - 1 in
      let rec go i seen =
        let seen = seen + t.counts.(i) in
        if seen >= target || i >= last then float_of_int (i + 1) *. t.width_ns
        else go (i + 1) seen
      in
      go 0 0
    end
end

let header title =
  Printf.printf "\n=== %s ===\n" title

let note fmt = Printf.printf (fmt ^^ "\n")

(* --- Machine-readable output (--json) ---

   Experiments push structured rows here while printing their human
   tables; the driver drains the accumulator after each experiment and
   files the rows under that experiment's id in the output document.
   With no sink installed (no --json flag) emission is a no-op. *)

let json_enabled = ref false
let json_acc : Harness.Json.t list ref = ref []

let emit_json row = if !json_enabled then json_acc := row :: !json_acc

let drain_json () =
  let rows = List.rev !json_acc in
  json_acc := [];
  rows

(* The experiment tables E1-E17 (see DESIGN.md section 5 for the map
   from paper artifact to experiment).  Each experiment prints one or
   more tables; EXPERIMENTS.md quotes and discusses the output.  The
   [quick] flag shrinks durations and sample counts for smoke runs. *)

open Bench_support

let dur ~quick base = if quick then base /. 4. else base
let cnt ~quick base = if quick then base / 4 else base

(* Implementations used across experiments. *)
let array_lockfree = of_array (module Deque.Array_deque.Lockfree) ()
let array_nohints = of_array (module Deque.Array_deque.Lockfree) ~hints:false ()
let array_locked = of_array (module Deque.Array_deque.Locked) ()
let array_striped = of_array (module Deque.Array_deque.Striped) ()
let list_lockfree = of_list (module Deque.List_deque.Lockfree)
let list_locked = of_list (module Deque.List_deque.Locked)
let list_striped = of_list (module Deque.List_deque.Striped)
let dummy_lockfree = of_list_dummy (module Deque.List_deque_dummy.Lockfree)
let lock_deque = of_general (module Baselines.Lock_deque)
let spin_deque = of_general (module Baselines.Spin_deque)
let greenwald1 = of_greenwald_v1 (module Baselines.Greenwald_v1.Lockfree)

let fmt_tp = Harness.Table.ops_per_sec
let fmt_ns = Harness.Table.ns

(* ------------------------------------------------------------------ *)
(* E1: array boundary behaviour (Figures 4, 7, 8)                      *)
(* ------------------------------------------------------------------ *)

let e1 ~quick =
  header "E1  array deque: boundary and wraparound behaviour (Figs 4/7/8)";
  let ops_count = cnt ~quick 200_000 in
  let rows =
    List.map
      (fun length ->
        let module A = Deque.Array_deque.Lockfree in
        let d = A.make ~length () in
        let oracle = ref (Spec.Seq_deque.make ~capacity:length ()) in
        let rng = Harness.Splitmix.create ~seed:(length * 31) in
        let okay = ref 0 and full = ref 0 and got = ref 0 and empty = ref 0 in
        let agree = ref true in
        for i = 1 to ops_count do
          let op =
            match Harness.Splitmix.int rng ~bound:4 with
            | 0 -> Spec.Op.Push_right i
            | 1 -> Spec.Op.Push_left i
            | 2 -> Spec.Op.Pop_right
            | _ -> Spec.Op.Pop_left
          in
          let res =
            match op with
            | Spec.Op.Push_right v ->
                Deque.Deque_intf.res_of_push (A.push_right d v)
            | Spec.Op.Push_left v ->
                Deque.Deque_intf.res_of_push (A.push_left d v)
            | Spec.Op.Pop_right -> Deque.Deque_intf.res_of_pop (A.pop_right d)
            | Spec.Op.Pop_left -> Deque.Deque_intf.res_of_pop (A.pop_left d)
          in
          (match res with
          | Spec.Op.Okay -> incr okay
          | Spec.Op.Full -> incr full
          | Spec.Op.Got _ -> incr got
          | Spec.Op.Empty -> incr empty);
          let oracle', expect = Spec.Seq_deque.apply !oracle op in
          oracle := oracle';
          if not (Spec.Op.equal_res Int.equal res expect) then agree := false
        done;
        let inv =
          match A.check_invariant d with Ok () -> "ok" | Error e -> e
        in
        [
          string_of_int length;
          string_of_int ops_count;
          string_of_int !okay;
          string_of_int !full;
          string_of_int !got;
          string_of_int !empty;
          (if !agree then "yes" else "NO");
          inv;
        ])
      [ 1; 2; 8; 64 ]
  in
  Harness.Table.print
    ~headers:[ "length"; "ops"; "okay"; "full"; "got"; "empty"; "=oracle"; "invariant" ]
    rows;
  note "every response agrees with the Section 2.2 oracle across %d ops/row"
    ops_count

(* ------------------------------------------------------------------ *)
(* E2: contended pops on a single element (Figures 5/6)                *)
(* ------------------------------------------------------------------ *)

let winner_stats scenario ~samples ~seed =
  (* run random schedules and record which thread won the element *)
  let right = ref 0 and left = ref 0 and other = ref 0 in
  let state = ref (seed lor 1) in
  let rand bound =
    let s = !state in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    state := s land max_int;
    !state mod bound
  in
  for _ = 1 to samples do
    let decide _depth enabled = rand (List.length enabled) in
    let report = Modelcheck.Explorer.run_schedule scenario ~decide in
    Array.iter
      (fun (e : (int Spec.Op.op, int Spec.Op.res) Spec.History.entry) ->
        match (e.op, e.result) with
        | Spec.Op.Pop_right, Spec.Op.Got _ -> incr right
        | Spec.Op.Pop_left, Spec.Op.Got _ -> incr left
        | _, _ -> ())
      report.Modelcheck.Explorer.history;
    if false then incr other
  done;
  (!right, !left, !other)

let e2 ~quick =
  header "E2  popRight vs popLeft racing for the last element (Figs 5/6)";
  let samples = cnt ~quick 20_000 in
  let rows =
    List.map
      (fun (label, scenario) ->
        let outcome = Modelcheck.Explorer.explore scenario in
        let verdict =
          match outcome.Modelcheck.Explorer.error with
          | None -> "linearizable"
          | Some f -> "FAILED: " ^ f.Modelcheck.Explorer.reason
        in
        let r, l, _ = winner_stats scenario ~samples ~seed:17 in
        [
          label;
          string_of_int outcome.Modelcheck.Explorer.schedules;
          (if outcome.Modelcheck.Explorer.exhaustive then "yes" else "no");
          verdict;
          Printf.sprintf "%d (%.1f%%)" r
            (100. *. float_of_int r /. float_of_int samples);
          Printf.sprintf "%d (%.1f%%)" l
            (100. *. float_of_int l /. float_of_int samples);
          string_of_int (samples - r - l);
        ])
      [
        ( "array",
          Modelcheck.Scenario.array_deque ~name:"fig6a" ~length:4
            ~prefill:[ 42 ]
            [ [ Spec.Op.Pop_right ]; [ Spec.Op.Pop_left ] ] );
        ( "array(no-hints)",
          Modelcheck.Scenario.array_deque ~hints:false ~name:"fig6nh" ~length:4
            ~prefill:[ 42 ]
            [ [ Spec.Op.Pop_right ]; [ Spec.Op.Pop_left ] ] );
        ( "list",
          Modelcheck.Scenario.list_deque ~name:"fig6l" ~prefill:[ 42 ]
            [ [ Spec.Op.Pop_right ]; [ Spec.Op.Pop_left ] ] );
        ( "list-dummy",
          Modelcheck.Scenario.list_deque_dummy ~name:"fig6d" ~prefill:[ 42 ]
            [ [ Spec.Op.Pop_right ]; [ Spec.Op.Pop_left ] ] );
      ]
  in
  Harness.Table.print
    ~headers:
      [ "deque"; "schedules"; "exhaustive"; "verdict"; "right wins"; "left wins"; "neither" ]
    rows;
  note "exactly one side wins in every schedule (right+left = %d samples)"
    samples

(* ------------------------------------------------------------------ *)
(* E3: the list deque's empty-state family and contending deletes      *)
(* ------------------------------------------------------------------ *)

let e3 ~quick =
  ignore quick;
  header "E3  list deque: Figure 9 empty states and Figure 16 deletes";
  let open Spec.Op in
  let scenarios =
    [
      ( "plain empty: pop/pop",
        Modelcheck.Scenario.list_deque ~name:"s0" ~prefill:[]
          [ [ Pop_right ]; [ Pop_left ] ] );
      ( "right-deleted: push/pop contend",
        Modelcheck.Scenario.list_deque ~name:"s1" ~prefill:[ 1 ]
          ~setup:[ Pop_right ]
          [ [ Push_right 2 ]; [ Pop_right ] ] );
      ( "left-deleted: push/pop contend",
        Modelcheck.Scenario.list_deque ~name:"s2" ~prefill:[ 1 ]
          ~setup:[ Pop_left ]
          [ [ Push_left 2 ]; [ Pop_left ] ] );
      ( "two deleted: contending deletes (Fig 16)",
        Modelcheck.Scenario.list_deque ~name:"s3" ~prefill:[ 1; 2 ]
          ~setup:[ Pop_right; Pop_left ]
          [ [ Push_right 3 ]; [ Push_left 4 ] ] );
      ( "two deleted: deletes raced by pops",
        Modelcheck.Scenario.list_deque ~name:"s4" ~prefill:[ 1; 2 ]
          ~setup:[ Pop_right; Pop_left ]
          [ [ Pop_right ]; [ Pop_left ] ] );
      ( "dummy variant: contending deletes",
        Modelcheck.Scenario.list_deque_dummy ~name:"s5" ~prefill:[ 1; 2 ]
          ~setup:[ Pop_right; Pop_left ]
          [ [ Push_right 3 ]; [ Push_left 4 ] ] );
    ]
  in
  let rows =
    List.map
      (fun (label, s) ->
        let t0 = Unix.gettimeofday () in
        let o = Modelcheck.Explorer.explore s in
        [
          label;
          string_of_int o.Modelcheck.Explorer.schedules;
          (if o.Modelcheck.Explorer.exhaustive then "yes" else "no");
          (match o.Modelcheck.Explorer.error with
          | None -> "invariant + linearizable"
          | Some f -> "FAILED: " ^ f.Modelcheck.Explorer.reason);
          Printf.sprintf "%.2fs" (Unix.gettimeofday () -. t0);
        ])
      scenarios
  in
  Harness.Table.print
    ~headers:[ "scenario"; "schedules"; "exhaustive"; "verdict"; "time" ]
    rows;
  note "RepInv (Figs 18/24/25) checked after every shared-memory step"

(* ------------------------------------------------------------------ *)
(* E4: primitive cost hierarchy (Section 2 assumption)                 *)
(* ------------------------------------------------------------------ *)

let e4 ~quick =
  header "E4  primitive latencies: read < write < CAS < DCAS (Section 2)";
  let quota = if quick then 0.2 else 0.5 in
  let mem_cases (module M : Dcas.Memory_intf.MEMORY) =
    let r = M.make 0 in
    let w = M.make 0 in
    let a = M.make 0 and b = M.make 0 in
    let m1 = M.make 0 and m2 = M.make 0 in
    [
      (M.name ^ "/read", fun () -> ignore (M.get r));
      (M.name ^ "/write", fun () -> M.set w 0);
      (M.name ^ "/dcas-hit", fun () -> ignore (M.dcas a b 0 0 0 0));
      (M.name ^ "/dcas-miss", fun () -> ignore (M.dcas m1 m2 1 1 0 0));
    ]
  in
  let atomic_cases =
    let x = Atomic.make 0 in
    [
      ("atomic/read", fun () -> ignore (Atomic.get x));
      ("atomic/write", fun () -> Atomic.set x 0);
      ("atomic/cas-hit", fun () -> ignore (Atomic.compare_and_set x 0 0));
      ("atomic/cas-miss", fun () -> ignore (Atomic.compare_and_set x 1 0));
    ]
  in
  let cases =
    atomic_cases
    @ mem_cases (module Dcas.Mem_lockfree)
    @ mem_cases (module Dcas.Mem_lock)
    @ mem_cases (module Dcas.Mem_striped)
    @ mem_cases (module Dcas.Mem_seq)
  in
  let results = ns_per_op ~quota cases in
  Harness.Table.print ~headers:[ "operation"; "ns/op" ]
    (List.map (fun (n, ns) -> [ n; fmt_ns ns ]) results);
  note "single-thread, uncontended; hardware CAS baseline on top"

(* ------------------------------------------------------------------ *)
(* E5: uninterrupted concurrent access to both ends                    *)
(* ------------------------------------------------------------------ *)

let e5 ~quick =
  header "E5  two-end independence: ours vs Greenwald v1 (ends serialized)";
  let duration = dur ~quick 0.4 in
  let capacity = 4096 and prefill = 2048 in
  let factories = [ array_lockfree; greenwald1; lock_deque; spin_deque ] in
  let rows =
    List.map
      (fun f ->
        Dcas.Mem_lockfree.reset_stats ();
        let t1 = two_end_throughput ~threads:1 ~duration f ~capacity ~prefill in
        let t2 = two_end_throughput ~threads:2 ~duration f ~capacity ~prefill in
        let t4 = two_end_throughput ~threads:4 ~duration f ~capacity ~prefill in
        let s = Dcas.Mem_lockfree.stats () in
        let success_rate =
          if s.Dcas.Memory_intf.dcas_attempts = 0 then "-"
          else
            Harness.Table.pct
              (float_of_int s.Dcas.Memory_intf.dcas_successes
              /. float_of_int s.Dcas.Memory_intf.dcas_attempts)
        in
        [
          f.f_name;
          fmt_tp t1;
          fmt_tp t2;
          fmt_tp t4;
          Harness.Table.ratio (t2 /. t1);
          success_rate;
        ])
      factories
  in
  Harness.Table.print
    ~headers:
      [ "implementation"; "1 thr"; "2 thr (ends)"; "4 thr"; "2t/1t"; "dcas ok" ]
    rows;
  note
    "even threads use the right end, odd the left (single-core box: the\n\
     throughput deltas mostly reflect per-op cost, not parallelism)";
  (* The hardware-independent signal: over ALL interleavings of one
     right-end op against one left-end op, does either ever have to
     retry?  DCAS attempts beyond one per operation mean the ends
     interfered.  The paper's deque never retries; Greenwald v1's
     packed index word forces retries. *)
  let interference scenario =
    let min_a = ref max_int and max_a = ref 0 and schedules = ref 0 in
    let on_schedule (_ : Modelcheck.Explorer.run_report) =
      let s = Modelcheck.Mem_model.stats () in
      let a = s.Dcas.Memory_intf.dcas_attempts in
      if a < !min_a then min_a := a;
      if a > !max_a then max_a := a;
      incr schedules;
      Modelcheck.Mem_model.reset_stats ()
    in
    Modelcheck.Mem_model.reset_stats ();
    let o = Modelcheck.Explorer.explore ~on_schedule scenario in
    (o, !min_a, !max_a, !schedules)
  in
  let open Spec.Op in
  let rows =
    List.map
      (fun (label, scenario) ->
        let o, min_a, max_a, _ = interference scenario in
        [
          label;
          string_of_int o.Modelcheck.Explorer.schedules;
          string_of_int min_a;
          string_of_int max_a;
          (if max_a > min_a then "ends interfere" else "never a retry");
        ])
      [
        ( "array (paper)",
          Modelcheck.Scenario.array_deque ~name:"i1" ~length:8
            ~prefill:[ 1; 2; 3; 4 ]
            [ [ Push_right 9 ]; [ Push_left 8 ] ] );
        ( "greenwald-v1",
          Modelcheck.Scenario.greenwald_v1 ~name:"i2" ~length:8
            ~prefill:[ 1; 2; 3; 4 ]
            [ [ Push_right 9 ]; [ Push_left 8 ] ] );
      ]
  in
  Printf.printf "\ninterference across ALL interleavings (1 op per end):\n";
  Harness.Table.print
    ~headers:[ "implementation"; "schedules"; "min dcas"; "max dcas"; "verdict" ]
    rows;
  note
    "counts include the 4 prefill pushes; with 4 items between the ends the\n\
     paper's deque needs the same minimal DCAS count under EVERY schedule,\n\
     while v1's single index word forces retries when the ends interleave"

(* ------------------------------------------------------------------ *)
(* E6: Greenwald v2's false boundary reports                           *)
(* ------------------------------------------------------------------ *)

let e6 ~quick =
  ignore quick;
  header "E6  Greenwald v2: false 'full' with one element (Section 1.1)";
  let open Spec.Op in
  let threads =
    [ [ Push_right 9 ]; [ Pop_left; Push_right 8 ] ]
  in
  let rows =
    List.map
      (fun (label, outcome) ->
        [
          label;
          string_of_int outcome.Modelcheck.Explorer.schedules;
          (match outcome.Modelcheck.Explorer.error with
          | None -> "linearizable (exhaustive)"
          | Some f ->
              Printf.sprintf "FAILS (%s)" f.Modelcheck.Explorer.reason);
        ])
      [
        ( "greenwald-v2 (no boundary confirm)",
          Modelcheck.Explorer.explore
            (Modelcheck.Scenario.greenwald_v2 ~name:"g2" ~length:2
               ~prefill:[ 7 ] threads) );
        ( "paper's array deque, same scenario",
          Modelcheck.Explorer.explore
            (Modelcheck.Scenario.array_deque ~name:"ours" ~length:2
               ~prefill:[ 7 ] threads) );
      ]
  in
  Harness.Table.print ~headers:[ "algorithm"; "schedules"; "verdict" ] rows;
  note
    "v2 concludes 'full' from two separate reads; the paper's confirming\n\
     no-op DCAS (Fig 3 lines 6-10) makes the same scenario linearizable"

(* ------------------------------------------------------------------ *)
(* E7: array vs list trade-off across mixes and threads                *)
(* ------------------------------------------------------------------ *)

let e7 ~quick =
  header "E7  array vs linked-list deque across workloads";
  let duration = dur ~quick 0.35 in
  let capacity = 1024 and prefill = 512 in
  let mixes =
    [
      ("balanced", Harness.Workload.balanced);
      ("push-heavy", Harness.Workload.push_heavy);
      ("pop-heavy", Harness.Workload.pop_heavy);
      ("fifo", Harness.Workload.fifo);
      ("lifo-right", Harness.Workload.lifo_right);
    ]
  in
  let factories = [ array_lockfree; list_lockfree; dummy_lockfree ] in
  List.iter
    (fun (mix_name, mix) ->
      let rows =
        List.map
          (fun f ->
            let tp t =
              mixed_throughput ~threads:t ~duration ~mix f ~capacity ~prefill
            in
            let t1 = tp 1 and t2 = tp 2 and t4 = tp 4 in
            [ f.f_name; fmt_tp t1; fmt_tp t2; fmt_tp t4 ])
          factories
      in
      Printf.printf "\n-- mix: %s --\n" mix_name;
      Harness.Table.print
        ~headers:[ "implementation"; "1 thr"; "2 thr"; "4 thr" ]
        rows)
    mixes;
  note
    "\nexpected shape: array wins (no allocation, one DCAS per pop);\n\
     the list pays the split pop's extra DCAS plus allocation, and buys\n\
     unbounded capacity"

(* Latency distribution under contention: each worker times batches of
   operations and feeds the per-batch mean into its own log-bucketed
   histogram (gettimeofday is too coarse for single sub-microsecond
   operations); histograms merge after the run.  Complements E7's
   throughput shape with tail behaviour — retry loops under contention
   show up in p99, not in the mean. *)
let e7_latency ~quick =
  header "E7b latency distribution under contention (4 threads, balanced mix)";
  let duration = dur ~quick 0.6 in
  let batch = 64 in
  let measure (factory : factory) =
    let h = factory.make ~capacity:1024 ~prefill:512 in
    let histograms =
      Array.init 4 (fun _ -> Harness.Metrics.Histogram.create ())
    in
    let _r =
      Harness.Runner.run ~threads:4 ~duration (fun ~tid ~rng ->
          let t0 = Harness.Metrics.now () in
          for _ = 1 to batch do
            ignore
              (Harness.Workload.apply
                 ~push_right:(fun v -> if h.push_right v then `Okay else `Full)
                 ~push_left:(fun v -> if h.push_left v then `Okay else `Full)
                 ~pop_right:(fun () ->
                   if h.pop_right () then `Value 0 else `Empty)
                 ~pop_left:(fun () -> if h.pop_left () then `Value 0 else `Empty)
                 Harness.Workload.balanced rng tid)
          done;
          let ns =
            (Harness.Metrics.now () -. t0) *. 1e9 /. float_of_int batch
          in
          Harness.Metrics.Histogram.add histograms.(tid)
            ~ns:(int_of_float (Float.max 1. ns)))
    in
    Array.fold_left Harness.Metrics.Histogram.merge
      (Harness.Metrics.Histogram.create ())
      histograms
  in
  let rows =
    List.map
      (fun f ->
        let hist = measure f in
        [
          f.f_name;
          fmt_ns (Harness.Metrics.Histogram.mean_ns hist);
          fmt_ns (Harness.Metrics.Histogram.quantile_ns hist 0.5);
          fmt_ns (Harness.Metrics.Histogram.quantile_ns hist 0.99);
        ])
      [ array_lockfree; list_lockfree; dummy_lockfree; lock_deque ]
  in
  Harness.Table.print
    ~headers:
      [ "implementation"; "mean/op"; "p50 (bucket)"; "p99 (bucket)" ]
    rows;
  note
    "per-batch means of %d ops; p99 >> p50 indicates retry storms or\n\
     preemption inside operations (quantiles are bucket upper bounds, 2x wide)"
    batch

(* ------------------------------------------------------------------ *)
(* E8: work-stealing application (Arora et al. [4])                    *)
(* ------------------------------------------------------------------ *)

let e8 ~quick =
  header "E8  work-stealing scheduler: restricted ABP vs general deques";
  let n = if quick then 25 else 30 in
  let schedulers :
      (string * (module Worksteal.Worksteal_intf.SCHEDULER)) list =
    [
      ("abp (CAS only)", (module Worksteal.Scheduler.Abp_scheduler));
      ("array-dcas", (module Worksteal.Scheduler.Array_scheduler));
      ("list-dcas", (module Worksteal.Scheduler.List_scheduler));
      ("lock", (module Worksteal.Scheduler.Lock_scheduler));
    ]
  in
  let rec seq_fib n = if n < 2 then n else seq_fib (n - 1) + seq_fib (n - 2) in
  let expect = seq_fib n in
  let rows =
    List.map
      (fun (name, (module S : Worksteal.Worksteal_intf.SCHEDULER)) ->
        let module W = Worksteal.Workloads.Make (S) in
        let run workers =
          let t0 = Unix.gettimeofday () in
          let got = W.fib ~workers ~capacity:65536 n in
          let dt = Unix.gettimeofday () -. t0 in
          assert (got = expect);
          dt
        in
        let t1 = run 1 and t2 = run 2 and t4 = run 4 in
        [
          name;
          Printf.sprintf "%.3fs" t1;
          Printf.sprintf "%.3fs" t2;
          Printf.sprintf "%.3fs" t4;
        ])
      schedulers
  in
  Printf.printf "workload: fib %d (result %d)\n" n expect;
  Harness.Table.print ~headers:[ "deque"; "1 worker"; "2 workers"; "4 workers" ] rows;
  note
    "ABP's restricted CAS-only deque is the cheapest, as Section 1.1\n\
     concedes; the general DCAS deques pay for unrestricted two-end access"

(* ------------------------------------------------------------------ *)
(* E9: resilience to stalls (non-blocking claim)                       *)
(* ------------------------------------------------------------------ *)

module Stalling_mem = Harness.Stall.Mem_stalling (Dcas.Mem_lockfree)
module Stalling_array = Deque.Array_deque.Make (Stalling_mem)

let e9 ~quick =
  header "E9  throughput while one thread stalls mid-operation";
  let duration = dur ~quick 1.2 in
  let stall = 0.05 in
  (* lock-free: staller sleeps between two shared accesses of a push *)
  let lockfree_run ~with_staller =
    let d = Stalling_array.make ~length:1024 () in
    for i = 1 to 512 do
      ignore (Stalling_array.push_right d i)
    done;
    let stop = Atomic.make false in
    let staller =
      Domain.spawn (fun () ->
          while not (Atomic.get stop) do
            if with_staller then begin
              Harness.Stall.request ~after_ops:2 ~duration:stall;
              ignore (Stalling_array.push_right d 0)
            end
            else Unix.sleepf stall
          done)
    in
    let r =
      Harness.Runner.run ~threads:2 ~duration (fun ~tid ~rng ->
          ignore
            (Harness.Workload.apply
               ~push_right:(fun v ->
                 if Stalling_array.push_right d v = `Okay then `Okay else `Full)
               ~push_left:(fun v ->
                 if Stalling_array.push_left d v = `Okay then `Okay else `Full)
               ~pop_right:(fun () ->
                 match Stalling_array.pop_right d with
                 | `Value _ -> `Value 0
                 | `Empty -> `Empty)
               ~pop_left:(fun () ->
                 match Stalling_array.pop_left d with
                 | `Value _ -> `Value 0
                 | `Empty -> `Empty)
               Harness.Workload.balanced rng tid))
    in
    Atomic.set stop true;
    Domain.join staller;
    Harness.Runner.throughput r
  in
  (* lock-based: staller sleeps holding the deque's mutex *)
  let lock_run ~with_staller =
    let d = Baselines.Lock_deque.create ~capacity:1024 () in
    for i = 1 to 512 do
      ignore (Baselines.Lock_deque.push_right d i)
    done;
    let stop = Atomic.make false in
    let staller =
      Domain.spawn (fun () ->
          while not (Atomic.get stop) do
            if with_staller then
              Baselines.Lock_deque.with_lock_held d (fun () ->
                  Unix.sleepf stall)
            else Unix.sleepf stall
          done)
    in
    let r =
      Harness.Runner.run ~threads:2 ~duration (fun ~tid ~rng ->
          ignore
            (Harness.Workload.apply
               ~push_right:(fun v ->
                 if Baselines.Lock_deque.push_right d v = `Okay then `Okay
                 else `Full)
               ~push_left:(fun v ->
                 if Baselines.Lock_deque.push_left d v = `Okay then `Okay
                 else `Full)
               ~pop_right:(fun () ->
                 match Baselines.Lock_deque.pop_right d with
                 | `Value _ -> `Value 0
                 | `Empty -> `Empty)
               ~pop_left:(fun () ->
                 match Baselines.Lock_deque.pop_left d with
                 | `Value _ -> `Value 0
                 | `Empty -> `Empty)
               Harness.Workload.balanced rng tid))
    in
    Atomic.set stop true;
    Domain.join staller;
    Harness.Runner.throughput r
  in
  let rows =
    [
      (let base = lockfree_run ~with_staller:false in
       let stalled = lockfree_run ~with_staller:true in
       [
         "array-dcas (stall mid-op)";
         fmt_tp base;
         fmt_tp stalled;
         Harness.Table.pct (stalled /. base);
       ]);
      (let base = lock_run ~with_staller:false in
       let stalled = lock_run ~with_staller:true in
       [
         "lock-deque (stall in section)";
         fmt_tp base;
         fmt_tp stalled;
         Harness.Table.pct (stalled /. base);
       ]);
    ]
  in
  Harness.Table.print
    ~headers:[ "implementation"; "no staller"; "staller"; "retained" ]
    rows;
  note
    "staller sleeps %.0fms in the middle of an operation, repeatedly;\n\
     the lock holder stops the world, the DCAS deque does not" (stall *. 1000.)

(* ------------------------------------------------------------------ *)
(* E10: the optional hints of Figures 2/3 (lines 7 and 17-18)          *)
(* ------------------------------------------------------------------ *)

let e10 ~quick =
  header "E10 hints ablation: lines 7 and 17-18 of Figures 2/3";
  let quota = if quick then 0.2 else 0.4 in
  (* single-thread costs at the boundary (where the hints live) *)
  let mk ~hints =
    let module A = Deque.Array_deque.Lockfree in
    let d = A.make ~hints ~length:1 () in
    fun () ->
      (* each iteration: push into empty, fail a push (full), pop, fail
         a pop (empty): every boundary path once *)
      ignore (A.push_right d 1);
      ignore (A.push_left d 2);
      ignore (A.pop_left d);
      ignore (A.pop_right d)
  in
  let micro =
    ns_per_op ~quota
      [ ("boundary-cycle/hints", mk ~hints:true);
        ("boundary-cycle/no-hints", mk ~hints:false) ]
  in
  Harness.Table.print ~headers:[ "case"; "ns/cycle" ]
    (List.map (fun (n, v) -> [ n; fmt_ns v ]) micro);
  (* contended: DCAS traffic with and without hints *)
  let duration = dur ~quick 0.4 in
  let contended hints =
    let f = if hints then array_lockfree else array_nohints in
    Dcas.Mem_lockfree.reset_stats ();
    let tp =
      mixed_throughput ~threads:4 ~duration ~mix:Harness.Workload.balanced f
        ~capacity:2 ~prefill:1
    in
    let s = Dcas.Mem_lockfree.stats () in
    (tp, s)
  in
  let tp_h, s_h = contended true in
  let tp_n, s_n = contended false in
  let per_op (s : Dcas.Memory_intf.stats) tp =
    float_of_int s.Dcas.Memory_intf.dcas_attempts /. (tp *. duration)
  in
  Harness.Table.print
    ~headers:[ "variant"; "ops/s (4 thr, cap 2)"; "dcas/op"; "dcas ok" ]
    [
      [
        "hints";
        fmt_tp tp_h;
        Printf.sprintf "%.2f" (per_op s_h tp_h);
        Harness.Table.pct
          (float_of_int s_h.Dcas.Memory_intf.dcas_successes
          /. float_of_int (max 1 s_h.Dcas.Memory_intf.dcas_attempts));
      ];
      [
        "no-hints";
        fmt_tp tp_n;
        Printf.sprintf "%.2f" (per_op s_n tp_n);
        Harness.Table.pct
          (float_of_int s_n.Dcas.Memory_intf.dcas_successes
          /. float_of_int (max 1 s_n.Dcas.Memory_intf.dcas_attempts));
      ];
    ];
  note
    "the paper: 'Experimentation would be required to determine whether\n\
     either or both of these code fragments should be included' — here is\n\
     that experimentation on this substrate"

(* ------------------------------------------------------------------ *)
(* E11: deleted bit vs dummy nodes (footnote 4 / Figure 10)            *)
(* ------------------------------------------------------------------ *)

let e11 ~quick =
  header "E11 deleted-bit vs dummy-node encoding (Figure 10)";
  let quota = if quick then 0.2 else 0.4 in
  let module L = Deque.List_deque.Lockfree in
  let module D = Deque.List_deque_dummy.Lockfree in
  let l = L.make () in
  let d = D.make () in
  let micro =
    ns_per_op ~quota
      [
        ( "deleted-bit/push+pop",
          fun () ->
            ignore (L.push_right l 1);
            ignore (L.pop_right l) );
        ( "dummy-node/push+pop",
          fun () ->
            ignore (D.push_right d 1);
            ignore (D.pop_right d) );
      ]
  in
  (* allocation per push+pop cycle *)
  let alloc_per_cycle f =
    let cycles = 100_000 in
    let before = Gc.allocated_bytes () in
    for i = 1 to cycles do
      f i
    done;
    (Gc.allocated_bytes () -. before) /. float_of_int cycles
  in
  let l2 = L.make () and d2 = D.make () in
  let bit_alloc =
    alloc_per_cycle (fun i ->
        ignore (L.push_right l2 i);
        ignore (L.pop_right l2))
  in
  let dummy_alloc =
    alloc_per_cycle (fun i ->
        ignore (D.push_right d2 i);
        ignore (D.pop_right d2))
  in
  let duration = dur ~quick 0.4 in
  let tp f =
    mixed_throughput ~threads:4 ~duration ~mix:Harness.Workload.balanced f
      ~capacity:1024 ~prefill:64
  in
  let tp_bit = tp list_lockfree and tp_dummy = tp dummy_lockfree in
  Harness.Table.print
    ~headers:[ "encoding"; "ns/cycle (1 thr)"; "bytes/cycle"; "ops/s (4 thr)" ]
    [
      [
        "deleted-bit";
        fmt_ns (List.assoc "deleted-bit/push+pop" micro);
        Printf.sprintf "%.0f" bit_alloc;
        fmt_tp tp_bit;
      ];
      [
        "dummy-node";
        fmt_ns (List.assoc "dummy-node/push+pop" micro);
        Printf.sprintf "%.0f" dummy_alloc;
        fmt_tp tp_dummy;
      ];
    ];
  note
    "the dummy encoding trades the pointer tag bit for one extra\n\
     allocation per pop (the dummy), visible in bytes/cycle"

(* ------------------------------------------------------------------ *)
(* E12: one algorithm, four DCAS substrates                            *)
(* ------------------------------------------------------------------ *)

let e12 ~quick =
  header "E12 the same deques over each DCAS implementation (Section 2.1)";
  let duration = dur ~quick 0.35 in
  let groups =
    [
      ("array", [ array_lockfree; array_locked; array_striped ]);
      ("list", [ list_lockfree; list_locked; list_striped ]);
    ]
  in
  List.iter
    (fun (g, factories) ->
      let rows =
        List.map
          (fun f ->
            let tp t =
              mixed_throughput ~threads:t ~duration
                ~mix:Harness.Workload.balanced f ~capacity:1024 ~prefill:512
            in
            let t1 = tp 1 and t4 = tp 4 in
            [ f.f_name; fmt_tp t1; fmt_tp t4; Harness.Table.ratio (t4 /. t1) ])
          factories
      in
      Printf.printf "\n-- %s deque --\n" g;
      Harness.Table.print
        ~headers:[ "substrate"; "1 thr"; "4 thr"; "4t/1t" ]
        rows)
    groups;
  note
    "\nthe global lock serializes even reads; stripes recover most of it;\n\
     the lock-free CASN costs more per op but never blocks (cf. E9/E14)"

(* ------------------------------------------------------------------ *)
(* E13: verification volume (Theorems 3.1/4.1, empirically)            *)
(* ------------------------------------------------------------------ *)

let e13 ~quick =
  header "E13 verification volume: exhaustive + recorded histories";
  let open Spec.Op in
  (* exhaustive side: the scenario battery *)
  let battery =
    [
      ( "array fig6",
        Modelcheck.Scenario.array_deque ~name:"b1" ~length:4 ~prefill:[ 1 ]
          [ [ Pop_right ]; [ Pop_left ] ] );
      ( "array 3-thread",
        Modelcheck.Scenario.array_deque ~name:"b2" ~length:3 ~prefill:[ 1 ]
          [ [ Pop_right ]; [ Pop_left ]; [ Push_right 9 ] ] );
      ( "list fig16",
        Modelcheck.Scenario.list_deque ~name:"b3" ~prefill:[ 1; 2 ]
          ~setup:[ Pop_right; Pop_left ]
          [ [ Push_right 3 ]; [ Push_left 4 ] ] );
      ( "list push/push",
        Modelcheck.Scenario.list_deque ~name:"b4" ~prefill:[]
          [ [ Push_right 1 ]; [ Push_left 2 ] ] );
    ]
  in
  let rows =
    List.map
      (fun (label, s) ->
        let o = Modelcheck.Explorer.explore s in
        [
          label;
          string_of_int o.Modelcheck.Explorer.schedules;
          (match o.Modelcheck.Explorer.error with
          | None -> "ok"
          | Some f -> "FAILED: " ^ f.Modelcheck.Explorer.reason);
        ])
      battery
  in
  Harness.Table.print ~headers:[ "scenario"; "schedules"; "verdict" ] rows;
  (* recorded-history side *)
  let rounds = cnt ~quick 60 in
  let threads = 3 and ops_per_thread = 8 in
  (* Full value-tracked rounds (same machinery as the test suite). *)
  let value_rounds label (make_apply : unit -> int Spec.Op.op -> int Spec.Op.res)
      ~capacity =
    let failures = ref 0 in
    let total_ops = ref 0 in
    for seed = 1 to rounds do
      let apply = make_apply () in
      let recorder = Spec.History.Recorder.create ~threads in
      let master = Harness.Splitmix.create ~seed in
      let rngs = Array.init threads (fun _ -> Harness.Splitmix.split master) in
      let started = Atomic.make 0 in
      let worker tid () =
        let rng = rngs.(tid) in
        Atomic.incr started;
        while Atomic.get started < threads do
          Domain.cpu_relax ()
        done;
        for i = 1 to ops_per_thread do
          let op =
            match Harness.Splitmix.int rng ~bound:4 with
            | 0 -> Push_right ((tid * 1000) + i)
            | 1 -> Push_left ((tid * 1000) + i)
            | 2 -> Pop_right
            | _ -> Pop_left
          in
          ignore
            (Spec.History.Recorder.record recorder ~thread:tid op (fun () ->
                 apply op))
        done
      in
      let ds = List.init threads (fun tid -> Domain.spawn (worker tid)) in
      List.iter Domain.join ds;
      total_ops := !total_ops + (threads * ops_per_thread);
      match
        Spec.Linearizability.check_deque ?capacity
          (Spec.History.Recorder.history recorder)
      with
      | Ok _ -> ()
      | Error () -> incr failures
    done;
    [ label; string_of_int rounds; string_of_int !total_ops;
      string_of_int !failures ]
  in
  let array_apply () =
    let module A = Deque.Array_deque.Lockfree in
    let d = A.make ~length:4 () in
    fun (op : int Spec.Op.op) ->
      match op with
      | Push_right v -> Deque.Deque_intf.res_of_push (A.push_right d v)
      | Push_left v -> Deque.Deque_intf.res_of_push (A.push_left d v)
      | Pop_right -> Deque.Deque_intf.res_of_pop (A.pop_right d)
      | Pop_left -> Deque.Deque_intf.res_of_pop (A.pop_left d)
  in
  let list_apply () =
    let module L = Deque.List_deque.Lockfree in
    let d = L.make () in
    fun (op : int Spec.Op.op) ->
      match op with
      | Push_right v -> Deque.Deque_intf.res_of_push (L.push_right d v)
      | Push_left v -> Deque.Deque_intf.res_of_push (L.push_left d v)
      | Pop_right -> Deque.Deque_intf.res_of_pop (L.pop_right d)
      | Pop_left -> Deque.Deque_intf.res_of_pop (L.pop_left d)
  in
  Harness.Table.print
    ~headers:[ "implementation"; "rounds"; "ops checked"; "failures" ]
    [
      value_rounds "array (3 domains, recorded)" array_apply ~capacity:(Some 4);
      value_rounds "list (3 domains, recorded)" list_apply ~capacity:None;
    ];
  note "Wing&Gong checking of real concurrent histories, plus the battery above"

(* ------------------------------------------------------------------ *)
(* E14: lock-freedom stall points                                      *)
(* ------------------------------------------------------------------ *)

let e14 ~quick =
  ignore quick;
  header "E14 lock-freedom: every stall point of a victim survived";
  let open Spec.Op in
  let cases =
    [
      ( "array, victim pushes+pops",
        Modelcheck.Scenario.array_deque ~name:"n1" ~length:3 ~prefill:[ 1 ]
          [ [ Pop_right; Push_right 2 ]; [ Pop_left ]; [ Push_left 3 ] ],
        0 );
      ( "list, victim pops (split deletion)",
        Modelcheck.Scenario.list_deque ~name:"n2" ~prefill:[ 1; 2 ]
          [ [ Pop_right; Push_right 3 ]; [ Pop_left ]; [ Push_left 4 ] ],
        0 );
      ( "list, victim completes Fig 16 deletes",
        Modelcheck.Scenario.list_deque ~name:"n3" ~prefill:[ 1; 2 ]
          ~setup:[ Pop_right; Pop_left ]
          [ [ Push_right 3 ]; [ Push_left 4 ]; [ Pop_right ] ],
        0 );
      ( "dummy variant",
        Modelcheck.Scenario.list_deque_dummy ~name:"n4" ~prefill:[ 1; 2 ]
          ~setup:[ Pop_right; Pop_left ]
          [ [ Push_right 3 ]; [ Push_left 4 ] ],
        1 );
    ]
  in
  let rows =
    List.map
      (fun (label, scenario, victim) ->
        match Modelcheck.Explorer.check_nonblocking scenario ~victim with
        | Ok n -> [ label; string_of_int n; "all completed" ]
        | Error j -> [ label; string_of_int j; "BLOCKED" ])
      cases
  in
  Harness.Table.print
    ~headers:[ "scenario (victim frozen mid-operation)"; "stall points"; "others" ]
    rows;
  note
    "for contrast, a lock-based deque fails this by construction: a victim\n\
     frozen inside the critical section blocks every other thread (E9)"

(* ------------------------------------------------------------------ *)
(* E15: substrate scaling sweep (tentpole of the adaptive-substrate    *)
(* work): throughput and DCAS fate per domain count and substrate      *)
(* ------------------------------------------------------------------ *)

let e15 ~quick =
  header "E15 substrate scaling: throughput and DCAS fate vs domains";
  (* Cost of the pre-validation fast path, measured directly: a DCAS
     whose expected values are already stale returns false from two
     plain reads — no descriptor, no helping, no allocation.  The
     success path allocates and walks the full protocol, so the gap is
     what a contended retry loop saves per doomed attempt. *)
  let quota = if quick then 0.2 else 0.4 in
  let a = Dcas.Mem_lockfree.make 0 and b = Dcas.Mem_lockfree.make 0 in
  let micro =
    ns_per_op ~quota
      [
        ( "fastfail",
          fun () -> ignore (Dcas.Mem_lockfree.dcas a b 1 1 2 2) );
        ( "success",
          fun () ->
            let va = Dcas.Mem_lockfree.get a and vb = Dcas.Mem_lockfree.get b in
            ignore (Dcas.Mem_lockfree.dcas a b va vb (va + 1) (vb + 1)) );
      ]
  in
  Dcas.Mem_lockfree.reset_stats ();
  let n_forced = cnt ~quick 10_000 in
  for _ = 1 to n_forced do
    ignore (Dcas.Mem_lockfree.dcas a b (-1) (-1) 0 0)
  done;
  let forced = Dcas.Mem_lockfree.stats () in
  Harness.Table.print
    ~headers:[ "dcas outcome"; "ns/op"; "allocates" ]
    [
      [ "fail via pre-validation"; fmt_ns (List.assoc "fastfail" micro); "no" ];
      [ "success (descriptor path)"; fmt_ns (List.assoc "success" micro); "yes" ];
    ];
  note "forced-stale sanity: %d attempts -> %d fast-fails (no descriptor built)"
    forced.Dcas.Memory_intf.dcas_attempts
    forced.Dcas.Memory_intf.dcas_fastfails;
  (* The sweep proper: one array deque per (substrate, domain-count)
     cell, all domains hammering both ends of a deliberately small
     deque (capacity 16) so the index words stay contended.  The stats
     columns attribute every DCAS attempt: committed, killed early by
     pre-validation, or killed late by the full protocol. *)
  let duration = dur ~quick 0.4 in
  let substrates =
    [
      ("lockfree", array_lockfree, Dcas.Mem_lockfree.reset_stats,
       Dcas.Mem_lockfree.stats);
      ("striped", array_striped, Dcas.Mem_striped.reset_stats,
       Dcas.Mem_striped.stats);
      ("locked", array_locked, Dcas.Mem_lock.reset_stats, Dcas.Mem_lock.stats);
    ]
  in
  let domain_counts = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let rows =
    List.concat_map
      (fun (sname, factory, reset, stats) ->
        List.map
          (fun domains ->
            reset ();
            let tp =
              mixed_throughput ~threads:domains ~duration
                ~mix:Harness.Workload.balanced factory ~capacity:16 ~prefill:8
            in
            let s = stats () in
            let open Dcas.Memory_intf in
            let rate part whole =
              if whole = 0 then 0. else float_of_int part /. float_of_int whole
            in
            emit_json
              (Harness.Json.Obj
                 [
                   ("experiment", Harness.Json.String "e15");
                   ("substrate", Harness.Json.String sname);
                   ("domains", Harness.Json.Int domains);
                   ("ops_per_sec", Harness.Json.Float tp);
                   ("dcas_attempts", Harness.Json.Int s.dcas_attempts);
                   ("dcas_successes", Harness.Json.Int s.dcas_successes);
                   ("dcas_fastfails", Harness.Json.Int s.dcas_fastfails);
                 ]);
            [
              sname;
              string_of_int domains;
              fmt_tp tp;
              Harness.Table.pct (rate s.dcas_successes s.dcas_attempts);
              string_of_int s.dcas_fastfails;
              Harness.Table.pct (rate s.dcas_fastfails s.dcas_attempts);
            ])
          domain_counts)
      substrates
  in
  Harness.Table.print
    ~headers:
      [ "substrate"; "domains"; "ops/s"; "dcas ok"; "fastfails"; "fastfail" ]
    rows;
  note
    "single instance, capacity 16, balanced two-end mix; 'fastfail' counts\n\
     doomed DCASes rejected by pre-validation before any descriptor is\n\
     allocated (lockfree substrate only; lock-based substrates have no\n\
     slow path to skip)"

(* ------------------------------------------------------------------ *)
(* E17: what a 3-word CAS would buy (extension; Section 6's question)  *)
(* ------------------------------------------------------------------ *)

let casn3_lockfree = of_list_dummy (module Deque.List_deque_casn.Lockfree)

let e17 ~quick =
  header "E17 extension: DCAS split pop vs single 3-word-CAS pop";
  let quota = if quick then 0.2 else 0.4 in
  (* atomic-operation count per pop, on the sequential substrate *)
  let ops_per_pop label prefill_push pop delete =
    Dcas.Mem_seq.reset_stats ();
    prefill_push ();
    let before = (Dcas.Mem_seq.stats ()).Dcas.Memory_intf.dcas_attempts in
    pop ();
    delete ();
    let after = (Dcas.Mem_seq.stats ()).Dcas.Memory_intf.dcas_attempts in
    (label, after - before)
  in
  let module L = Deque.List_deque.Sequential in
  let module C = Deque.List_deque_casn.Sequential in
  let l = L.make () and c = C.make () in
  let counts =
    [
      ops_per_pop "dcas-split"
        (fun () -> ignore (L.push_right l 1))
        (fun () -> ignore (L.pop_right l))
        (fun () -> L.delete_right l);
      ops_per_pop "3cas-direct"
        (fun () -> ignore (C.push_right c 1))
        (fun () -> ignore (C.pop_right c))
        (fun () -> C.delete_right c);
    ]
  in
  (* single-thread cycle latency on the lock-free substrate *)
  let module Ll = Deque.List_deque.Lockfree in
  let module Dl = Deque.List_deque_dummy.Lockfree in
  let module Cl = Deque.List_deque_casn.Lockfree in
  let ll = Ll.make () and dl = Dl.make () and cl = Cl.make () in
  let micro =
    ns_per_op ~quota
      [
        ( "dcas-split/push+pop",
          fun () ->
            ignore (Ll.push_right ll 1);
            ignore (Ll.pop_right ll) );
        ( "dcas-dummy/push+pop",
          fun () ->
            ignore (Dl.push_right dl 1);
            ignore (Dl.pop_right dl) );
        ( "3cas-direct/push+pop",
          fun () ->
            ignore (Cl.push_right cl 1);
            ignore (Cl.pop_right cl) );
      ]
  in
  let duration = dur ~quick 0.4 in
  let tp f =
    mixed_throughput ~threads:4 ~duration ~mix:Harness.Workload.balanced f
      ~capacity:1024 ~prefill:64
  in
  let tp_split = tp list_lockfree in
  let tp_dummy = tp dummy_lockfree in
  let tp_casn = tp casn3_lockfree in
  Harness.Table.print
    ~headers:
      [ "pop strategy"; "atomic ops/uncontended pop"; "ns/push+pop (1 thr)";
        "ops/s (4 thr)" ]
    [
      [
        "dcas split (paper, Section 4)";
        string_of_int (List.assoc "dcas-split" counts);
        fmt_ns (List.assoc "dcas-split/push+pop" micro);
        fmt_tp tp_split;
      ];
      [
        "dcas split + dummy nodes (Fig 10)";
        "-";
        fmt_ns (List.assoc "dcas-dummy/push+pop" micro);
        fmt_tp tp_dummy;
      ];
      [
        "single 3-word CAS (extension)";
        string_of_int (List.assoc "3cas-direct" counts);
        fmt_ns (List.assoc "3cas-direct/push+pop" micro);
        fmt_tp tp_casn;
      ];
    ];
  note
    "the 3CAS pop eliminates the split (no deleted bits, no delete\n\
     procedures) at the price of a wider atomic operation; its third\n\
     entry is a neighborhood validation DCAS cannot express (the 2-entry\n\
     variant is provably unsound: see test_list_deque_casn.ml)"

(* ------------------------------------------------------------------ *)
(* E16: what does the GC assumption protect? (Section 1.1, footnote 2) *)
(* ------------------------------------------------------------------ *)

let e16 ~quick =
  header "E16 node recycling: probing the paper's GC assumption";
  let open Spec.Op in
  (* model-check the recycling variant on ABA-friendly scenarios:
     freed nodes reused immediately, with repeated values so a stale
     expectation could match a recycled node *)
  let scenarios =
    [
      ( "popR;pushR(2) vs popL, prefill [2]",
        Modelcheck.Scenario.list_deque ~recycle:true ~name:"r2" ~prefill:[ 2 ]
          [ [ Pop_right; Push_right 2 ]; [ Pop_left ] ] );
      ( "popL;pushR(1) vs popR, prefill [1]",
        Modelcheck.Scenario.list_deque ~recycle:true ~name:"r3" ~prefill:[ 1 ]
          [ [ Pop_left; Push_right 1 ]; [ Pop_right ] ] );
      ( "pending deletion + pushR(2) vs popR",
        Modelcheck.Scenario.list_deque ~recycle:true ~name:"r4"
          ~prefill:[ 1; 2 ] ~setup:[ Pop_right ]
          [ [ Push_right 2 ]; [ Pop_right ] ] );
      ( "both deleted + same-value pushes",
        Modelcheck.Scenario.list_deque ~recycle:true ~name:"r5"
          ~prefill:[ 1; 2 ] ~setup:[ Pop_right; Pop_left ]
          [ [ Push_right 2 ]; [ Push_left 1 ] ] );
    ]
  in
  let max_schedules = if quick then 300_000 else 2_000_000 in
  let rows =
    List.map
      (fun (label, s) ->
        let o = Modelcheck.Explorer.explore ~max_schedules s in
        [
          label;
          string_of_int o.Modelcheck.Explorer.schedules;
          (if o.Modelcheck.Explorer.exhaustive then "yes" else "no");
          (match o.Modelcheck.Explorer.error with
          | None -> "no violation"
          | Some f -> "VIOLATION: " ^ f.Modelcheck.Explorer.reason);
        ])
      scenarios
  in
  Harness.Table.print
    ~headers:[ "scenario (recycle, repeated values)"; "schedules"; "exhaustive"; "verdict" ]
    rows;
  (* multiset-conservation stress under recycling with a tiny value
     domain (maximizing recycled-node value coincidences) *)
  let module L = Deque.List_deque.Lockfree in
  let q = L.make ~recycle:true () in
  let n_vals = 3 in
  let iters = cnt ~quick 40_000 in
  let pushed = Array.init 4 (fun _ -> Array.make n_vals 0) in
  let popped = Array.init 4 (fun _ -> Array.make n_vals 0) in
  let _ =
    Harness.Runner.run_fixed ~threads:4 ~iters (fun ~tid ~rng ~i:_ ->
        let v = Harness.Splitmix.int rng ~bound:n_vals in
        match Harness.Splitmix.int rng ~bound:4 with
        | 0 ->
            if L.push_right q v = `Okay then
              pushed.(tid).(v) <- pushed.(tid).(v) + 1
        | 1 ->
            if L.push_left q v = `Okay then
              pushed.(tid).(v) <- pushed.(tid).(v) + 1
        | 2 -> (
            match L.pop_right q with
            | `Value v -> popped.(tid).(v) <- popped.(tid).(v) + 1
            | `Empty -> ())
        | _ -> (
            match L.pop_left q with
            | `Value v -> popped.(tid).(v) <- popped.(tid).(v) + 1
            | `Empty -> ()))
  in
  let remaining = L.unsafe_to_list q in
  let conserved = ref true in
  for v = 0 to n_vals - 1 do
    let p = Array.fold_left (fun a t -> a + t.(v)) 0 pushed in
    let g = Array.fold_left (fun a t -> a + t.(v)) 0 popped in
    let rem = List.length (List.filter (fun x -> x = v) remaining) in
    if p <> g + rem then conserved := false
  done;
  let inv = match L.check_invariant q with Ok () -> "ok" | Error e -> e in
  Printf.printf
    "\nstress (4 threads x %d ops, values in {0,1,2}): multiset conserved = %b, invariant %s\n"
    iters !conserved inv;
  note
    "NEGATIVE RESULT: immediate node reuse produces no observable ABA in\n\
     any explored schedule — every DCAS in the Section 4 algorithm\n\
     (pointer word incl. bit + value cell, or two pointer words) fully\n\
     pins the state it relies on, so a recycled node that matches the\n\
     expectations IS in the expected configuration.  The paper's GC\n\
     assumption therefore buys memory safety (no dangling reads in an\n\
     unmanaged language), not ABA protection, for this algorithm.\n\
     Caveat: bounded exploration (2-3 threads, small windows), not a proof"

(* ------------------------------------------------------------------ *)
(* E21: allocation-lean DCAS2 fast path and batched transfers          *)
(* ------------------------------------------------------------------ *)

(* Minor-heap words allocated per iteration of [f] on the calling
   domain ([Gc.minor_words] is a per-domain cumulative counter). *)
let minor_words_per_op ~n f =
  Gc.minor ();
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    f ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int n

let e21 ~quick =
  header "E21 allocation-lean DCAS2 and batched transfers";
  let module M = Dcas.Mem_lockfree in
  let module A = Deque.Array_deque.Lockfree in
  let finite f = if Float.is_finite f then f else 0. in
  let paths = [ ("dcas2", true); ("generic", false) ] in
  (* --- Section A: the two-location slow path, specialized flat
     descriptor vs generic entry-array CASN, single domain,
     uncontended.  "write" changes both words (the shape of a
     successful push/pop); "confirm" is a no-op on both (the shape of
     the empty/full boundary confirmations), where value elision also
     removes both release allocations. *)
  let quota = if quick then 0.2 else 0.4 in
  let n_alloc = cnt ~quick 100_000 in
  let alloc_rows =
    List.concat_map
      (fun (pname, flag) ->
        M.set_dcas2_enabled flag;
        let a = M.make 0 and b = M.make 0 in
        let write () =
          let va = M.get a and vb = M.get b in
          ignore (M.dcas a b va vb (va + 1) (vb + 1))
        in
        let confirm () =
          let va = M.get a and vb = M.get b in
          ignore (M.dcas a b va vb va vb)
        in
        let cases = [ ("write", write); ("confirm", confirm) ] in
        let micro = ns_per_op ~quota cases in
        List.map
          (fun (op, f) ->
            let mw = minor_words_per_op ~n:n_alloc f in
            M.reset_stats ();
            for _ = 1 to n_alloc do
              f ()
            done;
            let s = M.stats () in
            let per c = float_of_int c /. float_of_int n_alloc in
            let ns = List.assoc op micro in
            emit_json
              (Harness.Json.Obj
                 [
                   ("experiment", Harness.Json.String "e21");
                   ("section", Harness.Json.String "alloc");
                   ("path", Harness.Json.String pname);
                   ("op", Harness.Json.String op);
                   ("ops_per_sec", Harness.Json.Float (finite (1e9 /. ns)));
                   ("ns_per_op", Harness.Json.Float (finite ns));
                   ("minor_words_per_op", Harness.Json.Float mw);
                   ( "dcas2_hits_per_op",
                     Harness.Json.Float (per s.Dcas.Memory_intf.dcas2_hits) );
                   ( "descriptor_allocs_per_op",
                     Harness.Json.Float (per s.Dcas.Memory_intf.descriptor_allocs)
                   );
                   ( "value_allocs_per_op",
                     Harness.Json.Float (per s.Dcas.Memory_intf.value_allocs) );
                 ]);
            [
              pname;
              op;
              fmt_ns ns;
              Printf.sprintf "%.1f" mw;
              Printf.sprintf "%.2f" (per s.Dcas.Memory_intf.dcas2_hits);
              Printf.sprintf "%.2f" (per s.Dcas.Memory_intf.descriptor_allocs);
              Printf.sprintf "%.2f" (per s.Dcas.Memory_intf.value_allocs);
            ])
          cases)
      paths
  in
  M.set_dcas2_enabled true;
  Harness.Table.print
    ~headers:
      [
        "path"; "dcas op"; "ns/op"; "minor w/op"; "dcas2/op"; "desc/op"; "value/op";
      ]
    alloc_rows;
  note
    "uncontended successful DCAS on two int locations; 'confirm' is the\n\
     no-op shape of the deques' boundary checks, where value elision\n\
     reinstalls the original blocks and skips both release allocations";
  (* --- Section B: symmetric batch traffic over one array deque,
     2 domains, batch sizes 1/4/16 on both substrate paths.  Each
     domain pushes a k-batch onto its end and pops a k-batch off the
     other end (tid 0 right-in/left-out, tid 1 left-in/right-out), so a
     domain running alone still makes progress — on few-core hosts a
     dedicated producer/consumer pair degenerates into spinning at the
     full/empty boundary for whole scheduler quanta, which measures the
     scheduler and not the deque.  Latency is recorded per group of
     ~2x64 items and divided down (gettimeofday cannot time one
     sub-microsecond op; same device as E7b), into the fixed-bucket
     histogram.  Conservation is exact: every item pushed is either
     popped or still in the deque. *)
  let duration = dur ~quick 0.4 in
  let capacity = 256 in
  let batch_rows =
    List.concat_map
      (fun (pname, flag) ->
        M.set_dcas2_enabled flag;
        List.map
          (fun k ->
            let d = A.make ~length:capacity () in
            let batch = List.init k (fun i -> i) in
            let pushed = Dcas.Padding.make_atomic 0 in
            let popped = Dcas.Padding.make_atomic 0 in
            let hists =
              Array.init 2 (fun _ ->
                  Fixed_histogram.create ~width_ns:50. ~buckets:32768 ())
            in
            let group = max 1 (64 / k) in
            let r =
              Harness.Runner.run ~threads:2 ~duration (fun ~tid ~rng:_ ->
                  let t0 = Harness.Metrics.now () in
                  let got_in = ref 0 and got_out = ref 0 in
                  if tid = 0 then
                    for _ = 1 to group do
                      got_in := !got_in + A.push_many_right d batch;
                      got_out := !got_out + List.length (A.pop_many_left d k)
                    done
                  else
                    for _ = 1 to group do
                      got_in := !got_in + A.push_many_left d batch;
                      got_out := !got_out + List.length (A.pop_many_right d k)
                    done;
                  let dt_ns = (Harness.Metrics.now () -. t0) *. 1e9 in
                  let moved = !got_in + !got_out in
                  if moved > 0 then
                    Fixed_histogram.add hists.(tid)
                      ~ns:(dt_ns /. float_of_int moved);
                  ignore (Atomic.fetch_and_add pushed !got_in);
                  ignore (Atomic.fetch_and_add popped !got_out))
            in
            let rec drain acc =
              match A.pop_many_left d capacity with
              | [] -> acc
              | l -> drain (acc + List.length l)
            in
            let remaining = drain 0 in
            let pushed = Atomic.get pushed and popped = Atomic.get popped in
            let tp =
              float_of_int (pushed + popped) /. r.Harness.Runner.elapsed
            in
            let h = Fixed_histogram.merge hists.(0) hists.(1) in
            let q p =
              if Fixed_histogram.count h = 0 then 0.
              else finite (Fixed_histogram.quantile_ns h p)
            in
            let p50 = q 0.5 and p99 = q 0.99 in
            (* allocation per item, measured quiescently on one domain
               (minor words are per-domain counters) *)
            let mw =
              let d2 = A.make ~length:capacity () in
              let cycles = max 1 (cnt ~quick 40_000 / k) in
              minor_words_per_op ~n:cycles (fun () ->
                  ignore (A.push_many_right d2 batch);
                  ignore (A.pop_many_left d2 k))
              /. float_of_int (2 * k)
            in
            emit_json
              (Harness.Json.Obj
                 [
                   ("experiment", Harness.Json.String "e21");
                   ("section", Harness.Json.String "batch");
                   ("path", Harness.Json.String pname);
                   ("k", Harness.Json.Int k);
                   ("domains", Harness.Json.Int 2);
                   ("ops_per_sec", Harness.Json.Float tp);
                   ("p50_ns", Harness.Json.Float p50);
                   ("p99_ns", Harness.Json.Float p99);
                   ("minor_words_per_op", Harness.Json.Float mw);
                   ("pushed", Harness.Json.Int pushed);
                   ("popped", Harness.Json.Int popped);
                   ("remaining", Harness.Json.Int remaining);
                 ]);
            [
              pname;
              string_of_int k;
              fmt_tp tp;
              fmt_ns p50;
              fmt_ns p99;
              Printf.sprintf "%.1f" mw;
              (if pushed = popped + remaining then "ok"
               else
                 Printf.sprintf "VIOLATED %d<>%d+%d" pushed popped remaining);
            ])
          [ 1; 4; 16 ])
      paths
  in
  M.set_dcas2_enabled true;
  Harness.Table.print
    ~headers:
      [
        "path"; "batch k"; "items/s"; "p50/item"; "p99/item"; "minor w/item";
        "conserved";
      ]
    batch_rows;
  note
    "2 domains, each pushing k-batches onto its end and popping k-batches\n\
     off the other (capacity 256); a k-item batch moves the end index by\n\
     k in one (k+1)-entry CASN, so the descriptor, helping and index\n\
     traffic amortize over the batch"

(* ------------------------------------------------------------------ *)
(* E22: crash-fault tolerance — kill k of n supervised workers         *)
(* ------------------------------------------------------------------ *)

module Crash_mem = Harness.Crash.Mem_crashing_casn (Dcas.Mem_lockfree)
module Crash_array = Deque.Array_deque.Make_batched (Crash_mem)

module Crash_adapter : Worksteal.Worksteal_intf.WORKSTEAL_DEQUE = struct
  type 'a t = 'a Crash_array.t

  let name = "array-deque+crash"
  let create ~capacity () = Crash_array.make ~length:capacity ()

  let push d v =
    match Crash_array.push_right d v with `Okay -> true | `Full -> false

  let pop d =
    match Crash_array.pop_right d with `Value v -> Some v | `Empty -> None

  let steal d =
    match Crash_array.pop_left d with `Value v -> Some v | `Empty -> None

  let steal_batch d ~max = Crash_array.pop_many_left d max
end

module Crash_sched = Worksteal.Scheduler.Make (Crash_adapter)

let e22 ~quick =
  header "E22 crash-fault tolerance: kill k of n supervised workers";
  let depth = if quick then 5 else 6 in
  let degree = 3 in
  let leaves = int_of_float (float_of_int degree ** float_of_int depth) in
  let kill_depth = depth - 2 in
  (* One supervised run over the crash-instrumented array deque; the
     caller arms the deaths (targeted tickets or a probabilistic
     storm) via [arm], which receives the worker count. *)
  let supervised_run ~section ~label ~workers ~arm =
    Harness.Crash.reset ();
    Dcas.Mem_lockfree.reset_stats ();
    let counter = Atomic.make 0 in
    let claim = arm ~workers in
    let root ctx =
      let rec node d ctx =
        if d = 0 then Atomic.incr counter
        else begin
          if d = kill_depth then claim ctx;
          for _ = 1 to degree do
            Crash_sched.spawn ctx (node (d - 1))
          done
        end
      in
      node depth ctx
    in
    let wd = Harness.Watchdog.create ~threads:workers ~stall_after:30. () in
    let t0 = Unix.gettimeofday () in
    let r = Crash_sched.run_supervised ~workers ~capacity:512 ~watchdog:wd root in
    let dt = Unix.gettimeofday () -. t0 in
    Harness.Crash.disarm ();
    let stalled = if Harness.Watchdog.fired wd then 1 else 0 in
    let ok = if Worksteal.Supervisor.conserved r then 1 else 0 in
    let open Worksteal.Supervisor in
    emit_json
      (Harness.Json.Obj
         [
           ("experiment", Harness.Json.String "e22");
           ("section", Harness.Json.String section);
           ("label", Harness.Json.String label);
           ("workers", Harness.Json.Int workers);
           ( "ops_per_sec",
             Harness.Json.Float (float_of_int r.executed /. dt) );
           ("spawned", Harness.Json.Int r.spawned);
           ("executed", Harness.Json.Int r.executed);
           ("killed", Harness.Json.Int r.killed);
           ("adopted", Harness.Json.Int r.adopted);
           ("reconciled", Harness.Json.Int r.reconciled);
           ("replacements", Harness.Json.Int r.replacements);
           ("orphans_helped", Harness.Json.Int r.orphans_helped);
           ( "mid_casn_kills",
             Harness.Json.Int (Harness.Crash.mid_casn_kills ()) );
           ("conserved", Harness.Json.Int ok);
           ("stalled", Harness.Json.Int stalled);
         ]);
    let leaves_seen = Atomic.get counter in
    [
      label;
      string_of_int workers;
      fmt_tp (float_of_int r.executed /. dt);
      string_of_int r.spawned;
      string_of_int r.executed;
      string_of_int r.killed;
      string_of_int r.adopted;
      string_of_int r.reconciled;
      string_of_int r.orphans_helped;
      (if ok = 1 then "ok"
       else Printf.sprintf "VIOLATED %d<>%d+%d" r.spawned r.executed r.reconciled);
      Printf.sprintf "%d/%d" leaves_seen leaves;
    ]
  in
  (* Targeted kill-k-of-n: the first k distinct workers to reach the
     kill depth claim a ticket and die mid-CASN at their next
     DCAS-shaped operation (the push of their next spawn), stranding a
     published descriptor for the survivors to help. *)
  let targeted ~k ~workers =
    let tickets = Atomic.make k in
    let claimed = Array.init workers (fun _ -> Atomic.make false) in
    fun ctx ->
      let w = Crash_sched.worker ctx in
      if
        w < workers
        && Atomic.get tickets > 0
        && Atomic.compare_and_set claimed.(w) false true
      then begin
        let rec take () =
          let t = Atomic.get tickets in
          t > 0 && (Atomic.compare_and_set tickets t (t - 1) || take ())
        in
        if take () then Harness.Crash.kill ~mode:`Mid_casn ~tid:w ()
        else Atomic.set claimed.(w) false
      end
  in
  let rows =
    List.map
      (fun (n, k) ->
        supervised_run ~section:"targeted"
          ~label:(Printf.sprintf "kill %d of %d" k n)
          ~workers:n
          ~arm:(fun ~workers -> targeted ~k ~workers))
      [ (2, 1); (4, 1); (4, 2) ]
  in
  (* Probabilistic storm: every instrumented shared-memory access of
     every worker draws a death verdict from a replayable per-domain
     stream; half the deaths land mid-CASN. *)
  let storm_rows =
    List.map
      (fun (seed, max_kills) ->
        supervised_run ~section:"storm"
          ~label:(Printf.sprintf "storm seed=%#x" seed)
          ~workers:4
          ~arm:(fun ~workers:_ ->
            Harness.Crash.configure ~prob:0.0005 ~mid_casn_prob:0.5
              ~max_kills ~seed ();
            fun _ctx -> ()))
      [ (0xE22A, 2); (0xE22B, 3) ]
  in
  Harness.Table.print
    ~headers:
      [
        "scenario"; "n"; "tasks/s"; "spawned"; "executed"; "killed"; "adopted";
        "reconciled"; "orphans"; "conserved"; "leaves";
      ]
    (rows @ storm_rows);
  note
    "divide-and-conquer tree (degree %d, depth %d, %d leaves) on the\n\
     supervised scheduler over the crash-instrumented array deque;\n\
     killed workers die for good at a shared-memory point (mid-CASN\n\
     where targeted), the supervisor adopts their deques, and leftover\n\
     pending units are reconciled only under the quiescence certificate\n\
     -- conserved means spawned = executed + reconciled exactly"
    degree depth leaves

(* ------------------------------------------------------------------ *)
(* E23: cross-algorithm shootout — the paper's DCAS deques against     *)
(* the single-word-CAS competitors                                     *)
(* ------------------------------------------------------------------ *)

(* Uniform role-aware handle over the five competitors.  The general
   deques run the full mix on every domain; ABP restricts mutation to
   the owner (tid 0) — thief domains convert every draw into a steal,
   the scheduler-shaped workload the structure was designed for. *)
type shoot_inst = {
  sh_op : tid:int -> Harness.Workload.kind -> [ `Pushed | `Popped | `Miss ];
  sh_drain : unit -> int;  (* items left behind, drained quiescently *)
}

type shooter = {
  sh_name : string;
  sh_setup : unit -> unit;  (* substrate flags (the dcas2 ablation) *)
  sh_make : unit -> shoot_inst;
  sh_words : unit -> float;  (* minor words per op, quiescent push+pop *)
}

let e23_prefill = 128
let e23_capacity = 512

let e23_shooters : shooter list =
  let general (type t) name ?(setup = fun () -> ()) ~(create : unit -> t)
      ~(push_right : t -> int -> Deque.Deque_intf.push_result)
      ~(push_left : t -> int -> Deque.Deque_intf.push_result)
      ~(pop_right : t -> int Deque.Deque_intf.pop_result)
      ~(pop_left : t -> int Deque.Deque_intf.pop_result) () =
    {
      sh_name = name;
      sh_setup = setup;
      sh_make =
        (fun () ->
          let d = create () in
          for i = 1 to e23_prefill do
            ignore (if i mod 2 = 0 then push_right d i else push_left d i)
          done;
          {
            sh_op =
              (fun ~tid:_ kind ->
                match kind with
                | Harness.Workload.Push_right ->
                    if push_right d 1 = `Okay then `Pushed else `Miss
                | Harness.Workload.Push_left ->
                    if push_left d 1 = `Okay then `Pushed else `Miss
                | Harness.Workload.Pop_right -> (
                    match pop_right d with `Value _ -> `Popped | `Empty -> `Miss)
                | Harness.Workload.Pop_left -> (
                    match pop_left d with `Value _ -> `Popped | `Empty -> `Miss));
            sh_drain =
              (fun () ->
                let n = ref 0 in
                let rec go () =
                  match pop_left d with
                  | `Value _ ->
                      incr n;
                      go ()
                  | `Empty -> ()
                in
                go ();
                !n);
          });
      sh_words =
        (fun () ->
          setup ();
          let d = create () in
          minor_words_per_op ~n:20_000 (fun () ->
              ignore (push_right d 1);
              ignore (pop_right d))
          /. 2.);
    }
  in
  [
    (let module L = Deque.List_deque.Lockfree in
    general "dcas-list/dcas2"
      ~setup:(fun () -> Dcas.Mem_lockfree.set_dcas2_enabled true)
      ~create:(fun () -> L.make ())
      ~push_right:L.push_right ~push_left:L.push_left ~pop_right:L.pop_right
      ~pop_left:L.pop_left ());
    (let module L = Deque.List_deque.Lockfree in
    general "dcas-list/generic"
      ~setup:(fun () -> Dcas.Mem_lockfree.set_dcas2_enabled false)
      ~create:(fun () -> L.make ())
      ~push_right:L.push_right ~push_left:L.push_left ~pop_right:L.pop_right
      ~pop_left:L.pop_left ());
    (let module D = Baselines.St_deque in
    general "st-deque"
      ~create:(fun () -> D.make ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left ());
    (let module D = Baselines.Lock_deque in
    general "lock"
      ~create:(fun () -> D.create ~capacity:e23_capacity ())
      ~push_right:D.push_right ~push_left:D.push_left ~pop_right:D.pop_right
      ~pop_left:D.pop_left ());
    (let module A = Baselines.Abp_deque in
    {
      sh_name = "abp";
      sh_setup = (fun () -> ());
      sh_make =
        (fun () ->
          let d = A.create ~capacity:e23_capacity () in
          for i = 1 to e23_prefill do
            ignore (A.push_bottom d i)
          done;
          {
            sh_op =
              (fun ~tid kind ->
                if tid = 0 then
                  match kind with
                  | Harness.Workload.Push_right | Harness.Workload.Push_left ->
                      if A.push_bottom d 1 = `Okay then `Pushed else `Miss
                  | Harness.Workload.Pop_right | Harness.Workload.Pop_left -> (
                      match A.pop_bottom d with
                      | `Value _ -> `Popped
                      | `Empty -> `Miss)
                else
                  match A.steal_retry d with
                  | `Value _ -> `Popped
                  | `Empty -> `Miss);
            sh_drain =
              (fun () ->
                let n = ref 0 in
                let rec go () =
                  match A.pop_bottom d with
                  | `Value _ ->
                      incr n;
                      go ()
                  | `Empty -> ()
                in
                go ();
                !n);
          });
      sh_words =
        (fun () ->
          let d = A.create ~capacity:e23_capacity () in
          minor_words_per_op ~n:20_000 (fun () ->
              ignore (A.push_bottom d 1);
              ignore (A.pop_bottom d))
          /. 2.);
    });
  ]

(* The empirical lock-freedom probe on the competitor: the ST deque
   over the freezer-instrumented memory (via the one-entry-casn shim),
   two of three domains parked mid-operation, the survivor must still
   complete its quota. *)
module Probe_mem = Harness.Stall.Mem_stalling_casn (Dcas.Mem_lockfree)
module Probe_st = Baselines.St_deque.Make (Baselines.St_deque.Of_casn (Probe_mem))

let e23_frozen_probe () =
  Harness.Stall.Freezer.reset ();
  let d = Probe_st.make () in
  for i = 1 to 16 do
    ignore (Probe_st.push_right d i)
  done;
  let threads = 3 in
  let target_ops = 1_000 in
  let stop = Atomic.make false in
  let counts = Array.init threads (fun _ -> Dcas.Padding.make_atomic 0) in
  let worker tid () =
    Harness.Stall.Freezer.enroll ~tid;
    let rng = Harness.Splitmix.create ~seed:(0xE23 + tid) in
    while not (Atomic.get stop) do
      (match Harness.Workload.draw Harness.Workload.balanced rng with
      | Harness.Workload.Push_right -> ignore (Probe_st.push_right d 1)
      | Harness.Workload.Push_left -> ignore (Probe_st.push_left d 1)
      | Harness.Workload.Pop_right -> ignore (Probe_st.pop_right d)
      | Harness.Workload.Pop_left -> ignore (Probe_st.pop_left d));
      Atomic.incr counts.(tid)
    done
  in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  let deadline = Unix.gettimeofday () +. 30. in
  while
    Array.exists (fun c -> Atomic.get c < 10) counts
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.002
  done;
  for tid = 1 to threads - 1 do
    Harness.Stall.Freezer.freeze ~tid
  done;
  while
    Harness.Stall.Freezer.frozen_now () < threads - 1
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.002
  done;
  let c0 = Atomic.get counts.(0) in
  let t0 = Unix.gettimeofday () in
  while
    Atomic.get counts.(0) < c0 + target_ops
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.001
  done;
  let survivor_ops = Atomic.get counts.(0) - c0 in
  let dt = Unix.gettimeofday () -. t0 in
  let parks = Harness.Stall.Freezer.freeze_hits () in
  Harness.Stall.Freezer.thaw_all ();
  Atomic.set stop true;
  List.iter Domain.join domains;
  Harness.Stall.Freezer.reset ();
  let completed = survivor_ops >= target_ops in
  let tp = if dt > 0. then float_of_int survivor_ops /. dt else 0. in
  emit_json
    (Harness.Json.Obj
       [
         ("experiment", Harness.Json.String "e23");
         ("section", Harness.Json.String "frozen");
         ("backend", Harness.Json.String "st-deque");
         ("domains", Harness.Json.Int threads);
         ("frozen", Harness.Json.Int (threads - 1));
         ("survivor_ops", Harness.Json.Int survivor_ops);
         ("parks", Harness.Json.Int parks);
         ("ops_per_sec", Harness.Json.Float tp);
         ("completed", Harness.Json.Int (if completed then 1 else 0));
       ]);
  [
    "st-deque";
    Printf.sprintf "%d of %d frozen" (threads - 1) threads;
    fmt_tp tp;
    string_of_int survivor_ops;
    string_of_int parks;
    (if completed then "ok" else "STUCK");
  ]

let e23 ~quick =
  header
    "E23 cross-algorithm shootout: DCAS deques vs single-word-CAS competitors";
  let duration = dur ~quick 0.3 in
  let finite f = if Float.is_finite f then f else 0. in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let mixes =
    [
      ("balanced", Harness.Workload.balanced);
      ("push-heavy", Harness.Workload.push_heavy);
    ]
  in
  let rows =
    List.concat_map
      (fun sh ->
        let words = sh.sh_words () in
        List.concat_map
          (fun (mix_name, mix) ->
            List.map
              (fun threads ->
                sh.sh_setup ();
                let inst = sh.sh_make () in
                let pushed = Dcas.Padding.make_atomic 0 in
                let popped = Dcas.Padding.make_atomic 0 in
                let hists =
                  Array.init threads (fun _ ->
                      Fixed_histogram.create ~width_ns:50. ~buckets:32768 ())
                in
                let group = 64 in
                let r =
                  Harness.Runner.run ~threads ~duration (fun ~tid ~rng ->
                      let t0 = Harness.Metrics.now () in
                      let pu = ref 0 and po = ref 0 in
                      for _ = 1 to group do
                        match inst.sh_op ~tid (Harness.Workload.draw mix rng) with
                        | `Pushed -> incr pu
                        | `Popped -> incr po
                        | `Miss -> ()
                      done;
                      let dt_ns = (Harness.Metrics.now () -. t0) *. 1e9 in
                      Fixed_histogram.add hists.(tid)
                        ~ns:(dt_ns /. float_of_int group);
                      ignore (Atomic.fetch_and_add pushed !pu);
                      ignore (Atomic.fetch_and_add popped !po))
                in
                let remaining = inst.sh_drain () in
                let run_pushed = Atomic.get pushed in
                let total_pushed = run_pushed + e23_prefill in
                let popped = Atomic.get popped in
                let conserved = total_pushed = popped + remaining in
                let tp =
                  float_of_int (run_pushed + popped) /. r.Harness.Runner.elapsed
                in
                let h =
                  Array.fold_left Fixed_histogram.merge hists.(0)
                    (Array.sub hists 1 (threads - 1))
                in
                let q p =
                  if Fixed_histogram.count h = 0 then 0.
                  else finite (Fixed_histogram.quantile_ns h p)
                in
                let p50 = q 0.5 and p99 = q 0.99 in
                emit_json
                  (Harness.Json.Obj
                     [
                       ("experiment", Harness.Json.String "e23");
                       ("section", Harness.Json.String "shootout");
                       ("backend", Harness.Json.String sh.sh_name);
                       ("mix", Harness.Json.String mix_name);
                       ("domains", Harness.Json.Int threads);
                       ("ops_per_sec", Harness.Json.Float tp);
                       ("p50_ns", Harness.Json.Float p50);
                       ("p99_ns", Harness.Json.Float p99);
                       ("minor_words_per_op", Harness.Json.Float words);
                       ("pushed", Harness.Json.Int total_pushed);
                       ("popped", Harness.Json.Int popped);
                       ("remaining", Harness.Json.Int remaining);
                       ( "conserved",
                         Harness.Json.Int (if conserved then 1 else 0) );
                     ]);
                [
                  sh.sh_name;
                  mix_name;
                  string_of_int threads;
                  fmt_tp tp;
                  fmt_ns p50;
                  fmt_ns p99;
                  Printf.sprintf "%.1f" words;
                  (if conserved then "ok"
                   else
                     Printf.sprintf "VIOLATED %d<>%d+%d" total_pushed popped
                       remaining);
                ])
              domain_counts)
          mixes)
      e23_shooters
  in
  Dcas.Mem_lockfree.set_dcas2_enabled true;
  Harness.Table.print
    ~headers:
      [
        "backend"; "mix"; "domains"; "ops/s"; "p50/op"; "p99/op"; "minor w/op";
        "conserved";
      ]
    rows;
  note
    "%d-item prefill, %.2fs per cell; ABP runs owner-only mutation with\n\
     thieves stealing; 'minor w/op' is a quiescent single-domain\n\
     push+pop average; conservation counts prefill + successful pushes\n\
     against successful pops + the drained remainder"
    e23_prefill duration;
  Harness.Table.print
    ~headers:[ "backend"; "adversary"; "ops/s"; "survivor ops"; "parks"; "lock-free" ]
    [ e23_frozen_probe () ];
  note
    "frozen-peer probe: ST deque over the freezer-instrumented memory;\n\
     the survivor must complete 1000 operations while both peers sit\n\
     parked mid-operation at a shared-memory access point"

(* ------------------------------------------------------------------ *)
(* E24: sharded service soak — SLO-gated latency under live fault      *)
(* storms                                                              *)
(* ------------------------------------------------------------------ *)

(* The full fault-storm substrate under the sharded service: seeded
   chaos (spurious DCAS failures) at the bottom, fail-stop crash
   injection above it, adversarial freezes on top — the layers E9 and
   E22 exercise separately, composed.  Crash's mid-CASN detection keys
   off Mem_lockfree's global publish hook, so it keeps working through
   the chaos wrapper. *)
module Soak_chaos = Dcas.Mem_chaos.Make (Dcas.Mem_lockfree)

module Soak_mem =
  Harness.Stall.Mem_stalling_casn (Harness.Crash.Mem_crashing_casn (Soak_chaos))

module Soak_service =
  Worksteal.Shard_service.Make (Deque.Array_deque.Make (Soak_mem))

let e24 ~quick =
  header "E24 sharded service soak: SLO-gated latency under live fault storms";
  let duration = dur ~quick 2.0 in
  let finite f = if Float.is_finite f then f else 0. in
  let cfg =
    {
      Worksteal.Shard_service.default with
      shards = 4;
      producers = 2;
      consumers = 2;
      capacity = 256;
      rate = 4_000.;
      (* per-producer open-loop arrivals/s; bursty token bucket *)
      burst = 16;
      urgent_share = 0.15;
      seed = 0xE24;
      (* silence detection off: on an oversubscribed box a busy-but-
         alive worker can easily go quiet past any threshold, and a
         false presumed-dead would make the kill count nondeterministic;
         deaths certified by Died still trigger adoption + replacement *)
      sup = { Worksteal.Supervisor.default with silence_after = 0. };
    }
  in
  let slots = cfg.Worksteal.Shard_service.producers + cfg.Worksteal.Shard_service.consumers in
  let cell ~label ~storm =
    Harness.Crash.reset ();
    Harness.Stall.Freezer.reset ();
    Soak_chaos.disarm ();
    (* Phase-tagged service-time histograms: per-slot (the observers
       run on the worker domains), split calm/fault by a flag the storm
       driver flips, successful operations only — the SLO is on served
       requests, not on consumers' empty scans. *)
    let fault_phase = Atomic.make false in
    let mk () =
      Array.init slots (fun _ ->
          Fixed_histogram.create ~width_ns:500. ~buckets:65536 ())
    in
    let calm_h = mk () and fault_h = mk () in
    let record ~tid ~ns =
      let h = if Atomic.get fault_phase then fault_h else calm_h in
      if tid >= 0 && tid < slots then Fixed_histogram.add h.(tid) ~ns
    in
    let on_push ~tid ~ns = function
      | `Okay -> record ~tid ~ns
      | `Full | `Timeout -> ()
    in
    let on_pop ~tid ~ns = function
      | `Value _ -> record ~tid ~ns
      | `Empty | `Timeout -> ()
    in
    (* The storm driver runs on the calling domain while traffic flows:
       a calm lead-in, then — inside the fault window — seeded chaos, a
       freeze/thaw episode on producer 0 and a targeted mid-CASN kill
       of consumer slot [producers], then a calm recovery tail. *)
    let third = duration /. 3. in
    let driver () =
      if storm then begin
        Unix.sleepf third;
        Atomic.set fault_phase true;
        Soak_chaos.configure ~fail_prob:0.002 ~seed:0xC4A05 ();
        Harness.Stall.Freezer.freeze ~tid:0;
        Unix.sleepf (Float.min 0.05 (third /. 4.));
        Harness.Stall.Freezer.thaw ~tid:0;
        Harness.Crash.kill ~mode:`Mid_casn
          ~tid:cfg.Worksteal.Shard_service.producers ();
        Unix.sleepf third;
        Soak_chaos.disarm ();
        Atomic.set fault_phase false;
        Unix.sleepf third
      end
      else Unix.sleepf duration
    in
    let spurious0 = (Soak_mem.stats ()).Dcas.Memory_intf.chaos_spurious in
    let r = Soak_service.run ~config:cfg ~on_push ~on_pop ~driver ~duration () in
    let freezes = Harness.Stall.Freezer.freeze_hits () in
    let spurious =
      (Soak_mem.stats ()).Dcas.Memory_intf.chaos_spurious - spurious0
    in
    Harness.Crash.reset ();
    Harness.Stall.Freezer.reset ();
    let open Worksteal.Shard_service in
    let merge hs =
      Array.fold_left Fixed_histogram.merge hs.(0)
        (Array.sub hs 1 (slots - 1))
    in
    let q h p =
      if Fixed_histogram.count h = 0 then 0.
      else finite (Fixed_histogram.quantile_ns h p)
    in
    let ch = merge calm_h and fh = merge fault_h in
    let conserved = if conserved r then 1 else 0 in
    let tp =
      if r.elapsed > 0. then
        float_of_int (r.pushed_ok + r.executed) /. r.elapsed
      else 0.
    in
    let imbalance =
      finite (Harness.Metrics.Starvation.of_counts r.per_shard_popped).imbalance
    in
    let recovery_max = List.fold_left Float.max 0. r.recoveries in
    emit_json
      (Harness.Json.Obj
         [
           ("experiment", Harness.Json.String "e24");
           ("section", Harness.Json.String "soak");
           ("cell", Harness.Json.String label);
           ("shards", Harness.Json.Int cfg.shards);
           ("producers", Harness.Json.Int cfg.producers);
           ("consumers", Harness.Json.Int cfg.consumers);
           ("rate", Harness.Json.Float cfg.rate);
           ("elapsed_s", Harness.Json.Float r.elapsed);
           ("ops_per_sec", Harness.Json.Float tp);
           ("spawned", Harness.Json.Int r.spawned);
           ("executed", Harness.Json.Int r.executed);
           ("reconciled", Harness.Json.Int r.reconciled);
           ("leftover", Harness.Json.Int r.leftover);
           ("conserved", Harness.Json.Int conserved);
           ("pushed_ok", Harness.Json.Int r.pushed_ok);
           ("push_full", Harness.Json.Int r.push_full);
           ("timeouts", Harness.Json.Int r.timeouts);
           ("killed", Harness.Json.Int r.killed);
           ("replacements", Harness.Json.Int r.replacements);
           ("adoptions", Harness.Json.Int r.adoptions);
           ("adopted_items", Harness.Json.Int r.adopted_items);
           ("orphans_helped", Harness.Json.Int r.orphans_helped);
           ("freezes", Harness.Json.Int freezes);
           ("chaos_spurious", Harness.Json.Int spurious);
           ("recoveries", Harness.Json.Int (List.length r.recoveries));
           ("recovery_max_s", Harness.Json.Float recovery_max);
           ("calm_p50_ns", Harness.Json.Float (q ch 0.5));
           ("calm_p99_ns", Harness.Json.Float (q ch 0.99));
           ("calm_p999_ns", Harness.Json.Float (q ch 0.999));
           ("fault_p50_ns", Harness.Json.Float (q fh 0.5));
           ("fault_p99_ns", Harness.Json.Float (q fh 0.99));
           ("fault_p999_ns", Harness.Json.Float (q fh 0.999));
           ("imbalance", Harness.Json.Float imbalance);
         ]);
    [
      label;
      fmt_tp tp;
      fmt_ns (q ch 0.5);
      fmt_ns (q ch 0.99);
      fmt_ns (q ch 0.999);
      (if Fixed_histogram.count fh = 0 then "-" else fmt_ns (q fh 0.99));
      string_of_int r.killed;
      string_of_int r.replacements;
      string_of_int r.adoptions;
      (if recovery_max = 0. then "-" else Printf.sprintf "%.3fs" recovery_max);
      Printf.sprintf "%.2f" imbalance;
      (if conserved = 1 then "ok"
       else
         Printf.sprintf "VIOLATED %d<>%d+%d (+%d left)" r.spawned r.executed
           r.reconciled r.leftover);
    ]
  in
  (* bind in sequence: list literals evaluate right-to-left, and the
     calm cell must run first (its row is the storm's baseline) *)
  let calm_row = cell ~label:"calm" ~storm:false in
  let storm_row = cell ~label:"storm" ~storm:true in
  let rows = [ calm_row; storm_row ] in
  Harness.Table.print
    ~headers:
      [
        "cell"; "ops/s"; "calm p50"; "calm p99"; "calm p999"; "fault p99";
        "killed"; "repl"; "adopt"; "recovery"; "imbal"; "conserved";
      ]
    rows;
  note
    "%d shards (%d producers + %d consumers + monitor) over the chaos+\n\
     crash+freeze substrate, %.0f arrivals/s per producer in bursts of\n\
     %d, %.1fs per cell; the storm cell freezes producer 0 mid-soak,\n\
     kills one consumer mid-CASN (its shard is quarantined, drained\n\
     into survivors and revived for the replacement) and runs seeded\n\
     spurious-DCAS chaos for the middle third; latencies are successful\n\
     operations only, split calm/fault by storm phase; conserved means\n\
     spawned = executed + reconciled and a zero leftover drain"
    cfg.Worksteal.Shard_service.shards cfg.Worksteal.Shard_service.producers
    cfg.Worksteal.Shard_service.consumers cfg.Worksteal.Shard_service.rate
    cfg.Worksteal.Shard_service.burst duration

(* ------------------------------------------------------------------ *)
(* E25: multi-storm survival soak — deadlines, zombies, fencing        *)
(* ------------------------------------------------------------------ *)

(* E24 with every remaining failure mode armed at once: per-request
   deadlines with admission control (sheds enter the conservation law
   as first-class timed-out outcomes), a zombified consumer that keeps
   ticking its heartbeat while doing no work (progress-based fencing
   must catch it — silence detection cannot), and a declarative
   multi-storm schedule overlapping kill, freeze, zombie and chaos
   windows with seeded jitter.  Reuses E24's composed substrate. *)
let e25 ~quick =
  header "E25 multi-storm survival soak: deadlines, zombies, fencing";
  let duration = dur ~quick 2.4 in
  let finite f = if Float.is_finite f then f else 0. in
  let cfg =
    {
      Worksteal.Shard_service.default with
      shards = 4;
      producers = 2;
      consumers = 3;
      capacity = 256;
      rate = 4_000.;
      burst = 16;
      urgent_share = 0.15;
      deadline = Some 0.05;
      (* 50ms budget per request, stamped at admission *)
      admission = true;
      seed = 0xE25;
      sup =
        {
          Worksteal.Supervisor.default with
          (* silence detection off for E24's reason (an oversubscribed
             box makes busy-but-alive quiet spells nondeterministic);
             zombie detection is progress-based and stays armed — it is
             the detector this soak exists to exercise *)
          silence_after = 0.;
          zombie_after = 0.08;
        };
    }
  in
  let slots =
    cfg.Worksteal.Shard_service.producers
    + cfg.Worksteal.Shard_service.consumers
  in
  (* recovery-latency quantiles over the per-event list *)
  let lat_q rs p =
    match List.sort compare rs with
    | [] -> 0.
    | sorted ->
        let n = List.length sorted in
        let i = Float.to_int (p *. float_of_int (n - 1) +. 0.5) in
        List.nth sorted (min (n - 1) (max 0 i))
  in
  let cell ~label ~storm =
    Harness.Crash.reset ();
    Harness.Stall.Freezer.reset ();
    Harness.Stall.Zombie.reset ();
    Soak_chaos.disarm ();
    let fault_phase = Atomic.make false in
    let mk () =
      Array.init slots (fun _ ->
          Fixed_histogram.create ~width_ns:500. ~buckets:65536 ())
    in
    let calm_h = mk () and fault_h = mk () in
    let record ~tid ~ns =
      let h = if Atomic.get fault_phase then fault_h else calm_h in
      if tid >= 0 && tid < slots then Fixed_histogram.add h.(tid) ~ns
    in
    let on_push ~tid ~ns = function
      | `Okay -> record ~tid ~ns
      | `Full | `Timeout -> ()
    in
    let on_pop ~tid ~ns = function
      | `Value _ -> record ~tid ~ns
      | `Empty | `Timeout -> ()
    in
    (* The storm schedule occupies the middle third: a zombie window on
       the last consumer, a mid-CASN kill of the first consumer, a
       short freeze of producer 0 and a chaos window, overlapping, with
       seeded jitter so repeated soaks sample different alignments. *)
    let third = duration /. 3. in
    let windows =
      if not storm then []
      else
        Harness.Storm.jittered ~seed:0xE25 ~jitter:(third /. 20.)
          [
            {
              Harness.Storm.at = third;
              hold = third;
              fault = Harness.Storm.Chaos;
            };
            {
              Harness.Storm.at = third *. 1.1;
              hold = third *. 0.8;
              fault =
                Harness.Storm.Zombie { tid = slots - 1 };
            };
            {
              Harness.Storm.at = third *. 1.3;
              hold = Float.min 0.05 (third /. 4.);
              fault = Harness.Storm.Freeze { tid = 0 };
            };
            {
              Harness.Storm.at = third *. 1.5;
              hold = third *. 0.2;
              fault =
                Harness.Storm.Kill
                  {
                    tid = cfg.Worksteal.Shard_service.producers;
                    mid_casn = true;
                  };
            };
          ]
    in
    let landings = ref [] in
    let driver () =
      if storm then begin
        landings :=
          Harness.Storm.run
            ~arm_chaos:(fun () ->
              Soak_chaos.configure ~fail_prob:0.002 ~seed:0xC4A05 ())
            ~disarm_chaos:Soak_chaos.disarm
            ~chaos_hits:(fun () ->
              (Soak_mem.stats ()).Dcas.Memory_intf.chaos_spurious)
            ~on_active:(fun n -> Atomic.set fault_phase (n > 0))
            ~settle:(Float.min 0.1 third) windows;
        Atomic.set fault_phase false;
        (* calm recovery tail *)
        Unix.sleepf third
      end
      else Unix.sleepf duration
    in
    let spurious0 = (Soak_mem.stats ()).Dcas.Memory_intf.chaos_spurious in
    let bites0 = Harness.Stall.Zombie.bites () in
    let r = Soak_service.run ~config:cfg ~on_push ~on_pop ~driver ~duration () in
    let freezes = Harness.Stall.Freezer.freeze_hits () in
    let spurious =
      (Soak_mem.stats ()).Dcas.Memory_intf.chaos_spurious - spurious0
    in
    let zombie_bites = Harness.Stall.Zombie.bites () - bites0 in
    let landed =
      List.length (List.filter (fun l -> l.Harness.Storm.landed) !landings)
    in
    Harness.Crash.reset ();
    Harness.Stall.Freezer.reset ();
    Harness.Stall.Zombie.reset ();
    let open Worksteal.Shard_service in
    let merge hs =
      Array.fold_left Fixed_histogram.merge hs.(0)
        (Array.sub hs 1 (slots - 1))
    in
    let q h p =
      if Fixed_histogram.count h = 0 then 0.
      else finite (Fixed_histogram.quantile_ns h p)
    in
    let ch = merge calm_h and fh = merge fault_h in
    let conserved = if conserved r then 1 else 0 in
    let tp =
      if r.elapsed > 0. then
        float_of_int (r.pushed_ok + r.executed) /. r.elapsed
      else 0.
    in
    let imbalance =
      finite (Harness.Metrics.Starvation.of_counts r.per_shard_popped).imbalance
    in
    let shed_total = shed r in
    let shed_rate =
      if r.spawned > 0 then float_of_int shed_total /. float_of_int r.spawned
      else 0.
    in
    emit_json
      (Harness.Json.Obj
         [
           ("experiment", Harness.Json.String "e25");
           ("section", Harness.Json.String "soak");
           ("cell", Harness.Json.String label);
           ("shards", Harness.Json.Int cfg.shards);
           ("producers", Harness.Json.Int cfg.producers);
           ("consumers", Harness.Json.Int cfg.consumers);
           ("rate", Harness.Json.Float cfg.rate);
           ( "deadline_s",
             Harness.Json.Float (Option.value ~default:0. cfg.deadline) );
           ("elapsed_s", Harness.Json.Float r.elapsed);
           ("ops_per_sec", Harness.Json.Float tp);
           ("spawned", Harness.Json.Int r.spawned);
           ("executed", Harness.Json.Int r.executed);
           ("reconciled", Harness.Json.Int r.reconciled);
           ("shed_admission", Harness.Json.Int r.shed_admission);
           ("shed_expired", Harness.Json.Int r.shed_expired);
           ("shed_rate", Harness.Json.Float shed_rate);
           ("leftover", Harness.Json.Int r.leftover);
           ("conserved", Harness.Json.Int conserved);
           ("pushed_ok", Harness.Json.Int r.pushed_ok);
           ("push_full", Harness.Json.Int r.push_full);
           ("timeouts", Harness.Json.Int r.timeouts);
           ("overshoot_max_ns", Harness.Json.Int r.overshoot_max_ns);
           ("killed", Harness.Json.Int r.killed);
           ("zombies_fenced", Harness.Json.Int r.zombies_fenced);
           ("zombie_bites", Harness.Json.Int zombie_bites);
           ("replacements", Harness.Json.Int r.replacements);
           ("adoptions", Harness.Json.Int r.adoptions);
           ("adopted_items", Harness.Json.Int r.adopted_items);
           ("orphans_helped", Harness.Json.Int r.orphans_helped);
           ("freezes", Harness.Json.Int freezes);
           ("chaos_spurious", Harness.Json.Int spurious);
           ("storm_windows", Harness.Json.Int (List.length windows));
           ("storm_landed", Harness.Json.Int landed);
           ("recoveries", Harness.Json.Int (List.length r.recoveries));
           ("recovery_p50_s", Harness.Json.Float (lat_q r.recoveries 0.5));
           ("recovery_p90_s", Harness.Json.Float (lat_q r.recoveries 0.9));
           ( "recovery_max_s",
             Harness.Json.Float (List.fold_left Float.max 0. r.recoveries) );
           ("calm_p50_ns", Harness.Json.Float (q ch 0.5));
           ("calm_p99_ns", Harness.Json.Float (q ch 0.99));
           ("calm_p999_ns", Harness.Json.Float (q ch 0.999));
           ("fault_p50_ns", Harness.Json.Float (q fh 0.5));
           ("fault_p99_ns", Harness.Json.Float (q fh 0.99));
           ("fault_p999_ns", Harness.Json.Float (q fh 0.999));
           ("imbalance", Harness.Json.Float imbalance);
         ]);
    [
      label;
      fmt_tp tp;
      fmt_ns (q ch 0.99);
      (if Fixed_histogram.count fh = 0 then "-" else fmt_ns (q fh 0.99));
      Printf.sprintf "%.1f%%" (shed_rate *. 100.);
      string_of_int r.overshoot_max_ns;
      string_of_int r.killed;
      string_of_int r.zombies_fenced;
      string_of_int freezes;
      Printf.sprintf "%d/%d" landed (List.length windows);
      (if r.recoveries = [] then "-"
       else Printf.sprintf "%.3fs" (List.fold_left Float.max 0. r.recoveries));
      (if conserved = 1 then "ok"
       else
         Printf.sprintf "VIOLATED %d<>%d+%d+%d (+%d left)" r.spawned
           r.executed r.reconciled shed_total r.leftover);
    ]
  in
  let calm_row = cell ~label:"calm" ~storm:false in
  let storm_row = cell ~label:"storm" ~storm:true in
  let rows = [ calm_row; storm_row ] in
  Harness.Table.print
    ~headers:
      [
        "cell"; "ops/s"; "calm p99"; "fault p99"; "shed"; "overshoot ns";
        "killed"; "zfenced"; "freezes"; "landed"; "recovery"; "conserved";
      ]
    rows;
  note
    "%d shards (%d producers + %d consumers + monitor), 50ms request\n\
     deadlines with p99-sojourn admission control; the storm cell runs\n\
     a jittered schedule of four overlapping windows — seeded chaos, a\n\
     zombified consumer (ticking heartbeat, zero progress: only the\n\
     progress-based detector can fence it), a frozen producer and a\n\
     mid-CASN consumer kill — and must land every window, fence the\n\
     zombie exactly once, and keep the extended conservation law\n\
     spawned = executed + reconciled + shed with a zero-leftover drain\n\
     and no served op finishing past its stamped deadline"
    cfg.Worksteal.Shard_service.shards cfg.Worksteal.Shard_service.producers
    cfg.Worksteal.Shard_service.consumers

(* ------------------------------------------------------------------ *)

type experiment = { id : string; title : string; run : quick:bool -> unit }

let all : experiment list =
  [
    { id = "e1"; title = "array boundary behaviour"; run = e1 };
    { id = "e2"; title = "contended pops (Figs 5/6)"; run = e2 };
    { id = "e3"; title = "list empty states (Figs 9/16)"; run = e3 };
    { id = "e4"; title = "primitive cost hierarchy"; run = e4 };
    { id = "e5"; title = "two-end independence"; run = e5 };
    { id = "e6"; title = "Greenwald v2 flaw"; run = e6 };
    { id = "e7"; title = "array vs list throughput"; run = e7 };
    { id = "e7b"; title = "latency distribution"; run = e7_latency };
    { id = "e8"; title = "work stealing"; run = e8 };
    { id = "e9"; title = "stall resilience"; run = e9 };
    { id = "e10"; title = "hints ablation"; run = e10 };
    { id = "e11"; title = "deleted-bit vs dummy"; run = e11 };
    { id = "e12"; title = "DCAS substrates"; run = e12 };
    { id = "e13"; title = "verification volume"; run = e13 };
    { id = "e14"; title = "lock-freedom stall points"; run = e14 };
    { id = "e15"; title = "substrate scaling sweep"; run = e15 };
    { id = "e16"; title = "GC assumption probe"; run = e16 };
    { id = "e17"; title = "3-word CAS extension"; run = e17 };
    {
      id = "e21";
      title = "DCAS2 fast path + batched transfers: latency/alloc";
      run = e21;
    };
    {
      id = "e22";
      title = "crash-fault tolerance: kill k of n supervised workers";
      run = e22;
    };
    {
      id = "e23";
      title = "cross-algorithm shootout: DCAS vs single-word-CAS";
      run = e23;
    };
    {
      id = "e24";
      title = "sharded service soak: SLO under live fault storms";
      run = e24;
    };
    {
      id = "e25";
      title = "multi-storm survival soak: deadlines, zombies, fencing";
      run = e25;
    };
  ]

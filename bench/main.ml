(* Experiment driver: regenerates every table of EXPERIMENTS.md.

     dune exec bench/main.exe                 # all experiments
     dune exec bench/main.exe -- e5 e7        # a selection
     dune exec bench/main.exe -- --quick      # fast smoke pass
     dune exec bench/main.exe -- --json out.json e15   # machine-readable copy
     dune exec bench/main.exe -- --check-json out.json # validate/summarize it

   Experiment ids map to paper artifacts via the index in DESIGN.md.

   The --json document has a stable schema (see README "Benchmarking"):

     { "schema": "dcas-deques-bench/1",
       "quick": bool,
       "experiments": [
         { "id": "e15", "title": "...", "elapsed_s": float,
           "rows": [ { ... per-experiment fields ... } ] } ] } *)

open Cmdliner

let schema_id = "dcas-deques-bench/1"

let run_selected quick json_file ids =
  let selected =
    match ids with
    | [] -> Experiments.all
    | ids ->
        List.filter_map
          (fun id ->
            match
              List.find_opt (fun e -> e.Experiments.id = id) Experiments.all
            with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown experiment %S (have: %s)\n" id
                  (String.concat ", "
                     (List.map (fun e -> e.Experiments.id) Experiments.all));
                exit 2)
          ids
  in
  if json_file <> None then Bench_support.json_enabled := true;
  let t0 = Unix.gettimeofday () in
  let records =
    List.map
      (fun e ->
        let t = Unix.gettimeofday () in
        e.Experiments.run ~quick;
        let elapsed = Unix.gettimeofday () -. t in
        Printf.printf "[%s done in %.1fs]\n%!" e.Experiments.id elapsed;
        Harness.Json.Obj
          [
            ("id", Harness.Json.String e.Experiments.id);
            ("title", Harness.Json.String e.Experiments.title);
            ("elapsed_s", Harness.Json.Float elapsed);
            ("rows", Harness.Json.List (Bench_support.drain_json ()));
          ])
      selected
  in
  Printf.printf "\nall selected experiments completed in %.1fs\n"
    (Unix.gettimeofday () -. t0);
  match json_file with
  | None -> ()
  | Some file ->
      let doc =
        Harness.Json.Obj
          [
            ("schema", Harness.Json.String schema_id);
            ("quick", Harness.Json.Bool quick);
            ("experiments", Harness.Json.List records);
          ]
      in
      let oc = open_out file in
      output_string oc (Harness.Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" file

(* Parse a --json document back and print a deterministic summary; the
   cram test uses this as the round-trip check. *)
let check_json file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Harness.Json.of_string text with
  | exception Harness.Json.Parse_error m ->
      Printf.eprintf "invalid JSON in %s: %s\n" file m;
      exit 1
  | doc ->
      let open Harness.Json in
      (match string_value (member "schema" doc) with
      | Some s when s = schema_id -> Printf.printf "schema: %s\n" s
      | Some s ->
          Printf.eprintf "unexpected schema %S\n" s;
          exit 1
      | None ->
          Printf.eprintf "missing schema field\n";
          exit 1);
      List.iter
        (fun e ->
          match string_value (member "id" e) with
          | None ->
              Printf.eprintf "experiment record without id\n";
              exit 1
          | Some id ->
              let rows = to_list (member "rows" e) in
              (* every row must at least carry numeric columns where
                 the schema promises them *)
              List.iter
                (fun r ->
                  match number_value (member "ops_per_sec" r) with
                  | Some _ -> ()
                  | None ->
                      Printf.eprintf "row in %s lacks ops_per_sec\n" id;
                      exit 1)
                rows;
              Printf.printf "%s: %d rows\n" id (List.length rows))
        (to_list (member "experiments" doc))

let main quick json_file check ids =
  match check with
  | Some file -> check_json file
  | None -> run_selected quick json_file ids

let quick =
  let doc = "Shrink durations and sample counts (smoke run)." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let json_file =
  let doc = "Also write results as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let check =
  let doc =
    "Parse a previously written --json $(docv), validate it against the \
     schema and print a summary, instead of running experiments."
  in
  Arg.(value & opt (some string) None & info [ "check-json" ] ~docv:"FILE" ~doc)

let ids =
  let doc = "Experiment ids to run (default: all). E.g. e4 e7." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let cmd =
  let doc = "DCAS deque experiment tables (E1-E17)" in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(const main $ quick $ json_file $ check $ ids)

let () = exit (Cmd.eval cmd)
